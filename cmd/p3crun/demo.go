package main

import (
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"p3cmr/internal/dataset"
	"p3cmr/internal/mr"
)

// The demo job is registered by name so it can run on the multiprocess
// backend: worker processes are re-exec'd copies of this binary, and the
// init below runs in them too, so both sides resolve "p3crun-demo-hist"
// to the same functions. It bins every attribute value of every row into
// a per-dimension histogram — a shuffle-heavy shape that exercises the
// out-of-core spill path on data sets of any size.
func init() {
	mr.RegisterJobImpl("p3crun-demo-hist", func(spec []byte) (mr.JobFuncs, error) {
		return mr.JobFuncs{
			Mapper: mr.MapperFunc(func(ctx *mr.TaskContext, global int, row []float64) error {
				for d, v := range row {
					b := int(v * 10)
					if b < 0 {
						b = 0
					} else if b > 9 {
						b = 9
					}
					ctx.EmitI64(fmt.Sprintf("d%02d_b%d", d, b), 1)
				}
				return nil
			}),
			TypedCombiner: mr.TypedCombinerFunc(func(key string, values mr.Values, out *mr.CombineEmit) error {
				var n int64
				for i := 0; i < values.Len(); i++ {
					n += values.Int64(i)
				}
				out.EmitI64(n)
				return nil
			}),
			TypedReducer: mr.TypedReducerFunc(func(ctx *mr.TaskContext, key string, values mr.Values) error {
				var n int64
				for i := 0; i < values.Len(); i++ {
					n += values.Int64(i)
				}
				ctx.EmitI64(key, n)
				return nil
			}),
		}, nil
	})
}

// runDemo runs the registered histogram job over the data set on whatever
// backend the engine was configured with and prints the per-dimension bin
// counts plus the engine's accounting — for the multiprocess backend,
// including worker-process and spill statistics.
func runDemo(data *dataset.Dataset, engine *mr.Engine, numSplits int) error {
	n := data.N()
	if numSplits <= 0 {
		numSplits = 8
	}
	if numSplits > n {
		numSplits = n
	}
	splits := make([]*mr.Split, numSplits)
	per := (n + numSplits - 1) / numSplits
	for s := range splits {
		lo, hi := s*per, (s+1)*per
		if hi > n {
			hi = n
		}
		splits[s] = &mr.Split{ID: s, Offset: lo, Dim: data.Dim, Rows: data.Rows[lo*data.Dim : hi*data.Dim]}
	}
	job := &mr.Job{Name: "demo-hist", Splits: splits, Impl: "p3crun-demo-hist", NumReducers: 4}
	out, err := engine.Run(job)
	if err != nil {
		return err
	}

	bins := make(map[string]int64, len(out.Pairs))
	keys := make([]string, 0, len(out.Pairs))
	for _, p := range out.Pairs {
		if _, seen := bins[p.Key]; !seen {
			keys = append(keys, p.Key)
		}
		switch x := p.Value.(type) {
		case int64:
			bins[p.Key] += x
		case int:
			bins[p.Key] += int64(x)
		}
	}
	sort.Strings(keys)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "bin\tcount")
	for _, k := range keys {
		fmt.Fprintf(tw, "%s\t%d\n", k, bins[k])
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	c := out.Counters
	fmt.Printf("\nmap in %d, map out %d, shuffled %d B, retries %d\n",
		c.MapInputRecords, c.MapOutputRecords, c.ShuffledBytes, c.TaskRetries)
	if ps, ok := engine.LastProcStats(); ok {
		fmt.Printf("workers spawned %d (killed %d), spill files %d, segments %d (%d mid-task), spilled %d B, merged segments %d\n",
			ps.WorkersSpawned, ps.WorkersKilled, ps.SpillFiles, ps.Segments,
			ps.MidTaskSpills, ps.SpilledBytes, ps.MergedSegments)
	}
	return nil
}
