// Command p3crun clusters a data set with any of the implemented
// algorithms and prints the found projected clusters (tightened interval
// signatures) plus a per-point label file.
//
// Usage:
//
//	p3crun -in data.bin -algo mr-light
//	p3crun -in data.csv -format csv -algo bow-light -labels labels.txt
//	p3crun -in data.bin -algo mr-mvb -theta 0.35 -alpha-poi 0.01
package main

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"p3cmr"
	"p3cmr/internal/core"
	"p3cmr/internal/dataset"
	"p3cmr/internal/mr"
	"p3cmr/internal/obs"
	"p3cmr/internal/obs/archive"
)

func main() {
	// Must run before anything else: when this binary was re-exec'd by the
	// multiprocess backend it is a shuffle worker, not a CLI, and this call
	// never returns in that case.
	mr.MaybeWorkerProcess()
	var (
		in          = flag.String("in", "", "input data file (required)")
		format      = flag.String("format", "bin", "input format: bin|csv")
		algo        = flag.String("algo", "mr-light", "algorithm: p3c|p3c+|mr-mvb|mr-naive|mr-light|bow-light|bow-mvb")
		labelsOut   = flag.String("labels", "", "write per-point labels to this file")
		theta       = flag.Float64("theta", 0, "override effect-size threshold θcc")
		alphaPoi    = flag.Float64("alpha-poi", 0, "override Poisson significance level")
		alphaChi    = flag.Float64("alpha-chi", 0, "override chi-square significance level")
		splits      = flag.Int("splits", 0, "input splits (0 = default)")
		simulate    = flag.Bool("simulate", false, "report modeled cluster runtime (112-reducer cost model)")
		normalize   = flag.Bool("normalize", false, "min-max normalize attributes to [0,1] first")
		jsonOut     = flag.Bool("json", false, "emit the result as JSON on stdout")
		members     = flag.Bool("members", false, "include member lists in JSON output")
		jobStats    = flag.Bool("jobstats", false, "print per-job MapReduce statistics")
		traceOut    = flag.String("trace", "", "write a JSONL span trace of the run to this file")
		report      = flag.Bool("report", false, "print a per-phase/per-job observability report after the run")
		metrics     = flag.Bool("metrics", false, "print an engine metrics snapshot after the run")
		opsAddr     = flag.String("ops", "", "serve the live ops plane (/metrics, /runs, /healthz, /debug/pprof/) on this address, e.g. :9090")
		opsLinger   = flag.Duration("ops-linger", 0, "keep the ops server up this long after the run finishes")
		flightN     = flag.Int("flight", 0, "record the last N trace events in a flight recorder (0 = off)")
		flightOut   = flag.String("flight-out", "", "flight-recorder post-mortem path (implies -flight; also dumped on success at exit)")
		backend     = flag.String("backend", "", "execution backend: inprocess|multiprocess|simulated (default inprocess)")
		spillDir    = flag.String("spill-dir", "", "multiprocess backend: directory for shuffle spill files (default os temp)")
		spillMB     = flag.Int("spill-mb", 0, "multiprocess backend: per-map-task in-memory shuffle budget in MiB before spilling (0 = default, 1 gives the smallest budget)")
		chaos       = flag.Float64("chaos", 0, "inject seeded task faults at this rate per phase (exercises retries; output is unchanged)")
		chaosStrag  = flag.Float64("chaos-straggler", 0, "charge seeded simulated straggler delays at this rate per attempt (output is unchanged)")
		chaosStragS = flag.Float64("chaos-straggler-s", 2, "simulated seconds charged per injected straggler")
		archiveDir  = flag.String("archive", "", "seal the traced run into this content-addressed archive directory (implies tracing)")
		archiveKeep = flag.Int("archive-keep", 0, "archive retention: keep only the newest N records (0 = keep all)")
		demo        = flag.Bool("demo", false, "run the built-in histogram demo job on the selected backend instead of clustering")
	)
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}

	data, err := readData(*in, *format)
	if err != nil {
		fatal(err)
	}
	if *normalize {
		data.Normalize()
	}

	alg, ok := algorithms[*algo]
	if !ok {
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	var (
		engine    *mr.Engine
		jsonl     *obs.JSONLTracer
		collector *obs.ReportCollector
		registry  *obs.Registry
		progress  *obs.Progress
		workers   *obs.WorkerStats
		flight    *obs.FlightRecorder
		ops       *obs.OpsServer
	)
	if *flightOut != "" && *flightN == 0 {
		*flightN = obs.DefaultFlightLimit
	}
	var arch *archive.Archive
	if *archiveDir != "" {
		var err error
		arch, err = archive.Open(*archiveDir)
		if err != nil {
			fatal(err)
		}
		if *traceOut == "" {
			// Archiving needs a trace stream; stage one in a temp file that
			// the seal consumes.
			tmp, err := os.CreateTemp("", "p3crun-trace-*.jsonl")
			if err != nil {
				fatal(err)
			}
			tmp.Close()
			*traceOut = tmp.Name()
			defer os.Remove(tmp.Name())
		}
	}
	if *jobStats || *simulate || *traceOut != "" || *report || *metrics ||
		*opsAddr != "" || *flightN > 0 || *backend != "" || *spillDir != "" ||
		*spillMB > 0 || *chaos > 0 || *chaosStrag > 0 || *demo {
		ec := mr.Config{Backend: *backend, SpillDir: *spillDir}
		if *spillMB > 0 {
			ec.SpillThresholdBytes = int64(*spillMB) << 20
		}
		if *chaos > 0 || *chaosStrag > 0 {
			ec.Faults = mr.RateFaultPlan{
				MapRate: *chaos, CombineRate: *chaos, ReduceRate: *chaos,
				StragglerRate: *chaosStrag, StragglerSeconds: *chaosStragS,
				Seed: 1,
			}
			ec.MaxAttempts = 12
		}
		if *simulate {
			ec.Cost = mr.DefaultCostModel()
		}
		var tracers []obs.Tracer
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			jsonl = obs.NewJSONLTracer(f)
			tracers = append(tracers, jsonl)
		}
		if *report {
			collector = obs.NewReportCollector()
			tracers = append(tracers, collector)
		}
		if *opsAddr != "" {
			progress = obs.NewProgress()
			progress.SetPhasePlan("p3c-pipeline", paramsFor(alg).PhasePlan())
			tracers = append(tracers, progress)
			workers = obs.NewWorkerStats()
			tracers = append(tracers, workers)
		}
		if *flightN > 0 {
			flight = obs.NewFlightRecorder(*flightN)
			if *flightOut != "" {
				flight.SetDump(func(obs.End) (io.WriteCloser, error) {
					return os.Create(*flightOut)
				})
			}
			tracers = append(tracers, flight)
		}
		ec.Tracer = obs.Multi(tracers...)
		if *metrics || *opsAddr != "" {
			registry = obs.NewRegistry()
			ec.Metrics = registry
		}
		engine = mr.NewEngine(ec)
	}
	if *opsAddr != "" {
		var err error
		var lister obs.ArchiveLister
		if arch != nil {
			lister = arch
		}
		ops, err = obs.StartOps(*opsAddr, registry, progress, workers, lister)
		if err != nil {
			fatal(err)
		}
		defer ops.Close()
		fmt.Fprintf(os.Stderr, "ops server listening on http://%s\n", ops.Addr())
	}
	if flight != nil {
		// An interrupted chaos run is exactly when the post-mortem matters:
		// dump the recorder on SIGINT/SIGTERM, not just on permanent failure
		// or clean exit.
		sigCh := make(chan os.Signal, 1)
		signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
		go func() {
			sig := <-sigCh
			signal.Stop(sigCh)
			dst := io.Writer(os.Stderr)
			where := "stderr"
			if *flightOut != "" {
				if f, err := os.Create(*flightOut); err == nil {
					defer f.Close()
					dst = f
					where = *flightOut
				}
			}
			if err := flight.Dump(dst); err != nil {
				fmt.Fprintf(os.Stderr, "p3crun: flight dump on %v: %v\n", sig, err)
			} else {
				fmt.Fprintf(os.Stderr, "p3crun: interrupted by %v; flight dump written to %s\n", sig, where)
			}
			code := 130
			if sig == syscall.SIGTERM {
				code = 143
			}
			os.Exit(code)
		}()
	}
	// Manifest identity for -archive: fingerprint the input bytes and the
	// effective parameters before the run mutates anything.
	var paramsHash, dataFP string
	if arch != nil {
		fp, err := fileSHA256(*in)
		if err != nil {
			fatal(err)
		}
		dataFP = fp
		paramsHash = hashParams(paramsFor(alg), *theta, *alphaPoi, *alphaChi, *splits)
	}
	wallStart := obs.Now()
	// finishObs flushes the trace file, prints the report and metrics
	// snapshot (when requested), and seals the run into the archive.
	// Shared by the demo, JSON and text paths.
	finishObs := func() {
		if jsonl != nil {
			if err := jsonl.Close(); err != nil {
				fatal(fmt.Errorf("writing trace: %w", err))
			}
			fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceOut)
		}
		if arch != nil {
			name := "p3c-pipeline"
			if *demo {
				name = "demo"
			}
			backendName := *backend
			if backendName == "" {
				backendName = "inprocess"
			}
			m := archive.Manifest{
				Name:               name,
				Backend:            backendName,
				SpillDir:           *spillDir,
				SpillLimitBytes:    int64(*spillMB) << 20,
				ParamsHash:         paramsHash,
				DatasetFingerprint: dataFP,
				Outcome:            "ok",
				WallSeconds:        obs.Since(wallStart).Seconds(),
			}
			if engine != nil {
				m.SimulatedSeconds = engine.TotalSimulatedSeconds()
				m.Counters = engine.TotalCounters()
				m.Wasted = engine.TotalWasted()
			}
			sealed, err := arch.Seal(*traceOut, m)
			if err != nil {
				fatal(err)
			}
			if *archiveKeep > 0 {
				if err := arch.Prune(*archiveKeep); err != nil {
					fatal(err)
				}
			}
			fmt.Fprintf(os.Stderr, "run archived as %s (seq %d) under %s\n", sealed.ID, sealed.Seq, arch.Root())
		}
		if collector != nil {
			collector.WriteReport(os.Stderr)
		}
		if registry != nil && *metrics {
			snap := registry.Snapshot()
			snap.WriteText(os.Stderr)
		}
		if flight != nil && *flightOut != "" && flight.Dumps() == 0 {
			// The run succeeded, so no post-mortem fired; dump the window
			// anyway for offline analysis.
			f, err := os.Create(*flightOut)
			if err == nil {
				err = flight.Dump(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fatal(fmt.Errorf("writing flight dump: %w", err))
			}
			fmt.Fprintf(os.Stderr, "flight dump written to %s\n", *flightOut)
		}
		if ops != nil && *opsLinger > 0 {
			fmt.Fprintf(os.Stderr, "ops server lingering for %s\n", *opsLinger)
			time.Sleep(*opsLinger)
		}
	}

	if *demo {
		if err := runDemo(data, engine, *splits); err != nil {
			fatal(err)
		}
		finishObs()
		return
	}

	cfg := p3cmr.Config{Algorithm: alg, SimulateCluster: *simulate, Engine: engine}
	if *theta > 0 || *alphaPoi > 0 || *alphaChi > 0 || *splits > 0 {
		params := paramsFor(alg)
		if *theta > 0 {
			params.ThetaCC = *theta
		}
		if *alphaPoi > 0 {
			params.AlphaPoisson = *alphaPoi
		}
		if *alphaChi > 0 {
			params.AlphaChi2 = *alphaChi
		}
		if *splits > 0 {
			params.NumSplits = *splits
		}
		cfg.Params = &params
	}

	res, err := p3cmr.Run(data, cfg)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		if err := res.WriteJSON(os.Stdout, alg, *members); err != nil {
			fatal(err)
		}
		if *labelsOut != "" {
			if err := writeLabels(*labelsOut, res.Labels); err != nil {
				fatal(err)
			}
		}
		finishObs()
		return
	}

	fmt.Printf("algorithm: %s\n", alg)
	fmt.Printf("points: %d  dim: %d  clusters found: %d  MR jobs: %d\n",
		data.N(), data.Dim, len(res.Clusters), res.Jobs)
	if *simulate {
		fmt.Printf("modeled cluster runtime: %.1f s\n", res.SimulatedSeconds)
	}
	for i, sig := range res.Signatures {
		size := 0
		if i < len(res.Clusters) {
			size = len(res.Clusters[i].Objects)
		}
		fmt.Printf("cluster %d (%d points): %s\n", i, size, sig)
	}

	if *labelsOut != "" {
		if err := writeLabels(*labelsOut, res.Labels); err != nil {
			fatal(err)
		}
		fmt.Printf("labels written to %s\n", *labelsOut)
	}

	if *jobStats && engine != nil {
		printJobStats(engine)
	}
	finishObs()
}

// printJobStats renders the engine's per-job-name accounting, sorted by
// accumulated map input (the dominant cost driver).
func printJobStats(engine *mr.Engine) {
	stats := engine.JobStatsByName()
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		return stats[names[i]].Counters.MapInputRecords > stats[names[j]].Counters.MapInputRecords
	})
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\njob\truns\tmap in\tmap out\tshuffled B\tmodeled s")
	for _, name := range names {
		js := stats[name]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.1f\n",
			name, js.Runs, js.Counters.MapInputRecords, js.Counters.MapOutputRecords,
			js.Counters.ShuffledBytes, js.SimulatedSeconds)
	}
	tw.Flush()
}

var algorithms = map[string]p3cmr.Algorithm{
	"p3c":       p3cmr.P3C,
	"p3c+":      p3cmr.P3CPlus,
	"mr-mvb":    p3cmr.P3CPlusMR,
	"mr-naive":  p3cmr.P3CPlusMRNaive,
	"mr-light":  p3cmr.P3CPlusMRLight,
	"bow-light": p3cmr.BoWLight,
	"bow-mvb":   p3cmr.BoWMVB,
	"mr-mve":    p3cmr.P3CPlusMRMVE,
}

func paramsFor(a p3cmr.Algorithm) core.Params {
	switch a {
	case p3cmr.P3C:
		return core.OriginalP3CParams()
	case p3cmr.P3CPlusMRLight:
		return core.LightParams()
	default:
		return core.NewParams()
	}
}

func readData(path, format string) (*dataset.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch strings.ToLower(format) {
	case "bin":
		return dataset.ReadBinary(f)
	case "csv":
		return dataset.ReadCSV(f)
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
}

func writeLabels(path string, labels []int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, l := range labels {
		fmt.Fprintln(w, l)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

// fileSHA256 fingerprints the input data set for the archive manifest.
func fileSHA256(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil))[:archive.IDLen], nil
}

// hashParams fingerprints the effective algorithm parameters (base params
// plus the CLI overrides) so two archived records can be checked for
// experiment identity without re-parsing flags.
func hashParams(p core.Params, theta, alphaPoi, alphaChi float64, splits int) string {
	if theta > 0 {
		p.ThetaCC = theta
	}
	if alphaPoi > 0 {
		p.AlphaPoisson = alphaPoi
	}
	if alphaChi > 0 {
		p.AlphaChi2 = alphaChi
	}
	if splits > 0 {
		p.NumSplits = splits
	}
	h := sha256.Sum256([]byte(fmt.Sprintf("%#v", p)))
	return hex.EncodeToString(h[:])[:archive.IDLen]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p3crun:", err)
	os.Exit(1)
}
