// Command p3cvet runs the project's contract-enforcing static analyzers
// over the module: detclock (wall clock is observability-only), detrand
// (randomness is seeded per identity), hotpath (no scalar any-boxing or
// per-emit fmt.Sprintf keys on the data plane), implreg (Job.Impl sites and
// RegisterJobImpl registrations form a bijection with pure builders),
// maporder (no output in map iteration order), poolsafe (pooled buffers
// stay inside their lifecycle barrier), reducermut (reducers treat shuffled
// values as read-only), spanbalance (every obs span Begin is Ended on all
// control-flow paths), tracenil (Tracer/Metrics calls are nil-guarded), and
// wirelock (the wire protocol evolves append-only against the committed
// wire.lock). Findings print as
//
//	file:line: [analyzer] message
//
// and the exit status is nonzero when any finding survives suppression.
// A finding is suppressed by a `//lint:allow <analyzer> <reason>` comment on
// the same line or the line above; allows that suppress nothing are
// themselves reported, so stale suppressions cannot accumulate.
//
// -write regenerates wire.lock for intentional, append-only protocol bumps
// (and refuses breaking diffs). -time reports load and per-analyzer wall
// times.
package main

import (
	"flag"
	"fmt"
	"os"

	"p3cmr/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	write := flag.Bool("write", false, "regenerate wire.lock fingerprints (append-only bumps; breaking diffs are refused) and exit")
	timed := flag.Bool("time", false, "report load and per-analyzer wall times on stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: p3cvet [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Packages follow go-tool patterns relative to the working directory\n")
		fmt.Fprintf(flag.CommandLine.Output(), "(default ./...). Flags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *only != "" {
		var err error
		analyzers, err = lint.ByName(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p3cvet:", err)
			os.Exit(2)
		}
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "p3cvet:", err)
		os.Exit(2)
	}
	pkgs, stats, err := lint.LoadWithStats(dir, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "p3cvet:", err)
		os.Exit(2)
	}
	if *timed {
		fmt.Fprintf(os.Stderr, "p3cvet: load %.3fs (parse %.3fs, typecheck %.3fs, %d packages)\n",
			stats.ParseSeconds+stats.CheckSeconds, stats.ParseSeconds, stats.CheckSeconds, stats.Packages)
	}

	if *write {
		written, err := lint.RegenerateWireLocks(pkgs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p3cvet:", err)
			os.Exit(1)
		}
		for _, path := range written {
			fmt.Println("p3cvet: wrote", path)
		}
		if len(written) == 0 {
			fmt.Fprintln(os.Stderr, "p3cvet: no wire surfaces in the loaded packages")
		}
		return
	}

	findings, timings := lint.RunTimed(pkgs, analyzers)
	if *timed {
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "p3cvet: %-12s %.3fs\n", t.Name, t.Seconds)
		}
	}
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "p3cvet:", err)
			os.Exit(2)
		}
	} else {
		lint.WriteText(os.Stdout, findings)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
