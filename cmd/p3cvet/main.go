// Command p3cvet runs the project's contract-enforcing static analyzers
// over the module: detclock (wall clock is observability-only), detrand
// (randomness is seeded per identity), hotpath (no scalar any-boxing or
// per-emit fmt.Sprintf keys on the data plane), maporder (no output in map
// iteration order), reducermut (reducers treat shuffled values as
// read-only), and tracenil (Tracer/Metrics calls are nil-guarded). Findings
// print as
//
//	file:line: [analyzer] message
//
// and the exit status is nonzero when any finding survives suppression.
// A finding is suppressed by a `//lint:allow <analyzer> <reason>` comment on
// the same line or the line above; allows that suppress nothing are
// themselves reported, so stale suppressions cannot accumulate.
package main

import (
	"flag"
	"fmt"
	"os"

	"p3cmr/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: p3cvet [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Packages follow go-tool patterns relative to the working directory\n")
		fmt.Fprintf(flag.CommandLine.Output(), "(default ./...). Flags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *only != "" {
		var err error
		analyzers, err = lint.ByName(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p3cvet:", err)
			os.Exit(2)
		}
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "p3cvet:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(dir, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "p3cvet:", err)
		os.Exit(2)
	}

	findings := lint.Run(pkgs, analyzers)
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "p3cvet:", err)
			os.Exit(2)
		}
	} else {
		lint.WriteText(os.Stdout, findings)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
