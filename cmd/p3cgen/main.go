// Command p3cgen generates the paper's synthetic workloads (§7.1): data
// sets with hidden projected clusters, uniform noise, and at least one
// overlapping cluster pair. The data is written in the library's binary
// format (or CSV), the ground truth as a sidecar text file.
//
// Usage:
//
//	p3cgen -n 100000 -dim 50 -clusters 5 -noise 0.1 -seed 1 \
//	       -out data.bin -truth truth.txt
//	p3cgen -n 1000 -format csv -out data.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"p3cmr/internal/dataset"
)

func main() {
	var (
		n        = flag.Int("n", 10000, "number of points")
		dim      = flag.Int("dim", 50, "dimensionality")
		clusters = flag.Int("clusters", 5, "hidden clusters")
		noise    = flag.Float64("noise", 0.10, "noise fraction in [0,1)")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("out", "data.bin", "output data file")
		truthOut = flag.String("truth", "", "ground-truth sidecar file (optional)")
		format   = flag.String("format", "bin", "output format: bin|csv")
	)
	flag.Parse()

	data, truth, err := dataset.Generate(dataset.GenConfig{
		N: *n, Dim: *dim, Clusters: *clusters, NoiseFraction: *noise,
		Seed: *seed, Overlap: true,
	})
	if err != nil {
		fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	switch *format {
	case "bin":
		err = data.WriteBinary(f)
	case "csv":
		err = data.WriteCSV(f)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}

	if *truthOut != "" {
		if err := writeTruth(*truthOut, truth); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wrote %d x %d points (%d clusters, %.0f%% noise) to %s\n",
		data.N(), data.Dim, len(truth.Clusters), *noise*100, *out)
}

// writeTruth stores the ground-truth sidecar file.
func writeTruth(path string, truth *dataset.GroundTruth) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := dataset.WriteGroundTruth(f, truth); err != nil {
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p3cgen:", err)
	os.Exit(1)
}
