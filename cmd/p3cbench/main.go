// Command p3cbench regenerates the paper's tables and figures.
//
// Usage:
//
//	p3cbench -exp all                 # every experiment at default scale
//	p3cbench -exp fig5 -sizes 1000,10000
//	p3cbench -exp billion -n 100000
//	p3cbench -exp fig6 -paperscale    # paper parameters (capped at 1e6)
//
// Experiments: fig1, fig4, fig5, fig6, fig7, billion, colon, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"p3cmr/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: fig1|fig4|fig5|fig6|fig7|billion|colon|zoo|all")
		sizes      = flag.String("sizes", "", "comma-separated data-set sizes (default: experiment scale)")
		dim        = flag.Int("dim", 0, "data dimensionality (default 20; paper used 50)")
		seed       = flag.Int64("seed", 1, "generator seed")
		reducers   = flag.Int("reducers", 112, "modeled reducer count for runtime experiments")
		samples    = flag.Int("samples", 0, "BoW samples per reducer (default: largest size / 10)")
		billionN   = flag.Int("n", 0, "size for the billion-point analogue (default: 4x largest size)")
		paperScale = flag.Bool("paperscale", false, "use paper-sized parameters (sizes capped at 1e6)")
		csvOut     = flag.Bool("csv", false, "emit machine-readable CSV instead of tables (fig1/fig4/fig5/fig6/fig7/zoo)")
	)
	flag.Parse()

	scale := experiments.DefaultScale()
	if *paperScale {
		scale = experiments.PaperScale()
	}
	if *sizes != "" {
		parsed, err := parseSizes(*sizes)
		if err != nil {
			fatal(err)
		}
		scale.Sizes = parsed
	}
	if *dim > 0 {
		scale.Dim = *dim
	}
	scale.Seed = *seed
	scale.Reducers = *reducers

	emit := func(err error) {
		if err != nil {
			fatal(err)
		}
	}
	run := func(name string) {
		switch name {
		case "fig1":
			rows := experiments.Figure1(nil)
			if *csvOut {
				emit(experiments.WriteFigure1CSV(os.Stdout, rows))
				return
			}
			experiments.RenderFigure1(os.Stdout, rows)
		case "fig4":
			rows, err := experiments.Figure4(scale)
			if err != nil {
				fatal(err)
			}
			if *csvOut {
				emit(experiments.WriteFigure4CSV(os.Stdout, rows))
				return
			}
			experiments.RenderFigure4(os.Stdout, rows)
		case "fig5":
			rows, err := experiments.Figure5(scale, nil, nil)
			if err != nil {
				fatal(err)
			}
			if *csvOut {
				emit(experiments.WriteFigure5CSV(os.Stdout, rows))
				return
			}
			experiments.RenderFigure5(os.Stdout, rows)
		case "fig6":
			rows, err := experiments.Figure6(scale, *samples)
			if err != nil {
				fatal(err)
			}
			if *csvOut {
				emit(experiments.WriteFigure6CSV(os.Stdout, rows))
				return
			}
			experiments.RenderFigure6(os.Stdout, rows)
		case "fig7":
			rows, err := experiments.Figure7(scale, *samples)
			if err != nil {
				fatal(err)
			}
			if *csvOut {
				emit(experiments.WriteFigure7CSV(os.Stdout, rows))
				return
			}
			experiments.RenderFigure7(os.Stdout, rows)
		case "billion":
			row, err := experiments.Billion(scale, *billionN, *samples)
			if err != nil {
				fatal(err)
			}
			experiments.RenderBillion(os.Stdout, row)
		case "colon":
			row, err := experiments.Colon(*seed)
			if err != nil {
				fatal(err)
			}
			experiments.RenderColon(os.Stdout, row)
		case "zoo":
			rows, err := experiments.Zoo(scale)
			if err != nil {
				fatal(err)
			}
			if *csvOut {
				emit(experiments.WriteZooCSV(os.Stdout, rows))
				return
			}
			experiments.RenderZoo(os.Stdout, rows)
		default:
			fatal(fmt.Errorf("unknown experiment %q", name))
		}
	}

	if *exp == "all" {
		for _, name := range []string{"fig1", "fig4", "fig5", "fig6", "fig7", "billion", "colon", "zoo"} {
			run(name)
		}
		return
	}
	run(*exp)
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p3cbench:", err)
	os.Exit(1)
}
