package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
)

// diffGates are improvement claims to enforce on top of the regression
// thresholds: each benchmark in ratio must show old/new allocs/op of at
// least minAllocRatio, and each benchmark in faster must have new ns/op
// strictly below old. A gated benchmark missing from either baseline is a
// failure — a gate that silently stops measuring proves nothing.
type diffGates struct {
	minAllocRatio float64
	ratio         []string
	faster        []string
}

// splitNames parses a comma-separated benchmark list, dropping empties.
func splitNames(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// runDiff compares two benchjson baselines and reports per-benchmark
// deltas. It exits nonzero when any benchmark present in both files
// regressed beyond the thresholds: ns/op by more than nsThreshold
// (fractional, e.g. 0.20 = +20%), or allocs/op by more than
// allocThreshold — or when an improvement gate fails. Benchmarks added or
// removed between the files are reported but never fatal — suites grow
// across PRs.
func runDiff(oldPath, newPath string, nsThreshold, allocThreshold float64, gates diffGates) int {
	oldRes, err := readBaseline(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	newRes, err := readBaseline(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}

	names := make([]string, 0, len(oldRes))
	for name := range oldRes {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\told ns/op\tnew ns/op\tΔ ns/op\told allocs\tnew allocs\tverdict")
	for _, name := range names {
		o := oldRes[name]
		n, ok := newRes[name]
		if !ok {
			fmt.Fprintf(tw, "%s\t%.0f\t-\t-\t%d\t-\tremoved\n", name, o.NsPerOp, o.AllocsPerOp)
			continue
		}
		nsDelta := 0.0
		if o.NsPerOp > 0 {
			nsDelta = (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		}
		verdict := "ok"
		if nsDelta > nsThreshold {
			verdict = fmt.Sprintf("REGRESSION ns/op +%.0f%% > %.0f%%", nsDelta*100, nsThreshold*100)
			regressions++
		}
		if o.AllocsPerOp >= 0 && n.AllocsPerOp >= 0 && o.AllocsPerOp > 0 {
			allocDelta := float64(n.AllocsPerOp-o.AllocsPerOp) / float64(o.AllocsPerOp)
			if allocDelta > allocThreshold {
				verdict = fmt.Sprintf("REGRESSION allocs/op %d→%d", o.AllocsPerOp, n.AllocsPerOp)
				regressions++
			}
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%\t%d\t%d\t%s\n",
			name, o.NsPerOp, n.NsPerOp, nsDelta*100, o.AllocsPerOp, n.AllocsPerOp, verdict)
	}
	added := make([]string, 0)
	for name := range newRes {
		if _, ok := oldRes[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		n := newRes[name]
		fmt.Fprintf(tw, "%s\t-\t%.0f\t-\t-\t%d\tadded\n", name, n.NsPerOp, n.AllocsPerOp)
	}
	tw.Flush()

	gateFailures := 0
	lookup := func(name string) (old, new Result, ok bool) {
		o, okO := oldRes[name]
		n, okN := newRes[name]
		if !okO || !okN {
			fmt.Fprintf(os.Stderr, "benchjson: GATE %s: benchmark missing from %s\n",
				name, map[bool]string{true: newPath, false: oldPath}[okO])
			gateFailures++
			return Result{}, Result{}, false
		}
		return o, n, true
	}
	for _, name := range gates.ratio {
		o, n, ok := lookup(name)
		if !ok {
			continue
		}
		if o.AllocsPerOp <= 0 || n.AllocsPerOp <= 0 {
			fmt.Fprintf(os.Stderr, "benchjson: GATE %s: allocs/op not measured in both baselines\n", name)
			gateFailures++
			continue
		}
		ratio := float64(o.AllocsPerOp) / float64(n.AllocsPerOp)
		if ratio < gates.minAllocRatio {
			fmt.Fprintf(os.Stderr, "benchjson: GATE %s: allocs/op %d→%d is %.2fx, need ≥%.2fx\n",
				name, o.AllocsPerOp, n.AllocsPerOp, ratio, gates.minAllocRatio)
			gateFailures++
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: gate ok: %s allocs/op %d→%d (%.2fx ≥ %.2fx)\n",
				name, o.AllocsPerOp, n.AllocsPerOp, ratio, gates.minAllocRatio)
		}
	}
	for _, name := range gates.faster {
		o, n, ok := lookup(name)
		if !ok {
			continue
		}
		if n.NsPerOp >= o.NsPerOp {
			fmt.Fprintf(os.Stderr, "benchjson: GATE %s: ns/op %.0f→%.0f did not improve\n",
				name, o.NsPerOp, n.NsPerOp)
			gateFailures++
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: gate ok: %s ns/op %.0f→%.0f (%.1f%% faster)\n",
				name, o.NsPerOp, n.NsPerOp, (o.NsPerOp-n.NsPerOp)/o.NsPerOp*100)
		}
	}
	if gateFailures > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d improvement gate(s) failed\n", gateFailures)
		return 1
	}

	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) beyond thresholds (ns/op %.0f%%, allocs/op %.0f%%)\n",
			regressions, nsThreshold*100, allocThreshold*100)
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchjson: no regressions (%d compared, %d added, %d removed)\n",
		len(oldRes)-countRemoved(oldRes, newRes), len(added), countRemoved(oldRes, newRes))
	return 0
}

func countRemoved(oldRes, newRes map[string]Result) int {
	removed := 0
	for name := range oldRes {
		if _, ok := newRes[name]; !ok {
			removed++
		}
	}
	return removed
}

func readBaseline(path string) (map[string]Result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]Result
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}
