// Command benchjson converts `go test -bench` output into a
// machine-readable JSON file so benchmark baselines can be diffed across
// PRs. It reads the benchmark output on stdin, echoes every line to stdout
// unchanged (so it can sit at the end of a pipe without hiding anything),
// and writes one JSON object per benchmark to the -out (shorthand -o) file:
//
//	go test -bench . -benchmem ./internal/mr/ | benchjson -out BENCH.json
//
// The JSON maps the benchmark name (with the -N GOMAXPROCS suffix
// stripped) to {iterations, ns_per_op, bytes_per_op, allocs_per_op}.
// Metrics absent from a line (e.g. without -benchmem) are reported as -1.
//
// With -diff, benchjson instead compares two baselines and exits nonzero on
// regression beyond the thresholds:
//
//	benchjson -diff BENCH_PR4.json BENCH_PR5.json -threshold 0.20 -alloc-threshold 0.02
//
// -diff can additionally enforce improvement gates — claims a PR makes
// about specific benchmarks, checked in CI so they cannot silently rot:
//
//	benchjson -diff OLD.json NEW.json \
//	    -min-alloc-ratio 3 -ratio BenchmarkShuffleHeavy,BenchmarkWideKey \
//	    -faster BenchmarkShuffleHeavy
//
// requires old/new allocs/op ≥ 3 for each -ratio benchmark and new ns/op
// strictly below old for each -faster benchmark.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is the parsed measurement for one benchmark.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchLine matches e.g.
//
//	BenchmarkMapHeavy-8  300  610356 ns/op  20768 B/op  176 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "", "write the JSON summary to this file (required)")
	flag.StringVar(out, "o", "", "shorthand for -out")
	diff := flag.Bool("diff", false, "compare two baseline files: benchjson -diff old.json new.json")
	nsThreshold := flag.Float64("threshold", 0.20, "with -diff: fatal fractional ns/op regression")
	allocThreshold := flag.Float64("alloc-threshold", 0.02, "with -diff: fatal fractional allocs/op regression")
	minAllocRatio := flag.Float64("min-alloc-ratio", 0, "with -diff: required old/new allocs/op ratio for -ratio benchmarks")
	ratioList := flag.String("ratio", "", "with -diff: comma-separated benchmarks that must meet -min-alloc-ratio")
	fasterList := flag.String("faster", "", "with -diff: comma-separated benchmarks whose new ns/op must be below old")
	flag.Parse()
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		gates := diffGates{
			minAllocRatio: *minAllocRatio,
			ratio:         splitNames(*ratioList),
			faster:        splitNames(*fasterList),
		}
		os.Exit(runDiff(flag.Arg(0), flag.Arg(1), *nsThreshold, *allocThreshold, gates))
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out (or -o) is required")
		os.Exit(1)
	}

	results := make(map[string]Result)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		// Strip the trailing -N GOMAXPROCS suffix so baselines compare
		// across machines with different core counts.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := Result{BytesPerOp: -1, AllocsPerOp: -1}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		results[name] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	// encoding/json emits map keys sorted, so the file diffs cleanly.
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks written to %s\n", len(results), *out)
}
