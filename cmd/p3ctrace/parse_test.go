package main

import (
	"strings"
	"testing"
)

// TestParseTraceOutOfOrderMerge pins the merge semantics of parseTrace on
// traces whose lines arrive out of causal order — the shape a flight-recorder
// dump produces (evicted critical ends precede the ring window) and a
// multiprocess merge can produce (a worker step's begin lands after a point
// on it). Regression: begins used to *replace* an end-synthesized span,
// dropping its outcome and re-detaching it, and points preceding their
// span's begin were silently dropped.
func TestParseTraceOutOfOrderMerge(t *testing.T) {
	// Lines deliberately scrambled: the task end (id 3) precedes its begin;
	// the sample point on span 3 precedes span 3's begin; the step span (4)
	// under the task arrives begin-last.
	trace := strings.TrimSpace(`
{"ev":"begin","ts":0,"id":1,"kind":"run","name":"r"}
{"ev":"begin","ts":0.1,"id":2,"parent":1,"kind":"job","name":"j"}
{"ev":"end","ts":0.9,"id":3,"kind":"task","name":"j","task":0,"attempt":1,"phase":"map","outcome":"fault","real_s":0.7,"worker":"w1"}
{"ev":"point","ts":0.5,"span":3,"point":"sample","worker":"w1","sample":{"cpu_s":1.5,"rss_b":1024,"spill_b":10,"queue_b":2}}
{"ev":"point","ts":0.6,"span":3,"point":"sample","worker":"w1","sample":{"cpu_s":1.6,"rss_b":2048,"spill_b":20,"queue_b":4}}
{"ev":"end","ts":0.8,"id":4,"parent":3,"kind":"step","name":"map-exec","phase":"map","outcome":"fault","real_s":0.5,"worker":"w1"}
{"ev":"begin","ts":0.3,"id":4,"parent":3,"kind":"step","name":"map-exec","phase":"map"}
{"ev":"begin","ts":0.2,"id":3,"parent":2,"kind":"task","name":"j","task":0,"attempt":1,"phase":"map"}
{"ev":"end","ts":1.0,"id":2,"kind":"job","name":"j","outcome":"ok","real_s":0.9}
{"ev":"end","ts":1.1,"id":1,"kind":"run","name":"r","outcome":"ok","real_s":1.1}
`) + "\n"

	spans, roots, events, err := parseTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if events != 10 {
		t.Errorf("parsed %d events, want 10", events)
	}
	if len(roots) != 1 {
		names := make([]string, 0, len(roots))
		for _, r := range roots {
			names = append(names, r.kind+":"+r.name)
		}
		t.Fatalf("got %d roots (%v), want 1 — out-of-order spans polluted the detached bucket", len(roots), names)
	}

	task := spans[3]
	if task.parent != 2 || !task.closed || task.outcome != "fault" || task.worker != "w1" {
		t.Errorf("task span lost data across out-of-order merge: %+v", task)
	}
	if task.beginTS != 0.2 {
		t.Errorf("task beginTS = %g, want the begin line's 0.2", task.beginTS)
	}
	if len(task.points) != 2 {
		t.Fatalf("task has %d points, want 2 — points before their span's begin were dropped", len(task.points))
	}
	step := spans[4]
	if step.parent != 3 || step.kind != "step" || !step.closed || step.outcome != "fault" {
		t.Errorf("step span lost data across out-of-order merge: %+v", step)
	}

	// The analysis over this trace must see the telemetry: worker step
	// seconds, samples with peaks, and a computed utilization.
	a := analyze(spans, roots, events, 5)
	if len(a.Runs) != 1 {
		t.Fatalf("got %d runs", len(a.Runs))
	}
	run := a.Runs[0]
	if len(run.Workers) != 1 {
		t.Fatalf("got %d worker rows, want 1", len(run.Workers))
	}
	w := run.Workers[0]
	if w.Worker != "w1" || w.Attempts != 1 || w.Faults != 1 {
		t.Errorf("worker row = %+v", w)
	}
	if w.Samples != 2 || w.PeakRSSBytes != 2048 || w.PeakQueueBytes != 4 || w.SpillBytes != 20 {
		t.Errorf("sample aggregation wrong: %+v", w)
	}
	if w.CPUSeconds != 1.6 {
		t.Errorf("worker CPU = %g, want last sample's 1.6", w.CPUSeconds)
	}
	// ΔCPU/Δwall = (1.6-1.5)/(0.6-0.5) = 1.0
	if w.Utilization < 0.999 || w.Utilization > 1.001 {
		t.Errorf("utilization = %g, want 1.0", w.Utilization)
	}
	if got := w.StepSeconds["map-exec"]; got != 0.5 {
		t.Errorf("step seconds = %g, want 0.5", got)
	}
	// The step span must not count as a task attempt.
	if run.TaskAttempts != 1 {
		t.Errorf("run counts %d task attempts, want 1 (steps must not count)", run.TaskAttempts)
	}
}

// TestClassifyAndTimeline pins the straggler classification and the timeline
// lanes on a synthetic two-worker trace: one attempt is slow because its
// input is skewed, one is slow on an idle (starved) worker.
func TestClassifyAndTimeline(t *testing.T) {
	trace := strings.TrimSpace(`
{"ev":"begin","ts":0,"id":1,"kind":"run","name":"r"}
{"ev":"begin","ts":0,"id":2,"parent":1,"kind":"job","name":"j"}
{"ev":"begin","ts":0,"id":3,"parent":2,"kind":"task","name":"j","task":0,"attempt":1,"phase":"map"}
{"ev":"end","ts":1,"id":3,"kind":"task","name":"j","task":0,"attempt":1,"phase":"map","outcome":"ok","real_s":1,"worker":"w1","counters":{"mapIn":100}}
{"ev":"begin","ts":0,"id":4,"parent":2,"kind":"task","name":"j","task":1,"attempt":1,"phase":"map"}
{"ev":"end","ts":1,"id":4,"kind":"task","name":"j","task":1,"attempt":1,"phase":"map","outcome":"ok","real_s":1,"worker":"w2","counters":{"mapIn":100}}
{"ev":"begin","ts":1,"id":5,"parent":2,"kind":"task","name":"j","task":2,"attempt":1,"phase":"map"}
{"ev":"end","ts":5,"id":5,"kind":"task","name":"j","task":2,"attempt":1,"phase":"map","outcome":"ok","real_s":4,"worker":"w1","counters":{"mapIn":400}}
{"ev":"begin","ts":1,"id":6,"parent":2,"kind":"task","name":"j","task":3,"attempt":1,"phase":"map"}
{"ev":"end","ts":5,"id":6,"kind":"task","name":"j","task":3,"attempt":1,"phase":"map","outcome":"ok","real_s":4,"worker":"w2","counters":{"mapIn":100}}
{"ev":"point","ts":1,"span":5,"point":"sample","worker":"w1","sample":{"cpu_s":1.0}}
{"ev":"point","ts":5,"span":5,"point":"sample","worker":"w1","sample":{"cpu_s":4.8}}
{"ev":"point","ts":1,"span":6,"point":"sample","worker":"w2","sample":{"cpu_s":1.0}}
{"ev":"point","ts":5,"span":6,"point":"sample","worker":"w2","sample":{"cpu_s":1.4}}
{"ev":"end","ts":5,"id":2,"kind":"job","name":"j","outcome":"ok","real_s":5}
{"ev":"end","ts":5,"id":1,"kind":"run","name":"r","outcome":"ok","real_s":5}
`) + "\n"

	spans, roots, events, err := parseTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	a := analyze(spans, roots, events, 5)
	run := a.Runs[0]

	if len(run.Classified) != 2 {
		t.Fatalf("classified %d attempts, want 2: %+v", len(run.Classified), run.Classified)
	}
	byTask := make(map[string]ClassifyRow)
	for _, c := range run.Classified {
		byTask[c.Task] = c
	}
	// task 2.1: 400 records vs median 100 → skewed (worker w1 was busy,
	// util ~0.95, but input ratio dominates).
	if c := byTask["2.1"]; c.Class != "skewed" || c.Worker != "w1" {
		t.Errorf("task 2.1 classified %+v, want skewed on w1", c)
	}
	// task 3.1: median input but worker w2's CPU barely moved → starved.
	if c := byTask["3.1"]; c.Class != "starved" || c.Worker != "w2" {
		t.Errorf("task 3.1 classified %+v, want starved on w2", c)
	}

	if len(run.Timeline) != 2 {
		t.Fatalf("timeline has %d lanes, want 2", len(run.Timeline))
	}
	if run.Timeline[0].Worker != "w1" || run.Timeline[1].Worker != "w2" {
		t.Errorf("timeline lanes not sorted by worker: %+v", run.Timeline)
	}
	for _, lane := range run.Timeline {
		if len(lane.Intervals) != 2 {
			t.Errorf("lane %s has %d intervals, want 2", lane.Worker, len(lane.Intervals))
		}
		for i := 1; i < len(lane.Intervals); i++ {
			if lane.Intervals[i].StartS < lane.Intervals[i-1].StartS {
				t.Errorf("lane %s intervals not in start order", lane.Worker)
			}
		}
	}

	// The text renderer with the timeline on must include the new sections.
	var sb strings.Builder
	if err := writeText(&sb, a, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"worker telemetry", "stragglers classified", "timeline", "crit"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q section:\n%s", want, out)
		}
	}
}
