package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"p3cmr/internal/obs"
)

// traceEvent mirrors the JSONL wire format of obs.JSONLTracer (and the
// flight recorder's post-mortem dumps): one JSON object per event.
type traceEvent struct {
	Ev      string              `json:"ev"`
	TS      float64             `json:"ts"`
	ID      int64               `json:"id"`
	Parent  int64               `json:"parent"`
	Span    int64               `json:"span"`
	Kind    string              `json:"kind"`
	Name    string              `json:"name"`
	Task    *int                `json:"task"`
	Attempt int                 `json:"attempt"`
	Phase   string              `json:"phase"`
	Point   string              `json:"point"`
	Outcome string              `json:"outcome"`
	Err     string              `json:"err"`
	RealS   float64             `json:"real_s"`
	SimS    float64             `json:"sim_s"`
	Seconds float64             `json:"seconds"`
	Value   float64             `json:"value"`
	Retries int64               `json:"retries"`
	Worker  string              `json:"worker"`
	Sample  *obs.ResourceSample `json:"sample"`
	Ctrs    *obs.Counters       `json:"counters"`
	Wasted  *obs.Counters       `json:"wasted"`
}

// span is one reconstructed trace span.
type span struct {
	id       int64
	parent   int64
	kind     string
	name     string
	task     int
	attempt  int
	phase    string
	beginTS  float64
	endTS    float64
	closed   bool
	outcome  string
	errText  string
	realS    float64
	simS     float64
	retries  int64
	worker   string
	counters obs.Counters
	wasted   obs.Counters
	children []*span
	points   []*traceEvent
}

func (s *span) taskStr() string {
	if s.kind != "task" {
		return ""
	}
	if s.task == -1 {
		return "shuffle"
	}
	return fmt.Sprintf("%d.%d", s.task, s.attempt)
}

// ---- analysis output ------------------------------------------------------

// Analysis is the full result of analyzing one trace file — the -json
// payload.
type Analysis struct {
	Events int           `json:"events"`
	Spans  int           `json:"spans"`
	Runs   []RunAnalysis `json:"runs"`
}

// RunAnalysis reconstructs one root span (a pipeline run, or a detached job
// when the engine was traced without the pipeline layer).
type RunAnalysis struct {
	Name             string           `json:"name"`
	Kind             string           `json:"kind"`
	Outcome          string           `json:"outcome"`
	Err              string           `json:"err,omitempty"`
	WallSeconds      float64          `json:"wall_s"`
	SimulatedSeconds float64          `json:"sim_s"`
	Counters         obs.Counters     `json:"counters"`
	Wasted           obs.Counters     `json:"wasted"`
	Retries          int64            `json:"retries"`
	TaskAttempts     int              `json:"task_attempts"`
	Faults           int              `json:"faults"`
	Cancels          int              `json:"cancels"`
	Phases           []PhaseRow       `json:"phases,omitempty"`
	CriticalPath     []CPStep         `json:"critical_path"`
	Skew             []SkewRow        `json:"skew,omitempty"`
	Stragglers       []StragglerRow   `json:"stragglers,omitempty"`
	RetryWaste       []WasteRow       `json:"retry_waste,omitempty"`
	Workers          []WorkerRow      `json:"workers,omitempty"`
	Classified       []ClassifyRow    `json:"classified,omitempty"`
	Timeline         []TimelineRow    `json:"timeline,omitempty"`
	Slowest          []AttemptRow     `json:"slowest,omitempty"`
	Convergence      []ConvergenceRow `json:"convergence,omitempty"`
}

// ConvergenceRow is the iteration series of one algorithm-level metric
// point ("em_log_likelihood", "quality_outlier_mass", …): the driver emits
// one PointMetric per EM iteration (or per phase for the signature/outlier
// quality stats), and this row replays that series for the convergence
// table and for run-to-run comparison in -diff.
type ConvergenceRow struct {
	Name   string             `json:"name"`
	Points []ConvergencePoint `json:"points"`
}

// ConvergencePoint is one observation: Iter is the point's task field (the
// EM iteration index; 0 for one-shot quality stats).
type ConvergencePoint struct {
	Iter  int     `json:"iter"`
	Value float64 `json:"value"`
}

// WorkerRow attributes task attempts to one worker process of the
// multiprocess backend: how much wall time it ran, how much of that was
// attempts that died on it (the retry waste a straggling or crashing
// worker causes), and the straggler delay charged to it. Present only for
// traces whose task spans carry worker names.
type WorkerRow struct {
	Worker           string  `json:"worker"`
	Attempts         int     `json:"attempts"`
	Faults           int     `json:"faults"`
	WallSeconds      float64 `json:"wall_s"`
	FaultWallSeconds float64 `json:"fault_wall_s"`
	StragglerSeconds float64 `json:"straggler_s"`
	WastedRecords    int64   `json:"wasted_records"`

	// Telemetry-derived fields, present when the trace carries worker
	// resource samples and step spans (multiprocess backend with tracing).
	Samples        int                `json:"samples,omitempty"`
	CPUSeconds     float64            `json:"cpu_s,omitempty"`
	Utilization    float64            `json:"utilization,omitempty"` // ΔCPU/Δwall over the sampled window
	PeakRSSBytes   int64              `json:"peak_rss_b,omitempty"`
	PeakQueueBytes int64              `json:"peak_queue_b,omitempty"`
	SpillBytes     int64              `json:"spill_b,omitempty"` // high-water spill-dir bytes
	StepSeconds    map[string]float64 `json:"step_s,omitempty"`  // per step name ("map-exec", …)
}

// ClassifyRow labels one slow task attempt. A straggler is "skewed" when it
// consumed disproportionately many input records (data skew — the paper's
// reducer-key-skew concern), "starved" when its worker's CPU utilization was
// low over the sampled window (contended host or backpressure), and
// "unknown" otherwise.
type ClassifyRow struct {
	Job         string  `json:"job"`
	Phase       string  `json:"phase"`
	Task        string  `json:"task"`
	Worker      string  `json:"worker,omitempty"`
	Seconds     float64 `json:"seconds"`
	MedianS     float64 `json:"median_s"`
	InputRatio  float64 `json:"input_ratio"` // attempt records / group median records
	Utilization float64 `json:"utilization"`
	Class       string  `json:"class"` // "skewed" | "starved" | "unknown"
}

// TimelineRow is one worker's occupancy lane: the closed task attempts it
// ran, in start order. Rendered by -timeline against the driver critical
// path.
type TimelineRow struct {
	Worker    string     `json:"worker"`
	Intervals []Interval `json:"intervals"`
}

// Interval is one task attempt on a timeline lane.
type Interval struct {
	StartS  float64 `json:"start_s"`
	EndS    float64 `json:"end_s"`
	Phase   string  `json:"phase"`
	Task    string  `json:"task"`
	Outcome string  `json:"outcome"`
}

// CPStep is one hop of the critical path: the chain of last-finishing
// children from the root down to a leaf. SelfSeconds is the portion of the
// step's duration not covered by its successor on the path — time
// attributable to the step itself (scheduling, merging, barriers).
type CPStep struct {
	Kind        string  `json:"kind"`
	Name        string  `json:"name"`
	Phase       string  `json:"phase,omitempty"`
	Task        string  `json:"task,omitempty"`
	StartS      float64 `json:"start_s"`
	EndS        float64 `json:"end_s"`
	DurationS   float64 `json:"duration_s"`
	SelfSeconds float64 `json:"self_s"`
}

// PhaseRow is the per-pipeline-phase cost breakdown.
type PhaseRow struct {
	Name             string  `json:"name"`
	WallSeconds      float64 `json:"wall_s"`
	SimulatedSeconds float64 `json:"sim_s"`
	MapIn            int64   `json:"map_in"`
	ShuffledBytes    int64   `json:"shuffled_b"`
	Retries          int64   `json:"retries"`
	Jobs             int     `json:"jobs"`
	Tasks            int     `json:"tasks"`
}

// SkewRow quantifies task-duration skew within one job name + task phase:
// the max/median ratio is the straggler factor that bounds speedup (the
// reducer-key skew question of the paper's §7 evaluation).
type SkewRow struct {
	Job       string  `json:"job"`
	Phase     string  `json:"phase"`
	Tasks     int     `json:"tasks"`
	MedianS   float64 `json:"median_s"`
	P90S      float64 `json:"p90_s"`
	MaxS      float64 `json:"max_s"`
	Skew      float64 `json:"skew"` // max / median; 0 when median is 0
	SlowestID string  `json:"slowest_task"`
}

// StragglerRow attributes simulated straggler charge to one job + phase.
type StragglerRow struct {
	Job     string  `json:"job"`
	Phase   string  `json:"phase"`
	Count   int     `json:"count"`
	Seconds float64 `json:"seconds"`
}

// WasteRow attributes retry waste to one job name: how many attempts
// faulted, the wall time they burned, and the records they consumed before
// dying.
type WasteRow struct {
	Job           string  `json:"job"`
	FaultAttempts int     `json:"fault_attempts"`
	WallSeconds   float64 `json:"wall_s"`
	WastedRecords int64   `json:"wasted_records"`
}

// AttemptRow is one task attempt in the top-K slowest list.
type AttemptRow struct {
	Job      string  `json:"job"`
	Phase    string  `json:"phase"`
	Task     string  `json:"task"`
	Seconds  float64 `json:"seconds"`
	Outcome  string  `json:"outcome"`
	Worker   string  `json:"worker,omitempty"`
	StartS   float64 `json:"start_s"`
	Retries  int64   `json:"retries,omitempty"`
	Straggle float64 `json:"straggler_s,omitempty"`
}

// ---- parsing --------------------------------------------------------------

// parseTrace reads a JSONL trace and reconstructs the span forest.
func parseTrace(r io.Reader) (spans map[int64]*span, roots []*span, events int, err error) {
	spans = make(map[int64]*span)
	var pending []*traceEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev traceEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, nil, events, fmt.Errorf("line %d: %w", lineNo, err)
		}
		events++
		switch ev.Ev {
		case "begin":
			// Merge into an existing span rather than replace it: a flight
			// dump writes evicted critical events (often ends) before the
			// ring window, so this begin may follow its own end. Replacing
			// would drop the end's outcome and detach the span.
			s := spans[ev.ID]
			if s == nil {
				s = &span{id: ev.ID}
				spans[ev.ID] = s
			}
			s.parent = ev.Parent
			s.kind = ev.Kind
			s.name = ev.Name
			s.attempt = ev.Attempt
			s.phase = ev.Phase
			s.beginTS = ev.TS
			if ev.Task != nil {
				s.task = *ev.Task
			}
		case "end":
			s := spans[ev.ID]
			if s == nil {
				// End without begin (flight-recorder window may clip begins):
				// synthesize the span from the end's identity fields.
				s = &span{id: ev.ID, kind: ev.Kind, name: ev.Name,
					attempt: ev.Attempt, phase: ev.Phase, beginTS: ev.TS - ev.RealS}
				if ev.Task != nil {
					s.task = *ev.Task
				}
				spans[ev.ID] = s
			}
			s.closed = true
			s.endTS = ev.TS
			s.outcome = ev.Outcome
			s.errText = ev.Err
			s.realS = ev.RealS
			s.simS = ev.SimS
			s.retries = ev.Retries
			s.worker = ev.Worker
			if ev.Ctrs != nil {
				s.counters = *ev.Ctrs
			}
			if ev.Wasted != nil {
				s.wasted = *ev.Wasted
			}
		case "point":
			// Defer attachment until the whole file is read: a merged
			// multiprocess trace may place a point before its span's begin.
			e := ev
			pending = append(pending, &e)
		default:
			return nil, nil, events, fmt.Errorf("line %d: unknown event %q", lineNo, ev.Ev)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, events, err
	}
	for _, p := range pending {
		if s := spans[p.Span]; s != nil {
			s.points = append(s.points, p)
		}
	}
	ids := make([]int64, 0, len(spans))
	for id := range spans {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s := spans[id]
		if parent := spans[s.parent]; s.parent != 0 && parent != nil {
			parent.children = append(parent.children, s)
		} else {
			roots = append(roots, s)
		}
	}
	return spans, roots, events, nil
}

// ---- analysis -------------------------------------------------------------

// analyze builds the full analysis of a parsed trace. topK bounds the
// slowest-attempts list.
func analyze(spans map[int64]*span, roots []*span, events, topK int) *Analysis {
	a := &Analysis{Events: events, Spans: len(spans)}
	for _, root := range roots {
		a.Runs = append(a.Runs, analyzeRun(root, topK))
	}
	return a
}

func analyzeRun(root *span, topK int) RunAnalysis {
	ra := RunAnalysis{
		Name: root.name, Kind: root.kind,
		Outcome: root.outcome, Err: root.errText,
		WallSeconds:      root.realS,
		SimulatedSeconds: root.simS,
		Counters:         root.counters,
		Wasted:           root.wasted,
		Retries:          root.retries,
	}
	if !root.closed {
		ra.Outcome = "unclosed"
	}

	// Walk the subtree once, collecting task attempts, phases, points.
	var tasks []*span
	straggle := make(map[jobPhaseKey]*StragglerRow)
	waste := make(map[string]*WasteRow)
	workers := make(map[string]*WorkerRow)
	workerRow := func(name string) *WorkerRow {
		wr := workers[name]
		if wr == nil {
			wr = &WorkerRow{Worker: name}
			workers[name] = wr
		}
		return wr
	}
	type sampleAt struct{ ts, cpu float64 }
	samples := make(map[string][]sampleAt)
	conv := make(map[string][]ConvergencePoint)
	var walk func(s *span)
	walk = func(s *span) {
		switch s.kind {
		case "step":
			// Worker-side sub-phase (map-exec, spill-write, …): charge its
			// wall time to the worker, never to the task-attempt counts.
			if s.worker != "" && s.closed {
				wr := workerRow(s.worker)
				if wr.StepSeconds == nil {
					wr.StepSeconds = make(map[string]float64)
				}
				wr.StepSeconds[s.name] += s.realS
			}
		case "phase":
			row := PhaseRow{Name: s.name, WallSeconds: s.realS, SimulatedSeconds: s.simS,
				MapIn: s.counters.MapInputRecords, ShuffledBytes: s.counters.ShuffledBytes,
				Retries: s.retries}
			for _, c := range s.children {
				if c.kind == "job" {
					row.Jobs++
					for _, t := range c.children {
						if t.kind == "task" && t.task != -1 {
							row.Tasks++
						}
					}
				}
			}
			ra.Phases = append(ra.Phases, row)
		case "task":
			if s.task != -1 {
				tasks = append(tasks, s)
				ra.TaskAttempts++
				if s.worker != "" {
					wr := workerRow(s.worker)
					wr.Attempts++
					wr.WallSeconds += s.realS
					if s.outcome == "fault" {
						wr.Faults++
						wr.FaultWallSeconds += s.realS
						wr.WastedRecords += s.wasted.MapInputRecords + s.wasted.ReduceInputVals
					}
				}
				switch s.outcome {
				case "fault":
					ra.Faults++
					wr := waste[s.name]
					if wr == nil {
						wr = &WasteRow{Job: s.name}
						waste[s.name] = wr
					}
					wr.FaultAttempts++
					wr.WallSeconds += s.realS
					wr.WastedRecords += s.wasted.MapInputRecords + s.wasted.ReduceInputVals
				case "cancelled":
					ra.Cancels++
				}
			}
		}
		for _, p := range s.points {
			switch p.Point {
			case "straggler":
				k := jobPhaseKey{p.Name, p.Phase}
				sr := straggle[k]
				if sr == nil {
					sr = &StragglerRow{Job: p.Name, Phase: p.Phase}
					straggle[k] = sr
				}
				sr.Count++
				sr.Seconds += p.Seconds
				if p.Worker != "" {
					workerRow(p.Worker).StragglerSeconds += p.Seconds
				}
			case "cancel":
				ra.Cancels++
			case "sample":
				if p.Worker == "" || p.Sample == nil {
					break
				}
				wr := workerRow(p.Worker)
				wr.Samples++
				if p.Sample.RSSBytes > wr.PeakRSSBytes {
					wr.PeakRSSBytes = p.Sample.RSSBytes
				}
				if p.Sample.QueueBytes > wr.PeakQueueBytes {
					wr.PeakQueueBytes = p.Sample.QueueBytes
				}
				if p.Sample.SpillBytes > wr.SpillBytes {
					wr.SpillBytes = p.Sample.SpillBytes
				}
				samples[p.Worker] = append(samples[p.Worker], sampleAt{p.TS, p.Sample.CPUSeconds})
			case "metric":
				iter := 0
				if p.Task != nil {
					iter = *p.Task
				}
				conv[p.Name] = append(conv[p.Name], ConvergencePoint{Iter: iter, Value: p.Value})
			}
		}
		for _, c := range s.children {
			walk(c)
		}
	}
	walk(root)

	// Per-worker utilization: ΔCPU over Δwall across the sampled window.
	names := make([]string, 0, len(samples))
	for n := range samples {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ss := samples[n]
		sort.Slice(ss, func(i, j int) bool { return ss[i].ts < ss[j].ts })
		wr := workers[n]
		wr.CPUSeconds = ss[len(ss)-1].cpu
		if dt := ss[len(ss)-1].ts - ss[0].ts; len(ss) >= 2 && dt > 0 {
			wr.Utilization = (ss[len(ss)-1].cpu - ss[0].cpu) / dt
		}
	}

	ra.CriticalPath = criticalPath(root)
	ra.Skew = skewRows(tasks)
	ra.Stragglers = sortedStragglers(straggle)
	ra.RetryWaste = sortedWaste(waste)
	ra.Workers = sortedWorkers(workers)
	ra.Classified = classifyRows(tasks, workers)
	ra.Timeline = timelineRows(tasks)
	ra.Slowest = slowestAttempts(tasks, topK)
	ra.Convergence = convergenceRows(conv)
	return ra
}

// convergenceRows orders the collected metric series by name, and each
// series by iteration (emission order breaks ties — metric points are
// driver-side and arrive in order, but a merged trace may interleave).
func convergenceRows(m map[string][]ConvergencePoint) []ConvergenceRow {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	rows := make([]ConvergenceRow, 0, len(names))
	for _, n := range names {
		pts := m[n]
		sort.SliceStable(pts, func(i, j int) bool { return pts[i].Iter < pts[j].Iter })
		rows = append(rows, ConvergenceRow{Name: n, Points: pts})
	}
	return rows
}

// slowFactor is the straggler threshold: an attempt is slow when its wall
// time is at least this multiple of its (job, phase) group median. The same
// factor flags data skew on the input-ratio axis.
const slowFactor = 1.5

// classifyRows flags attempts ≥ slowFactor× their group median and labels
// each as skewed / starved / unknown (see ClassifyRow). Groups with fewer
// than two attempts have no meaningful median and are skipped.
func classifyRows(tasks []*span, workers map[string]*WorkerRow) []ClassifyRow {
	groups := make(map[jobPhaseKey][]*span)
	for _, t := range tasks {
		k := jobPhaseKey{t.name, t.phase}
		groups[k] = append(groups[k], t)
	}
	keys := make([]jobPhaseKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].job != keys[j].job {
			return keys[i].job < keys[j].job
		}
		return keys[i].phase < keys[j].phase
	})
	var rows []ClassifyRow
	for _, k := range keys {
		g := groups[k]
		if len(g) < 2 {
			continue
		}
		durs := make([]float64, len(g))
		recs := make([]float64, len(g))
		for i, t := range g {
			durs[i] = t.realS
			recs[i] = float64(t.counters.MapInputRecords + t.counters.ReduceInputVals)
		}
		sort.Float64s(durs)
		sort.Float64s(recs)
		med := quantileOf(durs, 0.5)
		medRec := quantileOf(recs, 0.5)
		if med <= 0 {
			continue
		}
		for _, t := range g {
			if t.realS < slowFactor*med {
				continue
			}
			row := ClassifyRow{Job: k.job, Phase: k.phase, Task: t.taskStr(),
				Worker: t.worker, Seconds: t.realS, MedianS: med}
			if medRec > 0 {
				row.InputRatio = float64(t.counters.MapInputRecords+t.counters.ReduceInputVals) / medRec
			}
			var util float64
			nSamples := 0
			if wr := workers[t.worker]; wr != nil {
				util, nSamples = wr.Utilization, wr.Samples
			}
			row.Utilization = util
			switch {
			case row.InputRatio >= slowFactor:
				row.Class = "skewed"
			case nSamples >= 2 && util < 0.5:
				row.Class = "starved"
			default:
				row.Class = "unknown"
			}
			rows = append(rows, row)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Seconds != rows[j].Seconds {
			return rows[i].Seconds > rows[j].Seconds
		}
		if rows[i].Job != rows[j].Job {
			return rows[i].Job < rows[j].Job
		}
		return rows[i].Task < rows[j].Task
	})
	return rows
}

// timelineRows builds one occupancy lane per worker from its closed task
// attempts.
func timelineRows(tasks []*span) []TimelineRow {
	byWorker := make(map[string][]Interval)
	for _, t := range tasks {
		if t.worker == "" || !t.closed {
			continue
		}
		byWorker[t.worker] = append(byWorker[t.worker], Interval{
			StartS: t.beginTS, EndS: t.endTS, Phase: t.phase,
			Task: t.taskStr(), Outcome: t.outcome,
		})
	}
	names := make([]string, 0, len(byWorker))
	for n := range byWorker {
		names = append(names, n)
	}
	sort.Strings(names)
	rows := make([]TimelineRow, 0, len(names))
	for _, n := range names {
		iv := byWorker[n]
		sort.Slice(iv, func(i, j int) bool {
			if iv[i].StartS != iv[j].StartS {
				return iv[i].StartS < iv[j].StartS
			}
			return iv[i].EndS < iv[j].EndS
		})
		rows = append(rows, TimelineRow{Worker: n, Intervals: iv})
	}
	return rows
}

// sortedWorkers orders worker rows by fault wall time (the waste a bad
// worker cost the run), then total wall time, then name.
func sortedWorkers(m map[string]*WorkerRow) []WorkerRow {
	rows := make([]WorkerRow, 0, len(m))
	for _, r := range m {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].FaultWallSeconds != rows[j].FaultWallSeconds {
			return rows[i].FaultWallSeconds > rows[j].FaultWallSeconds
		}
		if rows[i].WallSeconds != rows[j].WallSeconds {
			return rows[i].WallSeconds > rows[j].WallSeconds
		}
		return rows[i].Worker < rows[j].Worker
	})
	return rows
}

// criticalPath follows, from the root down, the child that finishes last —
// the chain of spans whose completion gated the run's end. Ties break
// toward the longer child, then the higher span ID (later-allocated).
func criticalPath(root *span) []CPStep {
	var path []CPStep
	for s := root; s != nil; {
		dur := s.endTS - s.beginTS
		if s.realS > 0 {
			dur = s.realS
		}
		step := CPStep{Kind: s.kind, Name: s.name, Phase: s.phase, Task: s.taskStr(),
			StartS: s.beginTS, EndS: s.endTS, DurationS: dur, SelfSeconds: dur}
		var last *span
		for _, c := range s.children {
			if !c.closed {
				continue
			}
			if last == nil || c.endTS > last.endTS ||
				(c.endTS == last.endTS && (c.endTS-c.beginTS > last.endTS-last.beginTS ||
					(c.endTS-c.beginTS == last.endTS-last.beginTS && c.id > last.id))) {
				last = c
			}
		}
		if last != nil {
			step.SelfSeconds = dur - (last.endTS - last.beginTS)
			if step.SelfSeconds < 0 {
				step.SelfSeconds = 0
			}
		}
		path = append(path, step)
		s = last
	}
	return path
}

// jobPhaseKey groups task attempts by job name and task phase.
type jobPhaseKey struct{ job, phase string }

// skewRows computes per-(job, task-phase) duration skew.
func skewRows(tasks []*span) []SkewRow {
	groups := make(map[jobPhaseKey][]*span)
	for _, t := range tasks {
		k := jobPhaseKey{t.name, t.phase}
		groups[k] = append(groups[k], t)
	}
	keys := make([]jobPhaseKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].job != keys[j].job {
			return keys[i].job < keys[j].job
		}
		return keys[i].phase < keys[j].phase
	})
	var rows []SkewRow
	for _, k := range keys {
		g := groups[k]
		durs := make([]float64, len(g))
		slowest := g[0]
		for i, t := range g {
			durs[i] = t.realS
			if t.realS > slowest.realS {
				slowest = t
			}
		}
		sort.Float64s(durs)
		row := SkewRow{Job: k.job, Phase: k.phase, Tasks: len(g),
			MedianS:   quantileOf(durs, 0.5),
			P90S:      quantileOf(durs, 0.9),
			MaxS:      durs[len(durs)-1],
			SlowestID: slowest.taskStr(),
		}
		if row.MedianS > 0 {
			row.Skew = row.MaxS / row.MedianS
		}
		rows = append(rows, row)
	}
	return rows
}

// quantileOf reads the q-quantile of a sorted sample by nearest-rank.
func quantileOf(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func sortedStragglers(m map[jobPhaseKey]*StragglerRow) []StragglerRow {
	rows := make([]StragglerRow, 0, len(m))
	for _, r := range m {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Seconds != rows[j].Seconds {
			return rows[i].Seconds > rows[j].Seconds
		}
		if rows[i].Job != rows[j].Job {
			return rows[i].Job < rows[j].Job
		}
		return rows[i].Phase < rows[j].Phase
	})
	return rows
}

func sortedWaste(m map[string]*WasteRow) []WasteRow {
	rows := make([]WasteRow, 0, len(m))
	for _, r := range m {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].WallSeconds != rows[j].WallSeconds {
			return rows[i].WallSeconds > rows[j].WallSeconds
		}
		return rows[i].Job < rows[j].Job
	})
	return rows
}

func slowestAttempts(tasks []*span, topK int) []AttemptRow {
	sorted := append([]*span(nil), tasks...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].realS != sorted[j].realS {
			return sorted[i].realS > sorted[j].realS
		}
		return sorted[i].id < sorted[j].id
	})
	if topK > 0 && len(sorted) > topK {
		sorted = sorted[:topK]
	}
	rows := make([]AttemptRow, 0, len(sorted))
	for _, t := range sorted {
		row := AttemptRow{Job: t.name, Phase: t.phase, Task: t.taskStr(),
			Seconds: t.realS, Outcome: t.outcome, Worker: t.worker,
			StartS: t.beginTS, Retries: t.retries}
		for _, p := range t.points {
			if p.Point == "straggler" {
				row.Straggle += p.Seconds
			}
		}
		rows = append(rows, row)
	}
	return rows
}
