package main

import (
	"bytes"
	"math"
	"os"
	"regexp"
	"strconv"
	"testing"

	"p3cmr/internal/core"
	"p3cmr/internal/dataset"
	"p3cmr/internal/mr"
	"p3cmr/internal/obs"
)

// TestAnalyzeReconcilesWithLiveSinks is the p3ctrace oracle: it traces a
// chaos-plan pipeline through three sinks at once — a JSONL trace (what
// p3ctrace consumes), a MemTracer (ground-truth span log), and a
// ReportCollector (the human report) — and asserts the offline analysis
// agrees with both live views event for event.
func TestAnalyzeReconcilesWithLiveSinks(t *testing.T) {
	data, _, err := dataset.Generate(dataset.GenConfig{N: 2000, Dim: 12, Clusters: 3, NoiseFraction: 0.1, Seed: 55, Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	params := core.LightParams()
	params.NumSplits = 12

	var buf bytes.Buffer
	jsonl := obs.NewJSONLTracer(&buf)
	mem := obs.NewMemTracer()
	rep := obs.NewReportCollector()
	engine := mr.NewEngine(mr.Config{
		Parallelism: 8, NumReducers: 3,
		Faults:      mr.RateFaultPlan{MapRate: 0.25, ReduceRate: 0.3, StragglerRate: 0.4, StragglerSeconds: 7, Seed: 107},
		MaxAttempts: 12,
		Tracer:      obs.Multi(jsonl, mem, rep),
	})
	res, err := core.Run(engine, data, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := jsonl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mem.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Stats.Counters.TaskRetries == 0 {
		t.Fatal("chaos plan injected no retries — oracle exercises nothing")
	}

	spans, roots, events, err := parseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := analyze(spans, roots, events, 5)
	if len(a.Runs) != 1 {
		t.Fatalf("analysis found %d roots, want 1 pipeline run", len(a.Runs))
	}
	run := a.Runs[0]
	if run.Name != "p3c-pipeline" || run.Kind != "run" || run.Outcome != "ok" {
		t.Fatalf("run analysis = %+v", run)
	}

	// --- reconcile with the MemTracer ground truth -----------------------
	wantAttempts, wantFaults, wantCancels := 0, 0, 0
	for _, e := range mem.Ends() {
		if e.Kind == obs.KindTask && e.Phase != "shuffle" {
			wantAttempts++
			switch e.Outcome {
			case obs.OutcomeFault:
				wantFaults++
			case obs.OutcomeCancelled:
				wantCancels++
			}
		}
	}
	if run.TaskAttempts != wantAttempts {
		t.Errorf("analysis counts %d task attempts, MemTracer saw %d", run.TaskAttempts, wantAttempts)
	}
	if run.Faults != wantFaults {
		t.Errorf("analysis counts %d faults, MemTracer saw %d", run.Faults, wantFaults)
	}
	if run.Cancels < wantCancels {
		t.Errorf("analysis counts %d cancels, MemTracer saw %d cancelled attempts", run.Cancels, wantCancels)
	}
	if run.Retries != res.Stats.Counters.TaskRetries {
		t.Errorf("analysis run retries = %d, pipeline counted %d", run.Retries, res.Stats.Counters.TaskRetries)
	}

	// Per-phase simulated/wall totals must match the phase spans MemTracer
	// recorded, phase by phase in order.
	var phaseEnds []obs.End
	for _, e := range mem.Ends() {
		if e.Kind == obs.KindPhase {
			phaseEnds = append(phaseEnds, e)
		}
	}
	if len(run.Phases) != len(phaseEnds) {
		t.Fatalf("analysis has %d phases, MemTracer saw %d", len(run.Phases), len(phaseEnds))
	}
	planned := params.PhasePlan()
	if len(planned) != len(run.Phases) {
		t.Fatalf("PhasePlan promises %d phases, trace has %d", len(planned), len(run.Phases))
	}
	for i, p := range run.Phases {
		if p.Name != planned[i] {
			t.Errorf("phase %d = %q, PhasePlan says %q", i, p.Name, planned[i])
		}
		if p.Name != phaseEnds[i].Name {
			t.Errorf("phase %d = %q, MemTracer saw %q", i, p.Name, phaseEnds[i].Name)
		}
		if math.Abs(p.SimulatedSeconds-phaseEnds[i].SimulatedSeconds) > 1e-9 {
			t.Errorf("phase %q sim %g vs MemTracer %g", p.Name, p.SimulatedSeconds, phaseEnds[i].SimulatedSeconds)
		}
		if math.Abs(p.WallSeconds-phaseEnds[i].RealSeconds) > 1e-9 {
			t.Errorf("phase %q wall %g vs MemTracer %g", p.Name, p.WallSeconds, phaseEnds[i].RealSeconds)
		}
	}

	// Straggler attribution totals must equal the straggler points emitted.
	var wantStragglerS float64
	wantStragglers := 0
	for _, p := range mem.Points() {
		if p.Kind == obs.PointStraggler {
			wantStragglers++
			wantStragglerS += p.Seconds
		}
	}
	gotStragglers, gotStragglerS := 0, 0.0
	for _, s := range run.Stragglers {
		gotStragglers += s.Count
		gotStragglerS += s.Seconds
	}
	if gotStragglers != wantStragglers || math.Abs(gotStragglerS-wantStragglerS) > 1e-9 {
		t.Errorf("straggler attribution %d/%.3fs, MemTracer saw %d/%.3fs",
			gotStragglers, gotStragglerS, wantStragglers, wantStragglerS)
	}
	if wantStragglers == 0 {
		t.Error("plan injected no stragglers — attribution untested")
	}

	// Retry-waste attribution: fault attempts must sum to the fault count.
	wasteFaults := 0
	for _, w := range run.RetryWaste {
		wasteFaults += w.FaultAttempts
	}
	if wasteFaults != wantFaults {
		t.Errorf("retry-waste rows cover %d fault attempts, want %d", wasteFaults, wantFaults)
	}

	// --- reconcile with the ReportCollector summary line ------------------
	var repBuf bytes.Buffer
	if err := rep.WriteReport(&repBuf); err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`run summary: (\d+) jobs, (\d+) task attempts \((\d+) faulted, (\d+) cancelled\), (\d+) retries`).
		FindStringSubmatch(repBuf.String())
	if m == nil {
		t.Fatalf("report summary line not found in:\n%s", repBuf.String())
	}
	atoi := func(s string) int { n, _ := strconv.Atoi(s); return n }
	if atoi(m[2]) != run.TaskAttempts || atoi(m[3]) != run.Faults || atoi(m[5]) != int(run.Retries) {
		t.Errorf("report says %s attempts/%s faults/%s retries; analysis says %d/%d/%d",
			m[2], m[3], m[5], run.TaskAttempts, run.Faults, run.Retries)
	}

	// --- structural critical-path checks ---------------------------------
	cp := run.CriticalPath
	if len(cp) < 3 {
		t.Fatalf("critical path has %d steps, want at least run→phase→job", len(cp))
	}
	if cp[0].Kind != "run" {
		t.Errorf("critical path starts at %q, want the run", cp[0].Kind)
	}
	for i := 1; i < len(cp); i++ {
		if cp[i].StartS < cp[i-1].StartS-1e-9 || cp[i].EndS > cp[i-1].EndS+1e-9 {
			t.Errorf("critical-path step %d [%g,%g] not contained in parent [%g,%g]",
				i, cp[i].StartS, cp[i].EndS, cp[i-1].StartS, cp[i-1].EndS)
		}
		if cp[i].SelfSeconds < 0 {
			t.Errorf("critical-path step %d has negative self time", i)
		}
	}

	// Skew rows: every (job, phase) group's max must be >= its median, and
	// the listed slowest attempt must exist in the trace.
	if len(run.Skew) == 0 {
		t.Fatal("no skew rows for a multi-job pipeline")
	}
	for _, s := range run.Skew {
		if s.MaxS+1e-12 < s.MedianS || s.MaxS+1e-12 < s.P90S {
			t.Errorf("skew row %s/%s has max %g < median %g or p90 %g", s.Job, s.Phase, s.MaxS, s.MedianS, s.P90S)
		}
	}

	// Top-K list: bounded by K and sorted descending.
	if len(run.Slowest) > 5 {
		t.Errorf("top-K list has %d entries, want <= 5", len(run.Slowest))
	}
	for i := 1; i < len(run.Slowest); i++ {
		if run.Slowest[i].Seconds > run.Slowest[i-1].Seconds {
			t.Errorf("slowest list not sorted at %d", i)
		}
	}

	// The text renderer must handle the full analysis without error.
	var txt bytes.Buffer
	if err := writeText(&txt, a, true); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"critical path", "skew (job/phase)", "retry waste (job)", "slowest attempts"} {
		if !bytes.Contains(txt.Bytes(), []byte(want)) {
			t.Errorf("text output missing %q section", want)
		}
	}
}

// TestMain lets this test binary serve as a multiprocess-backend worker
// when the worker-attribution test below re-execs it.
func TestMain(m *testing.M) {
	mr.MaybeWorkerProcess()
	os.Exit(m.Run())
}

func init() {
	mr.RegisterJobImpl("trace-wordcount", func(spec []byte) (mr.JobFuncs, error) {
		return mr.JobFuncs{
			Mapper: mr.MapperFunc(func(ctx *mr.TaskContext, global int, row []float64) error {
				ctx.EmitI64(strconv.Itoa(int(row[0])%13), 1)
				return nil
			}),
			TypedReducer: mr.TypedReducerFunc(func(ctx *mr.TaskContext, key string, values mr.Values) error {
				var s int64
				for i := 0; i < values.Len(); i++ {
					s += values.Int64(i)
				}
				ctx.EmitI64(key, s)
				return nil
			}),
		}, nil
	})
}

// TestAnalyzeWorkerAttribution pins the per-worker view of a multiprocess
// trace: every task attempt span carries the worker process it ran on, the
// worker table partitions the run's attempts and faults exactly, and
// faulted (SIGKILLed) attempts are attributed to the worker that died.
func TestAnalyzeWorkerAttribution(t *testing.T) {
	rows := make([]float64, 600)
	for i := range rows {
		rows[i] = float64(i)
	}
	splits := make([]*mr.Split, 6)
	for s := range splits {
		splits[s] = &mr.Split{ID: s, Offset: s * 100, Dim: 1, Rows: rows[s*100 : (s+1)*100]}
	}
	job := &mr.Job{Name: "trace-wc", Splits: splits, Impl: "trace-wordcount", NumReducers: 3}

	var buf bytes.Buffer
	jsonl := obs.NewJSONLTracer(&buf)
	engine := mr.NewEngine(mr.Config{
		Parallelism: 4, Backend: "multiprocess", SpillDir: t.TempDir(), SpillThresholdBytes: 1,
		Faults:      mr.RateFaultPlan{MapRate: 0.4, ReduceRate: 0.4, Seed: 3},
		MaxAttempts: 12, Tracer: jsonl,
	})
	out, err := engine.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if err := jsonl.Close(); err != nil {
		t.Fatal(err)
	}
	if out.Counters.TaskRetries == 0 {
		t.Fatal("fault plan injected no retries — attribution untested")
	}

	spans, roots, events, err := parseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := analyze(spans, roots, events, 10)
	if len(a.Runs) != 1 {
		t.Fatalf("analysis found %d roots, want 1", len(a.Runs))
	}
	run := a.Runs[0]
	if len(run.Workers) == 0 {
		t.Fatal("multiprocess trace produced no worker rows")
	}
	attempts, faults := 0, 0
	for _, w := range run.Workers {
		if w.Worker == "" || w.Attempts == 0 {
			t.Errorf("implausible worker row %+v", w)
		}
		attempts += w.Attempts
		faults += w.Faults
	}
	if attempts != run.TaskAttempts {
		t.Errorf("worker rows cover %d attempts, run has %d", attempts, run.TaskAttempts)
	}
	if faults != run.Faults {
		t.Errorf("worker rows cover %d faults, run has %d", faults, run.Faults)
	}
	if faults == 0 {
		t.Error("no fault attributed to any worker despite injected kills")
	}
	for _, s := range run.Slowest {
		if s.Worker == "" {
			t.Errorf("slowest attempt %+v lacks worker attribution", s)
		}
	}
}
