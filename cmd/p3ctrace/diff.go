package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"text/tabwriter"

	"p3cmr/internal/obs"
	"p3cmr/internal/obs/archive"
)

// diffGates are the regression thresholds of -diff. Each gate is disabled
// when negative: stragglerSeconds is an absolute bound on how many more
// straggler-seconds run B may carry than run A (straggler charge is
// deterministic under -simulate, so this gate is CI-stable); wallFrac and
// simFrac bound fractional growth of the run's wall and simulated totals.
type diffGates struct {
	stragglerSeconds float64
	wallFrac         float64
	simFrac          float64
}

// resolveTrace maps one -diff argument to a concrete trace file. Accepted
// shapes, tried in order: a plain trace file; an archive record directory
// (contains trace.jsonl); an archive root (contains records — the newest by
// sequence number wins, so "compare against the archive" means "compare
// against the latest archived run").
func resolveTrace(path string) (string, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	if !fi.IsDir() {
		return path, nil
	}
	if rec := filepath.Join(path, "trace.jsonl"); fileExists(rec) {
		return rec, nil
	}
	arch, err := archive.Open(path)
	if err != nil {
		return "", err
	}
	recs, err := arch.List()
	if err != nil {
		return "", err
	}
	if len(recs) == 0 {
		return "", fmt.Errorf("%s: directory holds neither a trace.jsonl nor archive records", path)
	}
	newest := recs[len(recs)-1] // List is sorted by Seq ascending
	return arch.TracePath(newest.ID), nil
}

func fileExists(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && !fi.IsDir()
}

// loadRun resolves, parses and analyzes one -diff argument, returning the
// first root run of the trace.
func loadRun(arg string) (*RunAnalysis, string, error) {
	path, err := resolveTrace(arg)
	if err != nil {
		return nil, "", err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	spans, roots, events, err := parseTrace(f)
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	a := analyze(spans, roots, events, 10)
	if len(a.Runs) == 0 {
		return nil, "", fmt.Errorf("%s: trace holds no run spans", path)
	}
	return &a.Runs[0], path, nil
}

// runTraceDiff compares two runs and reports per-phase wall/simulated
// deltas, critical-path self-time drift, per-worker utilization and
// straggler-waste deltas, counter drift, and convergence drift. It returns
// 1 when any enabled gate trips, 0 otherwise.
func runTraceDiff(w io.Writer, argA, argB string, g diffGates) int {
	a, pathA, err := loadRun(argA)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p3ctrace:", err)
		return 1
	}
	b, pathB, err := loadRun(argB)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p3ctrace:", err)
		return 1
	}

	fmt.Fprintf(w, "A: %s (%s %q, %s)\n", pathA, a.Kind, a.Name, a.Outcome)
	fmt.Fprintf(w, "B: %s (%s %q, %s)\n", pathB, b.Kind, b.Name, b.Outcome)

	stragA, stragB := stragglerTotal(a), stragglerTotal(b)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\ntotals\tA\tB\tΔ")
	fmt.Fprintf(tw, "wall s\t%.3f\t%.3f\t%s\n", a.WallSeconds, b.WallSeconds, fracDelta(a.WallSeconds, b.WallSeconds))
	fmt.Fprintf(tw, "sim s\t%.3f\t%.3f\t%s\n", a.SimulatedSeconds, b.SimulatedSeconds, fracDelta(a.SimulatedSeconds, b.SimulatedSeconds))
	fmt.Fprintf(tw, "straggler s\t%.3f\t%.3f\t%+.3f\n", stragA, stragB, stragB-stragA)
	fmt.Fprintf(tw, "task attempts\t%d\t%d\t%+d\n", a.TaskAttempts, b.TaskAttempts, b.TaskAttempts-a.TaskAttempts)
	fmt.Fprintf(tw, "faults\t%d\t%d\t%+d\n", a.Faults, b.Faults, b.Faults-a.Faults)
	fmt.Fprintf(tw, "retries\t%d\t%d\t%+d\n", a.Retries, b.Retries, b.Retries-a.Retries)
	tw.Flush()

	writePhaseDiff(w, a.Phases, b.Phases)
	writeCriticalPathDiff(w, a.CriticalPath, b.CriticalPath)
	writeWorkerDiff(w, a.Workers, b.Workers)
	writeCounterDiff(w, a, b)
	writeConvergenceDiff(w, a.Convergence, b.Convergence)

	regressions := 0
	if g.stragglerSeconds >= 0 && stragB-stragA > g.stragglerSeconds {
		fmt.Fprintf(w, "\nREGRESSION straggler s %.3f→%.3f (+%.3f > %.3f)", stragA, stragB, stragB-stragA, g.stragglerSeconds)
		if rows := stragglerGrowth(a.Stragglers, b.Stragglers); len(rows) > 0 {
			fmt.Fprintf(w, " — worst: %s", rows[0])
		}
		fmt.Fprintln(w)
		regressions++
	}
	if g.wallFrac >= 0 && a.WallSeconds > 0 && (b.WallSeconds-a.WallSeconds)/a.WallSeconds > g.wallFrac {
		fmt.Fprintf(w, "\nREGRESSION wall s %.3f→%.3f (%s > +%.0f%%)\n",
			a.WallSeconds, b.WallSeconds, fracDelta(a.WallSeconds, b.WallSeconds), g.wallFrac*100)
		regressions++
	}
	if g.simFrac >= 0 && a.SimulatedSeconds > 0 && (b.SimulatedSeconds-a.SimulatedSeconds)/a.SimulatedSeconds > g.simFrac {
		fmt.Fprintf(w, "\nREGRESSION sim s %.3f→%.3f (%s > +%.0f%%)\n",
			a.SimulatedSeconds, b.SimulatedSeconds, fracDelta(a.SimulatedSeconds, b.SimulatedSeconds), g.simFrac*100)
		regressions++
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "p3ctrace: %d regression(s) beyond thresholds\n", regressions)
		return 1
	}
	fmt.Fprintln(w, "\nno regressions beyond thresholds")
	return 0
}

func stragglerTotal(r *RunAnalysis) float64 {
	total := 0.0
	for _, s := range r.Stragglers {
		total += s.Seconds
	}
	return total
}

// fracDelta formats a relative change, or "n/a" when the base is zero.
func fracDelta(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "+0.0%"
		}
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

// stragglerGrowth lists (job, phase) groups by straggler-seconds growth,
// largest first — the attribution line of the straggler gate. The rows come
// straight from straggler points, so they exist even in traces without
// pipeline phase spans (a bare engine job).
func stragglerGrowth(a, b []StragglerRow) []string {
	secsA := make(map[jobPhaseKey]float64, len(a))
	for _, r := range a {
		secsA[jobPhaseKey{r.Job, r.Phase}] += r.Seconds
	}
	type growth struct {
		key jobPhaseKey
		d   float64
	}
	var rows []growth
	for _, r := range b {
		k := jobPhaseKey{r.Job, r.Phase}
		if d := r.Seconds - secsA[k]; d > 0 {
			rows = append(rows, growth{k, d})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].d != rows[j].d {
			return rows[i].d > rows[j].d
		}
		if rows[i].key.job != rows[j].key.job {
			return rows[i].key.job < rows[j].key.job
		}
		return rows[i].key.phase < rows[j].key.phase
	})
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprintf("%s/%s (+%.3f s)", r.key.job, r.key.phase, r.d)
	}
	return out
}

// writePhaseDiff tables per-phase wall and simulated deltas over the union
// of phase names, A's order first, then phases only B has.
func writePhaseDiff(w io.Writer, a, b []PhaseRow) {
	if len(a) == 0 && len(b) == 0 {
		return
	}
	byName := func(rows []PhaseRow) map[string]PhaseRow {
		m := make(map[string]PhaseRow, len(rows))
		for _, p := range rows {
			// A repeated phase name folds into one row per side.
			acc := m[p.Name]
			acc.Name = p.Name
			acc.WallSeconds += p.WallSeconds
			acc.SimulatedSeconds += p.SimulatedSeconds
			acc.Retries += p.Retries
			m[p.Name] = acc
		}
		return m
	}
	mA, mB := byName(a), byName(b)
	names := unionNames(a, b)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\nphase\twall A\twall B\tΔwall\tsim A\tsim B\tΔsim\tretries A→B")
	for _, n := range names {
		pa, okA := mA[n]
		pb, okB := mB[n]
		switch {
		case !okA:
			fmt.Fprintf(tw, "%s\t-\t%.3f\t added\t-\t%.3f\t added\t-→%d\n", n, pb.WallSeconds, pb.SimulatedSeconds, pb.Retries)
		case !okB:
			fmt.Fprintf(tw, "%s\t%.3f\t-\t removed\t%.3f\t-\t removed\t%d→-\n", n, pa.WallSeconds, pa.SimulatedSeconds, pa.Retries)
		default:
			fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%s\t%.3f\t%.3f\t%s\t%d→%d\n",
				n, pa.WallSeconds, pb.WallSeconds, fracDelta(pa.WallSeconds, pb.WallSeconds),
				pa.SimulatedSeconds, pb.SimulatedSeconds, fracDelta(pa.SimulatedSeconds, pb.SimulatedSeconds),
				pa.Retries, pb.Retries)
		}
	}
	tw.Flush()
}

func unionNames(a, b []PhaseRow) []string {
	var names []string
	seen := make(map[string]bool)
	for _, p := range a {
		if !seen[p.Name] {
			seen[p.Name] = true
			names = append(names, p.Name)
		}
	}
	for _, p := range b {
		if !seen[p.Name] {
			seen[p.Name] = true
			names = append(names, p.Name)
		}
	}
	return names
}

// writeCriticalPathDiff aggregates each side's critical-path self time by
// step identity (kind + name) and tables the drift — which steps gate the
// run longer in B than in A.
func writeCriticalPathDiff(w io.Writer, a, b []CPStep) {
	if len(a) == 0 && len(b) == 0 {
		return
	}
	agg := func(path []CPStep) (map[string]float64, []string) {
		m := make(map[string]float64)
		var order []string
		for _, s := range path {
			key := s.Kind + " " + s.Name
			if _, ok := m[key]; !ok {
				order = append(order, key)
			}
			m[key] += s.SelfSeconds
		}
		return m, order
	}
	mA, orderA := agg(a)
	mB, orderB := agg(b)
	var keys []string
	seen := make(map[string]bool)
	for _, k := range append(orderA, orderB...) {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\ncritical path (self s)\tA\tB\tΔ")
	for _, k := range keys {
		sa, okA := mA[k]
		sb, okB := mB[k]
		switch {
		case !okA:
			fmt.Fprintf(tw, "%s\t-\t%.3f\t added\n", k, sb)
		case !okB:
			fmt.Fprintf(tw, "%s\t%.3f\t-\t removed\n", k, sa)
		default:
			fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%+.3f\n", k, sa, sb, sb-sa)
		}
	}
	tw.Flush()
}

// writeWorkerDiff tables per-worker attempt counts, wall time, straggler
// charge and utilization across the two runs. Worker names are stable
// ("w0", "w1", …) within a backend, so same-shape runs line up row by row.
func writeWorkerDiff(w io.Writer, a, b []WorkerRow) {
	if len(a) == 0 && len(b) == 0 {
		return
	}
	byName := func(rows []WorkerRow) map[string]WorkerRow {
		m := make(map[string]WorkerRow, len(rows))
		for _, r := range rows {
			m[r.Worker] = r
		}
		return m
	}
	mA, mB := byName(a), byName(b)
	var names []string
	seen := make(map[string]bool)
	for _, r := range append(append([]WorkerRow{}, a...), b...) {
		if !seen[r.Worker] {
			seen[r.Worker] = true
			names = append(names, r.Worker)
		}
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\nworker\tattempts A→B\twall Δ\tstraggler A\tstraggler B\tΔ\tutil A\tutil B")
	for _, n := range names {
		ra, okA := mA[n]
		rb, okB := mB[n]
		switch {
		case !okA:
			fmt.Fprintf(tw, "%s\t-→%d\t added\t-\t%.3f\t added\t-\t%.2f\n", n, rb.Attempts, rb.StragglerSeconds, rb.Utilization)
		case !okB:
			fmt.Fprintf(tw, "%s\t%d→-\t removed\t%.3f\t-\t removed\t%.2f\t-\n", n, ra.Attempts, ra.StragglerSeconds, ra.Utilization)
		default:
			fmt.Fprintf(tw, "%s\t%d→%d\t%s\t%.3f\t%.3f\t%+.3f\t%.2f\t%.2f\n",
				n, ra.Attempts, rb.Attempts, fracDelta(ra.WallSeconds, rb.WallSeconds),
				ra.StragglerSeconds, rb.StragglerSeconds, rb.StragglerSeconds-ra.StragglerSeconds,
				ra.Utilization, rb.Utilization)
		}
	}
	tw.Flush()
}

// writeCounterDiff tables run-level counter drift. Counters are compared
// through their JSON form so new counter fields flow in without touching
// this code; only drifting counters are listed.
func writeCounterDiff(w io.Writer, a, b *RunAnalysis) {
	mA, mB := counterMap(a.Counters), counterMap(b.Counters)
	var keys []string
	seen := make(map[string]bool)
	for k := range mA {
		seen[k] = true
		keys = append(keys, k)
	}
	for k := range mB {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var drifting []string
	for _, k := range keys {
		if mA[k] != mB[k] {
			drifting = append(drifting, k)
		}
	}
	if len(drifting) == 0 {
		fmt.Fprintln(w, "\ncounters: no drift")
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\ncounter\tA\tB\tΔ")
	for _, k := range drifting {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.0f\n", k, mA[k], mB[k], mB[k]-mA[k])
	}
	tw.Flush()
}

func counterMap(c obs.Counters) map[string]float64 {
	b, err := json.Marshal(c)
	if err != nil {
		return nil
	}
	var m map[string]float64
	if err := json.Unmarshal(b, &m); err != nil {
		return nil
	}
	return m
}

// writeConvergenceDiff compares the final value of each algorithm metric
// series — did the runs converge to the same model quality?
func writeConvergenceDiff(w io.Writer, a, b []ConvergenceRow) {
	if len(a) == 0 && len(b) == 0 {
		return
	}
	last := func(rows []ConvergenceRow) map[string]float64 {
		m := make(map[string]float64, len(rows))
		for _, r := range rows {
			if len(r.Points) > 0 {
				m[r.Name] = r.Points[len(r.Points)-1].Value
			}
		}
		return m
	}
	mA, mB := last(a), last(b)
	var names []string
	seen := make(map[string]bool)
	for _, r := range append(append([]ConvergenceRow{}, a...), b...) {
		if !seen[r.Name] {
			seen[r.Name] = true
			names = append(names, r.Name)
		}
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\nconvergence (final)\tA\tB\tΔ")
	for _, n := range names {
		va, okA := mA[n]
		vb, okB := mB[n]
		switch {
		case !okA:
			fmt.Fprintf(tw, "%s\t-\t%.6g\t added\n", n, vb)
		case !okB:
			fmt.Fprintf(tw, "%s\t%.6g\t-\t removed\n", n, va)
		default:
			fmt.Fprintf(tw, "%s\t%.6g\t%.6g\t%+.6g\n", n, va, vb, vb-va)
		}
	}
	tw.Flush()
}
