// Command p3ctrace analyzes a JSONL trace produced by p3crun -trace (or a
// flight-recorder post-mortem): it reconstructs the span tree and reports
// the critical path, per-phase wall/simulated cost, task-duration skew,
// straggler and retry-waste attribution, and the slowest task attempts.
//
// Usage:
//
//	p3ctrace [-json] [-top K] trace.jsonl
//	p3crun ... -trace /dev/stdout | p3ctrace -
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the full analysis as JSON")
	topK := flag.Int("top", 10, "how many slowest task attempts to list")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: p3ctrace [flags] trace.jsonl\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	var in io.Reader
	if path := flag.Arg(0); path == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p3ctrace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	spans, roots, events, err := parseTrace(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p3ctrace: %v\n", err)
		os.Exit(1)
	}
	a := analyze(spans, roots, events, *topK)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(a); err != nil {
			fmt.Fprintf(os.Stderr, "p3ctrace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := writeText(os.Stdout, a); err != nil {
		fmt.Fprintf(os.Stderr, "p3ctrace: %v\n", err)
		os.Exit(1)
	}
}

func writeText(w io.Writer, a *Analysis) error {
	fmt.Fprintf(w, "trace: %d events, %d spans, %d root span(s)\n", a.Events, a.Spans, len(a.Runs))
	for i := range a.Runs {
		if err := writeRun(w, &a.Runs[i]); err != nil {
			return err
		}
	}
	return nil
}

func writeRun(w io.Writer, r *RunAnalysis) error {
	fmt.Fprintf(w, "\n=== %s %q: %s, %.3f s wall, %.3f s simulated ===\n",
		r.Kind, r.Name, r.Outcome, r.WallSeconds, r.SimulatedSeconds)
	if r.Err != "" {
		fmt.Fprintf(w, "error: %s\n", r.Err)
	}
	fmt.Fprintf(w, "%d task attempts (%d faulted, %d cancelled), %d retries, %d wasted records\n",
		r.TaskAttempts, r.Faults, r.Cancels, r.Retries,
		r.Wasted.MapInputRecords+r.Wasted.ReduceInputVals)

	if len(r.Phases) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "\nphase\twall s\tsim s\tmap in\tshuffled B\tretries\tjobs\ttasks")
		for _, p := range r.Phases {
			fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%d\t%d\t%d\t%d\t%d\n",
				p.Name, p.WallSeconds, p.SimulatedSeconds, p.MapIn, p.ShuffledBytes,
				p.Retries, p.Jobs, p.Tasks)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(r.CriticalPath) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "\ncritical path\tspan\tstart s\tdur s\tself s")
		for _, s := range r.CriticalPath {
			id := s.Name
			if s.Task != "" {
				id += " task " + s.Task
			}
			if s.Phase != "" && s.Kind != "phase" {
				id += " [" + s.Phase + "]"
			}
			fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\t%.3f\n", s.Kind, id, s.StartS, s.DurationS, s.SelfSeconds)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(r.Skew) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "\nskew (job/phase)\ttasks\tmedian s\tp90 s\tmax s\tmax/median\tslowest")
		for _, s := range r.Skew {
			fmt.Fprintf(tw, "%s/%s\t%d\t%.4f\t%.4f\t%.4f\t%.2f\t%s\n",
				s.Job, s.Phase, s.Tasks, s.MedianS, s.P90S, s.MaxS, s.Skew, s.SlowestID)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(r.Stragglers) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "\nstragglers (job/phase)\tcount\tsim s charged")
		for _, s := range r.Stragglers {
			fmt.Fprintf(tw, "%s/%s\t%d\t%.3f\n", s.Job, s.Phase, s.Count, s.Seconds)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(r.RetryWaste) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "\nretry waste (job)\tfault attempts\twall s\twasted records")
		for _, s := range r.RetryWaste {
			fmt.Fprintf(tw, "%s\t%d\t%.4f\t%d\n", s.Job, s.FaultAttempts, s.WallSeconds, s.WastedRecords)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(r.Workers) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "\nworkers\tattempts\tfaults\twall s\tfault wall s\tstraggler s\twasted records")
		for _, s := range r.Workers {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%.4f\t%.4f\t%.3f\t%d\n",
				s.Worker, s.Attempts, s.Faults, s.WallSeconds, s.FaultWallSeconds,
				s.StragglerSeconds, s.WastedRecords)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(r.Slowest) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "\nslowest attempts\tjob\tphase\ttask\twall s\toutcome\tstraggler s")
		for i, s := range r.Slowest {
			fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%.4f\t%s\t%.3f\n",
				i+1, s.Job, s.Phase, s.Task, s.Seconds, s.Outcome, s.Straggle)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}
