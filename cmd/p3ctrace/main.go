// Command p3ctrace analyzes a JSONL trace produced by p3crun -trace (or a
// flight-recorder post-mortem): it reconstructs the span tree and reports
// the critical path, per-phase wall/simulated cost, task-duration skew,
// straggler and retry-waste attribution, and the slowest task attempts.
//
// In -diff mode it compares two runs — each argument may be a trace file,
// an archive record directory, or an archive root (the newest record is
// picked) — and exits nonzero when a gated regression threshold trips.
//
// Usage:
//
//	p3ctrace [-json] [-top K] [-timeline] trace.jsonl
//	p3crun ... -trace /dev/stdout | p3ctrace -
//	p3ctrace -diff [-straggler-threshold S] [-wall-threshold F] [-sim-threshold F] runA runB
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the full analysis as JSON")
	topK := flag.Int("top", 10, "how many slowest task attempts to list")
	timeline := flag.Bool("timeline", false, "render a worker-occupancy gantt against the driver critical path")
	diffMode := flag.Bool("diff", false, "compare two runs (trace file, archive record dir, or archive root each) and gate on regressions")
	stragGate := flag.Float64("straggler-threshold", -1, "with -diff: fail when total straggler seconds grow by more than this many seconds; negative disables")
	wallGate := flag.Float64("wall-threshold", -1, "with -diff: fail when run wall seconds grow by more than this fraction (0.2 = +20%); negative disables")
	simGate := flag.Float64("sim-threshold", -1, "with -diff: fail when run simulated seconds grow by more than this fraction; negative disables")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: p3ctrace [flags] trace.jsonl\n")
		fmt.Fprintf(flag.CommandLine.Output(), "       p3ctrace -diff [flags] runA runB\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *diffMode {
		if flag.NArg() != 2 {
			flag.Usage()
			os.Exit(2)
		}
		os.Exit(runTraceDiff(os.Stdout, flag.Arg(0), flag.Arg(1), diffGates{
			stragglerSeconds: *stragGate,
			wallFrac:         *wallGate,
			simFrac:          *simGate,
		}))
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	var in io.Reader
	if path := flag.Arg(0); path == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p3ctrace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	spans, roots, events, err := parseTrace(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p3ctrace: %v\n", err)
		os.Exit(1)
	}
	a := analyze(spans, roots, events, *topK)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(a); err != nil {
			fmt.Fprintf(os.Stderr, "p3ctrace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := writeText(os.Stdout, a, *timeline); err != nil {
		fmt.Fprintf(os.Stderr, "p3ctrace: %v\n", err)
		os.Exit(1)
	}
}

func writeText(w io.Writer, a *Analysis, timeline bool) error {
	fmt.Fprintf(w, "trace: %d events, %d spans, %d root span(s)\n", a.Events, a.Spans, len(a.Runs))
	for i := range a.Runs {
		if err := writeRun(w, &a.Runs[i], timeline); err != nil {
			return err
		}
	}
	return nil
}

func writeRun(w io.Writer, r *RunAnalysis, timeline bool) error {
	fmt.Fprintf(w, "\n=== %s %q: %s, %.3f s wall, %.3f s simulated ===\n",
		r.Kind, r.Name, r.Outcome, r.WallSeconds, r.SimulatedSeconds)
	if r.Err != "" {
		fmt.Fprintf(w, "error: %s\n", r.Err)
	}
	fmt.Fprintf(w, "%d task attempts (%d faulted, %d cancelled), %d retries, %d wasted records\n",
		r.TaskAttempts, r.Faults, r.Cancels, r.Retries,
		r.Wasted.MapInputRecords+r.Wasted.ReduceInputVals)

	if len(r.Phases) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "\nphase\twall s\tsim s\tmap in\tshuffled B\tretries\tjobs\ttasks")
		for _, p := range r.Phases {
			fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%d\t%d\t%d\t%d\t%d\n",
				p.Name, p.WallSeconds, p.SimulatedSeconds, p.MapIn, p.ShuffledBytes,
				p.Retries, p.Jobs, p.Tasks)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(r.CriticalPath) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "\ncritical path\tspan\tstart s\tdur s\tself s")
		for _, s := range r.CriticalPath {
			id := s.Name
			if s.Task != "" {
				id += " task " + s.Task
			}
			if s.Phase != "" && s.Kind != "phase" {
				id += " [" + s.Phase + "]"
			}
			fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\t%.3f\n", s.Kind, id, s.StartS, s.DurationS, s.SelfSeconds)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(r.Skew) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "\nskew (job/phase)\ttasks\tmedian s\tp90 s\tmax s\tmax/median\tslowest")
		for _, s := range r.Skew {
			fmt.Fprintf(tw, "%s/%s\t%d\t%.4f\t%.4f\t%.4f\t%.2f\t%s\n",
				s.Job, s.Phase, s.Tasks, s.MedianS, s.P90S, s.MaxS, s.Skew, s.SlowestID)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(r.Stragglers) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "\nstragglers (job/phase)\tcount\tsim s charged")
		for _, s := range r.Stragglers {
			fmt.Fprintf(tw, "%s/%s\t%d\t%.3f\n", s.Job, s.Phase, s.Count, s.Seconds)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(r.RetryWaste) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "\nretry waste (job)\tfault attempts\twall s\twasted records")
		for _, s := range r.RetryWaste {
			fmt.Fprintf(tw, "%s\t%d\t%.4f\t%d\n", s.Job, s.FaultAttempts, s.WallSeconds, s.WastedRecords)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(r.Workers) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "\nworkers\tattempts\tfaults\twall s\tfault wall s\tstraggler s\twasted records")
		for _, s := range r.Workers {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%.4f\t%.4f\t%.3f\t%d\n",
				s.Worker, s.Attempts, s.Faults, s.WallSeconds, s.FaultWallSeconds,
				s.StragglerSeconds, s.WastedRecords)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if hasTelemetry(r.Workers) {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "\nworker telemetry\tsamples\tcpu s\tutil\tpeak rss B\tpeak queue B\tspill B\tsteps")
		for _, s := range r.Workers {
			fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.2f\t%d\t%d\t%d\t%s\n",
				s.Worker, s.Samples, s.CPUSeconds, s.Utilization,
				s.PeakRSSBytes, s.PeakQueueBytes, s.SpillBytes, stepSummary(s.StepSeconds))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(r.Classified) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "\nstragglers classified\ttask\tworker\twall s\tmedian s\tinput ratio\tutil\tclass")
		for _, c := range r.Classified {
			fmt.Fprintf(tw, "%s/%s\t%s\t%s\t%.4f\t%.4f\t%.2f\t%.2f\t%s\n",
				c.Job, c.Phase, c.Task, c.Worker, c.Seconds, c.MedianS,
				c.InputRatio, c.Utilization, c.Class)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(r.Convergence) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "\nconvergence\tpoints\tfirst\tlast\ttrend")
		for _, c := range r.Convergence {
			first := c.Points[0].Value
			last := c.Points[len(c.Points)-1].Value
			fmt.Fprintf(tw, "%s\t%d\t%.6g\t%.6g\t%s\n",
				c.Name, len(c.Points), first, last, sparkline(c.Points))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if timeline {
		if err := writeTimeline(w, r); err != nil {
			return err
		}
	}

	if len(r.Slowest) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "\nslowest attempts\tjob\tphase\ttask\twall s\toutcome\tstraggler s")
		for i, s := range r.Slowest {
			fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%.4f\t%s\t%.3f\n",
				i+1, s.Job, s.Phase, s.Task, s.Seconds, s.Outcome, s.Straggle)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// hasTelemetry reports whether any worker row carries sampler- or
// step-derived data (i.e. the trace came from a telemetry-enabled run).
func hasTelemetry(rows []WorkerRow) bool {
	for _, r := range rows {
		if r.Samples > 0 || len(r.StepSeconds) > 0 {
			return true
		}
	}
	return false
}

// stepSummary renders a worker's per-step seconds as "name=1.2s name=0.3s"
// in step-name order.
func stepSummary(steps map[string]float64) string {
	if len(steps) == 0 {
		return "-"
	}
	names := make([]string, 0, len(steps))
	for n := range steps {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%.3fs", n, steps[n])
	}
	return out
}

// sparkChars is the 8-level vertical bar ramp of the convergence trend
// column.
var sparkChars = []rune("▁▂▃▄▅▆▇█")

// sparkline renders one metric series as a fixed-height bar ramp, scaled to
// the series' own min..max. A flat series renders as a mid-level line.
func sparkline(pts []ConvergencePoint) string {
	if len(pts) == 0 {
		return ""
	}
	lo, hi := pts[0].Value, pts[0].Value
	for _, p := range pts {
		if p.Value < lo {
			lo = p.Value
		}
		if p.Value > hi {
			hi = p.Value
		}
	}
	var b strings.Builder
	for _, p := range pts {
		i := len(sparkChars) / 2
		if hi > lo {
			i = int((p.Value - lo) / (hi - lo) * float64(len(sparkChars)-1))
		}
		b.WriteRune(sparkChars[i])
	}
	return b.String()
}

// timelineWidth is the column budget of the -timeline gantt.
const timelineWidth = 64

// writeTimeline renders worker-occupancy lanes against the driver critical
// path. Lane characters: 'm' map attempt, 'r' reduce attempt, 'x' faulted
// attempt, 'c' cancelled attempt, '.' idle. The "crit" lane marks each
// critical-path span with the upper-cased initial of its kind (R un, P hase,
// J ob, T ask).
func writeTimeline(w io.Writer, r *RunAnalysis) error {
	if len(r.Timeline) == 0 {
		fmt.Fprintln(w, "\ntimeline: no worker-attributed attempts in this trace")
		return nil
	}
	t0, t1 := r.Timeline[0].Intervals[0].StartS, 0.0
	for _, s := range r.CriticalPath {
		if s.StartS < t0 {
			t0 = s.StartS
		}
		if s.EndS > t1 {
			t1 = s.EndS
		}
	}
	for _, lane := range r.Timeline {
		for _, iv := range lane.Intervals {
			if iv.StartS < t0 {
				t0 = iv.StartS
			}
			if iv.EndS > t1 {
				t1 = iv.EndS
			}
		}
	}
	if t1 <= t0 {
		t1 = t0 + 1e-9
	}
	scale := float64(timelineWidth) / (t1 - t0)
	col := func(ts float64) int {
		c := int((ts - t0) * scale)
		if c < 0 {
			c = 0
		}
		if c > timelineWidth-1 {
			c = timelineWidth - 1
		}
		return c
	}
	fill := func(lane []byte, startS, endS float64, ch byte) {
		lo, hi := col(startS), col(endS)
		for i := lo; i <= hi; i++ {
			lane[i] = ch
		}
	}
	blank := func() []byte {
		lane := make([]byte, timelineWidth)
		for i := range lane {
			lane[i] = '.'
		}
		return lane
	}

	fmt.Fprintf(w, "\ntimeline %.3f .. %.3f s (1 col = %.1f ms; m=map r=reduce x=fault c=cancelled)\n",
		t0, t1, (t1-t0)/float64(timelineWidth)*1000)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	crit := blank()
	for _, s := range r.CriticalPath {
		ch := byte('?')
		if s.Kind != "" {
			ch = s.Kind[0] &^ 0x20 // upper-case initial
		}
		fill(crit, s.StartS, s.EndS, ch)
	}
	fmt.Fprintf(tw, "crit\t%s\n", crit)
	for _, laneRow := range r.Timeline {
		lane := blank()
		for _, iv := range laneRow.Intervals {
			ch := byte('m')
			switch {
			case iv.Outcome == "fault":
				ch = 'x'
			case iv.Outcome == "cancelled":
				ch = 'c'
			case iv.Phase == "reduce":
				ch = 'r'
			}
			fill(lane, iv.StartS, iv.EndS, ch)
		}
		fmt.Fprintf(tw, "%s\t%s\n", laneRow.Worker, lane)
	}
	return tw.Flush()
}
