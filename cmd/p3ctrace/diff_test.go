package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"p3cmr/internal/mr"
	"p3cmr/internal/obs"
	"p3cmr/internal/obs/archive"
)

// traceWordcount runs the registered trace-wordcount job under the given
// fault plan with the deterministic cost model and returns the JSONL trace.
func traceWordcount(t *testing.T, plan mr.RateFaultPlan) []byte {
	t.Helper()
	rows := make([]float64, 400)
	for i := range rows {
		rows[i] = float64(i)
	}
	splits := make([]*mr.Split, 4)
	for s := range splits {
		splits[s] = &mr.Split{ID: s, Offset: s * 100, Dim: 1, Rows: rows[s*100 : (s+1)*100]}
	}
	var buf bytes.Buffer
	jsonl := obs.NewJSONLTracer(&buf)
	engine := mr.NewEngine(mr.Config{
		Parallelism: 2, Faults: plan, MaxAttempts: 12,
		Cost: mr.DefaultCostModel(), Tracer: jsonl,
	})
	job := &mr.Job{Name: "diff-wc", Splits: splits, Impl: "trace-wordcount", NumReducers: 3}
	if _, err := engine.Run(job); err != nil {
		t.Fatal(err)
	}
	if err := jsonl.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func writeTemp(t *testing.T, dir, name string, b []byte) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTraceDiffStragglerGate pins the -diff CI contract: comparing a clean
// run against a straggler-seeded run of the same job trips the straggler
// gate, attributes the growth, and exits nonzero; the reverse comparison
// (stragglers removed) passes.
func TestTraceDiffStragglerGate(t *testing.T) {
	clean := traceWordcount(t, mr.RateFaultPlan{})
	slow := traceWordcount(t, mr.RateFaultPlan{StragglerRate: 0.5, StragglerSeconds: 2, Seed: 1})

	dir := t.TempDir()
	pathA := writeTemp(t, dir, "clean.jsonl", clean)
	pathB := writeTemp(t, dir, "slow.jsonl", slow)

	gates := diffGates{stragglerSeconds: 1, wallFrac: -1, simFrac: -1}
	var out bytes.Buffer
	if code := runTraceDiff(&out, pathA, pathB, gates); code == 0 {
		t.Fatalf("clean→straggler diff exited 0; output:\n%s", out.String())
	}
	txt := out.String()
	if !strings.Contains(txt, "REGRESSION straggler") {
		t.Errorf("diff output lacks straggler regression verdict:\n%s", txt)
	}
	// The verdict must attribute the growth to the job/phase that slowed
	// down.
	if !strings.Contains(txt, "worst: diff-wc/") {
		t.Errorf("straggler regression not attributed to a job/phase:\n%s", txt)
	}
	for _, section := range []string{"totals", "critical path", "counter"} {
		if !strings.Contains(txt, section) {
			t.Errorf("diff output missing %q section:\n%s", section, txt)
		}
	}

	// Reverse direction: stragglers went away, gate must pass.
	var rev bytes.Buffer
	if code := runTraceDiff(&rev, pathB, pathA, gates); code != 0 {
		t.Fatalf("straggler→clean diff exited nonzero:\n%s", rev.String())
	}
	if !strings.Contains(rev.String(), "no regressions") {
		t.Errorf("passing diff lacks the all-clear line:\n%s", rev.String())
	}

	// Identical runs: everything is flat, exit 0 even with all gates armed.
	var same bytes.Buffer
	if code := runTraceDiff(&same, pathA, pathA, diffGates{stragglerSeconds: 0, wallFrac: 0.5, simFrac: 0}); code != 0 {
		t.Fatalf("self-diff exited nonzero:\n%s", same.String())
	}
}

// TestTraceDiffSimGate checks the fractional simulated-seconds gate: the
// straggler charge lands in sim seconds under the cost model, so a tight
// sim threshold trips on the seeded run too.
func TestTraceDiffSimGate(t *testing.T) {
	clean := traceWordcount(t, mr.RateFaultPlan{})
	slow := traceWordcount(t, mr.RateFaultPlan{StragglerRate: 0.9, StragglerSeconds: 5, Seed: 7})
	dir := t.TempDir()
	pathA := writeTemp(t, dir, "a.jsonl", clean)
	pathB := writeTemp(t, dir, "b.jsonl", slow)

	var out bytes.Buffer
	code := runTraceDiff(&out, pathA, pathB, diffGates{stragglerSeconds: -1, wallFrac: -1, simFrac: 0.1})
	if code == 0 {
		t.Fatalf("sim gate did not trip; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION sim s") {
		t.Errorf("output lacks sim regression verdict:\n%s", out.String())
	}
}

// TestResolveTraceShapes pins the -diff argument forms: a plain file, an
// archive record directory, and an archive root (newest record wins).
func TestResolveTraceShapes(t *testing.T) {
	dir := t.TempDir()
	trace := traceWordcount(t, mr.RateFaultPlan{})
	plain := writeTemp(t, dir, "plain.jsonl", trace)

	if got, err := resolveTrace(plain); err != nil || got != plain {
		t.Fatalf("resolveTrace(file) = %q, %v", got, err)
	}

	root := filepath.Join(dir, "arch")
	arch, err := archive.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	first, err := arch.Seal(plain, archive.Manifest{Name: "first"})
	if err != nil {
		t.Fatal(err)
	}
	// A second, different record becomes the newest.
	slow := writeTemp(t, dir, "slow.jsonl",
		traceWordcount(t, mr.RateFaultPlan{StragglerRate: 0.5, StragglerSeconds: 2, Seed: 1}))
	second, err := arch.Seal(slow, archive.Manifest{Name: "second"})
	if err != nil {
		t.Fatal(err)
	}

	recDir := filepath.Join(root, first.ID)
	if got, err := resolveTrace(recDir); err != nil || got != filepath.Join(recDir, "trace.jsonl") {
		t.Fatalf("resolveTrace(record dir) = %q, %v", got, err)
	}
	if got, err := resolveTrace(root); err != nil || got != arch.TracePath(second.ID) {
		t.Fatalf("resolveTrace(archive root) = %q, %v (want newest record %s)", got, err, second.ID)
	}

	empty := filepath.Join(dir, "nothing")
	if err := os.MkdirAll(empty, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := resolveTrace(empty); err == nil {
		t.Fatal("resolveTrace(empty dir) succeeded, want error")
	}

	// End-to-end: diffing the two archive forms resolves and gates.
	var out bytes.Buffer
	if code := runTraceDiff(&out, recDir, root, diffGates{stragglerSeconds: 1, wallFrac: -1, simFrac: -1}); code == 0 {
		t.Fatalf("archived clean→straggler diff exited 0:\n%s", out.String())
	}
}

// TestConvergenceSeries pins the metric-point path end to end in p3ctrace:
// PointMetric events survive the JSONL round trip with their values, fold
// into per-name iteration series, render as a convergence table, and show
// up in the -json payload.
func TestConvergenceSeries(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewJSONLTracer(&buf)
	run := obs.NewSpanID()
	tr.Begin(obs.Start{ID: run, Kind: obs.KindRun, Name: "conv"})
	phase := obs.NewSpanID()
	tr.Begin(obs.Start{ID: phase, Parent: run, Kind: obs.KindPhase, Name: "em"})
	lls := []float64{-52.5, -44.125, -41.0625, -40.5}
	for it, ll := range lls {
		tr.Point(obs.Point{Span: phase, Kind: obs.PointMetric, Name: "em_log_likelihood", Task: it, Value: ll})
		tr.Point(obs.Point{Span: phase, Kind: obs.PointMetric, Name: "em_active_clusters", Task: it, Value: 3})
	}
	tr.End(obs.End{ID: phase, Kind: obs.KindPhase, Name: "em", RealSeconds: 1})
	tr.End(obs.End{ID: run, Kind: obs.KindRun, Name: "conv", RealSeconds: 1, Outcome: obs.OutcomeOK})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	spans, roots, events, err := parseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := analyze(spans, roots, events, 5)
	if len(a.Runs) != 1 {
		t.Fatalf("got %d runs", len(a.Runs))
	}
	conv := a.Runs[0].Convergence
	if len(conv) != 2 {
		t.Fatalf("got %d convergence rows, want 2: %+v", len(conv), conv)
	}
	if conv[0].Name != "em_active_clusters" || conv[1].Name != "em_log_likelihood" {
		t.Fatalf("rows not name-sorted: %q, %q", conv[0].Name, conv[1].Name)
	}
	ll := conv[1]
	if len(ll.Points) != len(lls) {
		t.Fatalf("log-likelihood series has %d points, want %d", len(ll.Points), len(lls))
	}
	for i, p := range ll.Points {
		if p.Iter != i || p.Value != lls[i] {
			t.Errorf("point %d = {%d, %v}, want {%d, %v}", i, p.Iter, p.Value, i, lls[i])
		}
	}

	var txt bytes.Buffer
	if err := writeText(&txt, a, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "convergence") ||
		!strings.Contains(txt.String(), "em_log_likelihood") {
		t.Errorf("text output lacks the convergence table:\n%s", txt.String())
	}
	// The sparkline of a strictly improving series starts at the bottom
	// ramp level and ends at the top.
	spark := sparkline(ll.Points)
	runes := []rune(spark)
	if runes[0] != sparkChars[0] || runes[len(runes)-1] != sparkChars[len(sparkChars)-1] {
		t.Errorf("sparkline %q does not span the ramp", spark)
	}
	if flat := sparkline(conv[0].Points); strings.Trim(flat, string(sparkChars[len(sparkChars)/2])) != "" {
		t.Errorf("flat series sparkline %q not mid-level", flat)
	}

	// -json carries the same series.
	payload, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Runs []struct {
			Convergence []ConvergenceRow `json:"convergence"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(payload, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Runs) != 1 || len(decoded.Runs[0].Convergence) != 2 {
		t.Fatalf("-json payload lost the convergence section: %s", payload)
	}
}

// TestJSONWorkersReconcileWithWorkerStats is the satellite oracle for the
// -json worker table: the same multiprocess event stream feeds a JSONL
// trace (what p3ctrace -json analyzes) and a live obs.WorkerStats sink (the
// /workers payload), and the two per-worker views must agree field by
// field on everything both track.
func TestJSONWorkersReconcileWithWorkerStats(t *testing.T) {
	rows := make([]float64, 600)
	for i := range rows {
		rows[i] = float64(i)
	}
	splits := make([]*mr.Split, 6)
	for s := range splits {
		splits[s] = &mr.Split{ID: s, Offset: s * 100, Dim: 1, Rows: rows[s*100 : (s+1)*100]}
	}
	job := &mr.Job{Name: "trace-wc", Splits: splits, Impl: "trace-wordcount", NumReducers: 3}

	var buf bytes.Buffer
	jsonl := obs.NewJSONLTracer(&buf)
	ws := obs.NewWorkerStats()
	engine := mr.NewEngine(mr.Config{
		Parallelism: 4, Backend: "multiprocess", SpillDir: t.TempDir(), SpillThresholdBytes: 1,
		Faults:      mr.RateFaultPlan{MapRate: 0.4, ReduceRate: 0.4, StragglerRate: 0.3, StragglerSeconds: 3, Seed: 11},
		MaxAttempts: 12, Cost: mr.DefaultCostModel(), Tracer: obs.Multi(jsonl, ws),
	})
	if _, err := engine.Run(job); err != nil {
		t.Fatal(err)
	}
	if err := jsonl.Close(); err != nil {
		t.Fatal(err)
	}

	spans, roots, events, err := parseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := analyze(spans, roots, events, 10)
	if len(a.Runs) != 1 {
		t.Fatalf("got %d runs", len(a.Runs))
	}

	// Round-trip the analysis through its JSON form — the reconciliation
	// must hold for what -json actually emits, not the in-memory struct.
	payload, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Analysis
	if err := json.Unmarshal(payload, &decoded); err != nil {
		t.Fatal(err)
	}
	got := decoded.Runs[0].Workers
	if len(got) == 0 {
		t.Fatal("-json payload carries no worker rows for a multiprocess trace")
	}
	byName := make(map[string]WorkerRow, len(got))
	for _, r := range got {
		byName[r.Worker] = r
	}

	snaps := ws.Snapshot()
	if len(snaps) != len(got) {
		t.Fatalf("-json has %d worker rows, WorkerStats has %d", len(got), len(snaps))
	}
	for _, snap := range snaps {
		row, ok := byName[snap.Worker]
		if !ok {
			t.Errorf("worker %q in WorkerStats but not in -json rows", snap.Worker)
			continue
		}
		if int64(row.Attempts) != snap.Attempts {
			t.Errorf("worker %q: -json attempts %d, WorkerStats %d", snap.Worker, row.Attempts, snap.Attempts)
		}
		if int64(row.Faults) != snap.Faults {
			t.Errorf("worker %q: -json faults %d, WorkerStats %d", snap.Worker, row.Faults, snap.Faults)
		}
		if diff := row.WallSeconds - snap.BusySeconds; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("worker %q: -json wall %g, WorkerStats busy %g", snap.Worker, row.WallSeconds, snap.BusySeconds)
		}
		if diff := row.StragglerSeconds - snap.StragglerSeconds; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("worker %q: -json straggler %g, WorkerStats %g", snap.Worker, row.StragglerSeconds, snap.StragglerSeconds)
		}
		if row.WastedRecords != snap.Wasted.MapInputRecords+snap.Wasted.ReduceInputVals {
			t.Errorf("worker %q: -json wasted records %d, WorkerStats %d",
				snap.Worker, row.WastedRecords, snap.Wasted.MapInputRecords+snap.Wasted.ReduceInputVals)
		}
		if int64(row.Samples) != snap.Samples {
			t.Errorf("worker %q: -json samples %d, WorkerStats %d", snap.Worker, row.Samples, snap.Samples)
		}
		if row.PeakRSSBytes != snap.PeakRSSBytes {
			t.Errorf("worker %q: -json peak rss %d, WorkerStats %d", snap.Worker, row.PeakRSSBytes, snap.PeakRSSBytes)
		}
		if row.PeakQueueBytes != snap.PeakQueueBytes {
			t.Errorf("worker %q: -json peak queue %d, WorkerStats %d", snap.Worker, row.PeakQueueBytes, snap.PeakQueueBytes)
		}
		for name, s := range snap.StepSeconds {
			if diff := row.StepSeconds[name] - s; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("worker %q step %q: -json %g, WorkerStats %g", snap.Worker, name, row.StepSeconds[name], s)
			}
		}
	}
}
