// Command p3ceval evaluates a clustering result against a ground-truth
// file (as written by p3cgen -truth) with the paper's quality measures:
// E4SC, F1, RNIA and CE.
//
// Usage:
//
//	p3ceval -labels labels.txt -truth truth.txt -attrs "0,1,2;3,4"
//
// The labels file holds one integer per point (-1 = outlier); -attrs gives
// each found cluster's relevant attributes, clusters separated by ';'.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"p3cmr/internal/dataset"
	"p3cmr/internal/eval"
)

func main() {
	var (
		labelsIn = flag.String("labels", "", "per-point label file (required)")
		truthIn  = flag.String("truth", "", "ground-truth file from p3cgen (required)")
		attrsIn  = flag.String("attrs", "", "found clusters' attributes, e.g. \"0,1,2;3,4\" (required)")
	)
	flag.Parse()
	if *labelsIn == "" || *truthIn == "" || *attrsIn == "" {
		fatal(fmt.Errorf("-labels, -truth and -attrs are required"))
	}

	labels, err := readLabels(*labelsIn)
	if err != nil {
		fatal(err)
	}
	truth, dim, err := readTruth(*truthIn)
	if err != nil {
		fatal(err)
	}
	attrs, err := parseAttrs(*attrsIn)
	if err != nil {
		fatal(err)
	}

	found, err := eval.FromLabels(len(labels), dim, labels, attrs)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("found clusters: %d   true clusters: %d\n", len(found.Clusters), len(truth.Clusters))
	fmt.Printf("E4SC: %.4f\n", eval.E4SC(found, truth))
	fmt.Printf("F1:   %.4f\n", eval.F1(found, truth))
	fmt.Printf("RNIA: %.4f\n", eval.RNIA(found, truth))
	fmt.Printf("CE:   %.4f\n", eval.CE(found, truth))
}

func readLabels(path string) ([]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var labels []int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		v, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("bad label %q: %w", line, err)
		}
		labels = append(labels, v)
	}
	return labels, sc.Err()
}

// readTruth parses the p3cgen sidecar format into an evaluation clustering.
func readTruth(path string) (*eval.SubspaceClustering, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	gt, err := dataset.ReadGroundTruth(f)
	if err != nil {
		return nil, 0, err
	}
	clusters := make([]*eval.Cluster, 0, len(gt.Clusters))
	for _, tc := range gt.Clusters {
		clusters = append(clusters, &eval.Cluster{Objects: tc.Members, Attrs: tc.Attrs})
	}
	truth, err := eval.NewSubspaceClustering(gt.N, gt.Dim, clusters)
	return truth, gt.Dim, err
}

func parseAttrs(s string) ([][]int, error) {
	var out [][]int
	for _, group := range strings.Split(s, ";") {
		group = strings.TrimSpace(group)
		var attrs []int
		if group != "" {
			for _, tok := range strings.Split(group, ",") {
				a, err := strconv.Atoi(strings.TrimSpace(tok))
				if err != nil {
					return nil, fmt.Errorf("bad attribute %q", tok)
				}
				attrs = append(attrs, a)
			}
		}
		out = append(out, attrs)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p3ceval:", err)
	os.Exit(1)
}
