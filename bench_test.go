package p3cmr

// The benchmarks regenerate the paper's tables and figures at bench-sized
// scale — one benchmark per table/figure of the evaluation (§7), plus
// ablation benches for the design choices DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark prints the regenerated series once (the rows the paper
// plots) and then times one representative unit of the experiment. For
// full-scale sweeps use cmd/p3cbench.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"p3cmr/internal/core"
	"p3cmr/internal/dataset"
	"p3cmr/internal/eval"
	"p3cmr/internal/experiments"
	"p3cmr/internal/mr"
	"p3cmr/internal/outlier"
	"p3cmr/internal/signature"
)

// benchScale keeps the full suite of figure regenerations affordable
// inside `go test -bench=.`.
func benchScale() experiments.Scale {
	return experiments.Scale{
		Sizes:         []int{1000, 4000},
		Dim:           16,
		NoiseLevels:   []float64{0.10},
		ClusterCounts: []int{3, 5},
		Seed:          1,
		Reducers:      112,
	}
}

// benchData memoizes one standard data set across benchmarks.
var benchData = struct {
	once  sync.Once
	data  *dataset.Dataset
	truth *dataset.GroundTruth
}{}

func loadBenchData(b *testing.B) (*dataset.Dataset, *dataset.GroundTruth) {
	benchData.once.Do(func() {
		data, truth, err := dataset.Generate(dataset.GenConfig{
			N: 5000, Dim: 16, Clusters: 4, NoiseFraction: 0.10, Seed: 9, Overlap: true,
		})
		if err != nil {
			panic(err)
		}
		benchData.data, benchData.truth = data, truth
	})
	if benchData.data == nil {
		b.Fatal("bench data unavailable")
	}
	return benchData.data, benchData.truth
}

// --- Figure regenerations -------------------------------------------------------

// BenchmarkFigure1 regenerates Figure 1 (power of the Poisson test at a 1%
// effect) and times the analytic sweep.
func BenchmarkFigure1(b *testing.B) {
	rows := experiments.Figure1(nil)
	experiments.RenderFigure1(os.Stdout, rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure1(nil)
	}
}

// BenchmarkFigure4 regenerates Figure 4 (naive vs MVB outlier detection)
// and times one full-pipeline MVB run.
func BenchmarkFigure4(b *testing.B) {
	rows, err := experiments.Figure4(benchScale())
	if err != nil {
		b.Fatal(err)
	}
	experiments.RenderFigure4(os.Stdout, rows)
	data, _ := loadBenchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(mr.Default(), data, core.NewParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5 regenerates Figure 5 (#cluster cores vs Poisson
// threshold, Poisson vs Combined, ± redundancy filter) and times one Light
// run at the paper's loosest threshold.
func BenchmarkFigure5(b *testing.B) {
	rows, err := experiments.Figure5(benchScale(), nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	experiments.RenderFigure5(os.Stdout, rows)
	data, _ := loadBenchData(b)
	params := core.LightParams()
	params.AlphaPoisson = 1e-3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(mr.Default(), data, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6 (E4SC of BoW and MR variants) and
// times one MR (Light) run.
func BenchmarkFigure6(b *testing.B) {
	rows, err := experiments.Figure6(benchScale(), 1000)
	if err != nil {
		b.Fatal(err)
	}
	experiments.RenderFigure6(os.Stdout, rows)
	data, _ := loadBenchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(mr.Default(), data, core.LightParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7 regenerates Figure 7 (modeled cluster runtimes of the
// five variants) and times one cost-modeled MR (Light) run.
func BenchmarkFigure7(b *testing.B) {
	rows, err := experiments.Figure7(benchScale(), 1000)
	if err != nil {
		b.Fatal(err)
	}
	experiments.RenderFigure7(os.Stdout, rows)
	data, _ := loadBenchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine := mr.NewEngine(mr.Config{NumReducers: 112, Cost: mr.DefaultCostModel()})
		if _, err := core.Run(engine, data, core.LightParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBillionPoint regenerates the §7.5.2 billion-point comparison
// (structure measured locally, cost projected to 10⁹×100d).
func BenchmarkBillionPoint(b *testing.B) {
	row, err := experiments.Billion(benchScale(), 8000, 800)
	if err != nil {
		b.Fatal(err)
	}
	experiments.RenderBillion(os.Stdout, row)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Billion(benchScale(), 8000, 800); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColonCancer regenerates the §7.6 accuracy comparison on the
// synthetic colon-cancer twin.
func BenchmarkColonCancer(b *testing.B) {
	row, err := experiments.Colon(5)
	if err != nil {
		b.Fatal(err)
	}
	experiments.RenderColon(os.Stdout, row)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Colon(5); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (design choices from DESIGN.md) -----------------------------

// BenchmarkRSSCvsNaiveCounting measures the §5.3 claim that motivates the
// RSSC: bitmap support counting vs direct containment checks over a large
// candidate set.
func BenchmarkRSSCvsNaiveCounting(b *testing.B) {
	data, _ := loadBenchData(b)
	// Build a realistic candidate set from the pipeline's own intervals.
	var sigs []signature.Signature
	for a := 0; a < data.Dim; a++ {
		for r := 0; r < 4; r++ {
			lo := float64(r) * 0.25
			for a2 := a + 1; a2 < data.Dim && a2 < a+4; a2++ {
				sigs = append(sigs, signature.New(
					signature.Interval{Attr: a, Lo: lo, Hi: lo + 0.25},
					signature.Interval{Attr: a2, Lo: 0.25, Hi: 0.5},
				))
			}
		}
	}
	sigs = signature.Dedup(sigs)
	b.Logf("candidate set: %d signatures over %d points", len(sigs), data.N())

	b.Run("rssc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rssc := signature.NewRSSC(sigs)
			counts := make([]int64, len(sigs))
			var mask []uint64
			for p := 0; p < data.N(); p++ {
				mask = rssc.Query(mask, data.Row(p))
				signature.AddTo(counts, mask)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			signature.CountSupportsNaive(sigs, data.Rows, data.Dim)
		}
	})
}

// BenchmarkEffectSizeAblation measures cluster-core counts and runtime with
// and without the effect-size test (§4.1.2).
func BenchmarkEffectSizeAblation(b *testing.B) {
	data, _ := loadBenchData(b)
	for _, combined := range []bool{false, true} {
		name := "poisson-only"
		if combined {
			name = "combined"
		}
		b.Run(name, func(b *testing.B) {
			params := core.LightParams()
			params.UseEffectSize = combined
			var cores int
			for i := 0; i < b.N; i++ {
				res, err := core.Run(mr.Default(), data, params)
				if err != nil {
					b.Fatal(err)
				}
				cores = res.Stats.CoresBeforeRedundancy
			}
			b.ReportMetric(float64(cores), "cores")
		})
	}
}

// BenchmarkRedundancyFilterAblation measures the filter's cost and effect.
func BenchmarkRedundancyFilterAblation(b *testing.B) {
	data, _ := loadBenchData(b)
	for _, filtered := range []bool{false, true} {
		name := "off"
		if filtered {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			params := core.LightParams()
			params.UseRedundancyFilter = filtered
			var cores int
			for i := 0; i < b.N; i++ {
				res, err := core.Run(mr.Default(), data, params)
				if err != nil {
					b.Fatal(err)
				}
				cores = len(res.Cores)
			}
			b.ReportMetric(float64(cores), "cores")
		})
	}
}

// BenchmarkBinRuleAblation compares Freedman–Diaconis against Sturges
// binning (§4.1.1).
func BenchmarkBinRuleAblation(b *testing.B) {
	data, _ := loadBenchData(b)
	for _, rule := range []core.BinRule{core.FreedmanDiaconis, core.Sturges} {
		b.Run(rule.String(), func(b *testing.B) {
			params := core.LightParams()
			params.BinRule = rule
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(mr.Default(), data, params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCandidateCollectionAblation compares the multi-level candidate
// collection heuristic (§5.3) against per-level proving (Tc=0 forces a
// proving job on every level).
func BenchmarkCandidateCollectionAblation(b *testing.B) {
	data, _ := loadBenchData(b)
	for _, tc := range []int{0, 2000} {
		b.Run(fmt.Sprintf("Tc=%d", tc), func(b *testing.B) {
			params := core.LightParams()
			params.Tc = tc
			var jobs int
			for i := 0; i < b.N; i++ {
				res, err := core.Run(mr.Default(), data, params)
				if err != nil {
					b.Fatal(err)
				}
				jobs = res.Stats.Jobs
			}
			b.ReportMetric(float64(jobs), "jobs")
		})
	}
}

// BenchmarkOutlierDetectorAblation compares the three outlier estimators —
// naive, the paper's MVB approximation, and the extension MVE — on quality
// (E4SC) and runtime. §4.2.2 predicts MVE ≥ MVB ≥ naive in quality at
// increasing cost.
func BenchmarkOutlierDetectorAblation(b *testing.B) {
	data, truth := loadBenchData(b)
	var truthCs []*eval.Cluster
	for _, tc := range truth.Clusters {
		truthCs = append(truthCs, &eval.Cluster{Objects: tc.Members, Attrs: tc.Attrs})
	}
	tc, err := eval.NewSubspaceClustering(truth.N, truth.Dim, truthCs)
	if err != nil {
		b.Fatal(err)
	}
	for _, method := range []outlier.Method{outlier.Naive, outlier.MVB, outlier.MVE} {
		b.Run(method.String(), func(b *testing.B) {
			params := core.NewParams()
			params.OutlierMethod = method
			var score float64
			for i := 0; i < b.N; i++ {
				res, err := core.Run(mr.Default(), data, params)
				if err != nil {
					b.Fatal(err)
				}
				found, err := res.Evaluation(data.N(), data.Dim)
				if err != nil {
					b.Fatal(err)
				}
				score = eval.E4SC(found, tc)
			}
			b.ReportMetric(score*1000, "mE4SC")
		})
	}
}

// BenchmarkEngineThroughput measures raw MapReduce engine overhead: a
// counting job over the bench data per iteration.
func BenchmarkEngineThroughput(b *testing.B) {
	data, _ := loadBenchData(b)
	engine := mr.Default()
	splits := data.Splits(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := engine.Run(&mr.Job{
			Name:   "count",
			Splits: splits,
			Mapper: mr.MapperFunc(func(ctx *mr.TaskContext, global int, row []float64) error {
				return nil
			}),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
