package p3cmr

import (
	"testing"

	"p3cmr/internal/bow"
	"p3cmr/internal/core"
	"p3cmr/internal/doc"
	"p3cmr/internal/mr"
	"p3cmr/internal/proclus"
)

func genAPITestData(t *testing.T, n int, seed int64) (*Dataset, *GroundTruth) {
	t.Helper()
	data, truth, err := GenerateSynthetic(SyntheticConfig{
		N: n, Dim: 15, Clusters: 3, NoiseFraction: 0.1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data, truth
}

func TestAlgorithmNames(t *testing.T) {
	names := map[Algorithm]string{
		P3C:            "P3C",
		P3CPlus:        "P3C+",
		P3CPlusMR:      "MR (MVB)",
		P3CPlusMRNaive: "MR (Naive)",
		P3CPlusMRLight: "MR (Light)",
		BoWLight:       "BoW (Light)",
		BoWMVB:         "BoW (MVB)",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
	if Algorithm(99).String() == "" {
		t.Error("unknown algorithm must still render")
	}
}

// TestRunAllAlgorithms drives every variant through the public API on one
// data set and sanity-checks the unified result.
func TestRunAllAlgorithms(t *testing.T) {
	data, truth := genAPITestData(t, 4000, 2)
	for _, algo := range []Algorithm{P3C, P3CPlus, P3CPlusMR, P3CPlusMRNaive, P3CPlusMRLight, BoWLight, BoWMVB} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			cfg := Config{Algorithm: algo}
			if algo == BoWLight || algo == BoWMVB {
				params := bow.NewLightParams()
				if algo == BoWMVB {
					params = bow.NewMVBParams()
				}
				params.SamplesPerReducer = 1500
				cfg.BoW = &params
			}
			res, err := Run(data, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Labels) != data.N() {
				t.Fatalf("labels = %d", len(res.Labels))
			}
			if len(res.Clusters) != len(res.Signatures) {
				t.Fatalf("%d clusters vs %d signatures", len(res.Clusters), len(res.Signatures))
			}
			e4sc := E4SCAgainstTruth(res, data, truth)
			t.Logf("clusters=%d jobs=%d E4SC=%.3f", len(res.Clusters), res.Jobs, e4sc)
			if algo != P3C && e4sc < 0.4 {
				t.Errorf("E4SC = %.3f unexpectedly low", e4sc)
			}
		})
	}
}

func TestRunWithCustomParams(t *testing.T) {
	data, _ := genAPITestData(t, 2000, 5)
	params := core.LightParams()
	params.ThetaCC = 0.5
	params.NumSplits = 4
	res, err := Run(data, Config{Algorithm: P3CPlusMRLight, Params: &params})
	if err != nil {
		t.Fatal(err)
	}
	if res.Core == nil || res.BoW != nil {
		t.Fatal("core result routing wrong")
	}
}

func TestRunWithCustomEngine(t *testing.T) {
	data, _ := genAPITestData(t, 2000, 6)
	engine := mr.NewEngine(mr.Config{Parallelism: 2, NumReducers: 8, Cost: mr.DefaultCostModel()})
	res, err := Run(data, Config{Algorithm: P3CPlusMRLight, Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedSeconds <= 0 {
		t.Error("cost model not applied through custom engine")
	}
	if engine.JobsRun() != res.Jobs {
		t.Errorf("engine jobs %d != result jobs %d", engine.JobsRun(), res.Jobs)
	}
}

func TestSimulateClusterFlag(t *testing.T) {
	data, _ := genAPITestData(t, 1500, 7)
	res, err := Run(data, Config{Algorithm: P3CPlusMRLight, SimulateCluster: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedSeconds <= 0 {
		t.Error("SimulateCluster did not enable the cost model")
	}
	res2, err := Run(data, Config{Algorithm: P3CPlusMRLight})
	if err != nil {
		t.Fatal(err)
	}
	if res2.SimulatedSeconds != 0 {
		t.Error("cost model enabled without the flag")
	}
}

func TestEvaluationHelpers(t *testing.T) {
	data, truth := genAPITestData(t, 2000, 8)
	res, err := Run(data, Config{Algorithm: P3CPlusMRLight})
	if err != nil {
		t.Fatal(err)
	}
	found, err := FoundClustering(res, data)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := TruthClustering(truth)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"E4SC": E4SC(found, tc),
		"F1":   F1(found, tc),
		"RNIA": RNIA(found, tc),
		"CE":   CE(found, tc),
	} {
		if v < 0 || v > 1 {
			t.Errorf("%s = %g out of range", name, v)
		}
	}
	// Self-comparison of the truth is perfect.
	if E4SC(tc, tc) != 1 {
		t.Error("truth vs itself must be 1")
	}
	if Accuracy([]int{0, 0}, []int{1, 1}) != 1 {
		t.Error("accuracy re-export broken")
	}
}

func TestPROCLUSAndDOCThroughAPI(t *testing.T) {
	data, truth := genAPITestData(t, 3000, 17)
	tc, err := TruthClustering(truth)
	if err != nil {
		t.Fatal(err)
	}
	// PROCLUS gets the true k and a plausible l.
	pp := proclus.Params{K: 3, L: 4, Seed: 1}
	res, err := Run(data, Config{Algorithm: PROCLUS, PROCLUS: &pp})
	if err != nil {
		t.Fatal(err)
	}
	found, err := FoundClustering(res, data)
	if err != nil {
		t.Fatal(err)
	}
	if f1 := F1(found, tc); f1 < 0.4 {
		t.Errorf("PROCLUS F1 = %.3f", f1)
	}
	// DOC.
	dp := doc.Params{K: 3, W: 0.25, Seed: 1}
	res, err = Run(data, Config{Algorithm: DOC, DOC: &dp})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Error("DOC found nothing")
	}
	// Missing configs are rejected.
	if _, err := Run(data, Config{Algorithm: PROCLUS}); err == nil {
		t.Error("PROCLUS without params accepted")
	}
	if _, err := Run(data, Config{Algorithm: DOC}); err == nil {
		t.Error("DOC without params accepted")
	}
	if PROCLUS.String() != "PROCLUS" || DOC.String() != "DOC" || P3CPlusMRMVE.String() != "MR (MVE)" {
		t.Error("algorithm names wrong")
	}
}

func TestGenerateSyntheticForcesOverlap(t *testing.T) {
	// The public generator always enables Overlap, matching §7.1.
	_, truth, err := GenerateSynthetic(SyntheticConfig{N: 500, Dim: 20, Clusters: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, b := truth.Clusters[0], truth.Clusters[1]
	shared := false
	for i, aa := range a.Attrs {
		for j, ba := range b.Attrs {
			if aa == ba && a.Lo[i] <= b.Hi[j] && b.Lo[j] <= a.Hi[i] {
				shared = true
			}
		}
	}
	if !shared {
		t.Error("no forced overlap")
	}
}
