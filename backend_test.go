package p3cmr

import (
	"bytes"
	"testing"

	"p3cmr/internal/mr"
)

// TestBackendJSONResultBitIdentical extends the end-to-end JSON oracle
// across the Backend seam: the full pipeline's WriteJSON output must be
// byte-for-byte identical no matter which backend the engine executes on,
// at any parallelism, with and without faults. The pipeline's jobs are
// closures (no Job.Impl), so the registry-free backends — in-process and
// the sequential simulated reference — are the ones a pipeline can select;
// the multiprocess backend's identical-output guarantee is pinned by the
// registry-based conformance suite in internal/mr.
func TestBackendJSONResultBitIdentical(t *testing.T) {
	data, _ := genAPITestData(t, 2000, 6)
	data.Normalize()

	render := func(engine *mr.Engine) []byte {
		t.Helper()
		res, err := Run(data, Config{Algorithm: P3CPlusMRLight, Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf, P3CPlusMRLight, true); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	baseline := render(mr.NewEngine(mr.Config{Parallelism: 4}))
	plan := mr.RateFaultPlan{MapRate: 0.3, ReduceRate: 0.3, Seed: 19}
	for _, backend := range []string{"inprocess", "simulated"} {
		for _, par := range []int{1, 8} {
			for _, faulty := range []bool{false, true} {
				cfg := mr.Config{Backend: backend, Parallelism: par}
				name := backend
				if faulty {
					cfg.Faults, cfg.MaxAttempts = plan, 12
					name += "/chaos"
				}
				engine := mr.NewEngine(cfg)
				if got := render(engine); !bytes.Equal(got, baseline) {
					t.Errorf("%s/par=%d: JSON result differs from in-process fault-free baseline", name, par)
				}
				if faulty && engine.TotalCounters().TaskRetries == 0 {
					t.Errorf("%s/par=%d: no retries injected — oracle exercised nothing", name, par)
				}
			}
		}
	}
}
