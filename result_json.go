package p3cmr

import (
	"encoding/json"
	"fmt"
	"io"

	"p3cmr/internal/signature"
)

// jsonResult is the stable JSON shape of a clustering result, designed for
// downstream tooling: one record per cluster with its tightened interval
// signature, member count and members, plus run metadata.
type jsonResult struct {
	Algorithm        string        `json:"algorithm"`
	Jobs             int           `json:"mapreduce_jobs"`
	SimulatedSeconds float64       `json:"simulated_seconds,omitempty"`
	Clusters         []jsonCluster `json:"clusters"`
	Outliers         int           `json:"outliers"`
}

type jsonCluster struct {
	ID        int            `json:"id"`
	Size      int            `json:"size"`
	Attrs     []int          `json:"attributes"`
	Intervals []jsonInterval `json:"intervals"`
	Members   []int          `json:"members,omitempty"`
}

type jsonInterval struct {
	Attr int     `json:"attr"`
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
}

// WriteJSON serializes the result. When includeMembers is false the
// (potentially huge) member lists are omitted and only sizes are kept.
func (r *Result) WriteJSON(w io.Writer, algorithm Algorithm, includeMembers bool) error {
	out := jsonResult{
		Algorithm:        algorithm.String(),
		Jobs:             r.Jobs,
		SimulatedSeconds: r.SimulatedSeconds,
	}
	for _, l := range r.Labels {
		if l < 0 {
			out.Outliers++
		}
	}
	for i, c := range r.Clusters {
		jc := jsonCluster{
			ID:    i,
			Size:  len(c.Objects),
			Attrs: append([]int(nil), c.Attrs...),
		}
		if includeMembers {
			jc.Members = append([]int(nil), c.Objects...)
		}
		if i < len(r.Signatures) {
			for _, iv := range r.Signatures[i].Intervals {
				jc.Intervals = append(jc.Intervals, jsonInterval{Attr: iv.Attr, Lo: iv.Lo, Hi: iv.Hi})
			}
		}
		out.Clusters = append(out.Clusters, jc)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("p3cmr: encode result: %w", err)
	}
	return nil
}

// ReadJSONSignatures parses a result previously written by WriteJSON and
// returns the cluster signatures, enabling round trips through tooling.
func ReadJSONSignatures(r io.Reader) ([]signature.Signature, error) {
	var in jsonResult
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("p3cmr: decode result: %w", err)
	}
	sigs := make([]signature.Signature, 0, len(in.Clusters))
	for _, c := range in.Clusters {
		ivs := make([]signature.Interval, 0, len(c.Intervals))
		for _, iv := range c.Intervals {
			ivs = append(ivs, signature.Interval{Attr: iv.Attr, Lo: iv.Lo, Hi: iv.Hi})
		}
		if len(ivs) > 0 {
			sigs = append(sigs, signature.New(ivs...))
		} else {
			sigs = append(sigs, signature.Signature{})
		}
	}
	return sigs, nil
}
