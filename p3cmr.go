// Package p3cmr is a from-scratch Go reproduction of "Projected Clustering
// for Huge Data Sets in MapReduce" (Fries, Wels, Seidl — EDBT 2014). It
// provides the P3C, P3C+, P3C+-MR and P3C+-MR-Light projected-clustering
// algorithms, the BoW baseline, a hand-rolled in-process MapReduce engine
// with a cluster cost model, the paper's synthetic workload generators, and
// the external quality measures (E4SC, F1, RNIA, CE) used in its
// evaluation.
//
// Quick start:
//
//	data, truth, _ := p3cmr.GenerateSynthetic(p3cmr.SyntheticConfig{
//		N: 10000, Dim: 50, Clusters: 5, NoiseFraction: 0.1, Seed: 1,
//	})
//	res, _ := p3cmr.Run(data, p3cmr.Config{Algorithm: p3cmr.P3CPlusMRLight})
//	fmt.Println("clusters:", len(res.Clusters), "E4SC:", p3cmr.E4SCAgainstTruth(res, data, truth))
package p3cmr

import (
	"fmt"

	"p3cmr/internal/bow"
	"p3cmr/internal/core"
	"p3cmr/internal/dataset"
	"p3cmr/internal/doc"
	"p3cmr/internal/eval"
	"p3cmr/internal/mr"
	"p3cmr/internal/outlier"
	"p3cmr/internal/proclus"
	"p3cmr/internal/signature"
)

// Algorithm selects the clustering variant.
type Algorithm int

const (
	// P3C is the original algorithm (Moise et al., ICDM 2006): Sturges
	// binning, pure Poisson testing, naive outlier detection, no redundancy
	// filter, no AI proving.
	P3C Algorithm = iota
	// P3CPlus is the paper's improved model run serially (single split).
	P3CPlus
	// P3CPlusMR is P3C+ with MVB outlier detection, fully distributed.
	P3CPlusMR
	// P3CPlusMRNaive is P3C+-MR with the naive outlier detector (the "MR
	// (Naive)" series of Figure 7).
	P3CPlusMRNaive
	// P3CPlusMRLight drops the EM and outlier-detection phases (§6).
	P3CPlusMRLight
	// BoWLight is the BoW baseline with the P3C+-Light plug-in.
	BoWLight
	// BoWMVB is the BoW baseline with the full P3C+ (MVB) plug-in.
	BoWMVB
	// P3CPlusMRMVE is an extension beyond the paper: the exact-style
	// minimum-volume-ellipsoid estimator (resampling MVE) the paper
	// mentions in §4.2.2 but leaves unevaluated for cost reasons.
	P3CPlusMRMVE
	// PROCLUS is the k-medoid projected clustering baseline the paper
	// discusses as related work (§2; Aggarwal et al., SIGMOD 1999).
	// It requires Config.PROCLUS (cluster count k and dimensionality l).
	PROCLUS
	// DOC is the Monte Carlo projected clustering baseline of §2
	// (Procopiuc et al., SIGMOD 2002). It requires Config.DOC.
	DOC
)

// String names the algorithm as in the paper's figures.
func (a Algorithm) String() string {
	switch a {
	case P3C:
		return "P3C"
	case P3CPlus:
		return "P3C+"
	case P3CPlusMR:
		return "MR (MVB)"
	case P3CPlusMRNaive:
		return "MR (Naive)"
	case P3CPlusMRLight:
		return "MR (Light)"
	case BoWLight:
		return "BoW (Light)"
	case BoWMVB:
		return "BoW (MVB)"
	case P3CPlusMRMVE:
		return "MR (MVE)"
	case PROCLUS:
		return "PROCLUS"
	case DOC:
		return "DOC"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Config configures a Run.
type Config struct {
	// Algorithm selects the variant (default P3CPlusMRLight).
	Algorithm Algorithm
	// Params overrides the pipeline parameters; when nil the preset implied
	// by Algorithm is used.
	Params *core.Params
	// BoW overrides the BoW parameters for the BoW variants; when nil the
	// flavour preset is used.
	BoW *bow.Params
	// PROCLUS parameterizes the PROCLUS baseline (required for it: the
	// algorithm needs k and l as inputs, unlike the P3C family).
	PROCLUS *proclus.Params
	// DOC parameterizes the DOC baseline (required for it).
	DOC *doc.Params
	// Engine overrides the MapReduce engine; when nil a default engine is
	// created.
	Engine *mr.Engine
	// SimulateCluster enables the Hadoop cost model on a freshly created
	// engine (ignored when Engine is set).
	SimulateCluster bool
}

// Result is the unified outcome of a Run.
type Result struct {
	// Clusters are the found projected clusters (object + attribute sets).
	Clusters []*eval.Cluster
	// Labels is the disjoint per-point view (cluster id or -1).
	Labels []int
	// Signatures are the output hyperrectangles per cluster.
	Signatures []signature.Signature
	// Core carries the full pipeline result for the P3C variants (nil for
	// BoW).
	Core *core.Result
	// BoW carries the BoW result for the BoW variants (nil otherwise).
	BoW *bow.Result
	// SimulatedSeconds is the modeled cluster runtime (0 without a cost
	// model).
	SimulatedSeconds float64
	// Jobs is the number of MapReduce jobs run.
	Jobs int
}

// paramsFor returns the preset for an algorithm.
func paramsFor(a Algorithm) core.Params {
	switch a {
	case P3C:
		return core.OriginalP3CParams()
	case P3CPlus:
		p := core.NewParams()
		p.NumSplits = 1
		return p
	case P3CPlusMR:
		return core.NewParams()
	case P3CPlusMRNaive:
		p := core.NewParams()
		p.OutlierMethod = outlier.Naive
		return p
	case P3CPlusMRLight:
		return core.LightParams()
	case P3CPlusMRMVE:
		p := core.NewParams()
		p.OutlierMethod = outlier.MVE
		return p
	default:
		return core.NewParams()
	}
}

// Run executes the configured algorithm on the data set. The data must be
// normalized to [0,1] (see (*Dataset).Normalize).
func Run(data *Dataset, cfg Config) (*Result, error) {
	engine := cfg.Engine
	if engine == nil {
		ec := mr.Config{}
		if cfg.SimulateCluster {
			ec.Cost = mr.DefaultCostModel()
		}
		engine = mr.NewEngine(ec)
	}

	switch cfg.Algorithm {
	case PROCLUS:
		if cfg.PROCLUS == nil {
			return nil, fmt.Errorf("p3cmr: PROCLUS requires Config.PROCLUS (k and l)")
		}
		res, err := proclus.Run(data, *cfg.PROCLUS)
		if err != nil {
			return nil, err
		}
		return &Result{Clusters: res.Clusters, Labels: res.Labels}, nil
	case DOC:
		if cfg.DOC == nil {
			return nil, fmt.Errorf("p3cmr: DOC requires Config.DOC (k)")
		}
		res, err := doc.Run(data, *cfg.DOC)
		if err != nil {
			return nil, err
		}
		return &Result{Clusters: res.Clusters, Labels: res.Labels, Signatures: res.Signatures}, nil
	case BoWLight, BoWMVB:
		params := bow.NewLightParams()
		if cfg.Algorithm == BoWMVB {
			params = bow.NewMVBParams()
		}
		if cfg.BoW != nil {
			params = *cfg.BoW
		}
		res, err := bow.Run(engine, data, params)
		if err != nil {
			return nil, err
		}
		return &Result{
			Clusters:         res.Clusters,
			Labels:           res.Labels,
			Signatures:       res.Signatures,
			BoW:              res,
			SimulatedSeconds: res.Stats.SimulatedSeconds,
			Jobs:             1,
		}, nil
	default:
		params := paramsFor(cfg.Algorithm)
		if cfg.Params != nil {
			params = *cfg.Params
		}
		res, err := core.Run(engine, data, params)
		if err != nil {
			return nil, err
		}
		sigs := make([]signature.Signature, 0, len(res.Signatures))
		for _, os := range res.Signatures {
			if len(os.Intervals) > 0 {
				sigs = append(sigs, signature.New(os.Intervals...))
			} else {
				sigs = append(sigs, signature.Signature{})
			}
		}
		return &Result{
			Clusters:         res.Clusters,
			Labels:           res.Labels,
			Signatures:       sigs,
			Core:             res,
			SimulatedSeconds: res.Stats.SimulatedSeconds,
			Jobs:             res.Stats.Jobs,
		}, nil
	}
}

// --- Re-exports: data sets -----------------------------------------------------

// Dataset is the row-major vector data set type.
type Dataset = dataset.Dataset

// SyntheticConfig parameterizes the paper's synthetic generator (§7.1).
type SyntheticConfig = dataset.GenConfig

// GroundTruth describes a generated data set's hidden structure.
type GroundTruth = dataset.GroundTruth

// GenerateSynthetic builds a synthetic data set with hidden projected
// clusters and uniform noise.
func GenerateSynthetic(cfg SyntheticConfig) (*Dataset, *GroundTruth, error) {
	if !cfg.Overlap {
		cfg.Overlap = true
	}
	return dataset.Generate(cfg)
}

// --- Re-exports: evaluation -----------------------------------------------------

// Cluster is a projected cluster for evaluation.
type Cluster = eval.Cluster

// SubspaceClustering is a set of projected clusters for evaluation.
type SubspaceClustering = eval.SubspaceClustering

// TruthClustering converts a generator ground truth into the evaluation
// representation.
func TruthClustering(truth *GroundTruth) (*SubspaceClustering, error) {
	clusters := make([]*eval.Cluster, 0, len(truth.Clusters))
	for _, tc := range truth.Clusters {
		clusters = append(clusters, &eval.Cluster{Objects: tc.Members, Attrs: tc.Attrs})
	}
	return eval.NewSubspaceClustering(truth.N, truth.Dim, clusters)
}

// FoundClustering converts a result into the evaluation representation.
func FoundClustering(res *Result, data *Dataset) (*SubspaceClustering, error) {
	return eval.NewSubspaceClustering(data.N(), data.Dim, res.Clusters)
}

// E4SCAgainstTruth evaluates the result against the generator ground truth
// with the paper's primary measure. It returns 0 on conversion errors.
func E4SCAgainstTruth(res *Result, data *Dataset, truth *GroundTruth) float64 {
	found, err := FoundClustering(res, data)
	if err != nil {
		return 0
	}
	tc, err := TruthClustering(truth)
	if err != nil {
		return 0
	}
	return eval.E4SC(found, tc)
}

// E4SC, F1, RNIA and CE expose the quality measures on evaluation
// clusterings.
func E4SC(found, truth *SubspaceClustering) float64 { return eval.E4SC(found, truth) }

// F1 is the object-based F1 quality.
func F1(found, truth *SubspaceClustering) float64 { return eval.F1(found, truth) }

// RNIA is the relative intersecting-area quality.
func RNIA(found, truth *SubspaceClustering) float64 { return eval.RNIA(found, truth) }

// CE is the clustering-error quality.
func CE(found, truth *SubspaceClustering) float64 { return eval.CE(found, truth) }

// Accuracy is the majority-class accuracy of a disjoint label assignment.
func Accuracy(predicted, classes []int) float64 { return eval.Accuracy(predicted, classes) }
