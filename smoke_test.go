package p3cmr

import "testing"

// TestSmokeLight drives the whole Light pipeline on a small synthetic data
// set and checks that the hidden clusters are recovered with high quality.
func TestSmokeLight(t *testing.T) {
	data, truth, err := GenerateSynthetic(SyntheticConfig{
		N: 5000, Dim: 20, Clusters: 3, NoiseFraction: 0.1, Seed: 42, Overlap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(data, Config{Algorithm: P3CPlusMRLight})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cores=%d clusters=%d jobs=%d", len(res.Core.Cores), len(res.Clusters), res.Jobs)
	for i, s := range res.Core.Cores {
		t.Logf("core %d: %v supp=%d", i, s, res.Core.CoreSupports[i])
	}
	e4sc := E4SCAgainstTruth(res, data, truth)
	t.Logf("E4SC=%.3f", e4sc)
	if len(res.Clusters) != 3 {
		t.Errorf("found %d clusters, want 3", len(res.Clusters))
	}
	if e4sc < 0.7 {
		t.Errorf("E4SC=%.3f too low", e4sc)
	}
}

// TestSmokeFull drives the full P3C+-MR pipeline (EM + MVB outliers).
func TestSmokeFull(t *testing.T) {
	data, truth, err := GenerateSynthetic(SyntheticConfig{
		N: 3000, Dim: 15, Clusters: 3, NoiseFraction: 0.05, Seed: 7, Overlap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(data, Config{Algorithm: P3CPlusMR})
	if err != nil {
		t.Fatal(err)
	}
	e4sc := E4SCAgainstTruth(res, data, truth)
	t.Logf("clusters=%d jobs=%d EM=%d E4SC=%.3f", len(res.Clusters), res.Jobs, res.Core.Stats.EMIterations, e4sc)
	if len(res.Clusters) != 3 {
		t.Errorf("found %d clusters, want 3", len(res.Clusters))
	}
	if e4sc < 0.5 {
		t.Errorf("E4SC=%.3f too low", e4sc)
	}
}
