module p3cmr

go 1.22
