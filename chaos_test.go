package p3cmr

import (
	"bytes"
	"testing"

	"p3cmr/internal/mr"
)

// TestChaosJSONResultBitIdentical is the end-to-end oracle of the chaos
// harness: the serialized JSON result of a public-API Run — cluster members,
// tightened intervals, attribute sets, outlier count, job count — must be
// byte-for-byte identical between a fault-free engine and engines sweeping
// fault plans and parallelism levels. Downstream tooling that consumes
// WriteJSON output can therefore never observe whether the (modeled)
// cluster was lossy.
func TestChaosJSONResultBitIdentical(t *testing.T) {
	data, _ := genAPITestData(t, 2500, 7)
	data.Normalize()

	render := func(engine *mr.Engine) []byte {
		t.Helper()
		res, err := Run(data, Config{Algorithm: P3CPlusMRLight, Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf, P3CPlusMRLight, true); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	baseline := render(mr.NewEngine(mr.Config{Parallelism: 4}))
	plans := []struct {
		name string
		plan mr.FaultPlan
	}{
		{"map-only", mr.RateFaultPlan{MapRate: 0.4, Seed: 19}},
		{"reduce-only", mr.RateFaultPlan{ReduceRate: 0.45, Seed: 11}},
		{"mixed-stragglers", mr.RateFaultPlan{MapRate: 0.25, CombineRate: 0.25, ReduceRate: 0.25,
			StragglerRate: 0.5, StragglerSeconds: 9, Seed: 29}},
	}
	for _, pc := range plans {
		for _, par := range []int{1, 8} {
			engine := mr.NewEngine(mr.Config{Parallelism: par, Faults: pc.plan, MaxAttempts: 12})
			got := render(engine)
			if !bytes.Equal(got, baseline) {
				t.Errorf("%s/par=%d: JSON result differs from fault-free baseline\n got: %s\nwant: %s",
					pc.name, par, got, baseline)
			}
			if engine.TotalCounters().TaskRetries == 0 {
				t.Errorf("%s/par=%d: no retries injected — oracle exercised nothing", pc.name, par)
			}
		}
	}
}
