package p3cmr

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestResultJSONRoundTrip(t *testing.T) {
	data, _ := genAPITestData(t, 2000, 12)
	res, err := Run(data, Config{Algorithm: P3CPlusMRLight})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf, P3CPlusMRLight, true); err != nil {
		t.Fatal(err)
	}
	// Valid JSON with the expected top-level fields.
	var generic map[string]any
	if err := json.Unmarshal(buf.Bytes(), &generic); err != nil {
		t.Fatal(err)
	}
	if generic["algorithm"] != "MR (Light)" {
		t.Errorf("algorithm = %v", generic["algorithm"])
	}
	sigs, err := ReadJSONSignatures(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) != len(res.Signatures) {
		t.Fatalf("round trip lost signatures: %d vs %d", len(sigs), len(res.Signatures))
	}
	for i := range sigs {
		if !sigs[i].Equal(res.Signatures[i]) {
			t.Fatalf("signature %d differs after round trip", i)
		}
	}
}

func TestResultJSONWithoutMembers(t *testing.T) {
	data, _ := genAPITestData(t, 1500, 13)
	res, err := Run(data, Config{Algorithm: P3CPlusMRLight})
	if err != nil {
		t.Fatal(err)
	}
	var with, without bytes.Buffer
	if err := res.WriteJSON(&with, P3CPlusMRLight, true); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteJSON(&without, P3CPlusMRLight, false); err != nil {
		t.Fatal(err)
	}
	if without.Len() >= with.Len() {
		t.Error("member-free encoding not smaller")
	}
	if strings.Contains(without.String(), `"members"`) {
		t.Error("members leaked into member-free encoding")
	}
}

func TestReadJSONSignaturesBadInput(t *testing.T) {
	if _, err := ReadJSONSignatures(strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
}
