// Package proclus implements PROCLUS (Aggarwal et al., SIGMOD 1999), the
// k-medoid projected clustering algorithm the reproduced paper discusses as
// related work (§2). It serves as an additional baseline: unlike P3C it
// needs the cluster count k and average dimensionality l as inputs, and its
// medoid hill-climbing gives no quality guarantee.
//
// The implementation follows the original three phases:
//
//  1. Initialization: sample A·k points, greedily pick B·k well-separated
//     candidates by max-min distance.
//  2. Iteration: pick k medoids, compute each medoid's locality, select
//     per-medoid dimensions by smallest standardized average distance
//     (≥2 per medoid, k·l total), assign points by segmental Manhattan
//     distance, and replace the worst medoids while the objective improves.
//  3. Refinement: recompute dimensions from the final clusters, reassign
//     once, and mark outliers farther from every medoid than that medoid's
//     sphere of influence.
package proclus

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"p3cmr/internal/dataset"
	"p3cmr/internal/eval"
)

// Params configures a PROCLUS run.
type Params struct {
	// K is the target cluster count (required).
	K int
	// L is the average cluster dimensionality (required, ≥ 2).
	L int
	// A and B are the sampling factors of the initialization phase
	// (defaults 30 and 3, per the original paper).
	A, B int
	// MaxIterations bounds the medoid hill climbing (default 30).
	MaxIterations int
	// MaxBadRounds stops after this many non-improving medoid swaps
	// (default 5).
	MaxBadRounds int
	// MinDeviation is the fraction of n/k below which a cluster marks its
	// medoid as bad (default 0.1).
	MinDeviation float64
	// Seed drives all sampling.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.A <= 0 {
		p.A = 30
	}
	if p.B <= 0 {
		p.B = 3
	}
	if p.MaxIterations <= 0 {
		p.MaxIterations = 30
	}
	if p.MaxBadRounds <= 0 {
		p.MaxBadRounds = 5
	}
	if p.MinDeviation <= 0 {
		p.MinDeviation = 0.1
	}
	return p
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.K < 1 {
		return fmt.Errorf("proclus: K must be ≥ 1, got %d", p.K)
	}
	if p.L < 2 {
		return fmt.Errorf("proclus: L must be ≥ 2, got %d", p.L)
	}
	return nil
}

// Result is a PROCLUS clustering.
type Result struct {
	// Medoids holds the final medoid row indices.
	Medoids []int
	// Dims holds each cluster's selected dimensions, ascending.
	Dims [][]int
	// Labels assigns each point a cluster or -1 (outlier).
	Labels []int
	// Clusters is the evaluation view.
	Clusters []*eval.Cluster
	// Iterations is the number of hill-climbing rounds run.
	Iterations int
}

// Run executes PROCLUS on the data set.
func Run(data *dataset.Dataset, params Params) (*Result, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	params = params.withDefaults()
	n := data.N()
	if n < params.K {
		return nil, fmt.Errorf("proclus: %d points cannot form %d clusters", n, params.K)
	}
	rng := rand.New(rand.NewSource(params.Seed))

	candidates := initialMedoids(data, params, rng)
	state := newSearchState(data, params, candidates, rng)
	state.climb()

	labels, dims := state.refine()
	res := &Result{
		Medoids:    append([]int(nil), state.best...),
		Dims:       dims,
		Labels:     labels,
		Iterations: state.iterations,
	}
	res.Clusters = make([]*eval.Cluster, params.K)
	for c := range res.Clusters {
		res.Clusters[c] = &eval.Cluster{Attrs: dims[c]}
	}
	for i, l := range labels {
		if l >= 0 {
			res.Clusters[l].Objects = append(res.Clusters[l].Objects, i)
		}
	}
	return res, nil
}

// initialMedoids samples A·k points and greedily picks B·k well-separated
// ones (max-min Euclidean distance), the classic piercing heuristic.
func initialMedoids(data *dataset.Dataset, params Params, rng *rand.Rand) []int {
	n := data.N()
	sampleSize := params.A * params.K
	if sampleSize > n {
		sampleSize = n
	}
	sample := rng.Perm(n)[:sampleSize]

	target := params.B * params.K
	if target > sampleSize {
		target = sampleSize
	}
	chosen := make([]int, 0, target)
	chosen = append(chosen, sample[rng.Intn(len(sample))])
	minDist := make([]float64, len(sample))
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	for len(chosen) < target {
		last := data.Row(chosen[len(chosen)-1])
		best, bestDist := -1, -1.0
		for i, idx := range sample {
			d := euclidean(data.Row(idx), last)
			if d < minDist[i] {
				minDist[i] = d
			}
			if minDist[i] > bestDist {
				best, bestDist = i, minDist[i]
			}
		}
		if best < 0 {
			break
		}
		chosen = append(chosen, sample[best])
		minDist[best] = 0
	}
	return chosen
}

// searchState carries the hill-climbing loop.
type searchState struct {
	data       *dataset.Dataset
	params     Params
	candidates []int
	rng        *rand.Rand

	best       []int
	bestDims   [][]int
	bestLabels []int
	bestCost   float64
	iterations int
}

func newSearchState(data *dataset.Dataset, params Params, candidates []int, rng *rand.Rand) *searchState {
	return &searchState{
		data: data, params: params, candidates: candidates, rng: rng,
		bestCost: math.Inf(1),
	}
}

// climb runs the medoid replacement loop.
func (s *searchState) climb() {
	k := s.params.K
	current := append([]int(nil), s.candidates[:k]...)
	bad := 0
	for it := 0; it < s.params.MaxIterations && bad < s.params.MaxBadRounds; it++ {
		s.iterations++
		dims := s.selectDimensions(current)
		labels, cost := s.assign(current, dims)
		if cost < s.bestCost {
			s.bestCost = cost
			s.best = append(s.best[:0], current...)
			s.bestDims = dims
			s.bestLabels = labels
			bad = 0
		} else {
			bad++
		}
		// Replace the bad medoids (too-small clusters) with random
		// candidates not currently in use.
		current = s.replaceBad(append([]int(nil), s.best...), s.bestLabels)
	}
}

// selectDimensions implements the locality-based dimension choice: for each
// medoid, average dimension-wise distances over its locality, standardize
// per medoid, and greedily take the k·l smallest Z-scores with at least two
// per medoid.
func (s *searchState) selectDimensions(medoids []int) [][]int {
	k := s.params.K
	d := s.data.Dim
	// Locality radius: distance to the nearest other medoid.
	delta := make([]float64, k)
	for i := range medoids {
		delta[i] = math.Inf(1)
		for j := range medoids {
			if i == j {
				continue
			}
			dist := euclidean(s.data.Row(medoids[i]), s.data.Row(medoids[j]))
			if dist < delta[i] {
				delta[i] = dist
			}
		}
		if math.IsInf(delta[i], 1) {
			delta[i] = 0.5 // single-medoid degenerate case
		}
	}
	// X[i][j]: mean |x_j − m_ij| over the locality of medoid i.
	X := make([][]float64, k)
	counts := make([]int, k)
	for i := range X {
		X[i] = make([]float64, d)
	}
	n := s.data.N()
	for p := 0; p < n; p++ {
		row := s.data.Row(p)
		for i, m := range medoids {
			mrow := s.data.Row(m)
			if euclidean(row, mrow) <= delta[i] {
				counts[i]++
				for j := 0; j < d; j++ {
					X[i][j] += math.Abs(row[j] - mrow[j])
				}
			}
		}
	}
	type zEntry struct {
		medoid, dim int
		z           float64
	}
	var entries []zEntry
	for i := 0; i < k; i++ {
		if counts[i] == 0 {
			counts[i] = 1
		}
		mean, sd := 0.0, 0.0
		for j := 0; j < d; j++ {
			X[i][j] /= float64(counts[i])
			mean += X[i][j]
		}
		mean /= float64(d)
		for j := 0; j < d; j++ {
			diff := X[i][j] - mean
			sd += diff * diff
		}
		sd = math.Sqrt(sd / float64(d-1))
		if sd == 0 {
			sd = 1
		}
		for j := 0; j < d; j++ {
			entries = append(entries, zEntry{i, j, (X[i][j] - mean) / sd})
		}
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].z < entries[b].z })

	dims := make([][]int, k)
	total := k * s.params.L
	// First pass: guarantee two dimensions per medoid.
	taken := 0
	for _, e := range entries {
		if len(dims[e.medoid]) < 2 {
			dims[e.medoid] = append(dims[e.medoid], e.dim)
			taken++
		}
	}
	// Second pass: fill to k·l by global smallest Z.
	for _, e := range entries {
		if taken >= total {
			break
		}
		if contains(dims[e.medoid], e.dim) {
			continue
		}
		dims[e.medoid] = append(dims[e.medoid], e.dim)
		taken++
	}
	for i := range dims {
		sort.Ints(dims[i])
	}
	return dims
}

// assign gives each point to the medoid with the smallest segmental
// Manhattan distance over that medoid's dimensions, returning labels and
// the objective (mean within-cluster segmental distance).
func (s *searchState) assign(medoids []int, dims [][]int) ([]int, float64) {
	n := s.data.N()
	labels := make([]int, n)
	total := 0.0
	for p := 0; p < n; p++ {
		row := s.data.Row(p)
		best, bestDist := 0, math.Inf(1)
		for i, m := range medoids {
			dist := segmental(row, s.data.Row(m), dims[i])
			if dist < bestDist {
				best, bestDist = i, dist
			}
		}
		labels[p] = best
		total += bestDist
	}
	return labels, total / float64(n)
}

// replaceBad swaps the medoids of undersized clusters for fresh candidates.
func (s *searchState) replaceBad(medoids, labels []int) []int {
	n := s.data.N()
	k := s.params.K
	sizes := make([]int, k)
	for _, l := range labels {
		if l >= 0 {
			sizes[l]++
		}
	}
	minSize := int(s.params.MinDeviation * float64(n) / float64(k))
	inUse := make(map[int]bool, k)
	for _, m := range medoids {
		inUse[m] = true
	}
	for i := range medoids {
		if sizes[i] >= minSize && sizes[i] > 0 {
			continue
		}
		// Draw a replacement candidate not currently in use.
		for tries := 0; tries < 4*len(s.candidates); tries++ {
			c := s.candidates[s.rng.Intn(len(s.candidates))]
			if !inUse[c] {
				inUse[c] = true
				medoids[i] = c
				break
			}
		}
	}
	// Random restart jitter: occasionally swap one good medoid too.
	if s.rng.Float64() < 0.5 {
		i := s.rng.Intn(k)
		for tries := 0; tries < 4*len(s.candidates); tries++ {
			c := s.candidates[s.rng.Intn(len(s.candidates))]
			if !inUse[c] {
				medoids[i] = c
				break
			}
		}
	}
	return medoids
}

// refine recomputes dimensions from the best clusters (not localities),
// reassigns once, and marks outliers beyond every medoid's sphere of
// influence (the smallest segmental distance to any other medoid).
func (s *searchState) refine() ([]int, [][]int) {
	k := s.params.K
	d := s.data.Dim
	n := s.data.N()
	if s.best == nil {
		// Degenerate: no iteration improved anything; fall back.
		s.best = append([]int(nil), s.candidates[:k]...)
		s.bestDims = s.selectDimensions(s.best)
		s.bestLabels, _ = s.assign(s.best, s.bestDims)
	}
	// Recompute X from the clusters themselves.
	X := make([][]float64, k)
	counts := make([]int, k)
	for i := range X {
		X[i] = make([]float64, d)
	}
	for p := 0; p < n; p++ {
		l := s.bestLabels[p]
		if l < 0 {
			continue
		}
		counts[l]++
		mrow := s.data.Row(s.best[l])
		row := s.data.Row(p)
		for j := 0; j < d; j++ {
			X[l][j] += math.Abs(row[j] - mrow[j])
		}
	}
	type zEntry struct {
		medoid, dim int
		z           float64
	}
	var entries []zEntry
	for i := 0; i < k; i++ {
		if counts[i] == 0 {
			counts[i] = 1
		}
		mean, sd := 0.0, 0.0
		for j := 0; j < d; j++ {
			X[i][j] /= float64(counts[i])
			mean += X[i][j]
		}
		mean /= float64(d)
		for j := 0; j < d; j++ {
			diff := X[i][j] - mean
			sd += diff * diff
		}
		sd = math.Sqrt(sd / float64(d-1))
		if sd == 0 {
			sd = 1
		}
		for j := 0; j < d; j++ {
			entries = append(entries, zEntry{i, j, (X[i][j] - mean) / sd})
		}
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].z < entries[b].z })
	dims := make([][]int, k)
	total := k * s.params.L
	taken := 0
	for _, e := range entries {
		if len(dims[e.medoid]) < 2 {
			dims[e.medoid] = append(dims[e.medoid], e.dim)
			taken++
		}
	}
	for _, e := range entries {
		if taken >= total {
			break
		}
		if contains(dims[e.medoid], e.dim) {
			continue
		}
		dims[e.medoid] = append(dims[e.medoid], e.dim)
		taken++
	}
	for i := range dims {
		sort.Ints(dims[i])
	}

	labels, _ := s.assign(s.best, dims)

	// Outliers: sphere of influence per medoid = min segmental distance to
	// the other medoids under the medoid's own dimensions.
	sphere := make([]float64, k)
	for i := range s.best {
		sphere[i] = math.Inf(1)
		for j := range s.best {
			if i == j {
				continue
			}
			dist := segmental(s.data.Row(s.best[i]), s.data.Row(s.best[j]), dims[i])
			if dist < sphere[i] {
				sphere[i] = dist
			}
		}
		if math.IsInf(sphere[i], 1) {
			sphere[i] = math.MaxFloat64
		}
	}
	for p := 0; p < n; p++ {
		outlier := true
		row := s.data.Row(p)
		for i := range s.best {
			if segmental(row, s.data.Row(s.best[i]), dims[i]) <= sphere[i] {
				outlier = false
				break
			}
		}
		if outlier {
			labels[p] = -1
		}
	}
	return labels, dims
}

// euclidean returns the full-space Euclidean distance.
func euclidean(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		diff := a[i] - b[i]
		s += diff * diff
	}
	return math.Sqrt(s)
}

// segmental returns the Manhattan segmental distance over dims: the mean
// per-dimension absolute difference (Aggarwal et al.'s metric).
func segmental(a, b []float64, dims []int) float64 {
	if len(dims) == 0 {
		return math.Inf(1)
	}
	s := 0.0
	for _, j := range dims {
		s += math.Abs(a[j] - b[j])
	}
	return s / float64(len(dims))
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
