package proclus

import (
	"math"
	"testing"

	"p3cmr/internal/dataset"
	"p3cmr/internal/eval"
)

func genData(t *testing.T, n, dim, k int, noise float64, seed int64) (*dataset.Dataset, *dataset.GroundTruth) {
	t.Helper()
	data, truth, err := dataset.Generate(dataset.GenConfig{
		N: n, Dim: dim, Clusters: k, NoiseFraction: noise, Seed: seed, Overlap: true,
		MinClusterDims: 4, MaxClusterDims: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data, truth
}

func TestParamsValidate(t *testing.T) {
	if (Params{K: 0, L: 3}).Validate() == nil {
		t.Error("K=0 accepted")
	}
	if (Params{K: 2, L: 1}).Validate() == nil {
		t.Error("L=1 accepted")
	}
	if (Params{K: 2, L: 3}).Validate() != nil {
		t.Error("valid params rejected")
	}
}

func TestRunRejectsTooFewPoints(t *testing.T) {
	data := dataset.FromRows(2, []float64{0.1, 0.2})
	if _, err := Run(data, Params{K: 3, L: 2}); err == nil {
		t.Fatal("1 point for 3 clusters accepted")
	}
}

func TestRunFindsPlantedClusters(t *testing.T) {
	data, truth := genData(t, 3000, 15, 3, 0.05, 11)
	res, err := Run(data, Params{K: 3, L: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 3 {
		t.Fatalf("clusters = %d", len(res.Clusters))
	}
	if res.Iterations == 0 {
		t.Fatal("no hill-climbing iterations")
	}
	var truthCs []*eval.Cluster
	for _, tc := range truth.Clusters {
		truthCs = append(truthCs, &eval.Cluster{Objects: tc.Members, Attrs: tc.Attrs})
	}
	tc, err := eval.NewSubspaceClustering(truth.N, truth.Dim, truthCs)
	if err != nil {
		t.Fatal(err)
	}
	found, err := eval.NewSubspaceClustering(data.N(), data.Dim, res.Clusters)
	if err != nil {
		t.Fatal(err)
	}
	// PROCLUS is a weaker baseline than P3C+; object-level F1 is the fair
	// yardstick (its interval-free model has no tight subspace semantics).
	f1 := eval.F1(found, tc)
	e4sc := eval.E4SC(found, tc)
	t.Logf("PROCLUS F1=%.3f E4SC=%.3f", f1, e4sc)
	if f1 < 0.6 {
		t.Errorf("F1 = %.3f too low", f1)
	}
}

func TestDimensionCounts(t *testing.T) {
	data, _ := genData(t, 1500, 12, 2, 0.05, 21)
	const k, l = 2, 4
	res, err := Run(data, Params{K: k, L: l, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for c, dims := range res.Dims {
		if len(dims) < 2 {
			t.Errorf("cluster %d has %d dims, want ≥ 2", c, len(dims))
		}
		total += len(dims)
		// Dims are sorted unique within range.
		for i, d := range dims {
			if d < 0 || d >= data.Dim {
				t.Errorf("cluster %d dim %d out of range", c, d)
			}
			if i > 0 && dims[i-1] >= d {
				t.Errorf("cluster %d dims not sorted unique", c)
			}
		}
	}
	if total != k*l {
		t.Errorf("total dims = %d, want %d", total, k*l)
	}
}

func TestLabelsWellFormed(t *testing.T) {
	data, _ := genData(t, 1000, 10, 2, 0.2, 5)
	res, err := Run(data, Params{K: 2, L: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != data.N() {
		t.Fatal("labels length wrong")
	}
	for _, l := range res.Labels {
		if l < -1 || l >= 2 {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestSegmentalDistance(t *testing.T) {
	a := []float64{0, 0, 0, 0}
	b := []float64{1, 2, 3, 4}
	if got := segmental(a, b, []int{0, 2}); got != 2 { // (1+3)/2
		t.Fatalf("segmental = %g", got)
	}
	if got := segmental(a, b, nil); !math.IsInf(got, 1) {
		t.Fatal("empty dims must be +Inf")
	}
}

func TestInitialMedoidsSpread(t *testing.T) {
	data, _ := genData(t, 500, 8, 2, 0, 9)
	res, err := Run(data, Params{K: 2, L: 3, A: 10, B: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Medoids[0] == res.Medoids[1] {
		t.Fatal("duplicate medoids")
	}
}

func TestDeterministicBySeed(t *testing.T) {
	data, _ := genData(t, 800, 10, 2, 0.05, 31)
	r1, err := Run(data, Params{K: 2, L: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(data, Params{K: 2, L: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Labels {
		if r1.Labels[i] != r2.Labels[i] {
			t.Fatal("not deterministic by seed")
		}
	}
}
