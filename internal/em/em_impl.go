package em

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"p3cmr/internal/linalg"
	"p3cmr/internal/mr"
)

// The EM jobs are registered by name (not passed as closures) so the
// fitter runs on every backend, including multiprocess: a worker process
// cannot receive a closure, but it can receive this spec and resolve
// "em-moments"/"em-cov" through its own copy of the registry. gob
// round-trips float64 bit-exactly, so a model rebuilt from the spec
// computes the same responsibilities — to the bit — as the driver's live
// model, which is what keeps EM output (and the convergence metric points
// derived from it) identical across backends.
func init() {
	mr.RegisterWireValue(momentStat{})
	mr.RegisterWireValue(covStat{})
	mr.RegisterJobImpl("em-moments", buildMomentsJob)
	mr.RegisterJobImpl("em-cov", buildCovJob)
}

// modelSpec is the wire form of a Model plus, for the covariance job, the
// freshly estimated means the scatter is taken around.
type modelSpec struct {
	Attrs    []int
	Weights  []float64
	Means    [][]float64
	Covs     [][]float64 // flattened d×d covariance per component
	NewMeans [][]float64 // cov job only
}

// encodeModelSpec serializes the mixture (and optional new means) for the
// job Spec blob.
func encodeModelSpec(model *Model, newMeans [][]float64) ([]byte, error) {
	sp := modelSpec{Attrs: model.Attrs, NewMeans: newMeans}
	for _, c := range model.Components {
		sp.Weights = append(sp.Weights, c.Weight)
		sp.Means = append(sp.Means, c.Mean)
		sp.Covs = append(sp.Covs, c.Cov.Data)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&sp); err != nil {
		return nil, fmt.Errorf("em: encoding model spec: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeModelSpec rebuilds the prepared mixture from a job Spec blob.
func decodeModelSpec(spec []byte) (*Model, [][]float64, error) {
	var sp modelSpec
	if err := gob.NewDecoder(bytes.NewReader(spec)).Decode(&sp); err != nil {
		return nil, nil, fmt.Errorf("em: decoding model spec: %w", err)
	}
	d := len(sp.Attrs)
	m := &Model{Attrs: sp.Attrs}
	for i := range sp.Weights {
		cov := linalg.NewMatrix(d, d)
		copy(cov.Data, sp.Covs[i])
		m.Components = append(m.Components, &Component{
			Weight: sp.Weights[i],
			Mean:   sp.Means[i],
			Cov:    cov,
		})
	}
	if err := m.Prepare(); err != nil {
		return nil, nil, err
	}
	return m, sp.NewMeans, nil
}

// buildMomentsJob resolves the E-step/moments job: per-component Σr, Σr²,
// Σr·x and the convergence stats (log-likelihood, responsibility entropy)
// on component key 0.
func buildMomentsJob(spec []byte) (mr.JobFuncs, error) {
	model, _, err := decodeModelSpec(spec)
	if err != nil {
		return mr.JobFuncs{}, err
	}
	d := len(model.Attrs)
	return mr.JobFuncs{
		NewMapper: func() mr.Mapper { return &momentsMapper{model: model} },
		TypedReducer: mr.TypedReducerFunc(func(ctx *mr.TaskContext, key string, values mr.Values) error {
			agg := momentStat{L: make([]float64, d)}
			for i := 0; i < values.Len(); i++ {
				st := values.Value(i).(momentStat)
				agg.W += st.W
				agg.W2 += st.W2
				agg.LL += st.LL
				agg.H += st.H
				for j := range agg.L {
					agg.L[j] += st.L[j]
				}
			}
			ctx.Emit(key, agg)
			return nil
		}),
	}, nil
}

// buildCovJob resolves the M-step/covariance job: per-component scatter
// around the new means carried in the spec.
func buildCovJob(spec []byte) (mr.JobFuncs, error) {
	model, newMeans, err := decodeModelSpec(spec)
	if err != nil {
		return mr.JobFuncs{}, err
	}
	d := len(model.Attrs)
	return mr.JobFuncs{
		NewMapper: func() mr.Mapper { return &covMapper{model: model, means: newMeans} },
		TypedReducer: mr.TypedReducerFunc(func(ctx *mr.TaskContext, key string, values mr.Values) error {
			agg := covStat{S: make([]float64, d*d)}
			for i := 0; i < values.Len(); i++ {
				st := values.Value(i).(covStat)
				for j := range agg.S {
					agg.S[j] += st.S[j]
				}
			}
			ctx.Emit(key, agg)
			return nil
		}),
	}, nil
}
