// Package em implements the expectation-maximization refinement phase of
// the P3C/P3C+ pipeline: a Gaussian mixture model fitted in the projected
// subspace Arel of all cluster-core-relevant attributes (paper §3.2.2,
// §5.4). Both a serial fitter and a MapReduce fitter (two jobs per
// iteration, after Chu et al., NIPS 2006) are provided; they compute the
// same estimates.
package em

import (
	"fmt"
	"math"

	"p3cmr/internal/linalg"
	"p3cmr/internal/mr"
	"p3cmr/internal/obs"
)

// Component is one Gaussian mixture component restricted to the subspace
// Arel.
type Component struct {
	// Weight is the mixing proportion π.
	Weight float64
	// Mean has one entry per attribute of Arel.
	Mean []float64
	// Cov is the |Arel|×|Arel| covariance.
	Cov *linalg.Matrix

	chol   *linalg.Cholesky
	logDet float64
}

// Model is a Gaussian mixture over the projected subspace.
type Model struct {
	// Attrs lists the subspace attributes (ascending) the model lives in.
	Attrs []int
	// Components are the mixture components.
	Components []*Component
}

// ridge is the covariance regularization added before factorization.
const ridge = 1e-9

// prepare (re)factors a component's covariance. It regularizes
// near-singular covariances progressively until the Cholesky succeeds.
func (c *Component) prepare() error {
	cov := c.Cov.Clone()
	r := ridge
	for attempt := 0; attempt < 12; attempt++ {
		chol, err := linalg.CholeskyDecompose(linalg.RegularizeSPD(cov, r))
		if err == nil {
			c.chol = chol
			c.logDet = chol.LogDet()
			return nil
		}
		r *= 100
	}
	return fmt.Errorf("em: covariance not factorable even after regularization")
}

// Prepare factors all component covariances; it must be called after the
// components are (re)estimated and before LogPDF/Responsibilities.
func (m *Model) Prepare() error {
	for i, c := range m.Components {
		if err := c.prepare(); err != nil {
			return fmt.Errorf("component %d: %w", i, err)
		}
	}
	return nil
}

// K returns the number of components.
func (m *Model) K() int { return len(m.Components) }

// Project copies the Arel coordinates of the full-dimensional row into dst.
func (m *Model) Project(dst, row []float64) []float64 {
	if len(dst) != len(m.Attrs) {
		dst = make([]float64, len(m.Attrs))
	}
	for i, a := range m.Attrs {
		dst[i] = row[a]
	}
	return dst
}

// LogPDF returns log p(x|G_i) for the projected point x.
func (m *Model) LogPDF(i int, x []float64, diffScratch, solveScratch []float64) float64 {
	c := m.Components[i]
	return linalg.GaussianLogPDF(x, c.Mean, c.chol, c.logDet, diffScratch, solveScratch)
}

// MostLikely returns argmax_i p(x|G_i) — the paper's cluster assignment rule
// (likelihood, not posterior; §3.2.2) — for a projected point.
func (m *Model) MostLikely(x []float64, diffScratch, solveScratch []float64) int {
	best, bestLL := 0, math.Inf(-1)
	for i := range m.Components {
		if ll := m.LogPDF(i, x, diffScratch, solveScratch); ll > bestLL {
			best, bestLL = i, ll
		}
	}
	return best
}

// Responsibilities fills resp[i] with the posterior p(G_i|x) ∝ π_i·p(x|G_i)
// for the projected point x, returning the total log-likelihood log p(x).
func (m *Model) Responsibilities(resp, x []float64, diffScratch, solveScratch []float64) float64 {
	k := m.K()
	maxLL := math.Inf(-1)
	for i := 0; i < k; i++ {
		w := m.Components[i].Weight
		if w <= 0 {
			resp[i] = math.Inf(-1)
			continue
		}
		resp[i] = math.Log(w) + m.LogPDF(i, x, diffScratch, solveScratch)
		if resp[i] > maxLL {
			maxLL = resp[i]
		}
	}
	if math.IsInf(maxLL, -1) {
		// All components degenerate: uniform responsibilities.
		for i := 0; i < k; i++ {
			resp[i] = 1 / float64(k)
		}
		return math.Inf(-1)
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		resp[i] = math.Exp(resp[i] - maxLL)
		sum += resp[i]
	}
	for i := 0; i < k; i++ {
		resp[i] /= sum
	}
	return maxLL + math.Log(sum)
}

// Mahalanobis returns the Mahalanobis distance (not squared) of the
// projected point x to component i.
func (m *Model) Mahalanobis(i int, x []float64, diffScratch, solveScratch []float64) float64 {
	c := m.Components[i]
	return math.Sqrt(linalg.MahalanobisSq(x, c.Mean, c.chol, diffScratch, solveScratch))
}

// Clone deep-copies the model (without prepared factors).
func (m *Model) Clone() *Model {
	out := &Model{Attrs: append([]int(nil), m.Attrs...)}
	for _, c := range m.Components {
		out.Components = append(out.Components, &Component{
			Weight: c.Weight,
			Mean:   append([]float64(nil), c.Mean...),
			Cov:    c.Cov.Clone(),
		})
	}
	return out
}

// FitOptions tunes the EM loop.
type FitOptions struct {
	// MaxIterations bounds the EM loop (default 10).
	MaxIterations int
	// Tolerance stops the loop when the mean log-likelihood improves by
	// less (default 1e-4).
	Tolerance float64
	// TraceParent is the span the per-iteration MR jobs nest under (the
	// pipeline's EM phase span); zero leaves the jobs unparented.
	TraceParent obs.SpanID
}

func (o FitOptions) withDefaults() FitOptions {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 10
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-4
	}
	return o
}

// FitMR runs EM on the MapReduce engine: per iteration, job one computes the
// responsibility-weighted sums for the new means and weights, job two the
// new covariances (exactly the two-job scheme of §5.4). The model is
// updated in place; the iteration count actually run is returned.
func FitMR(engine *mr.Engine, splits []*mr.Split, model *Model, opts FitOptions) (int, error) {
	opts = opts.withDefaults()
	if err := model.Prepare(); err != nil {
		return 0, err
	}
	var n int64
	for _, s := range splits {
		n += int64(s.NumRows())
	}
	if n == 0 {
		return 0, nil
	}
	prevLL := math.Inf(-1)
	iters := 0
	for it := 0; it < opts.MaxIterations; it++ {
		ll, h, err := emIteration(engine, splits, model, it, opts.TraceParent)
		if err != nil {
			return iters, err
		}
		iters++
		meanLL := ll / float64(n)
		emitConvergence(engine, opts.TraceParent, it, meanLL, h/float64(n), model)
		if !math.IsInf(prevLL, -1) && meanLL-prevLL < opts.Tolerance {
			prevLL = meanLL
			break
		}
		prevLL = meanLL
	}
	return iters, nil
}

// momentStat carries one component's weighted sums through the shuffle.
type momentStat struct {
	W  float64   // Σ r_i
	W2 float64   // Σ r_i²
	L  []float64 // Σ r_i x_i
	LL float64   // Σ log p(x) (only on component key 0, for convergence)
	H  float64   // Σ −Σ_i r_i·ln r_i (only on key 0: responsibility entropy)
}

// covStat carries one component's weighted scatter matrix.
type covStat struct {
	S []float64 // flattened d×d Σ r_i (x−µ)(x−µ)ᵀ
}

// emIteration runs one E+M cycle as two MR jobs and returns the data
// log-likelihood and total responsibility entropy under the pre-update
// model. Both jobs are registry-resolved (Impl + a gob model spec, no
// closures) so one iteration runs identically on every backend, worker
// processes included.
func emIteration(engine *mr.Engine, splits []*mr.Split, model *Model, it int, trace obs.SpanID) (float64, float64, error) {
	k := model.K()
	d := len(model.Attrs)

	// Job 1: weights and means.
	spec1, err := encodeModelSpec(model, nil)
	if err != nil {
		return 0, 0, err
	}
	job1 := &mr.Job{
		Name:        fmt.Sprintf("em-moments-%d", it),
		Splits:      splits,
		TraceParent: trace,
		Impl:        "em-moments",
		Spec:        spec1,
	}
	out1, err := engine.Run(job1)
	if err != nil {
		return 0, 0, err
	}
	var n int64
	for _, s := range splits {
		n += int64(s.NumRows())
	}
	stats := make([]momentStat, k)
	var totalLL, totalH float64
	for _, p := range out1.Pairs {
		var ci int
		fmt.Sscanf(p.Key, "c%d", &ci)
		st := p.Value.(momentStat)
		stats[ci] = st
		totalLL += st.LL
		totalH += st.H
	}
	newMeans := make([][]float64, k)
	for i := 0; i < k; i++ {
		mu := make([]float64, d)
		if stats[i].W > 0 {
			for j := range mu {
				mu[j] = stats[i].L[j] / stats[i].W
			}
		} else {
			copy(mu, model.Components[i].Mean)
		}
		newMeans[i] = mu
	}

	// Job 2: covariances around the new means (weights from the old model's
	// responsibilities, matching the standard M-step).
	spec2, err := encodeModelSpec(model, newMeans)
	if err != nil {
		return 0, 0, err
	}
	job2 := &mr.Job{
		Name:        fmt.Sprintf("em-cov-%d", it),
		Splits:      splits,
		TraceParent: trace,
		Impl:        "em-cov",
		Spec:        spec2,
	}
	out2, err := engine.Run(job2)
	if err != nil {
		return 0, 0, err
	}
	scatters := make([]covStat, k)
	for _, p := range out2.Pairs {
		var ci int
		fmt.Sscanf(p.Key, "c%d", &ci)
		scatters[ci] = p.Value.(covStat)
	}

	// M-step: install the new parameters.
	for i := 0; i < k; i++ {
		c := model.Components[i]
		c.Weight = stats[i].W / float64(n)
		c.Mean = newMeans[i]
		w, w2 := stats[i].W, stats[i].W2
		denom := w*w - w2
		cov := linalg.NewMatrix(d, d)
		if denom > 0 && scatters[i].S != nil {
			f := w / denom
			for j := range cov.Data {
				cov.Data[j] = scatters[i].S[j] * f
			}
		}
		c.Cov = cov
	}
	if err := model.Prepare(); err != nil {
		return 0, 0, err
	}
	return totalLL, totalH, nil
}

// momentsMapper accumulates per-component weighted sums over its split and
// emits them in Cleanup, keeping shuffle volume at O(k·d) per split.
type momentsMapper struct {
	model *Model
	stats []momentStat
	keys  []string
	resp  []float64
	proj  []float64
	sc1   []float64
	sc2   []float64
}

func (m *momentsMapper) Setup(*mr.TaskContext) error {
	k := m.model.K()
	d := len(m.model.Attrs)
	m.stats = make([]momentStat, k)
	for i := range m.stats {
		m.stats[i].L = make([]float64, d)
	}
	m.keys = mr.IntKeys("c", k)
	m.resp = make([]float64, k)
	m.proj = make([]float64, d)
	m.sc1 = make([]float64, d)
	m.sc2 = make([]float64, d)
	return nil
}

func (m *momentsMapper) Map(ctx *mr.TaskContext, global int, row []float64) error {
	x := m.model.Project(m.proj, row)
	ll := m.model.Responsibilities(m.resp, x, m.sc1, m.sc2)
	m.stats[0].LL += ll
	h := 0.0
	for _, r := range m.resp {
		if r > 0 {
			h -= r * math.Log(r)
		}
	}
	m.stats[0].H += h
	for i, r := range m.resp {
		st := &m.stats[i]
		st.W += r
		st.W2 += r * r
		for j, v := range x {
			st.L[j] += r * v
		}
	}
	return nil
}

func (m *momentsMapper) Cleanup(ctx *mr.TaskContext) error {
	for i, st := range m.stats {
		ctx.Emit(m.keys[i], st)
	}
	return nil
}

// covMapper accumulates responsibility-weighted scatter around fixed means.
type covMapper struct {
	model    *Model
	means    [][]float64
	scatters []covStat
	keys     []string
	resp     []float64
	proj     []float64
	sc1      []float64
	sc2      []float64
}

func (m *covMapper) Setup(*mr.TaskContext) error {
	k := m.model.K()
	d := len(m.model.Attrs)
	m.scatters = make([]covStat, k)
	for i := range m.scatters {
		m.scatters[i].S = make([]float64, d*d)
	}
	m.keys = mr.IntKeys("c", k)
	m.resp = make([]float64, k)
	m.proj = make([]float64, d)
	m.sc1 = make([]float64, d)
	m.sc2 = make([]float64, d)
	return nil
}

func (m *covMapper) Map(ctx *mr.TaskContext, global int, row []float64) error {
	d := len(m.model.Attrs)
	x := m.model.Project(m.proj, row)
	m.model.Responsibilities(m.resp, x, m.sc1, m.sc2)
	for i, r := range m.resp {
		if r == 0 {
			continue
		}
		mu := m.means[i]
		s := m.scatters[i].S
		for a := 0; a < d; a++ {
			da := r * (x[a] - mu[a])
			if da == 0 {
				continue
			}
			base := a * d
			for b := 0; b < d; b++ {
				s[base+b] += da * (x[b] - mu[b])
			}
		}
	}
	return nil
}

func (m *covMapper) Cleanup(ctx *mr.TaskContext) error {
	for i, st := range m.scatters {
		ctx.Emit(m.keys[i], st)
	}
	return nil
}
