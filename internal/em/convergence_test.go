package em

import (
	"fmt"
	"math"
	"os"
	"testing"

	"p3cmr/internal/mr"
	"p3cmr/internal/obs"
)

// TestMain lets this test binary serve as a multiprocess-backend worker
// when the cross-backend convergence test re-execs it.
func TestMain(m *testing.M) {
	mr.MaybeWorkerProcess()
	os.Exit(m.Run())
}

// convergenceKey identifies one metric observation: the point name and the
// EM iteration it was emitted for.
type convergenceKey struct {
	name string
	iter int
}

// fitAndCollect runs FitMR on a fresh copy of the blob problem under the
// given backend/parallelism and returns every metric point's value, keyed
// by (name, iteration), plus the iteration count.
func fitAndCollect(t *testing.T, backend string, par int) (map[convergenceKey]float64, int) {
	t.Helper()
	splits := twoBlobs(300, 5, [2]int{0, 3}, 9)
	model := initialModel([]int{0, 3}, [][]float64{{0.4, 0.4}, {0.6, 0.6}})
	tr := obs.NewMemTracer()
	cfg := mr.Config{Parallelism: par, Backend: backend, Tracer: tr}
	if backend == "multiprocess" {
		cfg.SpillDir = t.TempDir()
	}
	engine := mr.NewEngine(cfg)
	run := obs.NewSpanID()
	tr.Begin(obs.Start{ID: run, Kind: obs.KindRun, Name: "em-fit"})
	iters, err := FitMR(engine, splits, model, FitOptions{MaxIterations: 5, Tolerance: 1e-9, TraceParent: run})
	if err != nil {
		t.Fatalf("%s/par=%d: %v", backend, par, err)
	}
	tr.End(obs.End{ID: run, Kind: obs.KindRun, Name: "em-fit", Outcome: obs.OutcomeOK})
	out := make(map[convergenceKey]float64)
	for _, p := range tr.Points() {
		if p.Kind != obs.PointMetric {
			continue
		}
		k := convergenceKey{p.Name, p.Task}
		if _, dup := out[k]; dup {
			t.Errorf("%s/par=%d: duplicate metric point %v", backend, par, k)
		}
		out[k] = p.Value
	}
	return out, iters
}

// TestConvergencePointsBitIdenticalAcrossBackends is the determinism
// contract for algorithm-level telemetry: the per-iteration log-likelihood,
// responsibility entropy and active-cluster counts must be bit-for-bit
// identical across the inprocess and multiprocess backends at parallelism
// 1 and 8 — the job spec round-trips float64s exactly, and the reduce is a
// fixed-order fold, so there is no tolerance here.
func TestConvergencePointsBitIdenticalAcrossBackends(t *testing.T) {
	type config struct {
		backend string
		par     int
	}
	configs := []config{
		{"", 1}, {"", 8},
		{"multiprocess", 1}, {"multiprocess", 8},
	}
	ref, refIters := fitAndCollect(t, configs[0].backend, configs[0].par)
	if refIters == 0 {
		t.Fatal("reference run did zero iterations")
	}
	if len(ref) != 3*refIters {
		t.Fatalf("reference run emitted %d metric points, want 3 per iteration × %d", len(ref), refIters)
	}
	for it := 0; it < refIters; it++ {
		for _, name := range []string{"em_log_likelihood", "em_resp_entropy", "em_active_clusters"} {
			if _, ok := ref[convergenceKey{name, it}]; !ok {
				t.Errorf("reference run missing %s at iteration %d", name, it)
			}
		}
	}
	// Log-likelihood must be non-decreasing across iterations — the EM
	// guarantee, and the property the convergence table exists to show.
	for it := 1; it < refIters; it++ {
		prev := ref[convergenceKey{"em_log_likelihood", it - 1}]
		cur := ref[convergenceKey{"em_log_likelihood", it}]
		if cur < prev {
			t.Errorf("log-likelihood decreased at iteration %d: %g → %g", it, prev, cur)
		}
	}

	for _, c := range configs[1:] {
		got, iters := fitAndCollect(t, c.backend, c.par)
		label := fmt.Sprintf("%s/par=%d", c.backend, c.par)
		if c.backend == "" {
			label = fmt.Sprintf("inprocess/par=%d", c.par)
		}
		if iters != refIters {
			t.Errorf("%s: %d iterations, reference did %d", label, iters, refIters)
		}
		if len(got) != len(ref) {
			t.Errorf("%s: %d metric points, reference has %d", label, len(got), len(ref))
		}
		for k, want := range ref {
			v, ok := got[k]
			if !ok {
				t.Errorf("%s: missing metric point %v", label, k)
				continue
			}
			if math.Float64bits(v) != math.Float64bits(want) {
				t.Errorf("%s: %s@%d = %x (%g), reference %x (%g) — not bit-identical",
					label, k.name, k.iter, math.Float64bits(v), v, math.Float64bits(want), want)
			}
		}
	}
}

// TestConvergenceMetricsInRegistry checks the /metrics side of the
// emission: the iteration counter and the latest-value gauges land in the
// engine's registry under the pinned p3c_em_* names.
func TestConvergenceMetricsInRegistry(t *testing.T) {
	splits := twoBlobs(200, 4, [2]int{0, 2}, 5)
	model := initialModel([]int{0, 2}, [][]float64{{0.4, 0.4}, {0.6, 0.6}})
	reg := obs.NewRegistry()
	engine := mr.NewEngine(mr.Config{Parallelism: 2, Metrics: reg})
	iters, err := FitMR(engine, splits, model, FitOptions{MaxIterations: 4, Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	counters, gauges := snap.Counters, snap.Gauges
	if counters["p3c_em_iterations_total"] != int64(iters) {
		t.Errorf("p3c_em_iterations_total = %d, want %d", counters["p3c_em_iterations_total"], iters)
	}
	for _, name := range []string{"p3c_em_log_likelihood", "p3c_em_resp_entropy", "p3c_em_active_clusters"} {
		if _, ok := gauges[name]; !ok {
			t.Errorf("gauge %s not published", name)
		}
	}
	if ac := gauges["p3c_em_active_clusters"]; ac < 1 || ac > 2 {
		t.Errorf("p3c_em_active_clusters = %g, want within [1, 2]", ac)
	}
}
