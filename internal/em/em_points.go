package em

import (
	"p3cmr/internal/mr"
	"p3cmr/internal/obs"
)

// activeWeightFloor is the mixing proportion below which a component is
// considered collapsed for the active-cluster count.
const activeWeightFloor = 1e-6

// activeClusters counts components whose mixing proportion is still above
// the floor — the "how many clusters survived" convergence signal.
func activeClusters(model *Model) int {
	n := 0
	for _, c := range model.Components {
		if c.Weight > activeWeightFloor {
			n++
		}
	}
	return n
}

// emitConvergence publishes one iteration's convergence state: typed
// metric points on the EM phase span (per-iteration series for traces,
// Progress, the flight recorder and `p3ctrace`) and the p3c_em_* registry
// families (latest-value gauges for /metrics). Driver-side only, after the
// iteration's jobs have reduced — the values are deterministic functions
// of the reduced stats, so they are bit-identical across backends, and
// with tracing and metrics off this is two nil checks and a return.
func emitConvergence(engine *mr.Engine, span obs.SpanID, it int, meanLL, meanH float64, model *Model) {
	active := activeClusters(model)
	tr := engine.Tracer()
	if tr != nil {
		tr.Point(obs.Point{Span: span, Kind: obs.PointMetric, Name: "em_log_likelihood", Task: it, Value: meanLL})
		tr.Point(obs.Point{Span: span, Kind: obs.PointMetric, Name: "em_resp_entropy", Task: it, Value: meanH})
		tr.Point(obs.Point{Span: span, Kind: obs.PointMetric, Name: "em_active_clusters", Task: it, Value: float64(active)})
	}
	reg := engine.Metrics()
	if reg != nil {
		reg.Counter("p3c_em_iterations_total").Inc()
		reg.Gauge("p3c_em_log_likelihood").Set(meanLL)
		reg.Gauge("p3c_em_resp_entropy").Set(meanH)
		reg.Gauge("p3c_em_active_clusters").Set(float64(active))
	}
}
