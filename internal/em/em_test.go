package em

import (
	"math"
	"math/rand"
	"testing"

	"p3cmr/internal/linalg"
	"p3cmr/internal/mr"
)

// twoBlobs generates two well-separated Gaussian blobs in 2-D, embedded in
// a dim-dimensional space at the given attribute positions.
func twoBlobs(n, dim int, attrs [2]int, seed int64) []*mr.Split {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]float64, 0, n*dim)
	for i := 0; i < n; i++ {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.Float64()
		}
		if i < n/2 {
			row[attrs[0]] = 0.25 + rng.NormFloat64()*0.03
			row[attrs[1]] = 0.25 + rng.NormFloat64()*0.03
		} else {
			row[attrs[0]] = 0.75 + rng.NormFloat64()*0.03
			row[attrs[1]] = 0.75 + rng.NormFloat64()*0.03
		}
		rows = append(rows, row...)
	}
	var splits []*mr.Split
	per := n / 4
	for s := 0; s < 4; s++ {
		lo, hi := s*per, (s+1)*per
		if s == 3 {
			hi = n
		}
		splits = append(splits, &mr.Split{ID: s, Offset: lo, Dim: dim, Rows: rows[lo*dim : hi*dim]})
	}
	return splits
}

func initialModel(attrs []int, centers [][]float64) *Model {
	m := &Model{Attrs: attrs}
	d := len(attrs)
	for _, c := range centers {
		cov := linalg.Identity(d)
		linalg.Scale(cov, 0.05, cov)
		m.Components = append(m.Components, &Component{
			Weight: 1 / float64(len(centers)),
			Mean:   append([]float64(nil), c...),
			Cov:    cov,
		})
	}
	return m
}

func TestFitMRSeparatesBlobs(t *testing.T) {
	splits := twoBlobs(800, 6, [2]int{1, 4}, 3)
	model := initialModel([]int{1, 4}, [][]float64{{0.4, 0.4}, {0.6, 0.6}})
	engine := mr.Default()
	iters, err := FitMR(engine, splits, model, FitOptions{MaxIterations: 20, Tolerance: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if iters == 0 {
		t.Fatal("no iterations run")
	}
	// Components must land near the true centres (order may swap).
	m0, m1 := model.Components[0].Mean, model.Components[1].Mean
	if m0[0] > m1[0] {
		m0, m1 = m1, m0
	}
	for j := 0; j < 2; j++ {
		if math.Abs(m0[j]-0.25) > 0.02 {
			t.Errorf("component near 0.25: mean[%d] = %g", j, m0[j])
		}
		if math.Abs(m1[j]-0.75) > 0.02 {
			t.Errorf("component near 0.75: mean[%d] = %g", j, m1[j])
		}
	}
	// Weights near 1/2 each.
	w := model.Components[0].Weight
	if math.Abs(w-0.5) > 0.05 {
		t.Errorf("weight = %g", w)
	}
	// Covariance should have shrunk towards the generating sigma² = 9e-4.
	v := model.Components[0].Cov.At(0, 0)
	if v > 0.005 || v <= 0 {
		t.Errorf("variance = %g", v)
	}
}

func TestMostLikelyAssignsCorrectly(t *testing.T) {
	model := initialModel([]int{0, 1}, [][]float64{{0.2, 0.2}, {0.8, 0.8}})
	if err := model.Prepare(); err != nil {
		t.Fatal(err)
	}
	if got := model.MostLikely([]float64{0.15, 0.25}, nil, nil); got != 0 {
		t.Errorf("assigned %d", got)
	}
	if got := model.MostLikely([]float64{0.9, 0.7}, nil, nil); got != 1 {
		t.Errorf("assigned %d", got)
	}
}

func TestResponsibilitiesSumToOne(t *testing.T) {
	model := initialModel([]int{0, 1}, [][]float64{{0.2, 0.2}, {0.8, 0.8}, {0.5, 0.5}})
	if err := model.Prepare(); err != nil {
		t.Fatal(err)
	}
	resp := make([]float64, 3)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		x := []float64{rng.Float64(), rng.Float64()}
		ll := model.Responsibilities(resp, x, nil, nil)
		sum := 0.0
		for _, r := range resp {
			if r < 0 || r > 1 {
				t.Fatalf("responsibility %g out of range", r)
			}
			sum += r
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("responsibilities sum to %g", sum)
		}
		if math.IsNaN(ll) {
			t.Fatal("NaN log-likelihood")
		}
	}
}

func TestResponsibilitiesZeroWeights(t *testing.T) {
	model := initialModel([]int{0}, [][]float64{{0.3}, {0.7}})
	model.Components[0].Weight = 0
	model.Components[1].Weight = 0
	if err := model.Prepare(); err != nil {
		t.Fatal(err)
	}
	resp := make([]float64, 2)
	model.Responsibilities(resp, []float64{0.5}, nil, nil)
	if math.Abs(resp[0]+resp[1]-1) > 1e-9 {
		t.Fatal("degenerate responsibilities must still normalize")
	}
}

func TestPrepareRegularizesSingularCovariance(t *testing.T) {
	m := &Model{Attrs: []int{0, 1}}
	m.Components = append(m.Components, &Component{
		Weight: 1,
		Mean:   []float64{0.5, 0.5},
		Cov:    linalg.NewMatrix(2, 2), // all-zero: singular
	})
	if err := m.Prepare(); err != nil {
		t.Fatalf("regularization failed: %v", err)
	}
	if d := m.Mahalanobis(0, []float64{0.5, 0.5}, nil, nil); d != 0 {
		t.Errorf("distance at mean = %g", d)
	}
}

func TestProject(t *testing.T) {
	m := &Model{Attrs: []int{1, 3}}
	got := m.Project(nil, []float64{9, 8, 7, 6})
	if got[0] != 8 || got[1] != 6 {
		t.Fatalf("projection = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := initialModel([]int{0}, [][]float64{{0.5}})
	c := m.Clone()
	c.Components[0].Mean[0] = 99
	c.Components[0].Cov.Set(0, 0, 99)
	if m.Components[0].Mean[0] == 99 || m.Components[0].Cov.At(0, 0) == 99 {
		t.Fatal("clone shares storage")
	}
}

func TestFitMREmptyInput(t *testing.T) {
	model := initialModel([]int{0}, [][]float64{{0.5}})
	iters, err := FitMR(mr.Default(), nil, model, FitOptions{})
	if err != nil || iters != 0 {
		t.Fatalf("empty fit: iters=%d err=%v", iters, err)
	}
}
