package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape = %dx%d", m.Rows, m.Cols)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("matrix not zeroed")
		}
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Errorf("I[%d,%d] = %g", i, j, m.At(i, j))
			}
		}
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 42)
	if m.At(1, 2) != 42 {
		t.Fatal("Set/At mismatch")
	}
	if m.Row(1)[2] != 42 {
		t.Fatal("Row view mismatch")
	}
}

func TestTranspose(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Errorf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(6), 1+rng.Intn(6)
		m := NewMatrix(r, c)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		tt := m.Transpose().Transpose()
		for i := range m.Data {
			if m.Data[i] != tt.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulIdentity(t *testing.T) {
	m := NewMatrixFrom(3, 3, []float64{1, 2, 3, 4, 5, 6, 7, 8, 10})
	p := Mul(m, Identity(3))
	for i := range m.Data {
		if p.Data[i] != m.Data[i] {
			t.Fatal("M*I != M")
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewMatrixFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	p := Mul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if p.Data[i] != w {
			t.Errorf("product[%d] = %g, want %g", i, p.Data[i], w)
		}
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 0, 2, 0, 3, 0})
	got := MulVec(nil, m, []float64{1, 2, 3})
	if got[0] != 7 || got[1] != 6 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestAddScaleSub(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewMatrixFrom(2, 2, []float64{4, 3, 2, 1})
	s := Add(nil, a, b)
	for _, v := range s.Data {
		if v != 5 {
			t.Fatal("Add wrong")
		}
	}
	sc := Scale(nil, 2, a)
	if sc.At(1, 1) != 8 {
		t.Fatal("Scale wrong")
	}
	d := Sub(nil, []float64{5, 5}, []float64{2, 3})
	if d[0] != 3 || d[1] != 2 {
		t.Fatal("Sub wrong")
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2 wrong")
	}
}

func TestIsSymmetric(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{1, 2, 2, 1})
	if !m.IsSymmetric(0) {
		t.Fatal("should be symmetric")
	}
	m.Set(0, 1, 3)
	if m.IsSymmetric(0.5) {
		t.Fatal("should not be symmetric")
	}
	r := NewMatrix(2, 3)
	if r.IsSymmetric(0) {
		t.Fatal("non-square cannot be symmetric")
	}
}

func TestLUSolve(t *testing.T) {
	a := NewMatrixFrom(3, 3, []float64{4, 2, 1, 2, 5, 3, 1, 3, 6})
	lu, err := LUDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{7, 10, 10}
	x := lu.Solve(nil, b)
	got := MulVec(nil, a, x)
	for i := range b {
		if !almostEq(got[i], b[i], 1e-10) {
			t.Errorf("A·x[%d] = %g, want %g", i, got[i], b[i])
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 2, 4})
	if _, err := LUDecompose(a); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestLUDeterminant(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{3, 1, 4, 2})
	lu, err := LUDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(lu.Det(), 2, 1e-12) {
		t.Fatalf("det = %g, want 2", lu.Det())
	}
	logAbs, sign := lu.LogDet()
	if !almostEq(sign*math.Exp(logAbs), 2, 1e-10) {
		t.Fatalf("LogDet inconsistent: %g %g", logAbs, sign)
	}
}

func TestLUInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewMatrix(4, 4)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := 0; i < 4; i++ {
		a.Set(i, i, a.At(i, i)+5)
	}
	lu, err := LUDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	inv := lu.Inverse()
	prod := Mul(a, inv)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(prod.At(i, j), want, 1e-9) {
				t.Errorf("A·A⁻¹[%d,%d] = %g", i, j, prod.At(i, j))
			}
		}
	}
}

// randomSPD builds a random symmetric positive-definite matrix.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	spd := Mul(b, b.Transpose())
	for i := 0; i < n; i++ {
		spd.Set(i, i, spd.At(i, i)+float64(n))
	}
	return spd
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		a := randomSPD(rng, n)
		ch, err := CholeskyDecompose(a)
		if err != nil {
			t.Fatal(err)
		}
		l := ch.L()
		rec := Mul(l, l.Transpose())
		for i := range a.Data {
			if !almostEq(rec.Data[i], a.Data[i], 1e-8*(1+math.Abs(a.Data[i]))) {
				t.Fatalf("trial %d: L·Lᵀ != A at %d: %g vs %g", trial, i, rec.Data[i], a.Data[i])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, −1
	if _, err := CholeskyDecompose(a); err == nil {
		t.Fatal("expected ErrNotPositiveDefinite")
	}
}

func TestCholeskySolveMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomSPD(rng, 5)
	b := make([]float64, 5)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ch, err := CholeskyDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	lu, err := LUDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	x1 := ch.SolveVec(nil, b)
	x2 := lu.Solve(nil, b)
	for i := range x1 {
		if !almostEq(x1[i], x2[i], 1e-9) {
			t.Errorf("solve mismatch at %d: %g vs %g", i, x1[i], x2[i])
		}
	}
}

func TestCholeskyQuadForm(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomSPD(rng, 4)
	ch, err := CholeskyDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	lu, _ := LUDecompose(a)
	x := []float64{1, -2, 0.5, 3}
	// xᵀA⁻¹x via explicit inverse.
	want := Dot(x, MulVec(nil, lu.Inverse(), x))
	got := ch.QuadForm(x, nil)
	if !almostEq(got, want, 1e-9) {
		t.Fatalf("QuadForm = %g, want %g", got, want)
	}
	if got < 0 {
		t.Fatal("quadratic form of SPD matrix must be non-negative")
	}
}

func TestCholeskyLogDet(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randomSPD(rng, 3)
	ch, _ := CholeskyDecompose(a)
	lu, _ := LUDecompose(a)
	logAbs, sign := lu.LogDet()
	if sign <= 0 {
		t.Fatal("SPD determinant must be positive")
	}
	if !almostEq(ch.LogDet(), logAbs, 1e-9) {
		t.Fatalf("LogDet mismatch: %g vs %g", ch.LogDet(), logAbs)
	}
}

func TestMeanCovariance(t *testing.T) {
	rows := []float64{
		1, 2,
		3, 4,
		5, 6,
	}
	mu := Mean(rows, 2)
	if mu[0] != 3 || mu[1] != 4 {
		t.Fatalf("mean = %v", mu)
	}
	cov := Covariance(rows, 2, mu)
	// Sample covariance of {1,3,5} is 4; cross term also 4 here.
	if !almostEq(cov.At(0, 0), 4, 1e-12) || !almostEq(cov.At(0, 1), 4, 1e-12) {
		t.Fatalf("cov = %v", cov)
	}
	if !cov.IsSymmetric(0) {
		t.Fatal("covariance must be symmetric")
	}
}

func TestCovarianceFewSamples(t *testing.T) {
	cov := Covariance([]float64{1, 2}, 2, []float64{1, 2})
	for _, v := range cov.Data {
		if v != 0 {
			t.Fatal("single-sample covariance must be zero")
		}
	}
}

func TestWeightedMomentsUnweightedMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n, d = 50, 3
	rows := make([]float64, n*d)
	for i := range rows {
		rows[i] = rng.Float64()
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	lin, ws, w2 := WeightedMoments(rows, d, w)
	if ws != n || w2 != n {
		t.Fatalf("weights: %g %g", ws, w2)
	}
	mu := Mean(rows, d)
	for j := 0; j < d; j++ {
		if !almostEq(lin[j]/ws, mu[j], 1e-12) {
			t.Fatalf("weighted mean mismatch at %d", j)
		}
	}
	wc := WeightedCovariance(rows, d, w, mu)
	c := Covariance(rows, d, mu)
	for i := range c.Data {
		if !almostEq(wc.Data[i], c.Data[i], 1e-10) {
			t.Fatalf("weighted covariance mismatch at %d: %g vs %g", i, wc.Data[i], c.Data[i])
		}
	}
}

func TestWeightedCovarianceZeroWeights(t *testing.T) {
	rows := []float64{1, 2, 3, 4}
	w := []float64{0, 0}
	cov := WeightedCovariance(rows, 2, w, []float64{0, 0})
	for _, v := range cov.Data {
		if v != 0 {
			t.Fatal("zero-weight covariance must be zero")
		}
	}
}

func TestRegularizeSPD(t *testing.T) {
	m := NewMatrix(2, 2)
	RegularizeSPD(m, 1e-3)
	if m.At(0, 0) < 1e-3 || m.At(1, 1) < 1e-3 {
		t.Fatal("diagonal not floored")
	}
	if _, err := CholeskyDecompose(m); err != nil {
		t.Fatal("regularized zero matrix must factor")
	}
}

func TestMahalanobisSqProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randomSPD(rng, 3)
	ch, _ := CholeskyDecompose(a)
	mu := []float64{1, 2, 3}
	// Distance to the mean itself is zero.
	if d := MahalanobisSq(mu, mu, ch, nil, nil); d != 0 {
		t.Fatalf("d(µ,µ) = %g", d)
	}
	// Symmetric in the difference: d(µ+v) == d(µ−v).
	v := []float64{0.5, -1, 0.25}
	p1 := []float64{mu[0] + v[0], mu[1] + v[1], mu[2] + v[2]}
	p2 := []float64{mu[0] - v[0], mu[1] - v[1], mu[2] - v[2]}
	d1 := MahalanobisSq(p1, mu, ch, nil, nil)
	d2 := MahalanobisSq(p2, mu, ch, nil, nil)
	if !almostEq(d1, d2, 1e-10) {
		t.Fatalf("asymmetric: %g vs %g", d1, d2)
	}
	if d1 <= 0 {
		t.Fatal("nonzero offset must have positive distance")
	}
}

func TestGaussianLogPDFIntegratesToDensity(t *testing.T) {
	// 1-D standard normal: logPDF(0) = −0.5·log(2π).
	cov := NewMatrixFrom(1, 1, []float64{1})
	ch, _ := CholeskyDecompose(cov)
	got := GaussianLogPDF([]float64{0}, []float64{0}, ch, ch.LogDet(), nil, nil)
	want := -0.5 * math.Log(2*math.Pi)
	if !almostEq(got, want, 1e-12) {
		t.Fatalf("logPDF = %g, want %g", got, want)
	}
}

func TestIdentityCholeskyMahalanobisIsEuclidean(t *testing.T) {
	ch, _ := CholeskyDecompose(Identity(3))
	x := []float64{3, 4, 0}
	mu := []float64{0, 0, 0}
	if d := MahalanobisSq(x, mu, ch, nil, nil); !almostEq(d, 25, 1e-12) {
		t.Fatalf("identity Mahalanobis² = %g, want 25", d)
	}
}
