package linalg

import "math"

// LU holds an LU decomposition with partial pivoting: P*A = L*U.
// L has unit diagonal and is stored (without the diagonal) in the strictly
// lower triangle of LU; U occupies the upper triangle including the diagonal.
type LU struct {
	lu    *Matrix
	pivot []int
	sign  float64
}

// LUDecompose factors the square matrix a. It returns ErrSingular when a
// zero (or sub-eps) pivot is encountered.
func LUDecompose(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Partial pivoting: find the largest magnitude in column k.
		p := k
		maxAbs := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > maxAbs {
				maxAbs = v
				p = i
			}
		}
		if maxAbs < 1e-300 {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pivVal
			lu.Set(i, k, f)
			if f == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= f * rk[j]
			}
		}
	}
	return &LU{lu: lu, pivot: piv, sign: sign}, nil
}

// Det returns the determinant of the decomposed matrix.
func (d *LU) Det() float64 {
	det := d.sign
	n := d.lu.Rows
	for i := 0; i < n; i++ {
		det *= d.lu.At(i, i)
	}
	return det
}

// LogDet returns log|det| and the sign of the determinant.
func (d *LU) LogDet() (logAbs, sign float64) {
	n := d.lu.Rows
	sign = d.sign
	for i := 0; i < n; i++ {
		v := d.lu.At(i, i)
		if v < 0 {
			sign = -sign
			v = -v
		}
		logAbs += math.Log(v)
	}
	return logAbs, sign
}

// Solve solves A·x = b, writing into dst (allocated when nil).
func (d *LU) Solve(dst, b []float64) []float64 {
	n := d.lu.Rows
	if len(b) != n {
		panic(ErrShape)
	}
	if dst == nil {
		dst = make([]float64, n)
	}
	// Apply permutation.
	for i := 0; i < n; i++ {
		dst[i] = b[d.pivot[i]]
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		row := d.lu.Row(i)
		s := dst[i]
		for j := 0; j < i; j++ {
			s -= row[j] * dst[j]
		}
		dst[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := d.lu.Row(i)
		s := dst[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * dst[j]
		}
		dst[i] = s / row[i]
	}
	return dst
}

// Inverse returns A⁻¹ for the decomposed matrix.
func (d *LU) Inverse() *Matrix {
	n := d.lu.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		d.Solve(col, e)
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv
}

// Cholesky holds the lower-triangular factor L with A = L·Lᵀ.
type Cholesky struct {
	l *Matrix
}

// CholeskyDecompose factors a symmetric positive-definite matrix.
func CholeskyDecompose(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		lj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lj[k] * lj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		diag := math.Sqrt(d)
		lj[j] = diag
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			li := l.Row(i)
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			li[j] = s / diag
		}
	}
	return &Cholesky{l: l}, nil
}

// L returns the lower-triangular factor (shared storage — do not mutate).
func (c *Cholesky) L() *Matrix { return c.l }

// LogDet returns log(det A) of the factored matrix.
func (c *Cholesky) LogDet() float64 {
	n := c.l.Rows
	s := 0.0
	for i := 0; i < n; i++ {
		s += math.Log(c.l.At(i, i))
	}
	return 2 * s
}

// SolveVec solves A·x = b via the two triangular systems.
func (c *Cholesky) SolveVec(dst, b []float64) []float64 {
	n := c.l.Rows
	if len(b) != n {
		panic(ErrShape)
	}
	if dst == nil {
		dst = make([]float64, n)
	}
	// Forward: L·y = b.
	for i := 0; i < n; i++ {
		row := c.l.Row(i)
		s := b[i]
		for j := 0; j < i; j++ {
			s -= row[j] * dst[j]
		}
		dst[i] = s / row[i]
	}
	// Backward: Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := dst[i]
		for j := i + 1; j < n; j++ {
			s -= c.l.At(j, i) * dst[j]
		}
		dst[i] = s / c.l.At(i, i)
	}
	return dst
}

// QuadForm returns xᵀ·A⁻¹·x for the factored matrix A, the core of the
// Mahalanobis distance. scratch must be nil or have length ≥ n.
func (c *Cholesky) QuadForm(x, scratch []float64) float64 {
	n := c.l.Rows
	if len(x) != n {
		panic(ErrShape)
	}
	if scratch == nil {
		scratch = make([]float64, n)
	}
	y := scratch[:n]
	// Solve L·y = x; then xᵀA⁻¹x = yᵀy.
	for i := 0; i < n; i++ {
		row := c.l.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * y[j]
		}
		y[i] = s / row[i]
	}
	q := 0.0
	for _, v := range y {
		q += v * v
	}
	return q
}
