package linalg

import "math"

// Mean computes the column-wise mean of the rows. Rows is a row-major flat
// slice with the given dimensionality; n = len(rows)/dim samples.
func Mean(rows []float64, dim int) []float64 {
	if dim <= 0 || len(rows)%dim != 0 {
		panic(ErrShape)
	}
	n := len(rows) / dim
	mu := make([]float64, dim)
	if n == 0 {
		return mu
	}
	for i := 0; i < n; i++ {
		row := rows[i*dim : (i+1)*dim]
		for j, v := range row {
			mu[j] += v
		}
	}
	inv := 1 / float64(n)
	for j := range mu {
		mu[j] *= inv
	}
	return mu
}

// Covariance computes the sample covariance matrix (denominator n-1) of the
// row-major data with the given mean. With fewer than two samples the zero
// matrix is returned.
func Covariance(rows []float64, dim int, mu []float64) *Matrix {
	n := len(rows) / dim
	cov := NewMatrix(dim, dim)
	if n < 2 {
		return cov
	}
	diff := make([]float64, dim)
	for i := 0; i < n; i++ {
		row := rows[i*dim : (i+1)*dim]
		for j := range diff {
			diff[j] = row[j] - mu[j]
		}
		for a := 0; a < dim; a++ {
			da := diff[a]
			if da == 0 {
				continue
			}
			crow := cov.Row(a)
			for b := a; b < dim; b++ {
				crow[b] += da * diff[b]
			}
		}
	}
	inv := 1 / float64(n-1)
	for a := 0; a < dim; a++ {
		for b := a; b < dim; b++ {
			v := cov.At(a, b) * inv
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	return cov
}

// WeightedMoments accumulates the weighted linear sum, weight sum and squared
// weight sum of the rows — the quantities lC, wC and wC² of §5.4 of the
// paper. weights[i] is the weight of row i.
func WeightedMoments(rows []float64, dim int, weights []float64) (linear []float64, w, w2 float64) {
	n := len(rows) / dim
	if len(weights) != n {
		panic(ErrShape)
	}
	linear = make([]float64, dim)
	for i := 0; i < n; i++ {
		wi := weights[i]
		if wi == 0 {
			continue
		}
		row := rows[i*dim : (i+1)*dim]
		for j, v := range row {
			linear[j] += wi * v
		}
		w += wi
		w2 += wi * wi
	}
	return linear, w, w2
}

// WeightedCovariance computes the unbiased weighted sample covariance
//
//	Σ = w/(w² − w2) · Σᵢ wᵢ (xᵢ−µ)(xᵢ−µ)ᵀ
//
// matching the formula in §5.4. It returns the zero matrix when the
// normalizer degenerates.
func WeightedCovariance(rows []float64, dim int, weights, mu []float64) *Matrix {
	n := len(rows) / dim
	cov := NewMatrix(dim, dim)
	var w, w2 float64
	diff := make([]float64, dim)
	for i := 0; i < n; i++ {
		wi := weights[i]
		if wi == 0 {
			continue
		}
		w += wi
		w2 += wi * wi
		row := rows[i*dim : (i+1)*dim]
		for j := range diff {
			diff[j] = row[j] - mu[j]
		}
		for a := 0; a < dim; a++ {
			da := wi * diff[a]
			if da == 0 {
				continue
			}
			crow := cov.Row(a)
			for b := a; b < dim; b++ {
				crow[b] += da * diff[b]
			}
		}
	}
	denom := w*w - w2
	if denom <= 0 {
		return cov
	}
	f := w / denom
	for a := 0; a < dim; a++ {
		for b := a; b < dim; b++ {
			v := cov.At(a, b) * f
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	return cov
}

// RegularizeSPD adds ridge*I (and a floor on diagonal entries) so that a
// covariance estimate becomes numerically positive definite. It mutates and
// returns m.
func RegularizeSPD(m *Matrix, ridge float64) *Matrix {
	n := m.Rows
	for i := 0; i < n; i++ {
		d := m.At(i, i) + ridge
		if d < ridge {
			d = ridge
		}
		m.Set(i, i, d)
	}
	return m
}

// MahalanobisSq returns the squared Mahalanobis distance (x−µ)ᵀ Σ⁻¹ (x−µ)
// using a precomputed Cholesky factor of Σ. diffScratch and solveScratch may
// be nil or caller-provided buffers of length ≥ len(x).
func MahalanobisSq(x, mu []float64, chol *Cholesky, diffScratch, solveScratch []float64) float64 {
	n := len(x)
	if diffScratch == nil {
		diffScratch = make([]float64, n)
	}
	d := diffScratch[:n]
	for i := range d {
		d[i] = x[i] - mu[i]
	}
	return chol.QuadForm(d, solveScratch)
}

// GaussianLogPDF evaluates the log density of N(µ, Σ) at x, given the
// Cholesky factor of Σ and its log determinant.
func GaussianLogPDF(x, mu []float64, chol *Cholesky, logDet float64, diffScratch, solveScratch []float64) float64 {
	k := float64(len(x))
	m2 := MahalanobisSq(x, mu, chol, diffScratch, solveScratch)
	return -0.5 * (k*math.Log(2*math.Pi) + logDet + m2)
}
