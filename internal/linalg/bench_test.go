package linalg

import (
	"math/rand"
	"testing"
)

func benchSPD(b *testing.B, n int) *Matrix {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	return randomSPD(rng, n)
}

func BenchmarkCholeskyDecompose(b *testing.B) {
	for _, n := range []int{4, 16, 50} {
		a := benchSPD(b, n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := CholeskyDecompose(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMahalanobisSq(b *testing.B) {
	for _, n := range []int{4, 16, 50} {
		a := benchSPD(b, n)
		ch, err := CholeskyDecompose(a)
		if err != nil {
			b.Fatal(err)
		}
		x := make([]float64, n)
		mu := make([]float64, n)
		rng := rand.New(rand.NewSource(2))
		for i := range x {
			x[i] = rng.Float64()
			mu[i] = rng.Float64()
		}
		diff := make([]float64, n)
		solve := make([]float64, n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MahalanobisSq(x, mu, ch, diff, solve)
			}
		})
	}
}

func BenchmarkCovariance(b *testing.B) {
	const n, d = 1000, 16
	rng := rand.New(rand.NewSource(3))
	rows := make([]float64, n*d)
	for i := range rows {
		rows[i] = rng.Float64()
	}
	mu := Mean(rows, d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Covariance(rows, d, mu)
	}
}

func BenchmarkLUSolve(b *testing.B) {
	a := benchSPD(b, 16)
	lu, err := LUDecompose(a)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, 16)
	for i := range rhs {
		rhs[i] = float64(i)
	}
	dst := make([]float64, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lu.Solve(dst, rhs)
	}
}

func sizeName(n int) string {
	switch n {
	case 4:
		return "d=4"
	case 16:
		return "d=16"
	default:
		return "d=50"
	}
}
