// Package linalg provides the small dense linear-algebra kernel used by the
// P3C+ clustering pipeline: vectors, row-major matrices, covariance
// estimation, LU and Cholesky decompositions, and Mahalanobis distances.
//
// Everything operates on float64 and is allocation-conscious: hot paths such
// as Mahalanobis distance evaluation accept caller-provided scratch buffers.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned when a decomposition or solve encounters a matrix
// that is singular (or numerically indistinguishable from singular).
var ErrSingular = errors.New("linalg: matrix is singular")

// ErrNotPositiveDefinite is returned by Cholesky when the input is not
// symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// ErrShape is returned when operand dimensions do not conform.
var ErrShape = errors.New("linalg: dimension mismatch")

// Matrix is a dense row-major matrix. The zero value is an empty matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewMatrixFrom builds an r×c matrix copying values from data (row-major).
func NewMatrixFrom(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic("linalg: data length does not match dimensions")
	}
	m := NewMatrix(r, c)
	copy(m.Data, data)
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Transpose returns a newly allocated transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Add stores a+b into dst (allocating when dst is nil) and returns dst.
func Add(dst, a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(ErrShape)
	}
	if dst == nil {
		dst = NewMatrix(a.Rows, a.Cols)
	}
	for i := range a.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
	return dst
}

// Scale stores s*a into dst (allocating when dst is nil) and returns dst.
func Scale(dst *Matrix, s float64, a *Matrix) *Matrix {
	if dst == nil {
		dst = NewMatrix(a.Rows, a.Cols)
	}
	for i := range a.Data {
		dst.Data[i] = s * a.Data[i]
	}
	return dst
}

// Mul returns a*b as a new matrix.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(ErrShape)
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec computes m·x and stores it into dst (allocated when nil).
func MulVec(dst []float64, m *Matrix, x []float64) []float64 {
	if m.Cols != len(x) {
		panic(ErrShape)
	}
	if dst == nil {
		dst = make([]float64, m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return dst
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Sub stores a-b into dst (allocated when nil) and returns dst.
func Sub(dst, a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	if dst == nil {
		dst = make([]float64, len(a))
	}
	for i := range a {
		dst[i] = a[i] - b[i]
	}
	return dst
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// IsSymmetric reports whether m is symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%.6g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}
