package eval

import (
	"math"
	"testing"
)

func TestAccuracyHungarianPerfect(t *testing.T) {
	pred := []int{0, 0, 1, 1}
	classes := []int{7, 7, 9, 9}
	if got := AccuracyHungarian(pred, classes); got != 1 {
		t.Fatalf("accuracy = %g", got)
	}
}

func TestAccuracyHungarianPunishesShattering(t *testing.T) {
	// Six pure singleton clusters over two classes: majority accuracy is a
	// perfect 1.0, Hungarian allows only one cluster per class.
	pred := []int{0, 1, 2, 3, 4, 5}
	classes := []int{0, 0, 0, 1, 1, 1}
	maj := Accuracy(pred, classes)
	hun := AccuracyHungarian(pred, classes)
	if maj != 1 {
		t.Fatalf("majority = %g", maj)
	}
	if math.Abs(hun-2.0/6) > 1e-12 {
		t.Fatalf("hungarian = %g, want 1/3", hun)
	}
}

func TestAccuracyHungarianOutliersAreErrors(t *testing.T) {
	pred := []int{0, 0, -1, -1}
	classes := []int{0, 0, 1, 1}
	// Majority gives the outlier group its own majority vote.
	if got := Accuracy(pred, classes); got != 1 {
		t.Fatalf("majority = %g", got)
	}
	// Hungarian counts unassigned points as errors.
	if got := AccuracyHungarian(pred, classes); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("hungarian = %g, want 0.5", got)
	}
}

func TestAccuracyHungarianMoreClassesThanClusters(t *testing.T) {
	pred := []int{0, 0, 0, 0}
	classes := []int{0, 0, 1, 2}
	// One cluster can match only its best class (2 points).
	if got := AccuracyHungarian(pred, classes); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("hungarian = %g, want 0.5", got)
	}
}

func TestAccuracyHungarianDegenerate(t *testing.T) {
	if AccuracyHungarian(nil, nil) != 0 {
		t.Error("empty input must be 0")
	}
	if AccuracyHungarian([]int{0}, []int{0, 1}) != 0 {
		t.Error("length mismatch must be 0")
	}
	if AccuracyHungarian([]int{-1, -1}, []int{0, 1}) != 0 {
		t.Error("all-outlier prediction must be 0")
	}
}

func TestAccuracyHungarianNeverExceedsMajority(t *testing.T) {
	cases := [][2][]int{
		{{0, 1, 0, 1, 2}, {0, 0, 1, 1, 1}},
		{{0, 0, 0, 1, 1}, {0, 1, 0, 1, 0}},
		{{-1, 0, 1, 1, 2}, {1, 1, 0, 0, 1}},
	}
	for i, c := range cases {
		hun := AccuracyHungarian(c[0], c[1])
		maj := Accuracy(c[0], c[1])
		if hun > maj+1e-12 {
			t.Errorf("case %d: hungarian %g exceeds majority %g", i, hun, maj)
		}
	}
}
