// Package eval implements the external quality measures used in the paper's
// evaluation (§7.2): E4SC (the primary measure, after Günnemann et al.,
// CIKM 2011), the classic object-based F1, RNIA and CE (after Patrikainen &
// Meilă), and classification accuracy for the colon-cancer experiment
// (§7.6). All measures are reported as qualities in [0,1], 1 being perfect.
package eval

import "math"

// Hungarian solves the assignment problem: given an n×m cost matrix, it
// returns an assignment minimizing total cost, as a slice rowAssign with
// rowAssign[i] = assigned column (or -1 when n > m leaves row i unmatched).
// The classic O(max(n,m)³) potentials algorithm is used on an internally
// squared matrix.
func Hungarian(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	m := len(cost[0])
	size := n
	if m > size {
		size = m
	}
	// Pad to square with zeros (free dummy assignments).
	a := make([][]float64, size+1)
	for i := range a {
		a[i] = make([]float64, size+1)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			a[i+1][j+1] = cost[i][j]
		}
	}

	u := make([]float64, size+1)
	v := make([]float64, size+1)
	p := make([]int, size+1) // p[j] = row matched to column j
	way := make([]int, size+1)
	for i := 1; i <= size; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, size+1)
		used := make([]bool, size+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= size; j++ {
				if used[j] {
					continue
				}
				cur := a[i0][j] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= size; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowAssign := make([]int, n)
	for i := range rowAssign {
		rowAssign[i] = -1
	}
	for j := 1; j <= size; j++ {
		i := p[j]
		if i >= 1 && i <= n && j <= m {
			rowAssign[i-1] = j - 1
		}
	}
	return rowAssign
}

// MaxWeightAssignment maximizes total weight instead of minimizing cost.
func MaxWeightAssignment(weight [][]float64) []int {
	n := len(weight)
	if n == 0 {
		return nil
	}
	m := len(weight[0])
	maxW := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if weight[i][j] > maxW {
				maxW = weight[i][j]
			}
		}
	}
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, m)
		for j := range cost[i] {
			cost[i][j] = maxW - weight[i][j]
		}
	}
	return Hungarian(cost)
}
