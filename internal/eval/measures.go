package eval

import (
	"fmt"
	"sort"
)

// Cluster is one projected cluster for evaluation: a set of object indices
// and a set of relevant attributes. Both slices must be sorted ascending and
// duplicate-free (SubspaceClustering normalizes them).
type Cluster struct {
	Objects []int
	Attrs   []int
}

// MicroObjects returns |Objects|·|Attrs| — the size of the cluster's
// micro-object set {(o,a)}.
func (c *Cluster) MicroObjects() int { return len(c.Objects) * len(c.Attrs) }

// SubspaceClustering is a set of projected clusters over n objects in d
// dimensions. Clusterings may overlap (subspace semantics); projected
// clusterings are simply the disjoint special case.
type SubspaceClustering struct {
	N, Dim   int
	Clusters []*Cluster
}

// NewSubspaceClustering normalizes and validates the clusters: sorts and
// deduplicates members and attributes, and rejects out-of-range indices.
func NewSubspaceClustering(n, dim int, clusters []*Cluster) (*SubspaceClustering, error) {
	sc := &SubspaceClustering{N: n, Dim: dim}
	for ci, c := range clusters {
		nc := &Cluster{
			Objects: sortedUnique(c.Objects),
			Attrs:   sortedUnique(c.Attrs),
		}
		for _, o := range nc.Objects {
			if o < 0 || o >= n {
				return nil, fmt.Errorf("eval: cluster %d object %d out of range [0,%d)", ci, o, n)
			}
		}
		for _, a := range nc.Attrs {
			if a < 0 || a >= dim {
				return nil, fmt.Errorf("eval: cluster %d attribute %d out of range [0,%d)", ci, a, dim)
			}
		}
		sc.Clusters = append(sc.Clusters, nc)
	}
	return sc, nil
}

// FromLabels builds a projected clustering from per-object labels (-1 =
// unclustered) and per-cluster attribute sets; attrs[i] belongs to label i.
func FromLabels(n, dim int, labels []int, attrs [][]int) (*SubspaceClustering, error) {
	if len(labels) != n {
		return nil, fmt.Errorf("eval: %d labels for %d objects", len(labels), n)
	}
	clusters := make([]*Cluster, len(attrs))
	for i := range clusters {
		clusters[i] = &Cluster{Attrs: attrs[i]}
	}
	for o, l := range labels {
		if l < 0 {
			continue
		}
		if l >= len(clusters) {
			return nil, fmt.Errorf("eval: label %d exceeds %d clusters", l, len(clusters))
		}
		clusters[l].Objects = append(clusters[l].Objects, o)
	}
	return NewSubspaceClustering(n, dim, clusters)
}

func sortedUnique(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	dst := out[:0]
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			dst = append(dst, v)
		}
	}
	return dst
}

// intersectSorted returns |a ∩ b| for sorted unique slices.
func intersectSorted(a, b []int) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// microIntersection returns the micro-object intersection size of two
// clusters: |X_a∩X_b|·|Y_a∩Y_b|.
func microIntersection(a, b *Cluster) int {
	return intersectSorted(a.Objects, b.Objects) * intersectSorted(a.Attrs, b.Attrs)
}

// f1 returns the harmonic mean of precision and recall computed from an
// intersection of size inter between sets of sizes szA (prediction) and szB
// (truth).
func f1(inter, szA, szB int) float64 {
	if inter == 0 || szA == 0 || szB == 0 {
		return 0
	}
	prec := float64(inter) / float64(szA)
	rec := float64(inter) / float64(szB)
	return 2 * prec * rec / (prec + rec)
}

// --- F1 (object-based) --------------------------------------------------------

// F1 is the classical full-space F1: each hidden cluster is matched to the
// found cluster maximizing the object-set F1, and the scores are averaged
// over hidden clusters. As the paper notes (§7.2), it cannot punish wrong
// subspaces.
func F1(found, truth *SubspaceClustering) float64 {
	if len(truth.Clusters) == 0 {
		if len(found.Clusters) == 0 {
			return 1
		}
		return 0
	}
	total := 0.0
	for _, t := range truth.Clusters {
		best := 0.0
		for _, f := range found.Clusters {
			inter := intersectSorted(f.Objects, t.Objects)
			if s := f1(inter, len(f.Objects), len(t.Objects)); s > best {
				best = s
			}
		}
		total += best
	}
	return total / float64(len(truth.Clusters))
}

// --- E4SC ----------------------------------------------------------------------

// e4scDirectional computes the micro-object F1 averaged over the clusters of
// `from`, each matched to its best partner in `to`. Empty `from` yields 0
// unless `to` is empty too.
func e4scDirectional(from, to *SubspaceClustering) float64 {
	if len(from.Clusters) == 0 {
		if len(to.Clusters) == 0 {
			return 1
		}
		return 0
	}
	total := 0.0
	for _, a := range from.Clusters {
		best := 0.0
		for _, b := range to.Clusters {
			inter := microIntersection(a, b)
			if s := f1(inter, a.MicroObjects(), b.MicroObjects()); s > best {
				best = s
			}
		}
		total += best
	}
	return total / float64(len(from.Clusters))
}

// E4SC is the paper's primary quality measure (Günnemann et al., CIKM
// 2011): an F1 over micro-objects (object,attribute) evaluated in both
// directions — hidden clusters matched to found clusters (recall of
// structure) and found clusters matched to hidden clusters (precision of
// structure) — combined by the harmonic mean. It detects cluster merges,
// wrong subspaces and wrong object assignments, each of which shrinks the
// micro-object intersections.
func E4SC(found, truth *SubspaceClustering) float64 {
	r := e4scDirectional(truth, found)
	p := e4scDirectional(found, truth)
	if r+p == 0 {
		return 0
	}
	return 2 * r * p / (r + p)
}

// --- RNIA ----------------------------------------------------------------------

// RNIA reports the relative intersecting area quality |I|/|U| ∈ [0,1] over
// micro-object multisets: I is the multiset intersection of the found and
// hidden micro-objects, U their multiset union (Patrikainen & Meilă define
// the error (U−I)/U; we report the complementary quality so that 1 is
// perfect, consistent with the other measures).
func RNIA(found, truth *SubspaceClustering) float64 {
	fc := microCounts(found)
	tc := microCounts(truth)
	var inter, union int64
	for cell, cf := range fc {
		ct := tc[cell]
		inter += min64(cf, ct)
		union += max64(cf, ct)
	}
	for cell, ct := range tc {
		if _, seen := fc[cell]; !seen {
			union += ct
		}
	}
	if union == 0 {
		return 1 // both clusterings empty
	}
	return float64(inter) / float64(union)
}

// microCounts builds the multiset of micro-objects as cell → multiplicity.
func microCounts(sc *SubspaceClustering) map[int64]int64 {
	m := make(map[int64]int64)
	for _, c := range sc.Clusters {
		for _, o := range c.Objects {
			base := int64(o) * int64(sc.Dim)
			for _, a := range c.Attrs {
				m[base+int64(a)]++
			}
		}
	}
	return m
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// --- CE ------------------------------------------------------------------------

// CE reports the clustering-error quality D_max/|U|: the found and hidden
// clusters are matched one-to-one (Hungarian) to maximize the summed
// micro-object intersections D_max, normalized by the micro-object union.
// Cluster splits are punished hard — only one fragment of a split cluster
// can be matched — which is why the paper found CE too sensitive (§7.2).
func CE(found, truth *SubspaceClustering) float64 {
	nf, nt := len(found.Clusters), len(truth.Clusters)
	if nf == 0 || nt == 0 {
		if nf == 0 && nt == 0 {
			return 1
		}
		return 0
	}
	weight := make([][]float64, nf)
	for i, f := range found.Clusters {
		weight[i] = make([]float64, nt)
		for j, t := range truth.Clusters {
			weight[i][j] = float64(microIntersection(f, t))
		}
	}
	assign := MaxWeightAssignment(weight)
	var dmax int64
	for i, j := range assign {
		if j >= 0 {
			dmax += int64(weight[i][j])
		}
	}
	// Union over multisets, as in RNIA.
	fc := microCounts(found)
	tc := microCounts(truth)
	var union int64
	for cell, cf := range fc {
		union += max64(cf, tc[cell])
	}
	for cell, ct := range tc {
		if _, seen := fc[cell]; !seen {
			union += ct
		}
	}
	if union == 0 {
		return 1
	}
	return float64(dmax) / float64(union)
}

// --- Accuracy -------------------------------------------------------------------

// Accuracy maps every found group (cluster id, with all outliers forming one
// extra group) to its majority true class and returns the fraction of
// correctly classified points — the measure of the colon-cancer comparison
// (§7.6).
func Accuracy(predicted, classes []int) float64 {
	if len(predicted) != len(classes) || len(predicted) == 0 {
		return 0
	}
	// group → class → count
	counts := make(map[int]map[int]int)
	for i, g := range predicted {
		m := counts[g]
		if m == nil {
			m = make(map[int]int)
			counts[g] = m
		}
		m[classes[i]]++
	}
	correct := 0
	for _, m := range counts {
		best := 0
		for _, c := range m {
			if c > best {
				best = c
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(predicted))
}

// AccuracyHungarian is the strict clustering-accuracy variant: found groups
// (outliers form no group — their points always count as errors) are
// matched one-to-one onto the true classes by maximum-weight assignment,
// and only points inside matched (group, class) pairs count as correct.
// Unlike the majority-vote Accuracy, shattering the data into many pure
// micro-clusters is penalized: at most one group can match each class.
func AccuracyHungarian(predicted, classes []int) float64 {
	if len(predicted) != len(classes) || len(predicted) == 0 {
		return 0
	}
	groupIdx := make(map[int]int)
	classIdx := make(map[int]int)
	for _, g := range predicted {
		if g >= 0 {
			if _, ok := groupIdx[g]; !ok {
				groupIdx[g] = len(groupIdx)
			}
		}
	}
	for _, c := range classes {
		if _, ok := classIdx[c]; !ok {
			classIdx[c] = len(classIdx)
		}
	}
	if len(groupIdx) == 0 {
		return 0
	}
	weight := make([][]float64, len(groupIdx))
	for i := range weight {
		weight[i] = make([]float64, len(classIdx))
	}
	for i, g := range predicted {
		if g < 0 {
			continue
		}
		weight[groupIdx[g]][classIdx[classes[i]]]++
	}
	assign := MaxWeightAssignment(weight)
	correct := 0.0
	for gi, ci := range assign {
		if ci >= 0 {
			correct += weight[gi][ci]
		}
	}
	return correct / float64(len(predicted))
}

// NumClustersDelta returns |found − truth| cluster-count difference, a
// helper for the Figure 5 experiment tables.
func NumClustersDelta(found, truth *SubspaceClustering) int {
	d := len(found.Clusters) - len(truth.Clusters)
	if d < 0 {
		return -d
	}
	return d
}
