package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustSC(t *testing.T, n, dim int, clusters []*Cluster) *SubspaceClustering {
	t.Helper()
	sc, err := NewSubspaceClustering(n, dim, clusters)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func seqInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func TestNewSubspaceClusteringNormalizes(t *testing.T) {
	sc := mustSC(t, 10, 3, []*Cluster{
		{Objects: []int{3, 1, 3, 2}, Attrs: []int{2, 0, 2}},
	})
	c := sc.Clusters[0]
	if len(c.Objects) != 3 || c.Objects[0] != 1 {
		t.Fatalf("objects = %v", c.Objects)
	}
	if len(c.Attrs) != 2 || c.Attrs[0] != 0 {
		t.Fatalf("attrs = %v", c.Attrs)
	}
	if c.MicroObjects() != 6 {
		t.Fatalf("micro = %d", c.MicroObjects())
	}
}

func TestNewSubspaceClusteringRejectsOutOfRange(t *testing.T) {
	if _, err := NewSubspaceClustering(5, 2, []*Cluster{{Objects: []int{5}, Attrs: []int{0}}}); err == nil {
		t.Fatal("object out of range accepted")
	}
	if _, err := NewSubspaceClustering(5, 2, []*Cluster{{Objects: []int{0}, Attrs: []int{2}}}); err == nil {
		t.Fatal("attribute out of range accepted")
	}
}

func TestFromLabels(t *testing.T) {
	labels := []int{0, 1, -1, 0, 1}
	sc, err := FromLabels(5, 4, labels, [][]int{{0, 1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Clusters[0].Objects) != 2 || len(sc.Clusters[1].Objects) != 2 {
		t.Fatal("label grouping wrong")
	}
	if _, err := FromLabels(3, 2, []int{0}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FromLabels(2, 2, []int{5, 0}, [][]int{{0}}); err == nil {
		t.Fatal("label exceeding clusters accepted")
	}
}

// --- Perfect and degenerate cases for all measures ------------------------------

func TestMeasuresPerfectMatch(t *testing.T) {
	truth := mustSC(t, 100, 10, []*Cluster{
		{Objects: seqInts(0, 50), Attrs: []int{0, 1, 2}},
		{Objects: seqInts(50, 100), Attrs: []int{3, 4}},
	})
	found := mustSC(t, 100, 10, []*Cluster{
		{Objects: seqInts(50, 100), Attrs: []int{3, 4}},
		{Objects: seqInts(0, 50), Attrs: []int{0, 1, 2}},
	})
	for name, m := range map[string]float64{
		"E4SC": E4SC(found, truth),
		"F1":   F1(found, truth),
		"RNIA": RNIA(found, truth),
		"CE":   CE(found, truth),
	} {
		if math.Abs(m-1) > 1e-12 {
			t.Errorf("%s = %g on a perfect match", name, m)
		}
	}
}

func TestMeasuresEmptyCases(t *testing.T) {
	empty := mustSC(t, 10, 2, nil)
	some := mustSC(t, 10, 2, []*Cluster{{Objects: []int{0, 1}, Attrs: []int{0}}})
	if E4SC(empty, empty) != 1 || RNIA(empty, empty) != 1 || CE(empty, empty) != 1 || F1(empty, empty) != 1 {
		t.Error("both-empty must be perfect")
	}
	if E4SC(empty, some) != 0 || CE(empty, some) != 0 || F1(empty, some) != 0 {
		t.Error("empty found vs non-empty truth must be 0")
	}
	if RNIA(empty, some) != 0 {
		t.Error("RNIA empty vs non-empty must be 0")
	}
}

// TestE4SCDetectsWrongSubspace: same objects, wrong attributes must score
// below the same objects with right attributes — the paper's reason to
// prefer E4SC over F1 (§7.2).
func TestE4SCDetectsWrongSubspace(t *testing.T) {
	truth := mustSC(t, 100, 10, []*Cluster{{Objects: seqInts(0, 50), Attrs: []int{0, 1}}})
	right := mustSC(t, 100, 10, []*Cluster{{Objects: seqInts(0, 50), Attrs: []int{0, 1}}})
	wrong := mustSC(t, 100, 10, []*Cluster{{Objects: seqInts(0, 50), Attrs: []int{8, 9}}})
	if E4SC(right, truth) != 1 {
		t.Fatal("right subspace must be perfect")
	}
	if E4SC(wrong, truth) != 0 {
		t.Fatalf("disjoint subspace scored %g", E4SC(wrong, truth))
	}
	// F1 cannot see the difference.
	if F1(wrong, truth) != 1 {
		t.Fatalf("object F1 should ignore subspaces, got %g", F1(wrong, truth))
	}
}

// TestE4SCDetectsMerge: merging two clusters into one must be punished.
func TestE4SCDetectsMerge(t *testing.T) {
	truth := mustSC(t, 100, 6, []*Cluster{
		{Objects: seqInts(0, 50), Attrs: []int{0, 1}},
		{Objects: seqInts(50, 100), Attrs: []int{0, 1}},
	})
	merged := mustSC(t, 100, 6, []*Cluster{
		{Objects: seqInts(0, 100), Attrs: []int{0, 1}},
	})
	s := E4SC(merged, truth)
	if s >= 0.9 {
		t.Fatalf("merge scored %g, must be punished", s)
	}
	if s <= 0 {
		t.Fatalf("merge scored %g, should be partial", s)
	}
}

// TestE4SCDetectsWrongAssignment: moving half of a cluster's objects into
// another lowers the score.
func TestE4SCDetectsWrongAssignment(t *testing.T) {
	truth := mustSC(t, 100, 6, []*Cluster{
		{Objects: seqInts(0, 50), Attrs: []int{0, 1}},
		{Objects: seqInts(50, 100), Attrs: []int{2, 3}},
	})
	shifted := mustSC(t, 100, 6, []*Cluster{
		{Objects: seqInts(0, 25), Attrs: []int{0, 1}},
		{Objects: seqInts(25, 100), Attrs: []int{2, 3}},
	})
	if s := E4SC(shifted, truth); s >= 0.95 {
		t.Fatalf("wrong assignment scored %g", s)
	}
}

func TestRNIAPartialOverlap(t *testing.T) {
	truth := mustSC(t, 10, 4, []*Cluster{{Objects: []int{0, 1}, Attrs: []int{0, 1}}})
	found := mustSC(t, 10, 4, []*Cluster{{Objects: []int{0, 1}, Attrs: []int{0}}})
	// Intersection 2 cells, union 4 cells.
	if got := RNIA(found, truth); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("RNIA = %g, want 0.5", got)
	}
}

func TestRNIAMultisetSemantics(t *testing.T) {
	// Overlapping found clusters double-count cells in the union.
	truth := mustSC(t, 4, 2, []*Cluster{{Objects: []int{0, 1}, Attrs: []int{0}}})
	found := mustSC(t, 4, 2, []*Cluster{
		{Objects: []int{0, 1}, Attrs: []int{0}},
		{Objects: []int{0, 1}, Attrs: []int{0}},
	})
	// I = 2 (each truth cell matched once), U = 4 (found multiplicity 2).
	if got := RNIA(found, truth); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("RNIA multiset = %g, want 0.5", got)
	}
}

func TestCEPunishesSplitsHarderThanRNIA(t *testing.T) {
	truth := mustSC(t, 100, 4, []*Cluster{{Objects: seqInts(0, 100), Attrs: []int{0, 1}}})
	split := mustSC(t, 100, 4, []*Cluster{
		{Objects: seqInts(0, 50), Attrs: []int{0, 1}},
		{Objects: seqInts(50, 100), Attrs: []int{0, 1}},
	})
	ce := CE(split, truth)
	rnia := RNIA(split, truth)
	if ce >= rnia {
		t.Fatalf("CE (%g) must punish the split harder than RNIA (%g)", ce, rnia)
	}
	if math.Abs(ce-0.5) > 1e-12 {
		t.Fatalf("CE = %g, want 0.5 (only one fragment matched)", ce)
	}
	if math.Abs(rnia-1) > 1e-12 {
		t.Fatalf("RNIA = %g, want 1 (cells identical)", rnia)
	}
}

func TestMeasuresInUnitRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, dim := 30, 5
		mk := func() *SubspaceClustering {
			k := rng.Intn(4)
			var cs []*Cluster
			for i := 0; i < k; i++ {
				var objs, attrs []int
				for o := 0; o < n; o++ {
					if rng.Float64() < 0.3 {
						objs = append(objs, o)
					}
				}
				for a := 0; a < dim; a++ {
					if rng.Float64() < 0.5 {
						attrs = append(attrs, a)
					}
				}
				if len(objs) == 0 || len(attrs) == 0 {
					continue
				}
				cs = append(cs, &Cluster{Objects: objs, Attrs: attrs})
			}
			sc, _ := NewSubspaceClustering(n, dim, cs)
			return sc
		}
		a, b := mk(), mk()
		for _, v := range []float64{E4SC(a, b), F1(a, b), RNIA(a, b), CE(a, b)} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		// Symmetric measures: E4SC, RNIA, CE are symmetric by construction.
		if math.Abs(E4SC(a, b)-E4SC(b, a)) > 1e-12 {
			return false
		}
		if math.Abs(RNIA(a, b)-RNIA(b, a)) > 1e-12 {
			return false
		}
		if math.Abs(CE(a, b)-CE(b, a)) > 1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAccuracy(t *testing.T) {
	// Two clusters mapping cleanly to two classes.
	pred := []int{0, 0, 0, 1, 1, 1}
	classes := []int{1, 1, 1, 0, 0, 0}
	if got := Accuracy(pred, classes); got != 1 {
		t.Fatalf("accuracy = %g", got)
	}
	// One mislabeled point.
	classes[0] = 0
	if got := Accuracy(pred, classes); math.Abs(got-5.0/6) > 1e-12 {
		t.Fatalf("accuracy = %g, want 5/6", got)
	}
	// Outliers (-1) form their own group.
	pred = []int{-1, -1, 0, 0}
	classes = []int{1, 1, 0, 0}
	if got := Accuracy(pred, classes); got != 1 {
		t.Fatalf("outlier-group accuracy = %g", got)
	}
	if Accuracy(nil, nil) != 0 || Accuracy([]int{0}, []int{0, 1}) != 0 {
		t.Fatal("degenerate accuracy must be 0")
	}
}

func TestNumClustersDelta(t *testing.T) {
	a := mustSC(t, 5, 2, []*Cluster{{Objects: []int{0}, Attrs: []int{0}}})
	b := mustSC(t, 5, 2, nil)
	if NumClustersDelta(a, b) != 1 || NumClustersDelta(b, a) != 1 {
		t.Fatal("delta wrong")
	}
}
