package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func assignmentCost(cost [][]float64, assign []int) float64 {
	s := 0.0
	for i, j := range assign {
		if j >= 0 {
			s += cost[i][j]
		}
	}
	return s
}

// bruteForceMin finds the optimal assignment by permutation enumeration
// (for small square matrices).
func bruteForceMin(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var recurse func(k int)
	recurse = func(k int) {
		if k == n {
			s := 0.0
			for i, j := range perm {
				s += cost[i][j]
			}
			if s < best {
				best = s
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			recurse(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	recurse(0)
	return best
}

func TestHungarianKnownCase(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign := Hungarian(cost)
	if got := assignmentCost(cost, assign); got != 5 { // 1 + 2 + 2
		t.Fatalf("cost = %g, want 5 (assignment %v)", got, assign)
	}
}

func TestHungarianMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = float64(rng.Intn(50))
			}
		}
		assign := Hungarian(cost)
		// Validity: a permutation.
		seen := make(map[int]bool)
		for _, j := range assign {
			if j < 0 || j >= n || seen[j] {
				return false
			}
			seen[j] = true
		}
		return math.Abs(assignmentCost(cost, assign)-bruteForceMin(cost)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHungarianRectangular(t *testing.T) {
	// More rows than columns: one row stays unmatched.
	cost := [][]float64{
		{1, 9},
		{9, 1},
		{5, 5},
	}
	assign := Hungarian(cost)
	matched := 0
	for _, j := range assign {
		if j >= 0 {
			matched++
		}
	}
	if matched != 2 {
		t.Fatalf("matched %d of 2 columns (assign %v)", matched, assign)
	}
	if got := assignmentCost(cost, assign); got != 2 {
		t.Fatalf("cost = %g, want 2", got)
	}
	// More columns than rows.
	cost2 := [][]float64{{3, 1, 2}}
	assign2 := Hungarian(cost2)
	if assign2[0] != 1 {
		t.Fatalf("assign = %v, want column 1", assign2)
	}
}

func TestHungarianEmpty(t *testing.T) {
	if got := Hungarian(nil); got != nil {
		t.Fatal("empty input must yield nil")
	}
}

func TestMaxWeightAssignment(t *testing.T) {
	weight := [][]float64{
		{10, 1},
		{1, 10},
	}
	assign := MaxWeightAssignment(weight)
	if assign[0] != 0 || assign[1] != 1 {
		t.Fatalf("assign = %v", assign)
	}
	total := 0.0
	for i, j := range assign {
		total += weight[i][j]
	}
	if total != 20 {
		t.Fatalf("weight = %g", total)
	}
}
