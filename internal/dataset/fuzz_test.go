package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV parser never panics and that anything it
// accepts round-trips through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("1,2,3\n4,5,6\n")
	f.Add("0.5\n")
	f.Add("1e10,-2.5e-3\nNaN,4\n")
	f.Add(",,\n")
	f.Add("1,2\n3\n")
	f.Fuzz(func(t *testing.T, in string) {
		d, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		// Accepted input must satisfy the structural invariants.
		if err := d.Validate(); err != nil {
			t.Fatalf("accepted invalid dataset: %v", err)
		}
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatalf("write accepted dataset: %v", err)
		}
		d2, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("reparse written dataset: %v", err)
		}
		if d2.N() != d.N() || d2.Dim != d.Dim {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d", d2.N(), d2.Dim, d.N(), d.Dim)
		}
	})
}

// FuzzReadBinary checks the binary parser never panics on corrupt input.
func FuzzReadBinary(f *testing.F) {
	d := FromRows(2, []float64{0.1, 0.2, 0.3, 0.4})
	var buf bytes.Buffer
	if err := d.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, 24))
	f.Fuzz(func(t *testing.T, in []byte) {
		got, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted invalid dataset: %v", err)
		}
	})
}

// FuzzReadGroundTruth checks the sidecar parser never panics and that
// accepted truths re-serialize.
func FuzzReadGroundTruth(f *testing.F) {
	f.Add("# n=3 dim=2 clusters=1\ncluster 0 attrs 0:0.1:0.5 members 0 2\nnoise 1\n")
	f.Add("# n=0 dim=0 clusters=0\nnoise\n")
	f.Add("cluster 0 attrs")
	f.Fuzz(func(t *testing.T, in string) {
		gt, err := ReadGroundTruth(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteGroundTruth(&buf, gt); err != nil {
			t.Fatalf("write accepted truth: %v", err)
		}
	})
}
