package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateShapeAndTruth(t *testing.T) {
	cfg := GenConfig{N: 2000, Dim: 20, Clusters: 4, NoiseFraction: 0.1, Seed: 3, Overlap: true}
	data, truth, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if data.N() != 2000 || data.Dim != 20 {
		t.Fatalf("shape %dx%d", data.N(), data.Dim)
	}
	if err := data.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(truth.Clusters) != 4 {
		t.Fatalf("clusters = %d", len(truth.Clusters))
	}
	// Membership partition: every index appears exactly once.
	seen := make([]bool, 2000)
	count := 0
	for _, tc := range truth.Clusters {
		for _, m := range tc.Members {
			if seen[m] {
				t.Fatalf("point %d in two clusters", m)
			}
			seen[m] = true
			count++
		}
	}
	for _, m := range truth.Noise {
		if seen[m] {
			t.Fatalf("noise point %d also in cluster", m)
		}
		seen[m] = true
		count++
	}
	if count != 2000 {
		t.Fatalf("membership covers %d of 2000", count)
	}
	if len(truth.Noise) != 200 {
		t.Fatalf("noise = %d, want 200", len(truth.Noise))
	}
}

func TestGenerateMembersInsideIntervals(t *testing.T) {
	data, truth, err := Generate(GenConfig{N: 1000, Dim: 10, Clusters: 3, Seed: 5, Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	for ci, tc := range truth.Clusters {
		if len(tc.Attrs) < 2 || len(tc.Attrs) > 10 {
			t.Errorf("cluster %d has %d attrs", ci, len(tc.Attrs))
		}
		for j, a := range tc.Attrs {
			w := tc.Hi[j] - tc.Lo[j]
			if w < 0.1-1e-9 || w > 0.3+1e-9 {
				t.Errorf("cluster %d attr %d width %g outside [0.1,0.3]", ci, a, w)
			}
			for _, m := range tc.Members {
				v := data.Row(m)[a]
				if v < tc.Lo[j]-1e-9 || v > tc.Hi[j]+1e-9 {
					t.Fatalf("cluster %d member %d attr %d = %g outside [%g,%g]", ci, m, a, v, tc.Lo[j], tc.Hi[j])
				}
			}
		}
	}
}

func TestGenerateOverlapForced(t *testing.T) {
	_, truth, err := Generate(GenConfig{N: 500, Dim: 30, Clusters: 2, Seed: 11, Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	a, b := truth.Clusters[0], truth.Clusters[1]
	// Find a shared attribute with intersecting intervals.
	found := false
	for i, aa := range a.Attrs {
		for j, ba := range b.Attrs {
			if aa == ba && a.Lo[i] <= b.Hi[j] && b.Lo[j] <= a.Hi[i] {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no overlapping relevant attribute between clusters 0 and 1")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{N: 300, Dim: 8, Clusters: 2, NoiseFraction: 0.05, Seed: 42, Overlap: true}
	d1, t1, _ := Generate(cfg)
	d2, t2, _ := Generate(cfg)
	for i := range d1.Rows {
		if d1.Rows[i] != d2.Rows[i] {
			t.Fatal("generation not deterministic")
		}
	}
	if len(t1.Clusters[0].Members) != len(t2.Clusters[0].Members) {
		t.Fatal("truth not deterministic")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GenConfig{
		{N: 0, Dim: 5, Clusters: 1},
		{N: 100, Dim: 0, Clusters: 1},
		{N: 100, Dim: 5, Clusters: 0},
		{N: 100, Dim: 5, Clusters: 1, NoiseFraction: 1.0},
		{N: 100, Dim: 5, Clusters: 1, NoiseFraction: -0.1},
		{N: 5, Dim: 5, Clusters: 10},
	}
	for i, cfg := range bad {
		if _, _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestGenerateValuesInUnitCube(t *testing.T) {
	f := func(seed int64) bool {
		data, _, err := Generate(GenConfig{
			N: 200, Dim: 6, Clusters: 2, NoiseFraction: 0.1, Seed: seed, Overlap: true,
		})
		if err != nil {
			return false
		}
		for _, v := range data.Rows {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGroundTruthLabels(t *testing.T) {
	_, truth, err := Generate(GenConfig{N: 100, Dim: 5, Clusters: 2, NoiseFraction: 0.2, Seed: 9, Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	labels := truth.Labels()
	if len(labels) != 100 {
		t.Fatalf("labels = %d", len(labels))
	}
	noise := 0
	for _, l := range labels {
		if l == -1 {
			noise++
		} else if l < 0 || l >= 2 {
			t.Fatalf("label %d out of range", l)
		}
	}
	if noise != len(truth.Noise) {
		t.Fatalf("noise labels %d != %d", noise, len(truth.Noise))
	}
	set := truth.AttrSet(0)
	for _, a := range truth.Clusters[0].Attrs {
		if !set[a] {
			t.Fatal("AttrSet missing attribute")
		}
	}
}

func TestGenerateMicroarray(t *testing.T) {
	data, labels, err := GenerateMicroarray(MicroarrayConfig{
		Samples: 62, Dim: 2000, Informative: 40, PositiveFraction: 40.0 / 62, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if data.N() != 62 || data.Dim != 2000 {
		t.Fatalf("shape %dx%d", data.N(), data.Dim)
	}
	pos := 0
	for _, l := range labels {
		if l == 1 {
			pos++
		} else if l != 0 {
			t.Fatalf("label %d", l)
		}
	}
	if pos != 40 {
		t.Fatalf("positives = %d, want 40", pos)
	}
	if err := data.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateMicroarrayValidation(t *testing.T) {
	bad := []MicroarrayConfig{
		{Samples: 0, Dim: 10, Informative: 2, PositiveFraction: 0.5},
		{Samples: 10, Dim: 10, Informative: 0, PositiveFraction: 0.5},
		{Samples: 10, Dim: 10, Informative: 20, PositiveFraction: 0.5},
		{Samples: 10, Dim: 10, Informative: 2, PositiveFraction: 0},
		{Samples: 10, Dim: 10, Informative: 2, PositiveFraction: 1},
	}
	for i, cfg := range bad {
		if _, _, err := GenerateMicroarray(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}
