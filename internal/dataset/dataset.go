// Package dataset provides the vector data-set abstraction used across the
// P3C+ pipeline: row-major in-memory storage, min-max normalization to
// [0,1], partitioning into MapReduce splits, CSV and binary codecs, and the
// synthetic workload generators of the paper's evaluation (§7.1).
package dataset

import (
	"fmt"
	"math"

	"p3cmr/internal/mr"
)

// Dataset is an n×d row-major collection of points. The zero value is an
// empty data set.
type Dataset struct {
	Dim  int
	Rows []float64 // len == N()*Dim
}

// New returns an empty data set of the given dimensionality.
func New(dim int) *Dataset {
	if dim <= 0 {
		panic("dataset: dimensionality must be positive")
	}
	return &Dataset{Dim: dim}
}

// FromRows wraps existing row-major data (not copied).
func FromRows(dim int, rows []float64) *Dataset {
	if dim <= 0 || len(rows)%dim != 0 {
		panic("dataset: rows length not a multiple of dim")
	}
	return &Dataset{Dim: dim, Rows: rows}
}

// N returns the number of points.
func (d *Dataset) N() int {
	if d.Dim == 0 {
		return 0
	}
	return len(d.Rows) / d.Dim
}

// Row returns point i as a view (not a copy).
func (d *Dataset) Row(i int) []float64 { return d.Rows[i*d.Dim : (i+1)*d.Dim] }

// Append adds a point; the slice is copied.
func (d *Dataset) Append(row []float64) {
	if len(row) != d.Dim {
		panic("dataset: row dimensionality mismatch")
	}
	d.Rows = append(d.Rows, row...)
}

// Clone deep-copies the data set.
func (d *Dataset) Clone() *Dataset {
	return &Dataset{Dim: d.Dim, Rows: append([]float64(nil), d.Rows...)}
}

// Subset returns a new data set containing the rows at the given indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{Dim: d.Dim, Rows: make([]float64, 0, len(idx)*d.Dim)}
	for _, i := range idx {
		out.Rows = append(out.Rows, d.Row(i)...)
	}
	return out
}

// Splits partitions the data set into numSplits MapReduce splits of nearly
// equal size (the paper relies on this natural load balance, §5). Fewer,
// larger splits are produced when n < numSplits.
func (d *Dataset) Splits(numSplits int) []*mr.Split {
	n := d.N()
	if numSplits <= 0 {
		numSplits = 1
	}
	if numSplits > n {
		numSplits = n
	}
	if n == 0 {
		return nil
	}
	splits := make([]*mr.Split, 0, numSplits)
	base := n / numSplits
	rem := n % numSplits
	off := 0
	for s := 0; s < numSplits; s++ {
		sz := base
		if s < rem {
			sz++
		}
		splits = append(splits, &mr.Split{
			ID:     s,
			Offset: off,
			Dim:    d.Dim,
			Rows:   d.Rows[off*d.Dim : (off+sz)*d.Dim],
		})
		off += sz
	}
	return splits
}

// Bounds returns per-attribute minima and maxima. For an empty data set both
// slices are zero-filled.
func (d *Dataset) Bounds() (mins, maxs []float64) {
	mins = make([]float64, d.Dim)
	maxs = make([]float64, d.Dim)
	n := d.N()
	if n == 0 {
		return mins, maxs
	}
	copy(mins, d.Row(0))
	copy(maxs, d.Row(0))
	for i := 1; i < n; i++ {
		row := d.Row(i)
		for j, v := range row {
			if v < mins[j] {
				mins[j] = v
			}
			if v > maxs[j] {
				maxs[j] = v
			}
		}
	}
	return mins, maxs
}

// Normalize rescales every attribute to [0,1] in place (the paper assumes a
// normalized data space throughout). Constant attributes map to 0.
func (d *Dataset) Normalize() {
	mins, maxs := d.Bounds()
	n := d.N()
	for j := 0; j < d.Dim; j++ {
		span := maxs[j] - mins[j]
		if span <= 0 {
			for i := 0; i < n; i++ {
				d.Rows[i*d.Dim+j] = 0
			}
			continue
		}
		inv := 1 / span
		for i := 0; i < n; i++ {
			d.Rows[i*d.Dim+j] = (d.Rows[i*d.Dim+j] - mins[j]) * inv
		}
	}
}

// Clamp01 clips every coordinate into [0,1]; generator noise at cluster
// borders can leave values epsilon outside the unit cube.
func (d *Dataset) Clamp01() {
	for i, v := range d.Rows {
		if v < 0 {
			d.Rows[i] = 0
		} else if v > 1 {
			d.Rows[i] = 1
		}
	}
}

// Validate checks structural invariants and value sanity (no NaN/Inf) and
// returns a descriptive error on the first violation.
func (d *Dataset) Validate() error {
	if d.Dim <= 0 {
		return fmt.Errorf("dataset: non-positive dimensionality %d", d.Dim)
	}
	if len(d.Rows)%d.Dim != 0 {
		return fmt.Errorf("dataset: %d values not divisible by dim %d", len(d.Rows), d.Dim)
	}
	for i, v := range d.Rows {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("dataset: non-finite value at flat index %d (row %d, col %d)", i, i/d.Dim, i%d.Dim)
		}
	}
	return nil
}
