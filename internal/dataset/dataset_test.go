package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDatasetBasics(t *testing.T) {
	d := New(3)
	if d.N() != 0 {
		t.Fatal("fresh dataset not empty")
	}
	d.Append([]float64{1, 2, 3})
	d.Append([]float64{4, 5, 6})
	if d.N() != 2 {
		t.Fatalf("n = %d", d.N())
	}
	if r := d.Row(1); r[0] != 4 || r[2] != 6 {
		t.Fatalf("row = %v", r)
	}
}

func TestAppendDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).Append([]float64{1})
}

func TestCloneIndependence(t *testing.T) {
	d := FromRows(2, []float64{1, 2, 3, 4})
	c := d.Clone()
	c.Rows[0] = 99
	if d.Rows[0] != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestSubset(t *testing.T) {
	d := FromRows(2, []float64{0, 0, 1, 1, 2, 2, 3, 3})
	s := d.Subset([]int{3, 1})
	if s.N() != 2 || s.Row(0)[0] != 3 || s.Row(1)[0] != 1 {
		t.Fatalf("subset wrong: %v", s.Rows)
	}
}

func TestSplitsPartitionExactly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		dim := 1 + rng.Intn(5)
		numSplits := 1 + rng.Intn(20)
		d := New(dim)
		d.Rows = make([]float64, n*dim)
		for i := range d.Rows {
			d.Rows[i] = rng.Float64()
		}
		splits := d.Splits(numSplits)
		total := 0
		expectedOffset := 0
		for _, s := range splits {
			if s.Offset != expectedOffset {
				return false
			}
			total += s.NumRows()
			expectedOffset += s.NumRows()
		}
		if total != n {
			return false
		}
		// Sizes differ by at most one (the paper's natural load balance).
		minSz, maxSz := n, 0
		for _, s := range splits {
			if s.NumRows() < minSz {
				minSz = s.NumRows()
			}
			if s.NumRows() > maxSz {
				maxSz = s.NumRows()
			}
		}
		return maxSz-minSz <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSplitsEdgeCases(t *testing.T) {
	d := FromRows(1, []float64{1, 2, 3})
	if got := len(d.Splits(10)); got != 3 {
		t.Errorf("more splits than rows: %d", got)
	}
	if got := len(d.Splits(0)); got != 1 {
		t.Errorf("zero splits: %d", got)
	}
	empty := New(2)
	if got := len(empty.Splits(4)); got != 0 {
		t.Errorf("empty dataset splits: %d", got)
	}
}

func TestNormalize(t *testing.T) {
	d := FromRows(2, []float64{
		10, 5,
		20, 5,
		30, 5,
	})
	d.Normalize()
	if d.Row(0)[0] != 0 || d.Row(2)[0] != 1 || d.Row(1)[0] != 0.5 {
		t.Fatalf("normalize col0 = %v", d.Rows)
	}
	// Constant attribute maps to 0.
	for i := 0; i < 3; i++ {
		if d.Row(i)[1] != 0 {
			t.Fatal("constant attribute not zeroed")
		}
	}
}

func TestClamp01(t *testing.T) {
	d := FromRows(1, []float64{-0.1, 0.5, 1.2})
	d.Clamp01()
	if d.Rows[0] != 0 || d.Rows[2] != 1 || d.Rows[1] != 0.5 {
		t.Fatalf("clamp = %v", d.Rows)
	}
}

func TestValidate(t *testing.T) {
	d := FromRows(2, []float64{1, 2})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	d.Rows[0] = math.NaN()
	if err := d.Validate(); err == nil {
		t.Fatal("NaN accepted")
	}
	d.Rows[0] = math.Inf(1)
	if err := d.Validate(); err == nil {
		t.Fatal("Inf accepted")
	}
	bad := &Dataset{Dim: 2, Rows: []float64{1, 2, 3}}
	if err := bad.Validate(); err == nil {
		t.Fatal("ragged rows accepted")
	}
}

func TestBounds(t *testing.T) {
	d := FromRows(2, []float64{1, 9, 5, 3, 2, 6})
	mins, maxs := d.Bounds()
	if mins[0] != 1 || maxs[0] != 5 || mins[1] != 3 || maxs[1] != 9 {
		t.Fatalf("bounds = %v %v", mins, maxs)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := New(7)
	for i := 0; i < 123; i++ {
		row := make([]float64, 7)
		for j := range row {
			row[j] = rng.Float64()
		}
		d.Append(row)
	}
	var buf bytes.Buffer
	if err := d.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != 7 || got.N() != 123 {
		t.Fatalf("shape %dx%d", got.N(), got.Dim)
	}
	for i := range d.Rows {
		if got.Rows[i] != d.Rows[i] {
			t.Fatalf("value mismatch at %d", i)
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := FromRows(3, []float64{1, 2.5, 3, -4, 5e-3, 6})
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Rows {
		if got.Rows[i] != d.Rows[i] {
			t.Fatalf("csv mismatch at %d: %g vs %g", i, got.Rows[i], d.Rows[i])
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Fatal("ragged CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,x\n")); err == nil {
		t.Fatal("non-numeric CSV accepted")
	}
	d, err := ReadCSV(strings.NewReader("1,2\n\n3,4\n"))
	if err != nil || d.N() != 2 {
		t.Fatal("blank lines must be skipped")
	}
}
