package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteGroundTruth serializes a ground truth in the sidecar text format the
// CLI tools exchange: a header line, one line per cluster listing relevant
// attributes (attr:lo:hi) and member indices, and a trailing noise line.
func WriteGroundTruth(w io.Writer, truth *GroundTruth) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# n=%d dim=%d clusters=%d\n", truth.N, truth.Dim, len(truth.Clusters))
	for ci, tc := range truth.Clusters {
		fmt.Fprintf(bw, "cluster %d attrs", ci)
		for j, a := range tc.Attrs {
			fmt.Fprintf(bw, " %d:%g:%g", a, tc.Lo[j], tc.Hi[j])
		}
		fmt.Fprint(bw, " members")
		for _, m := range tc.Members {
			fmt.Fprintf(bw, " %d", m)
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprint(bw, "noise")
	for _, m := range truth.Noise {
		fmt.Fprintf(bw, " %d", m)
	}
	fmt.Fprintln(bw)
	return bw.Flush()
}

// ReadGroundTruth parses the sidecar format written by WriteGroundTruth.
func ReadGroundTruth(r io.Reader) (*GroundTruth, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	truth := &GroundTruth{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "#"):
			if _, err := fmt.Sscanf(line, "# n=%d dim=%d", &truth.N, &truth.Dim); err != nil {
				return nil, fmt.Errorf("dataset: truth line %d: bad header: %w", lineNo, err)
			}
		case strings.HasPrefix(line, "cluster "):
			tc, err := parseTruthCluster(line)
			if err != nil {
				return nil, fmt.Errorf("dataset: truth line %d: %w", lineNo, err)
			}
			truth.Clusters = append(truth.Clusters, tc)
		case strings.HasPrefix(line, "noise"):
			for _, tok := range strings.Fields(line)[1:] {
				m, err := strconv.Atoi(tok)
				if err != nil {
					return nil, fmt.Errorf("dataset: truth line %d: bad noise index %q", lineNo, tok)
				}
				truth.Noise = append(truth.Noise, m)
			}
		default:
			return nil, fmt.Errorf("dataset: truth line %d: unrecognized %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: truth scan: %w", err)
	}
	if truth.N == 0 && truth.Dim == 0 {
		return nil, fmt.Errorf("dataset: truth file missing header")
	}
	return truth, nil
}

func parseTruthCluster(line string) (*TrueCluster, error) {
	fields := strings.Fields(line)
	tc := &TrueCluster{}
	mode := ""
	for _, tok := range fields[2:] {
		switch tok {
		case "attrs", "members":
			mode = tok
			continue
		}
		switch mode {
		case "attrs":
			parts := strings.Split(tok, ":")
			if len(parts) != 3 {
				return nil, fmt.Errorf("bad attr token %q", tok)
			}
			a, err := strconv.Atoi(parts[0])
			if err != nil {
				return nil, fmt.Errorf("bad attr index in %q", tok)
			}
			lo, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				return nil, fmt.Errorf("bad lo in %q", tok)
			}
			hi, err := strconv.ParseFloat(parts[2], 64)
			if err != nil {
				return nil, fmt.Errorf("bad hi in %q", tok)
			}
			tc.Attrs = append(tc.Attrs, a)
			tc.Lo = append(tc.Lo, lo)
			tc.Hi = append(tc.Hi, hi)
		case "members":
			m, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("bad member %q", tok)
			}
			tc.Members = append(tc.Members, m)
		default:
			return nil, fmt.Errorf("token %q before attrs/members marker", tok)
		}
	}
	return tc, nil
}
