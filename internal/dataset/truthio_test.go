package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestGroundTruthRoundTrip(t *testing.T) {
	_, truth, err := Generate(GenConfig{
		N: 500, Dim: 10, Clusters: 3, NoiseFraction: 0.1, Seed: 4, Overlap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGroundTruth(&buf, truth); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGroundTruth(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != truth.N || got.Dim != truth.Dim {
		t.Fatalf("header %d/%d vs %d/%d", got.N, got.Dim, truth.N, truth.Dim)
	}
	if len(got.Clusters) != len(truth.Clusters) {
		t.Fatalf("clusters %d vs %d", len(got.Clusters), len(truth.Clusters))
	}
	for c := range truth.Clusters {
		want, have := truth.Clusters[c], got.Clusters[c]
		if len(want.Members) != len(have.Members) || len(want.Attrs) != len(have.Attrs) {
			t.Fatalf("cluster %d shape mismatch", c)
		}
		for i := range want.Members {
			if want.Members[i] != have.Members[i] {
				t.Fatalf("cluster %d member %d mismatch", c, i)
			}
		}
		for i := range want.Attrs {
			if want.Attrs[i] != have.Attrs[i] || want.Lo[i] != have.Lo[i] || want.Hi[i] != have.Hi[i] {
				t.Fatalf("cluster %d attr %d mismatch", c, i)
			}
		}
	}
	if len(got.Noise) != len(truth.Noise) {
		t.Fatalf("noise %d vs %d", len(got.Noise), len(truth.Noise))
	}
}

func TestReadGroundTruthErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"no header", "cluster 0 attrs 1:0:0.5 members 0\n"},
		{"bad attr", "# n=2 dim=2 clusters=1\ncluster 0 attrs x:0:1 members 0\n"},
		{"bad attr parts", "# n=2 dim=2 clusters=1\ncluster 0 attrs 1:0 members 0\n"},
		{"bad member", "# n=2 dim=2 clusters=1\ncluster 0 attrs 1:0:1 members abc\n"},
		{"bad noise", "# n=2 dim=2 clusters=0\nnoise z\n"},
		{"stray token", "# n=2 dim=2 clusters=1\ncluster 0 17\n"},
		{"garbage line", "# n=2 dim=2 clusters=0\nwhatever\n"},
	}
	for _, c := range cases {
		if _, err := ReadGroundTruth(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestReadGroundTruthSkipsBlankLines(t *testing.T) {
	in := "# n=3 dim=2 clusters=1\n\ncluster 0 attrs 0:0.1:0.5 members 0 2\n\nnoise 1\n"
	got, err := ReadGroundTruth(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Clusters) != 1 || len(got.Clusters[0].Members) != 2 || len(got.Noise) != 1 {
		t.Fatalf("parsed %+v", got)
	}
}
