package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// GenConfig parameterizes the synthetic projected-cluster generator of the
// paper's evaluation (§7.1): hyperrectangular clusters, Gaussian within each
// relevant interval, uniform on irrelevant attributes, uniform background
// noise, and at least one pair of clusters overlapping on a relevant
// attribute.
type GenConfig struct {
	// N is the total number of points including noise.
	N int
	// Dim is the data dimensionality (paper: 50, billion-run: 100).
	Dim int
	// Clusters is the number of hidden clusters (paper: 3, 5, 7).
	Clusters int
	// NoiseFraction in [0,1) is the share of uniform noise points
	// (paper: 0, 0.05, 0.10, 0.20).
	NoiseFraction float64
	// MinClusterDims/MaxClusterDims bound cluster subspace sizes
	// (paper: 2..10). Zero values default to 2 and 10.
	MinClusterDims, MaxClusterDims int
	// MinWidth/MaxWidth bound relevant-interval widths (paper: 0.1..0.3).
	// Zero values default to 0.1 and 0.3.
	MinWidth, MaxWidth float64
	// Overlap forces at least two clusters to overlap on a shared relevant
	// attribute, as every generated data set in the paper does.
	Overlap bool
	// Seed makes generation deterministic.
	Seed int64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.MinClusterDims <= 0 {
		c.MinClusterDims = 2
	}
	if c.MaxClusterDims <= 0 {
		c.MaxClusterDims = 10
	}
	if c.MaxClusterDims > c.Dim {
		c.MaxClusterDims = c.Dim
	}
	if c.MinClusterDims > c.MaxClusterDims {
		c.MinClusterDims = c.MaxClusterDims
	}
	if c.MinWidth <= 0 {
		c.MinWidth = 0.1
	}
	if c.MaxWidth <= 0 {
		c.MaxWidth = 0.3
	}
	return c
}

// Validate reports configuration errors.
func (c GenConfig) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("dataset: GenConfig.N must be positive, got %d", c.N)
	}
	if c.Dim <= 0 {
		return fmt.Errorf("dataset: GenConfig.Dim must be positive, got %d", c.Dim)
	}
	if c.Clusters <= 0 {
		return fmt.Errorf("dataset: GenConfig.Clusters must be positive, got %d", c.Clusters)
	}
	if c.NoiseFraction < 0 || c.NoiseFraction >= 1 {
		return fmt.Errorf("dataset: GenConfig.NoiseFraction must be in [0,1), got %g", c.NoiseFraction)
	}
	clusterPoints := int(float64(c.N) * (1 - c.NoiseFraction))
	if clusterPoints < c.Clusters {
		return fmt.Errorf("dataset: %d cluster points cannot populate %d clusters", clusterPoints, c.Clusters)
	}
	return nil
}

// Generate builds a synthetic data set and its ground truth.
func Generate(cfg GenConfig) (*Dataset, *GroundTruth, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	numNoise := int(math.Round(float64(cfg.N) * cfg.NoiseFraction))
	numClusterPts := cfg.N - numNoise

	// Draw cluster shapes.
	type shape struct {
		attrs  []int
		lo, hi []float64
		size   int
	}
	shapes := make([]*shape, cfg.Clusters)
	for c := range shapes {
		nd := cfg.MinClusterDims
		if cfg.MaxClusterDims > cfg.MinClusterDims {
			nd += rng.Intn(cfg.MaxClusterDims - cfg.MinClusterDims + 1)
		}
		attrs := rng.Perm(cfg.Dim)[:nd]
		sort.Ints(attrs)
		lo := make([]float64, nd)
		hi := make([]float64, nd)
		for j := range attrs {
			w := cfg.MinWidth + rng.Float64()*(cfg.MaxWidth-cfg.MinWidth)
			start := rng.Float64() * (1 - w)
			lo[j], hi[j] = start, start+w
		}
		shapes[c] = &shape{attrs: attrs, lo: lo, hi: hi}
	}

	// Force an overlap between clusters 0 and 1 on a shared attribute, as
	// every paper data set has at least two overlapping clusters.
	if cfg.Overlap && cfg.Clusters >= 2 {
		a, b := shapes[0], shapes[1]
		shared := a.attrs[0]
		// Ensure the attribute is relevant for b too, overwriting b's first.
		pos := -1
		for j, attr := range b.attrs {
			if attr == shared {
				pos = j
				break
			}
		}
		if pos == -1 {
			b.attrs[0] = shared
			sort.Ints(b.attrs)
			for j, attr := range b.attrs {
				if attr == shared {
					pos = j
					break
				}
			}
			// De-duplicate in the unlikely case shared already followed.
			b.attrs = dedupInts(b.attrs)
			for len(b.attrs) < len(b.lo) {
				b.lo = b.lo[:len(b.attrs)]
				b.hi = b.hi[:len(b.attrs)]
			}
		}
		// Slide b's interval on the shared attribute to intersect a's.
		w := b.hi[pos] - b.lo[pos]
		center := (a.lo[0] + a.hi[0]) / 2
		lo := center - w/2
		if lo < 0 {
			lo = 0
		}
		if lo+w > 1 {
			lo = 1 - w
		}
		b.lo[pos], b.hi[pos] = lo, lo+w
	}

	// Distribute points over clusters (near-even with jitter).
	remaining := numClusterPts
	for c := range shapes {
		left := cfg.Clusters - c
		base := remaining / left
		jitter := 0
		if left > 1 && base > 4 {
			jitter = rng.Intn(base/2+1) - base/4
		}
		sz := base + jitter
		if sz < 1 {
			sz = 1
		}
		if c == cfg.Clusters-1 {
			sz = remaining
		}
		if sz > remaining {
			sz = remaining
		}
		shapes[c].size = sz
		remaining -= sz
	}

	data := New(cfg.Dim)
	data.Rows = make([]float64, 0, cfg.N*cfg.Dim)
	truth := &GroundTruth{N: cfg.N, Dim: cfg.Dim}

	row := make([]float64, cfg.Dim)
	next := 0
	for _, sh := range shapes {
		tc := &TrueCluster{
			Attrs: append([]int(nil), sh.attrs...),
			Lo:    append([]float64(nil), sh.lo...),
			Hi:    append([]float64(nil), sh.hi...),
		}
		for p := 0; p < sh.size; p++ {
			for j := range row {
				row[j] = rng.Float64() // irrelevant attributes uniform
			}
			for j, attr := range sh.attrs {
				row[attr] = truncatedGaussianInInterval(rng, sh.lo[j], sh.hi[j])
			}
			data.Append(row)
			tc.Members = append(tc.Members, next)
			next++
		}
		truth.Clusters = append(truth.Clusters, tc)
	}
	for p := 0; p < numNoise; p++ {
		for j := range row {
			row[j] = rng.Float64()
		}
		data.Append(row)
		truth.Noise = append(truth.Noise, next)
		next++
	}

	// Shuffle rows so splits are not cluster-sorted, remapping the truth.
	perm := rng.Perm(cfg.N)
	shuffled := make([]float64, len(data.Rows))
	inv := make([]int, cfg.N)
	for oldIdx, newIdx := range perm {
		copy(shuffled[newIdx*cfg.Dim:(newIdx+1)*cfg.Dim], data.Row(oldIdx))
		inv[oldIdx] = newIdx
	}
	data.Rows = shuffled
	for _, tc := range truth.Clusters {
		for i, m := range tc.Members {
			tc.Members[i] = inv[m]
		}
	}
	for i, m := range truth.Noise {
		truth.Noise[i] = inv[m]
	}
	truth.SortMembers()
	return data, truth, nil
}

// truncatedGaussianInInterval draws from a Gaussian centred in [lo,hi] whose
// standard deviation is a quarter of the interval width, rejected into the
// interval — the paper distributes cluster points "following a Gaussian
// distribution" on each relevant interval.
func truncatedGaussianInInterval(rng *rand.Rand, lo, hi float64) float64 {
	mu := (lo + hi) / 2
	sigma := (hi - lo) / 4
	for i := 0; i < 64; i++ {
		v := mu + rng.NormFloat64()*sigma
		if v >= lo && v <= hi {
			return v
		}
	}
	return mu
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, v := range xs {
		if i == 0 || v != xs[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// MicroarrayConfig parameterizes the high-dimensional small-n generator used
// as the offline stand-in for the UCI colon-cancer data set (§7.6): two
// classes, very many attributes, only a few discriminative ones.
type MicroarrayConfig struct {
	// Samples is the number of rows (colon cancer: 62).
	Samples int
	// Dim is the number of attributes (colon cancer: 2000).
	Dim int
	// Informative is the number of class-discriminative attributes.
	Informative int
	// PositiveFraction is the share of class-1 rows (colon cancer: 40/62).
	PositiveFraction float64
	// Seed makes generation deterministic.
	Seed int64
}

// GenerateMicroarray builds the two-class stand-in data set and returns it
// with per-row class labels (0/1).
func GenerateMicroarray(cfg MicroarrayConfig) (*Dataset, []int, error) {
	if cfg.Samples <= 0 || cfg.Dim <= 0 {
		return nil, nil, fmt.Errorf("dataset: microarray config requires positive samples and dim")
	}
	if cfg.Informative <= 0 || cfg.Informative > cfg.Dim {
		return nil, nil, fmt.Errorf("dataset: informative attributes %d out of range", cfg.Informative)
	}
	if cfg.PositiveFraction <= 0 || cfg.PositiveFraction >= 1 {
		return nil, nil, fmt.Errorf("dataset: positive fraction must be in (0,1)")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	data := New(cfg.Dim)
	labels := make([]int, cfg.Samples)
	info := rng.Perm(cfg.Dim)[:cfg.Informative]
	nPos := int(math.Round(float64(cfg.Samples) * cfg.PositiveFraction))
	row := make([]float64, cfg.Dim)
	for i := 0; i < cfg.Samples; i++ {
		cls := 0
		if i < nPos {
			cls = 1
		}
		labels[i] = cls
		for j := range row {
			row[j] = rng.Float64()
		}
		for _, a := range info {
			// Class 1 concentrates low, class 0 concentrates high. The
			// intervals are tight: a strongly discriminative gene must stay
			// detectable in the coarse (⌈n^(1/3)⌉-bin) histograms the
			// pipeline builds over only 62 samples.
			if cls == 1 {
				row[a] = truncatedGaussianInInterval(rng, 0.06, 0.22)
			} else {
				row[a] = truncatedGaussianInInterval(rng, 0.54, 0.72)
			}
		}
		data.Append(row)
	}
	// Shuffle rows so classes interleave.
	perm := rng.Perm(cfg.Samples)
	shuffled := make([]float64, len(data.Rows))
	newLabels := make([]int, cfg.Samples)
	for oldIdx, newIdx := range perm {
		copy(shuffled[newIdx*cfg.Dim:(newIdx+1)*cfg.Dim], data.Row(oldIdx))
		newLabels[newIdx] = labels[oldIdx]
	}
	data.Rows = shuffled
	return data, newLabels, nil
}
