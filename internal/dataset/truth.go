package dataset

import "sort"

// TrueCluster is one hidden projected cluster of a generated data set: the
// member rows, the relevant attributes, and the generating interval on each
// relevant attribute.
type TrueCluster struct {
	// Members are the global row indices belonging to the cluster.
	Members []int
	// Attrs are the relevant attribute indices, ascending.
	Attrs []int
	// Lo and Hi give the generating interval per entry of Attrs.
	Lo, Hi []float64
}

// GroundTruth describes the hidden structure of a generated data set.
type GroundTruth struct {
	Clusters []*TrueCluster
	// Noise are the global row indices of uniform background points.
	Noise []int
	// N and Dim mirror the data set shape.
	N, Dim int
}

// Labels returns a per-row cluster label: 0..k-1 for cluster members, -1 for
// noise.
func (g *GroundTruth) Labels() []int {
	labels := make([]int, g.N)
	for i := range labels {
		labels[i] = -1
	}
	for c, cl := range g.Clusters {
		for _, i := range cl.Members {
			labels[i] = c
		}
	}
	return labels
}

// AttrSet returns cluster c's relevant attributes as a set.
func (g *GroundTruth) AttrSet(c int) map[int]bool {
	s := make(map[int]bool, len(g.Clusters[c].Attrs))
	for _, a := range g.Clusters[c].Attrs {
		s[a] = true
	}
	return s
}

// SortMembers normalizes all member lists to ascending order; generators
// call it once so downstream set operations can binary-search.
func (g *GroundTruth) SortMembers() {
	for _, cl := range g.Clusters {
		sort.Ints(cl.Members)
	}
	sort.Ints(g.Noise)
}
