package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// binaryMagic identifies the library's binary data-set files.
const binaryMagic = 0x50334344 // "P3CD"

// WriteBinary serializes the data set in a compact little-endian format:
// magic, dim, n, then n*dim float64 values.
func (d *Dataset) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := [3]uint64{binaryMagic, uint64(d.Dim), uint64(d.N())}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return fmt.Errorf("dataset: write header: %w", err)
		}
	}
	buf := make([]byte, 8)
	for _, v := range d.Rows {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("dataset: write values: %w", err)
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a data set written by WriteBinary.
func ReadBinary(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var hdr [3]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("dataset: read header: %w", err)
		}
	}
	if hdr[0] != binaryMagic {
		return nil, fmt.Errorf("dataset: bad magic %#x", hdr[0])
	}
	dim, n := int(hdr[1]), int(hdr[2])
	if dim <= 0 || n < 0 || (n > 0 && dim > (1<<40)/n) {
		return nil, fmt.Errorf("dataset: implausible header dim=%d n=%d", dim, n)
	}
	d := New(dim)
	d.Rows = make([]float64, n*dim)
	buf := make([]byte, 8)
	for i := range d.Rows {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("dataset: read values: %w", err)
		}
		d.Rows[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	return d, d.Validate()
}

// WriteCSV writes the data set as comma-separated rows without a header.
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	n := d.N()
	for i := 0; i < n; i++ {
		row := d.Row(i)
		for j, v := range row {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses comma-separated rows. All rows must share one width; blank
// lines are skipped.
func ReadCSV(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var d *Dataset
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if d == nil {
			d = New(len(fields))
		} else if len(fields) != d.Dim {
			return nil, fmt.Errorf("dataset: line %d has %d fields, want %d", lineNo, len(fields), d.Dim)
		}
		for _, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: %w", lineNo, err)
			}
			d.Rows = append(d.Rows, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: scan: %w", err)
	}
	if d == nil {
		return nil, fmt.Errorf("dataset: empty CSV input")
	}
	return d, d.Validate()
}
