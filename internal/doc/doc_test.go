package doc

import (
	"testing"

	"p3cmr/internal/dataset"
	"p3cmr/internal/eval"
)

func genData(t *testing.T, n, dim, k int, noise float64, seed int64) (*dataset.Dataset, *dataset.GroundTruth) {
	t.Helper()
	data, truth, err := dataset.Generate(dataset.GenConfig{
		N: n, Dim: dim, Clusters: k, NoiseFraction: noise, Seed: seed, Overlap: true,
		MinClusterDims: 3, MaxClusterDims: 5,
		MinWidth: 0.1, MaxWidth: 0.2, // DOC's fixed box width must cover the clusters
	})
	if err != nil {
		t.Fatal(err)
	}
	return data, truth
}

func TestParamsValidate(t *testing.T) {
	if (Params{K: 0}).Validate() == nil {
		t.Error("K=0 accepted")
	}
	if (Params{K: 2, Beta: 0.6}).Validate() == nil {
		t.Error("Beta ≥ 0.5 accepted")
	}
	if (Params{K: 2, Beta: 0.25}).Validate() != nil {
		t.Error("valid params rejected")
	}
}

func TestDefaults(t *testing.T) {
	p := Params{K: 1}.withDefaults(50)
	if p.W <= 0 || p.Alpha <= 0 || p.Beta <= 0 || p.DiscrimSize < 2 || p.Trials < 512 {
		t.Fatalf("bad defaults: %+v", p)
	}
}

func TestRunFindsPlantedClusters(t *testing.T) {
	data, truth := genData(t, 2000, 12, 2, 0.05, 3)
	res, err := Run(data, Params{K: 2, W: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("no clusters found")
	}
	var truthCs []*eval.Cluster
	for _, tc := range truth.Clusters {
		truthCs = append(truthCs, &eval.Cluster{Objects: tc.Members, Attrs: tc.Attrs})
	}
	tc, err := eval.NewSubspaceClustering(truth.N, truth.Dim, truthCs)
	if err != nil {
		t.Fatal(err)
	}
	found, err := eval.NewSubspaceClustering(data.N(), data.Dim, res.Clusters)
	if err != nil {
		t.Fatal(err)
	}
	f1 := eval.F1(found, tc)
	t.Logf("DOC clusters=%d F1=%.3f E4SC=%.3f", len(res.Clusters), f1, eval.E4SC(found, tc))
	if f1 < 0.5 {
		t.Errorf("F1 = %.3f too low", f1)
	}
}

func TestGreedyExtractionDisjoint(t *testing.T) {
	data, _ := genData(t, 1500, 10, 3, 0.1, 7)
	res, err := Run(data, Params{K: 3, W: 0.2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Greedy removal ⇒ clusters are disjoint.
	seen := map[int]bool{}
	for _, c := range res.Clusters {
		for _, o := range c.Objects {
			if seen[o] {
				t.Fatalf("point %d in two DOC clusters", o)
			}
			seen[o] = true
		}
	}
	// Signatures correspond one-to-one with clusters and stay in range.
	if len(res.Signatures) != len(res.Clusters) {
		t.Fatal("signature/cluster count mismatch")
	}
	for _, s := range res.Signatures {
		for _, iv := range s.Intervals {
			if iv.Lo > iv.Hi || iv.Lo < 0 || iv.Hi > 1 {
				t.Fatalf("bad interval %v", iv)
			}
		}
	}
}

func TestRunOnTinyData(t *testing.T) {
	data := dataset.FromRows(2, []float64{0.1, 0.1, 0.11, 0.12, 0.09, 0.1})
	res, err := Run(data, Params{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Too few points for the discriminating set: graceful empty result.
	if len(res.Clusters) > 1 {
		t.Fatalf("implausible clusters on 3 points: %d", len(res.Clusters))
	}
}

func TestQualityMonotone(t *testing.T) {
	// More points is better; more dims is better (β < 1).
	if quality(100, 3, 0.25) <= quality(50, 3, 0.25) {
		t.Error("quality not monotone in points")
	}
	if quality(100, 4, 0.25) <= quality(100, 3, 0.25) {
		t.Error("quality not monotone in dims")
	}
}
