// Package doc implements DOC (Procopiuc et al., SIGMOD 2002), the Monte
// Carlo projected clustering algorithm the reproduced paper discusses as
// related work (§2). A projected cluster is a set of points inside a
// hyper-box of width w in its relevant dimensions; DOC repeatedly samples a
// pivot point and a small discriminating set, derives the dimensions on
// which all samples agree within w, and keeps the box maximizing the
// quality µ(|C|, |D|) = |C|·(1/β)^|D|. Clusters are extracted greedily:
// find the best box, remove its points, repeat.
package doc

import (
	"fmt"
	"math"
	"math/rand"

	"p3cmr/internal/dataset"
	"p3cmr/internal/eval"
	"p3cmr/internal/signature"
)

// Params configures a DOC run.
type Params struct {
	// K is the number of clusters to extract greedily (required).
	K int
	// W is the box half-width: a dimension is relevant when all
	// discriminating samples lie within ±W of the pivot (default 0.15,
	// matched to the paper's generator interval widths 0.1–0.3).
	W float64
	// Alpha is the minimum cluster density fraction (default 0.1): boxes
	// holding fewer than Alpha·n points are rejected.
	Alpha float64
	// Beta trades cardinality against dimensionality in the quality
	// function (default 0.25; the original paper requires Beta < 0.5 for
	// the 2-approximation argument).
	Beta float64
	// DiscrimSize is the discriminating-set size r (default 3). The
	// original analysis suggests ⌈log(2d)/log(1/(2β))⌉ with (2/α)^r
	// iterations — astronomically many; a small r with more trials is the
	// practical trade every DOC implementation makes: a draw is only
	// useful when all r samples share the pivot's cluster, which happens
	// with probability ~(1/k)^r.
	DiscrimSize int
	// Trials is the number of Monte Carlo iterations per extracted cluster
	// (default 1024).
	Trials int
	// Seed drives the sampling.
	Seed int64
}

func (p Params) withDefaults(dim int) Params {
	if p.W <= 0 {
		p.W = 0.15
	}
	if p.Alpha <= 0 {
		p.Alpha = 0.1
	}
	if p.Beta <= 0 {
		p.Beta = 0.25
	}
	if p.DiscrimSize <= 0 {
		p.DiscrimSize = 3
	}
	if p.Trials <= 0 {
		p.Trials = 1024
	}
	return p
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.K < 1 {
		return fmt.Errorf("doc: K must be ≥ 1, got %d", p.K)
	}
	if p.Beta >= 0.5 {
		return fmt.Errorf("doc: Beta must be < 0.5, got %g", p.Beta)
	}
	return nil
}

// Result is a DOC clustering.
type Result struct {
	// Signatures holds the found boxes (intervals on the relevant
	// dimensions).
	Signatures []signature.Signature
	// Labels assigns each point its cluster or -1.
	Labels []int
	// Clusters is the evaluation view.
	Clusters []*eval.Cluster
}

// Run extracts up to K projected clusters greedily.
func Run(data *dataset.Dataset, params Params) (*Result, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	params = params.withDefaults(data.Dim)
	n := data.N()
	rng := rand.New(rand.NewSource(params.Seed))

	res := &Result{Labels: make([]int, n)}
	for i := range res.Labels {
		res.Labels[i] = -1
	}
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}

	for c := 0; c < params.K && len(remaining) > 0; c++ {
		members, dims, ok := bestBox(data, remaining, params, rng)
		if !ok {
			break
		}
		// Tighten the box to the members' actual extents.
		ivs := make([]signature.Interval, 0, len(dims))
		for _, j := range dims {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, p := range members {
				v := data.Row(p)[j]
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			ivs = append(ivs, signature.Interval{Attr: j, Lo: lo, Hi: hi})
		}
		res.Signatures = append(res.Signatures, signature.New(ivs...))
		cluster := &eval.Cluster{Attrs: dims}
		for _, p := range members {
			res.Labels[p] = c
			cluster.Objects = append(cluster.Objects, p)
		}
		res.Clusters = append(res.Clusters, cluster)

		// Remove the found points and recurse greedily.
		inCluster := make(map[int]bool, len(members))
		for _, p := range members {
			inCluster[p] = true
		}
		next := remaining[:0]
		for _, p := range remaining {
			if !inCluster[p] {
				next = append(next, p)
			}
		}
		remaining = next
	}
	return res, nil
}

// bestBox runs the Monte Carlo search over the remaining points.
func bestBox(data *dataset.Dataset, remaining []int, params Params, rng *rand.Rand) (members, dims []int, ok bool) {
	if len(remaining) < params.DiscrimSize+1 {
		return nil, nil, false
	}
	minPoints := int(params.Alpha * float64(data.N()))
	if minPoints < 2 {
		minPoints = 2
	}
	bestQuality := -1.0
	for trial := 0; trial < params.Trials; trial++ {
		pivot := data.Row(remaining[rng.Intn(len(remaining))])
		var trialDims []int
		// Draw one discriminating set and use it for every dimension, as
		// the original algorithm does.
		discrim := make([]int, params.DiscrimSize)
		for s := range discrim {
			discrim[s] = remaining[rng.Intn(len(remaining))]
		}
		for j := 0; j < data.Dim; j++ {
			in := true
			for _, dIdx := range discrim {
				if math.Abs(data.Row(dIdx)[j]-pivot[j]) > params.W {
					in = false
					break
				}
			}
			if in {
				trialDims = append(trialDims, j)
			}
		}
		if len(trialDims) == 0 {
			continue
		}
		// Collect the box members (within 2W total width around the pivot).
		var trialMembers []int
		for _, p := range remaining {
			row := data.Row(p)
			in := true
			for _, j := range trialDims {
				if math.Abs(row[j]-pivot[j]) > params.W {
					in = false
					break
				}
			}
			if in {
				trialMembers = append(trialMembers, p)
			}
		}
		if len(trialMembers) < minPoints {
			continue
		}
		q := quality(len(trialMembers), len(trialDims), params.Beta)
		if q > bestQuality {
			bestQuality = q
			members = append(members[:0], trialMembers...)
			dims = append(dims[:0], trialDims...)
		}
	}
	return members, dims, bestQuality > 0
}

// quality is µ(a, b) = a·(1/β)^b, computed in logs for stability.
func quality(points, dims int, beta float64) float64 {
	return math.Log(float64(points)) + float64(dims)*math.Log(1/beta)
}
