// Package stats implements the statistical machinery the P3C+ clustering
// model depends on: gamma-family special functions, chi-square and Gaussian
// distributions, Poisson tail tests (exact and Gaussian-approximated in
// sigma units), chi-square uniformity tests, Cohen's d effect sizes and
// histogram bin-count rules (Sturges, Freedman–Diaconis).
//
// All functions are pure and safe for concurrent use.
package stats

import "math"

// LogGamma returns log Γ(x) for x > 0 using the Lanczos approximation.
// It delegates to math.Lgamma and exists so callers in this package read
// naturally.
func LogGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// maxIGammaIter bounds the series/continued-fraction iteration counts.
const maxIGammaIter = 500

// igamEps is the convergence tolerance for the incomplete gamma evaluations.
const igamEps = 1e-14

// RegularizedGammaP computes P(a,x) = γ(a,x)/Γ(a), the lower regularized
// incomplete gamma function, for a > 0, x ≥ 0.
func RegularizedGammaP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x < a+1:
		return gammaPSeries(a, x)
	default:
		return 1 - gammaQContinuedFraction(a, x)
	}
}

// RegularizedGammaQ computes Q(a,x) = 1 − P(a,x), the upper regularized
// incomplete gamma function.
func RegularizedGammaQ(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 1
	case x < a+1:
		return 1 - gammaPSeries(a, x)
	default:
		return gammaQContinuedFraction(a, x)
	}
}

// gammaPSeries evaluates P(a,x) by its power series, accurate for x < a+1.
func gammaPSeries(a, x float64) float64 {
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIGammaIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*igamEps {
			break
		}
	}
	logPrefix := -x + a*math.Log(x) - LogGamma(a)
	return sum * math.Exp(logPrefix)
}

// gammaQContinuedFraction evaluates Q(a,x) by the Lentz continued fraction,
// accurate for x ≥ a+1.
func gammaQContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIGammaIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < igamEps {
			break
		}
	}
	logPrefix := -x + a*math.Log(x) - LogGamma(a)
	return h * math.Exp(logPrefix)
}
