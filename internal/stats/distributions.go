package stats

import "math"

// --- Gaussian ---------------------------------------------------------------

// NormalCDF returns P(Z ≤ z) for the standard normal distribution.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalSF returns the survival function P(Z > z), computed stably in the
// upper tail.
func NormalSF(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// NormalPDF returns the standard normal density at z.
func NormalPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

// NormalQuantile returns the z with P(Z ≤ z) = p, using the
// Acklam rational approximation refined by one Halley step. It panics for
// p outside (0,1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		panic("stats: NormalQuantile requires p in (0,1)")
	}
	// Coefficients of Acklam's approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow, pHigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// --- Chi-square --------------------------------------------------------------

// ChiSquareCDF returns P(X ≤ x) for a chi-square variable with k degrees of
// freedom.
func ChiSquareCDF(x float64, k int) float64 {
	if x <= 0 {
		return 0
	}
	return RegularizedGammaP(float64(k)/2, x/2)
}

// ChiSquareSF returns the upper tail P(X > x).
func ChiSquareSF(x float64, k int) float64 {
	if x <= 0 {
		return 1
	}
	return RegularizedGammaQ(float64(k)/2, x/2)
}

// ChiSquareCritical returns the critical value x with P(X > x) = alpha for
// k degrees of freedom — the threshold used by the Mahalanobis outlier test
// in P3C (§3.2.2, §4.2.2). It is solved by bisection on the monotone CDF.
func ChiSquareCritical(alpha float64, k int) float64 {
	if alpha <= 0 || alpha >= 1 {
		panic("stats: ChiSquareCritical requires alpha in (0,1)")
	}
	if k <= 0 {
		panic("stats: ChiSquareCritical requires k > 0")
	}
	target := 1 - alpha
	lo, hi := 0.0, float64(k)+10
	for ChiSquareCDF(hi, k) < target {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if ChiSquareCDF(mid, k) < target {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-10*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2
}

// --- Poisson -----------------------------------------------------------------

// PoissonPMF returns P(X = k) for X ~ Poisson(lambda), computed in log space
// to stay finite for large arguments.
func PoissonPMF(k int, lambda float64) float64 {
	if k < 0 || lambda < 0 {
		return 0
	}
	if lambda == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	logP := float64(k)*math.Log(lambda) - lambda - LogGamma(float64(k)+1)
	return math.Exp(logP)
}

// PoissonSF returns the exact upper tail P(X ≥ k) for X ~ Poisson(lambda),
// via the identity P(X ≥ k) = P(k, lambda) (regularized lower incomplete
// gamma). For k = 0 the result is 1.
func PoissonSF(k int, lambda float64) float64 {
	if k <= 0 {
		return 1
	}
	if lambda <= 0 {
		return 0
	}
	return RegularizedGammaP(float64(k), lambda)
}

// PoissonCDF returns P(X ≤ k).
func PoissonCDF(k int, lambda float64) float64 {
	if k < 0 {
		return 0
	}
	if lambda <= 0 {
		return 1
	}
	return RegularizedGammaQ(float64(k)+1, lambda)
}

// PoissonSigmas returns the deviation of the observed count from lambda in
// units of the Poisson standard deviation sqrt(lambda). The paper (§7.4.2
// side remark) works in sigma units because p-values below ~1e-10 are not
// representable reliably in floating point: the Poisson is approximated by
// N(µ=λ, σ=√λ) and both the observed statistic and the significance
// threshold are mapped to sigma counts for comparison.
func PoissonSigmas(observed, lambda float64) float64 {
	if lambda <= 0 {
		if observed > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return (observed - lambda) / math.Sqrt(lambda)
}

// SigmaThreshold converts a one-sided significance level alpha into the
// corresponding number of Gaussian standard deviations. E.g. alpha = 1e-2
// maps to ≈2.326 sigmas; alpha = 1e-140 is perfectly representable where the
// p-value itself is not.
func SigmaThreshold(alpha float64) float64 {
	if alpha <= 0 {
		return math.Inf(1)
	}
	if alpha >= 1 {
		return math.Inf(-1)
	}
	// 1−alpha collapses to 1.0 in float64 below ~1e-16, so the exact
	// quantile is only usable for moderate alphas.
	if alpha >= 1e-12 {
		return NormalQuantile(1 - alpha)
	}
	// For ultra-small alpha invert the asymptotic tail expansion
	// Q(z) ≈ φ(z)/z ⇒ z ≈ sqrt(2L − log(2L) − log(2π)), L = −ln(alpha).
	L := -math.Log(alpha)
	z := math.Sqrt(2 * L)
	for i := 0; i < 50; i++ {
		z = math.Sqrt(2 * (L - math.Log(z) - 0.5*math.Log(2*math.Pi)))
	}
	return z
}

// PoissonTest reports whether the observed support is significantly larger
// than expected at level alpha — the "x <p y" relation of the paper. For
// large expectations it uses the sigma-unit Gaussian approximation of the
// Poisson distribution (so arbitrarily small alphas remain testable, per
// the paper's §7.4.2 remark); for small expectations the Gaussian
// approximation overstates significance badly (at λ=0.05, observing one
// point is 4σ "significant" but has exact probability 0.05), so the exact
// tail is used instead.
func PoissonTest(observed, expected, alpha float64) bool {
	if expected < 0 {
		expected = 0
	}
	if expected <= smallLambda {
		k := int(math.Ceil(observed))
		if float64(k) < observed {
			k++
		}
		return PoissonSF(k, expected) < alpha
	}
	return PoissonSigmas(observed, expected) > SigmaThreshold(alpha)
}

// smallLambda is the expectation below which PoissonTest switches to the
// exact tail. At λ=25 the Gaussian approximation is accurate to the levels
// the pipeline tests at.
const smallLambda = 25

// PoissonTestExact is the textbook version used for moderate alphas and in
// tests: it compares the exact upper-tail p-value P(X ≥ observed) against
// alpha.
func PoissonTestExact(observed int, expected, alpha float64) bool {
	return PoissonSF(observed, expected) < alpha
}
