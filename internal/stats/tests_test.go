package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChiSquareUniformTestOnUniformData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rejections := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		counts := make([]int64, 10)
		for i := 0; i < 1000; i++ {
			counts[rng.Intn(10)]++
		}
		if !IsUniform(counts, 0.01) {
			rejections++
		}
	}
	// At alpha=0.01 we expect ~1% false rejections; allow generous slack.
	if rejections > 12 {
		t.Errorf("%d/%d uniform samples rejected at alpha=0.01", rejections, trials)
	}
}

func TestChiSquareUniformTestOnSkewedData(t *testing.T) {
	counts := []int64{500, 50, 50, 50, 50, 50, 50, 50, 50, 50}
	if IsUniform(counts, 0.001) {
		t.Error("clearly skewed counts accepted as uniform")
	}
	stat, p := ChiSquareUniformTest(counts)
	if stat <= 0 || p >= 0.001 {
		t.Errorf("stat=%g p=%g", stat, p)
	}
}

func TestChiSquareUniformTestDegenerate(t *testing.T) {
	if _, p := ChiSquareUniformTest(nil); p != 1 {
		t.Error("empty counts must have p=1")
	}
	if _, p := ChiSquareUniformTest([]int64{5}); p != 1 {
		t.Error("single bin must have p=1")
	}
	if _, p := ChiSquareUniformTest([]int64{0, 0, 0}); p != 1 {
		t.Error("all-zero counts must have p=1")
	}
}

func TestCohenD(t *testing.T) {
	if got := CohenD(135, 100); !close(got, 0.35, 1e-12) {
		t.Errorf("CohenD = %g, want 0.35", got)
	}
	if !math.IsInf(CohenD(5, 0), 1) {
		t.Error("positive observation over zero expectation must be +Inf")
	}
	if CohenD(0, 0) != 0 {
		t.Error("zero/zero must be 0")
	}
	if CohenD(50, 100) >= 0 {
		t.Error("under-representation must be negative")
	}
}

func TestEffectSizeTestThreshold(t *testing.T) {
	// θcc = 0.35 (the paper default): 35% relative deviation is the line.
	if !EffectSizeTest(135, 100, 0.35) {
		t.Error("exactly θcc must pass (≤ comparison)")
	}
	if EffectSizeTest(134, 100, 0.35) {
		t.Error("below θcc must fail")
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median wrong")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median wrong")
	}
	if Median([]float64{7}) != 7 {
		t.Error("singleton median wrong")
	}
	// Median must not mutate its input.
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Error("Median mutated input")
	}
}

func TestMedianInPlaceMatchesMedian(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, v := range xs {
			if math.IsNaN(v) {
				return true
			}
		}
		a := Median(xs)
		b := MedianInPlace(append([]float64(nil), xs...))
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedianPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Median(nil)
}

func TestQuantileAndIQR(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %g", got)
	}
	if got := Quantile(xs, 1); got != 10 {
		t.Errorf("q1 = %g", got)
	}
	if got := Quantile(xs, 0.5); !close(got, 5.5, 1e-12) {
		t.Errorf("q0.5 = %g", got)
	}
	if got := IQR(xs); !close(got, 4.5, 1e-12) {
		t.Errorf("IQR = %g", got)
	}
}

func TestQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 1.0001; p += 0.05 {
		pp := p
		if pp > 1 {
			pp = 1
		}
		q := Quantile(xs, pp)
		if q < prev {
			t.Fatalf("quantile not monotone at p=%g", pp)
		}
		prev = q
	}
}

func TestSturgesBins(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1},
		{2, 2},
		{100, 8},    // 1+log2(100)=7.64 → 8
		{10000, 15}, // 1+13.29 → 15
		{1000000, 21},
	}
	for _, c := range cases {
		if got := SturgesBins(c.n); got != c.want {
			t.Errorf("SturgesBins(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestFreedmanDiaconisBins(t *testing.T) {
	// Uniform simplification: bin size n^(−1/3) ⇒ ⌈n^(1/3)⌉ bins.
	cases := []struct{ n, want int }{
		{1000, 10},
		{8000, 20},
		{1000000, 100},
	}
	for _, c := range cases {
		if got := FreedmanDiaconisBinsUniform(c.n); got != c.want {
			t.Errorf("FD(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	if FreedmanDiaconisBins(0, 0.5, 1) != 1 || FreedmanDiaconisBins(100, 0, 1) != 1 {
		t.Error("degenerate inputs must yield 1 bin")
	}
}

// TestFDProducesMoreBinsThanSturges checks the §4.1.1 claim that drives the
// P3C+ change: for large n, Sturges oversmooths relative to FD.
func TestFDProducesMoreBinsThanSturges(t *testing.T) {
	for _, n := range []int{10000, 100000, 1000000, 10000000} {
		if FreedmanDiaconisBinsUniform(n) <= SturgesBins(n) {
			t.Errorf("FD(%d)=%d not greater than Sturges=%d", n, FreedmanDiaconisBinsUniform(n), SturgesBins(n))
		}
	}
}
