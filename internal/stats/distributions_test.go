package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// --- Gamma family ---------------------------------------------------------------

func TestRegularizedGammaComplement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 0.1 + rng.Float64()*20
		x := rng.Float64() * 40
		p := RegularizedGammaP(a, x)
		q := RegularizedGammaQ(a, x)
		return close(p+q, 1, 1e-10) && p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRegularizedGammaKnownValues(t *testing.T) {
	// P(1, x) = 1 − e^{−x}.
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := RegularizedGammaP(1, x); !close(got, want, 1e-12) {
			t.Errorf("P(1,%g) = %g, want %g", x, got, want)
		}
	}
	// P(a,0) = 0, Q(a,0) = 1.
	if RegularizedGammaP(3, 0) != 0 || RegularizedGammaQ(3, 0) != 1 {
		t.Error("boundary values wrong")
	}
}

func TestRegularizedGammaMonotone(t *testing.T) {
	prev := -1.0
	for x := 0.0; x < 30; x += 0.5 {
		p := RegularizedGammaP(4, x)
		if p < prev-1e-12 {
			t.Fatalf("P(4,·) not monotone at %g", x)
		}
		prev = p
	}
}

func TestRegularizedGammaInvalid(t *testing.T) {
	if !math.IsNaN(RegularizedGammaP(-1, 2)) || !math.IsNaN(RegularizedGammaQ(0, 2)) {
		t.Error("invalid a must yield NaN")
	}
}

// --- Gaussian --------------------------------------------------------------------

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
		{1, 0.8413447461},
		{-3, 0.0013498980},
	}
	for _, c := range cases {
		if got := NormalCDF(c.z); !close(got, c.want, 1e-9) {
			t.Errorf("NormalCDF(%g) = %.10f, want %.10f", c.z, got, c.want)
		}
	}
}

func TestNormalSFComplement(t *testing.T) {
	for z := -6.0; z <= 6; z += 0.25 {
		if !close(NormalCDF(z)+NormalSF(z), 1, 1e-12) {
			t.Fatalf("CDF+SF != 1 at z=%g", z)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-6, 0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999999} {
		z := NormalQuantile(p)
		if got := NormalCDF(z); !close(got, p, 1e-9*(1+1/p)) {
			t.Errorf("CDF(Quantile(%g)) = %g", p, got)
		}
	}
}

func TestNormalQuantilePanicsOutOfRange(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%g) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

// --- Chi-square -------------------------------------------------------------------

func TestChiSquareCriticalKnownValues(t *testing.T) {
	// Standard table values.
	cases := []struct {
		alpha float64
		k     int
		want  float64
	}{
		{0.05, 1, 3.841},
		{0.05, 5, 11.070},
		{0.001, 10, 29.588},
		{0.01, 3, 11.345},
	}
	for _, c := range cases {
		got := ChiSquareCritical(c.alpha, c.k)
		if !close(got, c.want, 0.01) {
			t.Errorf("ChiSquareCritical(%g,%d) = %.3f, want %.3f", c.alpha, c.k, got, c.want)
		}
	}
}

func TestChiSquareCriticalRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := 0.0005 + rng.Float64()*0.2
		k := 1 + rng.Intn(50)
		crit := ChiSquareCritical(alpha, k)
		return close(ChiSquareSF(crit, k), alpha, 1e-6*(1+1/alpha))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestChiSquareCDFBounds(t *testing.T) {
	if ChiSquareCDF(-1, 3) != 0 || ChiSquareSF(-1, 3) != 1 {
		t.Error("negative statistic boundary wrong")
	}
}

// --- Poisson ---------------------------------------------------------------------

func TestPoissonPMFSumsToOne(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 10, 50} {
		sum := 0.0
		for k := 0; k < int(lambda)*4+40; k++ {
			sum += PoissonPMF(k, lambda)
		}
		if !close(sum, 1, 1e-9) {
			t.Errorf("PMF(λ=%g) sums to %g", lambda, sum)
		}
	}
}

func TestPoissonSFMatchesPMFSum(t *testing.T) {
	lambda := 7.5
	for _, k := range []int{0, 1, 5, 8, 15} {
		var direct float64
		for j := k; j < 200; j++ {
			direct += PoissonPMF(j, lambda)
		}
		if got := PoissonSF(k, lambda); !close(got, direct, 1e-9) {
			t.Errorf("SF(%d, %g) = %g, direct sum %g", k, lambda, got, direct)
		}
	}
}

func TestPoissonCDFSFComplement(t *testing.T) {
	lambda := 12.0
	for k := 0; k < 40; k++ {
		// P(X ≤ k) + P(X ≥ k+1) = 1.
		if !close(PoissonCDF(k, lambda)+PoissonSF(k+1, lambda), 1, 1e-9) {
			t.Fatalf("CDF/SF mismatch at k=%d", k)
		}
	}
}

func TestPoissonSigmas(t *testing.T) {
	if got := PoissonSigmas(110, 100); !close(got, 1, 1e-12) {
		t.Errorf("sigmas = %g, want 1", got)
	}
	if !math.IsInf(PoissonSigmas(5, 0), 1) {
		t.Error("positive observation at zero lambda must be +Inf sigmas")
	}
	if PoissonSigmas(0, 0) != 0 {
		t.Error("zero observation at zero lambda must be 0 sigmas")
	}
}

func TestSigmaThresholdKnownValues(t *testing.T) {
	// One-sided: alpha=0.01 → 2.326; alpha=0.001 → 3.090.
	if got := SigmaThreshold(0.01); !close(got, 2.3263, 1e-3) {
		t.Errorf("SigmaThreshold(0.01) = %g", got)
	}
	if got := SigmaThreshold(0.001); !close(got, 3.0902, 1e-3) {
		t.Errorf("SigmaThreshold(0.001) = %g", got)
	}
}

func TestSigmaThresholdUltraSmallAlpha(t *testing.T) {
	// The paper's Figure 5 sweeps thresholds down to 1e-140, far beyond
	// floating-point CDF resolution; the sigma mapping must stay monotone
	// and finite there.
	prev := 0.0
	for _, alpha := range []float64{1e-3, 1e-5, 1e-20, 1e-40, 1e-60, 1e-80, 1e-100, 1e-140, 1e-200, 1e-308} {
		z := SigmaThreshold(alpha)
		if math.IsInf(z, 0) || math.IsNaN(z) {
			t.Fatalf("SigmaThreshold(%g) not finite: %g", alpha, z)
		}
		if z <= prev {
			t.Fatalf("SigmaThreshold not increasing at %g: %g <= %g", alpha, z, prev)
		}
		prev = z
	}
	// Consistency with the exact quantile where both are computable.
	if got, want := SigmaThreshold(1e-12), NormalQuantile(1-1e-12); !close(got, want, 1e-6) {
		t.Errorf("SigmaThreshold(1e-12) = %g, want %g", got, want)
	}
}

func TestPoissonTestAgainstExact(t *testing.T) {
	// The sigma-approximated test must agree with the exact tail test for
	// moderate lambdas away from the decision boundary.
	cases := []struct {
		obs      int
		lambda   float64
		alpha    float64
		expected bool
	}{
		{200, 100, 0.01, true},   // 10 sigmas: clearly significant
		{101, 100, 0.01, false},  // 0.1 sigmas: clearly not
		{500, 100, 1e-50, true},  // huge deviation at tiny alpha
		{120, 100, 1e-50, false}, // 2 sigmas at tiny alpha
	}
	for _, c := range cases {
		if got := PoissonTest(float64(c.obs), c.lambda, c.alpha); got != c.expected {
			t.Errorf("PoissonTest(%d,%g,%g) = %v", c.obs, c.lambda, c.alpha, got)
		}
	}
	if !PoissonTestExact(200, 100, 0.01) || PoissonTestExact(101, 100, 0.01) {
		t.Error("exact test disagrees on clear-cut cases")
	}
}

// TestPoissonTestPowerGrowsWithN reproduces the Figure 1 phenomenon: at a
// constant relative deviation of 1%, the test flips from "not significant"
// to "significant" as the expected count grows.
func TestPoissonTestPowerGrowsWithN(t *testing.T) {
	const alpha = 0.01
	small := PoissonTest(101, 100, alpha)       // 1% over µ=100
	large := PoissonTest(101000000, 1e8, alpha) // 1% over µ=1e8
	if small {
		t.Error("1% deviation at µ=100 should not be significant")
	}
	if !large {
		t.Error("1% deviation at µ=1e8 must be significant — the paper's core statistical argument")
	}
}
