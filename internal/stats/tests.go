package stats

import (
	"math"
	"sort"
)

// ChiSquareUniformTest performs the standard chi-square goodness-of-fit test
// of the observed bin counts against the uniform distribution. It returns
// the statistic and the p-value P(X² ≥ stat). Bins with zero expected count
// (empty input) yield p = 1.
func ChiSquareUniformTest(counts []int64) (stat, pValue float64) {
	k := len(counts)
	if k < 2 {
		return 0, 1
	}
	var n int64
	for _, c := range counts {
		n += c
	}
	if n == 0 {
		return 0, 1
	}
	expected := float64(n) / float64(k)
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	return stat, ChiSquareSF(stat, k-1)
}

// IsUniform reports whether the chi-square test fails to reject uniformity of
// counts at significance level alpha.
func IsUniform(counts []int64, alpha float64) bool {
	_, p := ChiSquareUniformTest(counts)
	return p >= alpha
}

// CohenD computes the effect-size statistic of §4.1.2 (Eq. 4) with
// σ = expected support:
//
//	d_cc = (observed − expected) / expected
//
// i.e. the relative deviation of the observed from the expected support.
// For expected ≤ 0 it returns +Inf when anything was observed, else 0.
func CohenD(observed, expected float64) float64 {
	if expected <= 0 {
		if observed > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return (observed - expected) / expected
}

// EffectSizeTest reports whether the effect is at least theta: the
// "θcc ≤ Cohen's d_cc" criterion complementing the Poisson significance
// test in cluster-core generation.
func EffectSizeTest(observed, expected, theta float64) bool {
	return CohenD(observed, expected) >= theta
}

// --- Order statistics ---------------------------------------------------------

// Median returns the sample median of xs. It sorts a copy; the input is not
// modified. It panics on empty input.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: median of empty sample")
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return medianSorted(cp)
}

// MedianInPlace sorts xs and returns the median, avoiding the copy that
// Median makes. It panics on empty input.
func MedianInPlace(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: median of empty sample")
	}
	sort.Float64s(xs)
	return medianSorted(xs)
}

func medianSorted(xs []float64) float64 {
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// IQR returns the interquartile range Q3−Q1 of xs using linear interpolation
// between order statistics (type-7 quantiles). It panics on empty input.
func IQR(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: IQR of empty sample")
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return quantileSorted(cp, 0.75) - quantileSorted(cp, 0.25)
}

// Quantile returns the p-quantile (type 7) of xs for p in [0,1].
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: quantile of empty sample")
	}
	if p < 0 || p > 1 {
		panic("stats: quantile requires p in [0,1]")
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return quantileSorted(cp, p)
}

func quantileSorted(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 1 {
		return xs[0]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return xs[n-1]
	}
	frac := h - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// --- Histogram bin-count rules -------------------------------------------------

// SturgesBins returns ⌈1 + log₂ n⌉, the rule used by the original P3C. The
// paper shows it oversmooths for large n (§4.1.1).
func SturgesBins(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(1 + math.Log2(float64(n))))
}

// FreedmanDiaconisBins returns the bin count implied by the
// Freedman–Diaconis rule, bin size = 2·IQR·n^(−1/3), on data spanning
// dataRange. P3C+ assumes each attribute is uniform on [0,1] so that
// IQR = 1/2 and dataRange = 1 (§4.1.1); pass iqr = 0.5, dataRange = 1 for
// that behaviour.
func FreedmanDiaconisBins(n int, iqr, dataRange float64) int {
	if n <= 1 || iqr <= 0 || dataRange <= 0 {
		return 1
	}
	width := 2 * iqr * math.Pow(float64(n), -1.0/3.0)
	bins := int(math.Ceil(dataRange / width))
	if bins < 1 {
		bins = 1
	}
	return bins
}

// FreedmanDiaconisBinsUniform applies the paper's simplification IQR = 1/2 on
// normalized [0,1] attributes: bin size = n^(−1/3), i.e. ⌈n^(1/3)⌉ bins.
func FreedmanDiaconisBinsUniform(n int) int {
	return FreedmanDiaconisBins(n, 0.5, 1)
}
