package stats

import "testing"

func BenchmarkPoissonTestLargeLambda(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PoissonTest(1100, 1000, 0.01)
	}
}

func BenchmarkPoissonTestSmallLambda(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PoissonTest(8, 2, 0.01)
	}
}

func BenchmarkSigmaThresholdTinyAlpha(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SigmaThreshold(1e-140)
	}
}

func BenchmarkChiSquareCritical(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ChiSquareCritical(0.001, 20)
	}
}

func BenchmarkChiSquareUniformTest(b *testing.B) {
	counts := make([]int64, 100)
	for i := range counts {
		counts[i] = int64(1000 + i%7)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ChiSquareUniformTest(counts)
	}
}

func BenchmarkNormalQuantile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NormalQuantile(0.975)
	}
}
