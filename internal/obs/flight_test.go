package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"testing"
)

// feedFlight drives n begin/end pairs through f, faulting every faultEvery-th
// task (emitting a fault point and a fault end). Returns the number of
// critical events fed (points + non-OK ends).
func feedFlight(f *FlightRecorder, n, faultEvery int) int {
	critical := 0
	for i := 0; i < n; i++ {
		id := NewSpanID()
		f.Begin(Start{ID: id, Kind: KindTask, Name: "job", Task: i, Phase: "map"})
		if faultEvery > 0 && i%faultEvery == 0 {
			f.Point(Point{Span: id, Kind: PointFault, Name: "job", Task: i, Phase: "map"})
			f.End(End{ID: id, Kind: KindTask, Name: "job", Task: i, Phase: "map", Outcome: OutcomeFault})
			critical += 2
		} else {
			f.End(End{ID: id, Kind: KindTask, Name: "job", Task: i, Phase: "map", Outcome: OutcomeOK})
		}
	}
	return critical
}

func TestFlightRecorderBoundAndRetention(t *testing.T) {
	const limit = 16
	f := NewFlightRecorder(limit)
	critical := feedFlight(f, 500, 10) // 1000 events, 100 critical

	if got := f.Len(); got != limit {
		t.Errorf("ring holds %d events, want the limit %d", got, limit)
	}

	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	faultPoints, faultEnds, lines := 0, 0, 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		lines++
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("dump line %d not JSON: %v", lines, err)
		}
		switch line["ev"] {
		case "point":
			if line["point"] == "fault" {
				faultPoints++
			}
		case "end":
			if line["outcome"] == "fault" {
				faultEnds++
			}
		case "begin":
		default:
			t.Fatalf("dump line %d has unknown ev %v", lines, line["ev"])
		}
	}
	// Every critical event survives eviction: all 50 fault points and all 50
	// fault ends must be in the dump even though the ring only holds 16
	// events.
	if faultPoints != 50 || faultEnds != 50 {
		t.Errorf("dump retained %d fault points, %d fault ends; want 50/50", faultPoints, faultEnds)
	}
	if want := f.CriticalRetained() + f.Len(); lines != want {
		t.Errorf("dump has %d lines, want crit+ring = %d", lines, want)
	}
	if f.CriticalRetained() > critical {
		t.Errorf("CriticalRetained() = %d > %d critical events fed", f.CriticalRetained(), critical)
	}
}

// closeBuffer is a bytes.Buffer with a Close, for SetDump factories.
type closeBuffer struct{ bytes.Buffer }

func (c *closeBuffer) Close() error { return nil }

func TestFlightRecorderAutoDump(t *testing.T) {
	f := NewFlightRecorder(32)
	var dumped closeBuffer
	var gotRun End
	f.SetDump(func(run End) (io.WriteCloser, error) {
		gotRun = run
		return &dumped, nil
	})

	run := NewSpanID()
	f.Begin(Start{ID: run, Kind: KindRun, Name: "pipeline"})
	feedFlight(f, 3, 0)

	// A successful run end must NOT dump.
	okRun := NewSpanID()
	f.Begin(Start{ID: okRun, Kind: KindRun, Name: "ok-pipeline"})
	f.End(End{ID: okRun, Kind: KindRun, Name: "ok-pipeline", Outcome: OutcomeOK})
	if f.Dumps() != 0 {
		t.Fatalf("successful run end triggered a dump")
	}

	f.End(End{ID: run, Kind: KindRun, Name: "pipeline", Outcome: OutcomeError, Err: "job failed permanently"})
	if f.Dumps() != 1 {
		t.Fatalf("Dumps() = %d after failed run end, want 1", f.Dumps())
	}
	if gotRun.Name != "pipeline" || gotRun.Err != "job failed permanently" {
		t.Errorf("dump factory got run end %+v", gotRun)
	}
	if dumped.Len() == 0 {
		t.Fatal("post-mortem dump is empty")
	}
	// Post-mortem parses as JSONL and contains the failing run end.
	sc := bufio.NewScanner(&dumped)
	sawFailEnd := false
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("post-mortem line not JSON: %v", err)
		}
		if line["ev"] == "end" && line["kind"] == "run" && line["outcome"] == "error" {
			sawFailEnd = true
		}
	}
	if !sawFailEnd {
		t.Error("post-mortem does not contain the failing run end")
	}

	// Dump-factory errors are sticky, not fatal.
	f2 := NewFlightRecorder(8)
	wantErr := errors.New("disk full")
	f2.SetDump(func(End) (io.WriteCloser, error) { return nil, wantErr })
	r2 := NewSpanID()
	f2.Begin(Start{ID: r2, Kind: KindRun, Name: "p"})
	f2.End(End{ID: r2, Kind: KindRun, Name: "p", Outcome: OutcomeError})
	if !errors.Is(f2.DumpErr(), wantErr) {
		t.Errorf("DumpErr() = %v, want %v", f2.DumpErr(), wantErr)
	}
	if f2.Dumps() != 0 {
		t.Errorf("Dumps() = %d after failed dump, want 0", f2.Dumps())
	}
}

func TestFlightRecorderDefaultLimit(t *testing.T) {
	f := NewFlightRecorder(0)
	feedFlight(f, DefaultFlightLimit, 0) // 2·limit events
	if got := f.Len(); got != DefaultFlightLimit {
		t.Errorf("Len() = %d, want DefaultFlightLimit %d", got, DefaultFlightLimit)
	}
	if got := f.CriticalRetained(); got != 0 {
		t.Errorf("CriticalRetained() = %d with no critical events, want 0", got)
	}
	// Dump order: strictly increasing timestamps across crit+ring.
	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line struct {
			TS float64 `json:"ts"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.TS < prev {
			t.Fatalf("dump timestamps go backwards: %g after %g", line.TS, prev)
		}
		prev = line.TS
	}
}
