package obs

import (
	"sort"
	"sync"
	"time"
)

// Progress is a Tracer sink that folds the live span stream into per-run
// progress state — the data behind the ops server's /runs endpoints. For
// every run it tracks the phase sequence, job and task-attempt completion
// counts, fault/retry/cancel/straggler activity, the committed counter
// deltas (and a records/sec throughput derived from them), elapsed wall
// time, and an ETA.
//
// ETA sources, best first: a *learned profile* (the per-phase wall-time
// split of the last successfully completed run with the same name), then a
// *phase plan* registered via SetPhasePlan (progress is the fraction of
// planned phases finished), else unknown (-1). All clock reads go through
// obs.Now, the package's sanctioned wall-clock shim.
//
// Progress is safe for concurrent use and, like every sink, is pure
// observation: it never feeds back into execution.
type Progress struct {
	mu       sync.Mutex
	retain   int
	runs     map[SpanID]*runState
	order    []SpanID // live runs in Begin order
	done     []RunSnapshot
	spanRun  map[SpanID]SpanID
	plans    map[string][]string
	profiles map[string]runProfile
}

// runProfile is the per-phase wall-second split of a completed run, used to
// weight phase completion into an ETA for the next run of the same name.
type runProfile struct {
	phases map[string]float64
	total  float64
}

// defaultRetainRuns bounds the completed-run history Snapshot reports.
const defaultRetainRuns = 32

// NewProgress returns an empty aggregator.
func NewProgress() *Progress {
	return &Progress{
		retain:   defaultRetainRuns,
		runs:     make(map[SpanID]*runState),
		spanRun:  make(map[SpanID]SpanID),
		plans:    make(map[string][]string),
		profiles: make(map[string]runProfile),
	}
}

// SetPhasePlan registers the expected phase order for runs with the given
// name, enabling plan-based ETA before any run has completed.
func (p *Progress) SetPhasePlan(runName string, phases []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.plans[runName] = append([]string(nil), phases...)
}

// runState accumulates one live run.
type runState struct {
	id      SpanID
	name    string
	start   time.Time
	phases  []*phaseState
	byID    map[SpanID]*phaseState
	current *phaseState

	jobs, jobsDone              int
	tasks, tasksDone            int
	faults, cancels, stragglers int
	stragglerSeconds            float64
	retries                     int64
	counters, wasted            Counters
	simSeconds                  float64
	quality                     map[string]float64
}

// phaseState accumulates one pipeline phase within a run.
type phaseState struct {
	name        string
	start       time.Time
	done        bool
	realSeconds float64 // authoritative once done; live value is derived
	simSeconds  float64
	jobs        int
	tasks       int
	retries     int64
}

// detachedRunID is the synthetic bucket for spans with no enclosing run
// span — e.g. an engine traced without the pipeline layer.
const detachedRunID SpanID = 0

func (p *Progress) runFor(parent SpanID) *runState {
	id, ok := p.spanRun[parent]
	if !ok {
		id = detachedRunID
	}
	r := p.runs[id]
	if r == nil && id == detachedRunID {
		r = &runState{id: detachedRunID, name: "(detached)", start: Now(),
			byID: make(map[SpanID]*phaseState)}
		p.runs[detachedRunID] = r
		p.order = append(p.order, detachedRunID)
	}
	return r
}

// Begin implements Tracer.
func (p *Progress) Begin(s Start) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch s.Kind {
	case KindRun:
		r := &runState{id: s.ID, name: s.Name, start: Now(),
			byID: make(map[SpanID]*phaseState)}
		p.runs[s.ID] = r
		p.order = append(p.order, s.ID)
		p.spanRun[s.ID] = s.ID
	case KindPhase:
		r := p.runFor(s.Parent)
		if r == nil {
			return
		}
		ph := &phaseState{name: s.Name, start: Now()}
		r.phases = append(r.phases, ph)
		r.byID[s.ID] = ph
		r.current = ph
		p.spanRun[s.ID] = r.id
	case KindJob:
		r := p.runFor(s.Parent)
		if r == nil {
			return
		}
		r.jobs++
		if ph := r.byID[s.Parent]; ph != nil {
			ph.jobs++
		}
		p.spanRun[s.ID] = r.id
	case KindTask:
		r := p.runFor(s.Parent)
		if r == nil {
			return
		}
		p.spanRun[s.ID] = r.id
		if s.Phase == "shuffle" {
			return
		}
		r.tasks++
		if r.current != nil {
			r.current.tasks++
		}
	case KindStep:
		// Worker-side sub-phases route into their attempt's run so their
		// points resolve, but never count as tasks.
		r := p.runFor(s.Parent)
		if r == nil {
			return
		}
		p.spanRun[s.ID] = r.id
	}
}

// End implements Tracer.
func (p *Progress) End(e End) {
	p.mu.Lock()
	defer p.mu.Unlock()
	runID, ok := p.spanRun[e.ID]
	if !ok {
		if e.Kind == KindRun {
			return
		}
		runID = detachedRunID
	}
	delete(p.spanRun, e.ID)
	r := p.runs[runID]
	if r == nil {
		return
	}
	switch e.Kind {
	case KindRun:
		p.finishRun(r, e)
	case KindPhase:
		if ph := r.byID[e.ID]; ph != nil {
			ph.done = true
			ph.realSeconds = e.RealSeconds
			ph.simSeconds = e.SimulatedSeconds
			ph.retries = e.Retries
			if r.current == ph {
				r.current = nil
			}
		}
	case KindJob:
		r.jobsDone++
		r.counters.Add(e.Counters)
		r.wasted.Add(e.Wasted)
		r.simSeconds += e.SimulatedSeconds
		r.retries += e.Retries
	case KindTask:
		if e.Phase == "shuffle" {
			return
		}
		r.tasksDone++
		switch e.Outcome {
		case OutcomeFault:
			r.faults++
		case OutcomeCancelled:
			r.cancels++
		}
	}
}

// Point implements Tracer.
func (p *Progress) Point(pt Point) {
	p.mu.Lock()
	defer p.mu.Unlock()
	runID, ok := p.spanRun[pt.Span]
	if !ok {
		runID = detachedRunID
	}
	r := p.runs[runID]
	if r == nil {
		return
	}
	switch pt.Kind {
	case PointStraggler:
		r.stragglers++
		r.stragglerSeconds += pt.Seconds
	case PointCancel:
		r.cancels++
	case PointMetric:
		// Algorithm-level convergence/quality series: keep the latest value
		// per metric name (the full series lives in the trace).
		if r.quality == nil {
			r.quality = make(map[string]float64)
		}
		r.quality[pt.Name] = pt.Value
	}
}

// finishRun moves a run into the completed ring and, on success, records
// its per-phase wall-time split as the ETA profile for the next run of the
// same name. Caller holds p.mu.
func (p *Progress) finishRun(r *runState, e End) {
	snap := p.snapshotLocked(r, false)
	snap.Outcome = e.Outcome.String()
	snap.Err = e.Err
	snap.ElapsedSeconds = e.RealSeconds
	snap.ETASeconds = 0
	snap.RecordsPerSec = 0
	if snap.ElapsedSeconds >= minRateElapsed {
		snap.RecordsPerSec = float64(snap.Records) / snap.ElapsedSeconds
	}
	p.done = append(p.done, snap)
	if len(p.done) > p.retain {
		p.done = p.done[len(p.done)-p.retain:]
	}
	if e.Outcome == OutcomeOK && len(r.phases) > 0 {
		prof := runProfile{phases: make(map[string]float64, len(r.phases))}
		for _, ph := range r.phases {
			prof.phases[ph.name] += ph.realSeconds
			prof.total += ph.realSeconds
		}
		if prof.total > 0 {
			p.profiles[r.name] = prof
		}
	}
	delete(p.runs, r.id)
	for i, id := range p.order {
		if id == r.id {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
	// Drop any still-open span routes into the finished run (e.g. phases
	// abandoned by an error path).
	for span, run := range p.spanRun {
		if run == r.id {
			delete(p.spanRun, span)
		}
	}
}

// PhaseSnapshot is the progress of one pipeline phase.
type PhaseSnapshot struct {
	Name             string  `json:"name"`
	Done             bool    `json:"done"`
	RealSeconds      float64 `json:"real_s"`
	SimulatedSeconds float64 `json:"sim_s"`
	Jobs             int     `json:"jobs"`
	Tasks            int     `json:"tasks"`
	Retries          int64   `json:"retries"`
}

// RunSnapshot is the point-in-time progress of one run — the /runs/{id}
// payload.
type RunSnapshot struct {
	ID               int64           `json:"id"`
	Name             string          `json:"name"`
	Active           bool            `json:"active"`
	Outcome          string          `json:"outcome,omitempty"`
	Err              string          `json:"err,omitempty"`
	ElapsedSeconds   float64         `json:"elapsed_s"`
	ETASeconds       float64         `json:"eta_s"` // -1 = unknown
	CurrentPhase     string          `json:"current_phase,omitempty"`
	Phases           []PhaseSnapshot `json:"phases,omitempty"`
	Jobs             int             `json:"jobs"`
	JobsDone         int             `json:"jobs_done"`
	Tasks            int             `json:"tasks"`
	TasksDone        int             `json:"tasks_done"`
	Faults           int             `json:"faults"`
	Cancels          int             `json:"cancels"`
	Stragglers       int             `json:"stragglers"`
	StragglerSeconds float64         `json:"straggler_s,omitempty"`
	Retries          int64           `json:"retries"`
	Records          int64           `json:"records"`
	RecordsPerSec    float64         `json:"records_per_sec"`
	SimulatedSeconds float64         `json:"sim_s"`
	Counters         Counters        `json:"counters"`
	Wasted           Counters        `json:"wasted"`
	// Quality holds the latest value of each algorithm metric point the run
	// emitted (EM convergence, signature/outlier quality).
	Quality map[string]float64 `json:"quality,omitempty"`
}

// minRateElapsed is the elapsed-seconds floor below which RecordsPerSec is
// not derived: dividing a counter delta by a sub-millisecond wall reading
// turns a trivial instant phase into a records/sec figure in the billions,
// which is noise, not throughput.
const minRateElapsed = 1e-3

// snapshotLocked builds the snapshot of a live run. Caller holds p.mu.
func (p *Progress) snapshotLocked(r *runState, live bool) RunSnapshot {
	snap := RunSnapshot{
		ID: int64(r.id), Name: r.name, Active: live,
		Jobs: r.jobs, JobsDone: r.jobsDone,
		Tasks: r.tasks, TasksDone: r.tasksDone,
		Faults: r.faults, Cancels: r.cancels,
		Stragglers: r.stragglers, StragglerSeconds: r.stragglerSeconds,
		Retries: r.retries, SimulatedSeconds: r.simSeconds,
		Counters: r.counters, Wasted: r.wasted,
	}
	snap.Records = r.counters.MapInputRecords + r.counters.ReduceInputVals
	for _, ph := range r.phases {
		ps := PhaseSnapshot{Name: ph.name, Done: ph.done,
			RealSeconds: ph.realSeconds, SimulatedSeconds: ph.simSeconds,
			Jobs: ph.jobs, Tasks: ph.tasks, Retries: ph.retries}
		if !ph.done {
			ps.RealSeconds = Since(ph.start).Seconds()
		}
		snap.Phases = append(snap.Phases, ps)
	}
	if r.current != nil {
		snap.CurrentPhase = r.current.name
	}
	if len(r.quality) > 0 {
		snap.Quality = make(map[string]float64, len(r.quality))
		for k, v := range r.quality {
			snap.Quality[k] = v
		}
	}
	if live {
		snap.ElapsedSeconds = Since(r.start).Seconds()
		if snap.ElapsedSeconds >= minRateElapsed {
			snap.RecordsPerSec = float64(snap.Records) / snap.ElapsedSeconds
		}
		snap.ETASeconds = p.etaLocked(r, snap.ElapsedSeconds)
	}
	return snap
}

// etaLocked estimates the remaining seconds of a live run from the fraction
// of work done: profile-weighted phase completion when a previous run of
// the same name finished, plan-based phase counting when a phase plan is
// registered, -1 (unknown) otherwise. Caller holds p.mu.
func (p *Progress) etaLocked(r *runState, elapsed float64) float64 {
	frac := -1.0
	if prof, ok := p.profiles[r.name]; ok && prof.total > 0 {
		done := 0.0
		for _, ph := range r.phases {
			w, known := prof.phases[ph.name]
			switch {
			case ph.done && known:
				done += w
			case ph.done:
				// A phase the profile never saw: assume it is as far along
				// as its own wall time says.
				done += ph.realSeconds
			case known:
				// Live phase: credit elapsed time, capped at its profile
				// weight so a straggling phase cannot claim to be past done.
				el := Since(ph.start).Seconds()
				if el > w {
					el = w
				}
				done += el
			}
		}
		frac = done / prof.total
	} else if plan, ok := p.plans[r.name]; ok && len(plan) > 0 {
		done := 0.0
		for _, ph := range r.phases {
			if ph.done {
				done++
			} else {
				done += 0.5
			}
		}
		frac = done / float64(len(plan))
	}
	if frac <= 0 {
		return -1
	}
	if frac > 0.99 {
		frac = 0.99
	}
	return elapsed * (1 - frac) / frac
}

// Snapshot returns every live run (in start order) followed by the retained
// completed runs (oldest first).
func (p *Progress) Snapshot() []RunSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]RunSnapshot, 0, len(p.order)+len(p.done))
	for _, id := range p.order {
		if r := p.runs[id]; r != nil {
			out = append(out, p.snapshotLocked(r, true))
		}
	}
	out = append(out, p.done...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Run returns the snapshot of one run (live or retained) by span ID.
func (p *Progress) Run(id int64) (RunSnapshot, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r := p.runs[SpanID(id)]; r != nil {
		return p.snapshotLocked(r, true), true
	}
	for _, s := range p.done {
		if s.ID == id {
			return s, true
		}
	}
	return RunSnapshot{}, false
}
