package obs

import "time"

// Now and Since are the module's only sanctioned wall-clock reads. Engine
// semantics run on simulated time (mr.CostModel); the real clock exists
// solely to annotate observability output — RealSeconds on trace spans,
// wall-time stats, metrics histograms — where nondeterminism is expected
// and harmless. Concentrating the reads behind these two functions keeps
// them auditable and lets the detclock analyzer forbid time.Now/time.Since
// everywhere else: a new call site outside internal/obs is either a
// determinism bug or a new observability need that belongs here.

// Now returns the current wall-clock time for observability annotations.
func Now() time.Time { return time.Now() }

// Since returns the wall-clock duration elapsed since t.
func Since(t time.Time) time.Duration { return time.Since(t) }
