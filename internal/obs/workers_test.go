package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// feedWorkerStats drives a small two-worker history through the sink: w2
// runs clean, w1 faults once, runs a step, straggles and reports samples.
func feedWorkerStats() *WorkerStats {
	ws := NewWorkerStats()
	// Driver-side events without worker attribution must be ignored.
	ws.End(End{ID: 1, Kind: KindTask, Outcome: OutcomeOK, RealSeconds: 9})
	ws.Point(Point{Kind: PointSample, Sample: &ResourceSample{CPUSeconds: 9}})

	ws.End(End{ID: 2, Kind: KindTask, Worker: "w1", Outcome: OutcomeFault,
		RealSeconds: 0.5, Wasted: Counters{MapInputRecords: 40}})
	ws.End(End{ID: 3, Kind: KindTask, Worker: "w1", Outcome: OutcomeOK, RealSeconds: 1.5})
	ws.End(End{ID: 4, Kind: KindStep, Name: "map-exec", Worker: "w1", Outcome: OutcomeOK, RealSeconds: 1.25})
	ws.End(End{ID: 5, Kind: KindStep, Name: "map-exec", Worker: "w1", Outcome: OutcomeOK, RealSeconds: 0.25})
	ws.End(End{ID: 6, Kind: KindStep, Name: "spill-write", Worker: "w1", Outcome: OutcomeOK, RealSeconds: 0.5})
	ws.Point(Point{Kind: PointStraggler, Worker: "w1", Seconds: 3})
	ws.Point(Point{Kind: PointSample, Worker: "w1",
		Sample: &ResourceSample{CPUSeconds: 1, RSSBytes: 4096, SpillBytes: 100, QueueBytes: 64}})
	ws.Point(Point{Kind: PointSample, Worker: "w1",
		Sample: &ResourceSample{CPUSeconds: 2, RSSBytes: 2048, SpillBytes: 200, QueueBytes: 16}})

	ws.End(End{ID: 7, Kind: KindTask, Worker: "w2", Outcome: OutcomeOK, RealSeconds: 2})
	ws.Point(Point{Kind: PointSample, Worker: "w2", Sample: &ResourceSample{CPUSeconds: 0.5, RSSBytes: 1024}})
	return ws
}

// goldenWorkerMetrics is the exact exposition-format rendering of
// feedWorkerStats — the /metrics contract for the per-worker families.
const goldenWorkerMetrics = `# TYPE p3c_worker_attempts_total counter
p3c_worker_attempts_total{worker="w1"} 2
p3c_worker_attempts_total{worker="w2"} 1
# TYPE p3c_worker_busy_seconds_total counter
p3c_worker_busy_seconds_total{worker="w1"} 2
p3c_worker_busy_seconds_total{worker="w2"} 2
# TYPE p3c_worker_cancelled_total counter
p3c_worker_cancelled_total{worker="w1"} 0
p3c_worker_cancelled_total{worker="w2"} 0
# TYPE p3c_worker_cpu_seconds_total counter
p3c_worker_cpu_seconds_total{worker="w1"} 2
p3c_worker_cpu_seconds_total{worker="w2"} 0.5
# TYPE p3c_worker_faults_total counter
p3c_worker_faults_total{worker="w1"} 1
p3c_worker_faults_total{worker="w2"} 0
# TYPE p3c_worker_queue_bytes gauge
p3c_worker_queue_bytes{worker="w1"} 16
p3c_worker_queue_bytes{worker="w2"} 0
# TYPE p3c_worker_rss_bytes gauge
p3c_worker_rss_bytes{worker="w1"} 2048
p3c_worker_rss_bytes{worker="w2"} 1024
# TYPE p3c_worker_samples_total counter
p3c_worker_samples_total{worker="w1"} 2
p3c_worker_samples_total{worker="w2"} 1
# TYPE p3c_worker_spill_bytes gauge
p3c_worker_spill_bytes{worker="w1"} 200
p3c_worker_spill_bytes{worker="w2"} 0
# TYPE p3c_worker_step_seconds_total counter
p3c_worker_step_seconds_total{worker="w1",step="map-exec"} 1.5
p3c_worker_step_seconds_total{worker="w1",step="spill-write"} 0.5
# TYPE p3c_worker_straggler_seconds_total counter
p3c_worker_straggler_seconds_total{worker="w1"} 3
p3c_worker_straggler_seconds_total{worker="w2"} 0
`

// TestWorkerStatsPrometheusGolden pins the exact per-worker exposition text
// and validates it with the same format checker the registry golden uses.
func TestWorkerStatsPrometheusGolden(t *testing.T) {
	ws := feedWorkerStats()
	var buf bytes.Buffer
	if err := ws.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenWorkerMetrics {
		t.Errorf("worker metrics drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, goldenWorkerMetrics)
	}
	checkPromText(t, buf.String())

	// Rendering must be deterministic.
	var again bytes.Buffer
	if err := ws.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two renderings of the same state differ")
	}

	// Empty state renders nothing — no dangling TYPE lines on /metrics of
	// runs without worker telemetry.
	var empty bytes.Buffer
	if err := NewWorkerStats().WritePrometheus(&empty); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Errorf("empty WorkerStats rendered %q, want nothing", empty.String())
	}
}

// TestWorkersEndpoint pins the /workers JSON payload and its integration
// into the ops mux, including the appended worker families on /metrics.
func TestWorkersEndpoint(t *testing.T) {
	ws := feedWorkerStats()
	mux := NewOpsMux(NewRegistry(), NewProgress(), ws, nil)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/workers", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /workers = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/workers content-type = %q", ct)
	}
	var snaps []WorkerSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snaps); err != nil {
		t.Fatalf("/workers not JSON: %v\n%s", err, rec.Body.String())
	}
	if len(snaps) != 2 || snaps[0].Worker != "w1" || snaps[1].Worker != "w2" {
		t.Fatalf("/workers = %+v, want sorted w1, w2", snaps)
	}
	w1 := snaps[0]
	if w1.Attempts != 2 || w1.OK != 1 || w1.Faults != 1 || w1.BusySeconds != 2 {
		t.Errorf("w1 attempt accounting = %+v", w1)
	}
	if w1.Samples != 2 || w1.CPUSeconds != 2 || w1.RSSBytes != 2048 || w1.PeakRSSBytes != 4096 {
		t.Errorf("w1 sample accounting = %+v", w1)
	}
	if w1.QueueBytes != 16 || w1.PeakQueueBytes != 64 || w1.SpillBytes != 200 {
		t.Errorf("w1 backpressure accounting = %+v", w1)
	}
	if w1.StepSeconds["map-exec"] != 1.5 || w1.StepSeconds["spill-write"] != 0.5 {
		t.Errorf("w1 step seconds = %+v", w1.StepSeconds)
	}
	if w1.Wasted.MapInputRecords != 40 {
		t.Errorf("w1 wasted = %+v", w1.Wasted)
	}
	if w1.StragglerSeconds != 3 {
		t.Errorf("w1 straggler seconds = %g", w1.StragglerSeconds)
	}

	// /metrics on the same mux must append the worker families after the
	// registry's and still be format-valid as a whole.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), goldenWorkerMetrics) {
		t.Errorf("/metrics does not embed the worker families:\n%s", rec.Body.String())
	}
	checkPromText(t, rec.Body.String())
}

// TestWorkerTelemetryRoundTrip drives the worker-side tracer through a
// task's lifecycle and checks the drained event stream: balanced
// begins/ends, abort closing open steps deterministically, and sampler
// events carrying payloads.
func TestWorkerTelemetryRoundTrip(t *testing.T) {
	var nilTel *WorkerTelemetry
	nilTel.StartStep("map-exec", "map").Done() // nil tracer: all no-ops
	nilTel.AbortOpen(OutcomeFault, "x")
	nilTel.RecordSample(ResourceSample{})
	if nilTel.Drain() != nil || nilTel.Pending() != 0 {
		t.Fatal("nil tracer should buffer nothing")
	}

	w := NewWorkerTelemetry()
	clock := w.Clock()
	if clock.Ev != TelClock || clock.S < 0 {
		t.Fatalf("clock event = %+v", clock)
	}

	st := w.StartStep("map-exec", "map")
	sp := w.StartStep("spill-write", "map")
	sp.Done()
	st.Done()
	w.RecordSample(ResourceSample{CPUSeconds: 1, RSSBytes: 2})
	// Two dangling steps killed by an abort (the injected-fault path).
	w.StartStep("segment-merge", "reduce")
	w.StartStep("frame-encode", "reduce")
	w.AbortOpen(OutcomeFault, "injected failure")

	evs := w.Drain()
	if w.Pending() != 0 || w.Drain() != nil {
		t.Error("drain did not empty the buffer")
	}
	open := make(map[int64]string)
	aborted := 0
	for _, ev := range evs {
		switch ev.Ev {
		case TelBegin:
			open[ev.ID] = ev.Name
		case TelEnd:
			if _, ok := open[ev.ID]; !ok {
				t.Errorf("end without begin: %+v", ev)
			}
			delete(open, ev.ID)
			if ev.RealS < 0 {
				t.Errorf("negative step duration: %+v", ev)
			}
			if ev.Outcome == uint8(OutcomeFault) {
				aborted++
				if ev.Err != "injected failure" {
					t.Errorf("aborted step err = %q", ev.Err)
				}
			}
		case TelPoint:
			if PointKind(ev.PKind) == PointSample && ev.Sample == nil {
				t.Errorf("sample point without payload: %+v", ev)
			}
		}
	}
	if len(open) != 0 {
		t.Errorf("dangling begins after abort: %v", open)
	}
	if aborted != 2 {
		t.Errorf("abort closed %d steps, want 2", aborted)
	}

	// Sampler: collects real /proc numbers and stops cleanly.
	dir := t.TempDir()
	w.StartSampler(time.Millisecond, dir, func() int64 { return 7 })
	time.Sleep(5 * time.Millisecond)
	w.StopSampler()
	n := 0
	for _, ev := range w.Drain() {
		if ev.Ev == TelPoint && PointKind(ev.PKind) == PointSample {
			n++
			// CPU can still read 0 this early in the process (userHZ
			// granularity is 10ms); RSS must always be readable.
			if ev.Sample.CPUSeconds < 0 || ev.Sample.RSSBytes <= 0 {
				t.Errorf("sampler read implausible /proc values: %+v", ev.Sample)
			}
			if ev.Sample.QueueBytes != 7 {
				t.Errorf("sampler queue depth = %d, want 7", ev.Sample.QueueBytes)
			}
		}
	}
	if n == 0 {
		t.Error("sampler produced no samples")
	}
}

// TestStepSpanValidation pins the span-kind ladder with KindStep at the
// bottom: steps under tasks validate, steps under jobs do not.
func TestStepSpanValidation(t *testing.T) {
	m := NewMemTracer()
	run, job, task, step := NewSpanID(), NewSpanID(), NewSpanID(), NewSpanID()
	m.Begin(Start{ID: run, Kind: KindRun, Name: "r"})
	m.Begin(Start{ID: job, Parent: run, Kind: KindJob, Name: "j"})
	m.Begin(Start{ID: task, Parent: job, Kind: KindTask, Name: "j", Phase: "map"})
	m.Begin(Start{ID: step, Parent: task, Kind: KindStep, Name: "map-exec", Phase: "map"})
	m.End(End{ID: step, Kind: KindStep, Name: "map-exec", Outcome: OutcomeOK, Worker: "w1"})
	m.End(End{ID: task, Kind: KindTask, Name: "j", Outcome: OutcomeOK})
	m.End(End{ID: job, Kind: KindJob, Name: "j", Outcome: OutcomeOK})
	m.End(End{ID: run, Kind: KindRun, Name: "r", Outcome: OutcomeOK})
	if err := m.Validate(); err != nil {
		t.Fatalf("step-under-task forest rejected: %v", err)
	}

	bad := NewMemTracer()
	run2, job2, step2 := NewSpanID(), NewSpanID(), NewSpanID()
	bad.Begin(Start{ID: run2, Kind: KindRun, Name: "r"})
	bad.Begin(Start{ID: job2, Parent: run2, Kind: KindJob, Name: "j"})
	bad.Begin(Start{ID: step2, Parent: job2, Kind: KindStep, Name: "map-exec"})
	bad.End(End{ID: step2, Kind: KindStep, Name: "map-exec", Outcome: OutcomeOK})
	bad.End(End{ID: job2, Kind: KindJob, Name: "j", Outcome: OutcomeOK})
	bad.End(End{ID: run2, Kind: KindRun, Name: "r", Outcome: OutcomeOK})
	if err := bad.Validate(); err == nil {
		t.Fatal("step directly under a job must fail validation")
	}
}

// TestAtStampedTimestamps pins the At-override plumbing: sinks stamp a
// span's TS from Start/End/Point.At when set — how driver-aligned worker
// events land at their true time instead of frame-arrival time.
func TestAtStampedTimestamps(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	base := Now()
	id := NewSpanID()
	tr.Begin(Start{ID: id, Kind: KindStep, Name: "map-exec", At: base.Add(-50 * time.Millisecond)})
	tr.End(End{ID: id, Kind: KindStep, Name: "map-exec", Outcome: OutcomeOK,
		Worker: "w1", At: base.Add(-10 * time.Millisecond)})
	tr.Point(Point{Span: id, Kind: PointSample, Worker: "w1",
		Sample: &ResourceSample{CPUSeconds: 1}, At: base.Add(-30 * time.Millisecond)})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var ts []float64
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var ev struct {
			Ev     string          `json:"ev"`
			TS     float64         `json:"ts"`
			Sample *ResourceSample `json:"sample"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatal(err)
		}
		ts = append(ts, ev.TS)
		if ev.Ev == "point" && (ev.Sample == nil || ev.Sample.CPUSeconds != 1) {
			t.Errorf("point line lost its sample payload: %s", line)
		}
	}
	if len(ts) != 3 {
		t.Fatalf("got %d lines, want 3", len(ts))
	}
	// begin < point < end, honoring the At overrides (all before "now", so
	// without At they would all collapse to ~the same write instant).
	if !(ts[0] < ts[2] && ts[2] < ts[1]) {
		t.Errorf("At overrides not honored: begin=%g end=%g point=%g", ts[0], ts[1], ts[2])
	}
	d := ts[1] - ts[0]
	if d < 0.035 || d > 0.06 {
		t.Errorf("end-begin spread = %g s, want ~0.04", d)
	}
}
