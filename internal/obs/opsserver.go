package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as typed single-sample
// families, histograms as cumulative _bucket/_sum/_count families plus
// derived _p50/_p90/_p99 quantile gauges (separate families — mixing
// quantile samples into a histogram family is invalid exposition).
// Output is deterministic: names are sorted, floats use the shortest
// round-trip form, so two snapshots of the same state render byte-identical
// text — pinned by the golden test.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, n := range sortedKeys(s.Counters) {
		name := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[n]); err != nil {
			return err
		}
	}
	for _, n := range sortedKeys(s.Gauges) {
		name := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(s.Gauges[n])); err != nil {
			return err
		}
	}
	for _, n := range sortedKeys(s.Histograms) {
		h := s.Histograms[n]
		name := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(b), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			name, h.Count, name, promFloat(h.Sum), name, h.Count); err != nil {
			return err
		}
		for _, q := range [...]struct {
			suffix string
			q      float64
		}{{"p50", 0.5}, {"p90", 0.9}, {"p99", 0.99}} {
			qn := name + "_" + q.suffix
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", qn, qn, promFloat(h.Quantile(q.q))); err != nil {
				return err
			}
		}
	}
	return nil
}

// promFloat formats a float in its shortest round-trip form — deterministic
// and parseable by Prometheus.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// promName maps a registry name onto the Prometheus metric-name alphabet
// [a-zA-Z0-9_:], replacing anything else with '_'.
func promName(n string) string {
	out := []byte(n)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				out[i] = '_'
			}
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// ArchiveLister is the run archive's ops-plane face: the /archive endpoint
// serves whatever it renders. Implemented by *archive.Archive; declared
// here (as a one-method interface) so obs does not import the archive
// package.
type ArchiveLister interface {
	// ListJSON renders the archived record manifests as a JSON array.
	ListJSON() ([]byte, error)
}

// NewOpsMux builds the ops-plane HTTP handler:
//
//	/healthz            liveness probe ("ok")
//	/metrics            Prometheus text exposition of reg (503 when nil),
//	                    followed by the per-worker p3c_worker_* families
//	                    when a WorkerStats sink is attached
//	/runs               JSON array of live + recent run progress snapshots
//	/runs/{id}          one run's snapshot (404 unknown)
//	/workers            JSON array of per-worker telemetry snapshots
//	/archive            JSON array of archived run manifests
//	/debug/pprof/...    the standard runtime profiles
//
// reg, prog, workers and arch may each be nil; the corresponding endpoints
// then report 503. The handler only reads snapshots, so it is safe to
// serve while runs are in flight.
func NewOpsMux(reg *Registry, prog *Progress, workers *WorkerStats, arch ArchiveLister) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		if reg == nil {
			http.Error(w, "metrics registry not configured", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.Snapshot().WritePrometheus(w)
		if workers != nil {
			workers.WritePrometheus(w)
		}
	})
	mux.HandleFunc("GET /workers", func(w http.ResponseWriter, _ *http.Request) {
		if workers == nil {
			http.Error(w, "worker telemetry not configured", http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, workers.Snapshot())
	})
	mux.HandleFunc("GET /runs", func(w http.ResponseWriter, _ *http.Request) {
		if prog == nil {
			http.Error(w, "progress aggregator not configured", http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, prog.Snapshot())
	})
	mux.HandleFunc("GET /runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if prog == nil {
			http.Error(w, "progress aggregator not configured", http.StatusServiceUnavailable)
			return
		}
		id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
		if err != nil {
			http.Error(w, "run id must be an integer", http.StatusBadRequest)
			return
		}
		snap, ok := prog.Run(id)
		if !ok {
			http.Error(w, "no such run", http.StatusNotFound)
			return
		}
		writeJSON(w, snap)
	})
	mux.HandleFunc("GET /archive", func(w http.ResponseWriter, _ *http.Request) {
		if arch == nil {
			http.Error(w, "run archive not configured", http.StatusServiceUnavailable)
			return
		}
		b, err := arch.ListJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// OpsServer is a running ops-plane HTTP server — `p3crun -ops :addr`.
type OpsServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartOps listens on addr (":0" picks a free port) and serves the ops mux
// in a background goroutine until Close.
func StartOps(addr string, reg *Registry, prog *Progress, workers *WorkerStats, arch ArchiveLister) (*OpsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: ops server: %w", err)
	}
	s := &OpsServer{ln: ln, srv: &http.Server{Handler: NewOpsMux(reg, prog, workers, arch)}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (host:port).
func (s *OpsServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and closes the listener.
func (s *OpsServer) Close() error { return s.srv.Close() }
