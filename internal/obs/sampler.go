package obs

import (
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// userHZ is the kernel clock-tick unit of /proc/<pid>/stat CPU fields.
// Linux fixes the userspace-visible value at 100 regardless of the kernel's
// internal HZ, and reading it properly needs sysconf(_SC_CLK_TCK) — cgo —
// so the constant is the portable stdlib-only choice.
const userHZ = 100

// CollectResourceSample takes one snapshot of the calling process: CPU and
// RSS from /proc/self (zero on platforms without procfs — sampling must
// never fail the worker), spill bytes from walking spillDir ("" skips the
// walk), and queue depth from the queue callback (nil reports zero).
func CollectResourceSample(spillDir string, queue func() int64) ResourceSample {
	var s ResourceSample
	s.CPUSeconds = procCPUSeconds()
	s.RSSBytes = procRSSBytes()
	if spillDir != "" {
		s.SpillBytes = dirBytes(spillDir)
	}
	if queue != nil {
		s.QueueBytes = queue()
	}
	return s
}

// procCPUSeconds reads cumulative user+system CPU time from
// /proc/self/stat. The comm field (2) may contain spaces and parentheses,
// so parsing anchors on the *last* ')': the fields after it start at field
// 3 (state), putting utime (field 14) and stime (field 15) at indices 11
// and 12.
func procCPUSeconds() float64 {
	b, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return 0
	}
	line := string(b)
	i := strings.LastIndexByte(line, ')')
	if i < 0 {
		return 0
	}
	fields := strings.Fields(line[i+1:])
	if len(fields) < 13 {
		return 0
	}
	utime, err1 := strconv.ParseInt(fields[11], 10, 64)
	stime, err2 := strconv.ParseInt(fields[12], 10, 64)
	if err1 != nil || err2 != nil {
		return 0
	}
	return float64(utime+stime) / userHZ
}

// procRSSBytes reads the resident set size from /proc/self/statm (field 2,
// in pages).
func procRSSBytes() int64 {
	b, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(b))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * int64(os.Getpagesize())
}

// dirBytes sums the sizes of regular files under dir, ignoring errors —
// spill files come and go while the walk runs, and a sample is a best-effort
// gauge, not an inventory.
func dirBytes(dir string) int64 {
	var total int64
	filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, err := d.Info(); err == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}
