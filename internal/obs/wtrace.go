package obs

import (
	"sort"
	"sync"
	"time"
)

// Worker telemetry event kinds — the wire vocabulary of the multiprocess
// backend's telemetry frames. A worker buffers TelemetryEvents locally and
// flushes them at task boundaries; the driver replays them into the run's
// span stream (TelBegin/TelEnd become KindStep spans under the task-attempt
// span, TelPoint becomes a Point on it) after aligning S to driver time via
// the TelClock reading exchanged at handshake.
const (
	// TelBegin opens a worker-local step span (ID is worker-local).
	TelBegin uint8 = 1 + iota
	// TelEnd closes a worker-local step span.
	TelEnd
	// TelPoint is an instantaneous event (fault point, resource sample).
	TelPoint
	// TelClock carries a bare clock reading (S) for handshake alignment.
	TelClock
)

// TelemetryEvent is one worker-side trace event in wire form. Only the
// fields relevant to Ev are set; S is always seconds since the worker's
// telemetry epoch (its process start), which the driver maps onto its own
// clock. IDs are worker-local — the driver remaps them to process-unique
// SpanIDs when it folds the events into the merged forest.
type TelemetryEvent struct {
	Ev      uint8
	S       float64
	ID      int64  // TelBegin/TelEnd: worker-local span id
	Name    string // TelBegin: step name ("map-exec", "spill-write", …)
	Phase   string // TelBegin/TelPoint: "map" or "reduce"
	Outcome uint8  // TelEnd: Outcome
	Err     string // TelEnd: error text for non-OK outcomes
	RealS   float64
	PKind   uint8 // TelPoint: PointKind
	Seconds float64
	Sample  *ResourceSample // TelPoint with PKind == PointSample
}

// WorkerTelemetry is the in-worker tracer of the multiprocess backend. It
// records step spans and point events into an in-memory buffer that the
// worker's single pipe-writer goroutine drains into telemetry frames at
// task boundaries — the sampler goroutine and the task goroutine never
// touch the pipe themselves. A nil *WorkerTelemetry is a valid no-op
// receiver for every method, so instrumented worker code needs no guards
// beyond holding the possibly-nil handle.
type WorkerTelemetry struct {
	epoch time.Time

	mu     sync.Mutex
	buf    []TelemetryEvent
	nextID int64
	open   map[int64]openStep

	stop chan struct{}
	done chan struct{}
}

// openStep tracks an unclosed step span for AbortOpen.
type openStep struct {
	name   string
	phase  string
	startS float64
}

// NewWorkerTelemetry returns a tracer whose epoch ("S = 0") is the moment
// of the call — worker processes create it at startup, before the
// handshake, so the TelClock reading sent with hello is on the same scale
// as every later event.
func NewWorkerTelemetry() *WorkerTelemetry {
	return &WorkerTelemetry{epoch: Now(), open: make(map[int64]openStep)}
}

// now is seconds since the epoch.
func (w *WorkerTelemetry) now() float64 { return Since(w.epoch).Seconds() }

// Clock returns a TelClock reading taken now. Sent right after hello, it
// gives the driver one (worker-seconds, driver-receive-time) pair to align
// the scales; the residual error is the one-way pipe latency, far below
// the sampler cadence.
func (w *WorkerTelemetry) Clock() TelemetryEvent {
	return TelemetryEvent{Ev: TelClock, S: w.now()}
}

// Step is a handle on an open worker-side step span. The zero Step (from a
// nil tracer) is a no-op.
type Step struct {
	w  *WorkerTelemetry
	id int64
}

// StartStep opens a step span. Steps may overlap freely (a spill interleaves
// with the map record loop); they all hang directly off the task attempt.
func (w *WorkerTelemetry) StartStep(name, phase string) Step {
	if w == nil {
		return Step{}
	}
	w.mu.Lock()
	w.nextID++
	id := w.nextID
	s := w.now()
	w.open[id] = openStep{name: name, phase: phase, startS: s}
	w.buf = append(w.buf, TelemetryEvent{Ev: TelBegin, S: s, ID: id, Name: name, Phase: phase})
	w.mu.Unlock()
	return Step{w: w, id: id}
}

// Done closes the step successfully.
func (st Step) Done() { st.end(OutcomeOK, "") }

// Fail closes the step with the given outcome and error text.
func (st Step) Fail(o Outcome, errText string) { st.end(o, errText) }

func (st Step) end(o Outcome, errText string) {
	w := st.w
	if w == nil {
		return
	}
	w.mu.Lock()
	if op, ok := w.open[st.id]; ok {
		delete(w.open, st.id)
		s := w.now()
		w.buf = append(w.buf, TelemetryEvent{
			Ev: TelEnd, S: s, ID: st.id, Name: op.name, Phase: op.phase,
			Outcome: uint8(o), Err: errText, RealS: s - op.startS,
		})
	}
	w.mu.Unlock()
}

// AbortOpen closes every still-open step with the given outcome — called on
// the worker's death and task-error paths so a flushed buffer never carries
// a dangling begin into the driver's span stream.
func (w *WorkerTelemetry) AbortOpen(o Outcome, errText string) {
	if w == nil {
		return
	}
	w.mu.Lock()
	ids := make([]int64, 0, len(w.open))
	for id := range w.open {
		ids = append(ids, id)
	}
	// Deterministic close order (map iteration is not).
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	s := w.now()
	for _, id := range ids {
		op := w.open[id]
		delete(w.open, id)
		w.buf = append(w.buf, TelemetryEvent{
			Ev: TelEnd, S: s, ID: id, Name: op.name, Phase: op.phase,
			Outcome: uint8(o), Err: errText, RealS: s - op.startS,
		})
	}
	w.mu.Unlock()
}

// PointEvent records an instantaneous event (e.g. the position of an
// injected fault).
func (w *WorkerTelemetry) PointEvent(k PointKind, phase string, seconds float64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.buf = append(w.buf, TelemetryEvent{Ev: TelPoint, S: w.now(), PKind: uint8(k), Phase: phase, Seconds: seconds})
	w.mu.Unlock()
}

// RecordSample records one resource snapshot as a PointSample event.
func (w *WorkerTelemetry) RecordSample(s ResourceSample) {
	if w == nil {
		return
	}
	sample := s
	w.mu.Lock()
	w.buf = append(w.buf, TelemetryEvent{Ev: TelPoint, S: w.now(), PKind: uint8(PointSample), Sample: &sample})
	w.mu.Unlock()
}

// Drain returns the buffered events and empties the buffer — called by the
// pipe-writer goroutine when it assembles a telemetry frame. Returns nil
// when there is nothing to flush (so callers can skip the frame entirely).
func (w *WorkerTelemetry) Drain() []TelemetryEvent {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	out := w.buf
	w.buf = nil
	w.mu.Unlock()
	return out
}

// Pending reports how many events are buffered.
func (w *WorkerTelemetry) Pending() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.buf)
}

// StartSampler launches the resource-sampling goroutine: one immediate
// snapshot (so even sub-interval tasks surface at least one sample), then
// one per interval until StopSampler. spillDir is walked for on-disk spill
// bytes; queue reports the framing layer's buffered byte depth. No-op on a
// nil tracer or when a sampler is already running.
func (w *WorkerTelemetry) StartSampler(interval time.Duration, spillDir string, queue func() int64) {
	if w == nil || interval <= 0 {
		return
	}
	w.mu.Lock()
	if w.stop != nil {
		w.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	w.stop, w.done = stop, done
	w.mu.Unlock()

	go func() {
		defer close(done)
		w.RecordSample(CollectResourceSample(spillDir, queue))
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				w.RecordSample(CollectResourceSample(spillDir, queue))
			}
		}
	}()
}

// StopSampler stops the sampling goroutine and waits for it to exit. Safe
// to call without a running sampler.
func (w *WorkerTelemetry) StopSampler() {
	if w == nil {
		return
	}
	w.mu.Lock()
	stop, done := w.stop, w.done
	w.stop, w.done = nil, nil
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
