package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// goldenMetrics pins the full Prometheus exposition of a known registry
// state byte-for-byte: names sorted, shortest-round-trip floats, cumulative
// buckets, quantile gauges as separate families.
const goldenMetrics = `# TYPE jobs_total counter
jobs_total 3
# TYPE p3c_em_iterations_total counter
p3c_em_iterations_total 4
# TYPE p3c_quality_outliers_total counter
p3c_quality_outliers_total 9
# TYPE records_in counter
records_in 1200
# TYPE p3c_em_active_clusters gauge
p3c_em_active_clusters 3
# TYPE p3c_em_log_likelihood gauge
p3c_em_log_likelihood -38.25
# TYPE p3c_em_resp_entropy gauge
p3c_em_resp_entropy 0.5
# TYPE p3c_quality_cores gauge
p3c_quality_cores 3
# TYPE p3c_quality_outlier_mass gauge
p3c_quality_outlier_mass 0.0045
# TYPE shuffle_fill gauge
shuffle_fill 0.75
# TYPE task_seconds histogram
task_seconds_bucket{le="0.01"} 1
task_seconds_bucket{le="0.1"} 3
task_seconds_bucket{le="1"} 4
task_seconds_bucket{le="+Inf"} 5
task_seconds_sum 12.56
task_seconds_count 5
# TYPE task_seconds_p50 gauge
task_seconds_p50 0.0775
# TYPE task_seconds_p90 gauge
task_seconds_p90 1
# TYPE task_seconds_p99 gauge
task_seconds_p99 1
`

func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("jobs_total").Add(3)
	reg.Counter("records_in").Add(1200)
	reg.Gauge("shuffle_fill").Set(0.75)
	// The algorithm-telemetry families, as the EM fitter and the
	// signature/outlier phases publish them.
	reg.Counter("p3c_em_iterations_total").Add(4)
	reg.Gauge("p3c_em_log_likelihood").Set(-38.25)
	reg.Gauge("p3c_em_resp_entropy").Set(0.5)
	reg.Gauge("p3c_em_active_clusters").Set(3)
	reg.Counter("p3c_quality_outliers_total").Add(9)
	reg.Gauge("p3c_quality_outlier_mass").Set(0.0045)
	reg.Gauge("p3c_quality_cores").Set(3)
	h := reg.Histogram("task_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.1, 0.4, 12.005} {
		h.Observe(v)
	}
	return reg
}

func TestWritePrometheusGolden(t *testing.T) {
	reg := goldenRegistry()
	var a, b bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("two renders of the same state differ:\n%q\n%q", a.String(), b.String())
	}
	if a.String() != goldenMetrics {
		t.Errorf("exposition drifted from golden.\ngot:\n%s\nwant:\n%s", a.String(), goldenMetrics)
	}
	checkPromText(t, a.String())
}

// checkPromText is a hand-rolled Prometheus text-format (0.0.4) validator:
// every line is a comment or a sample, sample names are legal and follow a
// TYPE declaration, histogram buckets are cumulative with a +Inf bucket
// matching _count.
func checkPromText(t *testing.T, text string) {
	t.Helper()
	types := make(map[string]string)
	lastBucket := make(map[string]int64) // family -> last cumulative count
	infSeen := make(map[string]int64)
	counts := make(map[string]int64)
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		lineNo := i + 1
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				continue
			}
			name, typ := fields[2], fields[3]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			if _, dup := types[name]; dup {
				t.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Errorf("line %d: no sample value in %q", lineNo, line)
			continue
		}
		nameAndLabels, value := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Errorf("line %d: unparseable value %q", lineNo, value)
		}
		name := nameAndLabels
		labels := ""
		if b := strings.IndexByte(nameAndLabels, '{'); b >= 0 {
			name, labels = nameAndLabels[:b], nameAndLabels[b:]
			if !strings.HasSuffix(labels, "}") {
				t.Errorf("line %d: unterminated label set %q", lineNo, labels)
			}
		}
		for j, c := range name {
			legal := c == '_' || c == ':' ||
				(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(j > 0 && c >= '0' && c <= '9')
			if !legal {
				t.Errorf("line %d: illegal metric name %q", lineNo, name)
				break
			}
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(name, suffix); ok && types[f] == "histogram" {
				family = f
				break
			}
		}
		if _, ok := types[family]; !ok {
			t.Errorf("line %d: sample %q has no TYPE declaration", lineNo, name)
		}
		if strings.HasSuffix(name, "_bucket") && types[family] == "histogram" {
			le := strings.TrimSuffix(strings.TrimPrefix(labels, `{le="`), `"}`)
			n, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				t.Errorf("line %d: bucket count %q not an integer", lineNo, value)
			}
			if n < lastBucket[family] {
				t.Errorf("line %d: bucket counts not cumulative for %q", lineNo, family)
			}
			lastBucket[family] = n
			if le == "+Inf" {
				infSeen[family] = n
			}
		}
		if strings.HasSuffix(name, "_count") && types[family] == "histogram" {
			counts[family], _ = strconv.ParseInt(value, 10, 64)
		}
	}
	for family, typ := range types {
		if typ != "histogram" {
			continue
		}
		inf, ok := infSeen[family]
		if !ok {
			t.Errorf("histogram %q has no +Inf bucket", family)
			continue
		}
		if counts[family] != inf {
			t.Errorf("histogram %q: _count %d != +Inf bucket %d", family, counts[family], inf)
		}
	}
}

func TestOpsMuxEndpoints(t *testing.T) {
	reg := goldenRegistry()
	prog := NewProgress()
	run := playRun(prog, "p3c-pipeline", OutcomeOK)
	live := NewSpanID()
	prog.Begin(Start{ID: live, Kind: KindRun, Name: "in-flight"})

	srv := httptest.NewServer(NewOpsMux(reg, prog, nil, nil))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK || body != goldenMetrics {
		t.Errorf("/metrics = %d, body drift:\n%s", code, body)
	}

	code, body := get("/runs")
	if code != http.StatusOK {
		t.Fatalf("/runs = %d", code)
	}
	var runs []RunSnapshot
	if err := json.Unmarshal([]byte(body), &runs); err != nil {
		t.Fatalf("/runs not JSON: %v", err)
	}
	if len(runs) != 2 {
		t.Fatalf("/runs returned %d runs, want 2 (one done, one live)", len(runs))
	}

	code, body = get(fmt.Sprintf("/runs/%d", run))
	if code != http.StatusOK {
		t.Fatalf("/runs/{id} = %d", code)
	}
	var one RunSnapshot
	if err := json.Unmarshal([]byte(body), &one); err != nil || one.ID != int64(run) {
		t.Errorf("/runs/{id} payload = %q (err %v)", body, err)
	}

	if code, _ := get("/runs/notanumber"); code != http.StatusBadRequest {
		t.Errorf("/runs/notanumber = %d, want 400", code)
	}
	if code, _ := get("/runs/99999999"); code != http.StatusNotFound {
		t.Errorf("/runs/99999999 = %d, want 404", code)
	}
	if code, body := get("/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ = %d, want 200", code)
	}
}

// fakeLister stands in for *archive.Archive (obs cannot import the archive
// package) on the /archive endpoint.
type fakeLister struct {
	payload string
	err     error
}

func (f fakeLister) ListJSON() ([]byte, error) { return []byte(f.payload), f.err }

func TestOpsMuxArchiveEndpoint(t *testing.T) {
	srv := httptest.NewServer(NewOpsMux(nil, nil, nil, fakeLister{payload: `[{"id":"abc"}]`}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/archive")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(b) != `[{"id":"abc"}]` {
		t.Errorf("/archive = %d %q", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/archive Content-Type = %q", ct)
	}

	broken := httptest.NewServer(NewOpsMux(nil, nil, nil, fakeLister{err: fmt.Errorf("index unreadable")}))
	defer broken.Close()
	resp2, err := http.Get(broken.URL + "/archive")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusInternalServerError {
		t.Errorf("/archive with failing lister = %d, want 500", resp2.StatusCode)
	}
}

func TestOpsMuxUnconfigured(t *testing.T) {
	srv := httptest.NewServer(NewOpsMux(nil, nil, nil, nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/runs", "/runs/1", "/workers", "/archive"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s = %d, want 503", path, resp.StatusCode)
		}
	}
}

func TestStartOps(t *testing.T) {
	srv, err := StartOps("127.0.0.1:0", goldenRegistry(), NewProgress(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz on StartOps server = %d", resp.StatusCode)
	}
}
