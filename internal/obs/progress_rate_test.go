package obs

import "testing"

// TestProgressInstantPhaseRate pins the sub-millisecond guard: a run whose
// wall time is essentially zero must report zero records/sec, not a
// counter-delta divided by a microsecond reading.
func TestProgressInstantPhaseRate(t *testing.T) {
	p := NewProgress()
	run := NewSpanID()
	p.Begin(Start{ID: run, Kind: KindRun, Name: "instant"})
	job := NewSpanID()
	p.Begin(Start{ID: job, Parent: run, Kind: KindJob, Name: "j"})
	p.End(End{ID: job, Kind: KindJob, Name: "j",
		Counters: Counters{MapInputRecords: 1_000_000}})
	p.End(End{ID: run, Kind: KindRun, Name: "instant", RealSeconds: 2e-4})

	snap, ok := p.Run(int64(run))
	if !ok {
		t.Fatal("finished run not retained")
	}
	if snap.Records != 1_000_000 {
		t.Fatalf("Records = %d, want 1000000", snap.Records)
	}
	if snap.RecordsPerSec != 0 {
		t.Fatalf("instant run reports %v records/sec, want 0", snap.RecordsPerSec)
	}

	// A run with a measurable wall time still gets a throughput figure.
	run2 := NewSpanID()
	p.Begin(Start{ID: run2, Kind: KindRun, Name: "normal"})
	job2 := NewSpanID()
	p.Begin(Start{ID: job2, Parent: run2, Kind: KindJob, Name: "j"})
	p.End(End{ID: job2, Kind: KindJob, Name: "j",
		Counters: Counters{MapInputRecords: 500}})
	p.End(End{ID: run2, Kind: KindRun, Name: "normal", RealSeconds: 2})
	snap2, _ := p.Run(int64(run2))
	if snap2.RecordsPerSec != 250 {
		t.Fatalf("normal run reports %v records/sec, want 250", snap2.RecordsPerSec)
	}
}

// TestProgressQualityPoints checks that metric points fold into the run's
// Quality map (latest value per name) and survive into the finished
// snapshot.
func TestProgressQualityPoints(t *testing.T) {
	p := NewProgress()
	run := NewSpanID()
	p.Begin(Start{ID: run, Kind: KindRun, Name: "q"})
	phase := NewSpanID()
	p.Begin(Start{ID: phase, Parent: run, Kind: KindPhase, Name: "em"})
	p.Point(Point{Span: phase, Kind: PointMetric, Name: "em_log_likelihood", Task: 0, Value: -40.5})
	p.Point(Point{Span: phase, Kind: PointMetric, Name: "em_log_likelihood", Task: 1, Value: -38.25})
	p.Point(Point{Span: phase, Kind: PointMetric, Name: "em_active_clusters", Task: 1, Value: 3})

	snap, ok := p.Run(int64(run))
	if !ok {
		t.Fatal("live run not found")
	}
	if got := snap.Quality["em_log_likelihood"]; got != -38.25 {
		t.Fatalf("live quality em_log_likelihood = %v, want -38.25 (latest)", got)
	}
	if got := snap.Quality["em_active_clusters"]; got != 3 {
		t.Fatalf("live quality em_active_clusters = %v, want 3", got)
	}

	p.End(End{ID: phase, Kind: KindPhase, Name: "em", RealSeconds: 1})
	p.End(End{ID: run, Kind: KindRun, Name: "q", RealSeconds: 1})
	final, ok := p.Run(int64(run))
	if !ok {
		t.Fatal("finished run not retained")
	}
	if got := final.Quality["em_log_likelihood"]; got != -38.25 {
		t.Fatalf("finished quality em_log_likelihood = %v, want -38.25", got)
	}

	// A run that emitted no metric points keeps Quality nil (omitted from
	// the JSON payload).
	run2 := NewSpanID()
	p.Begin(Start{ID: run2, Kind: KindRun, Name: "plain"})
	p.End(End{ID: run2, Kind: KindRun, Name: "plain", RealSeconds: 1})
	plain, _ := p.Run(int64(run2))
	if plain.Quality != nil {
		t.Fatalf("plain run Quality = %v, want nil", plain.Quality)
	}
}
