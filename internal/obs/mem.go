package obs

import (
	"fmt"
	"sync"
)

// MemTracer records every event in memory — the test sink. Besides raw
// access it can structurally validate the captured stream: unique span
// IDs, every span closed exactly once with matching identity, parents
// opened before children, and parent kinds strictly shallower than child
// kinds (run > phase > job > task > step).
type MemTracer struct {
	mu     sync.Mutex
	starts []Start
	ends   []End
	points []Point
}

// NewMemTracer returns an empty in-memory tracer.
func NewMemTracer() *MemTracer { return &MemTracer{} }

// Begin implements Tracer.
func (m *MemTracer) Begin(s Start) {
	m.mu.Lock()
	m.starts = append(m.starts, s)
	m.mu.Unlock()
}

// End implements Tracer.
func (m *MemTracer) End(e End) {
	m.mu.Lock()
	m.ends = append(m.ends, e)
	m.mu.Unlock()
}

// Point implements Tracer.
func (m *MemTracer) Point(p Point) {
	m.mu.Lock()
	m.points = append(m.points, p)
	m.mu.Unlock()
}

// Starts returns a copy of the recorded span openings, in arrival order.
func (m *MemTracer) Starts() []Start {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Start(nil), m.starts...)
}

// Ends returns a copy of the recorded span closings, in arrival order.
func (m *MemTracer) Ends() []End {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]End(nil), m.ends...)
}

// Points returns a copy of the recorded point events, in arrival order.
func (m *MemTracer) Points() []Point {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Point(nil), m.points...)
}

// SpansOf returns the openings of the given kind, in arrival order.
func (m *MemTracer) SpansOf(kind SpanKind) []Start {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Start
	for _, s := range m.starts {
		if s.Kind == kind {
			out = append(out, s)
		}
	}
	return out
}

// EndOf returns the closing event of the given span.
func (m *MemTracer) EndOf(id SpanID) (End, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.ends {
		if e.ID == id {
			return e, true
		}
	}
	return End{}, false
}

// StartOf returns the opening event of the given span.
func (m *MemTracer) StartOf(id SpanID) (Start, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.starts {
		if s.ID == id {
			return s, true
		}
	}
	return Start{}, false
}

// Validate checks the structural invariants of the captured stream and
// returns the first violation. A valid stream has: non-zero unique span
// IDs; parents (when set) opened before their children, with a strictly
// shallower kind; every span closed exactly once, with Kind/Name matching
// its opening; and every point event attached to an opened span.
func (m *MemTracer) Validate() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	open := make(map[SpanID]Start, len(m.starts))
	for _, s := range m.starts {
		if s.ID == 0 {
			return fmt.Errorf("obs: span %q opened with zero ID", s.Name)
		}
		if _, dup := open[s.ID]; dup {
			return fmt.Errorf("obs: span ID %d opened twice", s.ID)
		}
		if s.Parent != 0 {
			parent, ok := open[s.Parent]
			if !ok {
				return fmt.Errorf("obs: span %d (%s %q) has unopened parent %d", s.ID, s.Kind, s.Name, s.Parent)
			}
			if parent.Kind >= s.Kind {
				return fmt.Errorf("obs: span %d (%s %q) nested under %s %q — kinds must nest run→phase→job→task→step",
					s.ID, s.Kind, s.Name, parent.Kind, parent.Name)
			}
			if s.Kind == KindStep && parent.Kind != KindTask {
				return fmt.Errorf("obs: step span %d %q nested under %s %q — steps attach to task attempts",
					s.ID, s.Name, parent.Kind, parent.Name)
			}
		}
		open[s.ID] = s
	}
	closed := make(map[SpanID]bool, len(m.ends))
	for _, e := range m.ends {
		s, ok := open[e.ID]
		if !ok {
			return fmt.Errorf("obs: end for unopened span %d (%s %q)", e.ID, e.Kind, e.Name)
		}
		if closed[e.ID] {
			return fmt.Errorf("obs: span %d (%s %q) closed twice", e.ID, e.Kind, e.Name)
		}
		if e.Kind != s.Kind || e.Name != s.Name {
			return fmt.Errorf("obs: span %d closed as (%s %q), opened as (%s %q)", e.ID, e.Kind, e.Name, s.Kind, s.Name)
		}
		closed[e.ID] = true
	}
	for id, s := range open {
		if !closed[id] {
			return fmt.Errorf("obs: span %d (%s %q) never closed", id, s.Kind, s.Name)
		}
	}
	for _, p := range m.points {
		if _, ok := open[p.Span]; !ok {
			return fmt.Errorf("obs: point %s on unopened span %d", p.Kind, p.Span)
		}
	}
	return nil
}

// Reset drops everything recorded so far.
func (m *MemTracer) Reset() {
	m.mu.Lock()
	m.starts, m.ends, m.points = nil, nil, nil
	m.mu.Unlock()
}
