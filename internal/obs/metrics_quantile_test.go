package obs

import "testing"

// TestQuantileEdgeCases pins HistogramSnapshot.Quantile on the degenerate
// shapes the exposition path can feed it: empty histograms, a single
// populated bucket, and all mass in the overflow bucket.
func TestQuantileEdgeCases(t *testing.T) {
	// Empty: no observations, and no bounds at all.
	empty := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []int64{0, 0, 0}}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	unbounded := HistogramSnapshot{Count: 5}
	if got := unbounded.Quantile(0.5); got != 0 {
		t.Fatalf("boundless histogram Quantile(0.5) = %v, want 0", got)
	}

	// Single bucket holding every observation: all quantiles interpolate
	// inside [lo, hi] of that bucket and stay monotone in q.
	single := HistogramSnapshot{
		Bounds: []float64{1, 2, 4},
		Counts: []int64{0, 10, 0, 0},
		Count:  10,
		Sum:    15,
	}
	prev := -1.0
	for _, q := range []float64{0.1, 0.5, 0.9, 1} {
		got := single.Quantile(q)
		if got < 1 || got > 2 {
			t.Fatalf("single-bucket Quantile(%v) = %v, want within (1, 2]", q, got)
		}
		if got < prev {
			t.Fatalf("Quantile not monotone: q=%v gave %v after %v", q, got, prev)
		}
		prev = got
	}
	if got, want := single.Quantile(0.5), 1.5; got != want {
		t.Fatalf("single-bucket median = %v, want %v", got, want)
	}

	// All mass beyond the last bound: the overflow bucket has no upper edge
	// to interpolate toward, so every quantile clamps to the last bound.
	overflow := HistogramSnapshot{
		Bounds: []float64{0.01, 0.1, 1},
		Counts: []int64{0, 0, 0, 7},
		Count:  7,
		Sum:    700,
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := overflow.Quantile(q); got != 1 {
			t.Fatalf("overflow-only Quantile(%v) = %v, want 1 (last bound)", q, got)
		}
	}

	// Out-of-range q clamps instead of panicking or extrapolating.
	if got := single.Quantile(-3); got != single.Quantile(0) {
		t.Fatalf("Quantile(-3) = %v, want clamp to Quantile(0) = %v", got, single.Quantile(0))
	}
	if got := single.Quantile(7); got != single.Quantile(1) {
		t.Fatalf("Quantile(7) = %v, want clamp to Quantile(1) = %v", got, single.Quantile(1))
	}
}
