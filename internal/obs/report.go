package obs

import (
	"fmt"
	"io"
	"sync"
	"text/tabwriter"
)

// ReportCollector aggregates the span stream into an end-of-run report —
// the one-machine equivalent of a Hadoop job-tracker page: a per-phase
// cost breakdown (the shape of the paper's Fig. 7) and a per-job-name
// table of records in/out, shuffle volume, retries, wasted work, and
// simulated vs. real seconds. Attach it via Multi alongside other sinks
// and render with WriteReport once the run finishes.
type ReportCollector struct {
	mu       sync.Mutex
	phases   []End // phase spans, in completion order
	jobs     map[string]*jobAgg
	jobOrder []string // first-completion order
	runs     []End    // run spans, in completion order
	attempts int
	faults   int
	cancels  int
}

// jobAgg accumulates all executions of one job name.
type jobAgg struct {
	runs     int
	counters Counters
	wasted   Counters
	simS     float64
	realS    float64
}

// NewReportCollector returns an empty collector.
func NewReportCollector() *ReportCollector {
	return &ReportCollector{jobs: make(map[string]*jobAgg)}
}

// Begin implements Tracer.
func (r *ReportCollector) Begin(Start) {}

// Point implements Tracer.
func (r *ReportCollector) Point(p Point) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p.Kind == PointCancel {
		r.cancels++
	}
}

// End implements Tracer.
func (r *ReportCollector) End(e End) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch e.Kind {
	case KindRun:
		r.runs = append(r.runs, e)
	case KindPhase:
		r.phases = append(r.phases, e)
	case KindJob:
		agg := r.jobs[e.Name]
		if agg == nil {
			agg = &jobAgg{}
			r.jobs[e.Name] = agg
			r.jobOrder = append(r.jobOrder, e.Name)
		}
		agg.runs++
		agg.counters.Add(e.Counters)
		agg.wasted.Add(e.Wasted)
		agg.simS += e.SimulatedSeconds
		agg.realS += e.RealSeconds
	case KindTask:
		if e.Phase != "shuffle" {
			r.attempts++
		}
		if e.Outcome == OutcomeFault {
			r.faults++
		}
		if e.Outcome == OutcomeCancelled {
			r.cancels++
		}
	}
}

// wastedRecords summarizes discarded work as a record count: map input
// re-read plus reduce values re-consumed by failed attempts.
func wastedRecords(c Counters) int64 {
	return c.MapInputRecords + c.ReduceInputVals
}

// WriteReport renders the collected spans. Safe to call once the traced
// run has finished (concurrent mutation is locked out, but a mid-run
// report shows only completed spans).
func (r *ReportCollector) WriteReport(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	var totalJobs int
	var total jobAgg
	for _, name := range r.jobOrder {
		agg := r.jobs[name]
		totalJobs += agg.runs
		total.counters.Add(agg.counters)
		total.wasted.Add(agg.wasted)
		total.simS += agg.simS
		total.realS += agg.realS
	}
	if _, err := fmt.Fprintf(w,
		"run summary: %d jobs, %d task attempts (%d faulted, %d cancelled), %d retries, %d wasted records, %.3f simulated s, %.3f real s\n",
		totalJobs, r.attempts, r.faults, r.cancels,
		total.counters.TaskRetries, wastedRecords(total.wasted), total.simS, total.realS); err != nil {
		return err
	}

	if len(r.phases) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "\nphase\tmap in\tshuffled B\tretries\tsim s\treal s")
		for _, ph := range r.phases {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.3f\t%.3f\n",
				ph.Name, ph.Counters.MapInputRecords, ph.Counters.ShuffledBytes,
				ph.Retries, ph.SimulatedSeconds, ph.RealSeconds)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\njob\truns\tmap in\tmap out\tred keys\tred vals\tout\tshuffled B\tretries\twasted rec\tsim s\treal s")
	for _, name := range r.jobOrder {
		agg := r.jobs[name]
		c := agg.counters
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.3f\t%.3f\n",
			name, agg.runs, c.MapInputRecords, c.MapOutputRecords,
			c.ReduceInputKeys, c.ReduceInputVals, c.OutputRecords, c.ShuffledBytes,
			c.TaskRetries, wastedRecords(agg.wasted), agg.simS, agg.realS)
	}
	return tw.Flush()
}

// Jobs returns the number of distinct job names collected.
func (r *ReportCollector) Jobs() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.jobs)
}
