package obs

import (
	"fmt"
	"io"
	"sync"
	"text/tabwriter"
)

// ReportCollector aggregates the span stream into an end-of-run report —
// the one-machine equivalent of a Hadoop job-tracker page: a per-phase
// cost breakdown (the shape of the paper's Fig. 7) and a per-job-name
// table of records in/out, shuffle volume, retries, wasted work, and
// simulated vs. real seconds. Attach it via Multi alongside other sinks
// and render with WriteReport once the run finishes.
type ReportCollector struct {
	mu       sync.Mutex
	phases   []End // phase spans, in completion order
	jobs     map[string]*jobAgg
	jobOrder []string // first-completion order
	runs     []End    // run spans, in completion order
	attempts int
	faults   int
	cancels  int
	// taskReal distributes every task-attempt wall time (all job names, all
	// attempts, shuffle included) for the summary quantiles.
	taskReal *Histogram
}

// taskRealBounds covers the microsecond-to-minute range of local task
// attempts; quantiles are bucket-interpolated, so resolution follows these.
var taskRealBounds = []float64{
	1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10, 30, 60,
}

// jobAgg accumulates all executions of one job name.
type jobAgg struct {
	runs     int
	counters Counters
	wasted   Counters
	simS     float64
	realS    float64
	// taskReal distributes the wall time of this job's task attempts.
	taskReal *Histogram
}

func newJobAgg() *jobAgg {
	return &jobAgg{taskReal: newHistogram(taskRealBounds)}
}

// NewReportCollector returns an empty collector.
func NewReportCollector() *ReportCollector {
	return &ReportCollector{
		jobs:     make(map[string]*jobAgg),
		taskReal: newHistogram(taskRealBounds),
	}
}

// Begin implements Tracer.
func (r *ReportCollector) Begin(Start) {}

// Point implements Tracer.
func (r *ReportCollector) Point(p Point) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p.Kind == PointCancel {
		r.cancels++
	}
}

// End implements Tracer.
func (r *ReportCollector) End(e End) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch e.Kind {
	case KindRun:
		r.runs = append(r.runs, e)
	case KindPhase:
		r.phases = append(r.phases, e)
	case KindJob:
		agg := r.jobs[e.Name]
		if agg == nil {
			agg = newJobAgg()
			r.jobs[e.Name] = agg
			r.jobOrder = append(r.jobOrder, e.Name)
		}
		agg.runs++
		agg.counters.Add(e.Counters)
		agg.wasted.Add(e.Wasted)
		agg.simS += e.SimulatedSeconds
		agg.realS += e.RealSeconds
	case KindTask:
		if e.Phase != "shuffle" {
			r.attempts++
			r.taskReal.Observe(e.RealSeconds)
			agg := r.jobs[e.Name]
			if agg == nil {
				agg = newJobAgg()
				r.jobs[e.Name] = agg
				r.jobOrder = append(r.jobOrder, e.Name)
			}
			agg.taskReal.Observe(e.RealSeconds)
		}
		if e.Outcome == OutcomeFault {
			r.faults++
		}
		if e.Outcome == OutcomeCancelled {
			r.cancels++
		}
	}
}

// wastedRecords summarizes discarded work as a record count: map input
// re-read plus reduce values re-consumed by failed attempts.
func wastedRecords(c Counters) int64 {
	return c.MapInputRecords + c.ReduceInputVals
}

// WriteReport renders the collected spans. Safe to call once the traced
// run has finished (concurrent mutation is locked out, but a mid-run
// report shows only completed spans).
func (r *ReportCollector) WriteReport(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	var totalJobs int
	var total jobAgg
	for _, name := range r.jobOrder {
		agg := r.jobs[name]
		totalJobs += agg.runs
		total.counters.Add(agg.counters)
		total.wasted.Add(agg.wasted)
		total.simS += agg.simS
		total.realS += agg.realS
	}
	if _, err := fmt.Fprintf(w,
		"run summary: %d jobs, %d task attempts (%d faulted, %d cancelled), %d retries, %d wasted records, %.3f simulated s, %.3f real s\n",
		totalJobs, r.attempts, r.faults, r.cancels,
		total.counters.TaskRetries, wastedRecords(total.wasted), total.simS, total.realS); err != nil {
		return err
	}
	if ts := r.taskReal.Snapshot(); ts.Count > 0 {
		if _, err := fmt.Fprintf(w, "task wall time: p50 %s  p90 %s  p99 %s\n",
			fmtQuantile(ts, 0.5), fmtQuantile(ts, 0.9), fmtQuantile(ts, 0.99)); err != nil {
			return err
		}
	}

	if len(r.phases) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "\nphase\tmap in\tshuffled B\tretries\tsim s\treal s")
		for _, ph := range r.phases {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.3f\t%.3f\n",
				ph.Name, ph.Counters.MapInputRecords, ph.Counters.ShuffledBytes,
				ph.Retries, ph.SimulatedSeconds, ph.RealSeconds)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\njob\truns\tmap in\tmap out\tred keys\tred vals\tout\tshuffled B\tretries\twasted rec\tsim s\treal s\ttask p50/p90/p99")
	for _, name := range r.jobOrder {
		agg := r.jobs[name]
		c := agg.counters
		ts := agg.taskReal.Snapshot()
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.3f\t%.3f\t%s/%s/%s\n",
			name, agg.runs, c.MapInputRecords, c.MapOutputRecords,
			c.ReduceInputKeys, c.ReduceInputVals, c.OutputRecords, c.ShuffledBytes,
			c.TaskRetries, wastedRecords(agg.wasted), agg.simS, agg.realS,
			fmtQuantile(ts, 0.5), fmtQuantile(ts, 0.9), fmtQuantile(ts, 0.99))
	}
	return tw.Flush()
}

// fmtQuantile renders a bucket-interpolated duration quantile compactly
// (microsecond precision below a second).
func fmtQuantile(h HistogramSnapshot, q float64) string {
	v := h.Quantile(q)
	switch {
	case h.Count == 0:
		return "-"
	case v < 1e-3:
		return fmt.Sprintf("%.0fµs", v*1e6)
	case v < 1:
		return fmt.Sprintf("%.1fms", v*1e3)
	default:
		return fmt.Sprintf("%.2fs", v)
	}
}

// Jobs returns the number of distinct job names collected.
func (r *ReportCollector) Jobs() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.jobs)
}
