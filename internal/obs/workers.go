package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// WorkerStats is a Tracer sink that aggregates the worker-attributed slice
// of the span stream — task-attempt closings, step closings and point
// events carrying a non-empty Worker — into live per-worker state: the data
// behind the ops server's /workers endpoint and the p3c_worker_* Prometheus
// families. Events without a Worker (driver-side spans, in-process
// execution) are ignored, so the sink is harmless on non-multiprocess runs.
type WorkerStats struct {
	mu      sync.Mutex
	workers map[string]*workerAgg
}

// workerAgg accumulates one worker process.
type workerAgg struct {
	attempts, ok, faults, cancels, errors int64
	busySeconds                           float64
	stragglerSeconds                      float64
	stepSeconds                           map[string]float64
	wasted                                Counters

	samples         int64
	last            ResourceSample
	peakRSS, peakQB int64
}

// NewWorkerStats returns an empty aggregator.
func NewWorkerStats() *WorkerStats {
	return &WorkerStats{workers: make(map[string]*workerAgg)}
}

func (ws *WorkerStats) agg(worker string) *workerAgg {
	a := ws.workers[worker]
	if a == nil {
		a = &workerAgg{stepSeconds: make(map[string]float64)}
		ws.workers[worker] = a
	}
	return a
}

// Begin implements Tracer. Openings carry no worker attribution to
// aggregate — attempts are counted at closing, when the outcome is known.
func (ws *WorkerStats) Begin(Start) {}

// End implements Tracer.
func (ws *WorkerStats) End(e End) {
	if e.Worker == "" {
		return
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	a := ws.agg(e.Worker)
	switch e.Kind {
	case KindTask:
		a.attempts++
		a.busySeconds += e.RealSeconds
		a.wasted.Add(e.Wasted)
		switch e.Outcome {
		case OutcomeOK:
			a.ok++
		case OutcomeFault:
			a.faults++
		case OutcomeCancelled:
			a.cancels++
		case OutcomeError:
			a.errors++
		}
	case KindStep:
		a.stepSeconds[e.Name] += e.RealSeconds
	}
}

// Point implements Tracer.
func (ws *WorkerStats) Point(p Point) {
	if p.Worker == "" {
		return
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	a := ws.agg(p.Worker)
	switch p.Kind {
	case PointSample:
		if p.Sample == nil {
			return
		}
		a.samples++
		a.last = *p.Sample
		if p.Sample.RSSBytes > a.peakRSS {
			a.peakRSS = p.Sample.RSSBytes
		}
		if p.Sample.QueueBytes > a.peakQB {
			a.peakQB = p.Sample.QueueBytes
		}
	case PointStraggler:
		a.stragglerSeconds += p.Seconds
	}
}

// WorkerSnapshot is the point-in-time state of one worker — the /workers
// payload element.
type WorkerSnapshot struct {
	Worker           string             `json:"worker"`
	Attempts         int64              `json:"attempts"`
	OK               int64              `json:"ok"`
	Faults           int64              `json:"faults"`
	Cancelled        int64              `json:"cancelled"`
	Errors           int64              `json:"errors"`
	BusySeconds      float64            `json:"busy_s"`
	StragglerSeconds float64            `json:"straggler_s,omitempty"`
	StepSeconds      map[string]float64 `json:"step_s,omitempty"`
	Samples          int64              `json:"samples"`
	CPUSeconds       float64            `json:"cpu_s"`
	RSSBytes         int64              `json:"rss_b"`
	PeakRSSBytes     int64              `json:"peak_rss_b"`
	SpillBytes       int64              `json:"spill_b"`
	QueueBytes       int64              `json:"queue_b"`
	PeakQueueBytes   int64              `json:"peak_queue_b"`
	Wasted           Counters           `json:"wasted"`
}

// Snapshot returns every worker's state, sorted by worker name.
func (ws *WorkerStats) Snapshot() []WorkerSnapshot {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	out := make([]WorkerSnapshot, 0, len(ws.workers))
	for name, a := range ws.workers {
		snap := WorkerSnapshot{
			Worker: name, Attempts: a.attempts, OK: a.ok, Faults: a.faults,
			Cancelled: a.cancels, Errors: a.errors,
			BusySeconds: a.busySeconds, StragglerSeconds: a.stragglerSeconds,
			Samples: a.samples, CPUSeconds: a.last.CPUSeconds,
			RSSBytes: a.last.RSSBytes, PeakRSSBytes: a.peakRSS,
			SpillBytes: a.last.SpillBytes, QueueBytes: a.last.QueueBytes,
			PeakQueueBytes: a.peakQB, Wasted: a.wasted,
		}
		if len(a.stepSeconds) > 0 {
			snap.StepSeconds = make(map[string]float64, len(a.stepSeconds))
			for k, v := range a.stepSeconds {
				snap.StepSeconds[k] = v
			}
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

// WritePrometheus renders the per-worker families in the text exposition
// format. Deterministic: workers and step names are sorted, floats use the
// shortest round-trip form. Empty state renders nothing (a TYPE line with
// no samples is pointless).
func (ws *WorkerStats) WritePrometheus(w io.Writer) error {
	snaps := ws.Snapshot()
	if len(snaps) == 0 {
		return nil
	}
	counter := func(name string, value func(*WorkerSnapshot) string) error {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", name); err != nil {
			return err
		}
		for i := range snaps {
			if _, err := fmt.Fprintf(w, "%s{worker=%q} %s\n", name, snaps[i].Worker, value(&snaps[i])); err != nil {
				return err
			}
		}
		return nil
	}
	gauge := func(name string, value func(*WorkerSnapshot) string) error {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", name); err != nil {
			return err
		}
		for i := range snaps {
			if _, err := fmt.Fprintf(w, "%s{worker=%q} %s\n", name, snaps[i].Worker, value(&snaps[i])); err != nil {
				return err
			}
		}
		return nil
	}
	itoa := func(v int64) string { return fmt.Sprintf("%d", v) }

	if err := counter("p3c_worker_attempts_total", func(s *WorkerSnapshot) string { return itoa(s.Attempts) }); err != nil {
		return err
	}
	if err := counter("p3c_worker_busy_seconds_total", func(s *WorkerSnapshot) string { return promFloat(s.BusySeconds) }); err != nil {
		return err
	}
	if err := counter("p3c_worker_cancelled_total", func(s *WorkerSnapshot) string { return itoa(s.Cancelled) }); err != nil {
		return err
	}
	if err := counter("p3c_worker_cpu_seconds_total", func(s *WorkerSnapshot) string { return promFloat(s.CPUSeconds) }); err != nil {
		return err
	}
	if err := counter("p3c_worker_faults_total", func(s *WorkerSnapshot) string { return itoa(s.Faults) }); err != nil {
		return err
	}
	if err := gauge("p3c_worker_queue_bytes", func(s *WorkerSnapshot) string { return itoa(s.QueueBytes) }); err != nil {
		return err
	}
	if err := gauge("p3c_worker_rss_bytes", func(s *WorkerSnapshot) string { return itoa(s.RSSBytes) }); err != nil {
		return err
	}
	if err := counter("p3c_worker_samples_total", func(s *WorkerSnapshot) string { return itoa(s.Samples) }); err != nil {
		return err
	}
	if err := gauge("p3c_worker_spill_bytes", func(s *WorkerSnapshot) string { return itoa(s.SpillBytes) }); err != nil {
		return err
	}
	// Step seconds carry a second label; emit one family with every
	// (worker, step) pair, both dimensions sorted.
	hasSteps := false
	for i := range snaps {
		if len(snaps[i].StepSeconds) > 0 {
			hasSteps = true
			break
		}
	}
	if hasSteps {
		if _, err := fmt.Fprintf(w, "# TYPE p3c_worker_step_seconds_total counter\n"); err != nil {
			return err
		}
		for i := range snaps {
			steps := make([]string, 0, len(snaps[i].StepSeconds))
			for name := range snaps[i].StepSeconds {
				steps = append(steps, name)
			}
			sort.Strings(steps)
			for _, name := range steps {
				if _, err := fmt.Fprintf(w, "p3c_worker_step_seconds_total{worker=%q,step=%q} %s\n",
					snaps[i].Worker, name, promFloat(snaps[i].StepSeconds[name])); err != nil {
					return err
				}
			}
		}
	}
	return counter("p3c_worker_straggler_seconds_total", func(s *WorkerSnapshot) string { return promFloat(s.StragglerSeconds) })
}
