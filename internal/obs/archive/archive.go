// Package archive is the content-addressed run archive: every traced run
// can be sealed as an immutable record — the JSONL event stream plus a
// manifest binding it to the run's parameters hash, dataset fingerprint,
// backend, spill config, counters and wall/sim seconds — under an ID
// derived from the trace bytes themselves. Records are what `p3ctrace
// -diff` compares and what the ops plane lists at /archive.
//
// Layout under the archive root:
//
//	<root>/index.json             — ordered manifest list (rebuilt on demand)
//	<root>/<id>/trace.jsonl       — the sealed event stream
//	<root>/<id>/manifest.json     — the record's manifest
//
// The ID is the hex prefix of sha256(trace), so sealing the same trace
// twice is idempotent and a record's contents can always be re-verified
// against its name (Verify re-hashes and re-parses the stream, catching
// truncation and bit-rot).
package archive

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"p3cmr/internal/obs"
)

// IDLen is the hex length of a record ID (64 bits of the trace hash —
// plenty for a per-project archive, short enough to type).
const IDLen = 16

// Manifest binds one sealed trace to the run that produced it. Everything
// a diff needs to decide "are these two runs comparable" lives here, so
// listings never have to open the trace itself.
type Manifest struct {
	// ID is the content address: hex prefix of sha256 over the trace bytes.
	ID string `json:"id"`
	// Seq is the record's position in archive order (1-based, assigned at
	// seal time); retention keeps the highest-Seq records.
	Seq int64 `json:"seq"`
	// Name is the run label (the root run span's name).
	Name string `json:"name,omitempty"`
	// CreatedUnix is the seal time.
	CreatedUnix int64 `json:"created_unix"`
	// Backend and Parallelism identify the execution substrate.
	Backend     string `json:"backend,omitempty"`
	Parallelism int    `json:"parallelism,omitempty"`
	// SpillDir/SpillLimitBytes record the out-of-core configuration.
	SpillDir        string `json:"spill_dir,omitempty"`
	SpillLimitBytes int64  `json:"spill_limit_bytes,omitempty"`
	// ParamsHash fingerprints the algorithm parameters; DatasetFingerprint
	// the input file. Two records with equal hashes ran the same experiment.
	ParamsHash         string `json:"params_hash,omitempty"`
	DatasetFingerprint string `json:"dataset_fingerprint,omitempty"`
	// Outcome is the run outcome ("ok", "error", …).
	Outcome string `json:"outcome,omitempty"`
	// WallSeconds/SimulatedSeconds are the run's measured and modeled cost.
	WallSeconds      float64 `json:"wall_s,omitempty"`
	SimulatedSeconds float64 `json:"sim_s,omitempty"`
	// Counters/Wasted are the run's committed and discarded counter totals.
	Counters obs.Counters `json:"counters"`
	Wasted   obs.Counters `json:"wasted,omitempty"`
	// Events is the trace's line count; TraceSHA256/TraceBytes pin the full
	// hash and size for Verify.
	Events      int    `json:"events"`
	TraceSHA256 string `json:"trace_sha256"`
	TraceBytes  int64  `json:"trace_bytes"`
}

// Archive is one archive root. Safe for concurrent use within a process;
// cross-process writers are serialized only by the atomic rename of each
// record directory (last index write wins, and the index self-heals from
// the record dirs).
type Archive struct {
	mu   sync.Mutex
	root string
}

// Open creates the root if needed and returns the archive handle.
func Open(root string) (*Archive, error) {
	if root == "" {
		return nil, errors.New("archive: empty root")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	return &Archive{root: root}, nil
}

// Root returns the archive root directory.
func (a *Archive) Root() string { return a.root }

// validateJSONL checks that r is a well-formed JSONL stream: every line is
// a complete JSON value terminated by '\n'. Returns the line count. A
// final chunk with no newline is a truncated write; an unparseable line is
// corruption — both are sealing/verification failures.
func validateJSONL(r io.Reader) (int, error) {
	br := bufio.NewReader(r)
	n := 0
	for {
		line, err := br.ReadBytes('\n')
		if len(line) > 0 {
			body := bytes.TrimRight(line, "\n")
			if err == nil || errors.Is(err, io.EOF) {
				if len(body) > 0 || err == nil {
					if err != nil {
						return n, fmt.Errorf("line %d: truncated (no trailing newline)", n+1)
					}
					if !json.Valid(body) {
						return n, fmt.Errorf("line %d: invalid JSON", n+1)
					}
					n++
				}
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return n, nil
			}
			return n, err
		}
	}
}

// Seal copies the trace at tracePath into the archive as an immutable
// record, filling in the content-derived manifest fields (ID, Seq,
// CreatedUnix, Events, TraceSHA256, TraceBytes). The run-identity fields
// of m (Name, Backend, ParamsHash, …) are the caller's. Sealing the same
// trace bytes twice returns the existing record unchanged.
func (a *Archive) Seal(tracePath string, m Manifest) (Manifest, error) {
	a.mu.Lock()
	defer a.mu.Unlock()

	src, err := os.Open(tracePath)
	if err != nil {
		return Manifest{}, fmt.Errorf("archive: %w", err)
	}
	defer src.Close()

	// Stage the trace next to its final home so the rename below is atomic,
	// hashing as we copy.
	tmp, err := os.CreateTemp(a.root, ".seal-*")
	if err != nil {
		return Manifest{}, fmt.Errorf("archive: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	h := sha256.New()
	size, err := io.Copy(io.MultiWriter(h, tmp), src)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return Manifest{}, fmt.Errorf("archive: staging trace: %w", err)
	}

	staged, err := os.Open(tmpName)
	if err != nil {
		return Manifest{}, fmt.Errorf("archive: %w", err)
	}
	events, verr := validateJSONL(staged)
	staged.Close()
	if verr != nil {
		return Manifest{}, fmt.Errorf("archive: refusing to seal %s: %v", tracePath, verr)
	}

	id := hex.EncodeToString(h.Sum(nil))[:IDLen]
	if existing, err := a.record(id); err == nil {
		return existing, nil
	}

	recs, _ := a.scan()
	var maxSeq int64
	for _, r := range recs {
		if r.Seq > maxSeq {
			maxSeq = r.Seq
		}
	}
	m.ID = id
	m.Seq = maxSeq + 1
	m.CreatedUnix = obs.Now().Unix()
	m.Events = events
	m.TraceSHA256 = hex.EncodeToString(h.Sum(nil))
	m.TraceBytes = size

	stage := filepath.Join(a.root, ".record-"+id)
	if err := os.MkdirAll(stage, 0o755); err != nil {
		return Manifest{}, fmt.Errorf("archive: %w", err)
	}
	defer os.RemoveAll(stage)
	if err := os.Rename(tmpName, filepath.Join(stage, "trace.jsonl")); err != nil {
		return Manifest{}, fmt.Errorf("archive: %w", err)
	}
	mb, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return Manifest{}, fmt.Errorf("archive: %w", err)
	}
	if err := os.WriteFile(filepath.Join(stage, "manifest.json"), append(mb, '\n'), 0o644); err != nil {
		return Manifest{}, fmt.Errorf("archive: %w", err)
	}
	if err := os.Rename(stage, filepath.Join(a.root, id)); err != nil {
		return Manifest{}, fmt.Errorf("archive: %w", err)
	}

	recs = append(recs, m)
	if err := a.writeIndex(recs); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// record loads one manifest by ID (caller holds the lock or accepts a
// point-in-time read).
func (a *Archive) record(id string) (Manifest, error) {
	b, err := os.ReadFile(filepath.Join(a.root, id, "manifest.json"))
	if err != nil {
		return Manifest{}, fmt.Errorf("archive: record %s: %w", id, err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return Manifest{}, fmt.Errorf("archive: record %s: corrupt manifest: %w", id, err)
	}
	return m, nil
}

// Record returns the manifest for one record ID.
func (a *Archive) Record(id string) (Manifest, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.record(id)
}

// TracePath returns the sealed trace file for one record ID.
func (a *Archive) TracePath(id string) string {
	return filepath.Join(a.root, id, "trace.jsonl")
}

// scan rebuilds the manifest list from the record directories — the
// ground truth the index is a cache of.
func (a *Archive) scan() ([]Manifest, error) {
	ents, err := os.ReadDir(a.root)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	var recs []Manifest
	for _, e := range ents {
		if !e.IsDir() || len(e.Name()) != IDLen {
			continue
		}
		m, err := a.record(e.Name())
		if err != nil {
			continue // half-written record: invisible until its rename lands
		}
		recs = append(recs, m)
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Seq != recs[j].Seq {
			return recs[i].Seq < recs[j].Seq
		}
		return recs[i].ID < recs[j].ID
	})
	return recs, nil
}

func (a *Archive) writeIndex(recs []Manifest) error {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Seq != recs[j].Seq {
			return recs[i].Seq < recs[j].Seq
		}
		return recs[i].ID < recs[j].ID
	})
	b, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	tmp := filepath.Join(a.root, ".index-tmp")
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(a.root, "index.json")); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	return nil
}

// List returns all records in Seq order, rebuilding (and rewriting) the
// index from the record directories so a stale or missing index self-heals.
func (a *Archive) List() ([]Manifest, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	recs, err := a.scan()
	if err != nil {
		return nil, err
	}
	if err := a.writeIndex(recs); err != nil {
		return nil, err
	}
	return recs, nil
}

// ListJSON renders the record list as JSON — the ops plane's /archive
// payload (obs.ArchiveLister).
func (a *Archive) ListJSON() ([]byte, error) {
	recs, err := a.List()
	if err != nil {
		return nil, err
	}
	if recs == nil {
		recs = []Manifest{}
	}
	b, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Verify re-checks one record against its manifest: the trace must still
// hash to TraceSHA256 at TraceBytes length and parse as Events complete
// JSONL lines. Any mismatch (truncation, corruption, tampering) is an
// error naming what drifted.
func (a *Archive) Verify(id string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	m, err := a.record(id)
	if err != nil {
		return err
	}
	f, err := os.Open(a.TracePath(id))
	if err != nil {
		return fmt.Errorf("archive: record %s: %w", id, err)
	}
	defer f.Close()
	h := sha256.New()
	size, err := io.Copy(h, f)
	if err != nil {
		return fmt.Errorf("archive: record %s: %w", id, err)
	}
	if size != m.TraceBytes {
		return fmt.Errorf("archive: record %s: trace is %d bytes, manifest says %d (truncated?)", id, size, m.TraceBytes)
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != m.TraceSHA256 {
		return fmt.Errorf("archive: record %s: trace hash %s does not match manifest %s (corrupt)", id, got[:IDLen], m.TraceSHA256[:IDLen])
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("archive: record %s: %w", id, err)
	}
	events, verr := validateJSONL(f)
	if verr != nil {
		return fmt.Errorf("archive: record %s: %v", id, verr)
	}
	if events != m.Events {
		return fmt.Errorf("archive: record %s: trace has %d events, manifest says %d", id, events, m.Events)
	}
	return nil
}

// Prune applies the retention policy: keep the newest `keep` records (by
// Seq), delete the rest. keep <= 0 keeps everything.
func (a *Archive) Prune(keep int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if keep <= 0 {
		return nil
	}
	recs, err := a.scan()
	if err != nil {
		return err
	}
	if len(recs) <= keep {
		return nil
	}
	drop := recs[:len(recs)-keep]
	for _, m := range drop {
		if err := os.RemoveAll(filepath.Join(a.root, m.ID)); err != nil {
			return fmt.Errorf("archive: prune %s: %w", m.ID, err)
		}
	}
	return a.writeIndex(recs[len(recs)-keep:])
}
