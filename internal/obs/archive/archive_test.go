package archive

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"p3cmr/internal/obs"
)

// writeTrace writes a small well-formed JSONL trace and returns its path.
func writeTrace(t *testing.T, dir, name string, lines ...string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

var demoLines = []string{
	`{"ev":"begin","ts":0,"id":1,"kind":"run","name":"demo"}`,
	`{"ev":"point","ts":0.5,"span":1,"point":"metric","name":"em_log_likelihood","value":-12.5}`,
	`{"ev":"end","ts":1,"id":1,"kind":"run","name":"demo","outcome":"ok","real_s":1}`,
}

func TestArchiveSealRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(filepath.Join(dir, "arch"))
	if err != nil {
		t.Fatal(err)
	}
	trace := writeTrace(t, dir, "run.jsonl", demoLines...)

	in := Manifest{
		Name:               "demo",
		Backend:            "inprocess",
		Parallelism:        4,
		ParamsHash:         "abcd",
		DatasetFingerprint: "ef01",
		Outcome:            "ok",
		WallSeconds:        1.25,
		SimulatedSeconds:   3.5,
		Counters:           obs.Counters{MapInputRecords: 100, OutputRecords: 7},
	}
	m, err := a.Seal(trace, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.ID) != IDLen {
		t.Fatalf("ID %q, want %d hex chars", m.ID, IDLen)
	}
	if m.Seq != 1 || m.Events != len(demoLines) || m.TraceBytes == 0 || m.CreatedUnix == 0 {
		t.Fatalf("content fields not filled: %+v", m)
	}
	if m.Name != "demo" || m.Backend != "inprocess" || m.ParamsHash != "abcd" ||
		m.DatasetFingerprint != "ef01" || m.Counters.MapInputRecords != 100 {
		t.Fatalf("caller fields not preserved: %+v", m)
	}

	// Round-trip: Record re-reads the manifest from disk bit-for-bit.
	got, err := a.Record(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("manifest round-trip drifted:\n got %+v\nwant %+v", got, m)
	}
	if err := a.Verify(m.ID); err != nil {
		t.Fatalf("fresh record fails Verify: %v", err)
	}

	// Content addressing: sealing the same bytes again is idempotent.
	again, err := a.Seal(trace, Manifest{Name: "other-label"})
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != m.ID || again.Seq != m.Seq || again.Name != "demo" {
		t.Fatalf("re-seal not idempotent: %+v vs %+v", again, m)
	}
	recs, err := a.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
}

func TestArchiveSealRejectsTruncatedAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(filepath.Join(dir, "arch"))
	if err != nil {
		t.Fatal(err)
	}

	// A write cut off mid-line (no trailing newline) must not seal.
	trunc := filepath.Join(dir, "trunc.jsonl")
	whole := strings.Join(demoLines, "\n") + "\n"
	if err := os.WriteFile(trunc, []byte(whole[:len(whole)-10]), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Seal(trunc, Manifest{}); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated trace sealed, err=%v", err)
	}

	// A line that is not valid JSON must not seal either.
	corrupt := writeTrace(t, dir, "corrupt.jsonl", demoLines[0], `{"ev":"end",`, demoLines[2])
	if _, err := a.Seal(corrupt, Manifest{}); err == nil || !strings.Contains(err.Error(), "invalid JSON") {
		t.Fatalf("corrupt trace sealed, err=%v", err)
	}
	if recs, _ := a.List(); len(recs) != 0 {
		t.Fatalf("rejected seals left %d records behind", len(recs))
	}
}

func TestArchiveVerifyCatchesPostSealDamage(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(filepath.Join(dir, "arch"))
	if err != nil {
		t.Fatal(err)
	}
	trace := writeTrace(t, dir, "run.jsonl", demoLines...)
	m, err := a.Seal(trace, Manifest{Name: "demo"})
	if err != nil {
		t.Fatal(err)
	}

	sealed := a.TracePath(m.ID)
	orig, err := os.ReadFile(sealed)
	if err != nil {
		t.Fatal(err)
	}

	// Truncation after sealing: size mismatch.
	if err := os.WriteFile(sealed, orig[:len(orig)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(m.ID); err == nil || !strings.Contains(err.Error(), "bytes") {
		t.Fatalf("Verify missed truncation: %v", err)
	}

	// Same-length bit flip: hash mismatch.
	flipped := append([]byte(nil), orig...)
	flipped[len(flipped)/2] ^= 0x01
	if err := os.WriteFile(sealed, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(m.ID); err == nil || !strings.Contains(err.Error(), "hash") {
		t.Fatalf("Verify missed corruption: %v", err)
	}

	// Restored bytes verify clean again.
	if err := os.WriteFile(sealed, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(m.ID); err != nil {
		t.Fatalf("restored record fails Verify: %v", err)
	}
}

func TestArchiveIndexOrderAndPrune(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(filepath.Join(dir, "arch"))
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 4; i++ {
		// Vary the trace bytes so each seal gets its own content address.
		trace := writeTrace(t, dir, "run.jsonl", demoLines[0],
			`{"ev":"point","ts":1,"span":1,"point":"metric","name":"n","value":`+string(rune('0'+i))+`}`,
			demoLines[2])
		m, err := a.Seal(trace, Manifest{Name: "run"})
		if err != nil {
			t.Fatal(err)
		}
		if m.Seq != int64(i+1) {
			t.Fatalf("seal %d got Seq %d", i, m.Seq)
		}
		ids = append(ids, m.ID)
	}

	// Index self-heals: delete it, List still finds everything in order.
	if err := os.Remove(filepath.Join(a.Root(), "index.json")); err != nil {
		t.Fatal(err)
	}
	recs, err := a.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	for i, r := range recs {
		if r.ID != ids[i] {
			t.Fatalf("index order: pos %d = %s, want %s", i, r.ID, ids[i])
		}
	}

	// Retention: keep the newest 2, oldest 2 go away (dirs included).
	if err := a.Prune(2); err != nil {
		t.Fatal(err)
	}
	recs, err = a.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].ID != ids[2] || recs[1].ID != ids[3] {
		t.Fatalf("prune kept wrong records: %+v", recs)
	}
	if _, err := os.Stat(filepath.Join(a.Root(), ids[0])); !os.IsNotExist(err) {
		t.Fatalf("pruned record dir still present: %v", err)
	}

	// ListJSON is the ops-plane payload: valid JSON array of manifests.
	b, err := a.ListJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.TrimSpace(string(b)), "[") || !strings.Contains(string(b), ids[3]) {
		t.Fatalf("ListJSON payload: %s", b)
	}
}
