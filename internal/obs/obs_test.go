package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCountersStringCoversEveryField(t *testing.T) {
	c := Counters{
		MapInputRecords:  1,
		MapOutputRecords: 2,
		CombineInput:     3,
		CombineOutput:    4,
		ReduceInputKeys:  5,
		ReduceInputVals:  6,
		OutputRecords:    7,
		ShuffledBytes:    8,
		TaskRetries:      9,
	}
	got := c.String()
	want := "mapIn=1 mapOut=2 combIn=3 combOut=4 redKeys=5 redVals=6 out=7 shuffledB=8 retries=9"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestCountersAddSub(t *testing.T) {
	a := Counters{MapInputRecords: 10, ShuffledBytes: 100, TaskRetries: 2}
	b := Counters{MapInputRecords: 3, ShuffledBytes: 40, TaskRetries: 1}
	sum := a
	sum.Add(b)
	if sum.MapInputRecords != 13 || sum.ShuffledBytes != 140 || sum.TaskRetries != 3 {
		t.Fatalf("Add: got %+v", sum)
	}
	sum.Sub(b)
	if sum != a {
		t.Fatalf("Sub did not invert Add: got %+v, want %+v", sum, a)
	}
}

func TestMultiFiltersNilAndFansOut(t *testing.T) {
	if Multi() != nil {
		t.Fatal("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi(nil, nil) should be nil")
	}
	m := NewMemTracer()
	if got := Multi(nil, m, nil); got != Tracer(m) {
		t.Fatalf("single non-nil sink should be returned unwrapped, got %T", got)
	}
	a, b := NewMemTracer(), NewMemTracer()
	fan := Multi(a, nil, b)
	id := NewSpanID()
	fan.Begin(Start{ID: id, Kind: KindRun, Name: "r"})
	fan.Point(Point{Span: id, Kind: PointRetry})
	fan.End(End{ID: id, Kind: KindRun, Name: "r"})
	for i, m := range []*MemTracer{a, b} {
		if len(m.Starts()) != 1 || len(m.Ends()) != 1 || len(m.Points()) != 1 {
			t.Fatalf("sink %d missed events: %d/%d/%d", i, len(m.Starts()), len(m.Ends()), len(m.Points()))
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("sink %d: %v", i, err)
		}
	}
}

func TestMemTracerValidate(t *testing.T) {
	// A well-formed run → phase → job → task stream.
	m := NewMemTracer()
	run, phase, job, task := NewSpanID(), NewSpanID(), NewSpanID(), NewSpanID()
	m.Begin(Start{ID: run, Kind: KindRun, Name: "r"})
	m.Begin(Start{ID: phase, Parent: run, Kind: KindPhase, Name: "p"})
	m.Begin(Start{ID: job, Parent: phase, Kind: KindJob, Name: "j"})
	m.Begin(Start{ID: task, Parent: job, Kind: KindTask, Name: "j", Task: 0, Phase: "map"})
	m.Point(Point{Span: task, Kind: PointStraggler, Seconds: 1})
	m.End(End{ID: task, Kind: KindTask, Name: "j", Task: 0, Phase: "map"})
	m.End(End{ID: job, Kind: KindJob, Name: "j"})
	m.End(End{ID: phase, Kind: KindPhase, Name: "p"})
	m.End(End{ID: run, Kind: KindRun, Name: "r"})
	if err := m.Validate(); err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}

	bad := []struct {
		name  string
		build func(m *MemTracer)
	}{
		{"zero id", func(m *MemTracer) {
			m.Begin(Start{Kind: KindRun, Name: "r"})
		}},
		{"duplicate id", func(m *MemTracer) {
			id := NewSpanID()
			m.Begin(Start{ID: id, Kind: KindRun})
			m.Begin(Start{ID: id, Kind: KindRun})
		}},
		{"unopened parent", func(m *MemTracer) {
			m.Begin(Start{ID: NewSpanID(), Parent: SpanID(999999), Kind: KindJob})
		}},
		{"inverted nesting", func(m *MemTracer) {
			job, run := NewSpanID(), NewSpanID()
			m.Begin(Start{ID: job, Kind: KindJob, Name: "j"})
			m.Begin(Start{ID: run, Parent: job, Kind: KindRun, Name: "r"})
		}},
		{"never closed", func(m *MemTracer) {
			m.Begin(Start{ID: NewSpanID(), Kind: KindRun, Name: "r"})
		}},
		{"closed twice", func(m *MemTracer) {
			id := NewSpanID()
			m.Begin(Start{ID: id, Kind: KindRun, Name: "r"})
			m.End(End{ID: id, Kind: KindRun, Name: "r"})
			m.End(End{ID: id, Kind: KindRun, Name: "r"})
		}},
		{"identity mismatch", func(m *MemTracer) {
			id := NewSpanID()
			m.Begin(Start{ID: id, Kind: KindRun, Name: "r"})
			m.End(End{ID: id, Kind: KindJob, Name: "r"})
		}},
		{"point on unopened span", func(m *MemTracer) {
			m.Point(Point{Span: SpanID(999999), Kind: PointFault})
		}},
	}
	for _, tc := range bad {
		m := NewMemTracer()
		tc.build(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid stream", tc.name)
		}
	}
}

func TestMetricsConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			g := r.Gauge("g")
			h := r.Histogram("h", []float64{1, 10})
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(0.5)
				h.Observe(float64(i % 20))
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap.Counters["c"]; got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := snap.Gauges["g"]; got != workers*per*0.5 {
		t.Errorf("gauge = %g, want %g", got, workers*per*0.5)
	}
	h := snap.Histograms["h"]
	if h.Count != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count, workers*per)
	}
	var inBuckets int64
	for _, c := range h.Counts {
		inBuckets += c
	}
	if inBuckets != h.Count {
		t.Errorf("bucket counts sum to %d, want %d", inBuckets, h.Count)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	want := []int64{2, 2, 1, 1} // ≤1: {0.5, 1}; ≤10: {5, 10}; ≤100: {50}; overflow: {1000}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Sum != 0.5+1+5+10+50+1000 {
		t.Errorf("sum = %g", s.Sum)
	}
}

func TestSnapshotWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_count").Add(2)
	r.Counter("a_count").Add(1)
	r.Gauge("z_gauge").Set(1.5)
	r.Histogram("h", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "a_count 1") || !strings.HasPrefix(lines[1], "b_count 2") {
		t.Errorf("counters not sorted:\n%s", out)
	}
}

// TestJSONLRoundTrip checks that every emitted line parses as JSON and
// that identity and payload fields survive the trip.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	job, task := NewSpanID(), NewSpanID()
	tr.Begin(Start{ID: job, Kind: KindJob, Name: "j"})
	tr.Begin(Start{ID: task, Parent: job, Kind: KindTask, Name: "j", Task: 0, Attempt: 1, Phase: "map"})
	tr.Point(Point{Span: task, Kind: PointFault, Name: "j", Task: 0, Attempt: 1, Phase: "combine"})
	tr.End(End{ID: task, Kind: KindTask, Name: "j", Task: 0, Attempt: 1, Phase: "map",
		Outcome: OutcomeFault, Err: "injected", RealSeconds: 0.25,
		Wasted: Counters{MapInputRecords: 7}})
	tr.End(End{ID: job, Kind: KindJob, Name: "j", Outcome: OutcomeOK,
		Counters: Counters{MapInputRecords: 7, OutputRecords: 3}, Retries: 1})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var lines []map[string]any
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("unparseable line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5", len(lines))
	}
	// Task span begin: task 0 must be present despite being zero-valued.
	if v, ok := lines[1]["task"]; !ok || v.(float64) != 0 {
		t.Errorf("task begin line lost task=0: %v", lines[1])
	}
	// Job begin: no task field at all.
	if _, ok := lines[0]["task"]; ok {
		t.Errorf("job begin line has a task field: %v", lines[0])
	}
	// Point line carries the combine phase.
	if lines[2]["point"] != "fault" || lines[2]["phase"] != "combine" {
		t.Errorf("point line: %v", lines[2])
	}
	// Fault end has wasted counters but no committed counters.
	if _, ok := lines[3]["counters"]; ok {
		t.Errorf("fault end should omit zero counters: %v", lines[3])
	}
	if w, ok := lines[3]["wasted"].(map[string]any); !ok || w["mapIn"].(float64) != 7 {
		t.Errorf("fault end lost wasted counters: %v", lines[3])
	}
	if lines[3]["outcome"] != "fault" || lines[3]["err"] != "injected" {
		t.Errorf("fault end outcome/err: %v", lines[3])
	}
	// Job end keeps counters and retries.
	if c, ok := lines[4]["counters"].(map[string]any); !ok || c["out"].(float64) != 3 {
		t.Errorf("job end counters: %v", lines[4])
	}
	if lines[4]["retries"].(float64) != 1 {
		t.Errorf("job end retries: %v", lines[4])
	}
	// Timestamps are monotonically non-decreasing.
	prev := -1.0
	for i, m := range lines {
		ts := m["ts"].(float64)
		if ts < prev {
			t.Errorf("line %d: ts %g < previous %g", i, ts, prev)
		}
		prev = ts
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errShort
	}
	f.n--
	return len(p), nil
}

var errShort = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "short write" }

func TestJSONLStickyError(t *testing.T) {
	tr := NewJSONLTracer(&failWriter{n: 0})
	for i := 0; i < 2000; i++ { // enough to overflow the 4k bufio buffer
		tr.Begin(Start{ID: NewSpanID(), Kind: KindJob, Name: "jjjjjjjjjjjjjjjjjjjjjjjj"})
	}
	if tr.Close() == nil {
		t.Fatal("Close should surface the write error")
	}
}

func TestReportCollector(t *testing.T) {
	r := NewReportCollector()
	run, phase, job := NewSpanID(), NewSpanID(), NewSpanID()
	r.Begin(Start{ID: run, Kind: KindRun, Name: "r"})
	r.Begin(Start{ID: phase, Parent: run, Kind: KindPhase, Name: "histograms"})
	r.Begin(Start{ID: job, Parent: phase, Kind: KindJob, Name: "histo-job"})
	// Two attempts of task 0: one faulted, one succeeded.
	t0a, t0b := NewSpanID(), NewSpanID()
	r.Begin(Start{ID: t0a, Parent: job, Kind: KindTask, Name: "histo-job", Task: 0, Phase: "map"})
	r.End(End{ID: t0a, Kind: KindTask, Name: "histo-job", Task: 0, Phase: "map",
		Outcome: OutcomeFault, Wasted: Counters{MapInputRecords: 50}})
	r.Begin(Start{ID: t0b, Parent: job, Kind: KindTask, Name: "histo-job", Task: 0, Attempt: 1, Phase: "map"})
	r.End(End{ID: t0b, Kind: KindTask, Name: "histo-job", Task: 0, Attempt: 1, Phase: "map", Outcome: OutcomeOK})
	r.End(End{ID: job, Kind: KindJob, Name: "histo-job", Outcome: OutcomeOK,
		Counters: Counters{MapInputRecords: 100, OutputRecords: 10, TaskRetries: 1},
		Wasted:   Counters{MapInputRecords: 50}, Retries: 1, SimulatedSeconds: 8})
	r.End(End{ID: phase, Kind: KindPhase, Name: "histograms", Counters: Counters{MapInputRecords: 100}, Retries: 1, SimulatedSeconds: 8})
	r.End(End{ID: run, Kind: KindRun, Name: "r"})

	if r.Jobs() != 1 {
		t.Fatalf("Jobs() = %d, want 1", r.Jobs())
	}
	var buf bytes.Buffer
	if err := r.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"1 jobs", "2 task attempts", "1 faulted", "1 retries", "50 wasted records",
		"histograms", "histo-job",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
