package obs

import (
	"fmt"
	"testing"
)

// playRun feeds one complete synthetic run through p: two phases with one
// job each, the first job running two tasks (one of which faults once).
// Returns the run span ID.
func playRun(p *Progress, name string, outcome Outcome) SpanID {
	run := NewSpanID()
	p.Begin(Start{ID: run, Kind: KindRun, Name: name})

	ph1 := NewSpanID()
	p.Begin(Start{ID: ph1, Parent: run, Kind: KindPhase, Name: "histograms"})
	job := NewSpanID()
	p.Begin(Start{ID: job, Parent: ph1, Kind: KindJob, Name: "hist-job"})

	t1 := NewSpanID()
	p.Begin(Start{ID: t1, Parent: job, Kind: KindTask, Name: "hist-job", Task: 0, Attempt: 0, Phase: "map"})
	p.Point(Point{Span: t1, Kind: PointFault, Name: "hist-job", Task: 0, Phase: "map"})
	p.End(End{ID: t1, Kind: KindTask, Name: "hist-job", Task: 0, Phase: "map", Outcome: OutcomeFault, RealSeconds: 0.01})

	t2 := NewSpanID()
	p.Begin(Start{ID: t2, Parent: job, Kind: KindTask, Name: "hist-job", Task: 0, Attempt: 1, Phase: "map"})
	p.End(End{ID: t2, Kind: KindTask, Name: "hist-job", Task: 0, Attempt: 1, Phase: "map", Outcome: OutcomeOK, RealSeconds: 0.02})

	// Shuffle pseudo-task: must not count toward task totals.
	ts := NewSpanID()
	p.Begin(Start{ID: ts, Parent: job, Kind: KindTask, Name: "hist-job", Task: -1, Phase: "shuffle"})
	p.End(End{ID: ts, Kind: KindTask, Name: "hist-job", Task: -1, Phase: "shuffle", Outcome: OutcomeOK})

	p.End(End{ID: job, Kind: KindJob, Name: "hist-job", Outcome: OutcomeOK,
		Counters: Counters{MapInputRecords: 100, ReduceInputVals: 40}, Retries: 1})
	p.End(End{ID: ph1, Kind: KindPhase, Name: "histograms", Outcome: OutcomeOK, RealSeconds: 2})

	ph2 := NewSpanID()
	p.Begin(Start{ID: ph2, Parent: run, Kind: KindPhase, Name: "core-generation"})
	p.End(End{ID: ph2, Kind: KindPhase, Name: "core-generation", Outcome: OutcomeOK, RealSeconds: 6})

	p.End(End{ID: run, Kind: KindRun, Name: name, Outcome: outcome, RealSeconds: 8})
	return run
}

func TestProgressCountsAndRetention(t *testing.T) {
	p := NewProgress()
	run := playRun(p, "p3c-pipeline", OutcomeOK)

	snaps := p.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("Snapshot() returned %d runs, want 1", len(snaps))
	}
	s := snaps[0]
	if s.ID != int64(run) || s.Active || s.Outcome != "ok" {
		t.Fatalf("completed run snapshot = %+v", s)
	}
	if s.Jobs != 1 || s.JobsDone != 1 {
		t.Errorf("jobs = %d/%d, want 1/1", s.JobsDone, s.Jobs)
	}
	if s.Tasks != 2 || s.TasksDone != 2 {
		t.Errorf("tasks = %d/%d, want 2/2 (shuffle excluded)", s.TasksDone, s.Tasks)
	}
	if s.Faults != 1 || s.Retries != 1 {
		t.Errorf("faults=%d retries=%d, want 1/1", s.Faults, s.Retries)
	}
	if s.Records != 140 {
		t.Errorf("records = %d, want 140", s.Records)
	}
	if s.ElapsedSeconds != 8 {
		t.Errorf("elapsed = %g, want the run End's 8", s.ElapsedSeconds)
	}
	if s.RecordsPerSec != 140.0/8 {
		t.Errorf("records/sec = %g, want 17.5", s.RecordsPerSec)
	}
	if len(s.Phases) != 2 || !s.Phases[0].Done || s.Phases[0].RealSeconds != 2 {
		t.Errorf("phases = %+v", s.Phases)
	}

	if _, ok := p.Run(int64(run)); !ok {
		t.Errorf("Run(%d) not found after completion", run)
	}
	if _, ok := p.Run(99999999); ok {
		t.Errorf("Run(bogus) unexpectedly found")
	}

	// Retention: only the most recent defaultRetainRuns completed runs stay.
	for i := 0; i < defaultRetainRuns+5; i++ {
		playRun(p, fmt.Sprintf("r%d", i), OutcomeOK)
	}
	if got := len(p.Snapshot()); got != defaultRetainRuns {
		t.Errorf("retained %d completed runs, want %d", got, defaultRetainRuns)
	}
}

func TestProgressETA(t *testing.T) {
	p := NewProgress()

	// No plan, no profile: ETA unknown.
	run := NewSpanID()
	p.Begin(Start{ID: run, Kind: KindRun, Name: "noplan"})
	if s, _ := p.Run(int64(run)); s.ETASeconds != -1 {
		t.Errorf("ETA with no plan = %g, want -1", s.ETASeconds)
	}
	p.End(End{ID: run, Kind: KindRun, Name: "noplan", Outcome: OutcomeError, Err: "boom"})

	// Plan-based: one of four planned phases finished.
	p.SetPhasePlan("planned", []string{"a", "b", "c", "d"})
	run2 := NewSpanID()
	p.Begin(Start{ID: run2, Kind: KindRun, Name: "planned"})
	ph := NewSpanID()
	p.Begin(Start{ID: ph, Parent: run2, Kind: KindPhase, Name: "a"})
	p.End(End{ID: ph, Kind: KindPhase, Name: "a", Outcome: OutcomeOK, RealSeconds: 1})
	s, ok := p.Run(int64(run2))
	if !ok || !s.Active {
		t.Fatalf("live run not found: %+v", s)
	}
	if s.ETASeconds < 0 {
		t.Errorf("plan-based ETA = %g, want >= 0", s.ETASeconds)
	}
	p.End(End{ID: run2, Kind: KindRun, Name: "planned", Outcome: OutcomeOK, RealSeconds: 4})

	// Profile-based: a second run of a name that completed OK uses the
	// learned per-phase split even without a plan.
	playRun(p, "profiled", OutcomeOK)
	run3 := NewSpanID()
	p.Begin(Start{ID: run3, Kind: KindRun, Name: "profiled"})
	ph3 := NewSpanID()
	p.Begin(Start{ID: ph3, Parent: run3, Kind: KindPhase, Name: "histograms"})
	p.End(End{ID: ph3, Kind: KindPhase, Name: "histograms", Outcome: OutcomeOK, RealSeconds: 2})
	if s, _ := p.Run(int64(run3)); s.ETASeconds < 0 {
		t.Errorf("profile-based ETA = %g, want >= 0", s.ETASeconds)
	}

	// A failed run must not overwrite the learned profile.
	playRun(p, "profiled", OutcomeError)
	if _, ok := p.profiles["profiled"]; !ok {
		t.Errorf("profile for %q lost after failed run", "profiled")
	}
}

func TestProgressDetachedSpans(t *testing.T) {
	p := NewProgress()
	// A job traced without any enclosing run span lands in the synthetic
	// detached bucket.
	job := NewSpanID()
	p.Begin(Start{ID: job, Kind: KindJob, Name: "standalone"})
	tk := NewSpanID()
	p.Begin(Start{ID: tk, Parent: job, Kind: KindTask, Name: "standalone", Task: 0, Phase: "map"})
	p.End(End{ID: tk, Kind: KindTask, Name: "standalone", Task: 0, Phase: "map", Outcome: OutcomeOK})
	p.End(End{ID: job, Kind: KindJob, Name: "standalone", Outcome: OutcomeOK,
		Counters: Counters{MapInputRecords: 7}})

	snaps := p.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("Snapshot() returned %d runs, want 1 detached bucket", len(snaps))
	}
	s := snaps[0]
	if s.ID != int64(detachedRunID) || s.Name != "(detached)" || !s.Active {
		t.Fatalf("detached bucket = %+v", s)
	}
	if s.Jobs != 1 || s.JobsDone != 1 || s.Tasks != 1 || s.TasksDone != 1 {
		t.Errorf("detached counts = %+v", s)
	}
	if s.Records != 7 {
		t.Errorf("detached records = %d, want 7", s.Records)
	}
}
