package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// FlightRecorder is a bounded-memory tracer for huge runs where full JSONL
// tracing is too heavy: it keeps the last Limit events in a ring buffer
// and, separately, *every* critical event (fault/retry/straggler/cancel
// points and non-OK span closings) evicted from the ring — so a post-mortem
// always contains the complete failure history plus the freshest window of
// ordinary activity, no matter how long the run was.
//
// When a run span ends with a permanent failure (outcome error), the
// recorder automatically dumps a JSONL post-mortem through the writer
// factory installed with SetDump. The dump format is the JSONLTracer wire
// format, so cmd/p3ctrace analyzes post-mortems like any trace (timestamps
// are capture times relative to the recorder's creation).
type FlightRecorder struct {
	mu    sync.Mutex
	limit int
	start time.Time
	seq   int64

	ring []flightEvent // capacity limit; circular once full
	next int           // slot the next event overwrites when full
	crit []flightEvent // critical events evicted from the ring, in order

	dump    func(run End) (io.WriteCloser, error)
	dumpErr error
	dumps   int
}

// flightEvent is one captured event with its arrival order and timestamp.
type flightEvent struct {
	seq   int64
	ts    float64
	ev    string // "begin" | "end" | "point"
	start Start
	end   End
	point Point
}

// DefaultFlightLimit is the ring size used when NewFlightRecorder gets a
// non-positive limit.
const DefaultFlightLimit = 4096

// NewFlightRecorder returns a recorder retaining the last limit events
// (DefaultFlightLimit when limit <= 0).
func NewFlightRecorder(limit int) *FlightRecorder {
	if limit <= 0 {
		limit = DefaultFlightLimit
	}
	return &FlightRecorder{limit: limit, start: Now()}
}

// SetDump installs the post-mortem writer factory: open is called with the
// failing run's End event when a run span closes with outcome error, and
// the retained events are written to it as JSONL. Errors are sticky and
// reported by DumpErr — recording must never fail the traced computation.
func (f *FlightRecorder) SetDump(open func(run End) (io.WriteCloser, error)) {
	f.mu.Lock()
	f.dump = open
	f.mu.Unlock()
}

// critical reports whether an event must survive ring eviction: every
// fault/retry/straggler/cancel point and every span that ended in something
// other than success. Periodic resource samples are ordinary activity — a
// long run emits them forever, so retaining them would unbound the critical
// list.
func (e *flightEvent) critical() bool {
	switch e.ev {
	case "point":
		return e.point.Kind != PointSample
	case "end":
		return e.end.Outcome != OutcomeOK
	}
	return false
}

// record appends one event to the ring, spilling the evicted event into the
// critical list when it must be retained. at, when non-zero, is the event's
// aligned capture time (worker telemetry); zero means capture-now. Caller
// holds f.mu.
func (f *FlightRecorder) record(e flightEvent, at time.Time) {
	e.seq = f.seq
	f.seq++
	if at.IsZero() {
		e.ts = Since(f.start).Seconds()
	} else {
		e.ts = at.Sub(f.start).Seconds()
	}
	if len(f.ring) < f.limit {
		f.ring = append(f.ring, e)
		return
	}
	if old := &f.ring[f.next]; old.critical() {
		f.crit = append(f.crit, *old)
	}
	f.ring[f.next] = e
	f.next = (f.next + 1) % f.limit
}

// Begin implements Tracer.
func (f *FlightRecorder) Begin(s Start) {
	f.mu.Lock()
	f.record(flightEvent{ev: "begin", start: s}, s.At)
	f.mu.Unlock()
}

// End implements Tracer. A run span ending with outcome error triggers the
// automatic post-mortem dump.
func (f *FlightRecorder) End(e End) {
	f.mu.Lock()
	f.record(flightEvent{ev: "end", end: e}, e.At)
	dump := f.dump
	failed := e.Kind == KindRun && e.Outcome != OutcomeOK
	f.mu.Unlock()
	if failed && dump != nil {
		f.dumpTo(dump, e)
	}
}

// Point implements Tracer.
func (f *FlightRecorder) Point(p Point) {
	f.mu.Lock()
	f.record(flightEvent{ev: "point", point: p}, p.At)
	f.mu.Unlock()
}

func (f *FlightRecorder) dumpTo(open func(End) (io.WriteCloser, error), run End) {
	w, err := open(run)
	if err != nil {
		f.setDumpErr(err)
		return
	}
	err = f.Dump(w)
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		f.setDumpErr(err)
		return
	}
	f.mu.Lock()
	f.dumps++
	f.mu.Unlock()
}

func (f *FlightRecorder) setDumpErr(err error) {
	f.mu.Lock()
	if f.dumpErr == nil {
		f.dumpErr = err
	}
	f.mu.Unlock()
}

// Dump writes the retained events — evicted critical events first, then the
// ring window — as JSONL in capture order.
func (f *FlightRecorder) Dump(w io.Writer) error {
	f.mu.Lock()
	events := make([]flightEvent, 0, len(f.crit)+len(f.ring))
	events = append(events, f.crit...)
	// Ring contents in arrival order: oldest is at next once the ring
	// wrapped, at 0 before.
	for i := 0; i < len(f.ring); i++ {
		events = append(events, f.ring[(f.next+i)%len(f.ring)])
	}
	f.mu.Unlock()

	bw := bufio.NewWriter(w)
	for i := range events {
		e := &events[i]
		var line *jsonlLine
		switch e.ev {
		case "begin":
			line = beginLine(e.start)
		case "end":
			line = endLine(e.end)
		case "point":
			line = pointLine(e.point)
		default:
			return fmt.Errorf("obs: flight recorder holds unknown event kind %q", e.ev)
		}
		line.TS = e.ts
		b, err := json.Marshal(line)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Len reports how many events the ring currently holds (≤ the limit).
func (f *FlightRecorder) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.ring)
}

// CriticalRetained reports how many critical events have been spilled out
// of the ring so far.
func (f *FlightRecorder) CriticalRetained() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.crit)
}

// Dumps reports how many post-mortems were written successfully.
func (f *FlightRecorder) Dumps() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumps
}

// DumpErr reports the sticky post-mortem write error, if any.
func (f *FlightRecorder) DumpErr() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumpErr
}
