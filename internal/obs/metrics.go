package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. All methods are
// lock-free and safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be any int64; counters are conventionally monotonic
// but the type does not enforce it).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can be set or accumulated. Safe for
// concurrent use (CAS on the bit pattern).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add accumulates d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets: bucket i counts values
// v ≤ Bounds[i]; one implicit overflow bucket counts the rest. Bounds are
// fixed at creation (no re-bucketing), so Observe is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last = overflow
	total  atomic.Int64
	sum    Gauge
}

// newHistogram builds a histogram with the given (copied, sorted) bucket
// upper bounds — shared by Registry.Histogram and standalone users like
// ReportCollector.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for ; i < len(h.bounds); i++ {
		if v <= h.bounds[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is an immutable copy of a histogram's state.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra overflow
	// slot.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket that holds the q·Count-th observation — the same
// estimator Prometheus' histogram_quantile uses. The first bucket
// interpolates from 0 (observations are durations/sizes here); a quantile
// landing in the overflow bucket is clamped to the highest bound. Returns
// 0 on an empty histogram.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := 0.0
	for i, n := range h.Counts {
		prev := cum
		cum += float64(n)
		if cum < rank || n == 0 {
			continue
		}
		if i >= len(h.Bounds) {
			// Overflow bucket: no upper bound to interpolate toward.
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		return lo + (hi-lo)*(rank-prev)/float64(n)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Registry holds named metrics. Get-or-create lookups take a mutex; the
// returned metric handles are lock-free, so hot paths should cache them.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds (which must be ascending) on first use. An existing
// histogram is returned as-is — its original bounds win.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the current value of every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	hs := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.total.Load(),
		Sum:    h.sum.Value(),
	}
	for i := range h.counts {
		hs.Counts[i] = h.counts[i].Load()
	}
	return hs
}

// WriteText renders the snapshot as sorted "name value" lines — a minimal
// exposition format for logs and CLI output.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, n := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "%s %d\n", n, s.Counters[n]); err != nil {
			return err
		}
	}
	for _, n := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "%s %g\n", n, s.Gauges[n]); err != nil {
			return err
		}
	}
	for _, n := range sortedKeys(s.Histograms) {
		h := s.Histograms[n]
		if _, err := fmt.Fprintf(w, "%s count=%d sum=%g p50=%g p90=%g p99=%g buckets=%v le=%v\n",
			n, h.Count, h.Sum, h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), h.Counts, h.Bounds); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
