package obs

import "fmt"

// Counters is the fixed MapReduce counter vector accumulated per job (and
// carried, as deltas, on span events). It lives in obs — below the engine —
// so trace events can embed it without an import cycle; `mr.Counters` is an
// alias of this type.
type Counters struct {
	MapInputRecords  int64 `json:"mapIn,omitempty"`
	MapOutputRecords int64 `json:"mapOut,omitempty"`
	CombineInput     int64 `json:"combIn,omitempty"`
	CombineOutput    int64 `json:"combOut,omitempty"`
	ReduceInputKeys  int64 `json:"redKeys,omitempty"`
	ReduceInputVals  int64 `json:"redVals,omitempty"`
	OutputRecords    int64 `json:"out,omitempty"`
	ShuffledBytes    int64 `json:"shuffledB,omitempty"`
	TaskRetries      int64 `json:"retries,omitempty"`
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.MapInputRecords += other.MapInputRecords
	c.MapOutputRecords += other.MapOutputRecords
	c.CombineInput += other.CombineInput
	c.CombineOutput += other.CombineOutput
	c.ReduceInputKeys += other.ReduceInputKeys
	c.ReduceInputVals += other.ReduceInputVals
	c.OutputRecords += other.OutputRecords
	c.ShuffledBytes += other.ShuffledBytes
	c.TaskRetries += other.TaskRetries
}

// Sub subtracts other from c field-wise — the delta between two engine
// snapshots (e.g. the counters one pipeline phase contributed).
func (c *Counters) Sub(other Counters) {
	c.MapInputRecords -= other.MapInputRecords
	c.MapOutputRecords -= other.MapOutputRecords
	c.CombineInput -= other.CombineInput
	c.CombineOutput -= other.CombineOutput
	c.ReduceInputKeys -= other.ReduceInputKeys
	c.ReduceInputVals -= other.ReduceInputVals
	c.OutputRecords -= other.OutputRecords
	c.ShuffledBytes -= other.ShuffledBytes
	c.TaskRetries -= other.TaskRetries
}

// String summarizes every counter field.
func (c Counters) String() string {
	return fmt.Sprintf("mapIn=%d mapOut=%d combIn=%d combOut=%d redKeys=%d redVals=%d out=%d shuffledB=%d retries=%d",
		c.MapInputRecords, c.MapOutputRecords, c.CombineInput, c.CombineOutput,
		c.ReduceInputKeys, c.ReduceInputVals, c.OutputRecords, c.ShuffledBytes, c.TaskRetries)
}
