package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// jsonlLine is the wire form of one trace event: one JSON object per line.
// Identity fields repeat on end lines so a trace is greppable without
// reconstructing span state; zero-valued optionals are omitted to keep
// traces compact.
type jsonlLine struct {
	Ev      string    `json:"ev"` // "begin" | "end" | "point"
	TS      float64   `json:"ts"` // seconds since the tracer was created
	ID      int64     `json:"id,omitempty"`
	Parent  int64     `json:"parent,omitempty"`
	Span    int64     `json:"span,omitempty"` // point events: enclosing span
	Kind    string    `json:"kind,omitempty"`
	Name    string    `json:"name,omitempty"`
	Task    *int      `json:"task,omitempty"` // pointer: task 0 is valid, -1 = shuffle
	Attempt int       `json:"attempt,omitempty"`
	Phase   string    `json:"phase,omitempty"`
	Point   string    `json:"point,omitempty"`
	Outcome string    `json:"outcome,omitempty"`
	Err     string    `json:"err,omitempty"`
	RealS   float64   `json:"real_s,omitempty"`
	SimS    float64   `json:"sim_s,omitempty"`
	Seconds float64   `json:"seconds,omitempty"`
	Value   float64   `json:"value,omitempty"`
	Retries int64           `json:"retries,omitempty"`
	Worker  string          `json:"worker,omitempty"`
	Sample  *ResourceSample `json:"sample,omitempty"`
	Ctrs    *Counters       `json:"counters,omitempty"`
	Wasted  *Counters       `json:"wasted,omitempty"`

	// at, when non-zero, is the event's own capture time (Start/End/Point
	// At): the writer stamps TS from it instead of the write-time clock, so
	// clock-aligned worker events land at their true position on the
	// driver's timeline. Unexported — never marshaled.
	at time.Time
}

// JSONLTracer writes the event stream as JSON Lines to an io.Writer —
// the `-trace out.jsonl` format of cmd/p3crun. It buffers internally;
// call Close (or Flush) before reading the file. Safe for concurrent use.
//
// Write errors are sticky and reported by Close/Err — tracing must never
// fail the traced computation, so events after an error are dropped.
type JSONLTracer struct {
	mu    sync.Mutex
	w     *bufio.Writer
	start time.Time
	err   error
}

// NewJSONLTracer wraps w. The caller retains ownership of w (Close flushes
// the tracer but does not close w).
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	return &JSONLTracer{w: bufio.NewWriter(w), start: time.Now()}
}

func (t *JSONLTracer) write(line *jsonlLine) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if line.at.IsZero() {
		line.TS = time.Since(t.start).Seconds()
	} else {
		line.TS = line.at.Sub(t.start).Seconds()
	}
	b, err := json.Marshal(line)
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(b); err != nil {
		t.err = err
		return
	}
	t.err = t.w.WriteByte('\n')
}

func taskPtr(kind SpanKind, task int) *int {
	if kind != KindTask && kind != KindStep {
		return nil
	}
	return &task
}

func ctrPtr(c Counters) *Counters {
	if c == (Counters{}) {
		return nil
	}
	return &c
}

// beginLine, endLine and pointLine build the wire form of one event. TS is
// left zero for the caller (JSONLTracer stamps write time; FlightRecorder
// replays the capture timestamp).
func beginLine(s Start) *jsonlLine {
	return &jsonlLine{
		Ev:      "begin",
		ID:      int64(s.ID),
		Parent:  int64(s.Parent),
		Kind:    s.Kind.String(),
		Name:    s.Name,
		Task:    taskPtr(s.Kind, s.Task),
		Attempt: s.Attempt,
		Phase:   s.Phase,
		at:      s.At,
	}
}

func endLine(e End) *jsonlLine {
	return &jsonlLine{
		Ev:      "end",
		ID:      int64(e.ID),
		Kind:    e.Kind.String(),
		Name:    e.Name,
		Task:    taskPtr(e.Kind, e.Task),
		Attempt: e.Attempt,
		Phase:   e.Phase,
		Outcome: e.Outcome.String(),
		Err:     e.Err,
		RealS:   e.RealSeconds,
		SimS:    e.SimulatedSeconds,
		Retries: e.Retries,
		Worker:  e.Worker,
		Ctrs:    ctrPtr(e.Counters),
		Wasted:  ctrPtr(e.Wasted),
		at:      e.At,
	}
}

func pointLine(p Point) *jsonlLine {
	return &jsonlLine{
		Ev:      "point",
		Span:    int64(p.Span),
		Point:   p.Kind.String(),
		Name:    p.Name,
		Task:    taskPtr(KindTask, p.Task),
		Attempt: p.Attempt,
		Phase:   p.Phase,
		Seconds: p.Seconds,
		Value:   p.Value,
		Worker:  p.Worker,
		Sample:  p.Sample,
		at:      p.At,
	}
}

// Begin implements Tracer.
func (t *JSONLTracer) Begin(s Start) { t.write(beginLine(s)) }

// End implements Tracer.
func (t *JSONLTracer) End(e End) { t.write(endLine(e)) }

// Point implements Tracer.
func (t *JSONLTracer) Point(p Point) { t.write(pointLine(p)) }

// Flush forces buffered lines out.
func (t *JSONLTracer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Close flushes and returns the first write error, if any.
func (t *JSONLTracer) Close() error {
	if err := t.Flush(); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Err reports the sticky write error.
func (t *JSONLTracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}
