// Package obs is the observability layer of the repo: a structured tracing
// span model (run → phase → job → task-attempt) with pluggable sinks, the
// shared MapReduce counter vector, and a race-safe metrics registry
// (counters, gauges, fixed-bucket histograms).
//
// The package sits below `internal/mr` and `internal/core` (it imports
// neither), so both can emit events into the same sink: the engine opens a
// job span per mr.Job and a task span per task attempt; the clustering
// pipeline wraps them in phase and run spans. With a nil Tracer the
// instrumented code paths do no tracing work at all — no clock reads, no
// event construction — which is what keeps the engine's hot-path
// benchmarks allocation-identical to an untraced build (pinned by
// internal/mr/bench_test.go and the chaos trace-identity tests).
//
// Built-in sinks: JSONLTracer (one JSON object per event, a replayable
// trace file), MemTracer (in-memory capture with structural validation, for
// tests), and ReportCollector (aggregates job/phase spans into a
// human-readable end-of-run report — a one-machine job-tracker page).
// Multi fans one event stream out to several sinks.
package obs

import (
	"sync/atomic"
	"time"
)

// SpanID identifies one span. IDs are unique within a process (allocated
// from one atomic counter); 0 is "no span" and marks a root.
type SpanID int64

var spanIDs atomic.Int64

// NewSpanID allocates a process-unique span ID. Callers allocate IDs
// (rather than tracers) so one event stream can fan out to multiple sinks
// that agree on identity.
func NewSpanID() SpanID { return SpanID(spanIDs.Add(1)) }

// SpanKind classifies a span. Kinds are ordered by nesting depth: a span's
// parent must be of a strictly shallower kind (run > phase > job > task),
// which MemTracer.Validate enforces.
type SpanKind uint8

const (
	// KindRun is one end-to-end pipeline execution.
	KindRun SpanKind = 1 + iota
	// KindPhase is one pipeline phase (histograms, core-generation, em, …).
	KindPhase
	// KindJob is one MapReduce job execution.
	KindJob
	// KindTask is one task attempt (map/reduce), or the job's shuffle/merge
	// step (Task = -1, Phase = "shuffle").
	KindTask
	// KindStep is one sub-phase inside a task attempt — the worker-side
	// telemetry spans (map-exec, spill-write, segment-merge, frame-encode).
	// Step spans may overlap as siblings (a spill interleaves with the map
	// record loop); only the kind nesting is structural.
	KindStep
)

// String names the kind.
func (k SpanKind) String() string {
	switch k {
	case KindRun:
		return "run"
	case KindPhase:
		return "phase"
	case KindJob:
		return "job"
	case KindTask:
		return "task"
	case KindStep:
		return "step"
	default:
		return "unknown"
	}
}

// Outcome is how a span ended.
type Outcome uint8

const (
	// OutcomeOK is a successful completion.
	OutcomeOK Outcome = iota
	// OutcomeFault is an attempt killed by injected fault (retryable).
	OutcomeFault
	// OutcomeCancelled is an attempt aborted by a sibling's permanent
	// failure.
	OutcomeCancelled
	// OutcomeError is a real (non-injected, non-retryable) failure.
	OutcomeError
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeFault:
		return "fault"
	case OutcomeCancelled:
		return "cancelled"
	case OutcomeError:
		return "error"
	default:
		return "unknown"
	}
}

// PointKind classifies a point (instantaneous) event within a span.
type PointKind uint8

const (
	// PointFault marks the position where an injected failure killed the
	// attempt; Phase distinguishes map, combine and reduce faults.
	PointFault PointKind = 1 + iota
	// PointRetry marks that a failed attempt will be retried.
	PointRetry
	// PointStraggler marks a simulated straggler delay; Seconds carries the
	// charge.
	PointStraggler
	// PointCancel marks a task giving up before starting an attempt because
	// its run was cancelled.
	PointCancel
	// PointSample carries a periodic worker resource snapshot (Sample is
	// non-nil); emitted by the multiprocess backend's worker telemetry.
	PointSample
	// PointMetric carries one algorithm-level scalar (Name is the metric
	// name, Value the observation, Task the iteration index where one
	// applies). Emitted driver-side only — metric points never cross the
	// worker telemetry wire — so they are deterministic across backends.
	PointMetric
)

// String names the point kind.
func (p PointKind) String() string {
	switch p {
	case PointFault:
		return "fault"
	case PointRetry:
		return "retry"
	case PointStraggler:
		return "straggler"
	case PointCancel:
		return "cancel"
	case PointSample:
		return "sample"
	case PointMetric:
		return "metric"
	default:
		return "unknown"
	}
}

// ResourceSample is one worker-process resource snapshot, taken by the
// in-worker sampler (stdlib-only: /proc/self/stat, /proc/self/statm, a
// spill-directory walk, and the framing layer's write-buffer depth).
// CPUSeconds is cumulative since process start, so a consumer derives
// utilization from the delta between two samples; the rest are gauges.
type ResourceSample struct {
	// CPUSeconds is cumulative user+system CPU time of the worker process.
	CPUSeconds float64 `json:"cpu_s"`
	// RSSBytes is the resident set size.
	RSSBytes int64 `json:"rss_b"`
	// SpillBytes is the byte total of the worker's spill directory.
	SpillBytes int64 `json:"spill_b"`
	// QueueBytes is the result-pipe backpressure proxy: bytes sitting in
	// the worker's framed write buffer when it last pushed a frame.
	QueueBytes int64 `json:"queue_b"`
}

// Start opens a span. All fields are set by the emitting layer; Task,
// Attempt and Phase are meaningful for KindTask only (Task -1 denotes the
// job-level shuffle/merge span).
type Start struct {
	ID     SpanID
	Parent SpanID
	Kind   SpanKind
	// Name is the run label, phase name, or job name (task spans carry
	// their job's name).
	Name    string
	Task    int
	Attempt int
	// Phase is "map", "reduce" or "shuffle" for task spans, "" otherwise.
	Phase string
	// At, when non-zero, is the event's capture time — used by the
	// multiprocess backend to stamp worker-originated events with their
	// clock-aligned driver time instead of the sink's write time. Zero
	// means "now" (every sink falls back to its own clock).
	At time.Time
}

// End closes a span. It repeats the identity fields of the Start so sinks
// can stay stateless.
type End struct {
	ID      SpanID
	Kind    SpanKind
	Name    string
	Task    int
	Attempt int
	Phase   string
	Outcome Outcome
	// Err is the error text for non-OK outcomes.
	Err string
	// RealSeconds is the measured wall-clock duration of the span.
	RealSeconds float64
	// SimulatedSeconds is the modeled-cluster charge attributed to the
	// span: the cost-model job seconds for job spans, the straggler charge
	// for task spans, the accumulated delta for phase and run spans.
	SimulatedSeconds float64
	// Counters is the span's committed counter delta (a successful
	// attempt's counters; a job's total; a phase's/run's engine delta).
	Counters Counters
	// Wasted is the discarded work: a failed attempt's partial counters,
	// or the aggregate wasted counters for job/phase/run spans.
	Wasted Counters
	// Retries is the number of retried attempts the span absorbed.
	Retries int64
	// Worker identifies the worker process that executed a task attempt, for
	// backends that place attempts on OS processes ("" for in-process
	// execution). Lets offline analysis attribute straggler and retry waste
	// to the worker that burned it.
	Worker string
	// At, when non-zero, is the aligned capture time (see Start.At).
	At time.Time
}

// Point is an instantaneous event within a span.
type Point struct {
	// Span is the enclosing span (the task attempt for fault/straggler
	// points; the job span for pre-attempt cancellations).
	Span SpanID
	Kind PointKind
	// Name, Task, Attempt, Phase identify the attempt as in Start.
	Name    string
	Task    int
	Attempt int
	Phase   string
	// Seconds carries the straggler charge for PointStraggler.
	Seconds float64
	// Value carries the observation for PointMetric (Name is the metric
	// name; Task the iteration index where one applies).
	Value float64
	// Worker identifies the worker process the event occurred on (see
	// End.Worker); "" for in-process execution.
	Worker string
	// Sample carries the resource snapshot for PointSample, nil otherwise.
	Sample *ResourceSample
	// At, when non-zero, is the aligned capture time (see Start.At).
	At time.Time
}

// Tracer receives structured span events. Implementations must be safe for
// concurrent use: the engine emits task events from many goroutines.
// Methods must not retain references into the event structs beyond the
// call (they are passed by value, so this holds naturally).
//
// Tracing is pure observation: a Tracer must not feed back into execution,
// and the engine guarantees that enabling one cannot change a single
// output bit (pinned by the chaos trace-identity tests).
type Tracer interface {
	Begin(s Start)
	End(e End)
	Point(p Point)
}

// multiTracer fans events out to several sinks in order.
type multiTracer []Tracer

func (m multiTracer) Begin(s Start) {
	for _, t := range m {
		t.Begin(s)
	}
}

func (m multiTracer) End(e End) {
	for _, t := range m {
		t.End(e)
	}
}

func (m multiTracer) Point(p Point) {
	for _, t := range m {
		t.Point(p)
	}
}

// Multi combines tracers into one that forwards every event to each, in
// order. Nil entries are dropped; Multi() and Multi(nil) return nil, and a
// single sink is returned unwrapped.
func Multi(ts ...Tracer) Tracer {
	out := make(multiTracer, 0, len(ts))
	for _, t := range ts {
		if t != nil {
			out = append(out, t)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
