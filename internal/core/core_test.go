package core

import (
	"testing"

	"p3cmr/internal/dataset"
	"p3cmr/internal/eval"
	"p3cmr/internal/mr"
	"p3cmr/internal/outlier"
	"p3cmr/internal/signature"
)

// genData is a shared fixture helper.
func genData(t *testing.T, n, dim, k int, noise float64, seed int64) (*dataset.Dataset, *dataset.GroundTruth) {
	t.Helper()
	data, truth, err := dataset.Generate(dataset.GenConfig{
		N: n, Dim: dim, Clusters: k, NoiseFraction: noise, Seed: seed, Overlap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data, truth
}

func truthClustering(t *testing.T, truth *dataset.GroundTruth) *eval.SubspaceClustering {
	t.Helper()
	var cs []*eval.Cluster
	for _, tc := range truth.Clusters {
		cs = append(cs, &eval.Cluster{Objects: tc.Members, Attrs: tc.Attrs})
	}
	sc, err := eval.NewSubspaceClustering(truth.N, truth.Dim, cs)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func resultClustering(t *testing.T, res *Result, n, dim int) *eval.SubspaceClustering {
	t.Helper()
	sc, err := res.Evaluation(n, dim)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestParamsValidate(t *testing.T) {
	if err := NewParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := NewParams()
	bad.AlphaChi2 = 0
	if bad.Validate() == nil {
		t.Error("zero AlphaChi2 accepted")
	}
	bad = NewParams()
	bad.AlphaPoisson = 1
	if bad.Validate() == nil {
		t.Error("AlphaPoisson=1 accepted")
	}
	bad = NewParams()
	bad.ThetaCC = 0
	if bad.Validate() == nil {
		t.Error("zero ThetaCC with effect size accepted")
	}
	bad = NewParams()
	bad.RedundancyCoverage = 1.5
	if bad.Validate() == nil {
		t.Error("coverage > 1 accepted")
	}
	bad = NewParams()
	bad.Tc = -1
	if bad.Validate() == nil {
		t.Error("negative Tc accepted")
	}
}

func TestPresets(t *testing.T) {
	orig := OriginalP3CParams()
	if orig.BinRule != Sturges || orig.UseEffectSize || orig.UseRedundancyFilter ||
		orig.UseAIProving || orig.OutlierMethod != outlier.Naive {
		t.Error("original P3C preset wrong")
	}
	light := LightParams()
	if !light.SkipRefinement {
		t.Error("light preset must skip refinement")
	}
	if BinRule(99).String() == "" || FreedmanDiaconis.String() != "freedman-diaconis" || Sturges.String() != "sturges" {
		t.Error("BinRule names wrong")
	}
}

func TestLightPipelineFindsPlantedClusters(t *testing.T) {
	data, truth := genData(t, 4000, 25, 4, 0.1, 21)
	res, err := Run(mr.Default(), data, LightParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 4 {
		t.Errorf("cores = %d, want 4", len(res.Cores))
	}
	e4sc := eval.E4SC(resultClustering(t, res, data.N(), data.Dim), truthClustering(t, truth))
	if e4sc < 0.7 {
		t.Errorf("E4SC = %.3f", e4sc)
	}
	if res.Stats.Jobs == 0 || res.Stats.CandidatesProven == 0 {
		t.Error("stats not recorded")
	}
	if len(res.Labels) != data.N() {
		t.Error("labels length wrong")
	}
}

func TestFullPipelineFindsPlantedClusters(t *testing.T) {
	data, truth := genData(t, 3000, 15, 3, 0.05, 33)
	res, err := Run(mr.Default(), data, NewParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 3 {
		t.Errorf("cores = %d, want 3", len(res.Cores))
	}
	if res.Stats.EMIterations == 0 {
		t.Error("EM did not run")
	}
	e4sc := eval.E4SC(resultClustering(t, res, data.N(), data.Dim), truthClustering(t, truth))
	if e4sc < 0.6 {
		t.Errorf("E4SC = %.3f", e4sc)
	}
}

func TestPipelineOnPureNoise(t *testing.T) {
	// A uniform data set must yield no clusters.
	data, _, err := dataset.Generate(dataset.GenConfig{
		N: 2000, Dim: 10, Clusters: 1, NoiseFraction: 0.95, Seed: 17, Overlap: false,
		MinClusterDims: 2, MaxClusterDims: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the single tiny cluster with uniform noise to get pure
	// noise while keeping a valid generator call.
	for i := range data.Rows {
		data.Rows[i] = float64((i*2654435761)%100000) / 100000
	}
	res, err := Run(mr.Default(), data, LightParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 0 {
		t.Errorf("pure noise produced %d cores", len(res.Cores))
	}
	for _, l := range res.Labels {
		if l != outlier.OutlierLabel {
			t.Fatal("noise point got a cluster label")
		}
	}
}

func TestOriginalP3CRunsAndP3CPlusBeatsIt(t *testing.T) {
	data, truth := genData(t, 2000, 12, 3, 0.05, 5)
	tc := truthClustering(t, truth)
	resOld, err := Run(mr.Default(), data, OriginalP3CParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(resOld.Cores) < 1 {
		t.Fatal("original P3C found nothing at all")
	}
	resNew, err := Run(mr.Default(), data, NewParams())
	if err != nil {
		t.Fatal(err)
	}
	old := eval.E4SC(resultClustering(t, resOld, data.N(), data.Dim), tc)
	new_ := eval.E4SC(resultClustering(t, resNew, data.N(), data.Dim), tc)
	t.Logf("P3C E4SC=%.3f (cores=%d), P3C+ E4SC=%.3f (cores=%d)",
		old, len(resOld.Cores), new_, len(resNew.Cores))
	// The paper's central quality claim (§7.4, §7.6): the P3C+ model
	// dominates the original on data with overlapping clusters. Allow a
	// small tolerance for sampling noise.
	if new_ < old-0.05 {
		t.Errorf("P3C+ (%.3f) below original P3C (%.3f)", new_, old)
	}
}

// TestRedundancyRescueRecoversShadowedCore is the regression test for the
// overlapping-cluster failure: a 2-attribute cluster sharing its interval
// with a dense high-dimensional cluster must survive the maximality +
// redundancy interaction.
func TestRedundancyRescueRecoversShadowedCore(t *testing.T) {
	data, truth := genData(t, 3000, 15, 3, 0.05, 7)
	// Seed 7 historically produced a 2-attr cluster {a1,a9} shadowed by
	// mixed overlap artifacts.
	has2D := false
	for _, tc := range truth.Clusters {
		if len(tc.Attrs) == 2 {
			has2D = true
		}
	}
	if !has2D {
		t.Skip("fixture changed: no 2-attribute cluster")
	}
	res, err := Run(mr.Default(), data, LightParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 3 {
		t.Fatalf("cores = %d, want 3 (shadowed core lost again?)", len(res.Cores))
	}
}

func TestRedundancyFilterReducesCores(t *testing.T) {
	data, _ := genData(t, 4000, 20, 5, 0.2, 13)
	with := LightParams()
	without := LightParams()
	without.UseRedundancyFilter = false
	resWith, err := Run(mr.Default(), data, with)
	if err != nil {
		t.Fatal(err)
	}
	resWithout, err := Run(mr.Default(), data, without)
	if err != nil {
		t.Fatal(err)
	}
	if len(resWith.Cores) > len(resWithout.Cores) {
		t.Errorf("filter increased cores: %d > %d", len(resWith.Cores), len(resWithout.Cores))
	}
	if len(resWith.Cores) != 5 {
		t.Errorf("filtered cores = %d, want 5", len(resWith.Cores))
	}
}

func TestStatsDeltaIsolatedPerRun(t *testing.T) {
	data, _ := genData(t, 1500, 10, 2, 0.05, 3)
	engine := mr.Default()
	res1, err := Run(engine, data, LightParams())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(engine, data, LightParams())
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats.Jobs != res2.Stats.Jobs {
		t.Errorf("job deltas differ across identical runs: %d vs %d", res1.Stats.Jobs, res2.Stats.Jobs)
	}
	if res2.Stats.Counters.MapInputRecords != res1.Stats.Counters.MapInputRecords {
		t.Error("counter deltas not isolated")
	}
}

func TestOutputSignaturesTightened(t *testing.T) {
	data, truth := genData(t, 3000, 12, 2, 0.0, 41)
	res, err := Run(mr.Default(), data, LightParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Signatures) != len(res.Cores) {
		t.Fatalf("%d signatures for %d cores", len(res.Signatures), len(res.Cores))
	}
	for _, os := range res.Signatures {
		for _, iv := range os.Intervals {
			if iv.Lo > iv.Hi || iv.Lo < 0 || iv.Hi > 1 {
				t.Errorf("bad tightened interval %v", iv)
			}
		}
	}
	// Tightened intervals should approximate the generating intervals:
	// match clusters by attribute overlap and compare bounds loosely.
	for _, os := range res.Signatures {
		attrs := make(map[int]signature.Interval)
		for _, iv := range os.Intervals {
			attrs[iv.Attr] = iv
		}
		bestOverlap, bestIdx := 0, -1
		for ti, tc := range truth.Clusters {
			o := 0
			for _, a := range tc.Attrs {
				if _, ok := attrs[a]; ok {
					o++
				}
			}
			if o > bestOverlap {
				bestOverlap, bestIdx = o, ti
			}
		}
		if bestIdx < 0 {
			t.Error("output signature matches no true cluster")
			continue
		}
		tc := truth.Clusters[bestIdx]
		for j, a := range tc.Attrs {
			iv, ok := attrs[a]
			if !ok {
				continue
			}
			if iv.Lo > tc.Hi[j] || iv.Hi < tc.Lo[j] {
				t.Errorf("tightened interval on a%d [%g,%g] misses true [%g,%g]",
					a, iv.Lo, iv.Hi, tc.Lo[j], tc.Hi[j])
			}
		}
	}
}

func TestRunValidatesInputs(t *testing.T) {
	data, _ := genData(t, 100, 5, 1, 0, 1)
	bad := NewParams()
	bad.AlphaPoisson = -1
	if _, err := Run(mr.Default(), data, bad); err == nil {
		t.Error("invalid params accepted")
	}
	broken := &dataset.Dataset{Dim: 3, Rows: []float64{1, 2}}
	if _, err := Run(mr.Default(), broken, NewParams()); err == nil {
		t.Error("invalid dataset accepted")
	}
}

func TestRelevantAttrsIsArel(t *testing.T) {
	s1 := signature.New(
		signature.Interval{Attr: 3, Lo: 0, Hi: 0.1},
		signature.Interval{Attr: 1, Lo: 0, Hi: 0.1},
	)
	s2 := signature.New(signature.Interval{Attr: 5, Lo: 0, Hi: 0.1})
	got := relevantAttrs([]signature.Signature{s1, s2})
	want := []int{1, 3, 5}
	if len(got) != 3 {
		t.Fatalf("Arel = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Arel = %v, want %v", got, want)
		}
	}
}

func TestNaiveVsMVBOutlierQuality(t *testing.T) {
	// On noisy data the MVB variant should be at least competitive with
	// the naive variant (Figure 4's claim, modulo sampling noise).
	data, truth := genData(t, 3000, 15, 3, 0.2, 77)
	tc := truthClustering(t, truth)
	run := func(m outlier.Method) float64 {
		p := NewParams()
		p.OutlierMethod = m
		res, err := Run(mr.Default(), data, p)
		if err != nil {
			t.Fatal(err)
		}
		return eval.E4SC(resultClustering(t, res, data.N(), data.Dim), tc)
	}
	naive := run(outlier.Naive)
	mvb := run(outlier.MVB)
	t.Logf("naive E4SC=%.3f mvb E4SC=%.3f", naive, mvb)
	if mvb < naive-0.15 {
		t.Errorf("MVB (%.3f) far below naive (%.3f)", mvb, naive)
	}
}
