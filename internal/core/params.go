// Package core implements the P3C, P3C+, P3C+-MR and P3C+-MR-Light
// projected clustering algorithms of the reproduced paper as one
// parameterized pipeline over the internal MapReduce engine:
//
//	histograms → relevant intervals → cluster-core generation (a-priori with
//	multi-level candidate collection and RSSC support counting) →
//	redundancy filter → EM refinement → outlier detection → attribute
//	inspection (+ AI proving) → interval tightening.
//
// The algorithm variants are parameter presets: the original P3C uses
// Sturges' rule, the pure Poisson test, no redundancy filter, the naive
// outlier detector and no AI proving; P3C+ switches to Freedman–Diaconis,
// adds the effect-size test, the redundancy filter, MVB outlier detection
// and AI proving; the Light variant skips the EM and outlier-detection
// phases entirely and reports refined cluster cores (paper §6).
package core

import (
	"fmt"
	"time"

	"p3cmr/internal/em"
	"p3cmr/internal/eval"
	"p3cmr/internal/mr"
	"p3cmr/internal/outlier"
	"p3cmr/internal/signature"
)

// BinRule selects the histogram bin-count heuristic.
type BinRule int

const (
	// FreedmanDiaconis uses bin size n^(−1/3) (IQR=1/2 simplification on
	// normalized attributes) — the P3C+ default (§4.1.1).
	FreedmanDiaconis BinRule = iota
	// Sturges uses ⌈1+log₂ n⌉ bins — the original P3C rule.
	Sturges
)

// String names the rule.
func (r BinRule) String() string {
	switch r {
	case FreedmanDiaconis:
		return "freedman-diaconis"
	case Sturges:
		return "sturges"
	default:
		return fmt.Sprintf("BinRule(%d)", int(r))
	}
}

// Params is the full parameterization of the pipeline. NewParams returns
// the paper defaults (§7.3); the preset constructors below derive the
// algorithm variants.
type Params struct {
	// AlphaChi2 is the significance level of the chi-square uniformity
	// tests in relevant-interval detection and attribute inspection
	// (paper: 0.001).
	AlphaChi2 float64
	// AlphaPoisson is the significance level of the Poisson support test in
	// cluster-core generation (paper: 0.01).
	AlphaPoisson float64
	// ThetaCC is the effect-size threshold θcc (paper: 0.35, tuned as the
	// median of per-data-set optima).
	ThetaCC float64
	// BinRule selects the histogram heuristic.
	BinRule BinRule
	// UseEffectSize enables the Cohen's d complement of the Poisson test
	// (the "Combined" test of Figure 5).
	UseEffectSize bool
	// UseRedundancyFilter enables the interest-ratio redundancy filter of
	// §4.2.1.
	UseRedundancyFilter bool
	// RedundancyCoverage is the support-coverage fraction demanded before a
	// signature is declared redundant (1 = exact Eq. 5 containment). The
	// default 0.5 tolerates the uniform background noise and the Gaussian
	// tails that leak past the bin-aligned core intervals: a genuine core
	// is the most interesting signature for essentially all of its support
	// points and stays far above any threshold, while an intersection
	// artifact keeps only tail/noise points uncovered.
	RedundancyCoverage float64
	// UseAIProving re-tests attribute-inspection intervals with the
	// cluster-support test (§4.2.3).
	UseAIProving bool
	// OutlierMethod selects the naive or MVB detector (§4.2.2).
	OutlierMethod outlier.Method
	// SkipRefinement drops the EM and outlier-detection phases (the Light
	// variant, §6).
	SkipRefinement bool
	// EM tunes the refinement loop.
	EM em.FitOptions
	// Tgen is the candidate-pair count above which candidate generation is
	// parallelized with a MapReduce job. The paper tuned 4·10⁷ for its
	// Hadoop cluster; the in-process default is 10⁶ because task startup
	// is thousands of times cheaper here.
	Tgen int64
	// Tc is the collected-candidate threshold of the multi-level candidate
	// collection heuristic. The paper tuned 3·10⁴ on Hadoop where each
	// saved job is worth seconds; the in-process default is 2·10³.
	Tc int
	// MaxP caps signature dimensionality as a safety valve (0 = unbounded).
	MaxP int
	// LevelCap bounds the candidate count of a single a-priori level
	// (0 = default 5 000; a capped level also caps the next level's join
	// space at ~LevelCap²/2 pairs). Data whose hidden clusters span dozens
	// of attributes makes the signature lattice combinatorial — C(40, p)
	// candidates at level p — which no a-priori sweep can enumerate; the
	// cap truncates such levels deterministically (canonical order) and
	// records the event in RunStats.LevelsTruncated instead of hanging.
	LevelCap int
	// NumSplits is the number of input splits the data set is partitioned
	// into (0 = one split per engine parallelism unit).
	NumSplits int
	// Observer, when non-nil, receives a callback at the end of every
	// pipeline phase — operational visibility into long runs. Callbacks
	// happen on the driver goroutine; implementations must be fast.
	Observer Observer
}

// Phase identifies a pipeline stage for Observer callbacks.
type Phase string

// The pipeline phases, in execution order.
const (
	PhaseHistograms          Phase = "histograms"
	PhaseRelevantIntervals   Phase = "relevant-intervals"
	PhaseCoreGeneration      Phase = "core-generation"
	PhaseRedundancyFilter    Phase = "redundancy-filter"
	PhaseEM                  Phase = "em"
	PhaseOutlierDetection    Phase = "outlier-detection"
	PhaseAttributeInspection Phase = "attribute-inspection"
	PhaseTightening          Phase = "interval-tightening"
)

// Observer receives phase-completion callbacks. Detail carries a
// phase-specific count: intervals found, candidates proven, cores kept, EM
// iterations run, outliers marked.
type Observer interface {
	PhaseDone(phase Phase, detail int)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(phase Phase, detail int)

// PhaseDone implements Observer.
func (f ObserverFunc) PhaseDone(phase Phase, detail int) { f(phase, detail) }

// NewParams returns the paper's default parameterization (§7.3) for the
// P3C+ model with MVB outlier detection.
func NewParams() Params {
	return Params{
		AlphaChi2:           0.001,
		AlphaPoisson:        0.01,
		ThetaCC:             0.35,
		BinRule:             FreedmanDiaconis,
		UseEffectSize:       true,
		UseRedundancyFilter: true,
		RedundancyCoverage:  0.5,
		UseAIProving:        true,
		OutlierMethod:       outlier.MVB,
		EM:                  em.FitOptions{MaxIterations: 8, Tolerance: 1e-4},
		Tgen:                1e6,
		Tc:                  2e3,
		MaxP:                0,
		LevelCap:            5e3,
		NumSplits:           0,
	}
}

// OriginalP3CParams returns the original P3C model: Sturges binning, pure
// Poisson testing, no redundancy filter, naive outlier detection, no AI
// proving.
func OriginalP3CParams() Params {
	p := NewParams()
	p.BinRule = Sturges
	p.UseEffectSize = false
	p.UseRedundancyFilter = false
	p.UseAIProving = false
	p.OutlierMethod = outlier.Naive
	return p
}

// LightParams returns the P3C+-MR-Light preset (§6): P3C+ without the EM
// and outlier-detection phases.
func LightParams() Params {
	p := NewParams()
	p.SkipRefinement = true
	return p
}

// PhasePlan lists the pipeline phases Run will execute under these
// parameters, in order, matching the phase span names Run emits. Progress
// sinks use it to estimate completion before a learned profile exists.
func (p Params) PhasePlan() []string {
	plan := []string{"histograms", "core-generation"}
	if p.UseRedundancyFilter {
		plan = append(plan, "redundancy-filter")
	}
	if p.SkipRefinement {
		return append(plan, "light-membership", "attribute-inspection", "tightening")
	}
	return append(plan, "em", "outlier-detection", "attribute-inspection", "tightening")
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.AlphaChi2 <= 0 || p.AlphaChi2 >= 1 {
		return fmt.Errorf("core: AlphaChi2 must be in (0,1), got %g", p.AlphaChi2)
	}
	if p.AlphaPoisson <= 0 || p.AlphaPoisson >= 1 {
		return fmt.Errorf("core: AlphaPoisson must be in (0,1), got %g", p.AlphaPoisson)
	}
	if p.UseEffectSize && p.ThetaCC <= 0 {
		return fmt.Errorf("core: ThetaCC must be positive when the effect-size test is enabled, got %g", p.ThetaCC)
	}
	if p.UseRedundancyFilter && (p.RedundancyCoverage <= 0 || p.RedundancyCoverage > 1) {
		return fmt.Errorf("core: RedundancyCoverage must be in (0,1], got %g", p.RedundancyCoverage)
	}
	if p.Tc < 0 || p.Tgen < 0 || p.MaxP < 0 || p.LevelCap < 0 || p.NumSplits < 0 {
		return fmt.Errorf("core: thresholds must be non-negative")
	}
	return nil
}

// OutputSignature is one final cluster description: the tightened interval
// per relevant attribute (paper §3.2.2, interval-tightening step).
type OutputSignature struct {
	// ClusterID indexes the cluster in Result.Clusters.
	ClusterID int
	// Intervals are the tightened bounds, sorted by attribute.
	Intervals []signature.Interval
}

// RunStats aggregates execution metadata for the experiments.
type RunStats struct {
	// Jobs is the number of MapReduce jobs the run executed.
	Jobs int
	// SimulatedSeconds is the modeled cluster runtime under the engine cost
	// model (0 when disabled).
	SimulatedSeconds float64
	// WallTime is the local elapsed time.
	WallTime time.Duration
	// Counters accumulate the engine counters across all jobs.
	Counters mr.Counters
	// CandidatesProven counts support-tested signatures.
	CandidatesProven int
	// LevelsTruncated counts a-priori levels cut off by Params.LevelCap.
	LevelsTruncated int
	// CoresBeforeRedundancy and Cores record the filter's effect.
	CoresBeforeRedundancy, Cores int
	// EMIterations is the number of EM cycles run (0 for Light).
	EMIterations int
}

// Result is the pipeline output.
type Result struct {
	// Signatures are the final tightened cluster descriptions.
	Signatures []OutputSignature
	// Clusters carries object and attribute sets per cluster for
	// evaluation. For the Light variant clusters may overlap (cluster-core
	// support sets).
	Clusters []*eval.Cluster
	// Labels assigns each point a cluster id or outlier.OutlierLabel. For
	// the Light variant multi-core points are labeled with their most
	// interesting core.
	Labels []int
	// Cores are the cluster cores after redundancy filtering.
	Cores []signature.Signature
	// CoreSupports are the measured supports of Cores.
	CoreSupports []int64
	// RelevantAttrs is Arel, ascending.
	RelevantAttrs []int
	// Stats is the execution metadata.
	Stats RunStats
}

// Evaluation returns the result's clusters as a SubspaceClustering for the
// quality measures.
func (r *Result) Evaluation(n, dim int) (*eval.SubspaceClustering, error) {
	return eval.NewSubspaceClustering(n, dim, r.Clusters)
}
