package core

import (
	"testing"

	"p3cmr/internal/mr"
)

// TestPipelineDeterministicAcrossParallelism verifies the MapReduce
// correctness property the whole design rests on: the clustering result is
// a pure function of (data, params) — independent of how many splits the
// data is cut into, how many goroutines execute tasks, and how many
// reducers partition the shuffle.
func TestPipelineDeterministicAcrossParallelism(t *testing.T) {
	data, _ := genData(t, 3000, 15, 3, 0.1, 77)
	type runCfg struct {
		par, red, splits int
	}
	cfgs := []runCfg{
		{1, 1, 1},
		{4, 3, 8},
		{8, 7, 32},
	}
	var baseline *Result
	for _, rc := range cfgs {
		engine := mr.NewEngine(mr.Config{Parallelism: rc.par, NumReducers: rc.red})
		params := LightParams()
		params.NumSplits = rc.splits
		res, err := Run(engine, data, params)
		if err != nil {
			t.Fatalf("cfg %+v: %v", rc, err)
		}
		if baseline == nil {
			baseline = res
			continue
		}
		if len(res.Cores) != len(baseline.Cores) {
			t.Fatalf("cfg %+v: %d cores vs %d", rc, len(res.Cores), len(baseline.Cores))
		}
		for i := range res.Cores {
			if !res.Cores[i].Equal(baseline.Cores[i]) {
				t.Fatalf("cfg %+v: core %d differs:\n%v\n%v", rc, i, res.Cores[i], baseline.Cores[i])
			}
			if res.CoreSupports[i] != baseline.CoreSupports[i] {
				t.Fatalf("cfg %+v: support %d differs: %d vs %d", rc, i, res.CoreSupports[i], baseline.CoreSupports[i])
			}
		}
		for i := range res.Labels {
			if res.Labels[i] != baseline.Labels[i] {
				t.Fatalf("cfg %+v: label %d differs", rc, i)
			}
		}
	}
}

// TestPipelineSurvivesFaultInjection: with Hadoop-style task failures and
// retries enabled, the pipeline must produce exactly the same result as a
// failure-free run — retried tasks restart from clean state.
func TestPipelineSurvivesFaultInjection(t *testing.T) {
	data, _ := genData(t, 2000, 12, 3, 0.1, 55)
	params := LightParams()
	params.NumSplits = 8

	clean, err := Run(mr.Default(), data, params)
	if err != nil {
		t.Fatal(err)
	}
	flaky := mr.NewEngine(mr.Config{Faults: mr.UniformFaults(0.3, 21), MaxAttempts: 12})
	faulty, err := Run(flaky, data, params)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Stats.Counters.TaskRetries == 0 {
		t.Error("no retries injected at 30% failure rate — test not exercising retries")
	}
	if len(faulty.Cores) != len(clean.Cores) {
		t.Fatalf("cores differ under fault injection: %d vs %d", len(faulty.Cores), len(clean.Cores))
	}
	for i := range clean.Cores {
		if !faulty.Cores[i].Equal(clean.Cores[i]) {
			t.Fatalf("core %d differs under fault injection", i)
		}
	}
	for i := range clean.Labels {
		if faulty.Labels[i] != clean.Labels[i] {
			t.Fatalf("label %d differs under fault injection", i)
		}
	}
}

// TestFullPipelineDeterministic covers the EM + outlier detection phases,
// whose floating-point accumulations are grouped per split and must
// therefore also be order-independent across parallelism settings.
func TestFullPipelineDeterministic(t *testing.T) {
	data, _ := genData(t, 2000, 10, 2, 0.05, 99)
	run := func(par int) *Result {
		engine := mr.NewEngine(mr.Config{Parallelism: par, NumReducers: 3})
		params := NewParams()
		params.NumSplits = 8 // fixed splits: per-split sums are exact units
		res, err := Run(engine, data, params)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(1)
	b := run(8)
	if len(a.Cores) != len(b.Cores) {
		t.Fatalf("cores differ: %d vs %d", len(a.Cores), len(b.Cores))
	}
	// The engine merges map outputs in split order, so EM's floating-point
	// sums see values in a deterministic sequence at any Parallelism and
	// labels must match exactly — no ulp tolerance needed since the
	// partitioned-buffer shuffle replaced completion-order collection.
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("label %d differs across parallelism (%d vs %d)", i, a.Labels[i], b.Labels[i])
		}
	}
}
