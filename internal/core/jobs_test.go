package core

import (
	"math/rand"
	"testing"

	"p3cmr/internal/dataset"
	"p3cmr/internal/histogram"
	"p3cmr/internal/mr"
	"p3cmr/internal/signature"
)

func splitsFor(d *dataset.Dataset, n int) []*mr.Split { return d.Splits(n) }

func TestHistogramJobMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n, dim, bins = 2000, 5, 13
	d := dataset.New(dim)
	row := make([]float64, dim)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = rng.Float64()
		}
		d.Append(row)
	}
	hists, err := histogramJob(mr.Default(), splitsFor(d, 7), dim, bins, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Serial reference.
	ref := make([]*histogram.Histogram, dim)
	for j := range ref {
		ref[j] = histogram.New(bins)
	}
	for i := 0; i < n; i++ {
		r := d.Row(i)
		for j, v := range r {
			ref[j].Add(v)
		}
	}
	for j := 0; j < dim; j++ {
		if hists[j].Total() != int64(n) {
			t.Fatalf("dim %d total %d", j, hists[j].Total())
		}
		for b := 0; b < bins; b++ {
			if hists[j].Counts[b] != ref[j].Counts[b] {
				t.Fatalf("dim %d bin %d: %d vs %d", j, b, hists[j].Counts[b], ref[j].Counts[b])
			}
		}
	}
}

func TestCountSupportsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n, dim = 1000, 6
	d := dataset.New(dim)
	row := make([]float64, dim)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = rng.Float64()
		}
		d.Append(row)
	}
	var sigs []signature.Signature
	for a := 0; a < dim; a++ {
		lo := float64(a) / 10
		sigs = append(sigs, signature.New(signature.Interval{Attr: a, Lo: lo, Hi: lo + 0.3}))
		if a+1 < dim {
			sigs = append(sigs, signature.New(
				signature.Interval{Attr: a, Lo: lo, Hi: lo + 0.3},
				signature.Interval{Attr: a + 1, Lo: 0.2, Hi: 0.6},
			))
		}
	}
	counts, err := countSupports(mr.Default(), splitsFor(d, 5), sigs, "test-count", 0)
	if err != nil {
		t.Fatal(err)
	}
	naive := signature.CountSupportsNaive(sigs, d.Rows, dim)
	for i := range sigs {
		if counts[i] != naive[i] {
			t.Fatalf("sig %d: %d vs %d", i, counts[i], naive[i])
		}
	}
	// Empty candidate set short-circuits.
	empty, err := countSupports(mr.Default(), splitsFor(d, 5), nil, "empty", 0)
	if err != nil || empty != nil {
		t.Fatal("empty candidate set must return nil, nil")
	}
}

func TestGenerateCandidatesMRParallelMatchesSerial(t *testing.T) {
	// Build a level large enough to trigger the parallel path with a tiny
	// Tgen.
	var level []signature.Signature
	for a := 0; a < 12; a++ {
		for r := 0; r < 3; r++ {
			lo := float64(r) / 4
			level = append(level, signature.New(signature.Interval{Attr: a, Lo: lo, Hi: lo + 0.25}))
		}
	}
	signature.Sort(level)
	engine := mr.Default()
	serial, err := generateCandidatesMR(engine, level, 0, 0) // Tgen=0 → serial
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := generateCandidatesMR(engine, level, 50, 0) // tiny Tgen → MR path
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("serial %d vs parallel %d candidates", len(serial), len(parallel))
	}
	signature.Sort(serial)
	for i := range serial {
		if !serial[i].Equal(parallel[i]) {
			t.Fatalf("candidate %d differs", i)
		}
	}
	// Empty level.
	if got, err := generateCandidatesMR(engine, nil, 50, 0); err != nil || got != nil {
		t.Fatal("empty level must be nil, nil")
	}
}

func TestTighteningJobMinMax(t *testing.T) {
	d := dataset.FromRows(2, []float64{
		0.1, 0.9,
		0.3, 0.8,
		0.2, 0.7, // cluster 0: a0 ∈ [0.1,0.3], a1 ∈ [0.7,0.9]
		0.6, 0.1,
		0.5, 0.2, // cluster 1: a0 ∈ [0.5,0.6], a1 ∈ [0.1,0.2]
		0.99, 0.99, // unassigned
	})
	membership := []int{0, 0, 0, 1, 1, -1}
	attrs := [][]int{{0, 1}, {0}}
	mins, maxs, err := tighteningJob(mr.Default(), splitsFor(d, 3), membership, attrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mins[0][0] != 0.1 || maxs[0][0] != 0.3 {
		t.Errorf("cluster 0 a0 = [%g,%g]", mins[0][0], maxs[0][0])
	}
	if mins[0][1] != 0.7 || maxs[0][1] != 0.9 {
		t.Errorf("cluster 0 a1 = [%g,%g]", mins[0][1], maxs[0][1])
	}
	if mins[1][0] != 0.5 || maxs[1][0] != 0.6 {
		t.Errorf("cluster 1 a0 = [%g,%g]", mins[1][0], maxs[1][0])
	}
	if _, ok := mins[1][1]; ok {
		t.Error("cluster 1 a1 was not requested")
	}
}

func TestUncoveredCountsJobMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, dim = 800, 4
	d := dataset.New(dim)
	row := make([]float64, dim)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = rng.Float64()
		}
		d.Append(row)
	}
	sigs := []signature.Signature{
		signature.New(signature.Interval{Attr: 0, Lo: 0, Hi: 0.5}),
		signature.New(signature.Interval{Attr: 1, Lo: 0, Hi: 0.5}),
		signature.New(signature.Interval{Attr: 0, Lo: 0, Hi: 0.5}, signature.Interval{Attr: 1, Lo: 0, Hi: 0.5}),
	}
	ratios := []float64{1, 2, 3}
	got, err := uncoveredCounts(mr.Default(), splitsFor(d, 4), sigs, ratios, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Serial reference.
	acc := signature.NewCoverageAccumulator(sigs, ratios)
	rssc := signature.NewRSSC(sigs)
	var mask []uint64
	for i := 0; i < n; i++ {
		mask = rssc.Query(mask, d.Row(i))
		acc.Add(mask)
	}
	want := acc.Counts()
	for i := range sigs {
		if got[i] != want[i] {
			t.Fatalf("sig %d: %d vs %d", i, got[i], want[i])
		}
	}
}

// TestTightenCleanupEmissionOrder pins the fix for the map-range emission in
// tightenMapper.Cleanup (flagged by the maporder analyzer): the emitted pair
// sequence must follow the clusters' sorted attribute lists, never map
// iteration order, or mapper output order — and with it the engine's
// bit-identity guarantee — varies per run.
func TestTightenCleanupEmissionOrder(t *testing.T) {
	attrs := [][]int{{0, 2, 5}, {1, 3}}
	build := func(perm []int) *tightenMapper {
		m := &tightenMapper{
			attrs: attrs,
			mins:  []map[int]float64{{}, {}},
			maxs:  []map[int]float64{{}, {}},
		}
		for _, a := range perm {
			m.mins[0][a] = float64(a)
			m.maxs[0][a] = float64(a) + 1
		}
		m.mins[1][1], m.maxs[1][1] = 0.5, 0.6
		m.mins[1][3], m.maxs[1][3] = 0.1, 0.9
		return m
	}
	want := []string{"t0_0", "t0_2", "t0_5", "t1_1", "t1_3"}
	for _, perm := range [][]int{{0, 2, 5}, {5, 0, 2}, {2, 5, 0}} {
		got := build(perm).tightenedPairs()
		if len(got) != len(want) {
			t.Fatalf("insertion order %v: got %d pairs, want %d", perm, len(got), len(want))
		}
		for i, p := range got {
			if p.Key != want[i] {
				t.Fatalf("insertion order %v: pair %d = %s, want %s", perm, i, p.Key, want[i])
			}
		}
	}
	// An attribute this task saw no point for is skipped, not emitted.
	m := build([]int{0, 2, 5})
	delete(m.mins[0], 2)
	got := m.tightenedPairs()
	if len(got) != len(want)-1 || got[1].Key != "t0_5" {
		t.Fatalf("missing attribute not skipped: %v", got)
	}
}
