package core

import (
	"p3cmr/internal/mr"
	"p3cmr/internal/obs"
	"p3cmr/internal/signature"
	"p3cmr/internal/stats"
)

// coreGenerator runs Algorithm 1: a-priori generation of p-signatures from
// the relevant intervals, support proving with the Poisson (and optionally
// effect-size) test, multi-level candidate collection to batch proving jobs
// (§5.3), and the final maximality filter.
type coreGenerator struct {
	params    Params
	engine    *mr.Engine
	splits    []*mr.Split
	n         int
	support   map[string]int64 // signature key → measured support
	proven    map[string]bool  // signature key → passed all tests
	failed    map[string]bool  // signature key → tested and rejected
	tested    int
	truncated int // levels cut by LevelCap
	// trace is the phase span the generator's jobs nest under (0 = untraced).
	trace obs.SpanID
}

func newCoreGenerator(params Params, engine *mr.Engine, splits []*mr.Split, n int) *coreGenerator {
	return &coreGenerator{
		params:  params,
		engine:  engine,
		splits:  splits,
		n:       n,
		support: make(map[string]int64),
		proven:  make(map[string]bool),
		failed:  make(map[string]bool),
	}
}

// passes applies the combined support test of §4.1.2: the observed support
// must be significantly larger than expected under Poisson statistics, and,
// when enabled, the relative deviation must reach θcc.
func (g *coreGenerator) passes(observed int64, expected float64) bool {
	if !stats.PoissonTest(float64(observed), expected, g.params.AlphaPoisson) {
		return false
	}
	if g.params.UseEffectSize && !stats.EffectSizeTest(float64(observed), expected, g.params.ThetaCC) {
		return false
	}
	return true
}

// proveLevel1 seeds the lattice: each relevant interval becomes a
// 1-signature tested against the uniform expectation n·width (supports are
// already known from the histograms).
func (g *coreGenerator) proveLevel1(intervals []signature.Interval, supports []int64) []signature.Signature {
	var proven []signature.Signature
	for i, iv := range intervals {
		s := signature.New(iv)
		key := s.Key()
		g.support[key] = supports[i]
		g.tested++
		if g.passes(supports[i], s.ExpectedSupport(g.n)) {
			g.proven[key] = true
			proven = append(proven, s)
		} else {
			g.failed[key] = true
		}
	}
	signature.Sort(proven)
	return proven
}

// batch is one collected level of unproven candidates.
type batch struct {
	level int
	cands []signature.Signature
}

// run executes the generation loop and returns all proven signatures.
func (g *coreGenerator) run(intervals []signature.Interval, supports []int64) ([]signature.Signature, error) {
	level1 := g.proveLevel1(intervals, supports)
	allProven := append([]signature.Signature(nil), level1...)
	current := level1
	k := 2
	for len(current) > 0 && (g.params.MaxP == 0 || k <= g.params.MaxP) {
		// Multi-level candidate collection (§5.3): generate successive
		// levels from unproven candidates, deferring the proving job until
		// the stop heuristic fires:
		//   |Cand_j| == 0  ∨  (csum > Tc ∧ |Cand_j| > |Cand_j−1|).
		var collected []batch
		csum := 0
		prevSize := -1
		basis := current
		for g.params.MaxP == 0 || k <= g.params.MaxP {
			cands, err := generateCandidatesMR(g.engine, basis, g.params.Tgen, g.trace)
			if err != nil {
				return nil, err
			}
			cands = g.filterKnown(cands)
			if cap := g.params.LevelCap; cap > 0 && len(cands) > cap {
				// Pathologically wide lattice (see Params.LevelCap): keep a
				// deterministic prefix rather than enumerate a level no
				// cluster could hold.
				signature.Sort(cands)
				cands = cands[:cap]
				g.truncated++
			}
			if len(cands) == 0 {
				break
			}
			collected = append(collected, batch{level: k, cands: cands})
			csum += len(cands)
			// Defer proving only while the level stays small (§5.3: "if the
			// number of generated candidates on a level j is small"): a
			// large unproven level would make the next join quadratic in
			// its size, so it is proven (and thereby pruned) first.
			if len(cands) > g.params.Tc {
				break
			}
			if csum > g.params.Tc && prevSize >= 0 && len(cands) > prevSize {
				break
			}
			prevSize = len(cands)
			basis = cands
			k++
		}
		if len(collected) == 0 {
			break
		}
		newTop, err := g.proveBatches(collected)
		if err != nil {
			return nil, err
		}
		for _, b := range collected {
			for _, c := range b.cands {
				if g.proven[c.Key()] {
					allProven = append(allProven, c)
				}
			}
		}
		// Continue the a-priori sweep from the proven signatures of the
		// topmost collected level; when that set is empty no higher level
		// can satisfy the downward closure and the loop terminates.
		current = newTop
		k = collected[len(collected)-1].level + 1
	}
	return allProven, nil
}

// filterKnown drops candidates that were already tested.
func (g *coreGenerator) filterKnown(cands []signature.Signature) []signature.Signature {
	out := cands[:0]
	for _, c := range cands {
		key := c.Key()
		if !g.proven[key] && !g.failed[key] {
			out = append(out, c)
		}
	}
	return out
}

// proveBatches counts the supports of all collected candidates with a
// single MR job (§5.3) and evaluates the tests level by level, enforcing
// the downward closure of Definition 5: a candidate passes only when every
// immediate (p−1)-sub-signature is itself proven and the candidate's
// support is significant against each of them (Eq. 1). It returns the
// proven signatures of the topmost batch level.
func (g *coreGenerator) proveBatches(collected []batch) ([]signature.Signature, error) {
	var need []signature.Signature
	for _, b := range collected {
		for _, c := range b.cands {
			if _, ok := g.support[c.Key()]; !ok {
				need = append(need, c)
			}
		}
	}
	need = signature.Dedup(need)
	counts, err := countSupports(g.engine, g.splits, need, "prove-candidates", g.trace)
	if err != nil {
		return nil, err
	}
	for i, s := range need {
		g.support[s.Key()] = counts[i]
	}

	var top []signature.Signature
	for bi, b := range collected {
		var provenHere []signature.Signature
		for _, cand := range b.cands {
			g.tested++
			if g.candidatePasses(cand) {
				g.proven[cand.Key()] = true
				provenHere = append(provenHere, cand)
			} else {
				g.failed[cand.Key()] = true
			}
		}
		if bi == len(collected)-1 {
			top = provenHere
		}
	}
	signature.Sort(top)
	return top, nil
}

// candidatePasses evaluates Eq. 1 for one candidate against each immediate
// sub-signature.
func (g *coreGenerator) candidatePasses(cand signature.Signature) bool {
	supp, ok := g.support[cand.Key()]
	if !ok {
		return false
	}
	for idx := range cand.Intervals {
		sub := cand.Without(idx)
		subKey := sub.Key()
		if !g.proven[subKey] {
			return false
		}
		subSupp, ok := g.support[subKey]
		if !ok {
			return false
		}
		expected := signature.ExpectedSupportGiven(float64(subSupp), cand.Intervals[idx])
		if !g.passes(supp, expected) {
			return false
		}
	}
	return true
}
