package core

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"p3cmr/internal/mr"
	"p3cmr/internal/obs"
)

// TestChaosOpsServerLiveReads runs the ops plane against a live chaos
// pipeline: while the Light pipeline retries its way through an aggressive
// fault plan, a poller goroutine hammers /metrics, /runs and /healthz. Under
// -race this pins the snapshot isolation of the whole read path (Progress,
// Registry, Prometheus rendering) against concurrent span and counter
// writes; afterwards the final /runs payload must agree with the pipeline's
// own statistics.
func TestChaosOpsServerLiveReads(t *testing.T) {
	data, _ := genData(t, 2000, 12, 3, 0.1, 55)
	params := LightParams()
	params.NumSplits = 12

	reg := obs.NewRegistry()
	prog := obs.NewProgress()
	prog.SetPhasePlan("p3c-pipeline", params.PhasePlan())
	engine := mr.NewEngine(mr.Config{
		Parallelism: 8, NumReducers: 3,
		Faults:      mr.RateFaultPlan{MapRate: 0.25, ReduceRate: 0.3, StragglerRate: 0.4, StragglerSeconds: 7, Seed: 107},
		MaxAttempts: 12,
		Tracer:      obs.Multi(prog),
		Metrics:     reg,
	})

	srv, err := obs.StartOps("127.0.0.1:0", reg, prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	var polls atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/runs", "/healthz"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(base + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s = %d mid-run", path, resp.StatusCode)
					return
				}
				polls.Add(1)
			}
		}(path)
	}

	res, err := Run(engine, data, params)
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Counters.TaskRetries == 0 {
		t.Fatal("chaos plan injected no retries")
	}
	if polls.Load() == 0 {
		t.Fatal("poller never completed a request while the pipeline ran")
	}

	// The post-run /runs payload must reconcile with the pipeline result.
	resp, err := http.Get(base + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var runs []obs.RunSnapshot
	if err := json.Unmarshal(body, &runs); err != nil {
		t.Fatalf("/runs not JSON: %v\n%s", err, body)
	}
	if len(runs) != 1 {
		t.Fatalf("/runs has %d entries, want 1", len(runs))
	}
	final := runs[0]
	if final.Active || final.Outcome != "ok" || final.Name != "p3c-pipeline" {
		t.Fatalf("final run snapshot = %+v", final)
	}
	if final.JobsDone != res.Stats.Jobs {
		t.Errorf("/runs jobs_done = %d, pipeline ran %d jobs", final.JobsDone, res.Stats.Jobs)
	}
	if final.Retries != res.Stats.Counters.TaskRetries {
		t.Errorf("/runs retries = %d, pipeline counted %d", final.Retries, res.Stats.Counters.TaskRetries)
	}
	if final.Tasks != final.TasksDone || final.Tasks == 0 {
		t.Errorf("final tasks = %d/%d, want all done and nonzero", final.TasksDone, final.Tasks)
	}
	if final.Faults == 0 || final.Stragglers == 0 {
		t.Errorf("final snapshot saw %d faults, %d stragglers; want both > 0", final.Faults, final.Stragglers)
	}
}
