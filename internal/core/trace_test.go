package core

import (
	"fmt"
	"testing"

	"p3cmr/internal/mr"
	"p3cmr/internal/obs"
)

// TestPipelineTraceStructure: a traced pipeline run must produce one run
// span at the root, phase spans under it (in execution order), every job
// span under a phase span, and a structurally valid stream overall.
func TestPipelineTraceStructure(t *testing.T) {
	data, _ := genData(t, 1500, 10, 2, 0.05, 31)
	mem := obs.NewMemTracer()
	engine := mr.NewEngine(mr.Config{Parallelism: 4, Tracer: mem, Cost: mr.DefaultCostModel()})
	params := LightParams()
	res, err := Run(engine, data, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Validate(); err != nil {
		t.Fatalf("invalid span stream: %v", err)
	}

	runs := mem.SpansOf(obs.KindRun)
	if len(runs) != 1 || runs[0].Parent != 0 || runs[0].Name != "p3c-pipeline" {
		t.Fatalf("run spans = %+v, want one root p3c-pipeline span", runs)
	}
	runID := runs[0].ID

	phaseIDs := make(map[obs.SpanID]string)
	var phaseOrder []string
	for _, s := range mem.SpansOf(obs.KindPhase) {
		if s.Parent != runID {
			t.Errorf("phase %q not parented by the run span", s.Name)
		}
		phaseIDs[s.ID] = s.Name
		phaseOrder = append(phaseOrder, s.Name)
	}
	wantPhases := []string{
		"histograms", "core-generation", "redundancy-filter",
		"light-membership", "attribute-inspection", "tightening",
	}
	if fmt.Sprint(phaseOrder) != fmt.Sprint(wantPhases) {
		t.Errorf("phase order = %v, want %v", phaseOrder, wantPhases)
	}

	jobSpans := mem.SpansOf(obs.KindJob)
	if len(jobSpans) == 0 {
		t.Fatal("no job spans recorded")
	}
	for _, s := range jobSpans {
		if _, ok := phaseIDs[s.Parent]; !ok {
			t.Errorf("job span %q (parent %d) not nested in a phase span", s.Name, s.Parent)
		}
	}
	if len(jobSpans) != res.Stats.Jobs {
		t.Errorf("job spans = %d, Stats.Jobs = %d", len(jobSpans), res.Stats.Jobs)
	}

	// The run span's end must carry the pipeline's engine deltas.
	runEnd, ok := mem.EndOf(runID)
	if !ok {
		t.Fatal("run span never closed")
	}
	if runEnd.Counters != res.Stats.Counters {
		t.Errorf("run span counters %+v != Stats.Counters %+v", runEnd.Counters, res.Stats.Counters)
	}
	if runEnd.SimulatedSeconds != res.Stats.SimulatedSeconds {
		t.Errorf("run span sim s = %g, Stats = %g", runEnd.SimulatedSeconds, res.Stats.SimulatedSeconds)
	}

	// Phase counter deltas must sum to the run's counters: every job belongs
	// to exactly one phase.
	var phaseSum mr.Counters
	for _, e := range mem.Ends() {
		if e.Kind == obs.KindPhase {
			phaseSum.Add(e.Counters)
		}
	}
	if phaseSum != runEnd.Counters {
		t.Errorf("phase counter deltas sum to %+v, run span has %+v", phaseSum, runEnd.Counters)
	}
}

// TestPipelineChaosTraceIdentity: the full-pipeline analogue of the engine
// oracle — enabling tracing must not change labels, signatures, counters or
// modeled seconds of a chaos run at any parallelism.
func TestPipelineChaosTraceIdentity(t *testing.T) {
	data, _ := genData(t, 2000, 12, 2, 0.1, 53)
	params := LightParams()
	params.NumSplits = 8
	plan := mr.RateFaultPlan{MapRate: 0.3, CombineRate: 0.2, ReduceRate: 0.3,
		StragglerRate: 0.4, StragglerSeconds: 5, Seed: 211}

	for _, par := range []int{1, 8} {
		cfg := mr.Config{Parallelism: par, NumReducers: 3, Faults: plan,
			MaxAttempts: 12, Cost: mr.DefaultCostModel()}
		untraced, err := Run(mr.NewEngine(cfg), data, params)
		if err != nil {
			t.Fatalf("par=%d untraced: %v", par, err)
		}
		tcfg := cfg
		mem := obs.NewMemTracer()
		tcfg.Tracer = mem
		traced, err := Run(mr.NewEngine(tcfg), data, params)
		if err != nil {
			t.Fatalf("par=%d traced: %v", par, err)
		}
		name := fmt.Sprintf("traced/par=%d", par)
		assertChaosRun(t, name, untraced, traced)
		if traced.Stats.Counters != untraced.Stats.Counters {
			t.Errorf("%s: counters differ (including retries):\n traced %+v\nuntraced %+v",
				name, traced.Stats.Counters, untraced.Stats.Counters)
		}
		if traced.Stats.SimulatedSeconds != untraced.Stats.SimulatedSeconds {
			t.Errorf("%s: simulated seconds %g vs %g", name,
				traced.Stats.SimulatedSeconds, untraced.Stats.SimulatedSeconds)
		}
		if err := mem.Validate(); err != nil {
			t.Errorf("%s: invalid span stream: %v", name, err)
		}
		if traced.Stats.Counters.TaskRetries == 0 {
			t.Errorf("%s: no retries injected — identity proved nothing", name)
		}
	}
}
