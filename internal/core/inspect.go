package core

import (
	"fmt"
	"sort"

	"p3cmr/internal/histogram"
	"p3cmr/internal/mr"
	"p3cmr/internal/obs"
	"p3cmr/internal/signature"
	"p3cmr/internal/stats"
)

// clusterHistograms runs the attribute-inspection histogram job (§5.6): one
// histogram per (cluster, attribute) over the cluster members designated by
// membership (negative = no cluster). bins[c] is the per-cluster bin count
// (derived from the member count by the configured rule).
func clusterHistograms(engine *mr.Engine, splits []*mr.Split, membership []int, k, dim int, bins []int, trace obs.SpanID) ([][]*histogram.Histogram, error) {
	job := &mr.Job{
		Name:        "attribute-inspection-histograms",
		Splits:      splits,
		TraceParent: trace,
		Cache:       map[string]any{"membership": membership, "bins": bins},
		NewMapper: func() mr.Mapper {
			return &aiHistMapper{k: k, dim: dim}
		},
		TypedReducer: mr.TypedReducerFunc(func(ctx *mr.TaskContext, key string, values mr.Values) error {
			var agg []int64
			for i := 0; i < values.Len(); i++ {
				counts := values.Value(i).([]int64)
				if agg == nil {
					agg = make([]int64, len(counts))
				}
				for j, c := range counts {
					agg[j] += c
				}
			}
			ctx.Emit(key, agg)
			return nil
		}),
	}
	out, err := engine.Run(job)
	if err != nil {
		return nil, err
	}
	hists := make([][]*histogram.Histogram, k)
	for c := range hists {
		hists[c] = make([]*histogram.Histogram, dim)
		for d := range hists[c] {
			hists[c][d] = histogram.New(bins[c])
		}
	}
	for _, p := range out.Pairs {
		var c, d int
		if _, err := fmt.Sscanf(p.Key, "ai%d_%d", &c, &d); err != nil {
			return nil, fmt.Errorf("core: bad AI histogram key %q: %w", p.Key, err)
		}
		for b, cnt := range p.Value.([]int64) {
			hists[c][d].AddCount(b, cnt)
		}
	}
	return hists, nil
}

type aiHistMapper struct {
	k, dim     int
	membership []int
	bins       []int
	counts     [][][]int64 // [cluster][dim][bin]
	keys       [][]string  // [cluster][dim] emission keys
}

func (m *aiHistMapper) Setup(ctx *mr.TaskContext) error {
	m.membership = ctx.MustCache("membership").([]int)
	m.bins = ctx.MustCache("bins").([]int)
	m.counts = make([][][]int64, m.k)
	m.keys = make([][]string, m.k)
	for c := range m.keys {
		m.keys[c] = mr.IntKeys(fmt.Sprintf("ai%d_", c), m.dim)
	}
	return nil
}

func (m *aiHistMapper) Map(ctx *mr.TaskContext, global int, row []float64) error {
	c := m.membership[global]
	if c < 0 || c >= m.k {
		return nil
	}
	if m.counts[c] == nil {
		m.counts[c] = make([][]int64, m.dim)
		for d := range m.counts[c] {
			m.counts[c][d] = make([]int64, m.bins[c])
		}
	}
	for d, v := range row {
		m.counts[c][d][histogram.BinIndex(v, m.bins[c])]++
	}
	return nil
}

func (m *aiHistMapper) Cleanup(ctx *mr.TaskContext) error {
	for c := range m.counts {
		if m.counts[c] == nil {
			continue
		}
		for d := range m.counts[c] {
			ctx.Emit(m.keys[c][d], m.counts[c][d])
		}
	}
	return nil
}

// aiSuggestion is one attribute-inspection candidate: cluster c gains the
// interval iv on a new attribute.
type aiSuggestion struct {
	cluster int
	iv      signature.Interval
}

// attributeInspection finds, per cluster, the attributes that are
// non-uniformly distributed among the cluster members but missing from the
// cluster core (§4.2.3). With AI proving enabled the suggested intervals
// are additionally support-tested against the core signature (Eq. 1) in one
// MR job. It returns per-cluster attribute sets Ai (core attributes plus
// accepted additions).
func (p *pipeline) attributeInspection(membership []int, memberCounts []int64) ([][]int, error) {
	ps := p.beginPhase("attribute-inspection")
	k := len(p.cores)
	bins := make([]int, k)
	for c := range bins {
		n := int(memberCounts[c])
		switch p.params.BinRule {
		case Sturges:
			bins[c] = stats.SturgesBins(n)
		default:
			bins[c] = stats.FreedmanDiaconisBinsUniform(n)
		}
		if bins[c] < 1 {
			bins[c] = 1
		}
	}
	hists, err := clusterHistograms(p.engine, p.splits, membership, k, p.dim, bins, p.phaseSpan)
	if err != nil {
		ps.end(err)
		return nil, err
	}

	coreAttrSet := make([]map[int]bool, k)
	for c, core := range p.cores {
		coreAttrSet[c] = make(map[int]bool)
		for _, a := range core.Attrs() {
			coreAttrSet[c][a] = true
		}
	}

	// Collect suggested new intervals per cluster.
	var suggestions []aiSuggestion
	for c := 0; c < k; c++ {
		if memberCounts[c] < 2 {
			continue
		}
		for a := 0; a < p.dim; a++ {
			if coreAttrSet[c][a] {
				continue
			}
			ivs := hists[c][a].RelevantIntervals(p.params.AlphaChi2)
			for _, iv := range ivs {
				suggestions = append(suggestions, aiSuggestion{
					cluster: c,
					iv:      signature.Interval{Attr: a, Lo: iv.Lo, Hi: iv.Hi},
				})
			}
		}
	}

	accepted := make([][]bool, 1)
	if p.params.UseAIProving && len(suggestions) > 0 {
		ok, err := p.proveSuggestions(suggestions)
		if err != nil {
			ps.end(err)
			return nil, err
		}
		accepted[0] = ok
	} else {
		all := make([]bool, len(suggestions))
		for i := range all {
			all[i] = true
		}
		accepted[0] = all
	}

	attrs := make([][]int, k)
	for c := 0; c < k; c++ {
		set := make(map[int]bool)
		for a := range coreAttrSet[c] {
			set[a] = true
		}
		for i, s := range suggestions {
			if s.cluster == c && accepted[0][i] {
				set[s.iv.Attr] = true
			}
		}
		for a := range set {
			attrs[c] = append(attrs[c], a)
		}
		sort.Ints(attrs[c])
	}
	ps.end(nil)
	return attrs, nil
}

// proveSuggestions counts the supports of the core∪Inew signatures with one
// MR job and applies the combined support test against the core support
// (Eq. 1: expected = Supp(core)·width(Inew)).
func (p *pipeline) proveSuggestions(suggestions []aiSuggestion) ([]bool, error) {
	augmented := make([]signature.Signature, len(suggestions))
	for i, s := range suggestions {
		augmented[i] = p.cores[s.cluster].With(s.iv)
	}
	counts, err := countSupports(p.engine, p.splits, augmented, "ai-proving", p.phaseSpan)
	if err != nil {
		return nil, err
	}
	ok := make([]bool, len(suggestions))
	gen := newCoreGenerator(p.params, p.engine, p.splits, p.n)
	for i, s := range suggestions {
		expected := signature.ExpectedSupportGiven(float64(p.coreSupports[s.cluster]), s.iv)
		ok[i] = gen.passes(counts[i], expected)
	}
	return ok, nil
}
