package core

import (
	"fmt"

	"p3cmr/internal/histogram"
	"p3cmr/internal/mr"
	"p3cmr/internal/obs"
	"p3cmr/internal/signature"
)

// --- Histogram job (§5.1) -------------------------------------------------------

// histogramJob computes one histogram per attribute over all splits: each
// mapper accumulates local per-attribute counts and emits them in Cleanup;
// a single reducer merges the partial histograms (Eq. 8).
func histogramJob(engine *mr.Engine, splits []*mr.Split, dim, bins int, trace obs.SpanID) ([]*histogram.Histogram, error) {
	job := &mr.Job{
		Name:   "histograms",
		Splits: splits,
		NewMapper: func() mr.Mapper {
			return &histMapper{dim: dim, bins: bins}
		},
		TypedReducer: sumVectorsReducer(),
		TraceParent:  trace,
	}
	out, err := engine.Run(job)
	if err != nil {
		return nil, err
	}
	hists := make([]*histogram.Histogram, dim)
	for d := range hists {
		hists[d] = histogram.New(bins)
	}
	for _, p := range out.Pairs {
		var d int
		if _, err := fmt.Sscanf(p.Key, "h%d", &d); err != nil {
			return nil, fmt.Errorf("core: bad histogram key %q: %w", p.Key, err)
		}
		counts := p.Value.([]int64)
		for b, c := range counts {
			hists[d].AddCount(b, c)
		}
	}
	return hists, nil
}

type histMapper struct {
	dim, bins int
	counts    [][]int64
	keys      []string
}

func (m *histMapper) Setup(*mr.TaskContext) error {
	m.counts = make([][]int64, m.dim)
	for d := range m.counts {
		m.counts[d] = make([]int64, m.bins)
	}
	m.keys = mr.IntKeys("h", m.dim)
	return nil
}

func (m *histMapper) Map(ctx *mr.TaskContext, global int, row []float64) error {
	for d, v := range row {
		m.counts[d][histogram.BinIndex(v, m.bins)]++
	}
	return nil
}

func (m *histMapper) Cleanup(ctx *mr.TaskContext) error {
	for d, counts := range m.counts {
		ctx.Emit(m.keys[d], counts)
	}
	return nil
}

// sumVectorsReducer element-wise sums []int64 partials into a fresh
// accumulator, leaving the shuffled values untouched: reduce attempts may
// be retried under fault injection, and a retry re-reads the same shuffled
// input, so folding into values[0] in place would double-count (the engine's
// Reducer contract demands read-only values). Shared by the histogram,
// support-counting and redundancy-filter jobs, whose reduce sides are
// identical merges (Eq. 8).
func sumVectorsReducer() mr.TypedReducer {
	return mr.TypedReducerFunc(func(ctx *mr.TaskContext, key string, values mr.Values) error {
		first := values.Value(0).([]int64)
		agg := make([]int64, len(first))
		copy(agg, first)
		for i := 1; i < values.Len(); i++ {
			for j, c := range values.Value(i).([]int64) {
				agg[j] += c
			}
		}
		ctx.Emit(key, agg)
		return nil
	})
}

// --- Support counting job (§5.3, "Prove Candidates") ------------------------------

// countSupports measures the support of every signature with one MR job
// using the RSSC: mappers query the bitmap index per point and accumulate
// local counts; a single reducer sums the count vectors.
func countSupports(engine *mr.Engine, splits []*mr.Split, sigs []signature.Signature, name string, trace obs.SpanID) ([]int64, error) {
	if len(sigs) == 0 {
		return nil, nil
	}
	rssc := signature.NewRSSC(sigs)
	job := &mr.Job{
		Name:   name,
		Splits: splits,
		Cache:  map[string]any{"rssc": rssc},
		NewMapper: func() mr.Mapper {
			return &supportMapper{}
		},
		TypedReducer: sumVectorsReducer(),
		TraceParent:  trace,
	}
	out, err := engine.Run(job)
	if err != nil {
		return nil, err
	}
	v, ok := out.Single("supports")
	if !ok {
		// No mapper emitted (empty input): all supports zero.
		return make([]int64, len(sigs)), nil
	}
	return v.([]int64), nil
}

type supportMapper struct {
	rssc   *signature.RSSC
	counts []int64
	mask   []uint64
}

func (m *supportMapper) Setup(ctx *mr.TaskContext) error {
	m.rssc = ctx.MustCache("rssc").(*signature.RSSC)
	m.counts = make([]int64, m.rssc.NumSignatures())
	return nil
}

func (m *supportMapper) Map(ctx *mr.TaskContext, global int, row []float64) error {
	m.mask = m.rssc.Query(m.mask, row)
	signature.AddTo(m.counts, m.mask)
	return nil
}

func (m *supportMapper) Cleanup(ctx *mr.TaskContext) error {
	ctx.Emit("supports", m.counts)
	return nil
}

// --- Candidate generation job (§5.3) ----------------------------------------------

// generateCandidatesMR joins all compatible signature pairs of one a-priori
// level. When the pair count exceeds 2·Tgen the pair space is sharded over
// ⌊c/Tgen⌋ map-only tasks (the paper's distributed-cache scheme); otherwise
// the serial kernel runs inline.
func generateCandidatesMR(engine *mr.Engine, level []signature.Signature, tgen int64, trace obs.SpanID) ([]signature.Signature, error) {
	k := int64(len(level))
	c := k * (k - 1) / 2
	if c == 0 {
		return nil, nil
	}
	if tgen <= 0 || c <= 2*tgen {
		return signature.GenerateCandidates(level, 0, c), nil
	}
	numMappers := int(c / tgen)
	if numMappers < 2 {
		numMappers = 2
	}
	// Synthetic zero-row splits: the work is defined by the task id, the
	// level itself travels via the distributed cache.
	splits := make([]*mr.Split, numMappers)
	for i := range splits {
		splits[i] = &mr.Split{ID: i, Dim: 1}
	}
	per := (c + int64(numMappers) - 1) / int64(numMappers)
	job := &mr.Job{
		Name:   "candidate-generation",
		Splits: splits,
		Cache:  map[string]any{"level": level, "per": per, "total": c},
		NewMapper: func() mr.Mapper {
			return &genMapper{}
		},
		TraceParent: trace,
	}
	out, err := engine.Run(job)
	if err != nil {
		return nil, err
	}
	// The main program collects candidates, ignoring duplicates across
	// mappers (§5.3).
	seen := make(map[string]bool)
	var cands []signature.Signature
	for _, p := range out.Pairs {
		if !seen[p.Key] {
			seen[p.Key] = true
			cands = append(cands, p.Value.(signature.Signature))
		}
	}
	signature.Sort(cands)
	return cands, nil
}

type genMapper struct{}

func (genMapper) Setup(*mr.TaskContext) error { return nil }

func (genMapper) Map(*mr.TaskContext, int, []float64) error { return nil }

func (genMapper) Cleanup(ctx *mr.TaskContext) error {
	level := ctx.MustCache("level").([]signature.Signature)
	per := ctx.MustCache("per").(int64)
	total := ctx.MustCache("total").(int64)
	lo := int64(ctx.TaskID) * per
	hi := lo + per
	if hi > total {
		hi = total
	}
	for _, cand := range signature.GenerateCandidates(level, lo, hi) {
		ctx.Emit(cand.Key(), cand)
	}
	return nil
}

// --- Redundancy filter job (§4.2.1) ------------------------------------------------

// uncoveredCounts runs one pass computing, per signature, how many of its
// support points are not covered by any strictly more interesting
// signature.
func uncoveredCounts(engine *mr.Engine, splits []*mr.Split, sigs []signature.Signature, ratios []float64, trace obs.SpanID) ([]int64, error) {
	if len(sigs) == 0 {
		return nil, nil
	}
	rssc := signature.NewRSSC(sigs)
	job := &mr.Job{
		Name:   "redundancy-uncovered",
		Splits: splits,
		Cache:  map[string]any{"rssc": rssc, "sigs": sigs, "ratios": ratios},
		NewMapper: func() mr.Mapper {
			return &uncoveredMapper{}
		},
		TypedReducer: sumVectorsReducer(),
		TraceParent:  trace,
	}
	out, err := engine.Run(job)
	if err != nil {
		return nil, err
	}
	v, ok := out.Single("uncovered")
	if !ok {
		return make([]int64, len(sigs)), nil
	}
	return v.([]int64), nil
}

type uncoveredMapper struct {
	rssc *signature.RSSC
	acc  *signature.CoverageAccumulator
	mask []uint64
}

func (m *uncoveredMapper) Setup(ctx *mr.TaskContext) error {
	m.rssc = ctx.MustCache("rssc").(*signature.RSSC)
	sigs := ctx.MustCache("sigs").([]signature.Signature)
	ratios := ctx.MustCache("ratios").([]float64)
	m.acc = signature.NewCoverageAccumulator(sigs, ratios)
	return nil
}

func (m *uncoveredMapper) Map(ctx *mr.TaskContext, global int, row []float64) error {
	m.mask = m.rssc.Query(m.mask, row)
	m.acc.Add(m.mask)
	return nil
}

func (m *uncoveredMapper) Cleanup(ctx *mr.TaskContext) error {
	ctx.Emit("uncovered", m.acc.Counts())
	return nil
}

// --- Min/max interval-tightening job (§5.7) -----------------------------------------

// tighteningJob computes, per (cluster, attribute) of interest, the minimum
// and maximum attribute value over the cluster members. membership maps a
// global point index to its cluster (or a negative value for none); attrs
// lists the attributes to tighten per cluster.
func tighteningJob(engine *mr.Engine, splits []*mr.Split, membership []int, attrs [][]int, trace obs.SpanID) (mins, maxs []map[int]float64, err error) {
	k := len(attrs)
	job := &mr.Job{
		Name:        "interval-tightening",
		Splits:      splits,
		TraceParent: trace,
		Cache:       map[string]any{"membership": membership, "attrs": attrs},
		NewMapper: func() mr.Mapper {
			return &tightenMapper{}
		},
		TypedReducer: mr.TypedReducerFunc(func(ctx *mr.TaskContext, key string, values mr.Values) error {
			agg := values.Value(0).([2]float64)
			for i := 1; i < values.Len(); i++ {
				mm := values.Value(i).([2]float64)
				if mm[0] < agg[0] {
					agg[0] = mm[0]
				}
				if mm[1] > agg[1] {
					agg[1] = mm[1]
				}
			}
			ctx.Emit(key, agg)
			return nil
		}),
	}
	out, err := engine.Run(job)
	if err != nil {
		return nil, nil, err
	}
	mins = make([]map[int]float64, k)
	maxs = make([]map[int]float64, k)
	for i := range mins {
		mins[i] = make(map[int]float64)
		maxs[i] = make(map[int]float64)
	}
	for _, p := range out.Pairs {
		var c, a int
		if _, err := fmt.Sscanf(p.Key, "t%d_%d", &c, &a); err != nil {
			return nil, nil, fmt.Errorf("core: bad tightening key %q: %w", p.Key, err)
		}
		mm := p.Value.([2]float64)
		mins[c][a] = mm[0]
		maxs[c][a] = mm[1]
	}
	return mins, maxs, nil
}

type tightenMapper struct {
	membership []int
	attrs      [][]int
	mins, maxs []map[int]float64
}

func (m *tightenMapper) Setup(ctx *mr.TaskContext) error {
	m.membership = ctx.MustCache("membership").([]int)
	m.attrs = ctx.MustCache("attrs").([][]int)
	m.mins = make([]map[int]float64, len(m.attrs))
	m.maxs = make([]map[int]float64, len(m.attrs))
	for i := range m.attrs {
		m.mins[i] = make(map[int]float64)
		m.maxs[i] = make(map[int]float64)
	}
	return nil
}

func (m *tightenMapper) Map(ctx *mr.TaskContext, global int, row []float64) error {
	c := m.membership[global]
	if c < 0 || c >= len(m.attrs) {
		return nil
	}
	for _, a := range m.attrs[c] {
		v := row[a]
		if cur, ok := m.mins[c][a]; !ok || v < cur {
			m.mins[c][a] = v
		}
		if cur, ok := m.maxs[c][a]; !ok || v > cur {
			m.maxs[c][a] = v
		}
	}
	return nil
}

func (m *tightenMapper) Cleanup(ctx *mr.TaskContext) error {
	for _, p := range m.tightenedPairs() {
		ctx.Emit(p.Key, p.Value)
	}
	return nil
}

// tightenedPairs flattens the per-task min/max maps into emission order.
// It iterates the cluster's sorted attribute list, not the maps: map
// iteration order is randomized per run, and emission order feeds the
// shuffle, so ranging the maps here would break the engine's bit-identity
// guarantee. Attributes this task saw no point for have no map entry and
// are skipped.
func (m *tightenMapper) tightenedPairs() []mr.Pair {
	var out []mr.Pair
	for c := range m.attrs {
		for _, a := range m.attrs[c] {
			lo, ok := m.mins[c][a]
			if !ok {
				continue
			}
			out = append(out, mr.Pair{Key: fmt.Sprintf("t%d_%d", c, a), Value: [2]float64{lo, m.maxs[c][a]}})
		}
	}
	return out
}
