package core

import (
	"fmt"
	"testing"

	"p3cmr/internal/mr"
)

// chaosPlans is the fault-plan sweep of the pipeline chaos harness: map-only
// faults, reduce-only faults, and a mixed plan with combine faults and
// simulated stragglers. Rates are aggressive (a third to nearly half of all
// attempts die) so every one of the pipeline's job shapes sees retries;
// MaxAttempts 12 keeps the chance of deterministic exhaustion negligible.
var chaosPlans = []struct {
	name string
	plan mr.FaultPlan
}{
	{"map-only", mr.RateFaultPlan{MapRate: 0.35, Seed: 101}},
	{"reduce-only", mr.RateFaultPlan{ReduceRate: 0.45, Seed: 103}},
	{"mixed-stragglers", mr.RateFaultPlan{MapRate: 0.25, CombineRate: 0.25, ReduceRate: 0.3,
		StragglerRate: 0.4, StragglerSeconds: 7, Seed: 107}},
}

// assertChaosRun compares a faulty pipeline run against the fault-free
// baseline: labels, relevant-attribute sets, cores, signatures and all data
// counters must be bit-identical — the fault model may only cost (modeled)
// time, never change a single output bit.
func assertChaosRun(t *testing.T, name string, clean, faulty *Result) {
	t.Helper()
	if len(faulty.Labels) != len(clean.Labels) {
		t.Fatalf("%s: label count %d vs %d", name, len(faulty.Labels), len(clean.Labels))
	}
	for i := range clean.Labels {
		if faulty.Labels[i] != clean.Labels[i] {
			t.Fatalf("%s: label %d differs under faults (%d vs %d)", name, i, faulty.Labels[i], clean.Labels[i])
		}
	}
	if fmt.Sprint(faulty.RelevantAttrs) != fmt.Sprint(clean.RelevantAttrs) {
		t.Errorf("%s: relevant attrs differ: %v vs %v", name, faulty.RelevantAttrs, clean.RelevantAttrs)
	}
	if len(faulty.Cores) != len(clean.Cores) {
		t.Fatalf("%s: %d cores vs %d", name, len(faulty.Cores), len(clean.Cores))
	}
	for i := range clean.Cores {
		if !faulty.Cores[i].Equal(clean.Cores[i]) {
			t.Errorf("%s: core %d differs under faults", name, i)
		}
		if faulty.CoreSupports[i] != clean.CoreSupports[i] {
			t.Errorf("%s: core %d support %d vs %d", name, i, faulty.CoreSupports[i], clean.CoreSupports[i])
		}
	}
	if fmt.Sprint(faulty.Signatures) != fmt.Sprint(clean.Signatures) {
		t.Errorf("%s: tightened signatures differ under faults", name)
	}
	fc, cc := faulty.Stats.Counters, clean.Stats.Counters
	fc.TaskRetries, cc.TaskRetries = 0, 0
	if fc != cc {
		t.Errorf("%s: counters differ under faults:\n got %+v\nwant %+v", name, fc, cc)
	}
	if faulty.Stats.Jobs != clean.Stats.Jobs {
		t.Errorf("%s: job count %d vs %d", name, faulty.Stats.Jobs, clean.Stats.Jobs)
	}
}

// TestChaosLightPipeline runs the full P3C+-MR-Light pipeline under the
// fault-plan sweep at two parallelism levels and asserts bit-identical
// results versus the fault-free baseline. Together with the determinism
// tests, this turns PR 1's deterministic shuffle into the oracle for the
// engine's entire fault path: any leak of a failed attempt's pairs or
// counters, any reducer mutating its (retried) shuffled input, any
// scheduling dependence, shows up as a diff.
func TestChaosLightPipeline(t *testing.T) {
	data, _ := genData(t, 3000, 15, 3, 0.1, 77)
	params := LightParams()
	params.NumSplits = 12

	clean, err := Run(mr.NewEngine(mr.Config{Parallelism: 4, NumReducers: 3}), data, params)
	if err != nil {
		t.Fatal(err)
	}
	var retries int64
	for _, pc := range chaosPlans {
		for _, par := range []int{1, 8} {
			name := fmt.Sprintf("light/%s/par=%d", pc.name, par)
			engine := mr.NewEngine(mr.Config{Parallelism: par, NumReducers: 3, Faults: pc.plan, MaxAttempts: 12})
			faulty, err := Run(engine, data, params)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			assertChaosRun(t, name, clean, faulty)
			retries += faulty.Stats.Counters.TaskRetries
			if pc.name == "reduce-only" && engine.TotalWasted().ReduceInputKeys == 0 {
				t.Errorf("%s: no reduce-side work was wasted — plan not exercising reduce retries", name)
			}
		}
	}
	if retries == 0 {
		t.Fatal("chaos sweep injected no retries — harness exercised nothing")
	}
}

// TestChaosFullPipeline covers the EM-refinement and outlier-detection
// phases, whose floating-point reducers make them the most sensitive to a
// retry replaying or leaking partial work.
func TestChaosFullPipeline(t *testing.T) {
	data, _ := genData(t, 1500, 10, 2, 0.05, 99)
	params := NewParams()
	params.NumSplits = 8

	clean, err := Run(mr.NewEngine(mr.Config{Parallelism: 4, NumReducers: 3}), data, params)
	if err != nil {
		t.Fatal(err)
	}
	var retries int64
	for _, pc := range chaosPlans {
		for _, par := range []int{1, 8} {
			name := fmt.Sprintf("full/%s/par=%d", pc.name, par)
			engine := mr.NewEngine(mr.Config{Parallelism: par, NumReducers: 3, Faults: pc.plan, MaxAttempts: 12})
			faulty, err := Run(engine, data, params)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			assertChaosRun(t, name, clean, faulty)
			retries += faulty.Stats.Counters.TaskRetries
		}
	}
	if retries == 0 {
		t.Fatal("chaos sweep injected no retries — harness exercised nothing")
	}
}

// TestChaosPoisonedPoolsPipeline runs the Light pipeline with pool
// poisoning enabled under a mixed fault plan: every map/shuffle/reduce
// buffer the engine recycles is overwritten with sentinel garbage at return
// time, so a task attempt that reads a buffer it no longer owns — the bug
// class pooling introduces — corrupts labels, cores, or signatures visibly
// instead of passing on conveniently-zeroed memory. Bit-identity against
// the clean un-poisoned baseline at parallelism {1,8} is the oracle.
func TestChaosPoisonedPoolsPipeline(t *testing.T) {
	data, _ := genData(t, 2000, 12, 3, 0.1, 77)
	params := LightParams()
	params.NumSplits = 10

	clean, err := Run(mr.NewEngine(mr.Config{Parallelism: 4, NumReducers: 3}), data, params)
	if err != nil {
		t.Fatal(err)
	}
	plan := mr.RateFaultPlan{MapRate: 0.25, CombineRate: 0.25, ReduceRate: 0.3,
		StragglerRate: 0.2, StragglerSeconds: 3, Seed: 211}
	var retries int64
	for _, par := range []int{1, 8} {
		name := fmt.Sprintf("poisoned/par=%d", par)
		engine := mr.NewEngine(mr.Config{Parallelism: par, NumReducers: 3,
			Faults: plan, MaxAttempts: 12, DebugPoisonPools: true})
		faulty, err := Run(engine, data, params)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertChaosRun(t, name, clean, faulty)
		retries += faulty.Stats.Counters.TaskRetries
	}
	if retries == 0 {
		t.Fatal("poisoned-pool sweep injected no retries — harness exercised nothing")
	}
}

// TestChaosChargesSimulatedTime: under a cost model, a faulty pipeline run
// must model strictly more cluster time than the fault-free run (retries and
// stragglers burn slots) while producing the same Jobs count and counters.
func TestChaosChargesSimulatedTime(t *testing.T) {
	data, _ := genData(t, 2000, 12, 3, 0.1, 55)
	params := LightParams()
	params.NumSplits = 8

	clean, err := Run(mr.NewEngine(mr.Config{Parallelism: 4, Cost: mr.DefaultCostModel()}), data, params)
	if err != nil {
		t.Fatal(err)
	}
	plan := mr.RateFaultPlan{MapRate: 0.3, ReduceRate: 0.3, StragglerRate: 0.3, StragglerSeconds: 11, Seed: 5}
	faulty, err := Run(mr.NewEngine(mr.Config{Parallelism: 4, Cost: mr.DefaultCostModel(),
		Faults: plan, MaxAttempts: 12}), data, params)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Stats.Counters.TaskRetries == 0 {
		t.Fatal("no retries injected")
	}
	if faulty.Stats.SimulatedSeconds <= clean.Stats.SimulatedSeconds {
		t.Errorf("faulty run modeled at %g s, not above fault-free %g s",
			faulty.Stats.SimulatedSeconds, clean.Stats.SimulatedSeconds)
	}
	assertChaosRun(t, "cost", clean, faulty)
}
