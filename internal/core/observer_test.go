package core

import (
	"testing"

	"p3cmr/internal/mr"
)

func TestObserverPhasesLight(t *testing.T) {
	data, _ := genData(t, 1500, 10, 2, 0.05, 31)
	var phases []Phase
	params := LightParams()
	params.Observer = ObserverFunc(func(p Phase, detail int) {
		phases = append(phases, p)
		if detail < 0 {
			t.Errorf("phase %s negative detail %d", p, detail)
		}
	})
	if _, err := Run(mr.Default(), data, params); err != nil {
		t.Fatal(err)
	}
	want := []Phase{
		PhaseHistograms, PhaseRelevantIntervals, PhaseCoreGeneration,
		PhaseRedundancyFilter, PhaseAttributeInspection, PhaseTightening,
	}
	if len(phases) != len(want) {
		t.Fatalf("phases = %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phase %d = %s, want %s", i, phases[i], want[i])
		}
	}
}

func TestObserverPhasesFull(t *testing.T) {
	data, _ := genData(t, 1500, 10, 2, 0.05, 31)
	seen := map[Phase]int{}
	params := NewParams()
	params.Observer = ObserverFunc(func(p Phase, detail int) { seen[p] = detail })
	if _, err := Run(mr.Default(), data, params); err != nil {
		t.Fatal(err)
	}
	for _, p := range []Phase{PhaseEM, PhaseOutlierDetection, PhaseTightening} {
		if _, ok := seen[p]; !ok {
			t.Errorf("phase %s not observed", p)
		}
	}
	if seen[PhaseEM] < 1 {
		t.Errorf("EM iterations = %d", seen[PhaseEM])
	}
}

func TestObserverNilIsSafe(t *testing.T) {
	data, _ := genData(t, 800, 8, 2, 0, 3)
	params := LightParams()
	params.Observer = nil
	if _, err := Run(mr.Default(), data, params); err != nil {
		t.Fatal(err)
	}
}
