package core

import (
	"testing"

	"p3cmr/internal/mr"
	"p3cmr/internal/obs"
)

func TestObserverPhasesLight(t *testing.T) {
	data, _ := genData(t, 1500, 10, 2, 0.05, 31)
	var phases []Phase
	params := LightParams()
	params.Observer = ObserverFunc(func(p Phase, detail int) {
		phases = append(phases, p)
		if detail < 0 {
			t.Errorf("phase %s negative detail %d", p, detail)
		}
	})
	if _, err := Run(mr.Default(), data, params); err != nil {
		t.Fatal(err)
	}
	want := []Phase{
		PhaseHistograms, PhaseRelevantIntervals, PhaseCoreGeneration,
		PhaseRedundancyFilter, PhaseAttributeInspection, PhaseTightening,
	}
	if len(phases) != len(want) {
		t.Fatalf("phases = %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phase %d = %s, want %s", i, phases[i], want[i])
		}
	}
}

func TestObserverPhasesFull(t *testing.T) {
	data, _ := genData(t, 1500, 10, 2, 0.05, 31)
	seen := map[Phase]int{}
	params := NewParams()
	params.Observer = ObserverFunc(func(p Phase, detail int) { seen[p] = detail })
	if _, err := Run(mr.Default(), data, params); err != nil {
		t.Fatal(err)
	}
	for _, p := range []Phase{PhaseEM, PhaseOutlierDetection, PhaseTightening} {
		if _, ok := seen[p]; !ok {
			t.Errorf("phase %s not observed", p)
		}
	}
	if seen[PhaseEM] < 1 {
		t.Errorf("EM iterations = %d", seen[PhaseEM])
	}
}

// TestObserverPhasesFullOrdering pins the phase *sequence* of the full
// (EM + outlier detection) pipeline, not just membership: EM iterations may
// repeat, but the milestone order is fixed.
func TestObserverPhasesFullOrdering(t *testing.T) {
	data, _ := genData(t, 1500, 10, 2, 0.05, 31)
	var phases []Phase
	params := NewParams()
	params.Observer = ObserverFunc(func(p Phase, detail int) { phases = append(phases, p) })
	if _, err := Run(mr.Default(), data, params); err != nil {
		t.Fatal(err)
	}
	want := []Phase{
		PhaseHistograms, PhaseRelevantIntervals, PhaseCoreGeneration,
		PhaseRedundancyFilter, PhaseEM, PhaseOutlierDetection,
		PhaseAttributeInspection, PhaseTightening,
	}
	if len(phases) != len(want) {
		t.Fatalf("phases = %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phase %d = %s, want %s", i, phases[i], want[i])
		}
	}
}

// TestObserverAndTracerCompose: the coarse Observer callback and the span
// tracer are independent channels — one run must feed both, with the
// Observer's milestones each backed by a phase span in the trace.
func TestObserverAndTracerCompose(t *testing.T) {
	data, _ := genData(t, 1500, 10, 2, 0.05, 31)
	var observed []Phase
	mem := obs.NewMemTracer()
	params := LightParams()
	params.Observer = ObserverFunc(func(p Phase, detail int) { observed = append(observed, p) })
	engine := mr.NewEngine(mr.Config{Parallelism: 4, Tracer: mem})
	if _, err := Run(engine, data, params); err != nil {
		t.Fatal(err)
	}
	if len(observed) == 0 {
		t.Fatal("observer saw no phases")
	}
	if err := mem.Validate(); err != nil {
		t.Fatalf("invalid span stream: %v", err)
	}
	spanPhases := make(map[string]bool)
	for _, s := range mem.SpansOf(obs.KindPhase) {
		spanPhases[s.Name] = true
	}
	// Every traced phase that has an Observer milestone must appear in both
	// channels of the same run.
	for phase, span := range map[Phase]string{
		PhaseHistograms:          "histograms",
		PhaseCoreGeneration:      "core-generation",
		PhaseRedundancyFilter:    "redundancy-filter",
		PhaseAttributeInspection: "attribute-inspection",
		PhaseTightening:          "tightening",
	} {
		var saw bool
		for _, p := range observed {
			if p == phase {
				saw = true
				break
			}
		}
		if !saw {
			t.Errorf("observer missed phase %s", phase)
		}
		if !spanPhases[span] {
			t.Errorf("trace missing phase span %q", span)
		}
	}
}

func TestObserverNilIsSafe(t *testing.T) {
	data, _ := genData(t, 800, 8, 2, 0, 3)
	params := LightParams()
	params.Observer = nil
	if _, err := Run(mr.Default(), data, params); err != nil {
		t.Fatal(err)
	}
}
