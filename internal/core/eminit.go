package core

import (
	"fmt"
	"sort"

	"p3cmr/internal/em"
	"p3cmr/internal/linalg"
	"p3cmr/internal/mr"
	"p3cmr/internal/obs"
	"p3cmr/internal/signature"
)

// relevantAttrs returns Arel (Eq. 3): the union of the cores' attributes,
// ascending.
func relevantAttrs(cores []signature.Signature) []int {
	set := make(map[int]bool)
	for _, c := range cores {
		for _, a := range c.Attrs() {
			set[a] = true
		}
	}
	out := make([]int, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// initEMModel performs the two-iteration initialization of §5.4:
//
//  1. means and covariances from the cores' support sets only;
//  2. outliers (points in no core) assigned to their Mahalanobis-nearest
//     core, then means and covariances recomputed over support sets plus
//     assigned outliers.
//
// Each iteration is two MR jobs (means, then covariances). The returned
// model carries mixing weights proportional to the member counts.
func initEMModel(engine *mr.Engine, splits []*mr.Split, cores []signature.Signature, n int, trace obs.SpanID) (*em.Model, error) {
	attrs := relevantAttrs(cores)
	rssc := signature.NewRSSC(cores)

	model1, err := estimateCoreModel(engine, splits, rssc, attrs, nil, n, trace)
	if err != nil {
		return nil, fmt.Errorf("core: EM init pass 1: %w", err)
	}
	model2, err := estimateCoreModel(engine, splits, rssc, attrs, model1, n, trace)
	if err != nil {
		return nil, fmt.Errorf("core: EM init pass 2: %w", err)
	}
	return model2, nil
}

// estimateCoreModel runs one means job and one covariances job. When
// fallback is non-nil, points outside every core support set are assigned
// to their Mahalanobis-nearest fallback component; otherwise they are
// ignored.
func estimateCoreModel(engine *mr.Engine, splits []*mr.Split, rssc *signature.RSSC, attrs []int, fallback *em.Model, n int, trace obs.SpanID) (*em.Model, error) {
	if fallback != nil {
		if err := fallback.Prepare(); err != nil {
			return nil, err
		}
	}
	k := rssc.NumSignatures()
	d := len(attrs)

	// Job 1: per-core linear sums and counts.
	type sumStat struct {
		Sum   []float64
		Count int64
	}
	job1 := &mr.Job{
		Name:        "em-init-means",
		Splits:      splits,
		TraceParent: trace,
		Cache:       map[string]any{"rssc": rssc},
		NewMapper: func() mr.Mapper {
			return &coreMomentMapper{attrs: attrs, fallback: fallback, k: k}
		},
		TypedReducer: mr.TypedReducerFunc(func(ctx *mr.TaskContext, key string, values mr.Values) error {
			agg := sumStat{Sum: make([]float64, d)}
			for i := 0; i < values.Len(); i++ {
				st := values.Value(i).([2]any)
				agg.Count += st[1].(int64)
				for j, x := range st[0].([]float64) {
					agg.Sum[j] += x
				}
			}
			ctx.Emit(key, agg)
			return nil
		}),
	}
	out1, err := engine.Run(job1)
	if err != nil {
		return nil, err
	}
	means := make([][]float64, k)
	counts := make([]int64, k)
	for i := range means {
		means[i] = make([]float64, d)
	}
	for _, p := range out1.Pairs {
		var c int
		fmt.Sscanf(p.Key, "c%d", &c)
		st := p.Value.(sumStat)
		counts[c] = st.Count
		if st.Count > 0 {
			for j := range means[c] {
				means[c][j] = st.Sum[j] / float64(st.Count)
			}
		}
	}

	// Job 2: per-core scatter around the means.
	job2 := &mr.Job{
		Name:        "em-init-cov",
		Splits:      splits,
		TraceParent: trace,
		Cache:       map[string]any{"rssc": rssc},
		NewMapper: func() mr.Mapper {
			return &coreScatterMapper{attrs: attrs, fallback: fallback, k: k, means: means}
		},
		TypedReducer: mr.TypedReducerFunc(func(ctx *mr.TaskContext, key string, values mr.Values) error {
			var agg []float64
			for i := 0; i < values.Len(); i++ {
				s := values.Value(i).([]float64)
				if agg == nil {
					agg = make([]float64, len(s))
				}
				for j, x := range s {
					agg[j] += x
				}
			}
			ctx.Emit(key, agg)
			return nil
		}),
	}
	out2, err := engine.Run(job2)
	if err != nil {
		return nil, err
	}
	model := &em.Model{Attrs: attrs}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		total = int64(n)
	}
	scatters := make([][]float64, k)
	for _, p := range out2.Pairs {
		var c int
		fmt.Sscanf(p.Key, "c%d", &c)
		scatters[c] = p.Value.([]float64)
	}
	for i := 0; i < k; i++ {
		cov := linalg.NewMatrix(d, d)
		if counts[i] >= 2 && scatters[i] != nil {
			f := 1 / float64(counts[i]-1)
			for j := range cov.Data {
				cov.Data[j] = scatters[i][j] * f
			}
		} else {
			// Degenerate core: fall back to a diagonal prior matching the
			// core's interval widths so EM can still move it.
			for j := 0; j < d; j++ {
				cov.Set(j, j, 1e-2)
			}
		}
		model.Components = append(model.Components, &em.Component{
			Weight: float64(counts[i]+1) / float64(total+int64(k)),
			Mean:   means[i],
			Cov:    cov,
		})
	}
	return model, nil
}

// coreMomentMapper accumulates per-core linear sums over the core support
// sets (plus fallback assignments for out-of-core points when enabled).
type coreMomentMapper struct {
	attrs    []int
	fallback *em.Model
	k        int

	rssc   *signature.RSSC
	sums   [][]float64
	counts []int64
	keys   []string
	mask   []uint64
	proj   []float64
	sc1    []float64
	sc2    []float64
	ids    []int
}

func (m *coreMomentMapper) Setup(ctx *mr.TaskContext) error {
	m.rssc = ctx.MustCache("rssc").(*signature.RSSC)
	d := len(m.attrs)
	m.sums = make([][]float64, m.k)
	for i := range m.sums {
		m.sums[i] = make([]float64, d)
	}
	m.counts = make([]int64, m.k)
	m.keys = mr.IntKeys("c", m.k)
	m.proj = make([]float64, d)
	m.sc1 = make([]float64, d)
	m.sc2 = make([]float64, d)
	return nil
}

func (m *coreMomentMapper) project(row []float64) []float64 {
	for i, a := range m.attrs {
		m.proj[i] = row[a]
	}
	return m.proj
}

// membership returns the core indices containing the point, or the fallback
// assignment when the point is in no core and a fallback model exists.
func (m *coreMomentMapper) membership(row []float64) []int {
	m.mask = m.rssc.Query(m.mask, row)
	m.ids = signature.Ones(m.ids[:0], m.mask)
	if len(m.ids) == 0 && m.fallback != nil {
		x := m.project(row)
		best, bestD := -1, 0.0
		for i := 0; i < m.k; i++ {
			d := m.fallback.Mahalanobis(i, x, m.sc1, m.sc2)
			if best < 0 || d < bestD {
				best, bestD = i, d
			}
		}
		m.ids = append(m.ids, best)
	}
	return m.ids
}

func (m *coreMomentMapper) Map(ctx *mr.TaskContext, global int, row []float64) error {
	ids := m.membership(row)
	if len(ids) == 0 {
		return nil
	}
	x := m.project(row)
	for _, c := range ids {
		m.counts[c]++
		for j, v := range x {
			m.sums[c][j] += v
		}
	}
	return nil
}

func (m *coreMomentMapper) Cleanup(ctx *mr.TaskContext) error {
	for c := 0; c < m.k; c++ {
		if m.counts[c] > 0 {
			ctx.Emit(m.keys[c], [2]any{m.sums[c], m.counts[c]})
		}
	}
	return nil
}

// coreScatterMapper accumulates per-core scatter matrices around fixed
// means.
type coreScatterMapper struct {
	attrs    []int
	fallback *em.Model
	k        int
	means    [][]float64

	inner    coreMomentMapper
	scatters [][]float64
}

func (m *coreScatterMapper) Setup(ctx *mr.TaskContext) error {
	m.inner = coreMomentMapper{attrs: m.attrs, fallback: m.fallback, k: m.k}
	if err := m.inner.Setup(ctx); err != nil {
		return err
	}
	d := len(m.attrs)
	m.scatters = make([][]float64, m.k)
	for i := range m.scatters {
		m.scatters[i] = make([]float64, d*d)
	}
	return nil
}

func (m *coreScatterMapper) Map(ctx *mr.TaskContext, global int, row []float64) error {
	ids := m.inner.membership(row)
	if len(ids) == 0 {
		return nil
	}
	d := len(m.attrs)
	x := m.inner.project(row)
	for _, c := range ids {
		mu := m.means[c]
		s := m.scatters[c]
		for a := 0; a < d; a++ {
			da := x[a] - mu[a]
			if da == 0 {
				continue
			}
			base := a * d
			for b := 0; b < d; b++ {
				s[base+b] += da * (x[b] - mu[b])
			}
		}
	}
	return nil
}

func (m *coreScatterMapper) Cleanup(ctx *mr.TaskContext) error {
	for c := 0; c < m.k; c++ {
		ctx.Emit(m.inner.keys[c], m.scatters[c])
	}
	return nil
}
