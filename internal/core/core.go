package core

import (
	"fmt"
	"time"

	"p3cmr/internal/dataset"
	"p3cmr/internal/em"
	"p3cmr/internal/eval"
	"p3cmr/internal/histogram"
	"p3cmr/internal/mr"
	"p3cmr/internal/obs"
	"p3cmr/internal/outlier"
	"p3cmr/internal/signature"
	"p3cmr/internal/stats"
)

// pipeline carries the state of one clustering run.
type pipeline struct {
	params Params
	engine *mr.Engine
	data   *dataset.Dataset
	splits []*mr.Split
	n, dim int

	// tracer is the engine's tracer (nil when tracing is off); runSpan is
	// the pipeline's root span and phaseSpan the currently open phase span —
	// the TraceParent handed to every job launched within that phase.
	tracer    obs.Tracer
	runSpan   obs.SpanID
	phaseSpan obs.SpanID

	cores        []signature.Signature
	coreSupports []int64
	coreRatios   []float64
}

// Run executes the configured algorithm variant on the data set. The data
// must be normalized to [0,1] per attribute (see dataset.Normalize); values
// outside the range are binned into the border bins.
func Run(engine *mr.Engine, data *dataset.Dataset, params Params) (*Result, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := data.Validate(); err != nil {
		return nil, err
	}
	start := obs.Now()
	jobs0 := engine.JobsRun()
	sim0 := engine.TotalSimulatedSeconds()
	counters0 := engine.TotalCounters()
	wasted0 := engine.TotalWasted()

	numSplits := params.NumSplits
	if numSplits <= 0 {
		numSplits = 16
	}
	p := &pipeline{
		params: params,
		engine: engine,
		data:   data,
		splits: data.Splits(numSplits),
		n:      data.N(),
		dim:    data.Dim,
		tracer: engine.Tracer(),
	}
	if p.tracer != nil {
		p.runSpan = obs.NewSpanID()
		p.tracer.Begin(obs.Start{ID: p.runSpan, Kind: obs.KindRun, Name: "p3c-pipeline"})
	}

	res, err := p.run()
	if p.tracer != nil {
		c := engine.TotalCounters()
		c.Sub(counters0)
		w := engine.TotalWasted()
		w.Sub(wasted0)
		e := obs.End{ID: p.runSpan, Kind: obs.KindRun, Name: "p3c-pipeline",
			RealSeconds:      obs.Since(start).Seconds(),
			SimulatedSeconds: engine.TotalSimulatedSeconds() - sim0,
			Counters:         c, Wasted: w, Retries: c.TaskRetries}
		if err != nil {
			e.Outcome = obs.OutcomeError
			e.Err = err.Error()
		}
		p.tracer.End(e)
	}
	if err != nil {
		return nil, err
	}
	res.Stats.WallTime = obs.Since(start)
	res.Stats.Jobs = engine.JobsRun() - jobs0
	res.Stats.SimulatedSeconds = engine.TotalSimulatedSeconds() - sim0
	c := engine.TotalCounters()
	c.Sub(counters0)
	res.Stats.Counters = c
	return res, nil
}

// phaseScope tracks one open pipeline phase span together with the engine
// snapshots its end-of-phase deltas are computed against.
type phaseScope struct {
	p     *pipeline
	span  obs.SpanID
	name  string
	start time.Time
	sim0  float64
	ctr0  mr.Counters
	wst0  mr.Counters
}

// beginPhase opens a phase span under the run span and makes it the trace
// parent of subsequently launched jobs. With no tracer it returns nil, and
// calling end on the nil scope is a no-op.
func (p *pipeline) beginPhase(name string) *phaseScope {
	if p.tracer == nil {
		return nil
	}
	ps := &phaseScope{
		p: p, name: name, span: obs.NewSpanID(),
		sim0: p.engine.TotalSimulatedSeconds(),
		ctr0: p.engine.TotalCounters(),
		wst0: p.engine.TotalWasted(),
	}
	p.tracer.Begin(obs.Start{ID: ps.span, Parent: p.runSpan, Kind: obs.KindPhase, Name: name})
	ps.start = obs.Now()
	p.phaseSpan = ps.span
	return ps
}

// end closes the phase span, attributing the engine counter and cost deltas
// accumulated since beginPhase; a non-nil err marks the phase failed.
func (ps *phaseScope) end(err error) {
	if ps == nil {
		return
	}
	p := ps.p
	c := p.engine.TotalCounters()
	c.Sub(ps.ctr0)
	w := p.engine.TotalWasted()
	w.Sub(ps.wst0)
	e := obs.End{ID: ps.span, Kind: obs.KindPhase, Name: ps.name,
		RealSeconds:      obs.Since(ps.start).Seconds(),
		SimulatedSeconds: p.engine.TotalSimulatedSeconds() - ps.sim0,
		Counters:         c, Wasted: w, Retries: c.TaskRetries}
	if err != nil {
		e.Outcome = obs.OutcomeError
		e.Err = err.Error()
	}
	//lint:allow tracenil beginPhase returns a nil scope when the tracer is nil, and the ps == nil guard above returns first
	p.tracer.End(e)
	p.phaseSpan = 0
}

// observe notifies the configured Observer, if any.
func (p *pipeline) observe(phase Phase, detail int) {
	if p.params.Observer != nil {
		p.params.Observer.PhaseDone(phase, detail)
	}
}

// metric publishes one algorithm-quality scalar: a typed metric point on
// the given span (the open phase span, or the run span for cross-phase
// aggregates) and the matching p3c_<name> registry gauge. Driver-side
// values only, so they are bit-identical across backends; with tracing and
// metrics off this is two nil checks.
func (p *pipeline) metric(span obs.SpanID, name string, v float64) {
	if p.tracer != nil {
		p.tracer.Point(obs.Point{Span: span, Kind: obs.PointMetric, Name: name, Value: v})
	}
	reg := p.engine.Metrics()
	if reg != nil {
		reg.Gauge("p3c_" + name).Set(v)
	}
}

// binCount applies the configured bin rule to a sample size.
func (p *pipeline) binCount(n int) int {
	var bins int
	switch p.params.BinRule {
	case Sturges:
		bins = stats.SturgesBins(n)
	default:
		bins = stats.FreedmanDiaconisBinsUniform(n)
	}
	if bins < 1 {
		bins = 1
	}
	return bins
}

func (p *pipeline) run() (*Result, error) {
	// --- Histogram building (§5.1) and relevant intervals (§5.2) ------------
	bins := p.binCount(p.n)
	ps := p.beginPhase("histograms")
	hists, err := histogramJob(p.engine, p.splits, p.dim, bins, p.phaseSpan)
	if err != nil {
		ps.end(err)
		return nil, fmt.Errorf("core: histogram job: %w", err)
	}
	p.observe(PhaseHistograms, bins)
	intervals, supports := relevantIntervals(hists, p.params.AlphaChi2)
	var supportMass int64
	for _, s := range supports {
		supportMass += s
	}
	p.metric(p.phaseSpan, "quality_relevant_intervals", float64(len(intervals)))
	p.metric(p.phaseSpan, "quality_interval_support_frac", float64(supportMass)/float64(p.n*p.dim))
	ps.end(nil)
	p.observe(PhaseRelevantIntervals, len(intervals))

	// --- Cluster-core generation (§5.3) --------------------------------------
	ps = p.beginPhase("core-generation")
	gen := newCoreGenerator(p.params, p.engine, p.splits, p.n)
	gen.trace = p.phaseSpan
	proven, err := gen.run(intervals, supports)
	if err == nil {
		p.metric(p.phaseSpan, "quality_candidates_tested", float64(gen.tested))
	}
	ps.end(err)
	if err != nil {
		return nil, fmt.Errorf("core: cluster-core generation: %w", err)
	}
	p.observe(PhaseCoreGeneration, len(proven))
	coresBefore := len(signature.FilterMaximal(proven))

	var cores []signature.Signature
	if p.params.UseRedundancyFilter {
		ps = p.beginPhase("redundancy-filter")
		cores, err = p.redundancyRescue(gen, proven)
		ps.end(err)
		if err != nil {
			return nil, fmt.Errorf("core: redundancy filter: %w", err)
		}
	} else {
		cores = signature.FilterMaximal(proven)
	}
	p.observe(PhaseRedundancyFilter, len(cores))
	signature.Sort(cores)
	coreSupports := make([]int64, len(cores))
	ratios := make([]float64, len(cores))
	for i, c := range cores {
		coreSupports[i] = gen.support[c.Key()]
		ratios[i] = signature.InterestRatio(float64(coreSupports[i]), c, p.n)
	}
	p.cores, p.coreSupports, p.coreRatios = cores, coreSupports, ratios
	var coreMass int64
	for _, s := range coreSupports {
		coreMass += s
	}
	p.metric(p.runSpan, "quality_cores", float64(len(cores)))
	p.metric(p.runSpan, "quality_core_support_frac", float64(coreMass)/float64(p.n))

	res := &Result{
		Cores:        cores,
		CoreSupports: coreSupports,
	}
	if len(cores) > 0 {
		res.RelevantAttrs = relevantAttrs(cores)
	}
	res.Stats.CandidatesProven = gen.tested
	res.Stats.LevelsTruncated = gen.truncated
	res.Stats.CoresBeforeRedundancy = coresBefore
	res.Stats.Cores = len(cores)

	if len(cores) == 0 {
		res.Labels = make([]int, p.n)
		for i := range res.Labels {
			res.Labels[i] = outlier.OutlierLabel
		}
		return res, nil
	}

	if p.params.SkipRefinement {
		return p.finishLight(res)
	}
	return p.finishFull(res)
}

// redundancyRescue applies the redundancy filter of §4.2.1 iteratively.
// Round one is exactly the paper's procedure: among the maximal proven
// signatures, those whose support is (mostly) covered by strictly more
// interesting signatures are redundant and removed. The iteration handles a
// failure mode of overlapping clusters that a single pass cannot: a
// low-dimensional true core K overlapping a denser cluster on a shared
// attribute spawns proven supersets K∪{I} enriched by the *other* cluster's
// chunk. Those artifacts shadow K in the maximality filter and then die as
// redundant — deleting the cluster. After each round, signatures that are
// not subsets of an accepted core re-enter; the shadowed true core
// resurfaces as maximal in a later round and, being genuinely uncovered,
// survives. The loop terminates because every round permanently removes its
// maximal candidates from the pool.
func (p *pipeline) redundancyRescue(gen *coreGenerator, proven []signature.Signature) ([]signature.Signature, error) {
	var kept []signature.Signature
	pool := append([]signature.Signature(nil), proven...)
	for len(pool) > 0 {
		// Drop pool signatures already represented by an accepted core.
		var next []signature.Signature
		for _, s := range pool {
			shadowed := false
			for _, c := range kept {
				if s.SubsetOf(c) {
					shadowed = true
					break
				}
			}
			if !shadowed {
				next = append(next, s)
			}
		}
		pool = next
		if len(pool) == 0 {
			break
		}
		cands := signature.FilterMaximal(pool)

		// Coverage is evaluated against accepted cores plus this round's
		// candidates.
		all := append(append([]signature.Signature(nil), kept...), cands...)
		ratios := make([]float64, len(all))
		in := make([]signature.RedundancyInput, len(all))
		for i, s := range all {
			supp := gen.support[s.Key()]
			ratios[i] = signature.InterestRatio(float64(supp), s, p.n)
			in[i] = signature.RedundancyInput{Sig: s, Support: supp, Ratio: ratios[i]}
		}
		unc, err := uncoveredCounts(p.engine, p.splits, all, ratios, p.phaseSpan)
		if err != nil {
			return nil, err
		}
		red := signature.DecideRedundant(in, signature.Uncovered{Count: unc}, p.params.RedundancyCoverage)
		for i := len(kept); i < len(all); i++ {
			if !red[i] {
				kept = append(kept, all[i])
			}
		}
		// This round's candidates leave the pool for good: survivors are
		// cores, casualties are artifacts whose subsets get their chance
		// next round.
		candSet := make(map[string]bool, len(cands))
		for _, c := range cands {
			candSet[c.Key()] = true
		}
		var rest []signature.Signature
		for _, s := range pool {
			if !candSet[s.Key()] {
				rest = append(rest, s)
			}
		}
		pool = rest
	}
	return kept, nil
}

// relevantIntervals extracts the candidate intervals of every attribute
// from the global histograms, with their supports.
func relevantIntervals(hists []*histogram.Histogram, alpha float64) ([]signature.Interval, []int64) {
	var ivs []signature.Interval
	var supports []int64
	for a, h := range hists {
		for _, iv := range h.RelevantIntervals(alpha) {
			ivs = append(ivs, signature.Interval{Attr: a, Lo: iv.Lo, Hi: iv.Hi})
			supports = append(supports, iv.Support)
		}
	}
	return ivs, supports
}

// --- Full variant: EM refinement + outlier detection --------------------------

func (p *pipeline) finishFull(res *Result) (*Result, error) {
	ps := p.beginPhase("em")
	model, err := initEMModel(p.engine, p.splits, p.cores, p.n, p.phaseSpan)
	if err != nil {
		ps.end(err)
		return nil, fmt.Errorf("core: EM init: %w", err)
	}
	emOpts := p.params.EM
	emOpts.TraceParent = p.phaseSpan
	iters, err := em.FitMR(p.engine, p.splits, model, emOpts)
	ps.end(err)
	if err != nil {
		return nil, fmt.Errorf("core: EM: %w", err)
	}
	res.Stats.EMIterations = iters
	p.observe(PhaseEM, iters)

	ps = p.beginPhase("outlier-detection")
	labels, err := outlier.Detect(p.engine, p.splits, model, p.n, p.params.OutlierMethod, p.params.AlphaChi2, p.phaseSpan)
	ps.end(err)
	if err != nil {
		return nil, fmt.Errorf("core: outlier detection: %w", err)
	}
	res.Labels = labels
	numOutliers := 0
	for _, l := range labels {
		if l == outlier.OutlierLabel {
			numOutliers++
		}
	}
	p.observe(PhaseOutlierDetection, numOutliers)

	k := len(p.cores)
	memberCounts := make([]int64, k)
	for _, l := range labels {
		if l >= 0 && l < k {
			memberCounts[l]++
		}
	}
	attrs, err := p.attributeInspection(labels, memberCounts)
	if err != nil {
		return nil, fmt.Errorf("core: attribute inspection: %w", err)
	}
	p.observe(PhaseAttributeInspection, len(attrs))
	return p.finish(res, labels, attrs)
}

// --- Light variant (§6) ---------------------------------------------------------

// lightMembership computes, with one map-only job, the core membership list
// of every point (empty lists are not emitted).
func (p *pipeline) lightMembership() ([][]int, error) {
	rssc := signature.NewRSSC(p.cores)
	job := &mr.Job{
		Name:   "light-membership",
		Splits: p.splits,
		Cache:  map[string]any{"rssc": rssc},
		NewMapper: func() mr.Mapper {
			return &membershipMapper{}
		},
		TraceParent: p.phaseSpan,
	}
	out, err := p.engine.Run(job)
	if err != nil {
		return nil, err
	}
	members := make([][]int, p.n)
	for _, pr := range out.Pairs {
		rec := pr.Value.(memberRecord)
		members[rec.Global] = rec.Cores
	}
	return members, nil
}

type memberRecord struct {
	Global int
	Cores  []int
}

type membershipMapper struct {
	rssc *signature.RSSC
	mask []uint64
}

func (m *membershipMapper) Setup(ctx *mr.TaskContext) error {
	m.rssc = ctx.MustCache("rssc").(*signature.RSSC)
	return nil
}

func (m *membershipMapper) Map(ctx *mr.TaskContext, global int, row []float64) error {
	m.mask = m.rssc.Query(m.mask, row)
	ids := signature.Ones(nil, m.mask)
	if len(ids) > 0 {
		ctx.Emit("m", memberRecord{Global: global, Cores: ids})
	}
	return nil
}

func (m *membershipMapper) Cleanup(*mr.TaskContext) error { return nil }

func (p *pipeline) finishLight(res *Result) (*Result, error) {
	ps := p.beginPhase("light-membership")
	members, err := p.lightMembership()
	ps.end(err)
	if err != nil {
		return nil, fmt.Errorf("core: light membership: %w", err)
	}
	k := len(p.cores)

	// Unique-assignment membership (m′ of §6): points supporting more than
	// one core are excluded from histograms and tightening.
	unique := make([]int, p.n)
	labels := make([]int, p.n)
	uniqueCounts := make([]int64, k)
	for i, ids := range members {
		switch len(ids) {
		case 0:
			unique[i] = -1
			labels[i] = outlier.OutlierLabel
		case 1:
			unique[i] = ids[0]
			labels[i] = ids[0]
			uniqueCounts[ids[0]]++
		default:
			unique[i] = -1
			// For the disjoint label view, break ties toward the most
			// interesting core.
			best := ids[0]
			for _, c := range ids[1:] {
				if p.coreRatios[c] > p.coreRatios[best] {
					best = c
				}
			}
			labels[i] = best
		}
	}
	res.Labels = labels

	attrs, err := p.attributeInspection(unique, uniqueCounts)
	if err != nil {
		return nil, fmt.Errorf("core: light attribute inspection: %w", err)
	}
	p.observe(PhaseAttributeInspection, len(attrs))

	res2, err := p.finish(res, unique, attrs)
	if err != nil {
		return nil, err
	}
	// The Light result clusters are the full core support sets (possibly
	// overlapping), as §6 defines.
	clusters := make([]*eval.Cluster, k)
	for c := range clusters {
		clusters[c] = &eval.Cluster{Attrs: attrs[c]}
	}
	for i, ids := range members {
		for _, c := range ids {
			clusters[c].Objects = append(clusters[c].Objects, i)
		}
	}
	res2.Clusters = clusters
	return res2, nil
}

// finish runs the interval-tightening job and assembles the result.
// membership designates the points contributing to tightening; attrs is Ai
// per cluster.
func (p *pipeline) finish(res *Result, membership []int, attrs [][]int) (*Result, error) {
	k := len(p.cores)
	ps := p.beginPhase("tightening")
	mins, maxs, err := tighteningJob(p.engine, p.splits, membership, attrs, p.phaseSpan)
	ps.end(err)
	if err != nil {
		return nil, fmt.Errorf("core: interval tightening: %w", err)
	}
	p.observe(PhaseTightening, k)
	for c := 0; c < k; c++ {
		out := OutputSignature{ClusterID: c}
		for _, a := range attrs[c] {
			lo, okLo := mins[c][a]
			hi, okHi := maxs[c][a]
			if !okLo || !okHi {
				// No member carried the attribute (empty cluster): fall back
				// to the core interval when present.
				if iv, ok := p.cores[c].IntervalOn(a); ok {
					lo, hi = iv.Lo, iv.Hi
				} else {
					continue
				}
			}
			out.Intervals = append(out.Intervals, signature.Interval{Attr: a, Lo: lo, Hi: hi})
		}
		res.Signatures = append(res.Signatures, out)
	}

	// Default evaluation clusters from the disjoint labels (the Light
	// variant overwrites these with support sets).
	clusters := make([]*eval.Cluster, k)
	for c := range clusters {
		clusters[c] = &eval.Cluster{Attrs: attrs[c]}
	}
	for i, l := range res.Labels {
		if l >= 0 && l < k {
			clusters[l].Objects = append(clusters[l].Objects, i)
		}
	}
	res.Clusters = clusters
	return res, nil
}
