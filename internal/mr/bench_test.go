package mr

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"p3cmr/internal/obs"
)

// Micro-benchmarks for the engine's hot paths. The four shapes mirror the
// traffic the P3C+-MR pipeline actually generates:
//
//   - MapHeavy: per-record compute with one emit per task (histogram-style
//     jobs — §5.1, §5.3 — where mappers accumulate locally and emit in
//     Cleanup). Measures task scheduling + barrier overhead.
//   - ShuffleHeavy: one emit per record across many keys (EM refinement
//     style, §5.4). Measures partition + collection + grouping cost.
//   - Combiner{Off,On}: word-count shape with and without map-side folding.
//     Measures combine-side grouping cost and shuffle-volume accounting.
//   - WideKey: shuffle-heavy with ~64-byte keys. Measures the per-byte cost
//     of key interning and grouping.
//
// The primary benchmarks drive the typed emit plane (EmitF64 +
// TypedReducer/TypedCombiner) — the path the pipeline's own jobs use.
// ShuffleHeavyBoxed keeps the boxed-compat shim measurable so its overhead
// stays visible in bench diffs.
//
// Each engine benchmark runs one untimed warmup job before ResetTimer so the
// engine's buffer pools reach steady state; at -benchtime 1x the first
// iteration would otherwise be charged the one-off pool population cost.
//
// Run with: go test -bench=. -benchmem ./internal/mr/
const (
	benchRows   = 20000
	benchDim    = 8
	benchSplits = 16
	benchPar    = 4
)

func benchMakeSplits(n, dim, numSplits int) []*Split {
	rows := make([]float64, n*dim)
	for i := range rows {
		rows[i] = float64(i%97) * 0.5
	}
	splits := make([]*Split, 0, numSplits)
	base := n / numSplits
	rem := n % numSplits
	off := 0
	for s := 0; s < numSplits; s++ {
		sz := base
		if s < rem {
			sz++
		}
		splits = append(splits, &Split{ID: s, Offset: off, Dim: dim, Rows: rows[off*dim : (off+sz)*dim]})
		off += sz
	}
	return splits
}

// benchKeys precomputes a key table so fmt allocations never pollute the
// engine measurement.
func benchKeys(n int, width int) []string {
	keys := make([]string, n)
	for i := range keys {
		k := fmt.Sprintf("k%04d", i)
		if pad := width - len(k); pad > 0 {
			k += strings.Repeat("x", pad)
		}
		keys[i] = k
	}
	return keys
}

func benchSumTypedReducer() TypedReducer {
	return TypedReducerFunc(func(ctx *TaskContext, key string, values Values) error {
		var s float64
		for i := 0; i < values.Len(); i++ {
			s += values.Float64(i)
		}
		ctx.EmitF64(key, s)
		return nil
	})
}

func benchSumBoxedReducer() Reducer {
	return ReducerFunc(func(ctx *TaskContext, key string, values []any) error {
		var s float64
		for _, v := range values {
			s += v.(float64)
		}
		ctx.Emit(key, s)
		return nil
	})
}

// benchRunJob drives mkJob through the engine with one untimed warmup run
// (pool steady state) and then b.N timed runs.
func benchRunJob(b *testing.B, engine *Engine, mkJob func() *Job, wantPairs int) {
	b.Helper()
	b.ReportAllocs()
	run := func() {
		out, err := engine.Run(mkJob())
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Pairs) != wantPairs {
			b.Fatalf("output = %d pairs, want %d", len(out.Pairs), wantPairs)
		}
	}
	run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

func BenchmarkMapHeavy(b *testing.B) {
	splits := benchMakeSplits(benchRows, benchDim, benchSplits)
	engine := NewEngine(Config{Parallelism: benchPar, NumReducers: 4})
	benchRunJob(b, engine, func() *Job {
		return &Job{
			Name:         "bench-map-heavy",
			Splits:       splits,
			NewMapper:    func() Mapper { return &benchSumTaskMapper{} },
			TypedReducer: benchSumTypedReducer(),
		}
	}, 1)
}

type benchSumTaskMapper struct{ s float64 }

func (m *benchSumTaskMapper) Setup(*TaskContext) error { return nil }
func (m *benchSumTaskMapper) Map(ctx *TaskContext, global int, row []float64) error {
	for _, v := range row {
		m.s += v * v
	}
	return nil
}
func (m *benchSumTaskMapper) Cleanup(ctx *TaskContext) error {
	ctx.EmitF64("sum", m.s)
	return nil
}

func benchVals(n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i%13) * 0.25
	}
	return vals
}

func benchShuffle(b *testing.B, keys []string, combiner TypedCombiner) {
	benchShuffleEngine(b, keys, combiner, NewEngine(Config{Parallelism: benchPar, NumReducers: 4}))
}

func benchShuffleEngine(b *testing.B, keys []string, combiner TypedCombiner, engine *Engine) {
	splits := benchMakeSplits(benchRows, benchDim, benchSplits)
	vals := benchVals(len(keys))
	benchRunJob(b, engine, func() *Job {
		return &Job{
			Name:   "bench-shuffle",
			Splits: splits,
			Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
				ctx.EmitF64(keys[global%len(keys)], vals[global%len(vals)])
				return nil
			}),
			TypedReducer:  benchSumTypedReducer(),
			TypedCombiner: combiner,
		}
	}, len(keys))
}

func BenchmarkShuffleHeavy(b *testing.B) {
	benchShuffle(b, benchKeys(512, 0), nil)
}

// BenchmarkShuffleHeavyBoxed is the same shape on the boxed-compat shim:
// record-at-a-time any emission plus a []any reducer. The gap between this
// and ShuffleHeavy is the price legacy jobs pay for staying unmigrated.
func BenchmarkShuffleHeavyBoxed(b *testing.B) {
	keys := benchKeys(512, 0)
	splits := benchMakeSplits(benchRows, benchDim, benchSplits)
	// Pre-boxed values: interface boxing of a fresh float64 per emit is a
	// mapper-side cost, and folding it in would mask the engine's own
	// allocation behaviour (the thing under test).
	vals := make([]any, len(keys))
	for i := range vals {
		vals[i] = float64(i%13) * 0.25
	}
	engine := NewEngine(Config{Parallelism: benchPar, NumReducers: 4})
	benchRunJob(b, engine, func() *Job {
		return &Job{
			Name:   "bench-shuffle-boxed",
			Splits: splits,
			Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
				ctx.Emit(keys[global%len(keys)], vals[global%len(vals)])
				return nil
			}),
			Reducer: benchSumBoxedReducer(),
		}
	}, len(keys))
}

func BenchmarkCombinerOff(b *testing.B) {
	benchShuffle(b, benchKeys(64, 0), nil)
}

func BenchmarkCombinerOn(b *testing.B) {
	benchShuffle(b, benchKeys(64, 0), TypedCombinerFunc(func(key string, values Values, out *CombineEmit) error {
		var s float64
		for i := 0; i < values.Len(); i++ {
			s += values.Float64(i)
		}
		out.EmitF64(s)
		return nil
	}))
}

func BenchmarkWideKey(b *testing.B) {
	benchShuffle(b, benchKeys(512, 64), nil)
}

// BenchmarkShuffleHeavyTraced prices the tracing overhead: same shape as
// ShuffleHeavy with a JSONL tracer writing to io.Discard. The nil-tracer
// benchmarks above stay the zero-overhead pin; this one bounds the cost of
// turning tracing on (span + event marshalling per task attempt).
func BenchmarkShuffleHeavyTraced(b *testing.B) {
	tr := obs.NewJSONLTracer(io.Discard)
	engine := NewEngine(Config{Parallelism: benchPar, NumReducers: 4, Tracer: tr})
	benchShuffleEngine(b, benchKeys(512, 0), nil, engine)
}

// BenchmarkMapHeavyTraced mirrors MapHeavy with tracing enabled.
func BenchmarkMapHeavyTraced(b *testing.B) {
	splits := benchMakeSplits(benchRows, benchDim, benchSplits)
	tr := obs.NewJSONLTracer(io.Discard)
	engine := NewEngine(Config{Parallelism: benchPar, NumReducers: 4, Tracer: tr})
	benchRunJob(b, engine, func() *Job {
		return &Job{
			Name:         "bench-map-heavy",
			Splits:       splits,
			NewMapper:    func() Mapper { return &benchSumTaskMapper{} },
			TypedReducer: benchSumTypedReducer(),
		}
	}, 1)
}

// BenchmarkPartition isolates the key→reducer hash on a mix of key widths.
// The key tables are built before ResetTimer: at -benchtime 1x (the bench
// harness setting), b.N is 1 and setup allocations would otherwise dominate
// allocs/op — the hash itself is allocation-free (see TestPartitionAllocFree).
func BenchmarkPartition(b *testing.B) {
	keys := benchKeys(512, 0)
	wide := benchKeys(512, 64)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += partition(keys[i%len(keys)], 112)
		sink += partition(wide[i%len(wide)], 112)
	}
	_ = sink
}

// TestPartitionAllocFree pins the property BenchmarkPartition's allocs/op
// column is meant to show: hashing a key allocates nothing. The benchmark
// number once drifted to 2564 allocs/op because setup ran inside the
// measured window; this guard can't be fooled by harness settings.
func TestPartitionAllocFree(t *testing.T) {
	keys := benchKeys(64, 0)
	wide := benchKeys(64, 64)
	var sink int
	allocs := testing.AllocsPerRun(100, func() {
		for i := range keys {
			sink += partition(keys[i], 112)
			sink += partition(wide[i], 112)
		}
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("partition allocates: %v allocs/run, want 0", allocs)
	}
}
