package mr

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"p3cmr/internal/obs"
)

// Micro-benchmarks for the engine's hot paths. The four shapes mirror the
// traffic the P3C+-MR pipeline actually generates:
//
//   - MapHeavy: per-record compute with one emit per task (histogram-style
//     jobs — §5.1, §5.3 — where mappers accumulate locally and emit in
//     Cleanup). Measures task scheduling + barrier overhead.
//   - ShuffleHeavy: one emit per record across many keys (EM refinement
//     style, §5.4). Measures partition + collection + grouping cost.
//   - Combiner{Off,On}: word-count shape with and without map-side folding.
//     Measures combineBucket grouping cost and shuffle-volume accounting.
//   - WideKey: shuffle-heavy with ~64-byte keys. Measures the per-byte cost
//     of partitioning and sort-then-scan grouping.
//
// Run with: go test -bench=. -benchmem ./internal/mr/
const (
	benchRows   = 20000
	benchDim    = 8
	benchSplits = 16
	benchPar    = 4
)

func benchMakeSplits(n, dim, numSplits int) []*Split {
	rows := make([]float64, n*dim)
	for i := range rows {
		rows[i] = float64(i%97) * 0.5
	}
	splits := make([]*Split, 0, numSplits)
	base := n / numSplits
	rem := n % numSplits
	off := 0
	for s := 0; s < numSplits; s++ {
		sz := base
		if s < rem {
			sz++
		}
		splits = append(splits, &Split{ID: s, Offset: off, Dim: dim, Rows: rows[off*dim : (off+sz)*dim]})
		off += sz
	}
	return splits
}

// benchKeys precomputes a key table so fmt allocations never pollute the
// engine measurement.
func benchKeys(n int, width int) []string {
	keys := make([]string, n)
	for i := range keys {
		k := fmt.Sprintf("k%04d", i)
		if pad := width - len(k); pad > 0 {
			k += strings.Repeat("x", pad)
		}
		keys[i] = k
	}
	return keys
}

func benchSumReducer() Reducer {
	return ReducerFunc(func(ctx *TaskContext, key string, values []any) error {
		var s float64
		for _, v := range values {
			s += v.(float64)
		}
		ctx.Emit(key, s)
		return nil
	})
}

func BenchmarkMapHeavy(b *testing.B) {
	splits := benchMakeSplits(benchRows, benchDim, benchSplits)
	engine := NewEngine(Config{Parallelism: benchPar, NumReducers: 4})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		job := &Job{
			Name:      "bench-map-heavy",
			Splits:    splits,
			NewMapper: func() Mapper { return &benchSumTaskMapper{} },
			Reducer:   benchSumReducer(),
		}
		out, err := engine.Run(job)
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Pairs) != 1 {
			b.Fatalf("output = %d pairs", len(out.Pairs))
		}
	}
}

type benchSumTaskMapper struct{ s float64 }

func (m *benchSumTaskMapper) Setup(*TaskContext) error { return nil }
func (m *benchSumTaskMapper) Map(ctx *TaskContext, global int, row []float64) error {
	for _, v := range row {
		m.s += v * v
	}
	return nil
}
func (m *benchSumTaskMapper) Cleanup(ctx *TaskContext) error {
	ctx.Emit("sum", m.s)
	return nil
}

func benchShuffle(b *testing.B, keys []string, combiner Combiner) {
	benchShuffleEngine(b, keys, combiner, NewEngine(Config{Parallelism: benchPar, NumReducers: 4}))
}

func benchShuffleEngine(b *testing.B, keys []string, combiner Combiner, engine *Engine) {
	splits := benchMakeSplits(benchRows, benchDim, benchSplits)
	// Pre-boxed values: interface boxing of a fresh float64 per emit is a
	// mapper-side cost, and folding it in would mask the engine's own
	// allocation behaviour (the thing under test).
	vals := make([]any, len(keys))
	for i := range vals {
		vals[i] = float64(i%13) * 0.25
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		job := &Job{
			Name:   "bench-shuffle",
			Splits: splits,
			Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
				ctx.Emit(keys[global%len(keys)], vals[global%len(vals)])
				return nil
			}),
			Reducer:  benchSumReducer(),
			Combiner: combiner,
		}
		out, err := engine.Run(job)
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Pairs) != len(keys) {
			b.Fatalf("output = %d pairs, want %d", len(out.Pairs), len(keys))
		}
	}
}

func BenchmarkShuffleHeavy(b *testing.B) {
	benchShuffle(b, benchKeys(512, 0), nil)
}

func BenchmarkCombinerOff(b *testing.B) {
	benchShuffle(b, benchKeys(64, 0), nil)
}

func BenchmarkCombinerOn(b *testing.B) {
	benchShuffle(b, benchKeys(64, 0), CombinerFunc(func(key string, values []any) ([]any, error) {
		var s float64
		for _, v := range values {
			s += v.(float64)
		}
		return []any{s}, nil
	}))
}

func BenchmarkWideKey(b *testing.B) {
	benchShuffle(b, benchKeys(512, 64), nil)
}

// BenchmarkShuffleHeavyTraced prices the tracing overhead: same shape as
// ShuffleHeavy with a JSONL tracer writing to io.Discard. The nil-tracer
// benchmarks above stay the zero-overhead pin; this one bounds the cost of
// turning tracing on (span + event marshalling per task attempt).
func BenchmarkShuffleHeavyTraced(b *testing.B) {
	tr := obs.NewJSONLTracer(io.Discard)
	engine := NewEngine(Config{Parallelism: benchPar, NumReducers: 4, Tracer: tr})
	benchShuffleEngine(b, benchKeys(512, 0), nil, engine)
}

// BenchmarkMapHeavyTraced mirrors MapHeavy with tracing enabled.
func BenchmarkMapHeavyTraced(b *testing.B) {
	splits := benchMakeSplits(benchRows, benchDim, benchSplits)
	tr := obs.NewJSONLTracer(io.Discard)
	engine := NewEngine(Config{Parallelism: benchPar, NumReducers: 4, Tracer: tr})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		job := &Job{
			Name:      "bench-map-heavy",
			Splits:    splits,
			NewMapper: func() Mapper { return &benchSumTaskMapper{} },
			Reducer:   benchSumReducer(),
		}
		out, err := engine.Run(job)
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Pairs) != 1 {
			b.Fatalf("output = %d pairs", len(out.Pairs))
		}
	}
}

// BenchmarkPartition isolates the key→reducer hash on a mix of key widths.
func BenchmarkPartition(b *testing.B) {
	keys := benchKeys(512, 0)
	wide := benchKeys(512, 64)
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += partition(keys[i%len(keys)], 112)
		sink += partition(wide[i%len(wide)], 112)
	}
	_ = sink
}
