package mr

import (
	"reflect"
	"testing"
	"time"

	"p3cmr/internal/obs"
)

// TestMultiprocTelemetry pins the worker telemetry plane end to end: a
// multiprocess chaos run with a tracer attached must yield ONE coherent span
// forest in which worker-side step spans (map-exec, spill-write,
// segment-merge, frame-encode) hang off their driver-side task-attempt
// spans, resource samples arrive as worker-attributed points, and the
// per-worker fault accounting reconciles exactly with the driver's retry
// counters.
func TestMultiprocTelemetry(t *testing.T) {
	mem := obs.NewMemTracer()
	engine := NewEngine(Config{
		Parallelism: 4, Backend: "multiprocess",
		SpillDir: t.TempDir(), SpillThresholdBytes: 1,
		Faults:      RateFaultPlan{MapRate: 0.3, ReduceRate: 0.3, Seed: 11},
		MaxAttempts: 12,
		Tracer:      mem, TelemetrySample: 2 * time.Millisecond,
	})
	out, err := engine.Run(confJob("conf-wordcount", "typed", 800, 6, 3))
	if err != nil {
		t.Fatal(err)
	}
	if out.Counters.TaskRetries == 0 {
		t.Fatal("fault plan injected no retries — telemetry chaos path unexercised")
	}
	if err := mem.Validate(); err != nil {
		t.Fatalf("merged span forest invalid: %v", err)
	}
	stats, ok := engine.LastProcStats()
	if !ok || stats.TelemetryEvents == 0 {
		t.Fatalf("no telemetry events folded into the driver (stats=%+v ok=%v)", stats, ok)
	}

	// Step spans: present, worker-attributed, correctly named, and parented
	// under task-attempt spans.
	knownSteps := map[string]bool{
		"map-exec": true, "spill-write": true, "segment-merge": true, "frame-encode": true,
	}
	stepNames := make(map[string]bool)
	steps := 0
	for _, e := range mem.Ends() {
		if e.Kind != obs.KindStep {
			continue
		}
		steps++
		stepNames[e.Name] = true
		if !knownSteps[e.Name] {
			t.Errorf("unknown step name %q", e.Name)
		}
		if e.Worker == "" {
			t.Errorf("step %q end lacks worker attribution", e.Name)
		}
		if e.RealSeconds < 0 {
			t.Errorf("step %q has negative duration %g", e.Name, e.RealSeconds)
		}
		start, ok := mem.StartOf(e.ID)
		if !ok {
			t.Fatalf("step end %d has no start", e.ID)
		}
		if parent, ok := mem.StartOf(start.Parent); !ok || parent.Kind != obs.KindTask {
			t.Errorf("step %q parent is not a task span (ok=%v kind=%v)", e.Name, ok, parent.Kind)
		}
		if start.At.IsZero() || e.At.IsZero() {
			t.Errorf("step %q missing aligned timestamps (begin zero=%v end zero=%v)",
				e.Name, start.At.IsZero(), e.At.IsZero())
		}
	}
	if steps == 0 {
		t.Fatal("no worker step spans in the merged forest")
	}
	// SpillThresholdBytes=1 forces mid-task spills, so every step family of
	// a map+reduce job must appear.
	for name := range knownSteps {
		if !stepNames[name] {
			t.Errorf("step family %q never observed", name)
		}
	}

	// Resource samples: worker-attributed points carrying a sample payload,
	// with per-worker monotonically non-decreasing CPU.
	lastCPU := make(map[string]float64)
	sampled := 0
	for _, p := range mem.Points() {
		if p.Kind != obs.PointSample {
			continue
		}
		sampled++
		if p.Worker == "" || p.Sample == nil {
			t.Fatalf("sample point lacks worker or payload: %+v", p)
		}
		if p.At.IsZero() {
			t.Error("sample point missing aligned timestamp")
		}
		if p.Sample.CPUSeconds < lastCPU[p.Worker] {
			t.Errorf("worker %s CPU went backwards: %g < %g", p.Worker, p.Sample.CPUSeconds, lastCPU[p.Worker])
		}
		lastCPU[p.Worker] = p.Sample.CPUSeconds
	}
	if sampled == 0 {
		t.Fatal("no resource samples in the merged forest")
	}

	// Per-worker reconciliation: each injected fault kills one attempt and
	// triggers exactly one retry (the job succeeded within MaxAttempts), so
	// worker-attributed fault ends must sum to the driver's TaskRetries and
	// their diverted counters to the driver's Wasted.
	faultsByWorker := make(map[string]int64)
	var wastedRecords int64
	for _, e := range mem.Ends() {
		if e.Kind == obs.KindTask && e.Outcome == obs.OutcomeFault {
			if e.Worker == "" {
				t.Errorf("faulted task attempt lacks worker attribution: %+v", e)
			}
			faultsByWorker[e.Worker]++
			wastedRecords += e.Wasted.MapInputRecords + e.Wasted.ReduceInputVals
		}
	}
	var totalFaults int64
	for _, n := range faultsByWorker {
		totalFaults += n
	}
	if totalFaults != out.Counters.TaskRetries {
		t.Errorf("worker-attributed faults = %d, driver TaskRetries = %d", totalFaults, out.Counters.TaskRetries)
	}
	if want := out.Wasted.MapInputRecords + out.Wasted.ReduceInputVals; wastedRecords != want {
		t.Errorf("worker-attributed wasted records = %d, driver Wasted = %d", wastedRecords, want)
	}
}

// TestMultiprocTelemetryOff pins the strictly-additive contract: without a
// tracer the driver exports no telemetry env, folds zero telemetry events,
// and produces bit-identical output to a telemetry-on run of the same job.
func TestMultiprocTelemetryOff(t *testing.T) {
	run := func(tr obs.Tracer) (*Output, ProcStats) {
		engine := NewEngine(Config{
			Parallelism: 4, Backend: "multiprocess",
			SpillDir: t.TempDir(), SpillThresholdBytes: 1,
			Faults:      RateFaultPlan{MapRate: 0.3, ReduceRate: 0.3, Seed: 11},
			MaxAttempts: 12,
			Tracer:      tr, TelemetrySample: time.Millisecond,
		})
		out, err := engine.Run(confJob("conf-wordcount", "typed", 800, 6, 3))
		if err != nil {
			t.Fatal(err)
		}
		stats, ok := engine.LastProcStats()
		if !ok {
			t.Fatal("no ProcStats")
		}
		return out, stats
	}

	mem := obs.NewMemTracer()
	onOut, onStats := run(mem)
	offOut, offStats := run(nil)

	if offStats.TelemetryEvents != 0 {
		t.Errorf("telemetry-off run folded %d telemetry events, want 0", offStats.TelemetryEvents)
	}
	if onStats.TelemetryEvents == 0 {
		t.Error("telemetry-on run folded no events — off-run comparison proves nothing")
	}
	if !reflect.DeepEqual(onOut.Pairs, offOut.Pairs) {
		t.Error("output pairs differ between telemetry on and off")
	}
	if onOut.Counters != offOut.Counters {
		t.Errorf("counters differ: on=%+v off=%+v", onOut.Counters, offOut.Counters)
	}
	if onOut.Wasted != offOut.Wasted {
		t.Errorf("wasted differ: on=%+v off=%+v", onOut.Wasted, offOut.Wasted)
	}
}
