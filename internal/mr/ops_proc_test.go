package mr

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p3cmr/internal/obs"
)

// TestOpsProcLiveReads runs the full ops plane against a live multiprocess
// chaos run: while injected faults SIGKILL real worker processes, poller
// goroutines hammer /metrics, /runs, /workers and /healthz. Under -race this
// pins the read path (Progress, Registry, WorkerStats, Prometheus
// rendering) against the driver folding worker telemetry frames
// concurrently; afterwards the /runs and /workers payloads must reconcile
// with the driver's own counters.
func TestOpsProcLiveReads(t *testing.T) {
	reg := obs.NewRegistry()
	prog := obs.NewProgress()
	workers := obs.NewWorkerStats()
	mem := obs.NewMemTracer()
	engine := NewEngine(Config{
		Parallelism: 4, Backend: "multiprocess",
		SpillDir: t.TempDir(), SpillThresholdBytes: 1,
		Faults:      RateFaultPlan{MapRate: 0.3, ReduceRate: 0.3, Seed: 23},
		MaxAttempts: 12,
		Tracer:      obs.Multi(prog, workers, mem),
		Metrics:     reg, TelemetrySample: 2 * time.Millisecond,
	})

	srv, err := obs.StartOps("127.0.0.1:0", reg, prog, workers, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	var polls atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/runs", "/workers", "/healthz"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(base + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s = %d mid-run", path, resp.StatusCode)
					return
				}
				polls.Add(1)
			}
		}(path)
	}

	// Two multiprocess jobs under one hand-rolled run span, so Progress
	// tracks a run while worker fleets spawn, die and respawn beneath it.
	runSpan := obs.NewSpanID()
	tr := engine.Tracer()
	tr.Begin(obs.Start{ID: runSpan, Kind: obs.KindRun, Name: "ops-proc"})
	var totalRetries int64
	var runErr error
	for i := 0; i < 2 && runErr == nil; i++ {
		job := confJob("conf-wordcount", "typed", 600, 6, 3)
		job.TraceParent = runSpan
		var out *Output
		out, runErr = engine.Run(job)
		if runErr == nil {
			totalRetries += out.Counters.TaskRetries
		}
	}
	end := obs.End{ID: runSpan, Kind: obs.KindRun, Name: "ops-proc", Retries: totalRetries}
	if runErr != nil {
		end.Outcome = obs.OutcomeError
		end.Err = runErr.Error()
	}
	tr.End(end)
	close(done)
	wg.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if totalRetries == 0 {
		t.Fatal("chaos plan injected no retries")
	}
	if polls.Load() == 0 {
		t.Fatal("pollers never completed a request while the run was live")
	}
	if err := mem.Validate(); err != nil {
		t.Fatalf("span forest invalid after concurrent polling: %v", err)
	}

	// Ground truth from the MemTracer: worker-attributed attempts and faults.
	wantAttempts, wantFaults := 0, 0
	for _, e := range mem.Ends() {
		if e.Kind == obs.KindTask && e.Worker != "" {
			wantAttempts++
			if e.Outcome == obs.OutcomeFault {
				wantFaults++
			}
		}
	}

	// /workers must partition the run's attempts and faults exactly.
	resp, err := http.Get(base + "/workers")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snaps []obs.WorkerSnapshot
	if err := json.Unmarshal(body, &snaps); err != nil {
		t.Fatalf("/workers not JSON: %v\n%s", err, body)
	}
	if len(snaps) == 0 {
		t.Fatal("/workers empty after a multiprocess run")
	}
	gotAttempts, gotFaults, gotSamples := 0, 0, int64(0)
	for _, s := range snaps {
		if s.Worker == "" {
			t.Errorf("worker snapshot without a name: %+v", s)
		}
		gotAttempts += int(s.Attempts)
		gotFaults += int(s.Faults)
		gotSamples += s.Samples
	}
	if gotAttempts != wantAttempts {
		t.Errorf("/workers covers %d attempts, span stream has %d", gotAttempts, wantAttempts)
	}
	if gotFaults != wantFaults {
		t.Errorf("/workers covers %d faults, span stream has %d", gotFaults, wantFaults)
	}
	if int64(gotFaults) != totalRetries {
		t.Errorf("/workers faults = %d, driver TaskRetries = %d", gotFaults, totalRetries)
	}
	if gotSamples == 0 {
		t.Error("/workers reports zero resource samples across the fleet")
	}

	// /metrics must now carry the per-worker families.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, fam := range []string{"p3c_worker_attempts_total", "p3c_worker_faults_total", "p3c_worker_samples_total"} {
		if !strings.Contains(string(metrics), fam) {
			t.Errorf("/metrics missing %s family after a telemetry run", fam)
		}
	}

	// The final /runs snapshot must agree with the driver counters.
	resp, err = http.Get(base + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var runs []obs.RunSnapshot
	if err := json.Unmarshal(body, &runs); err != nil {
		t.Fatalf("/runs not JSON: %v\n%s", err, body)
	}
	if len(runs) != 1 {
		t.Fatalf("/runs has %d entries, want 1", len(runs))
	}
	final := runs[0]
	if final.Active || final.Name != "ops-proc" {
		t.Fatalf("final run snapshot = %+v", final)
	}
	if final.Retries != totalRetries {
		t.Errorf("/runs retries = %d, driver counted %d", final.Retries, totalRetries)
	}
	if final.Faults != wantFaults {
		t.Errorf("/runs faults = %d, span stream has %d", final.Faults, wantFaults)
	}
	if final.Tasks != final.TasksDone || final.Tasks == 0 {
		t.Errorf("final tasks = %d/%d, want all done and nonzero", final.TasksDone, final.Tasks)
	}
}
