package mr

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
)

// This file is the cross-backend conformance harness: every job here is
// expressed as data (Job.Impl + Spec, resolved through the registry), so
// the identical job runs on all three backends — in-process goroutines,
// re-exec'd worker OS processes with disk spills, and the sequential
// simulated reference — and the harness pins that output pairs, counters,
// Wasted and ShuffledBytes are bit-identical across backend × parallelism
// × spill threshold × fault plan. The multiprocess rows double as the
// process-kill chaos harness: injected failures SIGKILL real worker
// processes, and the audit checks no worker survives the run and no spill
// file survives the teardown.

func init() {
	// conf-wordcount: wordcount with a combiner; spec picks the boxed or
	// typed surface (same data either way).
	RegisterJobImpl("conf-wordcount", func(spec []byte) (JobFuncs, error) {
		typed := string(spec) == "typed"
		f := JobFuncs{
			Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
				k := fmt.Sprintf("k%02d", int(row[0])%17)
				if typed {
					ctx.EmitI64(k, 1)
					ctx.EmitI64("total", 1)
				} else {
					ctx.Emit(k, int64(1))
					ctx.Emit("total", int64(1))
				}
				return nil
			}),
		}
		if typed {
			f.TypedCombiner = TypedCombinerFunc(func(key string, values Values, out *CombineEmit) error {
				var s int64
				for i := 0; i < values.Len(); i++ {
					s += values.Int64(i)
				}
				out.EmitI64(s)
				return nil
			})
			f.TypedReducer = TypedReducerFunc(func(ctx *TaskContext, key string, values Values) error {
				var s int64
				for i := 0; i < values.Len(); i++ {
					s += values.Int64(i)
				}
				ctx.EmitI64(key, s)
				return nil
			})
		} else {
			f.Combiner = CombinerFunc(func(key string, values []any) ([]any, error) {
				var s int64
				for _, v := range values {
					s += v.(int64)
				}
				return []any{s}, nil
			})
			f.Reducer = ReducerFunc(func(ctx *TaskContext, key string, values []any) error {
				var s int64
				for _, v := range values {
					s += v.(int64)
				}
				ctx.Emit(key, s)
				return nil
			})
		}
		return f, nil
	})

	// conf-nocombine: no combiner — the config under which the multiprocess
	// map side takes the mid-task (out-of-core) spill path. Emits float64
	// records; the reducer commits both a float64 sum and an int count, so
	// the tagF64 and tagInt lanes round-trip through the spill codec.
	RegisterJobImpl("conf-nocombine", func(spec []byte) (JobFuncs, error) {
		return JobFuncs{
			Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
				ctx.EmitF64(fmt.Sprintf("g%03d", int(row[0])%97), row[0]*0.5)
				return nil
			}),
			TypedReducer: TypedReducerFunc(func(ctx *TaskContext, key string, values Values) error {
				var s float64
				for i := 0; i < values.Len(); i++ {
					s += values.Float64(i)
				}
				ctx.EmitF64(key, s)
				ctx.EmitInt(key, values.Len())
				return nil
			}),
		}, nil
	})

	// conf-maponly: map-only job with mixed-type values (scalar, string,
	// slice), exercising the pairs wire codec instead of the spill path.
	RegisterJobImpl("conf-maponly", func(spec []byte) (JobFuncs, error) {
		return JobFuncs{
			Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
				ctx.EmitF64(fmt.Sprintf("p%05d", global), row[0]*0.25)
				if global%7 == 0 {
					ctx.Emit("vec", []float64{row[0], row[0] + 1})
				}
				if global%11 == 0 {
					ctx.Emit("tag", fmt.Sprintf("t%d", global%3))
				}
				return nil
			}),
		}, nil
	})

	// conf-cache: distributed-cache consumer shipping slice payloads through
	// the shuffle (tagAny through the spill codec) and reading cache entries
	// that crossed the process boundary via the wire value codec.
	RegisterJobImpl("conf-cache", func(spec []byte) (JobFuncs, error) {
		return JobFuncs{
			Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
				scale := ctx.MustCache("scale").(float64)
				labels := ctx.MustCache("labels").([]string)
				bias := ctx.MustCache("bias").(int64)
				k := labels[int(row[0])%len(labels)]
				ctx.Emit(k, []float64{row[0] * scale, float64(bias)})
				return nil
			}),
			Reducer: ReducerFunc(func(ctx *TaskContext, key string, values []any) error {
				var s float64
				for _, v := range values {
					for _, x := range v.([]float64) {
						s += x
					}
				}
				ctx.EmitF64(key, s)
				return nil
			}),
		}, nil
	})

	// conf-crash: a mapper that SIGKILLs its own worker process with no
	// dying frame — a real crash, not an injected fault — exactly once per
	// sentinel file. Spec is the sentinel path; empty means never crash
	// (the in-process baseline). Guarded to worker processes so it can
	// never kill the test process itself.
	RegisterJobImpl("conf-crash", func(spec []byte) (JobFuncs, error) {
		sentinel := string(spec)
		return JobFuncs{
			Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
				if sentinel != "" && global == 7 && os.Getenv(workerEnv) != "" {
					if _, err := os.Stat(sentinel); os.IsNotExist(err) {
						os.WriteFile(sentinel, []byte("x"), 0o644)
						selfKill()
					}
				}
				ctx.EmitI64(fmt.Sprintf("c%d", int(row[0])%5), 1)
				return nil
			}),
			TypedReducer: TypedReducerFunc(func(ctx *TaskContext, key string, values Values) error {
				var s int64
				for i := 0; i < values.Len(); i++ {
					s += values.Int64(i)
				}
				ctx.EmitI64(key, s)
				return nil
			}),
		}, nil
	})
}

// confJob instantiates a registry job over the standard conformance input.
func confJob(impl, spec string, n, numSplits, numReducers int) *Job {
	j := &Job{
		Name:        "conf-" + impl,
		Splits:      makeSplits(n, numSplits),
		Impl:        impl,
		Spec:        []byte(spec),
		NumReducers: numReducers,
	}
	if impl == "conf-cache" {
		j.Cache = map[string]any{
			"scale":  1.5,
			"labels": []string{"alpha", "beta", "gamma", "delta"},
			"bias":   int64(-3),
		}
	}
	return j
}

// spillThresholds is the conformance sweep of Config.SpillThresholdBytes:
// spill after every record, spill at 1 MiB, never spill mid-task.
var spillThresholds = []int64{1, 1 << 20, math.MaxInt64}

func spillName(v int64) string {
	if v == math.MaxInt64 {
		return "inf"
	}
	return fmt.Sprint(v)
}

// auditProcRun asserts the multiprocess run left nothing behind: every
// spawned worker pid is dead and the spill base directory is empty again.
func auditProcRun(t *testing.T, name string, e *Engine, spillBase string) ProcStats {
	t.Helper()
	stats, ok := e.LastProcStats()
	if !ok {
		t.Fatalf("%s: no ProcStats after a multiprocess run", name)
	}
	if stats.WorkersSpawned == 0 || len(stats.WorkerPIDs) != stats.WorkersSpawned {
		t.Errorf("%s: implausible worker accounting: %+v", name, stats)
	}
	for _, pid := range stats.WorkerPIDs {
		if err := syscall.Kill(pid, 0); err == nil || !errors.Is(err, syscall.ESRCH) {
			t.Errorf("%s: worker pid %d still exists after Run (kill(0) err=%v)", name, pid, err)
		}
	}
	ents, err := os.ReadDir(spillBase)
	if err != nil {
		t.Fatalf("%s: read spill base: %v", name, err)
	}
	if len(ents) != 0 {
		var names []string
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Errorf("%s: spill dir not swept, leaked: %v", name, names)
	}
	return stats
}

// TestBackendConformance is the tentpole oracle: for every registry job,
// every backend × parallelism × spill threshold × fault plan must produce
// output pairs, data counters, and Wasted bit-identical to the in-process
// fault-free baseline (Wasted compared against the in-process run under
// the same plan). Multiprocess rows additionally audit worker and spill
// hygiene.
func TestBackendConformance(t *testing.T) {
	const n, numSplits, numReducers = 1200, 6, 4
	jobs := []struct {
		name string
		mk   func() *Job
	}{
		{"wordcount-boxed", func() *Job { return confJob("conf-wordcount", "boxed", n, numSplits, numReducers) }},
		{"wordcount-typed", func() *Job { return confJob("conf-wordcount", "typed", n, numSplits, numReducers) }},
		{"nocombine", func() *Job { return confJob("conf-nocombine", "", n, numSplits, numReducers) }},
		{"maponly", func() *Job { return confJob("conf-maponly", "", n, numSplits, 0) }},
		{"cache", func() *Job { return confJob("conf-cache", "", n, numSplits, numReducers) }},
	}
	plans := []struct {
		name string
		plan FaultPlan
	}{
		{"clean", nil},
		{"chaos", RateFaultPlan{MapRate: 0.3, CombineRate: 0.2, ReduceRate: 0.3, Seed: 13}},
	}

	for _, jc := range jobs {
		jc := jc
		t.Run(jc.name, func(t *testing.T) {
			baseline, err := NewEngine(Config{Parallelism: 4}).Run(jc.mk())
			if err != nil {
				t.Fatal(err)
			}
			baseJSON, err := json.Marshal(baseline.Pairs)
			if err != nil {
				t.Fatal(err)
			}
			for _, pc := range plans {
				// The in-process run under this plan fixes the expected
				// Wasted accounting for every other backend.
				wastedRef := Counters{}
				if pc.plan != nil {
					ref, err := NewEngine(Config{Parallelism: 4, Faults: pc.plan, MaxAttempts: 12}).Run(jc.mk())
					if err != nil {
						t.Fatal(err)
					}
					wastedRef = ref.Wasted
				}
				pars := []int{1, 8}
				if raceDetectorEnabled {
					// Race runs keep only the max-concurrency rows: worker
					// processes are race-instrumented binaries whose spawn cost
					// dwarfs the jobs, and the spill/parallelism value matrix is
					// fully covered by the non-race suite.
					pars = []int{8}
				}
				for _, par := range pars {
					for _, backend := range BackendNames() {
						thresholds := []int64{0}
						if backend == "multiprocess" {
							thresholds = spillThresholds
							if raceDetectorEnabled {
								thresholds = []int64{1}
							}
						}
						for _, spill := range thresholds {
							name := fmt.Sprintf("%s/%s/par=%d/spill=%s", pc.name, backend, par, spillName(spill))
							spillBase := t.TempDir()
							engine := NewEngine(Config{
								Parallelism: par, Faults: pc.plan, MaxAttempts: 12,
								Backend: backend, SpillDir: spillBase, SpillThresholdBytes: spill,
							})
							out, err := engine.Run(jc.mk())
							if err != nil {
								t.Fatalf("%s: %v", name, err)
							}
							if !reflect.DeepEqual(out.Pairs, baseline.Pairs) {
								t.Errorf("%s: output pairs differ from in-process fault-free baseline", name)
							}
							if got, want := normalized(out.Counters), normalized(baseline.Counters); got != want {
								t.Errorf("%s: counters differ:\n got %+v\nwant %+v", name, got, want)
							}
							if pc.plan != nil && out.Wasted != wastedRef {
								t.Errorf("%s: Wasted differs from in-process reference:\n got %+v\nwant %+v", name, out.Wasted, wastedRef)
							}
							gotJSON, err := json.Marshal(out.Pairs)
							if err != nil {
								t.Fatalf("%s: %v", name, err)
							}
							if string(gotJSON) != string(baseJSON) {
								t.Errorf("%s: serialized output not byte-identical to baseline", name)
							}
							if backend == "multiprocess" {
								auditProcRun(t, name, engine, spillBase)
							}
						}
					}
				}
			}
		})
	}
}

// TestProcKillChaos is the process-kill chaos oracle: a seeded fault plan
// SIGKILLs real worker processes mid-map and mid-reduce (workers flush
// their partial counters in a dying frame first), and the job must still
// commit output bit-identical to the clean baseline with exact retry and
// Wasted accounting — plus actual worker deaths observed.
func TestProcKillChaos(t *testing.T) {
	const n, numSplits, numReducers = 1500, 8, 4
	job := func() *Job { return confJob("conf-wordcount", "typed", n, numSplits, numReducers) }
	clean, err := NewEngine(Config{Parallelism: 4}).Run(job())
	if err != nil {
		t.Fatal(err)
	}
	plans := []struct {
		name string
		plan FaultPlan
	}{
		{"mid-map", RateFaultPlan{MapRate: 0.5, Seed: 17}},
		{"mid-reduce", RateFaultPlan{ReduceRate: 0.5, Seed: 3}},
		{"mixed", RateFaultPlan{MapRate: 0.3, CombineRate: 0.2, ReduceRate: 0.3, Seed: 13}},
	}
	for _, pc := range plans {
		inproc, err := NewEngine(Config{Parallelism: 4, Faults: pc.plan, MaxAttempts: 12}).Run(job())
		if err != nil {
			t.Fatalf("%s (inprocess): %v", pc.name, err)
		}
		if inproc.Counters.TaskRetries == 0 {
			t.Fatalf("%s: plan injected nothing — the oracle exercises nothing", pc.name)
		}
		spillBase := t.TempDir()
		engine := NewEngine(Config{
			Parallelism: 8, Faults: pc.plan, MaxAttempts: 12,
			Backend: "multiprocess", SpillDir: spillBase, SpillThresholdBytes: 1,
		})
		out, err := engine.Run(job())
		if err != nil {
			t.Fatalf("%s: %v", pc.name, err)
		}
		if !reflect.DeepEqual(out.Pairs, clean.Pairs) {
			t.Errorf("%s: output differs from clean baseline", pc.name)
		}
		if got, want := normalized(out.Counters), normalized(clean.Counters); got != want {
			t.Errorf("%s: counters differ:\n got %+v\nwant %+v", pc.name, got, want)
		}
		if out.Counters.TaskRetries != inproc.Counters.TaskRetries {
			t.Errorf("%s: TaskRetries = %d, want %d (in-process reference)",
				pc.name, out.Counters.TaskRetries, inproc.Counters.TaskRetries)
		}
		if out.Wasted != inproc.Wasted {
			t.Errorf("%s: Wasted differs from in-process reference:\n got %+v\nwant %+v",
				pc.name, out.Wasted, inproc.Wasted)
		}
		stats := auditProcRun(t, pc.name, engine, spillBase)
		if stats.WorkersKilled == 0 {
			t.Errorf("%s: no worker process died — kills were not real", pc.name)
		}
	}
}

// TestProcKillRawCrash covers the ungraceful death: a worker that vanishes
// without a dying frame (straight SIGKILL from inside the mapper). The
// driver must treat the broken pipe as a retryable failure, spawn a fresh
// worker, and commit identical output; the crashed attempt's counters are
// unknowable, so Wasted stays empty.
func TestProcKillRawCrash(t *testing.T) {
	const n, numSplits = 900, 3
	clean, err := NewEngine(Config{Parallelism: 2}).Run(confJob("conf-crash", "", n, numSplits, 2))
	if err != nil {
		t.Fatal(err)
	}
	sentinel := filepath.Join(t.TempDir(), "crashed-once")
	spillBase := t.TempDir()
	job := confJob("conf-crash", "", n, numSplits, 2)
	job.Spec = []byte(sentinel)
	engine := NewEngine(Config{
		Parallelism: 2, MaxAttempts: 3,
		Backend: "multiprocess", SpillDir: spillBase,
	})
	out, err := engine.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if _, serr := os.Stat(sentinel); serr != nil {
		t.Fatal("sentinel never written — the crash path did not run")
	}
	if !reflect.DeepEqual(out.Pairs, clean.Pairs) {
		t.Error("output differs from clean baseline after raw worker crash")
	}
	if got, want := normalized(out.Counters), normalized(clean.Counters); got != want {
		t.Errorf("counters differ:\n got %+v\nwant %+v", got, want)
	}
	if out.Counters.TaskRetries != 1 {
		t.Errorf("TaskRetries = %d, want 1", out.Counters.TaskRetries)
	}
	if out.Wasted != (Counters{}) {
		t.Errorf("raw crash charged Wasted counters %+v; its counters are unknowable", out.Wasted)
	}
	stats := auditProcRun(t, "raw-crash", engine, spillBase)
	if stats.WorkersKilled == 0 {
		t.Error("crashed worker not reaped as killed")
	}
}

// TestBackendSpillOutOfCore pins that a dataset larger than the spill
// threshold actually runs through the disk-backed sorted-run merge: a tiny
// threshold must force mid-task spills whose on-disk volume exceeds it by
// orders of magnitude, while output stays bit-identical.
func TestBackendSpillOutOfCore(t *testing.T) {
	const n, numSplits, numReducers = 20000, 4, 3
	const threshold = 32 << 10
	job := func() *Job { return confJob("conf-nocombine", "", n, numSplits, numReducers) }
	baseline, err := NewEngine(Config{Parallelism: 4}).Run(job())
	if err != nil {
		t.Fatal(err)
	}
	spillBase := t.TempDir()
	engine := NewEngine(Config{
		Parallelism: 4, Backend: "multiprocess",
		SpillDir: spillBase, SpillThresholdBytes: threshold,
	})
	out, err := engine.Run(job())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Pairs, baseline.Pairs) {
		t.Error("out-of-core output differs from in-process baseline")
	}
	if got, want := normalized(out.Counters), normalized(baseline.Counters); got != want {
		t.Errorf("counters differ:\n got %+v\nwant %+v", got, want)
	}
	stats := auditProcRun(t, "out-of-core", engine, spillBase)
	if stats.MidTaskSpills == 0 {
		t.Error("no mid-task spill happened — the run was not out-of-core")
	}
	if stats.SpilledBytes <= threshold {
		t.Errorf("SpilledBytes = %d, want > threshold %d", stats.SpilledBytes, threshold)
	}
	if stats.MergedSegments <= stats.SpillFiles {
		t.Errorf("MergedSegments = %d with %d spill files — reduce did not merge multiple runs",
			stats.MergedSegments, stats.SpillFiles)
	}
	if out.Counters.ShuffledBytes != baseline.Counters.ShuffledBytes {
		t.Errorf("ShuffledBytes = %d, want %d", out.Counters.ShuffledBytes, baseline.Counters.ShuffledBytes)
	}
}

// TestChaosPoisonedPoolsMultiprocess extends the pool-poisoning oracle
// across the process boundary: DebugPoisonPools is forwarded to workers,
// whose own pools poison returned buffers — so any worker-side attempt
// reading a recycled buffer, or any driver-side state illegally shared
// instead of serialized, corrupts output visibly. Three rounds on one
// engine under kills at tiny spill threshold must stay bit-identical.
func TestChaosPoisonedPoolsMultiprocess(t *testing.T) {
	const n, numSplits, numReducers = 1200, 6, 4
	job := func() *Job { return confJob("conf-wordcount", "typed", n, numSplits, numReducers) }
	baseline, err := NewEngine(Config{Parallelism: 4}).Run(job())
	if err != nil {
		t.Fatal(err)
	}
	spillBase := t.TempDir()
	engine := NewEngine(Config{
		Parallelism: 8, Faults: RateFaultPlan{MapRate: 0.4, CombineRate: 0.3, ReduceRate: 0.4, Seed: 21},
		MaxAttempts: 12, DebugPoisonPools: true,
		Backend: "multiprocess", SpillDir: spillBase, SpillThresholdBytes: 1,
	})
	var retries int64
	for round := 0; round < 3; round++ {
		out, err := engine.Run(job())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !reflect.DeepEqual(out.Pairs, baseline.Pairs) {
			t.Fatalf("round %d: output differs from clean baseline — poisoned buffer observed", round)
		}
		for _, p := range out.Pairs {
			if strings.Contains(p.Key, "\x00poisoned\x00") {
				t.Fatalf("round %d: poisoned key sentinel in output: %q", round, p.Key)
			}
			if v, ok := p.Value.(int64); ok && v == 0x7ff0dead7ff0dead {
				t.Fatalf("round %d: poison value sentinel in output for key %q", round, p.Key)
			}
		}
		retries += out.Counters.TaskRetries
	}
	if retries == 0 {
		t.Error("poison sweep injected no retries — the oracle exercised nothing")
	}
	auditProcRun(t, "poison", engine, spillBase)
}

// TestMultiprocessRequiresImpl pins the seam's error contract: a closure
// job cannot cross the process boundary and must fail loudly, not hang.
func TestMultiprocessRequiresImpl(t *testing.T) {
	engine := NewEngine(Config{Backend: "multiprocess", SpillDir: t.TempDir()})
	_, err := engine.Run(chaosJob(100, 2, 2))
	if err == nil || !strings.Contains(err.Error(), "Job.Impl") {
		t.Fatalf("closure job on multiprocess backend: err = %v, want Job.Impl guidance", err)
	}
}

// TestPickBackendUnknown pins the config error for a bad backend name.
func TestPickBackendUnknown(t *testing.T) {
	engine := NewEngine(Config{Backend: "hadoop"})
	_, err := engine.Run(chaosJob(100, 2, 2))
	if err == nil || !strings.Contains(err.Error(), "inprocess") {
		t.Fatalf("unknown backend: err = %v, want the valid-names list", err)
	}
	if got := NewEngine(Config{}).BackendName(); got != "inprocess" {
		t.Errorf("default BackendName = %q, want inprocess", got)
	}
}
