package mr

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// makeSplits builds splits over sequential 1-D data 0..n-1 (scaled).
func makeSplits(n, numSplits int) []*Split {
	rows := make([]float64, n)
	for i := range rows {
		rows[i] = float64(i)
	}
	var splits []*Split
	base := n / numSplits
	rem := n % numSplits
	off := 0
	for s := 0; s < numSplits; s++ {
		sz := base
		if s < rem {
			sz++
		}
		splits = append(splits, &Split{ID: s, Offset: off, Dim: 1, Rows: rows[off : off+sz]})
		off += sz
	}
	return splits
}

func TestWordCountStyleJob(t *testing.T) {
	// Classic even/odd count: exercises map, shuffle, grouping, reduce.
	engine := Default()
	job := &Job{
		Name:   "evenodd",
		Splits: makeSplits(1000, 7),
		Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
			if int(row[0])%2 == 0 {
				ctx.Emit("even", int64(1))
			} else {
				ctx.Emit("odd", int64(1))
			}
			return nil
		}),
		Reducer: ReducerFunc(func(ctx *TaskContext, key string, values []any) error {
			var sum int64
			for _, v := range values {
				sum += v.(int64)
			}
			ctx.Emit(key, sum)
			return nil
		}),
		NumReducers: 3,
	}
	out, err := engine.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	g := out.Grouped()
	if g["even"][0].(int64) != 500 || g["odd"][0].(int64) != 500 {
		t.Fatalf("counts = %v", g)
	}
	if out.Counters.MapInputRecords != 1000 {
		t.Errorf("map input = %d", out.Counters.MapInputRecords)
	}
	if out.Counters.ReduceInputKeys != 2 {
		t.Errorf("reduce keys = %d", out.Counters.ReduceInputKeys)
	}
}

func TestMapOnlyJob(t *testing.T) {
	engine := Default()
	job := &Job{
		Name:   "maponly",
		Splits: makeSplits(100, 4),
		Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
			ctx.Emit(fmt.Sprintf("p%d", global), row[0])
			return nil
		}),
	}
	out, err := engine.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Pairs) != 100 {
		t.Fatalf("map-only output = %d pairs", len(out.Pairs))
	}
}

func TestCombinerReducesShuffleVolume(t *testing.T) {
	run := func(withCombiner bool) Counters {
		engine := Default()
		job := &Job{
			Name:   "combine",
			Splits: makeSplits(1000, 8),
			Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
				ctx.Emit("sum", int64(1))
				return nil
			}),
			Reducer: ReducerFunc(func(ctx *TaskContext, key string, values []any) error {
				var s int64
				for _, v := range values {
					s += v.(int64)
				}
				ctx.Emit(key, s)
				return nil
			}),
		}
		if withCombiner {
			job.Combiner = CombinerFunc(func(key string, values []any) ([]any, error) {
				var s int64
				for _, v := range values {
					s += v.(int64)
				}
				return []any{s}, nil
			})
		}
		out, err := engine.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		if got := out.Grouped()["sum"][0].(int64); got != 1000 {
			t.Fatalf("sum = %d", got)
		}
		return out.Counters
	}
	plain := run(false)
	combined := run(true)
	if combined.ShuffledBytes >= plain.ShuffledBytes {
		t.Errorf("combiner did not reduce shuffle: %d vs %d", combined.ShuffledBytes, plain.ShuffledBytes)
	}
	if combined.CombineInput != 1000 || combined.CombineOutput != 8 {
		t.Errorf("combine counters: in=%d out=%d", combined.CombineInput, combined.CombineOutput)
	}
}

func TestSetupCleanupHooks(t *testing.T) {
	engine := Default()
	var setups, cleanups atomic.Int64
	job := &Job{
		Name:   "hooks",
		Splits: makeSplits(100, 5),
		NewMapper: func() Mapper {
			return &hookMapper{setups: &setups, cleanups: &cleanups}
		},
	}
	if _, err := engine.Run(job); err != nil {
		t.Fatal(err)
	}
	if setups.Load() != 5 || cleanups.Load() != 5 {
		t.Fatalf("setup=%d cleanup=%d, want 5 each", setups.Load(), cleanups.Load())
	}
}

type hookMapper struct {
	setups, cleanups *atomic.Int64
	local            int
}

func (m *hookMapper) Setup(*TaskContext) error { m.setups.Add(1); return nil }
func (m *hookMapper) Map(ctx *TaskContext, global int, row []float64) error {
	m.local++
	return nil
}
func (m *hookMapper) Cleanup(ctx *TaskContext) error {
	m.cleanups.Add(1)
	ctx.Emit("n", int64(m.local))
	return nil
}

func TestDistributedCache(t *testing.T) {
	engine := Default()
	job := &Job{
		Name:   "cache",
		Splits: makeSplits(10, 2),
		Cache:  map[string]any{"factor": 3.0},
		Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
			f := ctx.MustCache("factor").(float64)
			ctx.Emit("sum", row[0]*f)
			return nil
		}),
		Reducer: ReducerFunc(func(ctx *TaskContext, key string, values []any) error {
			s := 0.0
			for _, v := range values {
				s += v.(float64)
			}
			ctx.Emit(key, s)
			return nil
		}),
	}
	out, err := engine.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Grouped()["sum"][0].(float64); got != 135 { // 3·(0+..+9)
		t.Fatalf("sum = %g", got)
	}
}

func TestCacheValueMissing(t *testing.T) {
	ctx := &TaskContext{cache: nil}
	if _, ok := ctx.CacheValue("absent"); ok {
		t.Fatal("missing cache entry reported present")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustCache must panic on missing entry")
		}
	}()
	ctx.MustCache("absent")
}

func TestMapperErrorPropagates(t *testing.T) {
	engine := Default()
	boom := errors.New("boom")
	job := &Job{
		Name:   "err",
		Splits: makeSplits(10, 2),
		Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
			if global == 7 {
				return boom
			}
			return nil
		}),
	}
	_, err := engine.Run(job)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestNoMapperRejected(t *testing.T) {
	engine := Default()
	if _, err := engine.Run(&Job{Name: "nil"}); err == nil {
		t.Fatal("job without mapper must fail")
	}
}

// TestFaultInjectionRetrySucceeds: with a moderate failure rate and fresh
// mappers per attempt, the job must still produce exact results.
func TestFaultInjectionRetrySucceeds(t *testing.T) {
	engine := NewEngine(Config{Faults: UniformFaults(0.5, 99), MaxAttempts: 10})
	job := &Job{
		Name:   "flaky",
		Splits: makeSplits(1000, 10),
		NewMapper: func() Mapper {
			// Stateful mapper: accumulates locally, emits in cleanup — a
			// retry must restart from zero.
			return &sumMapper{}
		},
		Reducer: ReducerFunc(func(ctx *TaskContext, key string, values []any) error {
			var s float64
			for _, v := range values {
				s += v.(float64)
			}
			ctx.Emit(key, s)
			return nil
		}),
	}
	out, err := engine.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(999*1000) / 2
	if got := out.Grouped()["sum"][0].(float64); got != want {
		t.Fatalf("sum = %g, want %g (retries corrupted state)", got, want)
	}
	if out.Counters.TaskRetries == 0 {
		t.Error("expected at least one injected retry at 50% failure rate")
	}
}

type sumMapper struct{ s float64 }

func (m *sumMapper) Setup(*TaskContext) error { return nil }
func (m *sumMapper) Map(ctx *TaskContext, global int, row []float64) error {
	m.s += row[0]
	return nil
}
func (m *sumMapper) Cleanup(ctx *TaskContext) error {
	ctx.Emit("sum", m.s)
	return nil
}

func TestFaultInjectionExhaustsAttempts(t *testing.T) {
	engine := NewEngine(Config{Faults: UniformFaults(1.0, 1), MaxAttempts: 3})
	job := &Job{
		Name:   "doomed",
		Splits: makeSplits(10, 1),
		Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error { return nil }),
	}
	if _, err := engine.Run(job); err == nil {
		t.Fatal("certain failure must exhaust attempts")
	}
}

func TestEngineAccounting(t *testing.T) {
	engine := NewEngine(Config{Cost: DefaultCostModel()})
	job := &Job{
		Name:   "cost",
		Splits: makeSplits(100, 4),
		Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
			ctx.Emit("k", int64(1))
			return nil
		}),
		Reducer: ReducerFunc(func(ctx *TaskContext, key string, values []any) error { return nil }),
	}
	out, err := engine.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if out.SimulatedSeconds < DefaultCostModel().JobStartupSeconds {
		t.Errorf("simulated cost %g below startup", out.SimulatedSeconds)
	}
	if engine.JobsRun() != 1 {
		t.Errorf("jobs run = %d", engine.JobsRun())
	}
	if engine.TotalSimulatedSeconds() != out.SimulatedSeconds {
		t.Error("engine accumulation mismatch")
	}
	engine.ResetAccounting()
	if engine.JobsRun() != 0 || engine.TotalSimulatedSeconds() != 0 {
		t.Error("reset failed")
	}
}

func TestJobStatsByName(t *testing.T) {
	engine := NewEngine(Config{Cost: DefaultCostModel()})
	mapper := MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
		ctx.Emit("k", int64(1))
		return nil
	})
	for i := 0; i < 3; i++ {
		if _, err := engine.Run(&Job{Name: "alpha", Splits: makeSplits(50, 2), Mapper: mapper}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := engine.Run(&Job{Name: "beta", Splits: makeSplits(10, 1), Mapper: mapper}); err != nil {
		t.Fatal(err)
	}
	stats := engine.JobStatsByName()
	if stats["alpha"].Runs != 3 || stats["beta"].Runs != 1 {
		t.Fatalf("runs: %+v", stats)
	}
	if stats["alpha"].Counters.MapInputRecords != 150 {
		t.Errorf("alpha map input = %d", stats["alpha"].Counters.MapInputRecords)
	}
	if stats["alpha"].SimulatedSeconds <= 0 {
		t.Error("alpha simulated cost missing")
	}
	engine.ResetAccounting()
	if len(engine.JobStatsByName()) != 0 {
		t.Error("reset did not clear per-job stats")
	}
}

func TestCostModelDisabled(t *testing.T) {
	engine := Default()
	out, err := engine.Run(&Job{
		Name:   "free",
		Splits: makeSplits(10, 1),
		Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error { return nil }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.SimulatedSeconds != 0 {
		t.Errorf("disabled cost model charged %g", out.SimulatedSeconds)
	}
}

func TestPartitionDeterministicAndInRange(t *testing.T) {
	for _, n := range []int{1, 2, 7, 112} {
		for _, key := range []string{"", "a", "hello", "c42"} {
			p1 := partition(key, n)
			p2 := partition(key, n)
			if p1 != p2 || p1 < 0 || p1 >= n {
				t.Fatalf("partition(%q,%d) = %d,%d", key, n, p1, p2)
			}
		}
	}
}

func TestOutputSingle(t *testing.T) {
	out := &Output{Pairs: []Pair{{Key: "a", Value: 1}, {Key: "b", Value: 2}, {Key: "b", Value: 3}}}
	if v, ok := out.Single("a"); !ok || v.(int) != 1 {
		t.Error("Single(a) wrong")
	}
	if _, ok := out.Single("b"); ok {
		t.Error("duplicated key must not be single")
	}
	if _, ok := out.Single("z"); ok {
		t.Error("absent key must not be single")
	}
}

func TestSplitAccessors(t *testing.T) {
	s := &Split{ID: 0, Offset: 10, Dim: 2, Rows: []float64{1, 2, 3, 4}}
	if s.NumRows() != 2 {
		t.Fatalf("rows = %d", s.NumRows())
	}
	r := s.Row(1)
	if r[0] != 3 || r[1] != 4 {
		t.Fatalf("row = %v", r)
	}
	empty := &Split{}
	if empty.NumRows() != 0 {
		t.Fatal("empty split rows != 0")
	}
}

func TestEmptySplitsJob(t *testing.T) {
	engine := Default()
	out, err := engine.Run(&Job{
		Name:   "empty",
		Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error { return nil }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Pairs) != 0 {
		t.Fatal("empty job produced output")
	}
}

func TestCountersAddAndString(t *testing.T) {
	a := Counters{MapInputRecords: 1, ShuffledBytes: 10}
	a.Add(Counters{MapInputRecords: 2, ShuffledBytes: 5, TaskRetries: 1})
	if a.MapInputRecords != 3 || a.ShuffledBytes != 15 || a.TaskRetries != 1 {
		t.Fatalf("add wrong: %+v", a)
	}
	if a.String() == "" {
		t.Fatal("String empty")
	}
}

func TestApproxValueBytes(t *testing.T) {
	cases := []struct {
		v    any
		want int64
	}{
		{nil, 0},
		{int64(5), 8},
		{3.14, 8},
		{[]float64{1, 2, 3}, 24},
		{"abcd", 4},
		{struct{}{}, 16},
	}
	for _, c := range cases {
		if got := approxValueBytes(c.v); got != c.want {
			t.Errorf("approxValueBytes(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}
