package mr

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"

	"p3cmr/internal/obs"
)

// This file is the multiprocess backend's wire layer: length-prefixed
// control frames between the driver and its worker processes, and the
// typed-value codec shared by those frames and the spill files (spill.go).
//
// Framing: one byte of frame type, a little-endian uint32 payload length,
// then a gob-encoded payload struct. gob state is per-frame (each frame is
// a fresh encoder), so a frame is decodable in isolation — which is what
// lets the driver treat a half-written final frame from a SIGKILLed worker
// as a clean EOF instead of stream corruption.
//
// Values: pair and record payloads do NOT ride gob. They use a hand-rolled
// tagged codec (appendValue/readValue) whose scalar lanes mirror the typed
// record plane, so a float64/int64/int round-trips to the exact dynamic
// type the in-process engine would deliver — the bit-identity contract.
// Types outside the built-in lanes fall back to gob and must be registered
// with RegisterWireValue.

// Frame types, driver→worker (ctl) and worker→driver (results).
const (
	// fHello: worker → driver, once at startup. Payload helloFrame.
	fHello byte = 1 + iota
	// fJob: driver → worker, once per worker before its first task. Payload
	// jobFrame.
	fJob
	// fMapTask: driver → worker. Payload mapTaskFrame.
	fMapTask
	// fReduceTask: driver → worker. Payload reduceTaskFrame.
	fReduceTask
	// fPairs: worker → driver, zero or more before a done frame. Payload
	// pairsFrame (codec-encoded pairs, not gob).
	fPairs
	// fMapDone: worker → driver, successful map attempt. Payload
	// mapDoneFrame.
	fMapDone
	// fReduceDone: worker → driver, successful reduce attempt. Payload
	// doneFrame.
	fReduceDone
	// fDying: worker → driver, the attempt's partial counters, flushed
	// immediately before the worker SIGKILLs itself at an injected kill
	// point. The driver reads it, charges the counters as wasted work, and
	// retries — exactly like an in-process injected failure.
	fDying
	// fTaskErr: worker → driver, a real (non-injected) task error. The
	// worker survives; the driver fails the job without retry.
	fTaskErr
	// fShutdown: driver → worker, clean exit request.
	fShutdown
	// fTelemetry: worker → driver, buffered worker-trace events. Sent only
	// when the driver enabled telemetry (telemetryEnv): once right after
	// hello (the TelClock alignment reading) and then at task boundaries,
	// immediately before a done/dying/error frame. Payload telemetryFrame.
	// Appended after fShutdown so the preceding frame-type bytes — the PR 7
	// wire format — are untouched.
	fTelemetry
)

// maxFrame bounds a frame payload; a length beyond it means a corrupt
// stream, not a huge frame (out-of-core data rides spill files, not
// frames).
const maxFrame = 1 << 30

type helloFrame struct {
	PID int
}

type jobFrame struct {
	Name        string
	Impl        string
	Spec        []byte
	NumReducers int
	// NB is the shuffle bucket count (1 for map-only jobs).
	NB          int
	MapOnly     bool
	HasCombiner bool
	// Poison forwards Config.DebugPoisonPools into the worker's pools.
	Poison   bool
	SpillDir string
	// SpillLimit is the mid-task spill threshold in buffered record bytes.
	SpillLimit int64
	// Cache ships the distributed cache: keys sorted ascending, values
	// encoded with the wire value codec (CacheVals[i] belongs to
	// CacheKeys[i]).
	CacheKeys []string
	CacheVals [][]byte
}

type mapTaskFrame struct {
	// Task is the split ID (the task identity for spans and fault plans).
	Task    int
	Attempt int
	Offset  int
	Dim     int
	Rows    []float64
	// KillAt, when >= 0, makes the worker SIGKILL itself immediately before
	// record KillAt — the process-boundary realization of an in-process
	// injected map failure at the same position. Decided by the driver so
	// the fault plan stays a pure driver-side function.
	KillAt int
	// CombineKill makes the worker die before its combiner pass (KillAt
	// must be -1; a map-phase kill precedes the combine decision, exactly
	// like the in-process attempt lifecycle).
	CombineKill bool
}

// segmentRef locates one sorted run of one partition inside a spill file.
type segmentRef struct {
	Path string
	Part int
	// Seq is the spill pass within the attempt (mid-task spills count up;
	// the commit-time spill is last). Within a (task, partition), segments
	// must merge in Seq order to preserve emission order.
	Seq     int
	Offset  int64
	Length  int64
	Records int64
	Keys    int
}

type mapDoneFrame struct {
	Counters Counters
	Segments []segmentRef
	// MidSpills counts threshold-triggered spill passes (spills that
	// happened before task commit — the out-of-core proof the spill
	// demonstration test asserts on).
	MidSpills int
}

type reduceTaskFrame struct {
	// Task is the partition index.
	Task    int
	Attempt int
	// KillAt, when >= 0, kills the worker once `consumed >= KillAt` input
	// records have been consumed, checked before each key group — the same
	// threshold rule as the in-process reduce fault site.
	KillAt int
	// Segments are every map task's runs for this partition, ordered by
	// (map task, Seq): the merge preserves that order within each key.
	Segments []segmentRef
	// TotalRecords is the summed record count (sizes the boxed-reducer
	// backing array exactly like the in-process engine).
	TotalRecords int64
}

type doneFrame struct {
	Counters Counters
}

type dyingFrame struct {
	Counters Counters
}

type errFrame struct {
	Msg string
}

// telemetryFrame carries a worker's drained trace buffer. Timestamps inside
// the events are worker-epoch seconds; the driver aligns them using the
// TelClock reading it captured at handshake. No existing frame struct grows
// a field for telemetry — gob ships a struct's full type descriptor on
// first encode, so even a zero-valued addition would change the bytes of a
// telemetry-off stream.
type telemetryFrame struct {
	Events []obs.TelemetryEvent
}

type pairsFrame struct {
	// Data is codec-encoded pairs: uvarint count, then per pair a uvarint
	// key length, key bytes, and an appendValue-encoded value.
	Data []byte
}

// writeFrame gob-encodes payload (nil for bodyless frames) and writes one
// length-prefixed frame. The caller owns flushing.
func writeFrame(w io.Writer, typ byte, payload any) error {
	var buf bytes.Buffer
	if payload != nil {
		if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
			return fmt.Errorf("mr: encode frame 0x%02x: %w", typ, err)
		}
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// readFrame reads one frame. io.EOF (clean boundary) passes through
// unwrapped so callers can distinguish a dead peer from a corrupt stream;
// a partial header or body surfaces as io.ErrUnexpectedEOF.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("mr: frame 0x%02x length %d exceeds limit", hdr[0], n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return hdr[0], data, nil
}

// decodeFrame decodes a frame payload into v.
func decodeFrame(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// Wire value codec ---------------------------------------------------------

// Value kind bytes. The set mirrors approxValueBytes' known types plus the
// common small scalars; everything else is wGob.
const (
	wNil byte = iota
	wF64
	wI64
	wInt
	wStr
	wBool
	wF64s
	wI64s
	wU64s
	wInts
	wStrs
	wGob
)

// RegisterWireValue registers a concrete type for the gob fallback lane of
// the multiprocess wire codec. Jobs that emit (or cache) values outside the
// built-in lanes — float64, int64, int, string, bool, and slices of
// float64/int64/uint64/int/string — must register each such concrete type
// once (typically in an init function, so driver and re-exec'd workers
// agree) before running on the multiprocess backend.
func RegisterWireValue(v any) { gob.Register(v) }

// appendValue encodes one boxed value into buf.
func appendValue(buf *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case nil:
		buf.WriteByte(wNil)
	case float64:
		buf.WriteByte(wF64)
		putU64(buf, math.Float64bits(x))
	case int64:
		buf.WriteByte(wI64)
		putU64(buf, uint64(x))
	case int:
		buf.WriteByte(wInt)
		putU64(buf, uint64(int64(x)))
	case string:
		buf.WriteByte(wStr)
		putUvarint(buf, uint64(len(x)))
		buf.WriteString(x)
	case bool:
		buf.WriteByte(wBool)
		if x {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
	case []float64:
		buf.WriteByte(wF64s)
		putUvarint(buf, uint64(len(x)))
		for _, f := range x {
			putU64(buf, math.Float64bits(f))
		}
	case []int64:
		buf.WriteByte(wI64s)
		putUvarint(buf, uint64(len(x)))
		for _, i := range x {
			putU64(buf, uint64(i))
		}
	case []uint64:
		buf.WriteByte(wU64s)
		putUvarint(buf, uint64(len(x)))
		for _, u := range x {
			putU64(buf, u)
		}
	case []int:
		buf.WriteByte(wInts)
		putUvarint(buf, uint64(len(x)))
		for _, i := range x {
			putU64(buf, uint64(int64(i)))
		}
	case []string:
		buf.WriteByte(wStrs)
		putUvarint(buf, uint64(len(x)))
		for _, s := range x {
			putUvarint(buf, uint64(len(s)))
			buf.WriteString(s)
		}
	default:
		var gb bytes.Buffer
		if err := gob.NewEncoder(&gb).Encode(&v); err != nil {
			return fmt.Errorf("mr: wire-encode %T: %w (register it with mr.RegisterWireValue)", v, err)
		}
		buf.WriteByte(wGob)
		putUvarint(buf, uint64(gb.Len()))
		buf.Write(gb.Bytes())
	}
	return nil
}

// wireReader is what readValue consumes: both spill-file readers
// (bufio.Reader) and in-memory frames (bytes.Reader) satisfy it.
type wireReader interface {
	io.Reader
	io.ByteReader
}

// readValue decodes one appendValue-encoded value.
func readValue(r wireReader) (any, error) {
	kind, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	switch kind {
	case wNil:
		return nil, nil
	case wF64:
		u, err := getU64(r)
		return math.Float64frombits(u), err
	case wI64:
		u, err := getU64(r)
		return int64(u), err
	case wInt:
		u, err := getU64(r)
		return int(int64(u)), err
	case wStr:
		return readWireString(r)
	case wBool:
		b, err := r.ReadByte()
		return b != 0, err
	case wF64s:
		n, err := readWireLen(r)
		if err != nil {
			return nil, err
		}
		out := make([]float64, n)
		for i := range out {
			u, err := getU64(r)
			if err != nil {
				return nil, err
			}
			out[i] = math.Float64frombits(u)
		}
		return out, nil
	case wI64s:
		n, err := readWireLen(r)
		if err != nil {
			return nil, err
		}
		out := make([]int64, n)
		for i := range out {
			u, err := getU64(r)
			if err != nil {
				return nil, err
			}
			out[i] = int64(u)
		}
		return out, nil
	case wU64s:
		n, err := readWireLen(r)
		if err != nil {
			return nil, err
		}
		out := make([]uint64, n)
		for i := range out {
			u, err := getU64(r)
			if err != nil {
				return nil, err
			}
			out[i] = u
		}
		return out, nil
	case wInts:
		n, err := readWireLen(r)
		if err != nil {
			return nil, err
		}
		out := make([]int, n)
		for i := range out {
			u, err := getU64(r)
			if err != nil {
				return nil, err
			}
			out[i] = int(int64(u))
		}
		return out, nil
	case wStrs:
		n, err := readWireLen(r)
		if err != nil {
			return nil, err
		}
		out := make([]string, n)
		for i := range out {
			s, err := readWireString(r)
			if err != nil {
				return nil, err
			}
			out[i] = s
		}
		return out, nil
	case wGob:
		n, err := readWireLen(r)
		if err != nil {
			return nil, err
		}
		gb := make([]byte, n)
		if _, err := io.ReadFull(r, gb); err != nil {
			return nil, err
		}
		var v any
		if err := gob.NewDecoder(bytes.NewReader(gb)).Decode(&v); err != nil {
			return nil, fmt.Errorf("mr: wire-decode gob value: %w", err)
		}
		return v, nil
	default:
		return nil, fmt.Errorf("mr: wire value kind 0x%02x unknown", kind)
	}
}

func putU64(buf *bytes.Buffer, u uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], u)
	buf.Write(b[:])
}

func getU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func putUvarint(buf *bytes.Buffer, u uint64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], u)
	buf.Write(b[:n])
}

// readWireLen reads a uvarint element count, bounded so a corrupt (or
// fuzzed) stream cannot provoke a giant allocation before ReadFull fails.
func readWireLen(r io.ByteReader) (int, error) {
	u, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, err
	}
	if u > maxFrame {
		return 0, fmt.Errorf("mr: wire length %d exceeds limit", u)
	}
	return int(u), nil
}

func readWireString(r wireReader) (string, error) {
	n, err := readWireLen(r)
	if err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// encodePairs encodes output pairs for a pairsFrame.
func encodePairs(pairs []Pair) ([]byte, error) {
	var buf bytes.Buffer
	putUvarint(&buf, uint64(len(pairs)))
	for i := range pairs {
		putUvarint(&buf, uint64(len(pairs[i].Key)))
		buf.WriteString(pairs[i].Key)
		if err := appendValue(&buf, pairs[i].Value); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// decodePairs appends a pairsFrame's pairs to dst.
func decodePairs(dst []Pair, data []byte) ([]Pair, error) {
	r := bytes.NewReader(data)
	n, err := readWireLen(r)
	if err != nil {
		return dst, err
	}
	for i := 0; i < n; i++ {
		k, err := readWireString(r)
		if err != nil {
			return dst, err
		}
		v, err := readValue(r)
		if err != nil {
			return dst, err
		}
		dst = append(dst, Pair{Key: k, Value: v})
	}
	return dst, nil
}
