package mr

import (
	"os"
	"testing"
)

// TestMain lets this test binary double as a multiprocess-backend worker:
// the backend re-execs the current executable, which during tests *is* the
// test binary. MaybeWorkerProcess never returns in a worker process, so
// the test suite itself is unaffected.
func TestMain(m *testing.M) {
	MaybeWorkerProcess()
	os.Exit(m.Run())
}
