package mr

import (
	"hash/fnv"
	"testing"
)

// FuzzPartitionStability extends the golden FNV pin of shuffle_test.go from
// a fixed key corpus to arbitrary key bytes: for any key and any reducer
// count, the inline FNV-1a partitioner must agree with the hash/fnv
// reference, so shuffle layouts can never move — not even for keys no
// pipeline job has emitted yet.
func FuzzPartitionStability(f *testing.F) {
	f.Add([]byte(""), uint16(1))
	f.Add([]byte("even"), uint16(3))
	f.Add([]byte("supports"), uint16(112))
	f.Add([]byte("t3_9"), uint16(7))
	f.Add([]byte{0x00, 0xff, 0x80}, uint16(16))
	f.Add([]byte("héllo wörld"), uint16(1000))
	f.Fuzz(func(t *testing.T, key []byte, nRaw uint16) {
		n := 1 + int(nRaw%2048)
		h := fnv.New32a()
		h.Write(key)
		want := 0
		if n > 1 {
			want = int(h.Sum32() % uint32(n))
		}
		got := partition(string(key), n)
		if got != want {
			t.Fatalf("partition(%q, %d) = %d, hash/fnv reference = %d", key, n, got, want)
		}
		if got < 0 || got >= n {
			t.Fatalf("partition(%q, %d) = %d out of range", key, n, got)
		}
	})
}
