package mr

import "math/rand"

// TaskPhase identifies the lifecycle stage of a task attempt for fault
// injection. Combine is a sub-phase of a map attempt (as in Hadoop, where
// the combiner runs inside the map task), so a combine-phase failure retries
// the whole map attempt.
type TaskPhase int

const (
	// PhaseMap covers the record loop of a map attempt, including Setup and
	// Cleanup.
	PhaseMap TaskPhase = iota
	// PhaseCombine covers the combiner pass at the end of a map attempt.
	PhaseCombine
	// PhaseReduce covers the grouped reduce loop of a reduce attempt.
	PhaseReduce
)

// String names the phase.
func (p TaskPhase) String() string {
	switch p {
	case PhaseMap:
		return "map"
	case PhaseCombine:
		return "combine"
	case PhaseReduce:
		return "reduce"
	default:
		return "unknown"
	}
}

// FaultDecision is a FaultPlan's verdict for one task attempt.
type FaultDecision struct {
	// Fail aborts the attempt with an injected (retryable) failure.
	Fail bool
	// FailFrac in [0,1] positions the abort within the attempt's work:
	// 0 fails before the first record (or reduce key), 1 after the last —
	// exercising partial-output discard at every point of the lifecycle.
	// Values outside [0,1] are clamped. Ignored for PhaseCombine, which
	// fails before the combiner runs.
	FailFrac float64
	// StragglerSeconds charges a simulated straggler delay for this attempt
	// to the job's cost model (when one is configured). No wall clock
	// passes: the delay exists only in SimulatedSeconds, keeping chaos
	// tests fast and deterministic.
	StragglerSeconds float64
}

// FaultPlan decides, per task attempt, whether the attempt fails or
// straggles. Implementations must be pure functions of their arguments
// (plus fixed seeds) — no wall clock, no mutable state — and safe for
// concurrent use: the engine calls Decide from many task goroutines, and
// determinism per (job, phase, task, attempt) is what lets the chaos
// harness assert bit-identical output against a fault-free run.
type FaultPlan interface {
	Decide(job string, phase TaskPhase, task, attempt int) FaultDecision
}

// FaultPlanFunc adapts a plain function to the FaultPlan interface.
type FaultPlanFunc func(job string, phase TaskPhase, task, attempt int) FaultDecision

// Decide implements FaultPlan.
func (f FaultPlanFunc) Decide(job string, phase TaskPhase, task, attempt int) FaultDecision {
	return f(job, phase, task, attempt)
}

// RateFaultPlan fails attempts with a fixed probability per phase and
// optionally marks attempts as stragglers, all derived deterministically
// from Seed and the attempt identity. It is the drop-in replacement for the
// old Config.FailureRate knob, extended to the full task lifecycle.
type RateFaultPlan struct {
	// MapRate, CombineRate and ReduceRate are the per-phase probabilities in
	// [0,1] that an attempt fails. A failing attempt aborts at a
	// plan-chosen position within its records (map) or keys (reduce).
	MapRate, CombineRate, ReduceRate float64
	// StragglerRate is the probability that an attempt is charged a
	// simulated straggler delay of StragglerSeconds.
	StragglerRate    float64
	StragglerSeconds float64
	// Seed decorrelates independent plans.
	Seed int64
}

// Decide implements FaultPlan.
func (p RateFaultPlan) Decide(job string, phase TaskPhase, task, attempt int) FaultDecision {
	var rate float64
	switch phase {
	case PhaseMap:
		rate = p.MapRate
	case PhaseCombine:
		rate = p.CombineRate
	case PhaseReduce:
		rate = p.ReduceRate
	}
	if rate <= 0 && p.StragglerRate <= 0 {
		return FaultDecision{}
	}
	rng := rand.New(rand.NewSource(faultSeed(p.Seed, job, phase, task, attempt)))
	var d FaultDecision
	if rng.Float64() < rate {
		d.Fail = true
		d.FailFrac = rng.Float64()
	}
	if p.StragglerRate > 0 && rng.Float64() < p.StragglerRate {
		d.StragglerSeconds = p.StragglerSeconds
	}
	return d
}

// UniformFaults returns a RateFaultPlan that fails map, combine and reduce
// attempts with the same probability.
func UniformFaults(rate float64, seed int64) RateFaultPlan {
	return RateFaultPlan{MapRate: rate, CombineRate: rate, ReduceRate: rate, Seed: seed}
}

// faultSeed mixes the full attempt identity into an FNV-1a 64-bit hash, so
// every (seed, job, phase, task, attempt) tuple draws from an independent
// deterministic stream. The old FailureSeed scheme xor-folded only task and
// attempt, which correlated the failure pattern across all jobs of a
// pipeline; hashing the job name decorrelates them.
func faultSeed(seed int64, job string, phase TaskPhase, task, attempt int) int64 {
	const (
		fnvOffset64 = 14695981039346656037
		fnvPrime64  = 1099511628211
	)
	h := uint64(fnvOffset64)
	for i := 0; i < len(job); i++ {
		h ^= uint64(job[i])
		h *= fnvPrime64
	}
	for _, x := range [4]uint64{uint64(seed), uint64(phase), uint64(task), uint64(attempt)} {
		for b := 0; b < 8; b++ {
			h ^= x & 0xff
			h *= fnvPrime64
			x >>= 8
		}
	}
	return int64(h)
}

// failIndex converts a FailFrac into a concrete abort position over n units
// of work: 0 aborts before the first unit, n after the last.
func failIndex(frac float64, n int) int {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	at := int(frac * float64(n+1))
	if at > n {
		at = n
	}
	return at
}
