package mr

import (
	"fmt"
	"sort"
	"sync"
)

// The job-impl registry names executable job code so a Job can be described
// by data alone: an Impl name plus an opaque Spec blob. That is what lets
// the multiprocess backend run a job inside a worker OS process — closures
// cannot cross a process boundary, but a registered builder compiled into
// the binary can, and the re-exec'd worker resolves the same name to the
// same code.
//
// The in-process and simulated backends resolve Impl too (resolveJob), so
// one registered job definition runs identically on every backend — which
// is exactly what the conformance suite exercises.

// JobFuncs bundles the executable pieces of a Job, as produced by a
// registered impl builder. Field semantics match the Job fields of the same
// names.
type JobFuncs struct {
	Mapper        Mapper
	NewMapper     func() Mapper
	Reducer       Reducer
	TypedReducer  TypedReducer
	Combiner      Combiner
	TypedCombiner TypedCombiner
}

var (
	implMu  sync.RWMutex
	implReg = map[string]func(spec []byte) (JobFuncs, error){}
)

// RegisterJobImpl registers a named job implementation. The builder is
// called with the Job's Spec blob each time a job referencing the impl is
// resolved — in the driver process and again inside every worker process —
// so it must be pure: same spec, same behavior. Registration typically
// happens in an init function so drivers and re-exec'd workers agree on the
// registry contents. Registering an empty name or a name twice panics
// (programmer error, and silently replacing an impl would make worker and
// driver disagree).
func RegisterJobImpl(name string, build func(spec []byte) (JobFuncs, error)) {
	if name == "" || build == nil {
		panic("mr: RegisterJobImpl with empty name or nil builder")
	}
	implMu.Lock()
	defer implMu.Unlock()
	if _, dup := implReg[name]; dup {
		panic(fmt.Sprintf("mr: RegisterJobImpl(%q) called twice", name))
	}
	implReg[name] = build
}

// RegisteredJobImpls returns the registered impl names, sorted.
func RegisteredJobImpls() []string {
	implMu.RLock()
	defer implMu.RUnlock()
	names := make([]string, 0, len(implReg))
	for name := range implReg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// buildImpl resolves an impl name to its JobFuncs.
func buildImpl(name string, spec []byte) (JobFuncs, error) {
	implMu.RLock()
	build := implReg[name]
	implMu.RUnlock()
	if build == nil {
		return JobFuncs{}, fmt.Errorf("mr: job impl %q not registered (have %v)", name, RegisteredJobImpls())
	}
	return build(spec)
}

// resolveJob materializes a Job's Impl reference into concrete funcs,
// returning a shallow copy so the caller's Job is never mutated. Jobs
// without an Impl (or with funcs already set) pass through unchanged.
func resolveJob(job *Job) (*Job, error) {
	if job.Impl == "" || job.Mapper != nil || job.NewMapper != nil {
		return job, nil
	}
	funcs, err := buildImpl(job.Impl, job.Spec)
	if err != nil {
		return nil, fmt.Errorf("mr: job %q: %w", job.Name, err)
	}
	j := *job
	j.Mapper = funcs.Mapper
	j.NewMapper = funcs.NewMapper
	j.Reducer = funcs.Reducer
	j.TypedReducer = funcs.TypedReducer
	j.Combiner = funcs.Combiner
	j.TypedCombiner = funcs.TypedCombiner
	return &j, nil
}
