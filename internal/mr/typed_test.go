package mr

import (
	"fmt"
	"reflect"
	"testing"
)

// typedTestSplits builds a small deterministic input.
func typedTestSplits(splits, rows, dim int) []*Split {
	out := make([]*Split, splits)
	global := 0
	for s := 0; s < splits; s++ {
		sp := &Split{ID: s, Offset: global, Dim: dim}
		for r := 0; r < rows; r++ {
			for d := 0; d < dim; d++ {
				sp.Rows = append(sp.Rows, float64(global*dim+d)*0.25)
			}
			global++
		}
		out[s] = sp
	}
	return out
}

// TestTypedEmitMatchesBoxed runs the same logical job once through the
// boxed-compat lane (ctx.Emit + Reducer) and once through the typed lane
// (EmitF64 + TypedReducer) and requires byte-for-byte identical Output:
// same pairs in the same order, same counters. This is the core compat
// oracle of the typed plane.
func TestTypedEmitMatchesBoxed(t *testing.T) {
	splits := typedTestSplits(4, 32, 3)
	key := func(g int) string { return fmt.Sprintf("k%d", g%7) }

	boxed := &Job{
		Name:   "boxed",
		Splits: splits,
		Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
			ctx.Emit(key(global), row[0]+row[1])
			return nil
		}),
		Reducer: ReducerFunc(func(ctx *TaskContext, k string, values []any) error {
			sum := 0.0
			for _, v := range values {
				sum += v.(float64)
			}
			ctx.Emit(k, sum)
			return nil
		}),
		NumReducers: 3,
	}
	typed := &Job{
		Name:   "boxed", // same name: counters embed no name, spans do; keep apples-to-apples
		Splits: splits,
		Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
			ctx.EmitF64(key(global), row[0]+row[1])
			return nil
		}),
		TypedReducer: TypedReducerFunc(func(ctx *TaskContext, k string, values Values) error {
			sum := 0.0
			for i := 0; i < values.Len(); i++ {
				sum += values.Float64(i)
			}
			ctx.EmitF64(k, sum)
			return nil
		}),
		NumReducers: 3,
	}

	for _, par := range []int{1, 4} {
		e1 := NewEngine(Config{Parallelism: par})
		e2 := NewEngine(Config{Parallelism: par})
		o1, err := e1.Run(boxed)
		if err != nil {
			t.Fatalf("par %d: boxed: %v", par, err)
		}
		o2, err := e2.Run(typed)
		if err != nil {
			t.Fatalf("par %d: typed: %v", par, err)
		}
		if !reflect.DeepEqual(o1.Pairs, o2.Pairs) {
			t.Fatalf("par %d: typed pairs diverge from boxed\nboxed: %v\ntyped: %v", par, o1.Pairs, o2.Pairs)
		}
		if o1.Counters != o2.Counters {
			t.Fatalf("par %d: counters diverge\nboxed: %+v\ntyped: %+v", par, o1.Counters, o2.Counters)
		}
	}
}

// TestTypedScalarRoundTrip pins the boxed dynamic type of every scalar lane:
// an emitted int must come back as int (not int64), an int64 as int64, a
// float64 as float64 — through map-only output, reducers, and combiners.
func TestTypedScalarRoundTrip(t *testing.T) {
	splits := typedTestSplits(1, 4, 1)
	job := &Job{
		Name:   "roundtrip",
		Splits: splits,
		Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
			Emit(ctx, "f", 1.5)
			Emit(ctx, "i", int64(-7))
			Emit(ctx, "n", 42)
			Emit(ctx, "s", []float64{1, 2})
			return nil
		}),
	}
	out, err := Default().Run(job)
	if err != nil {
		t.Fatal(err)
	}
	byKey := out.Grouped()
	if v := byKey["f"][0]; v != any(1.5) {
		t.Fatalf("float64 round-trip: got %T %v", v, v)
	}
	if v := byKey["i"][0]; v != any(int64(-7)) {
		t.Fatalf("int64 round-trip: got %T %v", v, v)
	}
	if v := byKey["n"][0]; v != any(42) {
		t.Fatalf("int round-trip: got %T %v (must stay int, not int64)", v, v)
	}
	if v, ok := byKey["s"][0].([]float64); !ok || len(v) != 2 {
		t.Fatalf("slice round-trip: got %T", byKey["s"][0])
	}
}

// TestValuesAccessors exercises every Values accessor against a reducer's
// mixed-lane input.
func TestValuesAccessors(t *testing.T) {
	splits := typedTestSplits(1, 1, 1)
	job := &Job{
		Name:   "accessors",
		Splits: splits,
		Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
			ctx.EmitF64("k", 0.5)
			ctx.EmitI64("k", 9)
			ctx.EmitInt("k", 3)
			ctx.Emit("k", "str")
			return nil
		}),
		TypedReducer: TypedReducerFunc(func(ctx *TaskContext, k string, values Values) error {
			if values.Len() != 4 {
				t.Errorf("Len = %d, want 4", values.Len())
			}
			if got := values.Float64(0); got != 0.5 {
				t.Errorf("Float64(0) = %v", got)
			}
			if got := values.Int64(1); got != 9 {
				t.Errorf("Int64(1) = %v", got)
			}
			if got := values.Int(2); got != 3 {
				t.Errorf("Int(2) = %v", got)
			}
			if got := values.Value(3); got != any("str") {
				t.Errorf("Value(3) = %v", got)
			}
			boxed := values.AppendBoxed(nil)
			want := []any{0.5, int64(9), 3, "str"}
			if !reflect.DeepEqual(boxed, want) {
				t.Errorf("AppendBoxed = %#v, want %#v", boxed, want)
			}
			ctx.EmitInt(k, values.Len())
			return nil
		}),
	}
	out, err := Default().Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := out.Single("k"); !ok || v != any(4) {
		t.Fatalf("output = %v", out.Pairs)
	}
}

// TestTypedCombinerMatchesBoxed runs the same sum job with a boxed Combiner
// and a TypedCombiner and requires identical output and counters —
// including CombineInput/CombineOutput and the post-combine ShuffledBytes.
func TestTypedCombinerMatchesBoxed(t *testing.T) {
	splits := typedTestSplits(3, 40, 2)
	key := func(g int) string { return fmt.Sprintf("k%d", g%5) }
	mapF64 := MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
		ctx.EmitF64(key(global), row[1])
		return nil
	})
	reduce := TypedReducerFunc(func(ctx *TaskContext, k string, values Values) error {
		sum := 0.0
		for i := 0; i < values.Len(); i++ {
			sum += values.Float64(i)
		}
		ctx.EmitF64(k, sum)
		return nil
	})

	boxed := &Job{
		Name: "combine", Splits: splits, Mapper: mapF64, TypedReducer: reduce,
		Combiner: CombinerFunc(func(k string, values []any) ([]any, error) {
			sum := 0.0
			for _, v := range values {
				sum += v.(float64)
			}
			return []any{sum}, nil
		}),
		NumReducers: 2,
	}
	typed := &Job{
		Name: "combine", Splits: splits, Mapper: mapF64, TypedReducer: reduce,
		TypedCombiner: TypedCombinerFunc(func(k string, values Values, out *CombineEmit) error {
			sum := 0.0
			for i := 0; i < values.Len(); i++ {
				sum += values.Float64(i)
			}
			out.EmitF64(sum)
			return nil
		}),
		NumReducers: 2,
	}
	o1, err := Default().Run(boxed)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Default().Run(typed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o1.Pairs, o2.Pairs) {
		t.Fatalf("typed combiner pairs diverge\nboxed: %v\ntyped: %v", o1.Pairs, o2.Pairs)
	}
	if o1.Counters != o2.Counters {
		t.Fatalf("typed combiner counters diverge\nboxed: %+v\ntyped: %+v", o1.Counters, o2.Counters)
	}
	if o1.Counters.CombineInput == 0 || o1.Counters.CombineOutput == 0 {
		t.Fatalf("combiner never ran: %+v", o1.Counters)
	}
}

// TestJobValidation pins the at-most-one-of constraints on the dual
// reducer/combiner surfaces.
func TestJobValidation(t *testing.T) {
	splits := typedTestSplits(1, 1, 1)
	m := MapperFunc(func(ctx *TaskContext, global int, row []float64) error { return nil })
	red := ReducerFunc(func(ctx *TaskContext, k string, values []any) error { return nil })
	tred := TypedReducerFunc(func(ctx *TaskContext, k string, values Values) error { return nil })
	if _, err := Default().Run(&Job{Name: "both-red", Splits: splits, Mapper: m, Reducer: red, TypedReducer: tred}); err == nil {
		t.Fatal("want error when both Reducer and TypedReducer are set")
	}
	cb := CombinerFunc(func(k string, values []any) ([]any, error) { return values, nil })
	tcb := TypedCombinerFunc(func(k string, values Values, out *CombineEmit) error { return nil })
	if _, err := Default().Run(&Job{Name: "both-cb", Splits: splits, Mapper: m, TypedReducer: tred, Combiner: cb, TypedCombiner: tcb}); err == nil {
		t.Fatal("want error when both Combiner and TypedCombiner are set")
	}
}

// TestCombinerDropsAllValuesOfKey pins the empty-group contract: a combiner
// that folds every value of a key away must make the key invisible to the
// reducer — on both lanes, identically.
func TestCombinerDropsAllValuesOfKey(t *testing.T) {
	splits := typedTestSplits(2, 10, 1)
	mk := MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
		ctx.EmitInt(fmt.Sprintf("k%d", global%4), 1)
		return nil
	})
	seen := map[string]bool{}
	job := &Job{
		Name: "drop", Splits: splits, Mapper: mk,
		TypedCombiner: TypedCombinerFunc(func(k string, values Values, out *CombineEmit) error {
			if k == "k1" {
				return nil // fold the key away entirely
			}
			out.EmitInt(values.Len())
			return nil
		}),
		TypedReducer: TypedReducerFunc(func(ctx *TaskContext, k string, values Values) error {
			seen[k] = true
			return nil
		}),
		NumReducers: 1, // single reducer, sequential: the seen map is safe
	}
	if _, err := NewEngine(Config{Parallelism: 1}).Run(job); err != nil {
		t.Fatal(err)
	}
	if seen["k1"] {
		t.Fatal("key k1 reached the reducer although the combiner dropped all its values")
	}
	if !seen["k0"] || !seen["k2"] || !seen["k3"] {
		t.Fatalf("surviving keys missing from reducer: %v", seen)
	}
}

// TestPoolReuseAcrossJobs runs many jobs back-to-back on one engine (the
// pools' steady state) and checks outputs stay identical run over run —
// with and without DebugPoisonPools, which would corrupt output loudly if
// any recycled buffer were still referenced.
func TestPoolReuseAcrossJobs(t *testing.T) {
	for _, poison := range []bool{false, true} {
		e := NewEngine(Config{Parallelism: 4, DebugPoisonPools: poison})
		var first *Output
		for iter := 0; iter < 5; iter++ {
			job := &Job{
				Name:   "steady",
				Splits: typedTestSplits(4, 25, 2),
				Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
					ctx.EmitF64(fmt.Sprintf("k%d", global%9), row[0])
					return nil
				}),
				TypedReducer: TypedReducerFunc(func(ctx *TaskContext, k string, values Values) error {
					sum := 0.0
					for i := 0; i < values.Len(); i++ {
						sum += values.Float64(i)
					}
					ctx.EmitF64(k, sum)
					return nil
				}),
				NumReducers: 3,
			}
			out, err := e.Run(job)
			if err != nil {
				t.Fatalf("poison=%v iter %d: %v", poison, iter, err)
			}
			if first == nil {
				first = out
				continue
			}
			if !reflect.DeepEqual(first.Pairs, out.Pairs) {
				t.Fatalf("poison=%v iter %d: output drifted across pooled runs", poison, iter)
			}
			if first.Counters != out.Counters {
				t.Fatalf("poison=%v iter %d: counters drifted across pooled runs", poison, iter)
			}
		}
	}
}
