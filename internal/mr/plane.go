package mr

import (
	"math"
	"sort"
	"sync"
)

// This file is the typed shuffle plane: the internal record representation
// that carries every (key, value) pair from map emit through partition,
// combine, merge and group to reduce without boxing scalar values into
// `any` and without re-hashing key strings per record.
//
// Three ideas, in order of leverage:
//
//   - Tagged records. A rec stores float64/int64/int payloads inline as raw
//     bits next to a one-byte tag; only genuinely structured values (slices,
//     structs) ride in an interface. The paper's pipeline is numeric almost
//     everywhere, so the common case allocates nothing.
//   - Interned keys. Each map task interns key strings into a small table
//     once per *distinct* key, computing the FNV-1a reduce partition at the
//     same time; records carry a uint32 id. The shuffle then renumbers
//     task-local ids into per-partition ids assigned in ascending key order,
//     which turns reduce-side grouping into a counting sort over dense ids —
//     zero string hashing or comparison per record.
//   - Pooled buffers. Task buffers, the job-wide shuffle state and reduce
//     scratch are recycled through sync.Pools. Recycling is barriered on
//     attempt commitment (see enginePools): a buffer is returned only when
//     no retried attempt can still observe it, preserving the PR 2 retry
//     contract. Config.DebugPoisonPools overwrites buffers on return so any
//     violation of that barrier corrupts output visibly in chaos tests.
//
// The boxed surface (Pair, Reducer, Combiner, Output.Pairs) is unchanged:
// it is materialized from recs at the edges, so external jobs run as
// before and all bit-identity oracles apply to the typed plane verbatim.

// valueTag discriminates the payload lanes of a rec.
type valueTag uint8

const (
	// tagAny carries the value in rec.val (the boxed-compat lane).
	tagAny valueTag = iota
	// tagF64 carries math.Float64bits of a float64 in rec.num.
	tagF64
	// tagI64 carries an int64 in rec.num.
	tagI64
	// tagInt carries an int in rec.num (kept distinct from tagI64 so the
	// boxed type round-trips exactly: an emitted int must reduce as an int).
	tagInt
)

// rec is one shuffle record. key indexes a keyTab (task-local before the
// merge, partition-local after); scalar payloads live in num, everything
// else in val.
type rec struct {
	key uint32
	tag valueTag
	num uint64
	val any
}

// value boxes the payload back into the `any` the boxed-compat surface
// expects. Scalar lanes pay their interface allocation here — at the edges
// (Output.Pairs, legacy reducers) — never inside the shuffle.
func (r *rec) value() any {
	switch r.tag {
	case tagF64:
		return math.Float64frombits(r.num)
	case tagI64:
		return int64(r.num)
	case tagInt:
		return int(int64(r.num))
	default:
		return r.val
	}
}

// bytes is the shuffle-accounting size of the payload, matching
// approxValueBytes on the boxed lane so ShuffledBytes stays bit-identical
// to the pre-typed engine.
func (r *rec) bytes() int64 {
	if r.tag == tagAny {
		return approxValueBytes(r.val)
	}
	return 8
}

// keyTab interns key strings to dense uint32 ids. Map tasks intern lazily
// per emit (one map lookup per record, one FNV hash per distinct key); the
// shuffle builds a job-global table from the task tables (never touching
// individual records).
type keyTab struct {
	ids  map[string]uint32
	keys []string
	// part memoizes the key's reduce partition, computed once at intern
	// time with the same inlined FNV-1a as partition().
	part []uint32
}

// intern returns the id for key, assigning the next id (and computing the
// key's partition among n reducers) on first sight.
func (t *keyTab) intern(key string, n int) uint32 {
	if id, ok := t.ids[key]; ok {
		return id
	}
	if t.ids == nil {
		t.ids = make(map[string]uint32, 64)
	}
	id := uint32(len(t.keys))
	t.ids[key] = id
	t.keys = append(t.keys, key)
	t.part = append(t.part, uint32(partition(key, n)))
	return id
}

// reset empties the table keeping its capacity (and the map's buckets), so
// a pooled table re-interns without allocating. With poison set
// (Config.DebugPoisonPools), dead entries are overwritten with garbage
// markers instead of zeroes, so a use-after-recycle reads obviously-wrong
// data rather than stale-but-plausible zero values.
func (t *keyTab) reset(poison bool) {
	clear(t.ids)
	if poison {
		for i := range t.keys {
			t.keys[i] = poisonedKey
		}
		for i := range t.part {
			t.part[i] = ^uint32(0)
		}
	} else {
		// Drop string references so pooled tables don't pin old keys alive.
		clear(t.keys)
	}
	t.keys = t.keys[:0]
	t.part = t.part[:0]
}

// poisonedKey replaces recycled key strings under DebugPoisonPools: any
// stale read produces a key no real job emits.
const poisonedKey = "\x00poisoned\x00"

// poisonRecs overwrites a rec slice with garbage markers (an out-of-range id
// and a NaN-patterned payload), dropping interface references like clearRecs
// but leaving values a stale reader cannot mistake for live data.
func poisonRecs(recs []rec) {
	for i := range recs {
		recs[i] = rec{key: ^uint32(0), num: 0x7ff0dead7ff0dead}
	}
}

// idSorter sorts key ids by their string, reusing one allocation across
// calls (sort.Interface over fields instead of a fresh closure per sort).
type idSorter struct {
	ids  []uint32
	keys []string
}

func (s *idSorter) Len() int           { return len(s.ids) }
func (s *idSorter) Less(i, j int) bool { return s.keys[s.ids[i]] < s.keys[s.ids[j]] }
func (s *idSorter) Swap(i, j int)      { s.ids[i], s.ids[j] = s.ids[j], s.ids[i] }

// groupScratch is the reusable workspace of one counting group: per-id
// counts/offsets, the distinct-id list, a sorter, and a scatter buffer.
type groupScratch struct {
	counts []int32
	ids    []uint32
	sorter idSorter
	recs   []rec
}

// grow readies the scratch for numKeys ids and n records.
func (g *groupScratch) grow(numKeys, n int) {
	if cap(g.counts) < numKeys {
		g.counts = make([]int32, numKeys)
	}
	g.counts = g.counts[:numKeys]
	for i := range g.counts {
		g.counts[i] = 0
	}
	if cap(g.recs) < n {
		g.recs = make([]rec, n)
	}
	g.recs = g.recs[:n]
}

// release drops interface references held by the scatter buffer (called
// when the owner returns to a pool).
func (g *groupScratch) release(poison bool) {
	full := g.recs[:cap(g.recs)]
	if poison {
		poisonRecs(full)
	} else {
		clearRecs(full)
	}
	g.recs = g.recs[:0]
	g.ids = g.ids[:0]
}

// clearRecs zeroes a rec slice through its capacity, dropping any interface
// references a pooled buffer would otherwise pin.
func clearRecs(recs []rec) {
	clear(recs)
}

// groupLocal walks one task-local bucket grouped by key in ascending key
// order — the combiner-side counterpart of the reduce counting group. Ids
// are task-local, so the distinct ids present in the bucket are sorted by
// their key string here; values keep emission order within a key.
func groupLocal(bucket []rec, tab *keyTab, sc *groupScratch, fn func(id uint32, grouped []rec) error) error {
	if len(bucket) == 0 {
		return nil
	}
	sc.grow(len(tab.keys), len(bucket))
	for i := range bucket {
		sc.counts[bucket[i].key]++
	}
	sc.ids = sc.ids[:0]
	for id, n := range sc.counts {
		if n > 0 {
			sc.ids = append(sc.ids, uint32(id))
		}
	}
	sc.sorter.ids, sc.sorter.keys = sc.ids, tab.keys
	sort.Sort(&sc.sorter)

	// counts → running offsets in sorted-key order.
	off := int32(0)
	for _, id := range sc.ids {
		n := sc.counts[id]
		sc.counts[id] = off
		off += n
	}
	for i := range bucket {
		o := sc.counts[bucket[i].key]
		sc.recs[o] = bucket[i]
		sc.counts[bucket[i].key] = o + 1
	}
	lo := int32(0)
	for _, id := range sc.ids {
		hi := sc.counts[id]
		if err := fn(id, sc.recs[lo:hi:hi]); err != nil {
			return err
		}
		lo = hi
	}
	return nil
}

// mapState is one map task's shuffle-side output: per-partition record
// buffers plus the task-local key table. One attempt owns it exclusively;
// it is recycled through the engine pool only after the merge has copied
// its records out (or the attempt failed unobserved).
type mapState struct {
	tab     keyTab
	buckets [][]rec
	// combineOut is the swap buffer of the in-place combiner pass.
	combineOut []rec
	sc         groupScratch
	// bufBytes approximates the buffered record bytes (key + payload, the
	// ShuffledBytes size rule) — maintained only when the owning
	// TaskContext sets trackBuf, i.e. by multiprocess map workers deciding
	// when to spill. The in-process hot path never pays for it.
	bufBytes int64
}

// ready sizes the per-partition buffers for nb buckets, reusing capacity.
func (m *mapState) ready(nb int) {
	if cap(m.buckets) < nb {
		m.buckets = make([][]rec, nb)
	}
	m.buckets = m.buckets[:nb]
}

// reset clears the state for reuse, keeping every allocation. poison
// replaces zeroing with garbage markers (see keyTab.reset).
func (m *mapState) reset(poison bool) {
	for r := range m.buckets {
		full := m.buckets[r][:cap(m.buckets[r])]
		if poison {
			poisonRecs(full)
		} else {
			clearRecs(full)
		}
		m.buckets[r] = m.buckets[r][:0]
	}
	full := m.combineOut[:cap(m.combineOut)]
	if poison {
		poisonRecs(full)
	} else {
		clearRecs(full)
	}
	m.combineOut = m.combineOut[:0]
	m.tab.reset(poison)
	m.sc.release(poison)
	m.bufBytes = 0
}

// shuffleState is the job-wide merge workspace: the job-global key table,
// per-task id remaps, per-partition merged runs and their sorted key lists.
// One Run owns it from the map barrier to output materialization.
type shuffleState struct {
	tab     keyTab     // job-global ids, first-emission order
	remaps  [][]uint32 // task-local id → job-global id
	pid     []uint32   // job-global id → partition-local id
	order   []uint32   // job-global ids in ascending key order
	sorter  idSorter
	runs    [][]rec    // per partition: merged records (partition-local ids)
	runKeys [][]string // per partition: key strings in ascending order
}

func (s *shuffleState) reset(poison bool) {
	for r := range s.runs {
		full := s.runs[r][:cap(s.runs[r])]
		if poison {
			poisonRecs(full)
		} else {
			clearRecs(full)
		}
		s.runs[r] = s.runs[r][:0]
	}
	for r := range s.runKeys {
		if poison {
			for i := range s.runKeys[r] {
				s.runKeys[r][i] = poisonedKey
			}
		} else {
			clear(s.runKeys[r])
		}
		s.runKeys[r] = s.runKeys[r][:0]
	}
	for i := range s.remaps {
		s.remaps[i] = s.remaps[i][:0]
	}
	s.remaps = s.remaps[:0]
	s.pid = s.pid[:0]
	s.order = s.order[:0]
	s.tab.reset(poison)
}

// enginePools recycles the three buffer kinds across jobs. Lifecycle
// barriers (who may return what, when):
//
//   - mapState: returned by the merge step after its records are copied
//     into the partition runs, or by the failing/cancelled task goroutine
//     (a failed attempt's buffers were never observed outside the task).
//     Never returned between attempts of a live task — the next attempt
//     resets and reuses it directly.
//   - shuffleState: returned at the end of Run, after reduce tasks (and
//     their retries, which re-read the immutable partition runs) have all
//     finished and the output is materialized.
//   - groupScratch (reduce side): returned when its reduce task's attempt
//     loop ends; retries of the same task reuse it by re-scattering, and no
//     other task can see it.
//
// poison, when set, overwrites buffers as they are returned so that any
// read through a stale reference yields garbage — the chaos canary that
// proves the barriers above (see TestChaosPoisonedPools*).
type enginePools struct {
	poison    bool
	mapStates sync.Pool
	shuffles  sync.Pool
	scratches sync.Pool
}

func newEnginePools(poison bool) *enginePools {
	p := &enginePools{poison: poison}
	p.mapStates.New = func() any { return new(mapState) }
	p.shuffles.New = func() any { return new(shuffleState) }
	p.scratches.New = func() any { return new(groupScratch) }
	return p
}

func (p *enginePools) getMapState(nb int) *mapState {
	st := p.mapStates.Get().(*mapState)
	st.ready(nb)
	return st
}

func (p *enginePools) putMapState(st *mapState) {
	if st == nil {
		return
	}
	st.reset(p.poison)
	p.mapStates.Put(st)
}

func (p *enginePools) getShuffle() *shuffleState { return p.shuffles.Get().(*shuffleState) }

func (p *enginePools) putShuffle(s *shuffleState) {
	s.reset(p.poison)
	p.shuffles.Put(s)
}

func (p *enginePools) getScratch() *groupScratch { return p.scratches.Get().(*groupScratch) }

func (p *enginePools) putScratch(sc *groupScratch) {
	sc.release(p.poison)
	p.scratches.Put(sc)
}

// mergeShuffle renumbers every successful map task's records into
// partition-local ids and concatenates them into one contiguous run per
// partition, in split order — the same deterministic order the boxed plane
// produced, so value order within a key is a pure function of the split
// layout.
//
// Ids are assigned in ascending key order within each partition, which is
// what lets groupRun iterate ids 0..K-1 with no sorting: the renumbering
// pass is the only place the shuffle ever compares key strings, and it does
// so once per distinct key, not per record.
func mergeShuffle(sh *shuffleState, states []*mapState, nb, numReducers int) {
	// Job-global table, interning each task's distinct keys in task order.
	for i, st := range states {
		if i < cap(sh.remaps) {
			sh.remaps = sh.remaps[:i+1]
		} else {
			sh.remaps = append(sh.remaps, nil)
		}
		if st == nil {
			continue
		}
		r := sh.remaps[i][:0]
		for _, k := range st.tab.keys {
			r = append(r, sh.tab.intern(k, numReducers))
		}
		sh.remaps[i] = r
	}

	// Ascending key order over the job's distinct keys.
	if cap(sh.order) < len(sh.tab.keys) {
		sh.order = make([]uint32, len(sh.tab.keys))
	}
	sh.order = sh.order[:len(sh.tab.keys)]
	for i := range sh.order {
		sh.order[i] = uint32(i)
	}
	sh.sorter.ids, sh.sorter.keys = sh.order, sh.tab.keys
	sort.Sort(&sh.sorter)

	// Partition-local ids in ascending key order, plus each partition's
	// sorted key list.
	if cap(sh.pid) < len(sh.tab.keys) {
		sh.pid = make([]uint32, len(sh.tab.keys))
	}
	sh.pid = sh.pid[:len(sh.tab.keys)]
	for len(sh.runKeys) < nb {
		sh.runKeys = append(sh.runKeys, nil)
	}
	sh.runKeys = sh.runKeys[:nb]
	for _, gid := range sh.order {
		r := sh.tab.part[gid]
		sh.pid[gid] = uint32(len(sh.runKeys[r]))
		sh.runKeys[r] = append(sh.runKeys[r], sh.tab.keys[gid])
	}

	// Merge, in split order, renumbering each record through two array
	// lookups (task-local id → global id → partition-local id).
	for len(sh.runs) < nb {
		sh.runs = append(sh.runs, nil)
	}
	sh.runs = sh.runs[:nb]
	for r := 0; r < nb; r++ {
		total := 0
		for _, st := range states {
			if st != nil {
				total += len(st.buckets[r])
			}
		}
		run := sh.runs[r]
		if cap(run) < total {
			run = make([]rec, 0, total)
		}
		for i, st := range states {
			if st == nil {
				continue
			}
			remap := sh.remaps[i]
			for _, rc := range st.buckets[r] {
				rc.key = sh.pid[remap[rc.key]]
				run = append(run, rc)
			}
		}
		sh.runs[r] = run
	}
}

// groupRun walks one partition run grouped by key in ascending key order —
// the Hadoop reduce contract — via a counting sort over the dense
// partition-local ids. keys[id] is the key string; values keep run order
// (split order, then emission order), and each callback slice is
// capacity-clamped so an appending callback cannot clobber a neighbour.
func groupRun(run []rec, keys []string, sc *groupScratch, fn func(key string, grouped []rec) error) error {
	if len(run) == 0 {
		return nil
	}
	sc.grow(len(keys), len(run))
	for i := range run {
		sc.counts[run[i].key]++
	}
	off := int32(0)
	for id := range sc.counts {
		n := sc.counts[id]
		sc.counts[id] = off
		off += n
	}
	for i := range run {
		o := sc.counts[run[i].key]
		sc.recs[o] = run[i]
		sc.counts[run[i].key] = o + 1
	}
	lo := int32(0)
	for id := range keys {
		hi := sc.counts[id]
		if hi == lo {
			// A key can end up with zero records when a combiner folded all
			// of its values away; the boxed plane never surfaced such keys
			// to the reducer, so neither does this one.
			continue
		}
		if err := fn(keys[id], sc.recs[lo:hi:hi]); err != nil {
			return err
		}
		lo = hi
	}
	return nil
}
