package mr

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPartitionMatchesFNV pins the inlined FNV-1a partitioner to the
// hash/fnv reference implementation over a spread of key shapes and
// partition counts, so the allocation-free rewrite cannot silently move
// keys between reducers.
func TestPartitionMatchesFNV(t *testing.T) {
	keys := []string{"", "a", "ab", "even", "odd", "sum", "supports", "h0", "h127", "t3_9"}
	for i := 0; i < 64; i++ {
		keys = append(keys, fmt.Sprintf("c%04d", i*37))
	}
	for _, n := range []int{1, 2, 3, 4, 7, 16, 112, 1000} {
		for _, key := range keys {
			h := fnv.New32a()
			h.Write([]byte(key))
			want := 0
			if n > 1 {
				want = int(h.Sum32() % uint32(n))
			}
			if got := partition(key, n); got != want {
				t.Fatalf("partition(%q, %d) = %d, fnv reference = %d", key, n, got, want)
			}
		}
	}
}

// TestPartitionPinnedAssignments hardcodes golden partition assignments.
// If this test fails, the hash function changed and every persisted or
// expected shuffle layout in the pipeline moves — that must be a deliberate
// decision, never a refactoring accident.
func TestPartitionPinnedAssignments(t *testing.T) {
	cases := []struct {
		key          string
		p4, p7, p112 int
	}{
		{"", 1, 2, 37},
		{"even", 1, 2, 65},
		{"odd", 2, 1, 78},
		{"sum", 0, 0, 56},
		{"supports", 1, 0, 49},
		{"uncovered", 0, 3, 80},
		{"h0", 1, 2, 37},
		{"h17", 3, 0, 63},
		{"t3_9", 0, 2, 44},
		{"c0042", 0, 6, 48},
		{"wide-key-with-a-much-longer-name-0123456789", 1, 6, 13},
	}
	for _, c := range cases {
		if got := partition(c.key, 4); got != c.p4 {
			t.Errorf("partition(%q, 4) = %d, pinned %d", c.key, got, c.p4)
		}
		if got := partition(c.key, 7); got != c.p7 {
			t.Errorf("partition(%q, 7) = %d, pinned %d", c.key, got, c.p7)
		}
		if got := partition(c.key, 112); got != c.p112 {
			t.Errorf("partition(%q, 112) = %d, pinned %d", c.key, got, c.p112)
		}
	}
}

// capMapper tracks how many map tasks are in flight between Setup and
// Cleanup, recording the peak.
type capMapper struct {
	inFlight, peak *atomic.Int64
}

func (m *capMapper) Setup(*TaskContext) error {
	cur := m.inFlight.Add(1)
	for {
		p := m.peak.Load()
		if cur <= p || m.peak.CompareAndSwap(p, cur) {
			return nil
		}
	}
}

func (m *capMapper) Map(ctx *TaskContext, global int, row []float64) error {
	time.Sleep(100 * time.Microsecond)
	return nil
}

func (m *capMapper) Cleanup(*TaskContext) error {
	m.inFlight.Add(-1)
	return nil
}

// TestParallelismCapSharedAcrossConcurrentRuns: Config.Parallelism is an
// engine-wide cap. Two jobs running concurrently on one engine must never
// have more tasks in flight than the cap — previously each Run opened its
// own semaphore and concurrent jobs could run 2× the configured tasks.
func TestParallelismCapSharedAcrossConcurrentRuns(t *testing.T) {
	const cap = 2
	engine := NewEngine(Config{Parallelism: cap})
	var inFlight, peak atomic.Int64
	var wg sync.WaitGroup
	for j := 0; j < 2; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			job := &Job{
				Name:      fmt.Sprintf("capped-%d", j),
				Splits:    makeSplits(36, 12),
				NewMapper: func() Mapper { return &capMapper{inFlight: &inFlight, peak: &peak} },
			}
			if _, err := engine.Run(job); err != nil {
				t.Error(err)
			}
		}(j)
	}
	wg.Wait()
	if p := peak.Load(); p > cap {
		t.Fatalf("peak in-flight map tasks = %d, engine-wide cap = %d", p, cap)
	}
	if p := peak.Load(); p < cap {
		t.Logf("peak in-flight = %d never reached cap %d (scheduling-dependent, not a failure)", p, cap)
	}
}

// TestShuffleDeterministicAcrossParallelism: with the split layout fixed,
// the engine's output — pair order, float accumulations, and counters —
// must be byte-identical at any Parallelism. This is the property the
// partitioned-buffer shuffle buys: per-task buffers merge in split order,
// so reducers always see the same value sequence regardless of task
// scheduling.
func TestShuffleDeterministicAcrossParallelism(t *testing.T) {
	run := func(par int) (string, string, Counters) {
		engine := NewEngine(Config{Parallelism: par, NumReducers: 5})
		var mu sync.Mutex
		lastKey := make(map[int]string)
		job := &Job{
			Name:   "determinism",
			Splits: makeSplits(5000, 16),
			Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
				// Irrational-ish increments make float sums order-sensitive,
				// so any nondeterministic value order shows up in the bits.
				ctx.Emit(fmt.Sprintf("k%03d", global%97), row[0]*0.1+0.3)
				return nil
			}),
			Reducer: ReducerFunc(func(ctx *TaskContext, key string, values []any) error {
				mu.Lock()
				if prev, ok := lastKey[ctx.TaskID]; ok && key <= prev {
					mu.Unlock()
					return fmt.Errorf("reducer %d saw key %q after %q — reduce keys not sorted", ctx.TaskID, key, prev)
				}
				lastKey[ctx.TaskID] = key
				mu.Unlock()
				var s float64
				for _, v := range values {
					s += v.(float64)
				}
				ctx.Emit(key, s)
				return nil
			}),
		}
		out, err := engine.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		raw := ""
		for _, p := range out.Pairs {
			raw += fmt.Sprintf("%s=%x;", p.Key, p.Value.(float64))
		}
		sorted := ""
		for _, g := range out.Groups() {
			sorted += fmt.Sprintf("%s=%x;", g.Key, g.Values[0].(float64))
		}
		return raw, sorted, out.Counters
	}

	baseRaw, baseSorted, baseCounters := run(1)
	for _, par := range []int{4, runtime.NumCPU()} {
		raw, sorted, counters := run(par)
		if sorted != baseSorted {
			t.Fatalf("parallelism %d: sorted output differs from parallelism 1", par)
		}
		if raw != baseRaw {
			t.Fatalf("parallelism %d: raw output order differs from parallelism 1", par)
		}
		if counters != baseCounters {
			t.Fatalf("parallelism %d: counters differ:\n%+v\n%+v", par, counters, baseCounters)
		}
	}
}

// TestMapOnlyOutputDeterministicOrder: map-only job output follows split
// order, not task completion order.
func TestMapOnlyOutputDeterministicOrder(t *testing.T) {
	engine := NewEngine(Config{Parallelism: 8})
	job := &Job{
		Name:   "maponly-order",
		Splits: makeSplits(200, 16),
		Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
			ctx.Emit("p", global)
			return nil
		}),
	}
	out, err := engine.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range out.Pairs {
		if p.Value.(int) != i {
			t.Fatalf("pair %d carries global index %d — map-only output not in split order", i, p.Value)
		}
	}
}

// TestOutputGroups: Groups returns ascending keys with values in pair
// order, leaving Pairs untouched.
func TestOutputGroups(t *testing.T) {
	out := &Output{Pairs: []Pair{
		{Key: "b", Value: 1}, {Key: "a", Value: 2}, {Key: "b", Value: 3}, {Key: "a", Value: 4},
	}}
	groups := out.Groups()
	if len(groups) != 2 || groups[0].Key != "a" || groups[1].Key != "b" {
		t.Fatalf("groups = %+v", groups)
	}
	if groups[0].Values[0].(int) != 2 || groups[0].Values[1].(int) != 4 {
		t.Fatalf("value order not preserved: %+v", groups[0].Values)
	}
	if groups[1].Values[0].(int) != 1 || groups[1].Values[1].(int) != 3 {
		t.Fatalf("value order not preserved: %+v", groups[1].Values)
	}
	if out.Pairs[0].Key != "b" {
		t.Fatal("Groups mutated o.Pairs")
	}
	if (&Output{}).Groups() != nil {
		t.Fatal("empty output must group to nil")
	}
}

// TestGroupedSharedBackingIsAppendSafe: Grouped's value slices share one
// backing array; appending to one key's slice must not clobber another's.
func TestGroupedSharedBackingIsAppendSafe(t *testing.T) {
	out := &Output{Pairs: []Pair{
		{Key: "a", Value: 1}, {Key: "b", Value: 2}, {Key: "a", Value: 3}, {Key: "c", Value: 4},
	}}
	g := out.Grouped()
	if len(g) != 3 || len(g["a"]) != 2 || g["a"][0].(int) != 1 || g["a"][1].(int) != 3 {
		t.Fatalf("grouped = %v", g)
	}
	_ = append(g["a"], 99)
	if g["b"][0].(int) != 2 || g["c"][0].(int) != 4 {
		t.Fatalf("append through shared backing clobbered neighbours: %v", g)
	}
}
