package mr

import (
	"bufio"
	"bytes"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// This file is the multiprocess backend's out-of-core shuffle: map workers
// spill their per-partition buckets to disk as sorted runs ("segments"),
// and reduce workers k-way merge the segments of one partition back into
// the ascending-key, split-order record stream the in-process engine
// produces from RAM. The invariants the fuzz tests pin:
//
//   - A segment's records are grouped by key in ascending key order
//     (byte-wise string order, same as the in-process idSorter), with
//     emission order preserved within each key.
//   - Merging segments in (map task, spill Seq) order yields globally
//     ascending keys, and within a key, records in exactly that segment
//     order — which is the in-process "split order, then emission order"
//     value-order contract.
//
// Segment layout (all integers uvarint unless noted):
//
//   numKeys numRecs
//   numKeys × (keyLen, keyBytes)      — ascending key order
//   numRecs × (keyIdx, tagByte, payload)
//
// keyIdx indexes the segment's key table; scalar tag payloads are 8-byte
// little-endian raw bits (the rec.num lane, so float64/int64/int round-trip
// exactly); tagAny payloads use the wire value codec.

// spillWriter accumulates the segments of one map task attempt in a single
// spill file.
type spillWriter struct {
	path string
	f    *os.File
	w    *bufio.Writer
	off  int64
	segs []segmentRef
	// midSpills counts threshold-triggered spill passes (see spillAll).
	midSpills int
	// enc reuses encoding scratch across segments.
	enc segEncoder
}

// segEncoder is the reusable scratch of encodeSegment.
type segEncoder struct {
	buf   bytes.Buffer
	keys  []string
	spans [][]rec
	sc    groupScratch
}

func newSpillWriter(path string) *spillWriter {
	return &spillWriter{path: path}
}

// spillBucket writes one partition bucket as one segment, grouping it by
// key via the same counting group the combiner path uses (groupLocal walks
// ids in ascending key order — the sorted run comes for free). Empty
// buckets write nothing.
func (sw *spillWriter) spillBucket(part, seq int, bucket []rec, tab *keyTab) error {
	if len(bucket) == 0 {
		return nil
	}
	if sw.f == nil {
		f, err := os.Create(sw.path)
		if err != nil {
			return err
		}
		sw.f = f
		sw.w = bufio.NewWriterSize(f, 256<<10)
	}
	e := &sw.enc
	e.buf.Reset()
	e.keys = e.keys[:0]
	e.spans = e.spans[:0]
	// First pass: collect the ascending-key grouping (the spans alias
	// e.sc.recs, valid until the next groupLocal call on e.sc).
	err := groupLocal(bucket, tab, &e.sc, func(id uint32, grouped []rec) error {
		e.keys = append(e.keys, tab.keys[id])
		e.spans = append(e.spans, grouped)
		return nil
	})
	if err != nil {
		return err
	}
	putUvarint(&e.buf, uint64(len(e.keys)))
	putUvarint(&e.buf, uint64(len(bucket)))
	for _, k := range e.keys {
		putUvarint(&e.buf, uint64(len(k)))
		e.buf.WriteString(k)
	}
	for ki, span := range e.spans {
		for i := range span {
			r := &span[i]
			putUvarint(&e.buf, uint64(ki))
			e.buf.WriteByte(byte(r.tag))
			if r.tag == tagAny {
				if err := appendValue(&e.buf, r.val); err != nil {
					return err
				}
			} else {
				putU64(&e.buf, r.num)
			}
		}
	}
	if _, err := sw.w.Write(e.buf.Bytes()); err != nil {
		return err
	}
	sw.segs = append(sw.segs, segmentRef{
		Path:    sw.path,
		Part:    part,
		Seq:     seq,
		Offset:  sw.off,
		Length:  int64(e.buf.Len()),
		Records: int64(len(bucket)),
		Keys:    len(e.keys),
	})
	sw.off += int64(e.buf.Len())
	return nil
}

// spillAll spills every non-empty bucket of st as one segment each (spill
// pass seq), then resets the buckets — keeping the key table, so records
// emitted after the spill keep their interned ids. mid marks a
// threshold-triggered (out-of-core) pass as opposed to the commit-time one.
func (sw *spillWriter) spillAll(st *mapState, seq int, mid bool) error {
	spilled := false
	for part := range st.buckets {
		if err := sw.spillBucket(part, seq, st.buckets[part], &st.tab); err != nil {
			return err
		}
		if len(st.buckets[part]) > 0 {
			spilled = true
			clearRecs(st.buckets[part][:cap(st.buckets[part])])
			st.buckets[part] = st.buckets[part][:0]
		}
	}
	st.bufBytes = 0
	if mid && spilled {
		sw.midSpills++
	}
	return nil
}

// finish flushes and closes the file, returning the segment manifest. A
// writer that never spilled a record removes nothing and returns nil.
func (sw *spillWriter) finish() ([]segmentRef, error) {
	if sw.f == nil {
		return nil, nil
	}
	if err := sw.w.Flush(); err != nil {
		sw.f.Close()
		return nil, err
	}
	if err := sw.f.Close(); err != nil {
		return nil, err
	}
	return sw.segs, nil
}

// abort closes and deletes the spill file after a failed attempt.
func (sw *spillWriter) abort() {
	if sw.f != nil {
		sw.f.Close()
		os.Remove(sw.path)
		sw.f = nil
	}
}

// segReader streams one segment's records in file order (ascending key,
// emission order within key). It holds the segment's key table in memory —
// bounded by distinct keys per spill pass, not records — and one buffered
// reader over the segment's byte range.
type segReader struct {
	br   *bufio.Reader
	keys []string
	// remaining records; cur/curKey hold the last next()'d record.
	n      int64
	cur    rec
	curKey string
	// ord is the segment's global merge order — its index in the
	// (map task, Seq)-sorted segment list — and the within-key tiebreak.
	ord int
}

// openSegment positions a reader over ref's byte range of ra and loads the
// key table.
func openSegment(ra io.ReaderAt, ref segmentRef, ord int) (*segReader, error) {
	br := bufio.NewReaderSize(io.NewSectionReader(ra, ref.Offset, ref.Length), 64<<10)
	numKeys, err := readWireLen(br)
	if err != nil {
		return nil, fmt.Errorf("mr: segment header: %w", err)
	}
	numRecs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("mr: segment header: %w", err)
	}
	if numRecs > uint64(maxFrame) || (numRecs == 0) != (numKeys == 0) || uint64(numKeys) > numRecs {
		return nil, fmt.Errorf("mr: segment header: %d keys / %d records implausible", numKeys, numRecs)
	}
	keys := make([]string, numKeys)
	for i := range keys {
		k, err := readWireString(br)
		if err != nil {
			return nil, fmt.Errorf("mr: segment key table: %w", err)
		}
		if i > 0 && !(keys[i-1] < k) {
			return nil, fmt.Errorf("mr: segment key table not strictly ascending at %d", i)
		}
		keys[i] = k
	}
	return &segReader{br: br, keys: keys, n: int64(numRecs), ord: ord}, nil
}

// next advances to the following record; false means the segment is
// exhausted.
func (s *segReader) next() (bool, error) {
	if s.n <= 0 {
		return false, nil
	}
	s.n--
	ki, err := readWireLen(s.br)
	if err != nil {
		return false, fmt.Errorf("mr: segment record: %w", err)
	}
	if ki >= len(s.keys) {
		return false, fmt.Errorf("mr: segment record key index %d out of range", ki)
	}
	tb, err := s.br.ReadByte()
	if err != nil {
		return false, err
	}
	tag := valueTag(tb)
	r := rec{tag: tag}
	switch tag {
	case tagF64, tagI64, tagInt:
		r.num, err = getU64(s.br)
	case tagAny:
		r.val, err = readValue(s.br)
	default:
		return false, fmt.Errorf("mr: segment record tag 0x%02x unknown", tb)
	}
	if err != nil {
		return false, err
	}
	s.cur = r
	s.curKey = s.keys[ki]
	return true, nil
}

// segHeap orders active readers by (current key, ord): the minimum is the
// next record of the merged stream.
type segHeap []*segReader

func (h segHeap) Len() int { return len(h) }
func (h segHeap) Less(i, j int) bool {
	if h[i].curKey != h[j].curKey {
		return h[i].curKey < h[j].curKey
	}
	return h[i].ord < h[j].ord
}
func (h segHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *segHeap) Push(x any) { *h = append(*h, x.(*segReader)) }
func (h *segHeap) Pop() any   { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// mergeSegments k-way merges the readers (pre-ordered by ord) and calls fn
// once per key with that key's records: keys arrive in globally ascending
// order, records within a key in (ord, file position) order — for segments
// ordered by (map task, spill Seq) that is exactly the in-process "split
// order, then emission order" delivery. batch is the reused per-key record
// buffer; the slice passed to fn is capacity-clamped and only valid during
// the call.
func mergeSegments(readers []*segReader, batch *[]rec, fn func(key string, grouped []rec) error) error {
	h := make(segHeap, 0, len(readers))
	for _, r := range readers {
		ok, err := r.next()
		if err != nil {
			return err
		}
		if ok {
			h = append(h, r)
		}
	}
	heap.Init(&h)
	for len(h) > 0 {
		key := h[0].curKey
		*batch = (*batch)[:0]
		for len(h) > 0 && h[0].curKey == key {
			r := h[0]
			*batch = append(*batch, r.cur)
			ok, err := r.next()
			if err != nil {
				return err
			}
			if ok {
				heap.Fix(&h, 0)
			} else {
				heap.Pop(&h)
			}
		}
		b := *batch
		if err := fn(key, b[:len(b):len(b)]); err != nil {
			return err
		}
	}
	return nil
}

// defaultSpillThreshold is the multiprocess map-side buffer cap when
// Config.SpillThresholdBytes is zero.
const defaultSpillThreshold = 64 << 20

// resolveSpillThreshold maps the config knob to an effective byte limit.
func resolveSpillThreshold(v int64) int64 {
	if v <= 0 {
		return defaultSpillThreshold
	}
	if v > math.MaxInt64-1 {
		return math.MaxInt64
	}
	return v
}
