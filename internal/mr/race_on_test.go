//go:build race

package mr

// raceDetectorEnabled reports whether this test binary was built with the
// race detector. The conformance matrix trims its multiprocess sweep under
// race: every spawned worker is a race-instrumented process (~0.4 s of
// startup each), and race coverage targets driver concurrency, which does
// not vary across spill thresholds — the full value matrix runs in the
// non-race suite.
const raceDetectorEnabled = true
