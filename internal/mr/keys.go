package mr

import "strconv"

// IntKeys returns the key table [prefix+"0", prefix+"1", ..., prefix+(n-1)]
// — the precomputed form of the fmt.Sprintf("%s%d", prefix, i) keys the
// pipeline's per-cluster and per-attribute jobs emit. Building the strings
// once per task (typically in a mapper's Setup) keeps per-emission key
// construction off the hot path, where the hotpath analyzer flags it.
func IntKeys(prefix string, n int) []string {
	keys := make([]string, n)
	buf := make([]byte, 0, len(prefix)+20)
	for i := range keys {
		buf = append(buf[:0], prefix...)
		buf = strconv.AppendInt(buf, int64(i), 10)
		keys[i] = string(buf)
	}
	return keys
}
