package mr

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"sync"
	"time"

	"p3cmr/internal/obs"
)

// multiprocBackend executes tasks on worker OS processes: re-exec'd copies
// of the current binary (see worker.go) fed framed task descriptions over
// pipes. Map output spills to disk as sorted runs and reduce tasks k-way
// merge them back (spill.go) — the shuffle is out-of-core, bounded by
// Config.SpillThresholdBytes of map-side RAM per worker.
//
// Scheduling stays in the driver and deliberately reuses the in-process
// machinery: the same semaphore-gated launch loops, the same
// runTaskAttempts retry loop, the same FaultPlan decision points decided
// driver-side and shipped to the worker as exact kill indices. An injected
// failure therefore kills a *real* process (the worker SIGKILLs itself
// after flushing its partial counters), yet retries, Wasted accounting,
// counters and output remain bit-identical to the in-process backend —
// which is what the cross-backend conformance suite pins.
type multiprocBackend struct{}

func (multiprocBackend) Name() string { return "multiprocess" }

// ProcStats summarizes the worker-process side of the engine's most recent
// multiprocess run: fleet size and deaths, plus out-of-core shuffle volume.
type ProcStats struct {
	// WorkersSpawned / WorkersKilled count worker processes started and
	// reaped dead mid-run (injected or real crashes). WorkerPIDs lists
	// every spawned worker's OS pid in spawn order.
	WorkersSpawned int
	WorkersKilled  int
	WorkerPIDs     []int
	// SpillFiles counts spill files of committed map attempts (files of
	// killed attempts are swept with the run directory); Segments the
	// sorted runs inside them; MidTaskSpills the threshold-triggered
	// (out-of-core) spill passes; SpilledBytes the total committed
	// segment bytes; MergedSegments the segments handed to reduce tasks.
	SpillFiles     int
	Segments       int
	MidTaskSpills  int
	SpilledBytes   int64
	MergedSegments int
	// TelemetryEvents counts worker-trace events folded into the driver's
	// span stream (0 on telemetry-off runs).
	TelemetryEvents int
}

// LastProcStats returns the ProcStats of the engine's most recent
// multiprocess Run, and whether one has completed.
func (e *Engine) LastProcStats() (ProcStats, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.lastProc == nil {
		return ProcStats{}, false
	}
	return *e.lastProc, true
}

// pointW is Engine.point with a worker attribution, for spans and events
// the multiprocess backend can pin to a worker process.
func (e *Engine) pointW(span obs.SpanID, kind obs.PointKind, name string, task, attempt int, phase TaskPhase, seconds float64, worker string) {
	//lint:allow tracenil every caller gates on e.cfg.Tracer != nil before paying for this call's arguments
	e.cfg.Tracer.Point(obs.Point{Span: span, Kind: kind, Name: name,
		Task: task, Attempt: attempt, Phase: phase.String(), Seconds: seconds, Worker: worker})
}

// workerProc is one live worker process and its two protocol pipes. A
// worker is owned by at most one task goroutine at a time (acquire /
// release), so its streams need no locking.
type workerProc struct {
	cmd  *exec.Cmd
	pid  int
	name string
	in   *os.File // control pipe, driver write end
	res  *os.File // result pipe, driver read end
	bw   *bufio.Writer
	br   *bufio.Reader
	// jobSent: this worker has received the run's job frame.
	jobSent bool
	// dead: reaped after a mid-task death; excluded from teardown shutdown.
	dead     bool
	waitOnce sync.Once
	waitErr  error
	// Clock alignment (telemetry runs only): helloAt is the driver time at
	// which the worker's post-hello TelClock frame arrived; helloMono the
	// worker-epoch seconds it carried. alignTime maps any worker timestamp
	// onto the driver clock; the residual error is the one-way pipe latency.
	helloAt   time.Time
	helloMono float64
}

// alignTime maps a worker-epoch timestamp (seconds) onto driver time.
func (w *workerProc) alignTime(s float64) time.Time {
	return w.helloAt.Add(time.Duration((s - w.helloMono) * float64(time.Second)))
}

// readClock consumes the worker's post-hello telemetry frame and records
// the clock-alignment pair. Only called on telemetry-enabled runs.
func (w *workerProc) readClock() error {
	typ, data, err := readFrame(w.br)
	at := obs.Now()
	if err != nil {
		return err
	}
	if typ != fTelemetry {
		return fmt.Errorf("frame 0x%02x after hello, want telemetry clock", typ)
	}
	var tf telemetryFrame
	if err := decodeFrame(data, &tf); err != nil {
		return err
	}
	for _, ev := range tf.Events {
		if ev.Ev == obs.TelClock {
			w.helloAt, w.helloMono = at, ev.S
			return nil
		}
	}
	return errors.New("telemetry clock frame carries no TelClock event")
}

// emitTelemetry folds one worker telemetry frame into the driver's span
// stream: begins open KindStep spans under the live attempt span (worker-
// local IDs remapped to process-unique SpanIDs — the worker's flush
// discipline guarantees a frame carries complete begin/end sets, so the
// remap table is per-frame), ends stamp Worker and outcome, points attach
// to the attempt span. Every timestamp is aligned onto the driver clock, so
// the sinks see one coherent forest.
func (p *procRun) emitTelemetry(w *workerProc, span obs.SpanID, task, attempt int, data []byte) error {
	var tf telemetryFrame
	if err := decodeFrame(data, &tf); err != nil {
		return err
	}
	tr := p.e.cfg.Tracer
	if tr == nil {
		return nil
	}
	ids := make(map[int64]obs.SpanID, 4)
	for i := range tf.Events {
		ev := &tf.Events[i]
		switch ev.Ev {
		case obs.TelBegin:
			id := obs.NewSpanID()
			ids[ev.ID] = id
			//lint:allow spanbalance replay fold: the End arrives as a later TelEnd event in the same or a later frame, and the worker's AbortOpen-before-drain discipline guarantees no begin is left dangling
			tr.Begin(obs.Start{ID: id, Parent: span, Kind: obs.KindStep,
				Name: ev.Name, Task: task, Attempt: attempt, Phase: ev.Phase,
				At: w.alignTime(ev.S)})
		case obs.TelEnd:
			id, ok := ids[ev.ID]
			if !ok {
				continue
			}
			tr.End(obs.End{ID: id, Kind: obs.KindStep, Name: ev.Name,
				Task: task, Attempt: attempt, Phase: ev.Phase,
				Outcome: obs.Outcome(ev.Outcome), Err: ev.Err,
				RealSeconds: ev.RealS, Worker: w.name, At: w.alignTime(ev.S)})
		case obs.TelPoint:
			tr.Point(obs.Point{Span: span, Kind: obs.PointKind(ev.PKind),
				Name: p.job.Name, Task: task, Attempt: attempt, Phase: ev.Phase,
				Seconds: ev.Seconds, Worker: w.name, Sample: ev.Sample,
				At: w.alignTime(ev.S)})
		}
	}
	p.mu.Lock()
	p.stats.TelemetryEvents += len(tf.Events)
	p.mu.Unlock()
	return nil
}

// wait reaps the child exactly once.
func (w *workerProc) wait() error {
	w.waitOnce.Do(func() { w.waitErr = w.cmd.Wait() })
	return w.waitErr
}

// mapResult is a committed map attempt's driver-side output: either spill
// segments (shuffling jobs) or streamed pairs (map-only jobs).
type mapResult struct {
	pairs     []Pair
	segs      []segmentRef
	midSpills int
}

// procRun is the per-Run state of the multiprocess backend: the worker
// fleet, the spill directory, and the pre-encoded job frame.
type procRun struct {
	e           *Engine
	job         *Job
	dir         string
	exe         string
	jf          jobFrame
	hasCombiner bool
	// tel enables worker telemetry (driver has a Tracer); telSample is the
	// sampler cadence shipped to workers via telemetryEnv.
	tel       bool
	telSample time.Duration

	mu    sync.Mutex
	idle  []*workerProc
	all   []*workerProc
	stats ProcStats
}

// newProcRun creates the run's spill directory and pre-encodes the job
// frame (including the wire-encoded cache, in sorted key order).
func newProcRun(rc *runContext) (*procRun, error) {
	e, job := rc.e, rc.job
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("mr: multiprocess backend: resolve executable: %w", err)
	}
	dir, err := os.MkdirTemp(e.cfg.SpillDir, "p3cmr-spill-*")
	if err != nil {
		return nil, fmt.Errorf("mr: multiprocess backend: spill dir: %w", err)
	}
	hasCombiner := job.Combiner != nil || job.TypedCombiner != nil
	telSample := e.cfg.TelemetrySample
	if telSample <= 0 {
		telSample = 250 * time.Millisecond
	}
	p := &procRun{
		e: e, job: job, dir: dir, exe: exe, hasCombiner: hasCombiner,
		tel: e.cfg.Tracer != nil, telSample: telSample,
		jf: jobFrame{
			Name:        job.Name,
			Impl:        job.Impl,
			Spec:        job.Spec,
			NumReducers: job.NumReducers,
			NB:          rc.nb,
			MapOnly:     rc.mapOnly,
			HasCombiner: hasCombiner,
			Poison:      e.cfg.DebugPoisonPools,
			SpillDir:    dir,
			SpillLimit:  resolveSpillThreshold(e.cfg.SpillThresholdBytes),
		},
	}
	if len(job.Cache) > 0 {
		keys := make([]string, 0, len(job.Cache))
		for k := range job.Cache {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var buf bytes.Buffer
		for _, k := range keys {
			buf.Reset()
			if err := appendValue(&buf, job.Cache[k]); err != nil {
				os.RemoveAll(dir)
				return nil, fmt.Errorf("mr: job %q: cache entry %q is not wire-encodable: %w", job.Name, k, err)
			}
			p.jf.CacheKeys = append(p.jf.CacheKeys, k)
			p.jf.CacheVals = append(p.jf.CacheVals, append([]byte(nil), buf.Bytes()...))
		}
	}
	return p, nil
}

// spawn starts one worker process, wiring the control pipe to its fd 3 and
// the result pipe to its fd 4, and waits for its hello frame.
func (p *procRun) spawn() (*workerProc, error) {
	ctlR, ctlW, err := os.Pipe()
	if err != nil {
		return nil, err
	}
	resR, resW, err := os.Pipe()
	if err != nil {
		ctlR.Close()
		ctlW.Close()
		return nil, err
	}
	cmd := exec.Command(p.exe)
	cmd.Env = append(os.Environ(), workerEnv+"=1")
	if p.tel {
		cmd.Env = append(cmd.Env, fmt.Sprintf("%s=%d", telemetryEnv, p.telSample.Milliseconds()))
	}
	cmd.ExtraFiles = []*os.File{ctlR, resW} // child fds 3, 4
	cmd.Stdout = io.Discard
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		ctlR.Close()
		ctlW.Close()
		resR.Close()
		resW.Close()
		return nil, fmt.Errorf("mr: spawn worker: %w", err)
	}
	// The child holds its own copies of the pipe ends now.
	ctlR.Close()
	resW.Close()
	w := &workerProc{
		cmd: cmd, in: ctlW, res: resR,
		bw: bufio.NewWriterSize(ctlW, 256<<10),
		br: bufio.NewReaderSize(resR, 256<<10),
	}
	typ, data, err := readFrame(w.br)
	if err == nil && typ != fHello {
		err = fmt.Errorf("first frame 0x%02x, want hello", typ)
	}
	var hello helloFrame
	if err == nil {
		err = decodeFrame(data, &hello)
	}
	if err == nil && p.tel {
		// Telemetry handshake: the worker follows hello with a TelClock
		// frame; pairing its worker-epoch reading with the driver receive
		// time calibrates alignTime for every later event.
		err = w.readClock()
	}
	if err != nil {
		ctlW.Close()
		resR.Close()
		cmd.Process.Kill()
		w.wait()
		return nil, fmt.Errorf("mr: worker handshake: %w (is MaybeWorkerProcess called first thing in main?)", err)
	}
	w.pid = hello.PID
	w.name = fmt.Sprintf("w%d", hello.PID)
	p.mu.Lock()
	p.all = append(p.all, w)
	p.stats.WorkersSpawned++
	p.stats.WorkerPIDs = append(p.stats.WorkerPIDs, w.pid)
	p.mu.Unlock()
	return w, nil
}

// acquire hands out an idle worker, spawning one when none is free. The
// fleet therefore sizes itself to the engine semaphore's concurrency.
func (p *procRun) acquire() (*workerProc, error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		w := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return w, nil
	}
	p.mu.Unlock()
	return p.spawn()
}

func (p *procRun) release(w *workerProc) {
	p.mu.Lock()
	p.idle = append(p.idle, w)
	p.mu.Unlock()
}

// reap collects a worker that died mid-task (injected self-kill or a real
// crash): closes its pipes and waits on the corpse so nothing is orphaned.
func (p *procRun) reap(w *workerProc) {
	w.dead = true
	w.in.Close()
	w.res.Close()
	w.wait()
	p.mu.Lock()
	p.stats.WorkersKilled++
	p.mu.Unlock()
}

// teardown shuts the fleet down — closing each live worker's control pipe
// (the worker's clean-exit signal) with a bounded grace before a hard kill
// — then sweeps the spill directory and publishes ProcStats.
func (p *procRun) teardown() {
	p.mu.Lock()
	workers := p.all
	p.all, p.idle = nil, nil
	stats := p.stats
	p.mu.Unlock()
	for _, w := range workers {
		if w.dead {
			continue
		}
		w.bw.Flush()
		w.in.Close()
		done := make(chan struct{})
		go func(w *workerProc) {
			w.wait()
			close(done)
		}(w)
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			w.cmd.Process.Kill()
			<-done
		}
		w.res.Close()
	}
	os.RemoveAll(p.dir)
	e := p.e
	e.mu.Lock()
	e.lastProc = &stats
	e.mu.Unlock()
}

// sendTask ships the job frame (once per worker) and one task frame.
func (p *procRun) sendTask(w *workerProc, typ byte, frame any) error {
	if !w.jobSent {
		if err := writeFrame(w.bw, fJob, p.jf); err != nil {
			return err
		}
		w.jobSent = true
	}
	if err := writeFrame(w.bw, typ, frame); err != nil {
		return err
	}
	return w.bw.Flush()
}

// runMapTask is the multiprocess mirror of Engine.runMapTask: the same
// retry loop, with each attempt bound to a worker process.
func (p *procRun) runMapTask(split *Split, mapOnly bool, jobSpan obs.SpanID, cancel <-chan struct{}) (mapResult, Counters, faultCharge, error) {
	var cur string
	return runTaskAttempts(p.e, p.job, PhaseMap, split.ID, jobSpan, cancel,
		func() string { return cur },
		func(attempt int, span obs.SpanID) (mapResult, Counters, float64, error) {
			w, err := p.acquire()
			if err != nil {
				return mapResult{}, Counters{}, 0, err
			}
			cur = w.name
			return p.mapAttempt(w, split, attempt, span, mapOnly)
		})
}

// mapAttempt runs one map attempt on w. Fault decisions happen here, in
// the driver, at the same plan decision points as tryMapTask — the map
// decision first, the combine decision only if the map loop would survive
// — and ship to the worker as exact kill indices, so a multiprocess run
// consumes the FaultPlan identically to an in-process one.
func (p *procRun) mapAttempt(w *workerProc, split *Split, attempt int, span obs.SpanID, mapOnly bool) (mapResult, Counters, float64, error) {
	e, job := p.e, p.job
	var straggler float64
	killAt := -1
	combineKill := false
	if e.cfg.Faults != nil {
		d := e.cfg.Faults.Decide(job.Name, PhaseMap, split.ID, attempt)
		straggler = d.StragglerSeconds
		if straggler > 0 && e.cfg.Tracer != nil {
			e.pointW(span, obs.PointStraggler, job.Name, split.ID, attempt, PhaseMap, straggler, w.name)
		}
		if d.Fail {
			killAt = failIndex(d.FailFrac, split.NumRows())
		}
		if killAt == -1 && p.hasCombiner && !mapOnly {
			dc := e.cfg.Faults.Decide(job.Name, PhaseCombine, split.ID, attempt)
			straggler += dc.StragglerSeconds
			if dc.StragglerSeconds > 0 && e.cfg.Tracer != nil {
				e.pointW(span, obs.PointStraggler, job.Name, split.ID, attempt, PhaseCombine, dc.StragglerSeconds, w.name)
			}
			combineKill = dc.Fail
		}
	}
	err := p.sendTask(w, fMapTask, mapTaskFrame{
		Task: split.ID, Attempt: attempt,
		Offset: split.Offset, Dim: split.Dim, Rows: split.Rows,
		KillAt: killAt, CombineKill: combineKill,
	})
	if err != nil {
		p.reap(w)
		return mapResult{}, Counters{}, straggler, errInjectedFailure
	}

	var res mapResult
	for {
		typ, data, err := readFrame(w.br)
		if err != nil {
			// The worker vanished without a dying frame: a real crash. Reap
			// it and retry the attempt; its counters are unknown, so the
			// charge is the retry itself, not wasted counters.
			p.reap(w)
			return mapResult{}, Counters{}, straggler, errInjectedFailure
		}
		switch typ {
		case fPairs:
			var pf pairsFrame
			if err := decodeFrame(data, &pf); err != nil {
				p.reap(w)
				return mapResult{}, Counters{}, straggler, fmt.Errorf("mr: worker %s: %w", w.name, err)
			}
			res.pairs, err = decodePairs(res.pairs, pf.Data)
			if err != nil {
				p.reap(w)
				return mapResult{}, Counters{}, straggler, fmt.Errorf("mr: worker %s: %w", w.name, err)
			}
		case fTelemetry:
			if err := p.emitTelemetry(w, span, split.ID, attempt, data); err != nil {
				p.reap(w)
				return mapResult{}, Counters{}, straggler, fmt.Errorf("mr: worker %s: %w", w.name, err)
			}
		case fMapDone:
			var df mapDoneFrame
			if err := decodeFrame(data, &df); err != nil {
				p.reap(w)
				return mapResult{}, Counters{}, straggler, fmt.Errorf("mr: worker %s: %w", w.name, err)
			}
			res.segs = df.Segments
			res.midSpills = df.MidSpills
			p.release(w)
			return res, df.Counters, straggler, nil
		case fDying:
			var df dyingFrame
			if err := decodeFrame(data, &df); err != nil {
				p.reap(w)
				return mapResult{}, Counters{}, straggler, errInjectedFailure
			}
			if e.cfg.Tracer != nil {
				phase := PhaseMap
				if combineKill {
					phase = PhaseCombine
				}
				e.pointW(span, obs.PointFault, job.Name, split.ID, attempt, phase, 0, w.name)
			}
			p.reap(w)
			return mapResult{}, df.Counters, straggler, errInjectedFailure
		case fTaskErr:
			var ef errFrame
			if err := decodeFrame(data, &ef); err != nil {
				p.reap(w)
				return mapResult{}, Counters{}, straggler, fmt.Errorf("mr: worker %s: %w", w.name, err)
			}
			p.release(w)
			return mapResult{}, Counters{}, straggler, errors.New(ef.Msg)
		default:
			p.reap(w)
			return mapResult{}, Counters{}, straggler, fmt.Errorf("mr: worker %s: unexpected frame 0x%02x", w.name, typ)
		}
	}
}

// runReduceTask mirrors Engine.runReduceTask over a worker process.
func (p *procRun) runReduceTask(taskID int, segs []segmentRef, records int64, jobSpan obs.SpanID, cancel <-chan struct{}) ([]Pair, Counters, faultCharge, error) {
	var cur string
	return runTaskAttempts(p.e, p.job, PhaseReduce, taskID, jobSpan, cancel,
		func() string { return cur },
		func(attempt int, span obs.SpanID) ([]Pair, Counters, float64, error) {
			w, err := p.acquire()
			if err != nil {
				return nil, Counters{}, 0, err
			}
			cur = w.name
			return p.reduceAttempt(w, taskID, segs, records, attempt, span)
		})
}

// reduceAttempt runs one reduce attempt on w. The kill threshold is the
// same consumed-records index tryReduceTask derives from the plan.
func (p *procRun) reduceAttempt(w *workerProc, taskID int, segs []segmentRef, records int64, attempt int, span obs.SpanID) ([]Pair, Counters, float64, error) {
	e, job := p.e, p.job
	var straggler float64
	killAt := -1
	if e.cfg.Faults != nil {
		d := e.cfg.Faults.Decide(job.Name, PhaseReduce, taskID, attempt)
		straggler = d.StragglerSeconds
		if straggler > 0 && e.cfg.Tracer != nil {
			e.pointW(span, obs.PointStraggler, job.Name, taskID, attempt, PhaseReduce, straggler, w.name)
		}
		if d.Fail {
			killAt = failIndex(d.FailFrac, int(records))
		}
	}
	err := p.sendTask(w, fReduceTask, reduceTaskFrame{
		Task: taskID, Attempt: attempt, KillAt: killAt,
		Segments: segs, TotalRecords: records,
	})
	if err != nil {
		p.reap(w)
		return nil, Counters{}, straggler, errInjectedFailure
	}

	var pairs []Pair
	for {
		typ, data, err := readFrame(w.br)
		if err != nil {
			p.reap(w)
			return nil, Counters{}, straggler, errInjectedFailure
		}
		switch typ {
		case fPairs:
			var pf pairsFrame
			if err := decodeFrame(data, &pf); err != nil {
				p.reap(w)
				return nil, Counters{}, straggler, fmt.Errorf("mr: worker %s: %w", w.name, err)
			}
			pairs, err = decodePairs(pairs, pf.Data)
			if err != nil {
				p.reap(w)
				return nil, Counters{}, straggler, fmt.Errorf("mr: worker %s: %w", w.name, err)
			}
		case fTelemetry:
			if err := p.emitTelemetry(w, span, taskID, attempt, data); err != nil {
				p.reap(w)
				return nil, Counters{}, straggler, fmt.Errorf("mr: worker %s: %w", w.name, err)
			}
		case fReduceDone:
			var df doneFrame
			if err := decodeFrame(data, &df); err != nil {
				p.reap(w)
				return nil, Counters{}, straggler, fmt.Errorf("mr: worker %s: %w", w.name, err)
			}
			p.release(w)
			return pairs, df.Counters, straggler, nil
		case fDying:
			var df dyingFrame
			if err := decodeFrame(data, &df); err != nil {
				p.reap(w)
				return nil, Counters{}, straggler, errInjectedFailure
			}
			if e.cfg.Tracer != nil {
				e.pointW(span, obs.PointFault, job.Name, taskID, attempt, PhaseReduce, 0, w.name)
			}
			p.reap(w)
			return nil, df.Counters, straggler, errInjectedFailure
		case fTaskErr:
			var ef errFrame
			if err := decodeFrame(data, &ef); err != nil {
				p.reap(w)
				return nil, Counters{}, straggler, fmt.Errorf("mr: worker %s: %w", w.name, err)
			}
			p.release(w)
			return nil, Counters{}, straggler, errors.New(ef.Msg)
		default:
			p.reap(w)
			return nil, Counters{}, straggler, fmt.Errorf("mr: worker %s: unexpected frame 0x%02x", w.name, typ)
		}
	}
}

func (multiprocBackend) execute(rc *runContext) ([]Pair, Counters, faultCharge, error) {
	e, job := rc.e, rc.job
	tr := e.cfg.Tracer
	if job.Impl == "" {
		return nil, Counters{}, faultCharge{}, fmt.Errorf(
			"mr: job %q: the multiprocess backend requires Job.Impl (a RegisterJobImpl name): function values cannot cross the process boundary", job.Name)
	}
	p, err := newProcRun(rc)
	if err != nil {
		return nil, Counters{}, faultCharge{}, err
	}
	defer p.teardown()

	// --- Map phase: same launch loop and slot scheme as in-process -------
	mapRes := make([]mapResult, len(job.Splits))
	mapCounters := make([]Counters, len(job.Splits))
	mapFaults := make([]faultCharge, len(job.Splits))
	var wg sync.WaitGroup
mapLaunch:
	for i, split := range job.Splits {
		select {
		case <-rc.cancelCh:
			break mapLaunch
		case e.sem <- struct{}{}:
		}
		wg.Add(1)
		go func(i int, split *Split) {
			defer wg.Done()
			defer func() { <-e.sem }()
			res, c, fc, err := p.runMapTask(split, rc.mapOnly, rc.jobSpan, rc.cancelCh)
			mapFaults[i] = fc
			if err != nil {
				if !errors.Is(err, errTaskCancelled) {
					rc.setErr(fmt.Errorf("mr: job %q map task %d: %w", job.Name, split.ID, err))
				}
				return
			}
			mapRes[i] = res
			mapCounters[i] = c
		}(i, split)
	}
	wg.Wait()
	if err := rc.firstErr(); err != nil {
		return nil, Counters{}, faultCharge{}, err
	}

	var counters Counters
	var fault faultCharge
	for i := range mapCounters {
		counters.Add(mapCounters[i])
		fault.add(mapFaults[i])
	}

	if rc.mapOnly {
		total := 0
		for i := range mapRes {
			total += len(mapRes[i].pairs)
		}
		outPairs := make([]Pair, 0, total)
		for i := range mapRes {
			outPairs = append(outPairs, mapRes[i].pairs...)
		}
		counters.OutputRecords = int64(len(outPairs))
		return outPairs, counters, fault, nil
	}

	// --- Shuffle: assemble each partition's segment list -----------------
	// Committed map attempts left sorted runs on disk; the "shuffle" here
	// is pure bookkeeping — ordering each partition's segments by (map
	// task, spill pass), which is the order that makes the reduce-side
	// merge reproduce the in-process value order.
	var shufSpan obs.SpanID
	var shufStart time.Time
	if tr != nil {
		shufSpan = obs.NewSpanID()
		tr.Begin(obs.Start{ID: shufSpan, Parent: rc.jobSpan, Kind: obs.KindTask,
			Name: job.Name, Task: -1, Phase: "shuffle"})
		shufStart = obs.Now()
	}
	partSegs := make([][]segmentRef, rc.numReducers)
	partRecs := make([]int64, rc.numReducers)
	for i := range mapRes {
		if len(mapRes[i].segs) > 0 {
			p.stats.SpillFiles++
		}
		p.stats.MidTaskSpills += mapRes[i].midSpills
		for _, s := range mapRes[i].segs {
			p.stats.Segments++
			p.stats.SpilledBytes += s.Length
			partSegs[s.Part] = append(partSegs[s.Part], s)
			partRecs[s.Part] += s.Records
		}
	}
	if tr != nil {
		tr.End(obs.End{ID: shufSpan, Kind: obs.KindTask, Name: job.Name,
			Task: -1, Phase: "shuffle", Outcome: obs.OutcomeOK,
			RealSeconds: obs.Since(shufStart).Seconds(),
			Counters:    Counters{ShuffledBytes: counters.ShuffledBytes}})
	}

	// --- Reduce phase ----------------------------------------------------
	redOuts := make([][]Pair, rc.numReducers)
	redCounters := make([]Counters, rc.numReducers)
	redFaults := make([]faultCharge, rc.numReducers)
	var rwg sync.WaitGroup
redLaunch:
	for r := 0; r < rc.numReducers; r++ {
		if partRecs[r] == 0 {
			continue
		}
		p.stats.MergedSegments += len(partSegs[r])
		select {
		case <-rc.cancelCh:
			break redLaunch
		case e.sem <- struct{}{}:
		}
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			defer func() { <-e.sem }()
			pout, c, fc, err := p.runReduceTask(r, partSegs[r], partRecs[r], rc.jobSpan, rc.cancelCh)
			redFaults[r] = fc
			if err != nil {
				if !errors.Is(err, errTaskCancelled) {
					rc.setErr(fmt.Errorf("mr: job %q reduce task %d: %w", job.Name, r, err))
				}
				return
			}
			redOuts[r] = pout
			redCounters[r] = c
		}(r)
	}
	rwg.Wait()
	if err := rc.firstErr(); err != nil {
		return nil, Counters{}, faultCharge{}, err
	}
	total := 0
	for r := range redOuts {
		counters.Add(redCounters[r])
		fault.add(redFaults[r])
		total += len(redOuts[r])
	}
	outPairs := make([]Pair, 0, total)
	for r := range redOuts {
		outPairs = append(outPairs, redOuts[r]...)
	}
	counters.OutputRecords = int64(len(outPairs))
	return outPairs, counters, fault, nil
}
