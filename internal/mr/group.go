package mr

import "sort"

// Group is one reduce key with all of its values, in the deterministic
// order the engine's shuffle delivers them (map-task order, then emission
// order within a task).
type Group struct {
	Key    string
	Values []any
}

// groupSorted walks pairs grouped by key in ascending key order — the
// Hadoop reduce contract — calling fn once per key. It is a stable counting
// group: one pass counts values per key, only the *unique* keys are sorted,
// and a final placement pass scatters values into a single shared backing
// array. Shuffle buffers typically carry few distinct keys over many pairs,
// so sorting keys instead of pairs avoids the duplicate-heavy rotations a
// stable pair sort would pay, and the one backing array replaces the
// per-key append growth chains of a map[string][]any.
//
// pairs is not modified. Value order within a key follows pair order, so a
// deterministic input order yields a deterministic value sequence. Each
// callback's slice is capacity-clamped (vals[lo:hi:hi]) so an appending
// callback cannot clobber its neighbour's values.
func groupSorted(pairs []Pair, fn func(key string, values []any) error) error {
	if len(pairs) == 0 {
		return nil
	}
	counts := make(map[string]int, 64)
	for i := range pairs {
		counts[pairs[i].Key]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// Convert counts into running placement offsets (in sorted key order),
	// remembering each key's run length in sizes.
	sizes := make([]int, len(keys))
	off := 0
	for i, k := range keys {
		sizes[i] = counts[k]
		counts[k] = off
		off += sizes[i]
	}
	vals := make([]any, len(pairs))
	for i := range pairs {
		o := counts[pairs[i].Key]
		vals[o] = pairs[i].Value
		counts[pairs[i].Key] = o + 1
	}

	lo := 0
	for i, k := range keys {
		hi := lo + sizes[i]
		if err := fn(k, vals[lo:hi:hi]); err != nil {
			return err
		}
		lo = hi
	}
	return nil
}
