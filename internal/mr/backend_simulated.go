package mr

import (
	"errors"
	"fmt"
	"time"

	"p3cmr/internal/obs"
)

// simulatedBackend is the sequential reference backend behind the
// cost-model experiments (the paper's Fig. 7 runtime-shape study): tasks
// execute one at a time on the calling goroutine, in split/partition order,
// with no semaphore, no pooling and no concurrency at all. Buffers are
// freshly allocated per job, so a miscompare against this backend isolates
// pooling/concurrency bugs from logic bugs — it is the differential-testing
// oracle of the conformance suite as much as the cost-model vehicle.
//
// It shares the attempt loop, fault decision sites and merge/group code
// with the in-process backend, so counters, retries, straggler charges and
// output are bit-identical to it by construction — the conformance suite
// pins that this stays true.
type simulatedBackend struct{}

func (simulatedBackend) Name() string { return "simulated" }

func (simulatedBackend) execute(rc *runContext) ([]Pair, Counters, faultCharge, error) {
	e, job := rc.e, rc.job
	tr := e.cfg.Tracer
	mapOnly, nb, numReducers := rc.mapOnly, rc.nb, rc.numReducers
	jobSpan, cancelCh := rc.jobSpan, rc.cancelCh

	// --- Map phase, sequential ----------------------------------------------
	mapStates := make([]*mapState, len(job.Splits))
	var counters Counters
	var fault faultCharge
	for i, split := range job.Splits {
		st := new(mapState)
		st.ready(nb)
		_, c, fc, err := runTaskAttempts(e, job, PhaseMap, split.ID, jobSpan, cancelCh, nil,
			func(attempt int, span obs.SpanID) (*mapState, Counters, float64, error) {
				ac, straggler, err := e.tryMapTask(job, split, st, mapOnly, nb, attempt, span, cancelCh)
				return st, ac, straggler, err
			})
		fault.add(fc)
		if err != nil {
			err = fmt.Errorf("mr: job %q map task %d: %w", job.Name, split.ID, err)
			rc.setErr(err)
			return nil, Counters{}, faultCharge{}, err
		}
		mapStates[i] = st
		counters.Add(c)
	}

	var outPairs []Pair
	if mapOnly {
		total := 0
		for _, st := range mapStates {
			total += len(st.buckets[0])
		}
		outPairs = make([]Pair, 0, total)
		for _, st := range mapStates {
			for i := range st.buckets[0] {
				r := &st.buckets[0][i]
				outPairs = append(outPairs, Pair{Key: st.tab.keys[r.key], Value: r.value()})
			}
		}
		counters.OutputRecords = int64(len(outPairs))
		return outPairs, counters, fault, nil
	}

	// --- Shuffle ------------------------------------------------------------
	var shufSpan obs.SpanID
	var shufStart time.Time
	if tr != nil {
		shufSpan = obs.NewSpanID()
		tr.Begin(obs.Start{ID: shufSpan, Parent: jobSpan, Kind: obs.KindTask,
			Name: job.Name, Task: -1, Phase: "shuffle"})
		shufStart = obs.Now()
	}
	sh := new(shuffleState)
	mergeShuffle(sh, mapStates, nb, numReducers)
	if tr != nil {
		tr.End(obs.End{ID: shufSpan, Kind: obs.KindTask, Name: job.Name,
			Task: -1, Phase: "shuffle", Outcome: obs.OutcomeOK,
			RealSeconds: obs.Since(shufStart).Seconds(),
			Counters:    Counters{ShuffledBytes: counters.ShuffledBytes}})
	}

	// --- Reduce phase, sequential in partition order ------------------------
	sc := new(groupScratch)
	outPairs = make([]Pair, 0)
	for r := 0; r < numReducers; r++ {
		if len(sh.runs[r]) == 0 {
			continue
		}
		run, keys := sh.runs[r], sh.runKeys[r]
		pout, c, fc, err := runTaskAttempts(e, job, PhaseReduce, r, jobSpan, cancelCh, nil,
			func(attempt int, span obs.SpanID) ([]Pair, Counters, float64, error) {
				return e.tryReduceTask(job, r, run, keys, sc, attempt, span, cancelCh)
			})
		fault.add(fc)
		if err != nil {
			if !errors.Is(err, errTaskCancelled) {
				err = fmt.Errorf("mr: job %q reduce task %d: %w", job.Name, r, err)
			}
			rc.setErr(err)
			return nil, Counters{}, faultCharge{}, err
		}
		counters.Add(c)
		outPairs = append(outPairs, pout...)
	}
	counters.OutputRecords = int64(len(outPairs))
	return outPairs, counters, fault, nil
}
