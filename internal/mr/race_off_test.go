//go:build !race

package mr

// raceDetectorEnabled reports whether this test binary was built with the
// race detector; see race_on_test.go.
const raceDetectorEnabled = false
