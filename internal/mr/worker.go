package mr

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"p3cmr/internal/obs"
)

// This file is the worker side of the multiprocess backend: a re-exec'd
// copy of the current binary (os.Executable) that speaks the wire.go frame
// protocol over two inherited pipes — fd 3 is the driver→worker control
// stream, fd 4 the worker→driver result stream. Stdout/stderr stay free, so
// stray prints from job code cannot corrupt the protocol.
//
// The worker is deliberately thin: every scheduling decision — retries,
// fault decisions, straggler charges, spans — stays in the driver. A worker
// receives fully-resolved task frames (including the exact record index at
// which to kill itself) and executes the same record loops as the
// in-process backend, emitting into the same typed plane. Injected faults
// become real process deaths: the worker flushes a dying frame carrying the
// attempt's partial counters, then SIGKILLs itself, giving the driver the
// exact Wasted accounting of an in-process injected failure plus a genuine
// process corpse for the chaos harness to audit.

// workerEnv marks a process as an mr worker. MaybeWorkerProcess checks it;
// the driver sets it on spawned children.
const workerEnv = "P3CMR_MR_WORKER"

// telemetryEnv enables worker telemetry; its value is the resource-sampler
// cadence in milliseconds. The driver sets it only when it has a Tracer, so
// a telemetry-off run never sees the variable, never constructs a tracer,
// and never writes an fTelemetry frame — the wire stream stays bit-identical
// to the pre-telemetry protocol.
const telemetryEnv = "P3CMR_MR_TELEMETRY"

// MaybeWorkerProcess turns the current process into a multiprocess-backend
// worker if it was spawned as one (workerEnv set), never returning in that
// case. Binaries that might act as multiprocess drivers — cmd/p3crun, test
// binaries via TestMain — must call it first thing in main, before flag
// parsing or any other side effects.
func MaybeWorkerProcess() {
	if os.Getenv(workerEnv) == "" {
		return
	}
	ctl := os.NewFile(3, "mr-worker-ctl")
	res := os.NewFile(4, "mr-worker-res")
	if ctl == nil || res == nil {
		fmt.Fprintln(os.Stderr, "mr worker: control fds 3/4 not inherited")
		os.Exit(2)
	}
	if err := runWorker(ctl, res); err != nil {
		fmt.Fprintf(os.Stderr, "mr worker: %v\n", err)
		os.Exit(2)
	}
	os.Exit(0)
}

// workerState is one worker process's protocol loop state.
type workerState struct {
	br *bufio.Reader
	bw *bufio.Writer
	// job is the materialized current job (registry funcs + decoded cache);
	// jobErr defers an impl-resolution failure to the first task frame, so
	// it surfaces as a task error instead of a dead worker.
	job    *Job
	jobErr error
	nb     int
	mapOnly     bool
	hasCombiner bool
	spillDir    string
	spillLimit  int64
	// spillMid enables threshold-triggered mid-task spills. Combiner jobs
	// keep their buckets whole (the combiner must see every value of a key
	// to produce the same post-combine records and ShuffledBytes as the
	// in-process engine), so they spill only at commit.
	spillMid bool
	// pools recycles map states across tasks, mirroring the engine pools —
	// including poison-on-return when the driver forwards DebugPoisonPools.
	pools *enginePools
	// batch is the reduce merge's reused per-key buffer.
	batch []rec
	// tel is the in-worker tracer (nil when the driver did not enable
	// telemetry — every use is nil-safe); telSample is the sampler cadence.
	tel       *obs.WorkerTelemetry
	telSample time.Duration
	// queued mirrors bw.Buffered() after each frame write: the pipe
	// backpressure proxy the sampler goroutine reads. Only the protocol
	// goroutine touches bw itself.
	queued atomic.Int64
}

// runWorker drives the frame loop until shutdown (or driver EOF).
func runWorker(ctl io.Reader, res io.Writer) error {
	w := &workerState{
		br: bufio.NewReaderSize(ctl, 256<<10),
		bw: bufio.NewWriterSize(res, 256<<10),
	}
	if v := os.Getenv(telemetryEnv); v != "" {
		w.tel = obs.NewWorkerTelemetry()
		w.telSample = 250 * time.Millisecond
		if ms, err := strconv.Atoi(v); err == nil && ms > 0 {
			w.telSample = time.Duration(ms) * time.Millisecond
		}
		defer w.tel.StopSampler()
	}
	if err := w.send(fHello, helloFrame{PID: os.Getpid()}); err != nil {
		return err
	}
	if w.tel != nil {
		// The clock frame right after hello gives the driver one
		// (worker-seconds, driver-time) pair to align every later timestamp.
		if err := w.send(fTelemetry, telemetryFrame{Events: []obs.TelemetryEvent{w.tel.Clock()}}); err != nil {
			return err
		}
	}
	for {
		typ, data, err := readFrame(w.br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				// Driver closed the control pipe: clean teardown.
				return nil
			}
			return fmt.Errorf("read control frame: %w", err)
		}
		switch typ {
		case fJob:
			err = w.setJob(data)
		case fMapTask:
			err = w.runMap(data)
		case fReduceTask:
			err = w.runReduce(data)
		case fShutdown:
			return nil
		default:
			err = fmt.Errorf("unexpected control frame 0x%02x", typ)
		}
		if err != nil {
			return err
		}
	}
}

// send writes and flushes one result frame. Errors here are protocol
// errors (driver gone): the worker exits.
func (w *workerState) send(typ byte, payload any) error {
	if err := writeFrame(w.bw, typ, payload); err != nil {
		return err
	}
	if w.tel != nil {
		w.queued.Store(int64(w.bw.Buffered()))
	}
	return w.bw.Flush()
}

// flushTelemetry writes the drained trace buffer as one fTelemetry frame,
// without flushing the pipe — callers follow up with the attempt's boundary
// frame, whose send flushes both. Flushing only at task boundaries keeps
// the frame discipline simple (the sampler never touches the pipe) and
// guarantees the driver only ever sees complete begin/end sets: a hard
// crash loses the whole unflushed buffer, never half a span.
func (w *workerState) flushTelemetry() {
	if w.tel == nil {
		return
	}
	evs := w.tel.Drain()
	if len(evs) == 0 {
		return
	}
	_ = writeFrame(w.bw, fTelemetry, telemetryFrame{Events: evs})
}

// sendTaskErr reports a real (non-retryable) task error; the worker stays
// alive for a potential next job.
func (w *workerState) sendTaskErr(err error) error {
	w.tel.AbortOpen(obs.OutcomeError, err.Error())
	w.flushTelemetry()
	return w.send(fTaskErr, errFrame{Msg: err.Error()})
}

// die flushes the attempt's partial counters and SIGKILLs this process —
// the multiprocess realization of an injected task failure. Never returns.
func (w *workerState) die(c Counters) {
	w.tel.AbortOpen(obs.OutcomeFault, "injected failure")
	w.flushTelemetry()
	_ = writeFrame(w.bw, fDying, dyingFrame{Counters: c})
	_ = w.bw.Flush()
	selfKill()
}

// selfKill delivers SIGKILL to the current process: un-trappable, no
// deferred functions, no pool returns — a genuine worker death. The spin
// loop is unreachable in practice (the kill lands inside the syscall) but
// guarantees no code past the kill point ever runs.
func selfKill() {
	if p, err := os.FindProcess(os.Getpid()); err == nil {
		_ = p.Kill()
	}
	for {
		runtime.Gosched()
	}
}

// setJob materializes a job frame: registry funcs, decoded cache, pools.
func (w *workerState) setJob(data []byte) error {
	var jf jobFrame
	if err := decodeFrame(data, &jf); err != nil {
		return fmt.Errorf("decode job frame: %w", err)
	}
	w.job, w.jobErr = nil, nil
	funcs, err := buildImpl(jf.Impl, jf.Spec)
	if err != nil {
		w.jobErr = err
		return nil
	}
	var cache map[string]any
	if len(jf.CacheKeys) > 0 {
		cache = make(map[string]any, len(jf.CacheKeys))
		for i, k := range jf.CacheKeys {
			v, err := readValue(bytes.NewReader(jf.CacheVals[i]))
			if err != nil {
				w.jobErr = fmt.Errorf("decode cache entry %q: %w", k, err)
				return nil
			}
			cache[k] = v
		}
	}
	w.job = &Job{
		Name:          jf.Name,
		Mapper:        funcs.Mapper,
		NewMapper:     funcs.NewMapper,
		Reducer:       funcs.Reducer,
		TypedReducer:  funcs.TypedReducer,
		Combiner:      funcs.Combiner,
		TypedCombiner: funcs.TypedCombiner,
		NumReducers:   jf.NumReducers,
		Cache:         cache,
	}
	w.nb = jf.NB
	w.mapOnly = jf.MapOnly
	w.hasCombiner = jf.HasCombiner
	w.spillDir = jf.SpillDir
	w.spillLimit = jf.SpillLimit
	w.spillMid = !jf.MapOnly && !jf.HasCombiner
	w.pools = newEnginePools(jf.Poison)
	// (Re)start the resource sampler against this job's spill directory. The
	// sampler writes into the telemetry buffer only; its snapshots reach the
	// driver with the next task-boundary flush.
	w.tel.StopSampler()
	w.tel.StartSampler(w.telSample, jf.SpillDir, w.queued.Load)
	return nil
}

// runMap executes one map task attempt — the worker-side mirror of
// tryMapTask, with the same record-loop kill points (before record KillAt,
// after the last record, before the combiner) and the same counter and
// ShuffledBytes accounting, plus threshold-triggered spills to disk.
func (w *workerState) runMap(data []byte) error {
	var f mapTaskFrame
	if err := decodeFrame(data, &f); err != nil {
		return fmt.Errorf("decode map task frame: %w", err)
	}
	if w.jobErr != nil {
		return w.sendTaskErr(w.jobErr)
	}
	split := &Split{ID: f.Task, Offset: f.Offset, Dim: f.Dim, Rows: f.Rows}
	st := w.pools.getMapState(w.nb)
	defer w.pools.putMapState(st)
	sw := newSpillWriter(filepath.Join(w.spillDir, fmt.Sprintf("m%d_a%d.spill", f.Task, f.Attempt)))
	fail := func(err error) error {
		sw.abort()
		return w.sendTaskErr(err)
	}

	var c Counters
	mapper := w.job.Mapper
	if w.job.NewMapper != nil {
		mapper = w.job.NewMapper()
	}
	ctx := &TaskContext{
		JobName:      w.job.Name,
		TaskID:       f.Task,
		Split:        split,
		cache:        w.job.Cache,
		ms:           st,
		counters:     &c,
		numReducers:  w.nb,
		chargeOnEmit: w.mapOnly || !w.hasCombiner,
		trackBuf:     w.spillMid,
	}
	// Telemetry steps: map-exec spans the record loop through the combiner;
	// each spill pass gets its own overlapping spill-write sibling. Open
	// steps are closed by AbortOpen on the die/sendTaskErr paths.
	exec := w.tel.StartStep("map-exec", "map")
	if err := mapper.Setup(ctx); err != nil {
		return fail(err)
	}
	n := split.NumRows()
	seq := 0
	for i := 0; i < n; i++ {
		if i == f.KillAt {
			w.die(c)
		}
		c.MapInputRecords++
		if err := mapper.Map(ctx, split.Offset+i, split.Row(i)); err != nil {
			return fail(err)
		}
		if w.spillMid && st.bufBytes >= w.spillLimit {
			sp := w.tel.StartStep("spill-write", "map")
			if err := sw.spillAll(st, seq, true); err != nil {
				return fail(err)
			}
			sp.Done()
			seq++
		}
	}
	if n == f.KillAt {
		w.die(c)
	}
	if err := mapper.Cleanup(ctx); err != nil {
		return fail(err)
	}
	if w.hasCombiner && !w.mapOnly {
		if f.CombineKill {
			w.die(c)
		}
		for r := range st.buckets {
			if err := combineBucket(w.job, st, r, &c); err != nil {
				return fail(err)
			}
		}
	}
	exec.Done()

	if w.mapOnly {
		// Map-only output returns over the wire in emission order (bucket 0
		// holds every record); nothing touches disk.
		fe := w.tel.StartStep("frame-encode", "map")
		if err := w.sendBucketPairs(st); err != nil {
			return err
		}
		fe.Done()
		w.flushTelemetry()
		return w.send(fMapDone, mapDoneFrame{Counters: c})
	}
	sp := w.tel.StartStep("spill-write", "map")
	if err := sw.spillAll(st, seq, false); err != nil {
		return fail(err)
	}
	segs, err := sw.finish()
	if err != nil {
		return fail(err)
	}
	sp.Done()
	w.flushTelemetry()
	return w.send(fMapDone, mapDoneFrame{Counters: c, Segments: segs, MidSpills: sw.midSpills})
}

// pairsChunk bounds one fPairs frame.
const pairsChunk = 1024

// sendBucketPairs streams a map-only task's bucket 0 as pairs frames.
func (w *workerState) sendBucketPairs(st *mapState) error {
	pairs := make([]Pair, 0, pairsChunk)
	flush := func() error {
		if len(pairs) == 0 {
			return nil
		}
		data, err := encodePairs(pairs)
		if err != nil {
			return w.sendTaskErr(err)
		}
		pairs = pairs[:0]
		return w.send(fPairs, pairsFrame{Data: data})
	}
	for i := range st.buckets[0] {
		r := &st.buckets[0][i]
		pairs = append(pairs, Pair{Key: st.tab.keys[r.key], Value: r.value()})
		if len(pairs) == pairsChunk {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// sendPairs streams a reduce task's committed output.
func (w *workerState) sendPairs(out []Pair) error {
	for len(out) > 0 {
		n := pairsChunk
		if n > len(out) {
			n = len(out)
		}
		data, err := encodePairs(out[:n])
		if err != nil {
			return w.sendTaskErr(err)
		}
		if err := w.send(fPairs, pairsFrame{Data: data}); err != nil {
			return err
		}
		out = out[n:]
	}
	return nil
}

// runReduce executes one reduce task attempt: it k-way merges the
// partition's spill segments (ordered by map task, then spill pass — the
// in-process value order) and drives the reducer with the same grouping,
// kill-threshold and counter semantics as tryReduceTask.
func (w *workerState) runReduce(data []byte) error {
	var f reduceTaskFrame
	if err := decodeFrame(data, &f); err != nil {
		return fmt.Errorf("decode reduce task frame: %w", err)
	}
	if w.jobErr != nil {
		return w.sendTaskErr(w.jobErr)
	}
	files := make(map[string]*os.File)
	defer func() {
		for _, fl := range files {
			fl.Close()
		}
	}()
	readers := make([]*segReader, 0, len(f.Segments))
	for ord, ref := range f.Segments {
		fl, ok := files[ref.Path]
		if !ok {
			var err error
			fl, err = os.Open(ref.Path)
			if err != nil {
				return w.sendTaskErr(err)
			}
			files[ref.Path] = fl
		}
		r, err := openSegment(fl, ref, ord)
		if err != nil {
			return w.sendTaskErr(err)
		}
		readers = append(readers, r)
	}

	var c Counters
	var out []Pair
	ctx := &TaskContext{
		JobName:  w.job.Name,
		TaskID:   f.Task,
		cache:    w.job.Cache,
		outPairs: &out,
	}
	// Boxed-compat reducers get a fresh, never-pooled backing array — the
	// rule the pool-lifecycle audit pinned: state handed to code that may
	// retain it is freshly allocated; state crossing the process boundary
	// is serialized, never shared.
	var backing []any
	if w.job.Reducer != nil {
		backing = make([]any, 0, f.TotalRecords)
	}
	consumed := 0
	merge := w.tel.StartStep("segment-merge", "reduce")
	err := mergeSegments(readers, &w.batch, func(k string, grouped []rec) error {
		if f.KillAt >= 0 && consumed >= f.KillAt {
			return errInjectedFailure
		}
		consumed += len(grouped)
		c.ReduceInputKeys++
		c.ReduceInputVals += int64(len(grouped))
		if w.job.TypedReducer != nil {
			return w.job.TypedReducer.ReduceTyped(ctx, k, Values{recs: grouped})
		}
		start := len(backing)
		for i := range grouped {
			backing = append(backing, grouped[i].value())
		}
		return w.job.Reducer.Reduce(ctx, k, backing[start:len(backing):len(backing)])
	})
	if err != nil {
		if errors.Is(err, errInjectedFailure) {
			w.die(c)
		}
		return w.sendTaskErr(err)
	}
	merge.Done()
	if f.KillAt >= 0 && consumed >= f.KillAt {
		// KillFrac ≈ 1: die after the last key, before committing output.
		w.die(c)
	}
	fe := w.tel.StartStep("frame-encode", "reduce")
	if err := w.sendPairs(out); err != nil {
		return err
	}
	fe.Done()
	w.flushTelemetry()
	return w.send(fReduceDone, doneFrame{Counters: c})
}
