package mr

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// fuzzRecs derives a deterministic record stream from fuzz bytes: each
// input byte becomes one record whose key, lane tag and payload are bit
// mixes of the byte, its position and the mix seed — covering all four
// value tags, including tagAny slices and strings.
func fuzzRecs(data []byte, mix uint64, tab *keyTab) []rec {
	bucket := make([]rec, 0, len(data))
	for i, b := range data {
		key := fmt.Sprintf("k%02x", b%37)
		id := tab.intern(key, 1)
		x := mix ^ (uint64(b) << 8) ^ uint64(i)
		r := rec{key: id}
		switch b % 5 {
		case 0:
			r.tag = tagF64
			r.num = math.Float64bits(float64(x) * 0.5)
		case 1:
			r.tag = tagI64
			r.num = uint64(int64(x) - 1000)
		case 2:
			r.tag = tagInt
			r.num = uint64(int64(b) * -7)
		case 3:
			r.tag = tagAny
			r.val = []float64{float64(b), float64(i)}
		default:
			r.tag = tagAny
			r.val = fmt.Sprintf("v%d", x%100)
		}
		bucket = append(bucket, r)
	}
	return bucket
}

// boxedStream flattens recs to comparable (key, boxed value) pairs.
func boxedStream(tab *keyTab, recs []rec) []Pair {
	out := make([]Pair, 0, len(recs))
	for i := range recs {
		out = append(out, Pair{Key: tab.keys[recs[i].key], Value: recs[i].value()})
	}
	return out
}

// FuzzSpillRoundTrip pins the spill segment codec: any record stream must
// round-trip through spillBucket → openSegment/next with (a) the segment's
// key order ascending, (b) emission order preserved within each key, and
// (c) every payload — including the interned-key table handoff — decoding
// to the identical boxed value.
func FuzzSpillRoundTrip(f *testing.F) {
	f.Add([]byte("hello spill"), uint64(3))
	f.Add([]byte{0, 1, 2, 3, 4, 250, 251, 252}, uint64(1<<40))
	f.Add([]byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, data []byte, mix uint64) {
		var tab keyTab
		bucket := fuzzRecs(data, mix, &tab)

		// Expected stream: the bucket grouped by ascending key with
		// emission order kept inside each key — groupLocal's contract.
		var sc groupScratch
		var want []Pair
		err := groupLocal(bucket, &tab, &sc, func(id uint32, grouped []rec) error {
			want = append(want, boxedStream(&tab, grouped)...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}

		path := filepath.Join(t.TempDir(), "fuzz.spill")
		sw := newSpillWriter(path)
		if err := sw.spillBucket(0, 0, bucket, &tab); err != nil {
			t.Fatal(err)
		}
		segs, err := sw.finish()
		if err != nil {
			t.Fatal(err)
		}
		if len(bucket) == 0 {
			if segs != nil {
				t.Fatalf("empty bucket produced segments %+v", segs)
			}
			return
		}
		if len(segs) != 1 || segs[0].Records != int64(len(bucket)) {
			t.Fatalf("segment manifest %+v, want 1 segment with %d records", segs, len(bucket))
		}
		fl, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer fl.Close()
		sr, err := openSegment(fl, segs[0], 0)
		if err != nil {
			t.Fatal(err)
		}
		var got []Pair
		prevKey := ""
		for {
			ok, err := sr.next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if len(got) > 0 && sr.curKey < prevKey {
				t.Fatalf("segment keys not ascending: %q after %q", sr.curKey, prevKey)
			}
			prevKey = sr.curKey
			got = append(got, Pair{Key: sr.curKey, Value: sr.cur.value()})
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, want)
		}
	})
}

// FuzzKWayMergeOrder pins the merge contract out-of-core correctness rests
// on: merging any set of sorted runs yields globally ascending keys, and
// within one key, records in run order (ord) with file order preserved
// inside each run — the "split order, then emission order" value rule.
// Each record's int64 payload encodes its (run, position) provenance, so
// order violations are directly visible in the payload stream.
func FuzzKWayMergeOrder(f *testing.F) {
	f.Add([]byte("merge me"), uint8(3))
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}, uint8(1))
	f.Add([]byte{42}, uint8(200))
	f.Fuzz(func(t *testing.T, data []byte, runsN uint8) {
		k := int(runsN%8) + 1
		var tab keyTab
		type provRec struct {
			key  string
			prov int64
		}
		// Slice data into k runs; record (run, pos) provenance per record.
		runs := make([][]rec, k)
		expected := make(map[string][]int64) // key → provenance in expected order
		var allKeys []string
		seen := map[string]bool{}
		perRun := make([][]provRec, k)
		for i, b := range data {
			run := i % k
			key := fmt.Sprintf("k%02x", b%29)
			prov := int64(run)<<32 | int64(len(runs[run]))
			id := tab.intern(key, 1)
			runs[run] = append(runs[run], rec{key: id, tag: tagI64, num: uint64(prov)})
			perRun[run] = append(perRun[run], provRec{key: key, prov: prov})
			if !seen[key] {
				seen[key] = true
				allKeys = append(allKeys, key)
			}
		}
		sort.Strings(allKeys)
		// Expected value order per key: run index ascending, then position.
		for _, key := range allKeys {
			for run := 0; run < k; run++ {
				for _, pr := range perRun[run] {
					if pr.key == key {
						expected[key] = append(expected[key], pr.prov)
					}
				}
			}
		}

		path := filepath.Join(t.TempDir(), "fuzz.spill")
		sw := newSpillWriter(path)
		for run := 0; run < k; run++ {
			if err := sw.spillBucket(0, run, runs[run], &tab); err != nil {
				t.Fatal(err)
			}
		}
		segs, err := sw.finish()
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			return
		}
		fl, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer fl.Close()
		readers := make([]*segReader, 0, len(segs))
		for ord, ref := range segs {
			sr, err := openSegment(fl, ref, ord)
			if err != nil {
				t.Fatal(err)
			}
			readers = append(readers, sr)
		}
		var batch []rec
		var gotKeys []string
		got := make(map[string][]int64)
		err = mergeSegments(readers, &batch, func(key string, grouped []rec) error {
			if n := len(gotKeys); n > 0 && !(gotKeys[n-1] < key) {
				t.Fatalf("merged keys not strictly ascending: %q after %q", key, gotKeys[n-1])
			}
			gotKeys = append(gotKeys, key)
			for i := range grouped {
				got[key] = append(got[key], int64(grouped[i].num))
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotKeys, allKeys) {
			t.Fatalf("merged key set %v, want %v", gotKeys, allKeys)
		}
		for _, key := range allKeys {
			if !reflect.DeepEqual(got[key], expected[key]) {
				t.Fatalf("key %q: value order %v, want %v (run<<32|pos)", key, got[key], expected[key])
			}
		}
	})
}
