package mr

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// chaosJob builds the reference job for engine-level chaos runs: a
// wordcount-shaped map/combine/reduce over sequential data with enough keys
// to spread across reducers. Retry-safe by construction (stateless mapper,
// non-mutating combiner/reducer).
func chaosJob(n, numSplits, numReducers int) *Job {
	return &Job{
		Name:   "chaos-wordcount",
		Splits: makeSplits(n, numSplits),
		Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
			ctx.Emit(fmt.Sprintf("k%02d", int(row[0])%17), int64(1))
			ctx.Emit("total", int64(1))
			return nil
		}),
		Combiner: CombinerFunc(func(key string, values []any) ([]any, error) {
			var s int64
			for _, v := range values {
				s += v.(int64)
			}
			return []any{s}, nil
		}),
		Reducer: ReducerFunc(func(ctx *TaskContext, key string, values []any) error {
			var s int64
			for _, v := range values {
				s += v.(int64)
			}
			ctx.Emit(key, s)
			return nil
		}),
		NumReducers: numReducers,
	}
}

// chaosTypedJob is chaosJob on the typed plane: same keys and counts, with
// int64 values riding the unboxed lanes through a typed combiner and typed
// reducer. It must produce bit-identical output and counters to chaosJob
// (same job name, so fault plans inject the identical failure schedule).
func chaosTypedJob(n, numSplits, numReducers int) *Job {
	return &Job{
		Name:   "chaos-wordcount",
		Splits: makeSplits(n, numSplits),
		Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
			ctx.EmitI64(fmt.Sprintf("k%02d", int(row[0])%17), 1)
			ctx.EmitI64("total", 1)
			return nil
		}),
		TypedCombiner: TypedCombinerFunc(func(key string, values Values, out *CombineEmit) error {
			var s int64
			for i := 0; i < values.Len(); i++ {
				s += values.Int64(i)
			}
			out.EmitI64(s)
			return nil
		}),
		TypedReducer: TypedReducerFunc(func(ctx *TaskContext, key string, values Values) error {
			var s int64
			for i := 0; i < values.Len(); i++ {
				s += values.Int64(i)
			}
			ctx.EmitI64(key, s)
			return nil
		}),
		NumReducers: numReducers,
	}
}

// normalized strips the retry count, which legitimately differs between a
// faulty and a fault-free run; every other counter must be bit-identical.
func normalized(c Counters) Counters {
	c.TaskRetries = 0
	return c
}

// TestChaosJobBitIdenticalAcrossPlans is the engine-level chaos oracle: for
// a sweep of fault plans (map-only, combine-only, reduce-only, mixed with
// stragglers) × parallelism levels, job output pairs and all data counters
// must be bit-identical to the fault-free baseline — PR 1's determinism
// guarantee extended over the whole fault model.
func TestChaosJobBitIdenticalAcrossPlans(t *testing.T) {
	const n, numSplits, numReducers = 2000, 9, 4
	baselineOut, err := NewEngine(Config{Parallelism: 4}).Run(chaosJob(n, numSplits, numReducers))
	if err != nil {
		t.Fatal(err)
	}
	plans := []struct {
		name string
		plan FaultPlan
	}{
		{"map-only", RateFaultPlan{MapRate: 0.5, Seed: 7}},
		{"combine-only", RateFaultPlan{CombineRate: 0.5, Seed: 9}},
		{"reduce-only", RateFaultPlan{ReduceRate: 0.5, Seed: 11}},
		{"mixed-stragglers", RateFaultPlan{MapRate: 0.3, CombineRate: 0.2, ReduceRate: 0.3,
			StragglerRate: 0.5, StragglerSeconds: 3, Seed: 13}},
	}
	var totalRetries int64
	for _, pc := range plans {
		for _, par := range []int{1, 2, 8} {
			name := fmt.Sprintf("%s/par=%d", pc.name, par)
			engine := NewEngine(Config{Parallelism: par, Faults: pc.plan, MaxAttempts: 12})
			out, err := engine.Run(chaosJob(n, numSplits, numReducers))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !reflect.DeepEqual(out.Pairs, baselineOut.Pairs) {
				t.Errorf("%s: output pairs differ from fault-free baseline", name)
			}
			if got, want := normalized(out.Counters), normalized(baselineOut.Counters); got != want {
				t.Errorf("%s: counters differ:\n got %+v\nwant %+v", name, got, want)
			}
			totalRetries += out.Counters.TaskRetries
		}
	}
	if totalRetries == 0 {
		t.Error("chaos sweep injected no retries — the oracle exercised nothing")
	}
}

// TestChaosPoisonedPoolsRetrySafety is the pooled-buffer retry-safety
// oracle. With DebugPoisonPools on, every buffer returned to an engine pool
// is overwritten with sentinel garbage (poisoned key table entries, records
// with key ^uint32(0) and value bits 0x7ff0dead7ff0dead) instead of being
// cleared — so an attempt that reads a buffer it no longer owns, or a pool
// return that races a live retry, corrupts output visibly rather than
// passing by luck on zeroed memory. Back-to-back jobs on one engine under an
// aggressive fault plan at parallelism {1,8}, boxed and typed, must stay
// bit-identical to the clean un-poisoned baseline, and no poison sentinel
// may ever surface in job output.
func TestChaosPoisonedPoolsRetrySafety(t *testing.T) {
	const n, numSplits, numReducers = 2000, 9, 4
	baseline, err := NewEngine(Config{Parallelism: 4}).Run(chaosJob(n, numSplits, numReducers))
	if err != nil {
		t.Fatal(err)
	}
	plan := RateFaultPlan{MapRate: 0.4, CombineRate: 0.3, ReduceRate: 0.4, Seed: 21}
	jobs := []struct {
		name string
		mk   func() *Job
	}{
		{"boxed", func() *Job { return chaosJob(n, numSplits, numReducers) }},
		{"typed", func() *Job { return chaosTypedJob(n, numSplits, numReducers) }},
	}
	for _, par := range []int{1, 8} {
		for _, jc := range jobs {
			name := fmt.Sprintf("%s/par=%d", jc.name, par)
			// One engine across rounds: round 2+ consumes buffers round 1
			// poisoned at return time.
			engine := NewEngine(Config{Parallelism: par, Faults: plan, MaxAttempts: 12, DebugPoisonPools: true})
			var retries int64
			for round := 0; round < 3; round++ {
				out, err := engine.Run(jc.mk())
				if err != nil {
					t.Fatalf("%s round %d: %v", name, round, err)
				}
				if !reflect.DeepEqual(out.Pairs, baseline.Pairs) {
					t.Fatalf("%s round %d: output differs from clean baseline — a task read a recycled (poisoned) buffer", name, round)
				}
				if got, want := normalized(out.Counters), normalized(baseline.Counters); got != want {
					t.Errorf("%s round %d: counters differ:\n got %+v\nwant %+v", name, round, got, want)
				}
				for _, p := range out.Pairs {
					if strings.Contains(p.Key, "\x00poisoned\x00") {
						t.Fatalf("%s round %d: poisoned key sentinel surfaced in output: %q", name, round, p.Key)
					}
					if v, ok := p.Value.(int64); ok && v == 0x7ff0dead7ff0dead {
						t.Fatalf("%s round %d: poison value sentinel surfaced in output for key %q", name, round, p.Key)
					}
				}
				retries += out.Counters.TaskRetries
			}
			if retries == 0 {
				t.Errorf("%s: fault plan injected no retries — the oracle exercised nothing", name)
			}
		}
	}
}

// TestMapFaultAttemptDoesNotLeakCounters pins the retry-counter bug class:
// a map attempt that fails after emitting its pairs must not leak those
// pairs, its RecordsRead, or its ShuffledBytes into the job's final
// counters — they belong to Wasted instead.
func TestMapFaultAttemptDoesNotLeakCounters(t *testing.T) {
	job := func() *Job { return chaosJob(1000, 5, 3) }
	clean, err := NewEngine(Config{Parallelism: 4}).Run(job())
	if err != nil {
		t.Fatal(err)
	}
	// Task 2's first attempt dies after the full record loop (FailFrac 1):
	// every record was read and every pair emitted, then thrown away.
	plan := FaultPlanFunc(func(j string, phase TaskPhase, task, attempt int) FaultDecision {
		if phase == PhaseMap && task == 2 && attempt == 0 {
			return FaultDecision{Fail: true, FailFrac: 1}
		}
		return FaultDecision{}
	})
	faulty, err := NewEngine(Config{Parallelism: 4, Faults: plan}).Run(job())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := normalized(faulty.Counters), normalized(clean.Counters); got != want {
		t.Fatalf("failed attempt leaked into final counters:\n got %+v\nwant %+v", got, want)
	}
	if faulty.Counters.TaskRetries != 1 {
		t.Errorf("TaskRetries = %d, want 1", faulty.Counters.TaskRetries)
	}
	if !reflect.DeepEqual(faulty.Pairs, clean.Pairs) {
		t.Error("failed attempt leaked pairs into job output")
	}
	// The discarded attempt read task 2's whole split (200 of 1000 rows) and
	// emitted 2 pairs per row; that work must show up as Wasted.
	if faulty.Wasted.MapInputRecords != 200 {
		t.Errorf("Wasted.MapInputRecords = %d, want 200", faulty.Wasted.MapInputRecords)
	}
	if faulty.Wasted.MapOutputRecords != 400 {
		t.Errorf("Wasted.MapOutputRecords = %d, want 400", faulty.Wasted.MapOutputRecords)
	}
	if clean.Wasted != (Counters{}) {
		t.Errorf("fault-free run recorded wasted work: %+v", clean.Wasted)
	}
}

// TestReduceFaultRetry: a reduce attempt that fails MaxAttempts-1 times
// must still succeed on the final attempt with output identical to the
// fault-free run, from its immutable shuffled input.
func TestReduceFaultRetry(t *testing.T) {
	const maxAttempts = 4
	job := func() *Job { return chaosJob(1500, 6, 3) }
	clean, err := NewEngine(Config{Parallelism: 4}).Run(job())
	if err != nil {
		t.Fatal(err)
	}
	// Every reduce task fails its first MaxAttempts-1 attempts at varying
	// positions in the key loop, succeeding only on the last attempt.
	plan := FaultPlanFunc(func(j string, phase TaskPhase, task, attempt int) FaultDecision {
		if phase == PhaseReduce && attempt < maxAttempts-1 {
			return FaultDecision{Fail: true, FailFrac: float64(attempt) / float64(maxAttempts-1)}
		}
		return FaultDecision{}
	})
	faulty, err := NewEngine(Config{Parallelism: 4, Faults: plan, MaxAttempts: maxAttempts}).Run(job())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(faulty.Pairs, clean.Pairs) {
		t.Error("reduce retry changed job output")
	}
	if got, want := normalized(faulty.Counters), normalized(clean.Counters); got != want {
		t.Fatalf("reduce retry leaked counters:\n got %+v\nwant %+v", got, want)
	}
	// 3 reduce tasks × (maxAttempts-1) failed attempts each.
	if want := int64(3 * (maxAttempts - 1)); faulty.Counters.TaskRetries != want {
		t.Errorf("TaskRetries = %d, want %d", faulty.Counters.TaskRetries, want)
	}
	if faulty.Wasted.ReduceInputKeys == 0 {
		t.Error("failed reduce attempts recorded no wasted reduce keys")
	}
}

// TestReduceFaultExhaustion: a reduce task whose every attempt fails must
// surface a wrapped errInjectedFailure carrying the job and task identity.
func TestReduceFaultExhaustion(t *testing.T) {
	plan := FaultPlanFunc(func(j string, phase TaskPhase, task, attempt int) FaultDecision {
		if phase == PhaseReduce {
			return FaultDecision{Fail: true, FailFrac: 0.5}
		}
		return FaultDecision{}
	})
	engine := NewEngine(Config{Parallelism: 2, Faults: plan, MaxAttempts: 3})
	_, err := engine.Run(chaosJob(500, 4, 1))
	if err == nil {
		t.Fatal("doomed reduce task must exhaust attempts")
	}
	if !errors.Is(err, errInjectedFailure) {
		t.Errorf("error does not wrap errInjectedFailure: %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, `job "chaos-wordcount"`) || !strings.Contains(msg, "reduce task 0") {
		t.Errorf("error lacks job/task identity: %q", msg)
	}
	if !strings.Contains(msg, "after 3 attempts") {
		t.Errorf("error lacks attempt count: %q", msg)
	}
}

// TestMapFaultExhaustionIdentity mirrors the reduce case on the map side.
func TestMapFaultExhaustionIdentity(t *testing.T) {
	plan := FaultPlanFunc(func(j string, phase TaskPhase, task, attempt int) FaultDecision {
		if phase == PhaseMap && task == 3 {
			return FaultDecision{Fail: true}
		}
		return FaultDecision{}
	})
	engine := NewEngine(Config{Parallelism: 2, Faults: plan, MaxAttempts: 2})
	_, err := engine.Run(chaosJob(500, 4, 2))
	if err == nil {
		t.Fatal("doomed map task must exhaust attempts")
	}
	if !errors.Is(err, errInjectedFailure) {
		t.Errorf("error does not wrap errInjectedFailure: %v", err)
	}
	if msg := err.Error(); !strings.Contains(msg, `job "chaos-wordcount"`) || !strings.Contains(msg, "map task 3") {
		t.Errorf("error lacks job/task identity: %q", msg)
	}
}

// TestChaosCancellationStopsSiblings: when one task fails permanently, the
// run's cancellation must stop sibling in-flight tasks between records
// instead of letting them run to completion on a job already doomed.
func TestChaosCancellationStopsSiblings(t *testing.T) {
	const rows = 20000
	// Task 0 dies instantly and permanently (MaxAttempts 1); task 1 crawls,
	// yielding between records so the cooperative poll can catch it.
	plan := FaultPlanFunc(func(j string, phase TaskPhase, task, attempt int) FaultDecision {
		if phase == PhaseMap && task == 0 {
			return FaultDecision{Fail: true, FailFrac: 0}
		}
		return FaultDecision{}
	})
	var processed atomic.Int64
	job := &Job{
		Name:   "doomed-siblings",
		Splits: makeSplits(rows, 2),
		Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
			if ctx.TaskID == 1 {
				processed.Add(1)
				time.Sleep(50 * time.Microsecond)
			}
			return nil
		}),
	}
	engine := NewEngine(Config{Parallelism: 2, Faults: plan, MaxAttempts: 1})
	_, err := engine.Run(job)
	if err == nil {
		t.Fatal("job with a permanently failed task must error")
	}
	if !strings.Contains(err.Error(), "map task 0") {
		t.Errorf("job error must name the failed task, got %q", err.Error())
	}
	if got := processed.Load(); got >= rows/2 {
		t.Errorf("sibling task ran to completion (%d records) despite cancellation", got)
	}
}

// TestFaultRetriesChargedInCostModel: re-executed attempts and straggler delays
// must surface as modeled runtime so Figure-7-style shape experiments see
// fault tolerance as slowdown, while counters stay exact.
func TestFaultRetriesChargedInCostModel(t *testing.T) {
	cost := DefaultCostModel()
	job := func() *Job { return chaosJob(1000, 5, 2) }
	clean, err := NewEngine(Config{Parallelism: 4, Cost: cost}).Run(job())
	if err != nil {
		t.Fatal(err)
	}

	// Straggler-only plan: every map attempt straggles by 2 simulated
	// seconds; the delta must be exactly numSplits × 2 s.
	stragglerPlan := FaultPlanFunc(func(j string, phase TaskPhase, task, attempt int) FaultDecision {
		if phase == PhaseMap {
			return FaultDecision{StragglerSeconds: 2}
		}
		return FaultDecision{}
	})
	slow, err := NewEngine(Config{Parallelism: 4, Cost: cost, Faults: stragglerPlan}).Run(job())
	if err != nil {
		t.Fatal(err)
	}
	wantDelta := 5 * 2.0
	if got := slow.SimulatedSeconds - clean.SimulatedSeconds; got < wantDelta-1e-9 || got > wantDelta+1e-9 {
		t.Errorf("straggler charge = %g simulated seconds, want %g", got, wantDelta)
	}
	if slow.SimulatedSeconds == clean.SimulatedSeconds {
		t.Error("stragglers not charged")
	}

	// Retry plan: one full map attempt is wasted; simulated time must grow
	// by exactly the modeled cost of the wasted work.
	retryPlan := FaultPlanFunc(func(j string, phase TaskPhase, task, attempt int) FaultDecision {
		if phase == PhaseMap && task == 1 && attempt == 0 {
			return FaultDecision{Fail: true, FailFrac: 1}
		}
		return FaultDecision{}
	})
	retried, err := NewEngine(Config{Parallelism: 4, Cost: cost, Faults: retryPlan}).Run(job())
	if err != nil {
		t.Fatal(err)
	}
	if retried.SimulatedSeconds <= clean.SimulatedSeconds {
		t.Errorf("retried run modeled at %g s, not above fault-free %g s",
			retried.SimulatedSeconds, clean.SimulatedSeconds)
	}
	// The wasted charge follows the same per-record/per-byte rates as
	// committed work (mapPar = 5 splits < 112 slots).
	w := retried.Wasted
	wantWaste := cost.SecondsPerMapRecord*float64(w.MapInputRecords)/5 +
		cost.SecondsPerShuffleByte*float64(w.ShuffledBytes) +
		cost.SecondsPerReduceValue*float64(w.ReduceInputVals)/2
	if got := retried.SimulatedSeconds - clean.SimulatedSeconds; got < wantWaste-1e-9 || got > wantWaste+1e-9 {
		t.Errorf("retry charge = %g simulated seconds, want %g", got, wantWaste)
	}
	if got, want := normalized(retried.Counters), normalized(clean.Counters); got != want {
		t.Errorf("cost-model run leaked wasted counters:\n got %+v\nwant %+v", got, want)
	}
}

// TestFaultTotalsSeparateWastedWork: engine-lifetime accounting keeps
// committed and wasted counters apart.
func TestFaultTotalsSeparateWastedWork(t *testing.T) {
	cleanEngine := NewEngine(Config{Parallelism: 2})
	if _, err := cleanEngine.Run(chaosJob(600, 3, 2)); err != nil {
		t.Fatal(err)
	}
	faultyEngine := NewEngine(Config{Parallelism: 2, Faults: UniformFaults(0.4, 3), MaxAttempts: 12})
	if _, err := faultyEngine.Run(chaosJob(600, 3, 2)); err != nil {
		t.Fatal(err)
	}
	if got, want := normalized(faultyEngine.TotalCounters()), normalized(cleanEngine.TotalCounters()); got != want {
		t.Errorf("TotalCounters not exact under faults:\n got %+v\nwant %+v", got, want)
	}
	if faultyEngine.TotalWasted() == (Counters{}) {
		t.Error("TotalWasted empty despite 40% fault rate")
	}
	if cleanEngine.TotalWasted() != (Counters{}) {
		t.Error("fault-free engine accumulated wasted work")
	}
	faultyEngine.ResetAccounting()
	if faultyEngine.TotalWasted() != (Counters{}) {
		t.Error("ResetAccounting kept wasted totals")
	}
}

// TestFaultPlanDeterminism: a RateFaultPlan must be a pure function of its
// identity tuple — same decision on every call, different streams for
// different jobs (the old FailureSeed xor-folding correlated all jobs).
func TestFaultPlanDeterminism(t *testing.T) {
	plan := RateFaultPlan{MapRate: 0.5, ReduceRate: 0.5, StragglerRate: 0.5, StragglerSeconds: 1, Seed: 42}
	for task := 0; task < 20; task++ {
		for attempt := 0; attempt < 3; attempt++ {
			a := plan.Decide("jobA", PhaseMap, task, attempt)
			b := plan.Decide("jobA", PhaseMap, task, attempt)
			if a != b {
				t.Fatalf("Decide not deterministic for task %d attempt %d: %+v vs %+v", task, attempt, a, b)
			}
		}
	}
	// Across 64 tasks, at least one decision must differ between two job
	// names, two phases, and two seeds — otherwise streams are correlated.
	differs := func(f, g func(task int) FaultDecision) bool {
		for task := 0; task < 64; task++ {
			if f(task) != g(task) {
				return true
			}
		}
		return false
	}
	if !differs(
		func(task int) FaultDecision { return plan.Decide("jobA", PhaseMap, task, 0) },
		func(task int) FaultDecision { return plan.Decide("jobB", PhaseMap, task, 0) }) {
		t.Error("fault stream identical across job names")
	}
	if !differs(
		func(task int) FaultDecision { return plan.Decide("jobA", PhaseMap, task, 0) },
		func(task int) FaultDecision { return plan.Decide("jobA", PhaseReduce, task, 0) }) {
		t.Error("fault stream identical across phases")
	}
	other := plan
	other.Seed = 43
	if !differs(
		func(task int) FaultDecision { return plan.Decide("jobA", PhaseMap, task, 0) },
		func(task int) FaultDecision { return other.Decide("jobA", PhaseMap, task, 0) }) {
		t.Error("fault stream identical across seeds")
	}
}

// TestTaskPhaseString pins the phase names used in DESIGN.md §3c.
func TestTaskPhaseString(t *testing.T) {
	for phase, want := range map[TaskPhase]string{
		PhaseMap: "map", PhaseCombine: "combine", PhaseReduce: "reduce", TaskPhase(99): "unknown",
	} {
		if got := phase.String(); got != want {
			t.Errorf("TaskPhase(%d).String() = %q, want %q", int(phase), got, want)
		}
	}
}
