package mr

import (
	"fmt"

	"p3cmr/internal/obs"
)

// Backend is the execution seam under Engine.Run: everything between job
// validation and output accounting — running map tasks, shuffling, running
// reduce tasks — is delegated to a Backend, while the Engine keeps the
// pieces that define the job contract (validation, the job span, retry
// budgets, fault plans, cost accounting, metrics).
//
// All backends honor the same determinism contract, pinned by the
// conformance suite (backend_conformance_test.go): for a fixed Job, fault
// plan and reducer count, the output pairs, counters, Wasted and
// ShuffledBytes are bit-identical across backends, parallelism and spill
// thresholds.
//
// The interface is sealed (its method is unexported): backends need the
// engine's internal record plane, so third-party implementations are not
// supported. Select one by name via Config.Backend.
type Backend interface {
	// Name returns the backend's registry name.
	Name() string
	// execute runs the job's map→shuffle→reduce core and returns the output
	// pairs, the accumulated committed counters, the fault charge (wasted
	// attempt counters + straggler seconds), and the first permanent error.
	execute(rc *runContext) ([]Pair, Counters, faultCharge, error)
}

// BackendNames lists the selectable backends in Config.Backend order of
// preference: inprocess (default), multiprocess, simulated.
func BackendNames() []string { return []string{"inprocess", "multiprocess", "simulated"} }

// pickBackend resolves a Config.Backend name. "" selects the in-process
// backend.
func pickBackend(name string) (Backend, error) {
	switch name {
	case "", "inprocess":
		return inprocessBackend{}, nil
	case "multiprocess":
		return multiprocBackend{}, nil
	case "simulated":
		return simulatedBackend{}, nil
	default:
		return nil, fmt.Errorf("mr: unknown backend %q (have %v)", name, BackendNames())
	}
}

// runContext carries one Run's resolved parameters and cancellation
// machinery across the backend seam. It lives for exactly one Engine.Run
// call.
type runContext struct {
	e   *Engine
	job *Job
	// mapOnly is true when the job has no reducer; nb is the number of
	// shuffle buckets (1 for map-only jobs, numReducers otherwise).
	mapOnly     bool
	nb          int
	numReducers int
	// jobSpan is the enclosing job span (zero when tracing is off).
	jobSpan obs.SpanID
	// cancelCh closes on the first permanent task failure; setErr records
	// that failure (first writer wins) and closes cancelCh. firstErr reads
	// the recorded error after a phase barrier.
	cancelCh chan struct{}
	setErr   func(error)
	firstErr func() error
}
