// Package mr is a from-scratch, in-process MapReduce engine with Hadoop-like
// semantics: input splits, record-at-a-time mappers with setup/cleanup
// hooks, an optional combiner, hash partitioning, per-key grouping, and
// reducers. It exists because the reproduced paper (P3C+-MR, EDBT 2014)
// expresses every phase of its clustering pipeline as MapReduce jobs; this
// engine runs those jobs with real goroutine parallelism on one machine.
//
// Beyond execution, the engine keeps the bookkeeping a cluster would:
//   - a distributed cache (read-only job-scoped side data),
//   - counters (records read/emitted, bytes shuffled),
//   - a cost model charging per-job startup overhead and per-byte I/O, so
//     that runtime *shape* experiments ("more MR jobs ⇒ slower") reproduce
//     the paper's Figure 7 without a physical cluster,
//   - deterministic fault injection across the full task lifecycle — map,
//     combine and reduce attempts can be failed mid-flight or delayed as
//     simulated stragglers by a pluggable FaultPlan — with per-task retry,
//     cooperative cancellation of sibling tasks on permanent failure, and
//     wasted-attempt cost accounting, mirroring Hadoop's error tolerance
//     (see DESIGN.md §3c for the fault-model contract).
package mr

import (
	"fmt"
	"math"

	"p3cmr/internal/obs"
)

// Split is one input partition of a vector data set. Rows holds
// len(Rows)/Dim row-major points; Offset is the global index of the first
// row, so a mapper can address points globally.
type Split struct {
	ID     int
	Offset int
	Dim    int
	Rows   []float64
}

// NumRows returns the number of points in the split.
func (s *Split) NumRows() int {
	if s.Dim == 0 {
		return 0
	}
	return len(s.Rows) / s.Dim
}

// Row returns the i-th point of the split (a view, not a copy).
func (s *Split) Row(i int) []float64 { return s.Rows[i*s.Dim : (i+1)*s.Dim] }

// Pair is an intermediate or output (key, value) record.
type Pair struct {
	Key   string
	Value any
}

// Mapper consumes one split record-at-a-time. Implementations must be
// re-runnable: a failed task attempt is retried from scratch on the same
// split, so mappers must not mutate shared state outside the TaskContext.
type Mapper interface {
	// Setup is called once before the first record of a task attempt.
	Setup(ctx *TaskContext) error
	// Map is called for every record; global is the global row index.
	Map(ctx *TaskContext, global int, row []float64) error
	// Cleanup is called after the last record (Hadoop's cleanup hook); the
	// MVB job of §5.5 uses it to emit per-split medians.
	Cleanup(ctx *TaskContext) error
}

// MapperFunc adapts a plain function to the Mapper interface.
type MapperFunc func(ctx *TaskContext, global int, row []float64) error

// Setup implements Mapper.
func (f MapperFunc) Setup(*TaskContext) error { return nil }

// Map implements Mapper.
func (f MapperFunc) Map(ctx *TaskContext, global int, row []float64) error {
	return f(ctx, global, row)
}

// Cleanup implements Mapper.
func (f MapperFunc) Cleanup(*TaskContext) error { return nil }

// Reducer aggregates all values of one key. Implementations must be
// re-runnable: a failed reduce attempt is retried from the same shuffled
// input, so reducers must treat values — and whatever the values reference,
// e.g. shipped slices — as read-only. Folding into values[0] in place would
// double-count on retry; accumulate into fresh state instead.
//
// This is the boxed-compat surface: the engine materializes each key's
// values into a fresh []any per attempt. Hot reducers should implement
// TypedReducer instead, which reads the shuffle's typed records directly.
type Reducer interface {
	Reduce(ctx *TaskContext, key string, values []any) error
}

// ReducerFunc adapts a plain function to the Reducer interface.
type ReducerFunc func(ctx *TaskContext, key string, values []any) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(ctx *TaskContext, key string, values []any) error {
	return f(ctx, key, values)
}

// TypedReducer is the typed data plane's reduce surface: values arrive as a
// Values view over the shuffle's records, so scalar payloads are read
// without interface boxing. The Reducer contract carries over unchanged —
// attempts are re-runnable, values are read-only — plus one addition: the
// view (and any slice obtained from it) must not be retained after
// ReduceTyped returns, because its backing buffers are recycled once the
// job completes.
type TypedReducer interface {
	ReduceTyped(ctx *TaskContext, key string, values Values) error
}

// TypedReducerFunc adapts a plain function to the TypedReducer interface.
type TypedReducerFunc func(ctx *TaskContext, key string, values Values) error

// ReduceTyped implements TypedReducer.
func (f TypedReducerFunc) ReduceTyped(ctx *TaskContext, key string, values Values) error {
	return f(ctx, key, values)
}

// Combiner optionally folds mapper-local values of a key before the shuffle,
// cutting shuffle volume exactly like a Hadoop combiner. This is the
// boxed-compat surface; hot combiners should implement TypedCombiner.
type Combiner interface {
	Combine(key string, values []any) ([]any, error)
}

// CombinerFunc adapts a plain function to the Combiner interface.
type CombinerFunc func(key string, values []any) ([]any, error)

// Combine implements Combiner.
func (f CombinerFunc) Combine(key string, values []any) ([]any, error) {
	return f(key, values)
}

// TypedCombiner folds one key's mapper-local values without boxing: inputs
// arrive as a Values view, outputs leave through the key-bound CombineEmit.
// Like Values everywhere, the view must not be retained after the call.
type TypedCombiner interface {
	CombineTyped(key string, values Values, out *CombineEmit) error
}

// TypedCombinerFunc adapts a plain function to the TypedCombiner interface.
type TypedCombinerFunc func(key string, values Values, out *CombineEmit) error

// CombineTyped implements TypedCombiner.
func (f TypedCombinerFunc) CombineTyped(key string, values Values, out *CombineEmit) error {
	return f(key, values, out)
}

// Job describes one MapReduce execution.
type Job struct {
	// Name labels the job in counters and error messages.
	Name string
	// Splits is the input. A nil/empty slice yields an empty job output.
	Splits []*Split
	// Mapper is required. NewMapper, when set, is called once per task
	// attempt to obtain a fresh Mapper (required for stateful mappers so
	// retries start clean); otherwise Mapper is shared across tasks and must
	// be stateless/concurrency-safe.
	Mapper    Mapper
	NewMapper func() Mapper
	// Reducer is optional. A map-only job (paper: the OD job of §5.5) leaves
	// both it and TypedReducer nil and the mapper output is the job output.
	// At most one of Reducer/TypedReducer may be set.
	Reducer Reducer
	// TypedReducer is the typed-plane alternative to Reducer: same key
	// grouping and ordering guarantees, values delivered unboxed.
	TypedReducer TypedReducer
	// Combiner is optional. At most one of Combiner/TypedCombiner may be
	// set.
	Combiner Combiner
	// TypedCombiner is the typed-plane alternative to Combiner.
	TypedCombiner TypedCombiner
	// NumReducers defaults to the engine configuration. The paper's
	// histogram and moment jobs use a single reducer.
	NumReducers int
	// Cache is the distributed cache: read-only side data shipped to every
	// task (the paper ships candidate signatures and RSSC bit masks this
	// way, §5.3).
	Cache map[string]any
	// TraceParent is the span this job's trace span nests under (a pipeline
	// phase span, typically). Zero means root; ignored without a
	// Config.Tracer.
	TraceParent obs.SpanID
	// Impl names a registered job implementation (RegisterJobImpl) and Spec
	// is its opaque parameter blob. When the mapper fields above are nil,
	// Engine.Run resolves Impl into concrete funcs — on every backend — and
	// the multiprocess backend *requires* it, because only a registered name
	// (not a closure) can be shipped to a worker process and resolved there.
	Impl string
	Spec []byte
}

// Output is the collected result of a job.
type Output struct {
	// Pairs holds reducer (or mapper, for map-only jobs) output. Order is
	// deterministic for a fixed split layout and reducer count: reducer
	// outputs concatenate in partition order (map-only: split order),
	// independent of Parallelism and task scheduling.
	Pairs []Pair
	// Counters are the accumulated job counters. Only successful task
	// attempts contribute: a failed attempt's partial counters are diverted
	// into Wasted, so Counters is bit-identical to a fault-free run.
	Counters Counters
	// Wasted aggregates the counters of failed task attempts — work the
	// modeled cluster performed and threw away. It is charged by the cost
	// model (retries cost time) but never folded into Counters.
	Wasted Counters
	// SimulatedSeconds is the modeled wall-clock cost of the job under the
	// engine's cost model (startup + compute + shuffle I/O + re-executed
	// attempts + injected straggler delays).
	SimulatedSeconds float64
}

// Grouped returns the output pairs grouped by key. All value slices share
// one backing array sized in a first counting pass, so the whole grouping
// costs three allocations instead of one growth chain per key; each key's
// slice is capacity-clamped so appending to it cannot clobber a neighbour.
func (o *Output) Grouped() map[string][]any {
	counts := make(map[string]int, len(o.Pairs))
	for _, p := range o.Pairs {
		counts[p.Key]++
	}
	backing := make([]any, len(o.Pairs))
	next := 0
	g := make(map[string][]any, len(counts))
	for _, p := range o.Pairs {
		s, ok := g[p.Key]
		if !ok {
			n := counts[p.Key]
			s = backing[next : next : next+n]
			next += n
		}
		g[p.Key] = append(s, p.Value)
	}
	return g
}

// Groups returns the output grouped by key in ascending key order, via the
// engine's stable counting group — no per-key map[string][]any growth
// chains. o.Pairs is left unmodified; value order within a key is
// preserved.
func (o *Output) Groups() []Group {
	if len(o.Pairs) == 0 {
		return nil
	}
	groups := make([]Group, 0, 8)
	groupSorted(o.Pairs, func(k string, vs []any) error {
		groups = append(groups, Group{Key: k, Values: vs})
		return nil
	})
	return groups
}

// Single returns the value of the given key and ok=false when absent or
// duplicated.
func (o *Output) Single(key string) (any, bool) {
	var v any
	n := 0
	for _, p := range o.Pairs {
		if p.Key == key {
			v = p.Value
			n++
		}
	}
	return v, n == 1
}

// Counters accumulate job statistics. The type lives in internal/obs (so
// trace span events can embed counter deltas without an import cycle);
// this alias keeps `mr.Counters` the engine-facing name.
type Counters = obs.Counters

// TaskContext is handed to every task attempt. The Emit family routes a
// (key, value) record into the shuffle (for mappers) or into the job output
// (for reducers). EmitF64/EmitI64/EmitInt — and the generic Emit function,
// which dispatches to them — carry scalar payloads through the shuffle
// without boxing them into `any`; the Emit method is the boxed-compat lane.
type TaskContext struct {
	// JobName and TaskID identify the attempt.
	JobName string
	TaskID  int
	// Split is the input split for map tasks, nil in reduce tasks.
	Split *Split
	cache map[string]any

	// Map-side emit state (nil in reduce tasks): records accumulate into
	// the attempt's per-partition typed buffers.
	ms           *mapState
	counters     *Counters
	numReducers  int
	chargeOnEmit bool
	// trackBuf makes emits maintain ms.bufBytes, the spill-threshold
	// watermark of the multiprocess backend's map workers. Off (free) for
	// in-process execution.
	trackBuf bool
	// Reduce-side output (nil in map tasks).
	outPairs *[]Pair
}

// emitRec is the single funnel of every emit lane.
func (ctx *TaskContext) emitRec(key string, tag valueTag, num uint64, val any) {
	if ctx.ms == nil {
		// Reduce side: job output is the boxed surface, so scalar lanes box
		// exactly once, here at the edge.
		r := rec{tag: tag, num: num, val: val}
		*ctx.outPairs = append(*ctx.outPairs, Pair{Key: key, Value: r.value()})
		return
	}
	c := ctx.counters
	c.MapOutputRecords++
	r := rec{tag: tag, num: num, val: val}
	if ctx.chargeOnEmit {
		c.ShuffledBytes += int64(len(key)) + r.bytes()
	}
	if ctx.trackBuf {
		ctx.ms.bufBytes += int64(len(key)) + r.bytes()
	}
	id := ctx.ms.tab.intern(key, ctx.numReducers)
	p := ctx.ms.tab.part[id]
	r.key = id
	ctx.ms.buckets[p] = append(ctx.ms.buckets[p], r)
}

// Emit outputs a (key, value) pair on the boxed-compat lane. Values the
// caller already holds as `any` ship as-is; fresh scalars passed here box
// at the call site — use EmitF64/EmitI64/EmitInt (or the generic Emit) on
// hot paths instead.
func (ctx *TaskContext) Emit(key string, value any) {
	ctx.emitRec(key, tagAny, 0, value)
}

// EmitF64 outputs a (key, float64) record with no boxing.
func (ctx *TaskContext) EmitF64(key string, value float64) {
	ctx.emitRec(key, tagF64, math.Float64bits(value), nil)
}

// EmitI64 outputs a (key, int64) record with no boxing.
func (ctx *TaskContext) EmitI64(key string, value int64) {
	ctx.emitRec(key, tagI64, uint64(value), nil)
}

// EmitInt outputs a (key, int) record with no boxing. The value round-trips
// as an int (not int64) on the boxed surface.
func (ctx *TaskContext) EmitInt(key string, value int) {
	ctx.emitRec(key, tagInt, uint64(int64(value)), nil)
}

// Emit is the generic typed emit: scalar types dispatch to the unboxed
// lanes at compile time, everything else ships on the boxed lane exactly
// like ctx.Emit. Equivalent outputs either way — the typed lanes only
// change what allocates, never what the reducer or Output.Pairs observes.
func Emit[V any](ctx *TaskContext, key string, value V) {
	switch v := any(value).(type) {
	case float64:
		ctx.EmitF64(key, v)
	case int64:
		ctx.EmitI64(key, v)
	case int:
		ctx.EmitInt(key, v)
	default:
		ctx.emitRec(key, tagAny, 0, v)
	}
}

// Values is a typed, read-only view over one key's shuffled values, in the
// engine's deterministic delivery order (map-task order, then emission
// order within a task). Scalar accessors read payloads without interface
// boxing; Value boxes on demand for mixed or structured payloads.
//
// The view borrows the engine's pooled shuffle buffers: it is valid only
// for the duration of the ReduceTyped/CombineTyped call it was passed to
// and must not be retained or written through.
type Values struct {
	recs []rec
}

// Len returns the number of values.
func (v Values) Len() int { return len(v.recs) }

// Float64 returns value i as a float64. Like values[i].(float64) on the
// boxed surface, it panics when the value is not a float64.
func (v Values) Float64(i int) float64 {
	r := &v.recs[i]
	if r.tag == tagF64 {
		return math.Float64frombits(r.num)
	}
	return r.val.(float64)
}

// Int64 returns value i as an int64, panicking on type mismatch.
func (v Values) Int64(i int) int64 {
	r := &v.recs[i]
	if r.tag == tagI64 {
		return int64(r.num)
	}
	return r.val.(int64)
}

// Int returns value i as an int, panicking on type mismatch.
func (v Values) Int(i int) int {
	r := &v.recs[i]
	if r.tag == tagInt {
		return int(int64(r.num))
	}
	return r.val.(int)
}

// Value returns value i boxed as `any` — the compat accessor for
// structured payloads (slices, structs). Scalar lanes pay their boxing
// allocation here, per call.
func (v Values) Value(i int) any { return v.recs[i].value() }

// AppendBoxed appends every value, boxed, to dst — a convenience for code
// mid-migration between the boxed and typed surfaces.
func (v Values) AppendBoxed(dst []any) []any {
	for i := range v.recs {
		dst = append(dst, v.recs[i].value())
	}
	return dst
}

// CombineEmit collects a typed combiner's output for the one key being
// combined, charging shuffle accounting exactly as the boxed combine path
// does (only post-combine records cross the modeled network).
type CombineEmit struct {
	out    *[]rec
	key    uint32
	keyLen int64
	c      *Counters
}

func (ce *CombineEmit) push(tag valueTag, num uint64, val any) {
	r := rec{key: ce.key, tag: tag, num: num, val: val}
	ce.c.CombineOutput++
	ce.c.ShuffledBytes += ce.keyLen + r.bytes()
	*ce.out = append(*ce.out, r)
}

// Emit outputs one combined value on the boxed-compat lane.
func (ce *CombineEmit) Emit(value any) { ce.push(tagAny, 0, value) }

// EmitF64 outputs one combined float64 with no boxing.
func (ce *CombineEmit) EmitF64(value float64) { ce.push(tagF64, math.Float64bits(value), nil) }

// EmitI64 outputs one combined int64 with no boxing.
func (ce *CombineEmit) EmitI64(value int64) { ce.push(tagI64, uint64(value), nil) }

// EmitInt outputs one combined int with no boxing.
func (ce *CombineEmit) EmitInt(value int) { ce.push(tagInt, uint64(int64(value)), nil) }

// CacheValue fetches a distributed-cache entry; ok is false when missing.
func (ctx *TaskContext) CacheValue(name string) (any, bool) {
	v, ok := ctx.cache[name]
	return v, ok
}

// MustCache fetches a distributed-cache entry and panics when absent —
// appropriate for entries the job cannot run without.
func (ctx *TaskContext) MustCache(name string) any {
	v, ok := ctx.cache[name]
	if !ok {
		panic(fmt.Sprintf("mr: job %q task %d: missing cache entry %q", ctx.JobName, ctx.TaskID, name))
	}
	return v
}

// FNV-1a 32-bit constants (FNV spec; must match hash/fnv so partition
// assignments never move keys across an engine upgrade).
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// partition assigns a key to one of n reduce partitions by FNV-1a hash,
// inlined over the string bytes: no hasher object and no []byte(key) copy
// per pair. Bit-identical to hash/fnv.New32a (pinned by TestPartitionMatchesFNV).
func partition(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint32(fnvOffset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= fnvPrime32
	}
	return int(h % uint32(n))
}
