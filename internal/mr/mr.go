// Package mr is a from-scratch, in-process MapReduce engine with Hadoop-like
// semantics: input splits, record-at-a-time mappers with setup/cleanup
// hooks, an optional combiner, hash partitioning, per-key grouping, and
// reducers. It exists because the reproduced paper (P3C+-MR, EDBT 2014)
// expresses every phase of its clustering pipeline as MapReduce jobs; this
// engine runs those jobs with real goroutine parallelism on one machine.
//
// Beyond execution, the engine keeps the bookkeeping a cluster would:
//   - a distributed cache (read-only job-scoped side data),
//   - counters (records read/emitted, bytes shuffled),
//   - a cost model charging per-job startup overhead and per-byte I/O, so
//     that runtime *shape* experiments ("more MR jobs ⇒ slower") reproduce
//     the paper's Figure 7 without a physical cluster,
//   - deterministic fault injection across the full task lifecycle — map,
//     combine and reduce attempts can be failed mid-flight or delayed as
//     simulated stragglers by a pluggable FaultPlan — with per-task retry,
//     cooperative cancellation of sibling tasks on permanent failure, and
//     wasted-attempt cost accounting, mirroring Hadoop's error tolerance
//     (see DESIGN.md §3c for the fault-model contract).
package mr

import (
	"fmt"

	"p3cmr/internal/obs"
)

// Split is one input partition of a vector data set. Rows holds
// len(Rows)/Dim row-major points; Offset is the global index of the first
// row, so a mapper can address points globally.
type Split struct {
	ID     int
	Offset int
	Dim    int
	Rows   []float64
}

// NumRows returns the number of points in the split.
func (s *Split) NumRows() int {
	if s.Dim == 0 {
		return 0
	}
	return len(s.Rows) / s.Dim
}

// Row returns the i-th point of the split (a view, not a copy).
func (s *Split) Row(i int) []float64 { return s.Rows[i*s.Dim : (i+1)*s.Dim] }

// Pair is an intermediate or output (key, value) record.
type Pair struct {
	Key   string
	Value any
}

// Mapper consumes one split record-at-a-time. Implementations must be
// re-runnable: a failed task attempt is retried from scratch on the same
// split, so mappers must not mutate shared state outside the TaskContext.
type Mapper interface {
	// Setup is called once before the first record of a task attempt.
	Setup(ctx *TaskContext) error
	// Map is called for every record; global is the global row index.
	Map(ctx *TaskContext, global int, row []float64) error
	// Cleanup is called after the last record (Hadoop's cleanup hook); the
	// MVB job of §5.5 uses it to emit per-split medians.
	Cleanup(ctx *TaskContext) error
}

// MapperFunc adapts a plain function to the Mapper interface.
type MapperFunc func(ctx *TaskContext, global int, row []float64) error

// Setup implements Mapper.
func (f MapperFunc) Setup(*TaskContext) error { return nil }

// Map implements Mapper.
func (f MapperFunc) Map(ctx *TaskContext, global int, row []float64) error {
	return f(ctx, global, row)
}

// Cleanup implements Mapper.
func (f MapperFunc) Cleanup(*TaskContext) error { return nil }

// Reducer aggregates all values of one key. Implementations must be
// re-runnable: a failed reduce attempt is retried from the same shuffled
// input, so reducers must treat values — and whatever the values reference,
// e.g. shipped slices — as read-only. Folding into values[0] in place would
// double-count on retry; accumulate into fresh state instead.
type Reducer interface {
	Reduce(ctx *TaskContext, key string, values []any) error
}

// ReducerFunc adapts a plain function to the Reducer interface.
type ReducerFunc func(ctx *TaskContext, key string, values []any) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(ctx *TaskContext, key string, values []any) error {
	return f(ctx, key, values)
}

// Combiner optionally folds mapper-local values of a key before the shuffle,
// cutting shuffle volume exactly like a Hadoop combiner.
type Combiner interface {
	Combine(key string, values []any) ([]any, error)
}

// CombinerFunc adapts a plain function to the Combiner interface.
type CombinerFunc func(key string, values []any) ([]any, error)

// Combine implements Combiner.
func (f CombinerFunc) Combine(key string, values []any) ([]any, error) {
	return f(key, values)
}

// Job describes one MapReduce execution.
type Job struct {
	// Name labels the job in counters and error messages.
	Name string
	// Splits is the input. A nil/empty slice yields an empty job output.
	Splits []*Split
	// Mapper is required. NewMapper, when set, is called once per task
	// attempt to obtain a fresh Mapper (required for stateful mappers so
	// retries start clean); otherwise Mapper is shared across tasks and must
	// be stateless/concurrency-safe.
	Mapper    Mapper
	NewMapper func() Mapper
	// Reducer is optional. A map-only job (paper: the OD job of §5.5) leaves
	// it nil and the mapper output is the job output.
	Reducer Reducer
	// Combiner is optional.
	Combiner Combiner
	// NumReducers defaults to the engine configuration. The paper's
	// histogram and moment jobs use a single reducer.
	NumReducers int
	// Cache is the distributed cache: read-only side data shipped to every
	// task (the paper ships candidate signatures and RSSC bit masks this
	// way, §5.3).
	Cache map[string]any
	// TraceParent is the span this job's trace span nests under (a pipeline
	// phase span, typically). Zero means root; ignored without a
	// Config.Tracer.
	TraceParent obs.SpanID
}

// Output is the collected result of a job.
type Output struct {
	// Pairs holds reducer (or mapper, for map-only jobs) output. Order is
	// deterministic for a fixed split layout and reducer count: reducer
	// outputs concatenate in partition order (map-only: split order),
	// independent of Parallelism and task scheduling.
	Pairs []Pair
	// Counters are the accumulated job counters. Only successful task
	// attempts contribute: a failed attempt's partial counters are diverted
	// into Wasted, so Counters is bit-identical to a fault-free run.
	Counters Counters
	// Wasted aggregates the counters of failed task attempts — work the
	// modeled cluster performed and threw away. It is charged by the cost
	// model (retries cost time) but never folded into Counters.
	Wasted Counters
	// SimulatedSeconds is the modeled wall-clock cost of the job under the
	// engine's cost model (startup + compute + shuffle I/O + re-executed
	// attempts + injected straggler delays).
	SimulatedSeconds float64
}

// Grouped returns the output pairs grouped by key. All value slices share
// one backing array sized in a first counting pass, so the whole grouping
// costs three allocations instead of one growth chain per key; each key's
// slice is capacity-clamped so appending to it cannot clobber a neighbour.
func (o *Output) Grouped() map[string][]any {
	counts := make(map[string]int, len(o.Pairs))
	for _, p := range o.Pairs {
		counts[p.Key]++
	}
	backing := make([]any, len(o.Pairs))
	next := 0
	g := make(map[string][]any, len(counts))
	for _, p := range o.Pairs {
		s, ok := g[p.Key]
		if !ok {
			n := counts[p.Key]
			s = backing[next : next : next+n]
			next += n
		}
		g[p.Key] = append(s, p.Value)
	}
	return g
}

// Groups returns the output grouped by key in ascending key order, via the
// engine's stable counting group — no per-key map[string][]any growth
// chains. o.Pairs is left unmodified; value order within a key is
// preserved.
func (o *Output) Groups() []Group {
	if len(o.Pairs) == 0 {
		return nil
	}
	groups := make([]Group, 0, 8)
	groupSorted(o.Pairs, func(k string, vs []any) error {
		groups = append(groups, Group{Key: k, Values: vs})
		return nil
	})
	return groups
}

// Single returns the value of the given key and ok=false when absent or
// duplicated.
func (o *Output) Single(key string) (any, bool) {
	var v any
	n := 0
	for _, p := range o.Pairs {
		if p.Key == key {
			v = p.Value
			n++
		}
	}
	return v, n == 1
}

// Counters accumulate job statistics. The type lives in internal/obs (so
// trace span events can embed counter deltas without an import cycle);
// this alias keeps `mr.Counters` the engine-facing name.
type Counters = obs.Counters

// TaskContext is handed to every task attempt. Emit routes a pair into the
// shuffle (for mappers) or into the job output (for reducers).
type TaskContext struct {
	// JobName and TaskID identify the attempt.
	JobName string
	TaskID  int
	// Split is the input split for map tasks, nil in reduce tasks.
	Split *Split
	cache map[string]any
	emit  func(Pair)
}

// Emit outputs a (key, value) pair.
func (ctx *TaskContext) Emit(key string, value any) {
	ctx.emit(Pair{Key: key, Value: value})
}

// CacheValue fetches a distributed-cache entry; ok is false when missing.
func (ctx *TaskContext) CacheValue(name string) (any, bool) {
	v, ok := ctx.cache[name]
	return v, ok
}

// MustCache fetches a distributed-cache entry and panics when absent —
// appropriate for entries the job cannot run without.
func (ctx *TaskContext) MustCache(name string) any {
	v, ok := ctx.cache[name]
	if !ok {
		panic(fmt.Sprintf("mr: job %q task %d: missing cache entry %q", ctx.JobName, ctx.TaskID, name))
	}
	return v
}

// FNV-1a 32-bit constants (FNV spec; must match hash/fnv so partition
// assignments never move keys across an engine upgrade).
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// partition assigns a key to one of n reduce partitions by FNV-1a hash,
// inlined over the string bytes: no hasher object and no []byte(key) copy
// per pair. Bit-identical to hash/fnv.New32a (pinned by TestPartitionMatchesFNV).
func partition(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint32(fnvOffset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= fnvPrime32
	}
	return int(h % uint32(n))
}
