package mr

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
)

// Config tunes an Engine.
type Config struct {
	// Parallelism caps concurrently running task goroutines. Zero means
	// runtime.NumCPU().
	Parallelism int
	// NumReducers is the default reducer count for jobs that leave theirs
	// zero. The paper's cluster ran 112 reducers; locally this only affects
	// the cost model and partitioning, not correctness.
	NumReducers int
	// MaxAttempts is the per-task retry budget (Hadoop default 4). Zero
	// means 4.
	MaxAttempts int
	// FailureRate injects a probability in [0,1) that any task attempt
	// fails before producing output, to exercise retry semantics. The
	// failures are pseudo-random but deterministic per (job, task, attempt).
	FailureRate float64
	// FailureSeed seeds the failure injection.
	FailureSeed int64
	// Cost configures the simulated cluster cost model. Zero value disables
	// simulation (SimulatedSeconds stays 0).
	Cost CostModel
}

// Engine executes Jobs. It is safe for concurrent use by multiple
// goroutines; each Run is independent, but all Runs share one task
// semaphore, so Config.Parallelism is a true engine-wide cap on in-flight
// tasks even when several jobs execute concurrently (a Hadoop cluster's
// slot count, not a per-job budget).
type Engine struct {
	cfg Config
	// sem is the engine-wide counting semaphore: every map and reduce task
	// of every concurrent Run holds one slot while executing.
	sem chan struct{}
	// TotalSimulated accumulates simulated seconds across all jobs run on
	// this engine, so a pipeline can report an end-to-end modeled runtime.
	mu             sync.Mutex
	totalSimulated float64
	jobsRun        int
	totals         Counters
	perJob         map[string]*JobStats
}

// JobStats accumulates per-job-name statistics across an engine's lifetime
// — the observability a Hadoop job tracker would provide.
type JobStats struct {
	// Runs counts executions of jobs with this name.
	Runs int
	// Counters accumulates across the runs.
	Counters Counters
	// SimulatedSeconds accumulates modeled cost.
	SimulatedSeconds float64
}

// NewEngine returns an engine with the given configuration.
func NewEngine(cfg Config) *Engine {
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.NumCPU()
	}
	if cfg.NumReducers <= 0 {
		cfg.NumReducers = 1
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	return &Engine{cfg: cfg, sem: make(chan struct{}, cfg.Parallelism)}
}

// Default returns an engine with library defaults, suitable for tests and
// examples.
func Default() *Engine { return NewEngine(Config{}) }

// Cost returns the engine's configured cost model.
func (e *Engine) Cost() CostModel { return e.cfg.Cost }

// TotalSimulatedSeconds reports the accumulated modeled runtime of all jobs
// run so far.
func (e *Engine) TotalSimulatedSeconds() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.totalSimulated
}

// JobsRun reports how many jobs this engine executed.
func (e *Engine) JobsRun() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.jobsRun
}

// TotalCounters returns counters accumulated across all jobs.
func (e *Engine) TotalCounters() Counters {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.totals
}

// ResetAccounting zeroes the accumulated simulated time, job count and
// counters.
func (e *Engine) ResetAccounting() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.totalSimulated = 0
	e.jobsRun = 0
	e.totals = Counters{}
	e.perJob = nil
}

// errInjectedFailure marks fault-injection failures so the retry loop can
// distinguish them from real mapper errors (which are not retried: a
// deterministic bug would fail every attempt anyway, and surfacing it fast
// keeps tests honest).
var errInjectedFailure = errors.New("mr: injected task failure")

// Run executes the job and collects its output.
func (e *Engine) Run(job *Job) (*Output, error) {
	if job.Mapper == nil && job.NewMapper == nil {
		return nil, fmt.Errorf("mr: job %q has no mapper", job.Name)
	}
	numReducers := job.NumReducers
	if numReducers <= 0 {
		numReducers = e.cfg.NumReducers
	}
	mapOnly := job.Reducer == nil
	nb := numReducers
	if mapOnly {
		nb = 1
	}

	// --- Map phase -----------------------------------------------------------
	// Lock-free collection: every map task owns one slot of mapOuts /
	// mapCounters (single writer per slot, synchronized by wg.Wait's
	// happens-before edge), so the shuffle needs no global mutex. Task i's
	// slot holds its output pre-partitioned into per-reducer buffers.
	mapOuts := make([][][]Pair, len(job.Splits))
	mapCounters := make([]Counters, len(job.Splits))
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	setErr := func(err error) { errOnce.Do(func() { firstErr = err }) }

	for i, split := range job.Splits {
		wg.Add(1)
		e.sem <- struct{}{}
		go func(i int, split *Split) {
			defer wg.Done()
			defer func() { <-e.sem }()
			out, c, err := e.runMapTask(job, split, mapOnly, numReducers)
			if err != nil {
				setErr(fmt.Errorf("mr: job %q map task %d: %w", job.Name, split.ID, err))
				return
			}
			mapOuts[i] = out
			mapCounters[i] = c
		}(i, split)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	var counters Counters
	for i := range mapCounters {
		counters.Add(mapCounters[i])
	}

	// Merge the per-task buffers into one contiguous run per reducer, in
	// split order: value order within a key is therefore a deterministic
	// function of the split layout, independent of Parallelism and of task
	// completion order.
	buckets := make([][]Pair, nb)
	for r := 0; r < nb; r++ {
		total := 0
		for i := range mapOuts {
			total += len(mapOuts[i][r])
		}
		if total == 0 {
			continue
		}
		merged := make([]Pair, 0, total)
		for i := range mapOuts {
			merged = append(merged, mapOuts[i][r]...)
		}
		buckets[r] = merged
	}

	var outPairs []Pair
	if mapOnly {
		outPairs = buckets[0]
		counters.OutputRecords = int64(len(outPairs))
	} else {
		// --- Shuffle + reduce phase ------------------------------------------
		// Same single-writer-per-slot scheme: reducer r writes redOuts[r],
		// and the final concatenation in reducer order keeps job output
		// deterministic without a collection mutex.
		redOuts := make([][]Pair, numReducers)
		redCounters := make([]Counters, numReducers)
		var rwg sync.WaitGroup
		for r := 0; r < numReducers; r++ {
			if len(buckets[r]) == 0 {
				continue
			}
			rwg.Add(1)
			e.sem <- struct{}{}
			go func(r int, pairs []Pair) {
				defer rwg.Done()
				defer func() { <-e.sem }()
				pout, c, err := e.runReduceTask(job, r, pairs)
				if err != nil {
					setErr(fmt.Errorf("mr: job %q reduce task %d: %w", job.Name, r, err))
					return
				}
				redOuts[r] = pout
				redCounters[r] = c
			}(r, buckets[r])
		}
		rwg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		total := 0
		for r := range redOuts {
			counters.Add(redCounters[r])
			total += len(redOuts[r])
		}
		outPairs = make([]Pair, 0, total)
		for r := range redOuts {
			outPairs = append(outPairs, redOuts[r]...)
		}
		counters.OutputRecords = int64(len(outPairs))
	}

	out := &Output{Pairs: outPairs, Counters: counters}
	out.SimulatedSeconds = e.cfg.Cost.jobSeconds(job, counters, numReducers)
	e.mu.Lock()
	e.totalSimulated += out.SimulatedSeconds
	e.jobsRun++
	e.totals.Add(counters)
	if e.perJob == nil {
		e.perJob = make(map[string]*JobStats)
	}
	js := e.perJob[job.Name]
	if js == nil {
		js = &JobStats{}
		e.perJob[job.Name] = js
	}
	js.Runs++
	js.Counters.Add(counters)
	js.SimulatedSeconds += out.SimulatedSeconds
	e.mu.Unlock()
	return out, nil
}

// JobStatsByName returns a copy of the per-job-name statistics accumulated
// so far, keyed by Job.Name.
func (e *Engine) JobStatsByName() map[string]JobStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]JobStats, len(e.perJob))
	for name, js := range e.perJob {
		out[name] = *js
	}
	return out
}

// runMapTask executes one map task with retry on injected failures.
func (e *Engine) runMapTask(job *Job, split *Split, mapOnly bool, numReducers int) ([][]Pair, Counters, error) {
	var lastErr error
	var retries int64
	for attempt := 0; attempt < e.cfg.MaxAttempts; attempt++ {
		out, c, err := e.tryMapTask(job, split, mapOnly, numReducers, attempt)
		if err == nil {
			c.TaskRetries = retries
			return out, c, nil
		}
		lastErr = err
		if !errors.Is(err, errInjectedFailure) {
			return nil, Counters{}, err
		}
		retries++
	}
	return nil, Counters{}, fmt.Errorf("task failed after %d attempts: %w", e.cfg.MaxAttempts, lastErr)
}

func (e *Engine) tryMapTask(job *Job, split *Split, mapOnly bool, numReducers, attempt int) ([][]Pair, Counters, error) {
	var c Counters
	nb := numReducers
	if mapOnly {
		nb = 1
	}
	out := make([][]Pair, nb)
	failAt := -1
	if e.cfg.FailureRate > 0 {
		rng := rand.New(rand.NewSource(e.cfg.FailureSeed ^ int64(split.ID)<<20 ^ int64(attempt)))
		if rng.Float64() < e.cfg.FailureRate {
			// Fail midway through the split to exercise partial-output discard.
			failAt = rng.Intn(split.NumRows() + 1)
		}
	}

	mapper := job.Mapper
	if job.NewMapper != nil {
		mapper = job.NewMapper()
	}
	// Shuffle accounting is folded into emit so pairs are traversed once;
	// with a combiner the charge moves to combineBucket instead, because
	// only post-combine pairs cross the (modeled) network.
	chargeOnEmit := mapOnly || job.Combiner == nil
	ctx := &TaskContext{
		JobName: job.Name,
		TaskID:  split.ID,
		Split:   split,
		cache:   job.Cache,
		emit: func(p Pair) {
			c.MapOutputRecords++
			if chargeOnEmit {
				c.ShuffledBytes += int64(len(p.Key)) + approxValueBytes(p.Value)
			}
			r := 0
			if !mapOnly {
				r = partition(p.Key, numReducers)
			}
			out[r] = append(out[r], p)
		},
	}
	if err := mapper.Setup(ctx); err != nil {
		return nil, c, err
	}
	n := split.NumRows()
	for i := 0; i < n; i++ {
		if i == failAt {
			return nil, c, errInjectedFailure
		}
		c.MapInputRecords++
		if err := mapper.Map(ctx, split.Offset+i, split.Row(i)); err != nil {
			return nil, c, err
		}
	}
	if n == failAt {
		return nil, c, errInjectedFailure
	}
	if err := mapper.Cleanup(ctx); err != nil {
		return nil, c, err
	}

	if job.Combiner != nil && !mapOnly {
		for r := range out {
			combined, err := combineBucket(job.Combiner, out[r], &c)
			if err != nil {
				return nil, c, err
			}
			out[r] = combined
		}
	}
	return out, c, nil
}

// combineBucket folds one reducer-bound buffer through the combiner via
// the stable counting group — no map[string][]any staging. It also charges
// ShuffledBytes for the surviving pairs (the combiner's whole point is that
// only its output crosses the network).
func combineBucket(cb Combiner, pairs []Pair, c *Counters) ([]Pair, error) {
	if len(pairs) == 0 {
		return pairs, nil
	}
	c.CombineInput += int64(len(pairs))
	out := make([]Pair, 0, len(pairs))
	err := groupSorted(pairs, func(k string, values []any) error {
		vs, err := cb.Combine(k, values)
		if err != nil {
			return err
		}
		for _, v := range vs {
			out = append(out, Pair{Key: k, Value: v})
			c.CombineOutput++
			c.ShuffledBytes += int64(len(k)) + approxValueBytes(v)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// runReduceTask groups a partition's pairs by key (sorted, as Hadoop
// guarantees) and invokes the reducer. Grouping is the stable counting
// group of groupSorted: no map[string][]any is built, the value slices of
// all keys share one backing array, and stability keeps value order
// deterministic (map-task order).
func (e *Engine) runReduceTask(job *Job, taskID int, pairs []Pair) ([]Pair, Counters, error) {
	var c Counters
	var out []Pair
	ctx := &TaskContext{
		JobName: job.Name,
		TaskID:  taskID,
		cache:   job.Cache,
		emit:    func(p Pair) { out = append(out, p) },
	}
	err := groupSorted(pairs, func(k string, values []any) error {
		c.ReduceInputKeys++
		c.ReduceInputVals += int64(len(values))
		return job.Reducer.Reduce(ctx, k, values)
	})
	if err != nil {
		return nil, c, err
	}
	return out, c, nil
}
