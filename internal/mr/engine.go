package mr

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
)

// Config tunes an Engine.
type Config struct {
	// Parallelism caps concurrently running task goroutines. Zero means
	// runtime.NumCPU().
	Parallelism int
	// NumReducers is the default reducer count for jobs that leave theirs
	// zero. The paper's cluster ran 112 reducers; locally this only affects
	// the cost model and partitioning, not correctness.
	NumReducers int
	// MaxAttempts is the per-task retry budget (Hadoop default 4). Zero
	// means 4.
	MaxAttempts int
	// FailureRate injects a probability in [0,1) that any task attempt
	// fails before producing output, to exercise retry semantics. The
	// failures are pseudo-random but deterministic per (job, task, attempt).
	FailureRate float64
	// FailureSeed seeds the failure injection.
	FailureSeed int64
	// Cost configures the simulated cluster cost model. Zero value disables
	// simulation (SimulatedSeconds stays 0).
	Cost CostModel
}

// Engine executes Jobs. It is safe for concurrent use by multiple
// goroutines; each Run is independent.
type Engine struct {
	cfg Config
	// TotalSimulated accumulates simulated seconds across all jobs run on
	// this engine, so a pipeline can report an end-to-end modeled runtime.
	mu             sync.Mutex
	totalSimulated float64
	jobsRun        int
	totals         Counters
	perJob         map[string]*JobStats
}

// JobStats accumulates per-job-name statistics across an engine's lifetime
// — the observability a Hadoop job tracker would provide.
type JobStats struct {
	// Runs counts executions of jobs with this name.
	Runs int
	// Counters accumulates across the runs.
	Counters Counters
	// SimulatedSeconds accumulates modeled cost.
	SimulatedSeconds float64
}

// NewEngine returns an engine with the given configuration.
func NewEngine(cfg Config) *Engine {
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.NumCPU()
	}
	if cfg.NumReducers <= 0 {
		cfg.NumReducers = 1
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	return &Engine{cfg: cfg}
}

// Default returns an engine with library defaults, suitable for tests and
// examples.
func Default() *Engine { return NewEngine(Config{}) }

// Cost returns the engine's configured cost model.
func (e *Engine) Cost() CostModel { return e.cfg.Cost }

// TotalSimulatedSeconds reports the accumulated modeled runtime of all jobs
// run so far.
func (e *Engine) TotalSimulatedSeconds() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.totalSimulated
}

// JobsRun reports how many jobs this engine executed.
func (e *Engine) JobsRun() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.jobsRun
}

// TotalCounters returns counters accumulated across all jobs.
func (e *Engine) TotalCounters() Counters {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.totals
}

// ResetAccounting zeroes the accumulated simulated time, job count and
// counters.
func (e *Engine) ResetAccounting() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.totalSimulated = 0
	e.jobsRun = 0
	e.totals = Counters{}
	e.perJob = nil
}

// errInjectedFailure marks fault-injection failures so the retry loop can
// distinguish them from real mapper errors (which are not retried: a
// deterministic bug would fail every attempt anyway, and surfacing it fast
// keeps tests honest).
var errInjectedFailure = errors.New("mr: injected task failure")

// Run executes the job and collects its output.
func (e *Engine) Run(job *Job) (*Output, error) {
	if job.Mapper == nil && job.NewMapper == nil {
		return nil, fmt.Errorf("mr: job %q has no mapper", job.Name)
	}
	numReducers := job.NumReducers
	if numReducers <= 0 {
		numReducers = e.cfg.NumReducers
	}
	mapOnly := job.Reducer == nil

	var (
		mu       sync.Mutex
		counters Counters
		// buckets[r] collects shuffle pairs destined for reducer r; for
		// map-only jobs bucket 0 collects the job output directly.
		buckets [][]Pair
	)
	nb := numReducers
	if mapOnly {
		nb = 1
	}
	buckets = make([][]Pair, nb)

	// --- Map phase -----------------------------------------------------------
	sem := make(chan struct{}, e.cfg.Parallelism)
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	setErr := func(err error) { errOnce.Do(func() { firstErr = err }) }

	for _, split := range job.Splits {
		wg.Add(1)
		sem <- struct{}{}
		go func(split *Split) {
			defer wg.Done()
			defer func() { <-sem }()
			out, c, err := e.runMapTask(job, split, mapOnly, numReducers)
			if err != nil {
				setErr(fmt.Errorf("mr: job %q map task %d: %w", job.Name, split.ID, err))
				return
			}
			mu.Lock()
			counters.Add(c)
			for r, pairs := range out {
				buckets[r] = append(buckets[r], pairs...)
			}
			mu.Unlock()
		}(split)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	var outPairs []Pair
	if mapOnly {
		outPairs = buckets[0]
		counters.OutputRecords = int64(len(outPairs))
	} else {
		// --- Shuffle + reduce phase ------------------------------------------
		var rmu sync.Mutex
		var rwg sync.WaitGroup
		for r := 0; r < numReducers; r++ {
			if len(buckets[r]) == 0 {
				continue
			}
			rwg.Add(1)
			sem <- struct{}{}
			go func(r int, pairs []Pair) {
				defer rwg.Done()
				defer func() { <-sem }()
				pout, c, err := e.runReduceTask(job, r, pairs)
				if err != nil {
					setErr(fmt.Errorf("mr: job %q reduce task %d: %w", job.Name, r, err))
					return
				}
				rmu.Lock()
				counters.Add(c)
				outPairs = append(outPairs, pout...)
				rmu.Unlock()
			}(r, buckets[r])
		}
		rwg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		counters.OutputRecords = int64(len(outPairs))
	}

	out := &Output{Pairs: outPairs, Counters: counters}
	out.SimulatedSeconds = e.cfg.Cost.jobSeconds(job, counters, numReducers)
	e.mu.Lock()
	e.totalSimulated += out.SimulatedSeconds
	e.jobsRun++
	e.totals.Add(counters)
	if e.perJob == nil {
		e.perJob = make(map[string]*JobStats)
	}
	js := e.perJob[job.Name]
	if js == nil {
		js = &JobStats{}
		e.perJob[job.Name] = js
	}
	js.Runs++
	js.Counters.Add(counters)
	js.SimulatedSeconds += out.SimulatedSeconds
	e.mu.Unlock()
	return out, nil
}

// JobStatsByName returns a copy of the per-job-name statistics accumulated
// so far, keyed by Job.Name.
func (e *Engine) JobStatsByName() map[string]JobStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]JobStats, len(e.perJob))
	for name, js := range e.perJob {
		out[name] = *js
	}
	return out
}

// runMapTask executes one map task with retry on injected failures.
func (e *Engine) runMapTask(job *Job, split *Split, mapOnly bool, numReducers int) ([][]Pair, Counters, error) {
	var lastErr error
	var retries int64
	for attempt := 0; attempt < e.cfg.MaxAttempts; attempt++ {
		out, c, err := e.tryMapTask(job, split, mapOnly, numReducers, attempt)
		if err == nil {
			c.TaskRetries = retries
			return out, c, nil
		}
		lastErr = err
		if !errors.Is(err, errInjectedFailure) {
			return nil, Counters{}, err
		}
		retries++
	}
	return nil, Counters{}, fmt.Errorf("task failed after %d attempts: %w", e.cfg.MaxAttempts, lastErr)
}

func (e *Engine) tryMapTask(job *Job, split *Split, mapOnly bool, numReducers, attempt int) ([][]Pair, Counters, error) {
	var c Counters
	nb := numReducers
	if mapOnly {
		nb = 1
	}
	out := make([][]Pair, nb)
	failAt := -1
	if e.cfg.FailureRate > 0 {
		rng := rand.New(rand.NewSource(e.cfg.FailureSeed ^ int64(split.ID)<<20 ^ int64(attempt)))
		if rng.Float64() < e.cfg.FailureRate {
			// Fail midway through the split to exercise partial-output discard.
			failAt = rng.Intn(split.NumRows() + 1)
		}
	}

	mapper := job.Mapper
	if job.NewMapper != nil {
		mapper = job.NewMapper()
	}
	ctx := &TaskContext{
		JobName: job.Name,
		TaskID:  split.ID,
		Split:   split,
		cache:   job.Cache,
		emit: func(p Pair) {
			c.MapOutputRecords++
			if mapOnly {
				out[0] = append(out[0], p)
			} else {
				out[partition(p.Key, numReducers)] = append(out[partition(p.Key, numReducers)], p)
			}
		},
	}
	if err := mapper.Setup(ctx); err != nil {
		return nil, c, err
	}
	n := split.NumRows()
	for i := 0; i < n; i++ {
		if i == failAt {
			return nil, c, errInjectedFailure
		}
		c.MapInputRecords++
		if err := mapper.Map(ctx, split.Offset+i, split.Row(i)); err != nil {
			return nil, c, err
		}
	}
	if n == failAt {
		return nil, c, errInjectedFailure
	}
	if err := mapper.Cleanup(ctx); err != nil {
		return nil, c, err
	}

	if job.Combiner != nil && !mapOnly {
		for r := range out {
			combined, err := combineBucket(job.Combiner, out[r], &c)
			if err != nil {
				return nil, c, err
			}
			out[r] = combined
		}
	}
	for r := range out {
		for _, p := range out[r] {
			c.ShuffledBytes += int64(len(p.Key)) + approxValueBytes(p.Value)
		}
	}
	return out, c, nil
}

func combineBucket(cb Combiner, pairs []Pair, c *Counters) ([]Pair, error) {
	if len(pairs) == 0 {
		return pairs, nil
	}
	grouped := make(map[string][]any)
	order := make([]string, 0, 8)
	for _, p := range pairs {
		if _, ok := grouped[p.Key]; !ok {
			order = append(order, p.Key)
		}
		grouped[p.Key] = append(grouped[p.Key], p.Value)
		c.CombineInput++
	}
	var out []Pair
	for _, k := range order {
		vs, err := cb.Combine(k, grouped[k])
		if err != nil {
			return nil, err
		}
		for _, v := range vs {
			out = append(out, Pair{Key: k, Value: v})
			c.CombineOutput++
		}
	}
	return out, nil
}

// runReduceTask groups a partition's pairs by key (sorted, as Hadoop
// guarantees) and invokes the reducer.
func (e *Engine) runReduceTask(job *Job, taskID int, pairs []Pair) ([]Pair, Counters, error) {
	var c Counters
	grouped := make(map[string][]any)
	for _, p := range pairs {
		grouped[p.Key] = append(grouped[p.Key], p.Value)
	}
	keys := make([]string, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var out []Pair
	ctx := &TaskContext{
		JobName: job.Name,
		TaskID:  taskID,
		cache:   job.Cache,
		emit:    func(p Pair) { out = append(out, p) },
	}
	for _, k := range keys {
		c.ReduceInputKeys++
		c.ReduceInputVals += int64(len(grouped[k]))
		if err := job.Reducer.Reduce(ctx, k, grouped[k]); err != nil {
			return nil, c, err
		}
	}
	return out, c, nil
}

// approxValueBytes estimates the serialized size of a shuffle value for the
// I/O accounting. It understands the value types the pipeline actually
// ships; anything else is charged a flat 16 bytes.
func approxValueBytes(v any) int64 {
	switch x := v.(type) {
	case nil:
		return 0
	case int:
		return 8
	case int64:
		return 8
	case float64:
		return 8
	case []float64:
		return int64(8 * len(x))
	case []int64:
		return int64(8 * len(x))
	case []uint64:
		return int64(8 * len(x))
	case string:
		return int64(len(x))
	default:
		return 16
	}
}
