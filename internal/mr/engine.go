package mr

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Config tunes an Engine.
type Config struct {
	// Parallelism caps concurrently running task goroutines. Zero means
	// runtime.NumCPU().
	Parallelism int
	// NumReducers is the default reducer count for jobs that leave theirs
	// zero. The paper's cluster ran 112 reducers; locally this only affects
	// the cost model and partitioning, not correctness.
	NumReducers int
	// MaxAttempts is the per-task retry budget (Hadoop default 4), shared by
	// map and reduce tasks. Zero means 4.
	MaxAttempts int
	// Faults, when non-nil, injects deterministic failures and simulated
	// straggler delays into map, combine and reduce attempts. Injected
	// failures are retried up to MaxAttempts; real task errors are not (a
	// deterministic bug would fail every attempt anyway, and surfacing it
	// fast keeps tests honest). Plans must be pure and concurrency-safe —
	// see FaultPlan.
	Faults FaultPlan
	// Cost configures the simulated cluster cost model. Zero value disables
	// simulation (SimulatedSeconds stays 0).
	Cost CostModel
}

// Engine executes Jobs. It is safe for concurrent use by multiple
// goroutines; each Run is independent, but all Runs share one task
// semaphore, so Config.Parallelism is a true engine-wide cap on in-flight
// tasks even when several jobs execute concurrently (a Hadoop cluster's
// slot count, not a per-job budget).
type Engine struct {
	cfg Config
	// sem is the engine-wide counting semaphore: every map and reduce task
	// of every concurrent Run holds one slot while executing.
	sem chan struct{}
	// TotalSimulated accumulates simulated seconds across all jobs run on
	// this engine, so a pipeline can report an end-to-end modeled runtime.
	mu             sync.Mutex
	totalSimulated float64
	jobsRun        int
	totals         Counters
	totalsWasted   Counters
	perJob         map[string]*JobStats
}

// JobStats accumulates per-job-name statistics across an engine's lifetime
// — the observability a Hadoop job tracker would provide.
type JobStats struct {
	// Runs counts executions of jobs with this name.
	Runs int
	// Counters accumulates across the runs.
	Counters Counters
	// SimulatedSeconds accumulates modeled cost.
	SimulatedSeconds float64
}

// NewEngine returns an engine with the given configuration.
func NewEngine(cfg Config) *Engine {
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.NumCPU()
	}
	if cfg.NumReducers <= 0 {
		cfg.NumReducers = 1
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	return &Engine{cfg: cfg, sem: make(chan struct{}, cfg.Parallelism)}
}

// Default returns an engine with library defaults, suitable for tests and
// examples.
func Default() *Engine { return NewEngine(Config{}) }

// Cost returns the engine's configured cost model.
func (e *Engine) Cost() CostModel { return e.cfg.Cost }

// TotalSimulatedSeconds reports the accumulated modeled runtime of all jobs
// run so far.
func (e *Engine) TotalSimulatedSeconds() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.totalSimulated
}

// JobsRun reports how many jobs this engine executed.
func (e *Engine) JobsRun() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.jobsRun
}

// TotalCounters returns counters accumulated across all jobs. Only
// successful attempts contribute: failed-attempt work is tracked separately
// by TotalWasted, so these stay an exact description of the computation no
// matter how many faults were injected.
func (e *Engine) TotalCounters() Counters {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.totals
}

// TotalWasted returns the counters of failed task attempts accumulated
// across all jobs — work the modeled cluster performed and threw away.
func (e *Engine) TotalWasted() Counters {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.totalsWasted
}

// ResetAccounting zeroes the accumulated simulated time, job count and
// counters.
func (e *Engine) ResetAccounting() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.totalSimulated = 0
	e.jobsRun = 0
	e.totals = Counters{}
	e.totalsWasted = Counters{}
	e.perJob = nil
}

// errInjectedFailure marks fault-injection failures so the retry loop can
// distinguish them from real mapper/reducer errors (which are not retried).
var errInjectedFailure = errors.New("mr: injected task failure")

// errTaskCancelled marks a task attempt aborted because a sibling task of
// the same Run failed permanently. It never becomes the job error — the
// sibling's failure, recorded first, does.
var errTaskCancelled = errors.New("mr: task cancelled by sibling failure")

// faultCharge accumulates the modeled price of faults over one task's
// attempt loop: the counters of failed attempts (work performed and thrown
// away) and the simulated straggler delay across all attempts.
type faultCharge struct {
	Wasted    Counters
	Straggler float64
}

// add folds another task's charge into f.
func (f *faultCharge) add(o faultCharge) {
	f.Wasted.Add(o.Wasted)
	f.Straggler += o.Straggler
}

// cancelled reports (without blocking) whether the run's cancel channel is
// closed.
func cancelled(cancel <-chan struct{}) bool {
	select {
	case <-cancel:
		return true
	default:
		return false
	}
}

// Run executes the job and collects its output.
func (e *Engine) Run(job *Job) (*Output, error) {
	if job.Mapper == nil && job.NewMapper == nil {
		return nil, fmt.Errorf("mr: job %q has no mapper", job.Name)
	}
	numReducers := job.NumReducers
	if numReducers <= 0 {
		numReducers = e.cfg.NumReducers
	}
	mapOnly := job.Reducer == nil
	nb := numReducers
	if mapOnly {
		nb = 1
	}

	// Run-scoped cooperative cancellation: the first permanent task failure
	// closes cancelCh, and sibling tasks notice it between records, between
	// attempts, and while queued on the semaphore — so a doomed job stops
	// burning slots instead of limping to its own barrier (Hadoop kills
	// sibling attempts the same way when a job fails).
	cancelCh := make(chan struct{})
	var cancelOnce sync.Once
	var firstErr error
	var errOnce sync.Once
	setErr := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancelOnce.Do(func() { close(cancelCh) })
	}

	// --- Map phase -----------------------------------------------------------
	// Lock-free collection: every map task owns one slot of mapOuts /
	// mapCounters (single writer per slot, synchronized by wg.Wait's
	// happens-before edge), so the shuffle needs no global mutex. Task i's
	// slot holds its output pre-partitioned into per-reducer buffers.
	mapOuts := make([][][]Pair, len(job.Splits))
	mapCounters := make([]Counters, len(job.Splits))
	mapFaults := make([]faultCharge, len(job.Splits))
	var wg sync.WaitGroup

mapLaunch:
	for i, split := range job.Splits {
		select {
		case <-cancelCh:
			break mapLaunch
		case e.sem <- struct{}{}:
		}
		wg.Add(1)
		go func(i int, split *Split) {
			defer wg.Done()
			defer func() { <-e.sem }()
			out, c, fc, err := e.runMapTask(job, split, mapOnly, numReducers, cancelCh)
			mapFaults[i] = fc
			if err != nil {
				if !errors.Is(err, errTaskCancelled) {
					setErr(fmt.Errorf("mr: job %q map task %d: %w", job.Name, split.ID, err))
				}
				return
			}
			mapOuts[i] = out
			mapCounters[i] = c
		}(i, split)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	var counters Counters
	var fault faultCharge
	for i := range mapCounters {
		counters.Add(mapCounters[i])
		fault.add(mapFaults[i])
	}

	// Merge the per-task buffers into one contiguous run per reducer, in
	// split order: value order within a key is therefore a deterministic
	// function of the split layout, independent of Parallelism and of task
	// completion order.
	buckets := make([][]Pair, nb)
	for r := 0; r < nb; r++ {
		total := 0
		for i := range mapOuts {
			total += len(mapOuts[i][r])
		}
		if total == 0 {
			continue
		}
		merged := make([]Pair, 0, total)
		for i := range mapOuts {
			merged = append(merged, mapOuts[i][r]...)
		}
		buckets[r] = merged
	}

	var outPairs []Pair
	if mapOnly {
		outPairs = buckets[0]
		counters.OutputRecords = int64(len(outPairs))
	} else {
		// --- Shuffle + reduce phase ------------------------------------------
		// Same single-writer-per-slot scheme: reducer r writes redOuts[r],
		// and the final concatenation in reducer order keeps job output
		// deterministic without a collection mutex. Reduce tasks share the
		// map tasks' retry budget and cancellation channel: a reduce attempt
		// re-runs from its immutable shuffled bucket (see Reducer contract).
		redOuts := make([][]Pair, numReducers)
		redCounters := make([]Counters, numReducers)
		redFaults := make([]faultCharge, numReducers)
		var rwg sync.WaitGroup
	redLaunch:
		for r := 0; r < numReducers; r++ {
			if len(buckets[r]) == 0 {
				continue
			}
			select {
			case <-cancelCh:
				break redLaunch
			case e.sem <- struct{}{}:
			}
			rwg.Add(1)
			go func(r int, pairs []Pair) {
				defer rwg.Done()
				defer func() { <-e.sem }()
				pout, c, fc, err := e.runReduceTask(job, r, pairs, cancelCh)
				redFaults[r] = fc
				if err != nil {
					if !errors.Is(err, errTaskCancelled) {
						setErr(fmt.Errorf("mr: job %q reduce task %d: %w", job.Name, r, err))
					}
					return
				}
				redOuts[r] = pout
				redCounters[r] = c
			}(r, buckets[r])
		}
		rwg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		total := 0
		for r := range redOuts {
			counters.Add(redCounters[r])
			fault.add(redFaults[r])
			total += len(redOuts[r])
		}
		outPairs = make([]Pair, 0, total)
		for r := range redOuts {
			outPairs = append(outPairs, redOuts[r]...)
		}
		counters.OutputRecords = int64(len(outPairs))
	}

	out := &Output{Pairs: outPairs, Counters: counters, Wasted: fault.Wasted}
	out.SimulatedSeconds = e.cfg.Cost.jobSeconds(job, counters, fault, numReducers)
	e.mu.Lock()
	e.totalSimulated += out.SimulatedSeconds
	e.jobsRun++
	e.totals.Add(counters)
	e.totalsWasted.Add(fault.Wasted)
	if e.perJob == nil {
		e.perJob = make(map[string]*JobStats)
	}
	js := e.perJob[job.Name]
	if js == nil {
		js = &JobStats{}
		e.perJob[job.Name] = js
	}
	js.Runs++
	js.Counters.Add(counters)
	js.SimulatedSeconds += out.SimulatedSeconds
	e.mu.Unlock()
	return out, nil
}

// JobStatsByName returns a copy of the per-job-name statistics accumulated
// so far, keyed by Job.Name.
func (e *Engine) JobStatsByName() map[string]JobStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]JobStats, len(e.perJob))
	for name, js := range e.perJob {
		out[name] = *js
	}
	return out
}

// runTaskAttempts drives one task's attempt loop, shared by map and reduce
// tasks: injected failures are retried up to MaxAttempts with the failed
// attempt's counters diverted into the fault charge (never the job
// counters), real errors abort immediately, and the loop bails out between
// attempts when the run is cancelled. try returns the attempt's output, its
// counters, and its simulated straggler delay.
func runTaskAttempts[T any](e *Engine, cancel <-chan struct{},
	try func(attempt int) (T, Counters, float64, error)) (T, Counters, faultCharge, error) {
	var zero T
	var fc faultCharge
	var lastErr error
	var retries int64
	for attempt := 0; attempt < e.cfg.MaxAttempts; attempt++ {
		if cancelled(cancel) {
			return zero, Counters{}, fc, errTaskCancelled
		}
		out, c, straggler, err := try(attempt)
		fc.Straggler += straggler
		if err == nil {
			c.TaskRetries = retries
			return out, c, fc, nil
		}
		lastErr = err
		if !errors.Is(err, errInjectedFailure) {
			return zero, Counters{}, fc, err
		}
		fc.Wasted.Add(c)
		retries++
	}
	return zero, Counters{}, fc, fmt.Errorf("task failed after %d attempts: %w", e.cfg.MaxAttempts, lastErr)
}

// runMapTask executes one map task with retry on injected failures.
func (e *Engine) runMapTask(job *Job, split *Split, mapOnly bool, numReducers int, cancel <-chan struct{}) ([][]Pair, Counters, faultCharge, error) {
	return runTaskAttempts(e, cancel, func(attempt int) ([][]Pair, Counters, float64, error) {
		return e.tryMapTask(job, split, mapOnly, numReducers, attempt, cancel)
	})
}

func (e *Engine) tryMapTask(job *Job, split *Split, mapOnly bool, numReducers, attempt int, cancel <-chan struct{}) ([][]Pair, Counters, float64, error) {
	var c Counters
	nb := numReducers
	if mapOnly {
		nb = 1
	}
	out := make([][]Pair, nb)
	var straggler float64
	failAt := -1
	if e.cfg.Faults != nil {
		d := e.cfg.Faults.Decide(job.Name, PhaseMap, split.ID, attempt)
		straggler = d.StragglerSeconds
		if d.Fail {
			// Fail partway through the split to exercise partial-output discard.
			failAt = failIndex(d.FailFrac, split.NumRows())
		}
	}

	mapper := job.Mapper
	if job.NewMapper != nil {
		mapper = job.NewMapper()
	}
	// Shuffle accounting is folded into emit so pairs are traversed once;
	// with a combiner the charge moves to combineBucket instead, because
	// only post-combine pairs cross the (modeled) network.
	chargeOnEmit := mapOnly || job.Combiner == nil
	ctx := &TaskContext{
		JobName: job.Name,
		TaskID:  split.ID,
		Split:   split,
		cache:   job.Cache,
		emit: func(p Pair) {
			c.MapOutputRecords++
			if chargeOnEmit {
				c.ShuffledBytes += int64(len(p.Key)) + approxValueBytes(p.Value)
			}
			r := 0
			if !mapOnly {
				r = partition(p.Key, numReducers)
			}
			out[r] = append(out[r], p)
		},
	}
	if err := mapper.Setup(ctx); err != nil {
		return nil, c, straggler, err
	}
	n := split.NumRows()
	for i := 0; i < n; i++ {
		if i == failAt {
			return nil, c, straggler, errInjectedFailure
		}
		// Sampled cancellation poll: cheap enough to leave the record loop's
		// throughput alone, frequent enough that a cancelled task yields its
		// slot within a few dozen records.
		if i&63 == 0 && cancelled(cancel) {
			return nil, c, straggler, errTaskCancelled
		}
		c.MapInputRecords++
		if err := mapper.Map(ctx, split.Offset+i, split.Row(i)); err != nil {
			return nil, c, straggler, err
		}
	}
	if n == failAt {
		return nil, c, straggler, errInjectedFailure
	}
	if err := mapper.Cleanup(ctx); err != nil {
		return nil, c, straggler, err
	}

	if job.Combiner != nil && !mapOnly {
		if e.cfg.Faults != nil {
			d := e.cfg.Faults.Decide(job.Name, PhaseCombine, split.ID, attempt)
			straggler += d.StragglerSeconds
			if d.Fail {
				return nil, c, straggler, errInjectedFailure
			}
		}
		for r := range out {
			combined, err := combineBucket(job.Combiner, out[r], &c)
			if err != nil {
				return nil, c, straggler, err
			}
			out[r] = combined
		}
	}
	return out, c, straggler, nil
}

// combineBucket folds one reducer-bound buffer through the combiner via
// the stable counting group — no map[string][]any staging. It also charges
// ShuffledBytes for the surviving pairs (the combiner's whole point is that
// only its output crosses the network).
func combineBucket(cb Combiner, pairs []Pair, c *Counters) ([]Pair, error) {
	if len(pairs) == 0 {
		return pairs, nil
	}
	c.CombineInput += int64(len(pairs))
	out := make([]Pair, 0, len(pairs))
	err := groupSorted(pairs, func(k string, values []any) error {
		vs, err := cb.Combine(k, values)
		if err != nil {
			return err
		}
		for _, v := range vs {
			out = append(out, Pair{Key: k, Value: v})
			c.CombineOutput++
			c.ShuffledBytes += int64(len(k)) + approxValueBytes(v)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// runReduceTask executes one reduce task with the same retry loop as map
// tasks: a failed attempt is re-run from its immutable shuffled bucket.
func (e *Engine) runReduceTask(job *Job, taskID int, pairs []Pair, cancel <-chan struct{}) ([]Pair, Counters, faultCharge, error) {
	return runTaskAttempts(e, cancel, func(attempt int) ([]Pair, Counters, float64, error) {
		return e.tryReduceTask(job, taskID, pairs, attempt, cancel)
	})
}

// tryReduceTask groups a partition's pairs by key (sorted, as Hadoop
// guarantees) and invokes the reducer. Grouping is the stable counting
// group of groupSorted: no map[string][]any is built, the value slices of
// all keys share one backing array, and stability keeps value order
// deterministic (map-task order). An injected failure aborts the key loop
// at a plan-chosen position, discarding the attempt's partial output and
// counters exactly like a dying Hadoop reduce attempt.
func (e *Engine) tryReduceTask(job *Job, taskID int, pairs []Pair, attempt int, cancel <-chan struct{}) ([]Pair, Counters, float64, error) {
	var c Counters
	var straggler float64
	failAt := -1 // threshold in consumed input pairs, -1 = never
	if e.cfg.Faults != nil {
		d := e.cfg.Faults.Decide(job.Name, PhaseReduce, taskID, attempt)
		straggler = d.StragglerSeconds
		if d.Fail {
			failAt = failIndex(d.FailFrac, len(pairs))
		}
	}
	var out []Pair
	ctx := &TaskContext{
		JobName: job.Name,
		TaskID:  taskID,
		cache:   job.Cache,
		emit:    func(p Pair) { out = append(out, p) },
	}
	consumed := 0
	err := groupSorted(pairs, func(k string, values []any) error {
		if failAt >= 0 && consumed >= failAt {
			return errInjectedFailure
		}
		if cancelled(cancel) {
			return errTaskCancelled
		}
		consumed += len(values)
		c.ReduceInputKeys++
		c.ReduceInputVals += int64(len(values))
		return job.Reducer.Reduce(ctx, k, values)
	})
	if err != nil {
		return nil, c, straggler, err
	}
	if failAt >= 0 && consumed >= failAt {
		// FailFrac ≈ 1: the attempt dies after its last key, before the
		// output is committed.
		return nil, c, straggler, errInjectedFailure
	}
	return out, c, straggler, nil
}
