package mr

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"p3cmr/internal/obs"
)

// Config tunes an Engine.
type Config struct {
	// Parallelism caps concurrently running task goroutines. Zero means
	// runtime.NumCPU().
	Parallelism int
	// NumReducers is the default reducer count for jobs that leave theirs
	// zero. The paper's cluster ran 112 reducers; locally this only affects
	// the cost model and partitioning, not correctness.
	NumReducers int
	// MaxAttempts is the per-task retry budget (Hadoop default 4), shared by
	// map and reduce tasks. Zero means 4.
	MaxAttempts int
	// Faults, when non-nil, injects deterministic failures and simulated
	// straggler delays into map, combine and reduce attempts. Injected
	// failures are retried up to MaxAttempts; real task errors are not (a
	// deterministic bug would fail every attempt anyway, and surfacing it
	// fast keeps tests honest). Plans must be pure and concurrency-safe —
	// see FaultPlan.
	Faults FaultPlan
	// Cost configures the simulated cluster cost model. Zero value disables
	// simulation (SimulatedSeconds stays 0).
	Cost CostModel
	// Tracer, when non-nil, receives structured span events: one job span
	// per Run (parented by Job.TraceParent), one task span per map/reduce
	// attempt, a shuffle span per reduce job, and point events for injected
	// faults, retries, stragglers and cancellations. Tracing is pure
	// observation — it cannot change job output, counters or simulated
	// seconds (pinned by the chaos trace-identity tests) — and a nil Tracer
	// costs nothing on the hot path (no clock reads, no allocations; pinned
	// by bench_test.go).
	Tracer obs.Tracer
	// Metrics, when non-nil, receives engine-level aggregates per job run:
	// mr_jobs_total, mr_map_input_records_total, mr_map_output_records_total,
	// mr_output_records_total, mr_shuffled_bytes_total, mr_task_retries_total,
	// mr_wasted_records_total, the mr_simulated_seconds_total gauge and the
	// mr_job_real_seconds histogram. Handles are resolved once in NewEngine,
	// so the per-job cost is a handful of atomic adds.
	Metrics *obs.Registry
	// DebugPoisonPools overwrites the engine's pooled shuffle buffers with
	// garbage markers as they are recycled. A buffer recycled while a stale
	// reference can still observe it then yields obviously-corrupt records
	// instead of stale-but-plausible ones, which the bit-identity chaos
	// oracles detect — the canary proving the pool lifecycle barriers (see
	// enginePools). Test/debug knob; leave off otherwise. The multiprocess
	// backend forwards the flag to its workers, whose pools poison the same
	// way.
	DebugPoisonPools bool
	// Backend selects the execution backend by name: "" or "inprocess" (the
	// typed-lane goroutine backend), "multiprocess" (worker OS processes
	// with disk-spilled shuffle; see backend_multiproc.go), or "simulated"
	// (single-goroutine sequential reference). All backends produce
	// bit-identical output, counters and ShuffledBytes for the same job and
	// fault plan (pinned by the conformance suite).
	Backend string
	// SpillDir is where the multiprocess backend creates its per-run spill
	// directory. Empty means os.TempDir(). Each Run makes (and removes) a
	// private subdirectory, so concurrent runs never collide.
	SpillDir string
	// TelemetrySample is the multiprocess backend's worker resource-sampler
	// cadence. Zero means 250ms. Worker telemetry as a whole rides the
	// Tracer: with a nil Tracer no telemetry is enabled and the worker wire
	// stream is byte-identical to a pre-telemetry build.
	TelemetrySample time.Duration
	// SpillThresholdBytes caps a multiprocess map worker's in-memory
	// shuffle buffer: when the buffered record bytes exceed it, every
	// bucket is spilled to disk as a sorted run and the buffers reset, so
	// map output never needs to fit in RAM. Zero means 64 MiB; 1 spills
	// after every record batch ("always spill"); math.MaxInt64 never spills
	// mid-task (final sorted runs are still written at task commit).
	// Ignored by the in-process and simulated backends, whose shuffle is
	// in-memory by design.
	SpillThresholdBytes int64
}

// engineMetrics caches the registry handles the engine updates at the end
// of every job, so Run never takes the registry mutex.
type engineMetrics struct {
	jobs, mapIn, mapOut, outRecs, shuffled, retries, wasted *obs.Counter
	simSeconds                                              *obs.Gauge
	jobReal                                                 *obs.Histogram
}

func newEngineMetrics(r *obs.Registry) *engineMetrics {
	return &engineMetrics{
		jobs:       r.Counter("mr_jobs_total"),
		mapIn:      r.Counter("mr_map_input_records_total"),
		mapOut:     r.Counter("mr_map_output_records_total"),
		outRecs:    r.Counter("mr_output_records_total"),
		shuffled:   r.Counter("mr_shuffled_bytes_total"),
		retries:    r.Counter("mr_task_retries_total"),
		wasted:     r.Counter("mr_wasted_records_total"),
		simSeconds: r.Gauge("mr_simulated_seconds_total"),
		jobReal:    r.Histogram("mr_job_real_seconds", []float64{0.001, 0.01, 0.1, 1, 10, 60}),
	}
}

// Engine executes Jobs. It is safe for concurrent use by multiple
// goroutines; each Run is independent, but all Runs share one task
// semaphore, so Config.Parallelism is a true engine-wide cap on in-flight
// tasks even when several jobs execute concurrently (a Hadoop cluster's
// slot count, not a per-job budget).
type Engine struct {
	cfg Config
	// sem is the engine-wide counting semaphore: every map and reduce task
	// of every concurrent Run holds one slot while executing.
	sem chan struct{}
	// met caches metric handles when Config.Metrics is set.
	met *engineMetrics
	// pools recycles typed-plane shuffle buffers across jobs and tasks.
	pools *enginePools
	// backend executes the map/shuffle/reduce core (see Backend); backendErr
	// defers an unknown-name error from NewEngine to the first Run.
	backend    Backend
	backendErr error
	// TotalSimulated accumulates simulated seconds across all jobs run on
	// this engine, so a pipeline can report an end-to-end modeled runtime.
	mu             sync.Mutex
	totalSimulated float64
	jobsRun        int
	totals         Counters
	totalsWasted   Counters
	perJob         map[string]*JobStats
	// lastProc holds the most recent multiprocess Run's process/spill
	// statistics (nil until a multiprocess job ran); see LastProcStats.
	lastProc *ProcStats
}

// JobStats accumulates per-job-name statistics across an engine's lifetime
// — the observability a Hadoop job tracker would provide.
type JobStats struct {
	// Runs counts executions of jobs with this name.
	Runs int
	// Counters accumulates across the runs.
	Counters Counters
	// SimulatedSeconds accumulates modeled cost.
	SimulatedSeconds float64
}

// NewEngine returns an engine with the given configuration.
func NewEngine(cfg Config) *Engine {
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.NumCPU()
	}
	if cfg.NumReducers <= 0 {
		cfg.NumReducers = 1
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	e := &Engine{cfg: cfg, sem: make(chan struct{}, cfg.Parallelism), pools: newEnginePools(cfg.DebugPoisonPools)}
	e.backend, e.backendErr = pickBackend(cfg.Backend)
	if cfg.Metrics != nil {
		e.met = newEngineMetrics(cfg.Metrics)
	}
	return e
}

// BackendName reports which backend this engine executes jobs on.
func (e *Engine) BackendName() string {
	if e.backend == nil {
		return e.cfg.Backend
	}
	return e.backend.Name()
}

// Default returns an engine with library defaults, suitable for tests and
// examples.
func Default() *Engine { return NewEngine(Config{}) }

// Cost returns the engine's configured cost model.
func (e *Engine) Cost() CostModel { return e.cfg.Cost }

// Tracer returns the engine's configured tracer (nil when tracing is off),
// so higher layers — the pipeline's phase and run spans — emit into the
// same sink the engine does.
func (e *Engine) Tracer() obs.Tracer { return e.cfg.Tracer }

// Metrics returns the engine's metrics registry (nil when disabled).
func (e *Engine) Metrics() *obs.Registry { return e.cfg.Metrics }

// TotalSimulatedSeconds reports the accumulated modeled runtime of all jobs
// run so far.
func (e *Engine) TotalSimulatedSeconds() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.totalSimulated
}

// JobsRun reports how many jobs this engine executed.
func (e *Engine) JobsRun() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.jobsRun
}

// TotalCounters returns counters accumulated across all jobs. Only
// successful attempts contribute: failed-attempt work is tracked separately
// by TotalWasted, so these stay an exact description of the computation no
// matter how many faults were injected.
func (e *Engine) TotalCounters() Counters {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.totals
}

// TotalWasted returns the counters of failed task attempts accumulated
// across all jobs — work the modeled cluster performed and threw away.
func (e *Engine) TotalWasted() Counters {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.totalsWasted
}

// ResetAccounting zeroes the accumulated simulated time, job count and
// counters.
func (e *Engine) ResetAccounting() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.totalSimulated = 0
	e.jobsRun = 0
	e.totals = Counters{}
	e.totalsWasted = Counters{}
	e.perJob = nil
}

// errInjectedFailure marks fault-injection failures so the retry loop can
// distinguish them from real mapper/reducer errors (which are not retried).
var errInjectedFailure = errors.New("mr: injected task failure")

// errTaskCancelled marks a task attempt aborted because a sibling task of
// the same Run failed permanently. It never becomes the job error — the
// sibling's failure, recorded first, does.
var errTaskCancelled = errors.New("mr: task cancelled by sibling failure")

// faultCharge accumulates the modeled price of faults over one task's
// attempt loop: the counters of failed attempts (work performed and thrown
// away) and the simulated straggler delay across all attempts.
type faultCharge struct {
	Wasted    Counters
	Straggler float64
}

// add folds another task's charge into f.
func (f *faultCharge) add(o faultCharge) {
	f.Wasted.Add(o.Wasted)
	f.Straggler += o.Straggler
}

// cancelled reports (without blocking) whether the run's cancel channel is
// closed.
func cancelled(cancel <-chan struct{}) bool {
	select {
	case <-cancel:
		return true
	default:
		return false
	}
}

// Run executes the job and collects its output.
func (e *Engine) Run(job *Job) (*Output, error) {
	if e.backendErr != nil {
		return nil, e.backendErr
	}
	job, rerr := resolveJob(job)
	if rerr != nil {
		return nil, rerr
	}
	if job.Mapper == nil && job.NewMapper == nil {
		return nil, fmt.Errorf("mr: job %q has no mapper", job.Name)
	}
	if job.Reducer != nil && job.TypedReducer != nil {
		return nil, fmt.Errorf("mr: job %q sets both Reducer and TypedReducer", job.Name)
	}
	if job.Combiner != nil && job.TypedCombiner != nil {
		return nil, fmt.Errorf("mr: job %q sets both Combiner and TypedCombiner", job.Name)
	}
	numReducers := job.NumReducers
	if numReducers <= 0 {
		numReducers = e.cfg.NumReducers
	}
	mapOnly := job.Reducer == nil && job.TypedReducer == nil
	nb := numReducers
	if mapOnly {
		nb = 1
	}

	// Everything observability-related is gated on tr/e.met being non-nil:
	// an untraced engine takes no clock readings and allocates nothing here.
	tr := e.cfg.Tracer
	var jobSpan obs.SpanID
	var jobStart time.Time
	if tr != nil {
		jobSpan = obs.NewSpanID()
		tr.Begin(obs.Start{ID: jobSpan, Parent: job.TraceParent, Kind: obs.KindJob, Name: job.Name})
	}
	if tr != nil || e.met != nil {
		jobStart = obs.Now()
	}
	endJobErr := func(err error) {
		if tr != nil {
			tr.End(obs.End{ID: jobSpan, Kind: obs.KindJob, Name: job.Name,
				Outcome: obs.OutcomeError, Err: err.Error(),
				RealSeconds: obs.Since(jobStart).Seconds()})
		}
	}

	// Run-scoped cooperative cancellation: the first permanent task failure
	// closes cancelCh, and sibling tasks notice it between records, between
	// attempts, and while queued on the semaphore — so a doomed job stops
	// burning slots instead of limping to its own barrier (Hadoop kills
	// sibling attempts the same way when a job fails).
	cancelCh := make(chan struct{})
	var cancelOnce sync.Once
	var firstErr error
	var errOnce sync.Once
	setErr := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancelOnce.Do(func() { close(cancelCh) })
	}

	// The map/shuffle/reduce core is delegated to the configured backend
	// (in-process goroutines by default; see Backend). firstErr is read only
	// after a phase barrier (wg.Wait), which is what makes the unlocked read
	// safe — the same discipline the pre-seam engine used.
	rc := &runContext{
		e: e, job: job, mapOnly: mapOnly, nb: nb, numReducers: numReducers,
		jobSpan: jobSpan, cancelCh: cancelCh, setErr: setErr,
		firstErr: func() error { return firstErr },
	}
	outPairs, counters, fault, err := e.backend.execute(rc)
	if err != nil {
		endJobErr(err)
		return nil, err
	}

	out := &Output{Pairs: outPairs, Counters: counters, Wasted: fault.Wasted}
	out.SimulatedSeconds = e.cfg.Cost.jobSeconds(job, counters, fault, numReducers)
	e.mu.Lock()
	e.totalSimulated += out.SimulatedSeconds
	e.jobsRun++
	e.totals.Add(counters)
	e.totalsWasted.Add(fault.Wasted)
	if e.perJob == nil {
		e.perJob = make(map[string]*JobStats)
	}
	js := e.perJob[job.Name]
	if js == nil {
		js = &JobStats{}
		e.perJob[job.Name] = js
	}
	js.Runs++
	js.Counters.Add(counters)
	js.SimulatedSeconds += out.SimulatedSeconds
	e.mu.Unlock()
	if tr != nil {
		tr.End(obs.End{ID: jobSpan, Kind: obs.KindJob, Name: job.Name,
			Outcome:          obs.OutcomeOK,
			RealSeconds:      obs.Since(jobStart).Seconds(),
			SimulatedSeconds: out.SimulatedSeconds,
			Counters:         counters, Wasted: fault.Wasted,
			Retries: counters.TaskRetries})
	}
	if m := e.met; m != nil {
		m.jobs.Inc()
		m.mapIn.Add(counters.MapInputRecords)
		m.mapOut.Add(counters.MapOutputRecords)
		m.outRecs.Add(counters.OutputRecords)
		m.shuffled.Add(counters.ShuffledBytes)
		m.retries.Add(counters.TaskRetries)
		m.wasted.Add(fault.Wasted.MapInputRecords + fault.Wasted.ReduceInputVals)
		m.simSeconds.Add(out.SimulatedSeconds)
		m.jobReal.Observe(obs.Since(jobStart).Seconds())
	}
	return out, nil
}

// JobStatsByName returns a copy of the per-job-name statistics accumulated
// so far, keyed by Job.Name.
func (e *Engine) JobStatsByName() map[string]JobStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]JobStats, len(e.perJob))
	for name, js := range e.perJob {
		out[name] = *js
	}
	return out
}

// point emits a point event into the engine's tracer. Callers gate on
// e.cfg.Tracer != nil so the untraced path pays nothing (not even the
// TaskPhase→string conversion).
func (e *Engine) point(span obs.SpanID, kind obs.PointKind, name string, task, attempt int, phase TaskPhase, seconds float64) {
	//lint:allow tracenil every caller gates on e.cfg.Tracer != nil before paying for this call's arguments
	e.cfg.Tracer.Point(obs.Point{Span: span, Kind: kind, Name: name,
		Task: task, Attempt: attempt, Phase: phase.String(), Seconds: seconds})
}

// runTaskAttempts drives one task's attempt loop, shared by map and reduce
// tasks: injected failures are retried up to MaxAttempts with the failed
// attempt's counters diverted into the fault charge (never the job
// counters), real errors abort immediately, and the loop bails out between
// attempts when the run is cancelled. try returns the attempt's output, its
// counters, and its simulated straggler delay; it receives the attempt's
// span so fault decision sites can attach point events to it.
//
// When tracing is on, every attempt gets a KindTask span under parent (the
// job span) closed with its outcome: ok, fault (wasted counters attached),
// cancelled, or error. A fault that will be retried additionally emits a
// PointRetry on the job span; a task that gives up before starting an
// attempt emits a PointCancel.
//
// worker, when non-nil, names the worker process the just-finished attempt
// ran on (multiprocess backend); it is read after try returns, so the
// backend can bind a worker per attempt. In-process backends pass nil.
func runTaskAttempts[T any](e *Engine, job *Job, phase TaskPhase, taskID int, parent obs.SpanID, cancel <-chan struct{},
	worker func() string,
	try func(attempt int, span obs.SpanID) (T, Counters, float64, error)) (T, Counters, faultCharge, error) {
	var zero T
	var fc faultCharge
	var lastErr error
	var retries int64
	tr := e.cfg.Tracer
	for attempt := 0; attempt < e.cfg.MaxAttempts; attempt++ {
		if cancelled(cancel) {
			if tr != nil {
				e.point(parent, obs.PointCancel, job.Name, taskID, attempt, phase, 0)
			}
			return zero, Counters{}, fc, errTaskCancelled
		}
		var span obs.SpanID
		var began time.Time
		if tr != nil {
			span = obs.NewSpanID()
			tr.Begin(obs.Start{ID: span, Parent: parent, Kind: obs.KindTask,
				Name: job.Name, Task: taskID, Attempt: attempt, Phase: phase.String()})
			began = obs.Now()
		}
		out, c, straggler, err := try(attempt, span)
		fc.Straggler += straggler
		var onWorker string
		if tr != nil && worker != nil {
			onWorker = worker()
		}
		if err == nil {
			c.TaskRetries = retries
			if tr != nil {
				tr.End(obs.End{ID: span, Kind: obs.KindTask, Name: job.Name,
					Task: taskID, Attempt: attempt, Phase: phase.String(),
					Outcome:     obs.OutcomeOK,
					RealSeconds: obs.Since(began).Seconds(), SimulatedSeconds: straggler,
					Counters: c, Retries: retries, Worker: onWorker})
			}
			return out, c, fc, nil
		}
		lastErr = err
		if !errors.Is(err, errInjectedFailure) {
			if tr != nil {
				outcome := obs.OutcomeError
				if errors.Is(err, errTaskCancelled) {
					outcome = obs.OutcomeCancelled
				}
				tr.End(obs.End{ID: span, Kind: obs.KindTask, Name: job.Name,
					Task: taskID, Attempt: attempt, Phase: phase.String(),
					Outcome: outcome, Err: err.Error(),
					RealSeconds: obs.Since(began).Seconds(), SimulatedSeconds: straggler,
					Worker: onWorker})
			}
			return zero, Counters{}, fc, err
		}
		fc.Wasted.Add(c)
		retries++
		if tr != nil {
			tr.End(obs.End{ID: span, Kind: obs.KindTask, Name: job.Name,
				Task: taskID, Attempt: attempt, Phase: phase.String(),
				Outcome: obs.OutcomeFault, Err: err.Error(),
				RealSeconds: obs.Since(began).Seconds(), SimulatedSeconds: straggler,
				Wasted: c, Worker: onWorker})
			if attempt+1 < e.cfg.MaxAttempts {
				e.point(parent, obs.PointRetry, job.Name, taskID, attempt, phase, 0)
			}
		}
	}
	return zero, Counters{}, fc, fmt.Errorf("task failed after %d attempts: %w", e.cfg.MaxAttempts, lastErr)
}

// runMapTask executes one map task with retry on injected failures. The
// task's pooled mapState is acquired once for the whole attempt loop —
// retried attempts reset and reuse it (never returning it to the pool while
// the task lives) — and recycled here on failure/cancellation, when no one
// outside the task has ever observed it. On success the state transfers to
// the caller, which recycles it after the merge copies its records out.
func (e *Engine) runMapTask(job *Job, split *Split, mapOnly bool, nb, numReducers int, jobSpan obs.SpanID, cancel <-chan struct{}) (*mapState, Counters, faultCharge, error) {
	st := e.pools.getMapState(nb)
	out, c, fc, err := runTaskAttempts(e, job, PhaseMap, split.ID, jobSpan, cancel, nil, func(attempt int, span obs.SpanID) (*mapState, Counters, float64, error) {
		ac, straggler, err := e.tryMapTask(job, split, st, mapOnly, nb, attempt, span, cancel)
		return st, ac, straggler, err
	})
	if err != nil {
		e.pools.putMapState(st)
		return nil, c, fc, err
	}
	return out, c, fc, nil
}

// tryMapTask runs one map attempt into st: records land pre-partitioned in
// st.buckets with task-locally interned keys (see TaskContext.emitRec), and
// the optional combiner folds each bucket in place before the attempt
// commits.
func (e *Engine) tryMapTask(job *Job, split *Split, st *mapState, mapOnly bool, nb, attempt int, span obs.SpanID, cancel <-chan struct{}) (Counters, float64, error) {
	var c Counters
	// A retried attempt starts from an empty state; attempt 0's state came
	// reset from the pool, so this only walks empty buffers.
	st.reset(false)
	var straggler float64
	failAt := -1
	if e.cfg.Faults != nil {
		d := e.cfg.Faults.Decide(job.Name, PhaseMap, split.ID, attempt)
		straggler = d.StragglerSeconds
		if straggler > 0 && e.cfg.Tracer != nil {
			e.point(span, obs.PointStraggler, job.Name, split.ID, attempt, PhaseMap, straggler)
		}
		if d.Fail {
			// Fail partway through the split to exercise partial-output discard.
			failAt = failIndex(d.FailFrac, split.NumRows())
		}
	}

	mapper := job.Mapper
	if job.NewMapper != nil {
		mapper = job.NewMapper()
	}
	// Shuffle accounting is folded into emit so records are traversed once;
	// with a combiner the charge moves to combineBucket instead, because
	// only post-combine records cross the (modeled) network.
	hasCombiner := job.Combiner != nil || job.TypedCombiner != nil
	ctx := &TaskContext{
		JobName:      job.Name,
		TaskID:       split.ID,
		Split:        split,
		cache:        job.Cache,
		ms:           st,
		counters:     &c,
		numReducers:  nb,
		chargeOnEmit: mapOnly || !hasCombiner,
	}
	if err := mapper.Setup(ctx); err != nil {
		return c, straggler, err
	}
	n := split.NumRows()
	for i := 0; i < n; i++ {
		if i == failAt {
			if e.cfg.Tracer != nil {
				e.point(span, obs.PointFault, job.Name, split.ID, attempt, PhaseMap, 0)
			}
			return c, straggler, errInjectedFailure
		}
		// Sampled cancellation poll: cheap enough to leave the record loop's
		// throughput alone, frequent enough that a cancelled task yields its
		// slot within a few dozen records.
		if i&63 == 0 && cancelled(cancel) {
			return c, straggler, errTaskCancelled
		}
		c.MapInputRecords++
		if err := mapper.Map(ctx, split.Offset+i, split.Row(i)); err != nil {
			return c, straggler, err
		}
	}
	if n == failAt {
		if e.cfg.Tracer != nil {
			e.point(span, obs.PointFault, job.Name, split.ID, attempt, PhaseMap, 0)
		}
		return c, straggler, errInjectedFailure
	}
	if err := mapper.Cleanup(ctx); err != nil {
		return c, straggler, err
	}

	if hasCombiner && !mapOnly {
		if e.cfg.Faults != nil {
			d := e.cfg.Faults.Decide(job.Name, PhaseCombine, split.ID, attempt)
			straggler += d.StragglerSeconds
			if d.StragglerSeconds > 0 && e.cfg.Tracer != nil {
				e.point(span, obs.PointStraggler, job.Name, split.ID, attempt, PhaseCombine, d.StragglerSeconds)
			}
			if d.Fail {
				if e.cfg.Tracer != nil {
					e.point(span, obs.PointFault, job.Name, split.ID, attempt, PhaseCombine, 0)
				}
				return c, straggler, errInjectedFailure
			}
		}
		for r := range st.buckets {
			if err := combineBucket(job, st, r, &c); err != nil {
				return c, straggler, err
			}
		}
	}
	return c, straggler, nil
}

// combineBucket folds one reducer-bound buffer through the combiner via the
// counting group over task-local key ids — no map[string][]any staging and,
// on the typed path, no boxing. It charges ShuffledBytes for the surviving
// records (the combiner's whole point is that only its output crosses the
// network), then swaps the combined output in as the new bucket, recycling
// the old bucket's storage as the next bucket's output buffer.
func combineBucket(job *Job, st *mapState, r int, c *Counters) error {
	bucket := st.buckets[r]
	if len(bucket) == 0 {
		return nil
	}
	c.CombineInput += int64(len(bucket))
	out := st.combineOut[:0]
	var err error
	if job.TypedCombiner != nil {
		ce := CombineEmit{out: &out, c: c}
		err = groupLocal(bucket, &st.tab, &st.sc, func(id uint32, grouped []rec) error {
			ce.key = id
			ce.keyLen = int64(len(st.tab.keys[id]))
			return job.TypedCombiner.CombineTyped(st.tab.keys[id], Values{recs: grouped}, &ce)
		})
	} else {
		// Boxed-compat path: box the bucket's values into one shared backing
		// array (capacity-clamped per key), exactly like the pre-typed
		// engine's groupSorted staging.
		backing := make([]any, 0, len(bucket))
		err = groupLocal(bucket, &st.tab, &st.sc, func(id uint32, grouped []rec) error {
			start := len(backing)
			for i := range grouped {
				backing = append(backing, grouped[i].value())
			}
			k := st.tab.keys[id]
			vs, err := job.Combiner.Combine(k, backing[start:len(backing):len(backing)])
			if err != nil {
				return err
			}
			for _, v := range vs {
				out = append(out, rec{key: id, tag: tagAny, val: v})
				c.CombineOutput++
				c.ShuffledBytes += int64(len(k)) + approxValueBytes(v)
			}
			return nil
		})
	}
	if err != nil {
		return err
	}
	st.buckets[r] = out
	st.combineOut = bucket[:0]
	return nil
}

// runReduceTask executes one reduce task with the same retry loop as map
// tasks: a failed attempt is re-run from its immutable partition run. The
// task's pooled group scratch is shared across its attempts (each attempt
// re-scatters from the run) and recycled when the attempt loop ends —
// nothing outside the task ever sees it.
func (e *Engine) runReduceTask(job *Job, taskID int, run []rec, keys []string, jobSpan obs.SpanID, cancel <-chan struct{}) ([]Pair, Counters, faultCharge, error) {
	sc := e.pools.getScratch()
	out, c, fc, err := runTaskAttempts(e, job, PhaseReduce, taskID, jobSpan, cancel, nil, func(attempt int, span obs.SpanID) ([]Pair, Counters, float64, error) {
		return e.tryReduceTask(job, taskID, run, keys, sc, attempt, span, cancel)
	})
	e.pools.putScratch(sc)
	return out, c, fc, err
}

// tryReduceTask groups a partition run by key (sorted, as Hadoop
// guarantees) and invokes the reducer. Grouping is the counting sort of
// groupRun over dense partition-local ids: no key string is hashed or
// compared, and stability keeps value order deterministic (map-task order).
// An injected failure aborts the key loop at a plan-chosen position,
// discarding the attempt's partial output and counters exactly like a dying
// Hadoop reduce attempt.
func (e *Engine) tryReduceTask(job *Job, taskID int, run []rec, keys []string, sc *groupScratch, attempt int, span obs.SpanID, cancel <-chan struct{}) ([]Pair, Counters, float64, error) {
	var c Counters
	var straggler float64
	failAt := -1 // threshold in consumed input records, -1 = never
	if e.cfg.Faults != nil {
		d := e.cfg.Faults.Decide(job.Name, PhaseReduce, taskID, attempt)
		straggler = d.StragglerSeconds
		if straggler > 0 && e.cfg.Tracer != nil {
			e.point(span, obs.PointStraggler, job.Name, taskID, attempt, PhaseReduce, straggler)
		}
		if d.Fail {
			failAt = failIndex(d.FailFrac, len(run))
		}
	}
	var out []Pair
	ctx := &TaskContext{
		JobName:  job.Name,
		TaskID:   taskID,
		cache:    job.Cache,
		outPairs: &out,
	}
	// Boxed-compat reducers get values boxed into one backing array per
	// attempt (capacity-clamped per key). It is freshly allocated — never
	// pooled — because the legacy Reducer contract predates the typed
	// plane's no-retention rule, so a reducer may legitimately keep the
	// slice it was handed.
	var backing []any
	if job.Reducer != nil {
		backing = make([]any, 0, len(run))
	}
	consumed := 0
	err := groupRun(run, keys, sc, func(k string, grouped []rec) error {
		if failAt >= 0 && consumed >= failAt {
			if e.cfg.Tracer != nil {
				e.point(span, obs.PointFault, job.Name, taskID, attempt, PhaseReduce, 0)
			}
			return errInjectedFailure
		}
		if cancelled(cancel) {
			return errTaskCancelled
		}
		consumed += len(grouped)
		c.ReduceInputKeys++
		c.ReduceInputVals += int64(len(grouped))
		if job.TypedReducer != nil {
			return job.TypedReducer.ReduceTyped(ctx, k, Values{recs: grouped})
		}
		start := len(backing)
		for i := range grouped {
			backing = append(backing, grouped[i].value())
		}
		return job.Reducer.Reduce(ctx, k, backing[start:len(backing):len(backing)])
	})
	if err != nil {
		return nil, c, straggler, err
	}
	if failAt >= 0 && consumed >= failAt {
		// FailFrac ≈ 1: the attempt dies after its last key, before the
		// output is committed.
		if e.cfg.Tracer != nil {
			e.point(span, obs.PointFault, job.Name, taskID, attempt, PhaseReduce, 0)
		}
		return nil, c, straggler, errInjectedFailure
	}
	return out, c, straggler, nil
}
