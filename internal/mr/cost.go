package mr

// CostModel charges a modeled wall-clock cost to every job, approximating a
// Hadoop deployment: a fixed per-job startup latency (JVM spawn, scheduling,
// HDFS round trips), a map-side compute cost proportional to input records
// divided by the map parallelism, a shuffle cost proportional to bytes moved,
// and a reduce-side cost proportional to reduce input divided by reducer
// count.
//
// The absolute numbers are not meant to match the paper's cluster; the model
// exists so that relative comparisons — "P3C+-MR runs many more jobs than
// P3C+-MR-Light and is therefore slower", "BoW scales with samples per
// reducer" — reproduce the paper's Figure 7 shape deterministically.
type CostModel struct {
	// JobStartupSeconds is charged once per job (Hadoop: ~5–20 s).
	JobStartupSeconds float64
	// SecondsPerMapRecord is the per-record map cost before dividing by
	// MapSlots.
	SecondsPerMapRecord float64
	// SecondsPerShuffleByte models network + disk for the shuffle.
	SecondsPerShuffleByte float64
	// SecondsPerReduceValue is the per-value reduce cost before dividing by
	// the job's reducer count.
	SecondsPerReduceValue float64
	// MapSlots is the modeled cluster-wide map parallelism. Zero means 112
	// (the paper's reducer count, used as slot count too).
	MapSlots int
}

// DefaultCostModel returns a model with Hadoop-flavoured constants.
func DefaultCostModel() CostModel {
	return CostModel{
		JobStartupSeconds:     8,
		SecondsPerMapRecord:   2e-5,
		SecondsPerShuffleByte: 2e-8,
		SecondsPerReduceValue: 1e-5,
		MapSlots:              112,
	}
}

// MapJobsSeconds models the cost of a pipeline of map-dominated jobs over n
// records: per job, one startup charge plus a full map pass divided across
// the map slots. This is the extrapolation form used to project a locally
// measured job count onto paper-sized inputs (e.g. the 10⁹-point run of
// §7.5.2, which no single machine can hold).
func (m CostModel) MapJobsSeconds(jobs int, n float64) float64 {
	slots := m.MapSlots
	if slots <= 0 {
		slots = 112
	}
	return float64(jobs) * (m.JobStartupSeconds + m.SecondsPerMapRecord*n/float64(slots))
}

// Enabled reports whether the model charges anything at all.
func (m CostModel) Enabled() bool {
	return m.JobStartupSeconds != 0 || m.SecondsPerMapRecord != 0 ||
		m.SecondsPerShuffleByte != 0 || m.SecondsPerReduceValue != 0
}

// approxValueBytes estimates the serialized size of a shuffle value for the
// I/O accounting (charged inline at emit / combine time, so shuffle buffers
// are traversed exactly once). It understands the value types the pipeline
// actually ships; anything else is charged a flat 16 bytes.
func approxValueBytes(v any) int64 {
	switch x := v.(type) {
	case nil:
		return 0
	case int:
		return 8
	case int64:
		return 8
	case float64:
		return 8
	case []float64:
		return int64(8 * len(x))
	case []int64:
		return int64(8 * len(x))
	case []uint64:
		return int64(8 * len(x))
	case string:
		return int64(len(x))
	default:
		return 16
	}
}

// jobSeconds computes the modeled cost of one finished job: the successful
// work in c, plus the work of failed task attempts and the straggler delays
// in fault. Re-executed attempts burn real cluster time even though their
// output is discarded, so Figure-7-style runtime-shape experiments see
// retries as slowdown — exactly as Hadoop's error tolerance behaves — while
// the job's Counters stay an exact description of the committed computation.
func (m CostModel) jobSeconds(job *Job, c Counters, fault faultCharge, numReducers int) float64 {
	if !m.Enabled() {
		return 0
	}
	slots := m.MapSlots
	if slots <= 0 {
		slots = 112
	}
	mapPar := len(job.Splits)
	if mapPar > slots {
		mapPar = slots
	}
	if mapPar <= 0 {
		mapPar = 1
	}
	red := numReducers
	if red <= 0 {
		red = 1
	}
	charge := func(c Counters) float64 {
		s := m.SecondsPerMapRecord * float64(c.MapInputRecords) / float64(mapPar)
		s += m.SecondsPerShuffleByte * float64(c.ShuffledBytes)
		s += m.SecondsPerReduceValue * float64(c.ReduceInputVals) / float64(red)
		return s
	}
	return m.JobStartupSeconds + charge(c) + charge(fault.Wasted) + fault.Straggler
}
