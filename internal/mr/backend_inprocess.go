package mr

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"p3cmr/internal/obs"
)

// inprocessBackend is the default execution backend: map and reduce tasks
// run as goroutines gated by the engine-wide semaphore, the shuffle merges
// in RAM through the typed record plane (plane.go), and buffers recycle
// through the engine pools. This is the PR 1–6 engine core, extracted
// behind the Backend seam unchanged.
type inprocessBackend struct{}

func (inprocessBackend) Name() string { return "inprocess" }

func (inprocessBackend) execute(rc *runContext) ([]Pair, Counters, faultCharge, error) {
	e, job := rc.e, rc.job
	tr := e.cfg.Tracer
	mapOnly, nb, numReducers := rc.mapOnly, rc.nb, rc.numReducers
	jobSpan, cancelCh := rc.jobSpan, rc.cancelCh

	// --- Map phase -----------------------------------------------------------
	// Lock-free collection: every map task owns one slot of mapStates /
	// mapCounters (single writer per slot, synchronized by wg.Wait's
	// happens-before edge), so the shuffle needs no global mutex. Task i's
	// slot holds its typed output pre-partitioned into per-reducer buffers
	// plus the task-local key table (see plane.go).
	mapStates := make([]*mapState, len(job.Splits))
	mapCounters := make([]Counters, len(job.Splits))
	mapFaults := make([]faultCharge, len(job.Splits))
	var wg sync.WaitGroup

mapLaunch:
	for i, split := range job.Splits {
		select {
		case <-cancelCh:
			break mapLaunch
		case e.sem <- struct{}{}:
		}
		wg.Add(1)
		go func(i int, split *Split) {
			defer wg.Done()
			defer func() { <-e.sem }()
			st, c, fc, err := e.runMapTask(job, split, mapOnly, nb, numReducers, jobSpan, cancelCh)
			mapFaults[i] = fc
			if err != nil {
				if !errors.Is(err, errTaskCancelled) {
					rc.setErr(fmt.Errorf("mr: job %q map task %d: %w", job.Name, split.ID, err))
				}
				return
			}
			mapStates[i] = st
			mapCounters[i] = c
		}(i, split)
	}
	wg.Wait()
	if err := rc.firstErr(); err != nil {
		// Committed states of sibling tasks were never merged; recycle them.
		for _, st := range mapStates {
			e.pools.putMapState(st)
		}
		return nil, Counters{}, faultCharge{}, err
	}

	var counters Counters
	var fault faultCharge
	for i := range mapCounters {
		counters.Add(mapCounters[i])
		fault.add(mapFaults[i])
	}

	var outPairs []Pair
	if mapOnly {
		// Map-only jobs materialize the boxed output straight from the task
		// buffers (bucket 0 holds every record), in split order.
		total := 0
		for _, st := range mapStates {
			total += len(st.buckets[0])
		}
		outPairs = make([]Pair, 0, total)
		for _, st := range mapStates {
			for i := range st.buckets[0] {
				r := &st.buckets[0][i]
				outPairs = append(outPairs, Pair{Key: st.tab.keys[r.key], Value: r.value()})
			}
		}
		// Pairs hold their own boxed values and (immutable) key strings, so
		// the states can recycle immediately.
		for _, st := range mapStates {
			e.pools.putMapState(st)
		}
		counters.OutputRecords = int64(len(outPairs))
		return outPairs, counters, fault, nil
	}

	// The shuffle/merge step gets its own span (Task -1, Phase "shuffle")
	// carrying the job's shuffle volume — mirroring the per-phase
	// breakdown a Hadoop job page shows.
	var shufSpan obs.SpanID
	var shufStart time.Time
	if tr != nil {
		shufSpan = obs.NewSpanID()
		tr.Begin(obs.Start{ID: shufSpan, Parent: jobSpan, Kind: obs.KindTask,
			Name: job.Name, Task: -1, Phase: "shuffle"})
		shufStart = obs.Now()
	}

	// Merge the per-task buffers into one contiguous run per reducer, in
	// split order: value order within a key is therefore a deterministic
	// function of the split layout, independent of Parallelism and of
	// task completion order. mergeShuffle also renumbers record keys into
	// dense partition-local ids in ascending key order, which is what
	// lets the reduce side group without touching key strings.
	sh := e.pools.getShuffle()
	mergeShuffle(sh, mapStates, nb, numReducers)
	// The merge copied every record out of the task states; recycle them
	// before reduce tasks start (the barrier the pool contract names).
	for _, st := range mapStates {
		e.pools.putMapState(st)
	}
	if tr != nil {
		tr.End(obs.End{ID: shufSpan, Kind: obs.KindTask, Name: job.Name,
			Task: -1, Phase: "shuffle", Outcome: obs.OutcomeOK,
			RealSeconds: obs.Since(shufStart).Seconds(),
			Counters:    Counters{ShuffledBytes: counters.ShuffledBytes}})
	}

	// --- Shuffle + reduce phase ------------------------------------------
	// Same single-writer-per-slot scheme: reducer r writes redOuts[r],
	// and the final concatenation in reducer order keeps job output
	// deterministic without a collection mutex. Reduce tasks share the
	// map tasks' retry budget and cancellation channel: a reduce attempt
	// re-runs from its immutable partition run (see Reducer contract).
	redOuts := make([][]Pair, numReducers)
	redCounters := make([]Counters, numReducers)
	redFaults := make([]faultCharge, numReducers)
	var rwg sync.WaitGroup
redLaunch:
	for r := 0; r < numReducers; r++ {
		if len(sh.runs[r]) == 0 {
			continue
		}
		select {
		case <-cancelCh:
			break redLaunch
		case e.sem <- struct{}{}:
		}
		rwg.Add(1)
		go func(r int, run []rec, keys []string) {
			defer rwg.Done()
			defer func() { <-e.sem }()
			pout, c, fc, err := e.runReduceTask(job, r, run, keys, jobSpan, cancelCh)
			redFaults[r] = fc
			if err != nil {
				if !errors.Is(err, errTaskCancelled) {
					rc.setErr(fmt.Errorf("mr: job %q reduce task %d: %w", job.Name, r, err))
				}
				return
			}
			redOuts[r] = pout
			redCounters[r] = c
		}(r, sh.runs[r], sh.runKeys[r])
	}
	rwg.Wait()
	// All reduce tasks (and their retries, which re-read the immutable
	// runs) are finished: the shuffle state can recycle. Reducer output
	// pairs box their values and reference immutable key strings, so
	// nothing they hold aliases the recycled buffers.
	e.pools.putShuffle(sh)
	if err := rc.firstErr(); err != nil {
		return nil, Counters{}, faultCharge{}, err
	}
	total := 0
	for r := range redOuts {
		counters.Add(redCounters[r])
		fault.add(redFaults[r])
		total += len(redOuts[r])
	}
	outPairs = make([]Pair, 0, total)
	for r := range redOuts {
		outPairs = append(outPairs, redOuts[r]...)
	}
	counters.OutputRecords = int64(len(outPairs))
	return outPairs, counters, fault, nil
}
