package mr

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"p3cmr/internal/obs"
)

// TestTraceSpanStructure: a traced job must produce a structurally valid
// stream — job span at the root, one task span per map task and non-empty
// reduce partition, a shuffle pseudo-task — whose job-level End carries
// exactly the job's output counters.
func TestTraceSpanStructure(t *testing.T) {
	const n, numSplits, numReducers = 1200, 6, 3
	mem := obs.NewMemTracer()
	engine := NewEngine(Config{Parallelism: 4, Tracer: mem})
	out, err := engine.Run(chaosJob(n, numSplits, numReducers))
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Validate(); err != nil {
		t.Fatalf("invalid span stream: %v", err)
	}

	jobs := mem.SpansOf(obs.KindJob)
	if len(jobs) != 1 {
		t.Fatalf("got %d job spans, want 1", len(jobs))
	}
	job := jobs[0]
	if job.Name != "chaos-wordcount" || job.Parent != 0 {
		t.Errorf("job span = %+v, want root span named chaos-wordcount", job)
	}
	jobEnd, ok := mem.EndOf(job.ID)
	if !ok {
		t.Fatal("job span never closed")
	}
	if jobEnd.Outcome != obs.OutcomeOK {
		t.Errorf("job outcome = %v, want ok", jobEnd.Outcome)
	}
	if jobEnd.Counters != out.Counters {
		t.Errorf("job span counters %+v != output counters %+v", jobEnd.Counters, out.Counters)
	}
	if jobEnd.RealSeconds <= 0 {
		t.Error("job span has no real duration")
	}

	var mapTasks, redTasks, shuffles int
	for _, s := range mem.SpansOf(obs.KindTask) {
		if s.Parent != job.ID {
			t.Errorf("task span %+v not parented by the job span", s)
		}
		switch s.Phase {
		case "map":
			mapTasks++
		case "reduce":
			redTasks++
		case "shuffle":
			shuffles++
			if s.Task != -1 {
				t.Errorf("shuffle span Task = %d, want -1", s.Task)
			}
			e, _ := mem.EndOf(s.ID)
			if e.Counters.ShuffledBytes != out.Counters.ShuffledBytes {
				t.Errorf("shuffle span bytes = %d, want %d", e.Counters.ShuffledBytes, out.Counters.ShuffledBytes)
			}
		default:
			t.Errorf("unexpected task phase %q", s.Phase)
		}
	}
	if mapTasks != numSplits {
		t.Errorf("map task spans = %d, want %d", mapTasks, numSplits)
	}
	// 17 distinct keys + "total" spread over 3 reducers: every partition is
	// non-empty, so every reducer ran.
	if redTasks != numReducers {
		t.Errorf("reduce task spans = %d, want %d", redTasks, numReducers)
	}
	if shuffles != 1 {
		t.Errorf("shuffle spans = %d, want 1", shuffles)
	}
}

// TestTraceFaultOutcomesAndPoints: injected failures must show up as
// fault-outcome attempt spans carrying the discarded counters, point events
// at the actual decision sites (with combine faults attributed to the
// combine phase), retry markers, and straggler charges.
func TestTraceFaultOutcomesAndPoints(t *testing.T) {
	plan := FaultPlanFunc(func(j string, phase TaskPhase, task, attempt int) FaultDecision {
		switch {
		case phase == PhaseMap && task == 2 && attempt == 0:
			return FaultDecision{Fail: true, FailFrac: 1} // dies after the full split
		case phase == PhaseCombine && task == 4 && attempt == 0:
			return FaultDecision{Fail: true}
		case phase == PhaseReduce && task == 1 && attempt == 0:
			return FaultDecision{StragglerSeconds: 2.5}
		}
		return FaultDecision{}
	})
	mem := obs.NewMemTracer()
	engine := NewEngine(Config{Parallelism: 4, Tracer: mem, Faults: plan})
	if _, err := engine.Run(chaosJob(1000, 5, 2)); err != nil {
		t.Fatal(err)
	}
	if err := mem.Validate(); err != nil {
		t.Fatalf("invalid span stream: %v", err)
	}

	// Map task 2: attempt 0 faulted with its work wasted, attempt 1 clean.
	var sawFaultEnd, sawRetrySuccess bool
	for _, e := range mem.Ends() {
		if e.Kind != obs.KindTask || e.Phase != "map" || e.Task != 2 {
			continue
		}
		switch e.Attempt {
		case 0:
			if e.Outcome != obs.OutcomeFault {
				t.Errorf("attempt 0 outcome = %v, want fault", e.Outcome)
			}
			if e.Wasted.MapInputRecords != 200 {
				t.Errorf("attempt 0 wasted mapIn = %d, want 200", e.Wasted.MapInputRecords)
			}
			if e.Counters != (Counters{}) {
				t.Errorf("faulted attempt committed counters: %+v", e.Counters)
			}
			sawFaultEnd = true
		case 1:
			if e.Outcome != obs.OutcomeOK {
				t.Errorf("attempt 1 outcome = %v, want ok", e.Outcome)
			}
			if e.Retries != 1 {
				t.Errorf("attempt 1 retries = %d, want 1", e.Retries)
			}
			sawRetrySuccess = true
		}
	}
	if !sawFaultEnd || !sawRetrySuccess {
		t.Fatalf("missing attempt spans for map task 2: fault=%v success=%v", sawFaultEnd, sawRetrySuccess)
	}

	points := map[string]int{}
	var stragglerSeconds float64
	for _, p := range mem.Points() {
		points[fmt.Sprintf("%s/%s", p.Kind, p.Phase)]++
		if p.Kind == obs.PointStraggler {
			stragglerSeconds += p.Seconds
		}
	}
	for _, want := range []string{"fault/map", "fault/combine", "straggler/reduce"} {
		if points[want] == 0 {
			t.Errorf("no %s point event (got %v)", want, points)
		}
	}
	// Retry points carry the task's phase (a combine fault retries the whole
	// map task), so both faults above surface as map retries.
	if points["retry/map"] != 2 {
		t.Errorf("retry/map points = %d, want 2 (got %v)", points["retry/map"], points)
	}
	if stragglerSeconds != 2.5 {
		t.Errorf("straggler points carry %g s, want 2.5", stragglerSeconds)
	}
}

// TestTraceErrorPathsCloseSpans: both real task errors and fault exhaustion
// must close every opened span, ending the job span with an error outcome
// that carries the job error text.
func TestTraceErrorPathsCloseSpans(t *testing.T) {
	t.Run("real-error", func(t *testing.T) {
		mem := obs.NewMemTracer()
		job := &Job{
			Name:   "doomed",
			Splits: makeSplits(100, 2),
			Mapper: MapperFunc(func(ctx *TaskContext, global int, row []float64) error {
				if ctx.TaskID == 1 {
					return errors.New("boom")
				}
				return nil
			}),
		}
		_, err := NewEngine(Config{Parallelism: 2, Tracer: mem}).Run(job)
		if err == nil {
			t.Fatal("job must fail")
		}
		if verr := mem.Validate(); verr != nil {
			t.Fatalf("error path left the stream invalid: %v", verr)
		}
		jobEnd, ok := mem.EndOf(mem.SpansOf(obs.KindJob)[0].ID)
		if !ok || jobEnd.Outcome != obs.OutcomeError || jobEnd.Err == "" {
			t.Errorf("job end = %+v, want error outcome with message", jobEnd)
		}
	})
	t.Run("fault-exhaustion", func(t *testing.T) {
		mem := obs.NewMemTracer()
		plan := FaultPlanFunc(func(j string, phase TaskPhase, task, attempt int) FaultDecision {
			if phase == PhaseReduce {
				return FaultDecision{Fail: true, FailFrac: 0.5}
			}
			return FaultDecision{}
		})
		_, err := NewEngine(Config{Parallelism: 2, Tracer: mem, Faults: plan, MaxAttempts: 3}).Run(chaosJob(500, 4, 1))
		if err == nil {
			t.Fatal("doomed job must fail")
		}
		if verr := mem.Validate(); verr != nil {
			t.Fatalf("exhaustion path left the stream invalid: %v", verr)
		}
		// All three attempts must appear, all faulted, with no retry point
		// after the final one.
		var faulted, retryPoints int
		for _, e := range mem.Ends() {
			if e.Kind == obs.KindTask && e.Phase == "reduce" && e.Outcome == obs.OutcomeFault {
				faulted++
			}
		}
		for _, p := range mem.Points() {
			if p.Kind == obs.PointRetry {
				retryPoints++
			}
		}
		if faulted != 3 {
			t.Errorf("faulted attempts = %d, want 3", faulted)
		}
		if retryPoints != 2 {
			t.Errorf("retry points = %d, want 2 (no retry after the final attempt)", retryPoints)
		}
	})
}

// TestChaosTraceIdentity is the acceptance oracle for "tracing is pure
// observation": with a fault plan injecting retries and stragglers, output
// pairs, counters, wasted counters and simulated seconds must be
// bit-identical with tracing on and off, at every parallelism level.
func TestChaosTraceIdentity(t *testing.T) {
	plans := []struct {
		name string
		plan FaultPlan
	}{
		{"fault-free", nil},
		{"mixed", RateFaultPlan{MapRate: 0.4, CombineRate: 0.3, ReduceRate: 0.4,
			StragglerRate: 0.5, StragglerSeconds: 2, Seed: 21}},
	}
	for _, pc := range plans {
		for _, par := range []int{1, 8} {
			name := fmt.Sprintf("%s/par=%d", pc.name, par)
			cfg := Config{Parallelism: par, Faults: pc.plan, MaxAttempts: 12, Cost: DefaultCostModel()}
			untraced, err := NewEngine(cfg).Run(chaosJob(2000, 9, 4))
			if err != nil {
				t.Fatalf("%s: untraced: %v", name, err)
			}
			tcfg := cfg
			mem := obs.NewMemTracer()
			tcfg.Tracer = mem
			tcfg.Metrics = obs.NewRegistry()
			traced, err := NewEngine(tcfg).Run(chaosJob(2000, 9, 4))
			if err != nil {
				t.Fatalf("%s: traced: %v", name, err)
			}
			if !reflect.DeepEqual(traced.Pairs, untraced.Pairs) {
				t.Errorf("%s: tracing changed output pairs", name)
			}
			if traced.Counters != untraced.Counters {
				t.Errorf("%s: tracing changed counters:\n traced %+v\nuntraced %+v", name, traced.Counters, untraced.Counters)
			}
			if traced.Wasted != untraced.Wasted {
				t.Errorf("%s: tracing changed wasted counters:\n traced %+v\nuntraced %+v", name, traced.Wasted, untraced.Wasted)
			}
			if traced.SimulatedSeconds != untraced.SimulatedSeconds {
				t.Errorf("%s: tracing changed simulated seconds: %g vs %g", name, traced.SimulatedSeconds, untraced.SimulatedSeconds)
			}
			if err := mem.Validate(); err != nil {
				t.Errorf("%s: invalid span stream: %v", name, err)
			}
			if pc.plan != nil && traced.Counters.TaskRetries == 0 {
				t.Errorf("%s: fault plan injected no retries — identity proved nothing", name)
			}
		}
	}
}

// TestEngineMetrics: the registry aggregates must match the engine's own
// accounting across multiple jobs, including wasted work under faults.
func TestEngineMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	engine := NewEngine(Config{Parallelism: 4, Metrics: reg,
		Faults: RateFaultPlan{MapRate: 0.4, Seed: 5}, MaxAttempts: 12, Cost: DefaultCostModel()})
	for i := 0; i < 2; i++ {
		if _, err := engine.Run(chaosJob(800, 4, 2)); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	tot := engine.TotalCounters()
	wasted := engine.TotalWasted()
	checks := map[string]int64{
		"mr_jobs_total":               2,
		"mr_map_input_records_total":  tot.MapInputRecords,
		"mr_map_output_records_total": tot.MapOutputRecords,
		"mr_output_records_total":     tot.OutputRecords,
		"mr_shuffled_bytes_total":     tot.ShuffledBytes,
		"mr_task_retries_total":       tot.TaskRetries,
		"mr_wasted_records_total":     wasted.MapInputRecords + wasted.ReduceInputVals,
	}
	for name, want := range checks {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if tot.TaskRetries == 0 {
		t.Error("fault plan injected no retries")
	}
	if got, want := snap.Gauges["mr_simulated_seconds_total"], engine.TotalSimulatedSeconds(); got != want {
		t.Errorf("mr_simulated_seconds_total = %g, want %g", got, want)
	}
	h := snap.Histograms["mr_job_real_seconds"]
	if h.Count != 2 {
		t.Errorf("mr_job_real_seconds count = %d, want 2", h.Count)
	}
}
