package signature

import (
	"math"
	"math/rand"
	"testing"
)

// TestRedundancyPaperExample reconstructs Figure 2 / §4.2.1: two hidden
// clusters C1 ({a1,a3}) and C2 ({a1,a2}) of 50 points each produce three
// 2-signatures; S3 (the {a2,a3} intersection artifact) must be identified
// as redundant to S1 and S2.
func TestRedundancyPaperExample(t *testing.T) {
	const n = 100
	rng := rand.New(rand.NewSource(1))
	// Intervals of width 0.1 as in the example.
	i1 := iv(0, 0.45, 0.55) // I1 on a1 (shared by both clusters)
	i2 := iv(1, 0.2, 0.3)   // I2 on a2 (C2's)
	i3 := iv(2, 0.7, 0.8)   // I3 on a3 (C1's)
	s1 := New(i1, i3)
	s2 := New(i1, i2)
	s3 := New(i2, i3)

	// Generate the example's data: C1 uniform in I1×I3, uniform on a2; C2
	// uniform in I1×I2, uniform on a3.
	rows := make([]float64, 0, n*3)
	unif := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }
	for i := 0; i < 50; i++ {
		rows = append(rows, unif(0.45, 0.55), rng.Float64(), unif(0.7, 0.8))
	}
	for i := 0; i < 50; i++ {
		rows = append(rows, unif(0.45, 0.55), unif(0.2, 0.3), rng.Float64())
	}

	sigs := []Signature{s1, s2, s3}
	supports := CountSupportsNaive(sigs, rows, 3)
	// Each cluster's own signature holds all 50 members plus whatever the
	// other cluster leaks in on its uniform attribute (~50·0.1).
	if supports[0] < 50 || supports[1] < 50 {
		t.Fatalf("cluster supports = %v", supports)
	}
	// The artifact's support is roughly 50·0.1 + 50·0.1 = 10 (§4.2.1).
	if supports[2] < 3 || supports[2] > 25 {
		t.Fatalf("artifact support = %d, want ≈10", supports[2])
	}

	ratios := make([]float64, 3)
	in := make([]RedundancyInput, 3)
	for i, s := range sigs {
		ratios[i] = InterestRatio(float64(supports[i]), s, n)
		in[i] = RedundancyInput{Sig: s, Support: supports[i], Ratio: ratios[i]}
	}
	// Paper: S3 <r S1 and S3 <r S2.
	if !(ratios[2] < ratios[0] && ratios[2] < ratios[1]) {
		t.Fatalf("ratio ordering wrong: %v", ratios)
	}

	acc := NewCoverageAccumulator(sigs, ratios)
	r := NewRSSC(sigs)
	var mask []uint64
	for i := 0; i < n; i++ {
		mask = r.Query(mask, rows[i*3:(i+1)*3])
		acc.Add(mask)
	}
	red := DecideRedundant(in, Uncovered{Count: acc.Counts()}, 1.0)
	if !red[2] {
		t.Errorf("S3 must be redundant (uncovered=%d)", acc.Counts()[2])
	}
	if red[0] || red[1] {
		t.Errorf("S1/S2 must not be redundant (uncovered=%v)", acc.Counts())
	}
}

func TestInterestRatio(t *testing.T) {
	s := New(iv(0, 0, 0.1), iv(1, 0, 0.1))
	// Eq. 6/7: ratio = supp / (n·vol) = 50 / (100·0.01) = 50.
	if got := InterestRatio(50, s, 100); math.Abs(got-50) > 1e-9 {
		t.Errorf("ratio = %g, want 50", got)
	}
	if got := InterestRatio(5, Signature{}, 0); !math.IsInf(got, 1) {
		t.Errorf("zero expectation with support must be +Inf, got %g", got)
	}
	if got := InterestRatio(0, Signature{}, 0); got != 0 {
		t.Errorf("zero/zero = %g", got)
	}
}

func TestCoverageSupersetExcluded(t *testing.T) {
	// A lattice superset with a higher ratio must NOT cover its subset:
	// this is the overlap-artifact protection.
	sub := New(iv(0, 0, 0.5))
	super := New(iv(0, 0, 0.5), iv(1, 0, 0.5))
	sigs := []Signature{sub, super}
	ratios := []float64{2, 10}
	acc := NewCoverageAccumulator(sigs, ratios)
	r := NewRSSC(sigs)
	// A point in both: sub must still count as uncovered.
	mask := r.Query(nil, []float64{0.25, 0.25})
	acc.Add(mask)
	if acc.Counts()[0] != 1 {
		t.Errorf("subset covered by its superset: counts=%v", acc.Counts())
	}
	// The superset is uncovered too (nothing else covers it).
	if acc.Counts()[1] != 1 {
		t.Errorf("superset should be uncovered: counts=%v", acc.Counts())
	}
}

func TestCoverageByUnrelatedHigherRatio(t *testing.T) {
	a := New(iv(0, 0, 0.5))
	b := New(iv(1, 0, 0.5)) // different subspace, higher ratio
	sigs := []Signature{a, b}
	ratios := []float64{2, 10}
	acc := NewCoverageAccumulator(sigs, ratios)
	r := NewRSSC(sigs)
	mask := r.Query(nil, []float64{0.25, 0.25}) // in both
	acc.Add(mask)
	if acc.Counts()[0] != 0 {
		t.Errorf("a must be covered by b: counts=%v", acc.Counts())
	}
	mask = r.Query(mask, []float64{0.25, 0.75}) // only in a
	acc.Add(mask)
	if acc.Counts()[0] != 1 {
		t.Errorf("a alone must be uncovered: counts=%v", acc.Counts())
	}
}

func TestDecideRedundantCoverageFraction(t *testing.T) {
	s := New(iv(0, 0, 0.5))
	in := []RedundancyInput{{Sig: s, Support: 100, Ratio: 2}}
	// 40 uncovered of 100: redundant at coverage 0.5 (allowed 50), not at
	// coverage 0.7 (allowed 30).
	if got := DecideRedundant(in, Uncovered{Count: []int64{40}}, 0.5); !got[0] {
		t.Error("40/100 uncovered must be redundant at coverage 0.5")
	}
	if got := DecideRedundant(in, Uncovered{Count: []int64{40}}, 0.7); got[0] {
		t.Error("40/100 uncovered must survive at coverage 0.7")
	}
	// Zero support is always redundant.
	in[0].Support = 0
	if got := DecideRedundant(in, Uncovered{Count: []int64{0}}, 0.5); !got[0] {
		t.Error("zero-support signature must be redundant")
	}
}

func TestSortByRatioDesc(t *testing.T) {
	a := RedundancyInput{Sig: New(iv(0, 0, 0.1)), Ratio: 1}
	b := RedundancyInput{Sig: New(iv(1, 0, 0.1)), Ratio: 5}
	c := RedundancyInput{Sig: New(iv(2, 0, 0.1)), Ratio: 3}
	in := []RedundancyInput{a, b, c}
	SortByRatioDesc(in)
	if in[0].Ratio != 5 || in[1].Ratio != 3 || in[2].Ratio != 1 {
		t.Fatalf("order = %v %v %v", in[0].Ratio, in[1].Ratio, in[2].Ratio)
	}
}
