package signature

import (
	"math/bits"
	"sort"
)

// RSSC is the Rapid Signature Support Counter of §5.3: for a fixed set of
// signatures it precomputes, per relevant attribute, a binning derived from
// all interval endpoints and a bit vector per bin. Querying a point then
// costs one binary search plus one AND per relevant attribute, and the
// surviving bits identify exactly the signatures whose support set contains
// the point (Figure 3). A bit is 1 when the signature either does not
// constrain the attribute or its interval covers the bin.
//
// Bins are exact: interval bounds are closed, so every endpoint becomes a
// singleton region and the gaps between endpoints become open regions —
// points exactly on a boundary are classified correctly.
type RSSC struct {
	sigs  []Signature
	words int
	// attrs lists the constrained attributes in ascending order; per attr:
	// boundaries (sorted unique endpoint values) and masks[region] bit sets.
	attrs []rsscAttr
	// full is the all-ones mask over len(sigs) bits.
	full []uint64
}

type rsscAttr struct {
	attr       int
	boundaries []float64
	masks      [][]uint64 // len == 2*len(boundaries)+1
}

// NewRSSC builds the counter for the given signatures. An empty signature
// list yields a counter whose queries return the empty set.
func NewRSSC(sigs []Signature) *RSSC {
	n := len(sigs)
	words := (n + 63) / 64
	r := &RSSC{sigs: sigs, words: words, full: make([]uint64, words)}
	for j := 0; j < n; j++ {
		r.full[j/64] |= 1 << (j % 64)
	}

	// Collect endpoints per constrained attribute.
	perAttr := make(map[int][]float64)
	for _, s := range sigs {
		for _, iv := range s.Intervals {
			perAttr[iv.Attr] = append(perAttr[iv.Attr], iv.Lo, iv.Hi)
		}
	}
	attrs := make([]int, 0, len(perAttr))
	for a := range perAttr {
		attrs = append(attrs, a)
	}
	sort.Ints(attrs)

	for _, a := range attrs {
		bs := dedupFloats(perAttr[a])
		ra := rsscAttr{attr: a, boundaries: bs}
		regions := 2*len(bs) + 1
		ra.masks = make([][]uint64, regions)
		for reg := 0; reg < regions; reg++ {
			mask := make([]uint64, words)
			copy(mask, r.full)
			for j, s := range sigs {
				iv, ok := s.IntervalOn(a)
				if !ok {
					continue // attribute irrelevant for s: bit stays 1
				}
				if !regionInside(reg, bs, iv) {
					mask[j/64] &^= 1 << (j % 64)
				}
			}
			ra.masks[reg] = mask
		}
		r.attrs = append(r.attrs, ra)
	}
	return r
}

// dedupFloats sorts and removes duplicates.
func dedupFloats(xs []float64) []float64 {
	sort.Float64s(xs)
	out := xs[:0]
	for i, v := range xs {
		if i == 0 || v != xs[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// regionIndex maps x onto the region scheme over sorted boundaries bs:
// region 0 = (−inf, bs[0]), 2i+1 = {bs[i]}, 2i+2 = (bs[i], bs[i+1]),
// 2·len(bs) = (bs[last], +inf).
func regionIndex(x float64, bs []float64) int {
	i := sort.SearchFloat64s(bs, x)
	if i < len(bs) && bs[i] == x {
		return 2*i + 1
	}
	return 2 * i
}

// regionInside reports whether every point of the region lies within the
// closed interval iv.
func regionInside(reg int, bs []float64, iv Interval) bool {
	if reg%2 == 1 {
		return iv.Contains(bs[reg/2])
	}
	half := reg / 2
	// Open region (lo, hi) with lo = bs[half-1] (or −inf) and hi = bs[half]
	// (or +inf). Because all interval endpoints are boundaries, the region
	// is inside iff both flanking boundaries exist and lie within [Lo,Hi].
	if half == 0 || half == len(bs) {
		return false
	}
	return bs[half-1] >= iv.Lo && bs[half] <= iv.Hi
}

// NumSignatures returns the number of indexed signatures.
func (r *RSSC) NumSignatures() int { return len(r.sigs) }

// Signatures returns the indexed signatures (shared storage).
func (r *RSSC) Signatures() []Signature { return r.sigs }

// Query ANDs the per-attribute masks for point x into dst (allocated when
// nil or of the wrong size) and returns it. Bit j set means x ∈
// SuppSet(sigs[j]).
func (r *RSSC) Query(dst []uint64, x []float64) []uint64 {
	if len(dst) != r.words {
		dst = make([]uint64, r.words)
	}
	copy(dst, r.full)
	for i := range r.attrs {
		ra := &r.attrs[i]
		mask := ra.masks[regionIndex(x[ra.attr], ra.boundaries)]
		allZero := true
		for w := range dst {
			dst[w] &= mask[w]
			if dst[w] != 0 {
				allZero = false
			}
		}
		if allZero {
			return dst
		}
	}
	return dst
}

// AddTo increments counts[j] for every set bit j of mask — accumulating the
// per-signature supports a mapper maintains.
func AddTo(counts []int64, mask []uint64) {
	for w, word := range mask {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			counts[w*64+b]++
			word &= word - 1
		}
	}
}

// Ones returns the indices of the set bits of mask, appended to dst.
func Ones(dst []int, mask []uint64) []int {
	for w, word := range mask {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			dst = append(dst, w*64+b)
			word &= word - 1
		}
	}
	return dst
}

// PopCount returns the number of set bits in mask.
func PopCount(mask []uint64) int {
	n := 0
	for _, w := range mask {
		n += bits.OnesCount64(w)
	}
	return n
}

// CountSupportsNaive computes the supports of sigs over row-major data by
// direct containment checks — the "simple approach" the RSSC replaces; kept
// as the reference implementation for tests and as the fallback for tiny
// candidate sets.
func CountSupportsNaive(sigs []Signature, rows []float64, dim int) []int64 {
	counts := make([]int64, len(sigs))
	n := len(rows) / dim
	for i := 0; i < n; i++ {
		x := rows[i*dim : (i+1)*dim]
		for j, s := range sigs {
			if s.Contains(x) {
				counts[j]++
			}
		}
	}
	return counts
}
