package signature

import (
	"math/rand"
	"testing"
)

// benchSigs builds a candidate set shaped like a real proving batch.
func benchSigs(numSigs, dim int) []Signature {
	rng := rand.New(rand.NewSource(1))
	sigs := make([]Signature, 0, numSigs)
	for len(sigs) < numSigs {
		p := 1 + rng.Intn(3)
		var ivs []Interval
		used := map[int]bool{}
		for len(ivs) < p {
			a := rng.Intn(dim)
			if used[a] {
				continue
			}
			used[a] = true
			lo := float64(rng.Intn(8)) / 10
			ivs = append(ivs, Interval{Attr: a, Lo: lo, Hi: lo + 0.2})
		}
		sigs = append(sigs, New(ivs...))
	}
	return Dedup(sigs)
}

func BenchmarkRSSCBuild(b *testing.B) {
	for _, n := range []int{100, 1000, 5000} {
		sigs := benchSigs(n, 20)
		b.Run(itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				NewRSSC(sigs)
			}
		})
	}
}

func BenchmarkRSSCQuery(b *testing.B) {
	for _, n := range []int{100, 1000, 5000} {
		sigs := benchSigs(n, 20)
		r := NewRSSC(sigs)
		rng := rand.New(rand.NewSource(2))
		x := make([]float64, 20)
		for i := range x {
			x[i] = rng.Float64()
		}
		var mask []uint64
		b.Run(itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mask = r.Query(mask, x)
			}
		})
	}
}

func BenchmarkNaiveContainment(b *testing.B) {
	for _, n := range []int{100, 1000, 5000} {
		sigs := benchSigs(n, 20)
		rng := rand.New(rand.NewSource(2))
		x := make([]float64, 20)
		for i := range x {
			x[i] = rng.Float64()
		}
		b.Run(itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, s := range sigs {
					s.Contains(x)
				}
			}
		})
	}
}

func BenchmarkGenerateCandidates(b *testing.B) {
	level := benchSigs(500, 30)
	k := int64(len(level))
	total := k * (k - 1) / 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GenerateCandidates(level, 0, total)
	}
}

func BenchmarkPairFromIndex(b *testing.B) {
	const k = 100000
	total := int64(k) * (k - 1) / 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PairFromIndex(int64(i)%total, k)
	}
}

func itoa(n int) string {
	switch n {
	case 100:
		return "sigs=100"
	case 1000:
		return "sigs=1000"
	default:
		return "sigs=5000"
	}
}
