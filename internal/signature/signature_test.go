package signature

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func iv(attr int, lo, hi float64) Interval { return Interval{Attr: attr, Lo: lo, Hi: hi} }

func TestIntervalBasics(t *testing.T) {
	i := iv(3, 0.2, 0.5)
	if i.Width() != 0.3 {
		t.Errorf("width = %g", i.Width())
	}
	if !i.Contains(0.2) || !i.Contains(0.5) || !i.Contains(0.35) {
		t.Error("closed interval must contain its bounds")
	}
	if i.Contains(0.19) || i.Contains(0.51) {
		t.Error("contains out-of-range value")
	}
	if !i.Overlaps(iv(3, 0.5, 0.9)) {
		t.Error("touching intervals overlap")
	}
	if i.Overlaps(iv(3, 0.6, 0.9)) || i.Overlaps(iv(4, 0.2, 0.5)) {
		t.Error("spurious overlap")
	}
}

func TestNewSortsByAttr(t *testing.T) {
	s := New(iv(5, 0, 1), iv(1, 0.2, 0.4), iv(3, 0.5, 0.6))
	attrs := s.Attrs()
	if attrs[0] != 1 || attrs[1] != 3 || attrs[2] != 5 {
		t.Fatalf("attrs = %v", attrs)
	}
	if s.P() != 3 {
		t.Fatalf("p = %d", s.P())
	}
}

func TestNewPanicsOnDuplicateAttr(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(iv(1, 0, 0.5), iv(1, 0.5, 1))
}

func TestIntervalOn(t *testing.T) {
	s := New(iv(2, 0.1, 0.2), iv(7, 0.3, 0.4))
	if got, ok := s.IntervalOn(7); !ok || got.Lo != 0.3 {
		t.Error("IntervalOn(7) wrong")
	}
	if _, ok := s.IntervalOn(3); ok {
		t.Error("IntervalOn(3) must be absent")
	}
}

func TestContainsPoint(t *testing.T) {
	s := New(iv(0, 0.2, 0.4), iv(2, 0.6, 0.8))
	if !s.Contains([]float64{0.3, 0.99, 0.7}) {
		t.Error("point inside both intervals rejected")
	}
	if s.Contains([]float64{0.5, 0.99, 0.7}) {
		t.Error("point outside first interval accepted")
	}
	if s.Contains([]float64{0.3, 0.99, 0.5}) {
		t.Error("point outside second interval accepted")
	}
}

func TestVolumeAndExpectedSupport(t *testing.T) {
	s := New(iv(0, 0, 0.1), iv(1, 0.4, 0.6))
	if got := s.Volume(); !almost(got, 0.02) {
		t.Errorf("volume = %g", got)
	}
	// Eq. 7: n·∏width.
	if got := s.ExpectedSupport(100); !almost(got, 2) {
		t.Errorf("expected support = %g", got)
	}
	// Eq. 2: Supp(S)·width(I).
	if got := ExpectedSupportGiven(50, iv(5, 0, 0.1)); !almost(got, 5) {
		t.Errorf("conditional expected support = %g", got)
	}
}

func almost(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

func TestWithWithout(t *testing.T) {
	s := New(iv(1, 0, 0.5))
	s2 := s.With(iv(0, 0.2, 0.3))
	if s2.P() != 2 || s2.Intervals[0].Attr != 0 {
		t.Fatal("With failed")
	}
	if s.P() != 1 {
		t.Fatal("With mutated receiver")
	}
	s3 := s2.Without(0)
	if !s3.Equal(s) {
		t.Fatal("Without(0) != original")
	}
}

func TestSubsetOfAndEqual(t *testing.T) {
	a := New(iv(1, 0, 0.5), iv(2, 0.5, 1))
	b := New(iv(1, 0, 0.5), iv(2, 0.5, 1), iv(3, 0, 0.1))
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Error("subset relation wrong")
	}
	if !a.SubsetOf(a) || !a.Equal(a) {
		t.Error("reflexivity broken")
	}
	// Same attribute, different interval → not a subset.
	c := New(iv(1, 0, 0.4), iv(2, 0.5, 1))
	if c.SubsetOf(b) {
		t.Error("different interval treated as subset")
	}
}

func TestKeyUniqueness(t *testing.T) {
	a := New(iv(1, 0, 0.5))
	b := New(iv(1, 0, 0.500001))
	c := New(iv(2, 0, 0.5))
	if a.Key() == b.Key() || a.Key() == c.Key() {
		t.Error("distinct signatures share a key")
	}
	if a.Key() != New(iv(1, 0, 0.5)).Key() {
		t.Error("equal signatures have different keys")
	}
}

func TestJoin(t *testing.T) {
	// Classic a-priori join: share the first p−1 intervals.
	ab := New(iv(0, 0, 0.1), iv(1, 0.2, 0.3))
	ac := New(iv(0, 0, 0.1), iv(2, 0.4, 0.5))
	joined, ok := Join(ab, ac)
	if !ok {
		t.Fatal("join failed")
	}
	if joined.P() != 3 {
		t.Fatalf("joined p = %d", joined.P())
	}
	want := New(iv(0, 0, 0.1), iv(1, 0.2, 0.3), iv(2, 0.4, 0.5))
	if !joined.Equal(want) {
		t.Fatalf("joined = %v", joined)
	}
	// Same last attribute → no join.
	ab2 := New(iv(0, 0, 0.1), iv(1, 0.5, 0.6))
	if _, ok := Join(ab, ab2); ok {
		t.Error("join with same last attribute must fail")
	}
	// Different prefixes → no join.
	other := New(iv(0, 0, 0.2), iv(2, 0.4, 0.5))
	if _, ok := Join(ab, other); ok {
		t.Error("join with different prefix must fail")
	}
	// 1-signatures join whenever attributes differ.
	x := New(iv(3, 0, 0.1))
	y := New(iv(5, 0.2, 0.3))
	if _, ok := Join(x, y); !ok {
		t.Error("1-signature join failed")
	}
}

func TestPairFromIndexCoversAllPairs(t *testing.T) {
	const k = 9
	seen := make(map[[2]int]bool)
	total := int64(k * (k - 1) / 2)
	for idx := int64(0); idx < total; idx++ {
		i, j := PairFromIndex(idx, k)
		if i >= j || j >= k || i < 0 {
			t.Fatalf("bad pair (%d,%d) at %d", i, j, idx)
		}
		seen[[2]int{i, j}] = true
	}
	if int64(len(seen)) != total {
		t.Fatalf("covered %d pairs, want %d", len(seen), total)
	}
}

func TestGenerateCandidatesMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var level []Signature
	for a := 0; a < 5; a++ {
		for r := 0; r < 2; r++ {
			lo := rng.Float64() * 0.8
			level = append(level, New(iv(a, lo, lo+0.1)))
		}
	}
	Sort(level)
	k := int64(len(level))
	all := GenerateCandidates(level, 0, k*(k-1)/2)
	// Exhaustive: every pair of distinct attributes contributes one
	// candidate per interval combination: C(5,2)·2·2 = 40.
	if len(all) != 40 {
		t.Fatalf("got %d candidates, want 40", len(all))
	}
	// Sharding the index space yields the same set.
	var sharded []Signature
	for lo := int64(0); lo < k*(k-1)/2; lo += 7 {
		sharded = append(sharded, GenerateCandidates(level, lo, lo+7)...)
	}
	sharded = Dedup(sharded)
	if len(sharded) != len(all) {
		t.Fatalf("sharded %d != full %d", len(sharded), len(all))
	}
}

func TestDedup(t *testing.T) {
	a := New(iv(1, 0, 0.5))
	b := New(iv(2, 0, 0.5))
	got := Dedup([]Signature{a, b, a, b, a})
	if len(got) != 2 {
		t.Fatalf("dedup kept %d", len(got))
	}
}

func TestFilterMaximal(t *testing.T) {
	s1 := New(iv(0, 0, 0.1))
	s12 := New(iv(0, 0, 0.1), iv(1, 0.2, 0.3))
	s123 := New(iv(0, 0, 0.1), iv(1, 0.2, 0.3), iv(2, 0.4, 0.5))
	s4 := New(iv(4, 0, 0.5))
	got := FilterMaximal([]Signature{s1, s12, s123, s4})
	if len(got) != 2 {
		t.Fatalf("maximal count = %d", len(got))
	}
	keys := map[string]bool{got[0].Key(): true, got[1].Key(): true}
	if !keys[s123.Key()] || !keys[s4.Key()] {
		t.Fatal("wrong maximal set")
	}
}

func TestLessIsStrictWeakOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() Signature {
			var ivs []Interval
			used := map[int]bool{}
			for i := 0; i <= rng.Intn(3); i++ {
				a := rng.Intn(4)
				if used[a] {
					continue
				}
				used[a] = true
				lo := float64(rng.Intn(5)) / 10
				ivs = append(ivs, iv(a, lo, lo+0.1))
			}
			if len(ivs) == 0 {
				ivs = append(ivs, iv(0, 0, 0.1))
			}
			return New(ivs...)
		}
		a, b, c := mk(), mk(), mk()
		// Irreflexivity and asymmetry.
		if Less(a, a) {
			return false
		}
		if Less(a, b) && Less(b, a) {
			return false
		}
		// Transitivity.
		if Less(a, b) && Less(b, c) && !Less(a, c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
