package signature

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRSSCPaperExample reconstructs Figure 3 of the paper: four signatures
// on attribute a, where a is irrelevant for S2 (its bits stay 1 in every
// bin).
func TestRSSCPaperExample(t *testing.T) {
	s1 := New(iv(0, 0.1, 0.4), iv(1, 0, 1))
	s2 := New(iv(1, 0.2, 0.8)) // attribute 0 irrelevant
	s3 := New(iv(0, 0.3, 0.7), iv(1, 0, 1))
	s4 := New(iv(0, 0.6, 0.9), iv(1, 0, 1))
	r := NewRSSC([]Signature{s1, s2, s3, s4})

	cases := []struct {
		x    []float64
		want []int
	}{
		{[]float64{0.2, 0.5}, []int{0, 1}},     // in S1; S2 ignores a0
		{[]float64{0.35, 0.5}, []int{0, 1, 2}}, // S1∩S3
		{[]float64{0.65, 0.5}, []int{1, 2, 3}}, // S3∩S4
		{[]float64{0.95, 0.5}, []int{1}},       // only S2 (a0 irrelevant)
		{[]float64{0.95, 0.9}, nil},            // outside everything
		{[]float64{0.1, 0.5}, []int{0, 1}},     // closed lower bound of S1
		{[]float64{0.4, 0.5}, []int{0, 1, 2}},  // closed upper bound of S1
	}
	for _, c := range cases {
		mask := r.Query(nil, c.x)
		got := Ones(nil, mask)
		if len(got) != len(c.want) {
			t.Errorf("x=%v: got %v, want %v", c.x, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("x=%v: got %v, want %v", c.x, got, c.want)
				break
			}
		}
	}
}

// TestRSSCMatchesNaiveCounting is the core property test: RSSC support
// counting must agree exactly with direct containment checks, including
// points that land exactly on interval boundaries.
func TestRSSCMatchesNaiveCounting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 2 + rng.Intn(4)
		numSigs := 1 + rng.Intn(40)
		sigs := make([]Signature, 0, numSigs)
		for s := 0; s < numSigs; s++ {
			var ivs []Interval
			used := map[int]bool{}
			p := 1 + rng.Intn(dim)
			for len(ivs) < p {
				a := rng.Intn(dim)
				if used[a] {
					continue
				}
				used[a] = true
				lo := float64(rng.Intn(8)) / 10
				hi := lo + float64(1+rng.Intn(3))/10
				ivs = append(ivs, iv(a, lo, hi))
			}
			sigs = append(sigs, New(ivs...))
		}
		sigs = Dedup(sigs)
		n := 200
		rows := make([]float64, n*dim)
		for i := range rows {
			if rng.Float64() < 0.3 {
				rows[i] = float64(rng.Intn(11)) / 10 // exact boundary values
			} else {
				rows[i] = rng.Float64()
			}
		}
		naive := CountSupportsNaive(sigs, rows, dim)
		r := NewRSSC(sigs)
		counts := make([]int64, len(sigs))
		var mask []uint64
		for i := 0; i < n; i++ {
			mask = r.Query(mask, rows[i*dim:(i+1)*dim])
			AddTo(counts, mask)
		}
		for j := range counts {
			if counts[j] != naive[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRSSCEmpty(t *testing.T) {
	r := NewRSSC(nil)
	mask := r.Query(nil, []float64{0.5})
	if PopCount(mask) != 0 {
		t.Fatal("empty RSSC must return empty mask")
	}
}

func TestRSSCManySignaturesCrossWordBoundary(t *testing.T) {
	// More than 64 signatures exercises multi-word masks.
	var sigs []Signature
	for i := 0; i < 130; i++ {
		lo := float64(i%10) / 10
		sigs = append(sigs, New(iv(i%3, lo, lo+0.1), iv(3+(i%2), 0, 0.5)))
	}
	sigs = Dedup(sigs)
	rng := rand.New(rand.NewSource(2))
	const dim = 5
	rows := make([]float64, 500*dim)
	for i := range rows {
		rows[i] = rng.Float64()
	}
	naive := CountSupportsNaive(sigs, rows, dim)
	r := NewRSSC(sigs)
	counts := make([]int64, len(sigs))
	var mask []uint64
	for i := 0; i < 500; i++ {
		mask = r.Query(mask, rows[i*dim:(i+1)*dim])
		AddTo(counts, mask)
	}
	for j := range counts {
		if counts[j] != naive[j] {
			t.Fatalf("sig %d: rssc %d != naive %d", j, counts[j], naive[j])
		}
	}
}

func TestOnesAndPopCount(t *testing.T) {
	mask := []uint64{0b1011, 1 << 63}
	ones := Ones(nil, mask)
	want := []int{0, 1, 3, 127}
	if len(ones) != len(want) {
		t.Fatalf("ones = %v", ones)
	}
	for i := range want {
		if ones[i] != want[i] {
			t.Fatalf("ones = %v, want %v", ones, want)
		}
	}
	if PopCount(mask) != 4 {
		t.Fatalf("popcount = %d", PopCount(mask))
	}
	counts := make([]int64, 128)
	AddTo(counts, mask)
	if counts[0] != 1 || counts[127] != 1 || counts[2] != 0 {
		t.Fatal("AddTo wrong")
	}
}
