// Package signature implements p-signatures — sets of intervals on disjoint
// attributes (paper Definition 2) — with the operations the P3C+ pipeline
// needs: support semantics, expected supports under the uniformity
// assumption, a-priori candidate joins, maximality filtering, the
// interest-ratio redundancy filter of §4.2.1, and the Rapid Signature
// Support Counter (RSSC) bitmap structure of §5.3.
package signature

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Interval is a closed interval [Lo,Hi] on attribute Attr (Definition 1).
type Interval struct {
	Attr   int
	Lo, Hi float64
}

// Width returns Hi − Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether x lies in the closed interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Overlaps reports whether two intervals on the same attribute intersect.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Attr == other.Attr && iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

// String renders the interval.
func (iv Interval) String() string {
	return fmt.Sprintf("a%d:[%.6g,%.6g]", iv.Attr, iv.Lo, iv.Hi)
}

// Signature is a p-signature: intervals on pairwise distinct attributes,
// kept sorted by attribute. Construct with New or Join; direct literal
// construction must keep the sorted-unique invariant.
type Signature struct {
	Intervals []Interval
}

// New builds a signature from intervals, sorting by attribute. It panics on
// duplicate attributes — a p-signature requires disjoint attributes by
// definition.
func New(intervals ...Interval) Signature {
	ivs := append([]Interval(nil), intervals...)
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Attr < ivs[j].Attr })
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Attr == ivs[i-1].Attr {
			panic(fmt.Sprintf("signature: duplicate attribute %d", ivs[i].Attr))
		}
	}
	return Signature{Intervals: ivs}
}

// P returns the signature's dimensionality p.
func (s Signature) P() int { return len(s.Intervals) }

// Attrs returns the attribute list, ascending.
func (s Signature) Attrs() []int {
	out := make([]int, len(s.Intervals))
	for i, iv := range s.Intervals {
		out[i] = iv.Attr
	}
	return out
}

// IntervalOn returns the interval on attribute a and ok=false when the
// signature does not constrain a.
func (s Signature) IntervalOn(a int) (Interval, bool) {
	i := sort.Search(len(s.Intervals), func(i int) bool { return s.Intervals[i].Attr >= a })
	if i < len(s.Intervals) && s.Intervals[i].Attr == a {
		return s.Intervals[i], true
	}
	return Interval{}, false
}

// Contains reports whether point x (full-dimensional) lies inside every
// interval of the signature — membership in SuppSet(S).
func (s Signature) Contains(x []float64) bool {
	for _, iv := range s.Intervals {
		if !iv.Contains(x[iv.Attr]) {
			return false
		}
	}
	return true
}

// Volume returns the product of the interval widths.
func (s Signature) Volume() float64 {
	v := 1.0
	for _, iv := range s.Intervals {
		v *= iv.Width()
	}
	return v
}

// ExpectedSupport returns n·∏width (Eq. 7): the support expected when the
// data is uniform on each attribute.
func (s Signature) ExpectedSupport(n int) float64 {
	return float64(n) * s.Volume()
}

// ExpectedSupportGiven returns Supp(S)·width(I) (Eq. 2): the support
// expected for S∪{I} when SuppSet(S) is uniform on I's attribute.
func ExpectedSupportGiven(suppS float64, iv Interval) float64 {
	return suppS * iv.Width()
}

// With returns a new signature extending s by iv. It panics when iv's
// attribute is already constrained.
func (s Signature) With(iv Interval) Signature {
	if _, ok := s.IntervalOn(iv.Attr); ok {
		panic(fmt.Sprintf("signature: attribute %d already constrained", iv.Attr))
	}
	ivs := make([]Interval, 0, len(s.Intervals)+1)
	ivs = append(ivs, s.Intervals...)
	ivs = append(ivs, iv)
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Attr < ivs[j].Attr })
	return Signature{Intervals: ivs}
}

// Without returns a new signature omitting the interval at position idx.
func (s Signature) Without(idx int) Signature {
	ivs := make([]Interval, 0, len(s.Intervals)-1)
	ivs = append(ivs, s.Intervals[:idx]...)
	ivs = append(ivs, s.Intervals[idx+1:]...)
	return Signature{Intervals: ivs}
}

// SubsetOf reports whether every interval of s appears identically in t.
func (s Signature) SubsetOf(t Signature) bool {
	if s.P() > t.P() {
		return false
	}
	for _, iv := range s.Intervals {
		other, ok := t.IntervalOn(iv.Attr)
		if !ok || other != iv {
			return false
		}
	}
	return true
}

// Equal reports interval-wise equality.
func (s Signature) Equal(t Signature) bool {
	if len(s.Intervals) != len(t.Intervals) {
		return false
	}
	for i, iv := range s.Intervals {
		if t.Intervals[i] != iv {
			return false
		}
	}
	return true
}

// Key returns a canonical string identity usable as a map key and as a
// MapReduce shuffle key.
func (s Signature) Key() string {
	var b strings.Builder
	for i, iv := range s.Intervals {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%d:%.17g:%.17g", iv.Attr, iv.Lo, iv.Hi)
	}
	return b.String()
}

// String renders the signature for humans.
func (s Signature) String() string {
	parts := make([]string, len(s.Intervals))
	for i, iv := range s.Intervals {
		parts[i] = iv.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Join attempts the a-priori join of two p-signatures sharing their first
// p−1 intervals (in attribute order) and differing in the last, which must
// sit on different attributes. ok is false when the join is not defined.
// Joining all such pairs of a level generates each (p+1)-candidate exactly
// once when a < b in last-interval order.
func Join(a, b Signature) (Signature, bool) {
	p := a.P()
	if p == 0 || b.P() != p {
		return Signature{}, false
	}
	for i := 0; i < p-1; i++ {
		if a.Intervals[i] != b.Intervals[i] {
			return Signature{}, false
		}
	}
	la, lb := a.Intervals[p-1], b.Intervals[p-1]
	if la.Attr == lb.Attr {
		return Signature{}, false
	}
	return a.With(lb), true
}

// Less orders signatures by their canonical interval sequence; it makes
// candidate generation deterministic.
func Less(a, b Signature) bool {
	na, nb := len(a.Intervals), len(b.Intervals)
	n := na
	if nb < n {
		n = nb
	}
	for i := 0; i < n; i++ {
		ia, ib := a.Intervals[i], b.Intervals[i]
		switch {
		case ia.Attr != ib.Attr:
			return ia.Attr < ib.Attr
		case ia.Lo != ib.Lo:
			return ia.Lo < ib.Lo
		case ia.Hi != ib.Hi:
			return ia.Hi < ib.Hi
		}
	}
	return na < nb
}

// Sort orders a slice of signatures canonically, in place.
func Sort(sigs []Signature) {
	sort.Slice(sigs, func(i, j int) bool { return Less(sigs[i], sigs[j]) })
}

// GenerateCandidates performs one a-priori level: it joins every compatible
// pair of the given p-signatures and returns the deduplicated
// (p+1)-candidates. The quadratic pair scan is exactly the computation the
// paper parallelizes with mappers over index ranges (§5.3); Parallel
// generation lives in the core package, this is the serial kernel operating
// on an index range [lo,hi) of the c = k(k−1)/2 pair space.
func GenerateCandidates(level []Signature, lo, hi int64) []Signature {
	k := int64(len(level))
	total := k * (k - 1) / 2
	if hi > total {
		hi = total
	}
	if lo < 0 {
		lo = 0
	}
	seen := make(map[string]bool)
	var out []Signature
	if lo >= hi {
		return nil
	}
	i, j := PairFromIndex(lo, k)
	for idx := lo; idx < hi; idx++ {
		joined, ok := Join(level[i], level[j])
		if !ok {
			joined, ok = Join(level[j], level[i])
		}
		if ok {
			key := joined.Key()
			if !seen[key] {
				seen[key] = true
				out = append(out, joined)
			}
		}
		// Advance to the next pair incrementally: O(1) per index instead of
		// re-deriving the row each time.
		j++
		if int64(j) >= k {
			i++
			j = i + 1
		}
	}
	return out
}

// PairFromIndex maps a linear index in [0, k(k−1)/2) to the (i,j) pair with
// i < j — the index scheme the paper's candidate-generation mappers use.
// Row i starts at offset S(i) = i·(2k−1−i)/2; inverting the quadratic gives
// the row in O(1), with a guard loop absorbing floating-point edge cases.
func PairFromIndex(idx, k int64) (int, int) {
	rowStart := func(i int64) int64 { return i * (2*k - 1 - i) / 2 }
	f := float64(2*k - 1)
	i := int64((f - math.Sqrt(f*f-8*float64(idx))) / 2)
	if i < 0 {
		i = 0
	}
	if i > k-2 {
		i = k - 2
	}
	for i > 0 && rowStart(i) > idx {
		i--
	}
	for i < k-2 && rowStart(i+1) <= idx {
		i++
	}
	j := i + 1 + (idx - rowStart(i))
	return int(i), int(j)
}

// Dedup removes duplicate signatures (by Key), preserving first occurrence.
func Dedup(sigs []Signature) []Signature {
	seen := make(map[string]bool, len(sigs))
	out := sigs[:0]
	for _, s := range sigs {
		k := s.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	return out
}

// FilterMaximal returns the signatures with no strict superset in the same
// slice — the practical "Filter maximal Cluster Cores" of Algorithm 1,
// line 11: Definition 5's condition 2 (no extension is significant) holds
// for exactly the proven signatures that are not contained in another
// proven signature, because every significant extension would itself have
// been generated and proven by the a-priori sweep.
func FilterMaximal(sigs []Signature) []Signature {
	var out []Signature
	for i, s := range sigs {
		maximal := true
		for j, t := range sigs {
			if i == j {
				continue
			}
			if s.P() < t.P() && s.SubsetOf(t) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, s)
		}
	}
	return out
}
