package signature

import (
	"math"
	"sort"
)

// InterestRatio returns Supp(S)/Suppexp(S) (Eq. 6): how many times more
// support the signature has than a uniform distribution would give it. It
// returns +Inf for zero expected support with positive observed support.
func InterestRatio(supp float64, s Signature, n int) float64 {
	exp := s.ExpectedSupport(n)
	if exp <= 0 {
		if supp > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return supp / exp
}

// RedundancyInput bundles a signature with its measured support and
// interest ratio for the filter.
type RedundancyInput struct {
	Sig     Signature
	Support int64
	Ratio   float64
}

// Uncovered holds, per signature, how many of its support-set points are not
// contained in any strictly more interesting signature's support set. The
// core package fills it with one data pass (an RSSC query per point); this
// package only decides redundancy from the counts.
type Uncovered struct {
	// Count[j] is the number of points in SuppSet(sigs[j]) that no
	// signature with a strictly higher interest ratio covers.
	Count []int64
}

// DecideRedundant applies Eq. 5 with a coverage tolerance: signature j is
// redundant when at most (1−coverage)·Supp(j) of its support points are
// uncovered by strictly more interesting signatures. coverage = 1 demands
// exact set containment (the paper's noise-free example); the pipeline
// default of 0.95 tolerates the uniform background noise that real data
// sets add to every support set.
func DecideRedundant(in []RedundancyInput, unc Uncovered, coverage float64) []bool {
	red := make([]bool, len(in))
	for j := range in {
		if in[j].Support == 0 {
			red[j] = true
			continue
		}
		allowed := (1 - coverage) * float64(in[j].Support)
		red[j] = float64(unc.Count[j]) <= allowed
	}
	return red
}

// CoverageAccumulator counts, per signature, the support points not covered
// by any strictly more interesting signature. Two refinements over a naive
// reading of Eq. 5 make the filter robust on real (noisy, overlapping)
// data:
//
//   - A lattice superset Si ⊃ S never covers S. Overlapping clusters spawn
//     "slab" artifacts — a low-dimensional true core extended by another
//     cluster's dense attributes — whose interest ratio exceeds the true
//     core's. Counting them as cover would cascade the redundancy filter
//     down the lattice and delete the true core; excluding supersets is
//     safe because genuine subset pruning is the maximality filter's job.
//   - Coverage is fractional (see DecideRedundant): uniform noise inside an
//     artifact's box breaks exact set containment on any realistic data.
type CoverageAccumulator struct {
	ratios []float64
	// coveredBy[j] holds the candidate coverers of j: higher ratio, not a
	// lattice superset.
	coveredBy [][]int32
	unc       []int64
	scratch   []int
}

// NewCoverageAccumulator prepares the coverage relation for the given
// signatures and their interest ratios.
func NewCoverageAccumulator(sigs []Signature, ratios []float64) *CoverageAccumulator {
	n := len(sigs)
	a := &CoverageAccumulator{
		ratios:    ratios,
		coveredBy: make([][]int32, n),
		unc:       make([]int64, n),
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if i == j || ratios[i] <= ratios[j] {
				continue
			}
			if sigs[j].SubsetOf(sigs[i]) {
				continue // lattice superset: not a coverer
			}
			a.coveredBy[j] = append(a.coveredBy[j], int32(i))
		}
	}
	return a
}

// Add processes one point's membership mask: every member signature with no
// eligible coverer among the members gets an uncovered increment.
func (a *CoverageAccumulator) Add(mask []uint64) {
	members := Ones(a.scratch[:0], mask)
	a.scratch = members
	if len(members) == 0 {
		return
	}
	inMask := func(i int32) bool {
		return mask[i/64]&(1<<(uint(i)%64)) != 0
	}
	for _, j := range members {
		covered := false
		for _, i := range a.coveredBy[j] {
			if inMask(i) {
				covered = true
				break
			}
		}
		if !covered {
			a.unc[j]++
		}
	}
}

// Counts returns the accumulated uncovered counts (shared storage).
func (a *CoverageAccumulator) Counts() []int64 { return a.unc }

// SortByRatioDesc orders inputs by decreasing interest ratio (ties broken by
// canonical signature order), the presentation order used in results.
func SortByRatioDesc(in []RedundancyInput) {
	sort.Slice(in, func(i, j int) bool {
		if in[i].Ratio != in[j].Ratio {
			return in[i].Ratio > in[j].Ratio
		}
		return Less(in[i].Sig, in[j].Sig)
	})
}
