// Package bow implements the BoW baseline (Cordeiro et al., KDD 2011) the
// paper compares against (§2, §7.5): the data set is partitioned into
// blocks of at most SamplesPerReducer points, each block is clustered
// independently by a plug-in algorithm on one reducer, and the per-block
// hyperrectangle results are merged by repeatedly uniting intersecting
// rectangles with identical subspaces. BoW is approximate by construction:
// per-block sampling error shifts cluster borders, and the merge phase
// inflates them — the quality losses the paper measures in Figure 6.
package bow

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"p3cmr/internal/core"
	"p3cmr/internal/dataset"
	"p3cmr/internal/eval"
	"p3cmr/internal/mr"
	"p3cmr/internal/obs"
	"p3cmr/internal/outlier"
	"p3cmr/internal/signature"
)

// Params configures a BoW run.
type Params struct {
	// SamplesPerReducer caps the block size (paper: 100 000).
	SamplesPerReducer int
	// Plugin parameterizes the per-block clustering (the paper plugs in
	// P3C+; the Light flavour uses core.LightParams(), the MVB flavour
	// core.NewParams()).
	Plugin core.Params
	// Seed drives the random block partition.
	Seed int64
	// Reducers is the modeled reducer count used for the simulated-runtime
	// accounting (0 = the engine's configuration).
	Reducers int
}

// NewLightParams returns BoW with the P3C+-Light plugin.
func NewLightParams() Params {
	p := core.LightParams()
	p.NumSplits = 1
	return Params{SamplesPerReducer: 100000, Plugin: p}
}

// NewMVBParams returns BoW with the full P3C+ (MVB) plugin.
func NewMVBParams() Params {
	p := core.NewParams()
	p.NumSplits = 1
	return Params{SamplesPerReducer: 100000, Plugin: p}
}

// Result is the merged BoW output.
type Result struct {
	// Signatures are the merged hyperrectangles with their subspaces.
	Signatures []signature.Signature
	// Clusters are the evaluation clusters: support sets of the merged
	// rectangles with their attribute sets.
	Clusters []*eval.Cluster
	// Labels is the disjoint label view (first containing rectangle wins;
	// outlier.OutlierLabel otherwise).
	Labels []int
	// Stats carries execution metadata.
	Stats Stats
}

// Stats aggregates BoW execution metadata.
type Stats struct {
	Blocks           int
	RawSignatures    int
	MergedSignatures int
	WallTime         time.Duration
	// PassesPerBlock is the measured number of data passes (MapReduce jobs
	// of the plug-in pipeline) one block clustering makes — the Light
	// plug-in makes far fewer than the full MVB plug-in.
	PassesPerBlock int
	// SimulatedSeconds models the cluster runtime: one job startup, a map
	// pass over the data, and ⌈blocks/reducers⌉ sequential block
	// clusterings per reducer wave (the bottleneck the paper identifies in
	// §7.5.2).
	SimulatedSeconds float64
}

// Run executes BoW on the data set.
func Run(engine *mr.Engine, data *dataset.Dataset, params Params) (*Result, error) {
	if params.SamplesPerReducer <= 0 {
		return nil, fmt.Errorf("bow: SamplesPerReducer must be positive")
	}
	start := obs.Now()
	n := data.N()
	if n == 0 {
		return &Result{}, nil
	}

	// Partition the data into random blocks of at most SamplesPerReducer
	// points — the sampling/shuffling map phase of BoW.
	rng := rand.New(rand.NewSource(params.Seed))
	perm := rng.Perm(n)
	numBlocks := (n + params.SamplesPerReducer - 1) / params.SamplesPerReducer
	blocks := make([][]int, numBlocks)
	for i, idx := range perm {
		b := i % numBlocks
		blocks[b] = append(blocks[b], idx)
	}

	// Per-block clustering (the reduce phase). Each block runs the plug-in
	// pipeline on a block-local engine so its job accounting does not
	// pollute the outer engine; the simulated cost is charged explicitly
	// below.
	var raw []signature.Signature
	blockEngine := mr.NewEngine(mr.Config{Parallelism: 1, NumReducers: 1})
	for b, idx := range blocks {
		sub := data.Subset(idx)
		res, err := core.Run(blockEngine, sub, params.Plugin)
		if err != nil {
			return nil, fmt.Errorf("bow: block %d: %w", b, err)
		}
		for _, sig := range res.Signatures {
			if len(sig.Intervals) > 0 {
				raw = append(raw, signature.New(sig.Intervals...))
			}
		}
	}

	merged := MergeRectangles(raw)

	// Final assignment pass: label every point with its first containing
	// merged rectangle (one map-only job on the outer engine).
	labels, clusters, err := assign(engine, data, merged)
	if err != nil {
		return nil, err
	}

	passes := blockEngine.JobsRun() / numBlocks
	if passes < 1 {
		passes = 1
	}
	res := &Result{
		Signatures: merged,
		Clusters:   clusters,
		Labels:     labels,
		Stats: Stats{
			Blocks:           numBlocks,
			RawSignatures:    len(raw),
			MergedSignatures: len(merged),
			PassesPerBlock:   passes,
			WallTime:         obs.Since(start),
		},
	}
	res.Stats.SimulatedSeconds = ScheduleSeconds(engine.Cost(), params.Reducers, n, params.SamplesPerReducer, passes)
	return res, nil
}

// MergeRectangles repeatedly unites intersecting hyperrectangles that live
// in the same subspace until a fixpoint, returning the merged set. Merging
// takes the per-attribute union bounding interval.
func MergeRectangles(sigs []signature.Signature) []signature.Signature {
	work := append([]signature.Signature(nil), sigs...)
	for {
		mergedAny := false
		var out []signature.Signature
		used := make([]bool, len(work))
		for i := 0; i < len(work); i++ {
			if used[i] {
				continue
			}
			cur := work[i]
			for j := i + 1; j < len(work); j++ {
				if used[j] {
					continue
				}
				if m, ok := mergeTwo(cur, work[j]); ok {
					cur = m
					used[j] = true
					mergedAny = true
				}
			}
			out = append(out, cur)
		}
		work = out
		if !mergedAny {
			break
		}
	}
	signature.Sort(work)
	return work
}

// mergeTwo merges two signatures when they constrain the same attributes
// and their intervals pairwise overlap.
func mergeTwo(a, b signature.Signature) (signature.Signature, bool) {
	if a.P() != b.P() {
		return signature.Signature{}, false
	}
	ivs := make([]signature.Interval, 0, a.P())
	for i, ia := range a.Intervals {
		ib := b.Intervals[i]
		if ia.Attr != ib.Attr || !ia.Overlaps(ib) {
			return signature.Signature{}, false
		}
		lo, hi := ia.Lo, ia.Hi
		if ib.Lo < lo {
			lo = ib.Lo
		}
		if ib.Hi > hi {
			hi = ib.Hi
		}
		ivs = append(ivs, signature.Interval{Attr: ia.Attr, Lo: lo, Hi: hi})
	}
	return signature.New(ivs...), true
}

// assign labels every point with the index of the first merged rectangle
// containing it and builds the evaluation clusters (support sets).
func assign(engine *mr.Engine, data *dataset.Dataset, merged []signature.Signature) ([]int, []*eval.Cluster, error) {
	n := data.N()
	labels := make([]int, n)
	for i := range labels {
		labels[i] = outlier.OutlierLabel
	}
	clusters := make([]*eval.Cluster, len(merged))
	for c := range clusters {
		clusters[c] = &eval.Cluster{Attrs: merged[c].Attrs()}
	}
	if len(merged) == 0 {
		return labels, clusters, nil
	}

	rssc := signature.NewRSSC(merged)
	job := &mr.Job{
		Name:   "bow-assign",
		Splits: data.Splits(16),
		Cache:  map[string]any{"rssc": rssc},
		NewMapper: func() mr.Mapper {
			return &assignMapper{}
		},
	}
	out, err := engine.Run(job)
	if err != nil {
		return nil, nil, err
	}
	for _, p := range out.Pairs {
		rec := p.Value.(assignRecord)
		labels[rec.Global] = rec.Cores[0]
		for _, c := range rec.Cores {
			clusters[c].Objects = append(clusters[c].Objects, rec.Global)
		}
	}
	for _, c := range clusters {
		sort.Ints(c.Objects)
	}
	return labels, clusters, nil
}

type assignRecord struct {
	Global int
	Cores  []int
}

type assignMapper struct {
	rssc *signature.RSSC
	mask []uint64
}

func (m *assignMapper) Setup(ctx *mr.TaskContext) error {
	m.rssc = ctx.MustCache("rssc").(*signature.RSSC)
	return nil
}

func (m *assignMapper) Map(ctx *mr.TaskContext, global int, row []float64) error {
	m.mask = m.rssc.Query(m.mask, row)
	ids := signature.Ones(nil, m.mask)
	if len(ids) > 0 {
		ctx.Emit("a", assignRecord{Global: global, Cores: ids})
	}
	return nil
}

func (m *assignMapper) Cleanup(*mr.TaskContext) error { return nil }

// ScheduleSeconds models BoW's wall clock under a MapReduce cost model: one
// job startup, a map pass routing every point to its block, and then the
// reduce waves — each of the R reducers sequentially clusters
// ⌈blocks/R⌉ blocks, and one block clustering makes passesPerBlock
// in-memory passes over its samplesPerReducer points. This is the
// single-job, reducer-bound schedule the paper describes in §7.5.2: with
// enough reducers BoW distributes ideally, but once blocks outnumber
// reducers the waves serialize.
func ScheduleSeconds(cm mr.CostModel, reducers, n, samplesPerReducer, passesPerBlock int) float64 {
	if !cm.Enabled() {
		return 0
	}
	if reducers <= 0 {
		reducers = cm.MapSlots
	}
	if reducers <= 0 {
		reducers = 112
	}
	slots := cm.MapSlots
	if slots <= 0 {
		slots = 112
	}
	numBlocks := (n + samplesPerReducer - 1) / samplesPerReducer
	if numBlocks < 1 {
		numBlocks = 1
	}
	waves := (numBlocks + reducers - 1) / reducers
	blockPoints := samplesPerReducer
	if n < blockPoints {
		blockPoints = n
	}
	mapPar := numBlocks
	if mapPar > slots {
		mapPar = slots
	}
	s := cm.JobStartupSeconds
	s += cm.SecondsPerMapRecord * float64(n) / float64(mapPar)
	s += float64(waves) * cm.SecondsPerMapRecord * float64(passesPerBlock) * float64(blockPoints)
	return s
}
