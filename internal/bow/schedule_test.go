package bow

import (
	"testing"

	"p3cmr/internal/mr"
)

func TestScheduleSecondsDisabledModel(t *testing.T) {
	if got := ScheduleSeconds(mr.CostModel{}, 112, 1000, 100, 10); got != 0 {
		t.Fatalf("disabled model charged %g", got)
	}
}

func TestScheduleSecondsWaveSerialization(t *testing.T) {
	cm := mr.DefaultCostModel()
	// With blocks ≤ reducers there is one wave; ten times the blocks on the
	// same reducers serializes ten waves of block clusterings.
	oneWave := ScheduleSeconds(cm, 100, 100*1000, 1000, 10)
	tenWaves := ScheduleSeconds(cm, 100, 1000*1000, 1000, 10)
	waveCost := cm.SecondsPerMapRecord * 10 * 1000
	if tenWaves-oneWave < 8*waveCost {
		t.Errorf("wave serialization not charged: %g vs %g (wave=%g)", oneWave, tenWaves, waveCost)
	}
}

func TestScheduleSecondsGrowsWithPasses(t *testing.T) {
	cm := mr.DefaultCostModel()
	light := ScheduleSeconds(cm, 112, 100000, 1000, 9)
	mvb := ScheduleSeconds(cm, 112, 100000, 1000, 25)
	if mvb <= light {
		t.Errorf("more passes must cost more: %g vs %g", mvb, light)
	}
}

func TestScheduleSecondsDefaults(t *testing.T) {
	cm := mr.DefaultCostModel()
	// Zero reducers falls back to the model's slots; tiny n caps the block.
	got := ScheduleSeconds(cm, 0, 10, 1000, 5)
	if got <= cm.JobStartupSeconds {
		t.Errorf("cost %g missing variable part", got)
	}
}

func TestMapJobsSecondsLinearInJobsAndN(t *testing.T) {
	cm := mr.DefaultCostModel()
	one := cm.MapJobsSeconds(1, 1e6)
	two := cm.MapJobsSeconds(2, 1e6)
	if two != 2*one {
		t.Errorf("jobs scaling wrong: %g vs %g", two, one)
	}
	small := cm.MapJobsSeconds(1, 1e6)
	big := cm.MapJobsSeconds(1, 2e6)
	if big <= small {
		t.Error("n scaling missing")
	}
	// The paper's billion-run regime: MR-Light's ~9 jobs at 1e9 records
	// must land in the same order of magnitude as the reported 4300 s.
	mr9 := cm.MapJobsSeconds(9, 1e9)
	if mr9 < 500 || mr9 > 20000 {
		t.Errorf("modeled 1e9 MR-Light cost %g implausible", mr9)
	}
}
