package bow

import (
	"testing"

	"p3cmr/internal/dataset"
	"p3cmr/internal/eval"
	"p3cmr/internal/mr"
	"p3cmr/internal/signature"
)

func iv(attr int, lo, hi float64) signature.Interval {
	return signature.Interval{Attr: attr, Lo: lo, Hi: hi}
}

func TestMergeRectanglesSameSubspace(t *testing.T) {
	a := signature.New(iv(0, 0.1, 0.3), iv(1, 0.5, 0.7))
	b := signature.New(iv(0, 0.25, 0.4), iv(1, 0.6, 0.8))
	merged := MergeRectangles([]signature.Signature{a, b})
	if len(merged) != 1 {
		t.Fatalf("merged %d, want 1", len(merged))
	}
	m := merged[0]
	got0, _ := m.IntervalOn(0)
	got1, _ := m.IntervalOn(1)
	if got0.Lo != 0.1 || got0.Hi != 0.4 || got1.Lo != 0.5 || got1.Hi != 0.8 {
		t.Fatalf("merged intervals wrong: %v", m)
	}
}

func TestMergeRectanglesDisjointOrDifferentSubspace(t *testing.T) {
	a := signature.New(iv(0, 0.1, 0.2))
	b := signature.New(iv(0, 0.5, 0.6))              // same subspace, disjoint
	c := signature.New(iv(1, 0.1, 0.2))              // different subspace
	d := signature.New(iv(0, 0.1, 0.2), iv(1, 0, 1)) // different dimensionality
	merged := MergeRectangles([]signature.Signature{a, b, c, d})
	if len(merged) != 4 {
		t.Fatalf("merged %d, want 4 (nothing mergeable)", len(merged))
	}
}

func TestMergeRectanglesTransitiveChain(t *testing.T) {
	// a∩b and b∩c but not a∩c: the fixpoint must unite all three.
	a := signature.New(iv(0, 0.0, 0.2))
	b := signature.New(iv(0, 0.15, 0.45))
	c := signature.New(iv(0, 0.4, 0.6))
	merged := MergeRectangles([]signature.Signature{a, c, b})
	if len(merged) != 1 {
		t.Fatalf("merged %d, want 1", len(merged))
	}
	m, _ := merged[0].IntervalOn(0)
	if m.Lo != 0 || m.Hi != 0.6 {
		t.Fatalf("chain merge = %v", m)
	}
}

func TestBoWFindsPlantedClusters(t *testing.T) {
	data, truth, err := dataset.Generate(dataset.GenConfig{
		N: 6000, Dim: 15, Clusters: 3, NoiseFraction: 0.1, Seed: 19, Overlap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	params := NewLightParams()
	params.SamplesPerReducer = 2000 // three blocks
	res, err := Run(mr.Default(), data, params)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Blocks != 3 {
		t.Errorf("blocks = %d, want 3", res.Stats.Blocks)
	}
	if res.Stats.RawSignatures < res.Stats.MergedSignatures {
		t.Error("merging increased the signature count")
	}
	var cs []*eval.Cluster
	for _, tc := range truth.Clusters {
		cs = append(cs, &eval.Cluster{Objects: tc.Members, Attrs: tc.Attrs})
	}
	tc, err := eval.NewSubspaceClustering(truth.N, truth.Dim, cs)
	if err != nil {
		t.Fatal(err)
	}
	found, err := eval.NewSubspaceClustering(data.N(), data.Dim, res.Clusters)
	if err != nil {
		t.Fatal(err)
	}
	e4sc := eval.E4SC(found, tc)
	t.Logf("BoW blocks=%d raw=%d merged=%d E4SC=%.3f",
		res.Stats.Blocks, res.Stats.RawSignatures, res.Stats.MergedSignatures, e4sc)
	if e4sc < 0.5 {
		t.Errorf("BoW E4SC = %.3f too low", e4sc)
	}
	if len(res.Labels) != data.N() {
		t.Error("labels length wrong")
	}
}

func TestBoWSingleBlockMatchesPluginQuality(t *testing.T) {
	// With one block, BoW is just the plug-in on the full data (modulo the
	// random shuffle), so it must find the exact cluster count.
	data, _, err := dataset.Generate(dataset.GenConfig{
		N: 3000, Dim: 12, Clusters: 3, NoiseFraction: 0.05, Seed: 23, Overlap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	params := NewLightParams()
	params.SamplesPerReducer = 10000
	res, err := Run(mr.Default(), data, params)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Blocks != 1 {
		t.Fatalf("blocks = %d", res.Stats.Blocks)
	}
	if len(res.Signatures) != 3 {
		t.Errorf("signatures = %d, want 3", len(res.Signatures))
	}
}

func TestBoWValidation(t *testing.T) {
	data := dataset.New(2)
	if _, err := Run(mr.Default(), data, Params{SamplesPerReducer: 0}); err == nil {
		t.Fatal("zero block size accepted")
	}
	// Empty data set: trivially empty result.
	params := NewLightParams()
	params.SamplesPerReducer = 100
	res, err := Run(mr.Default(), data, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 0 {
		t.Fatal("empty data produced clusters")
	}
}
