package outlier

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"p3cmr/internal/em"
	"p3cmr/internal/linalg"
	"p3cmr/internal/mr"
	"p3cmr/internal/obs"
	"p3cmr/internal/stats"
)

// The paper (§4.2.2) uses the MVB ball approximation because "the exact MVE
// parameter estimators" are computationally expensive, and leaves the MVE
// itself unevaluated. This file supplies that missing estimator as an
// extension: the classic Rousseeuw resampling MVE — repeatedly fit an
// ellipsoid to a random (d+1)-subset, inflate it to cover half the points,
// and keep the minimum-volume one. On MapReduce the estimator runs on a
// bounded per-cluster reservoir sample (one extra job), followed by the
// usual robust mean/covariance re-estimation restricted to the ellipsoid
// core.

// MVE selects the resampling minimum-volume-ellipsoid estimator.
const MVE Method = 2

// mveSampleCap bounds the per-cluster reservoir used to fit the MVE; the
// resampling estimator's quality saturates quickly with sample size.
const mveSampleCap = 2048

// mveTrials is the number of random (d+1)-subsets examined per cluster.
const mveTrials = 200

// mveEstimate computes the resampling MVE location/scatter of the row-major
// points (n×d). It returns the robust mean and the covariance scaled so
// that the ellipsoid {x : (x−µ)ᵀΣ⁻¹(x−µ) ≤ χ²_{d,0.5}} covers about half
// the points (the standard MVE consistency scaling).
func mveEstimate(points []float64, d int, rng *rand.Rand) (mu []float64, cov *linalg.Matrix, err error) {
	n := len(points) / d
	if n < d+2 {
		return nil, nil, fmt.Errorf("outlier: MVE needs at least %d points, have %d", d+2, n)
	}
	bestVol := math.Inf(1)
	var bestMu []float64
	var bestCov *linalg.Matrix
	var bestM2 float64

	idx := make([]int, d+1)
	subset := make([]float64, 0, (d+1)*d)
	dists := make([]float64, n)
	diff := make([]float64, d)
	solve := make([]float64, d)

	for trial := 0; trial < mveTrials; trial++ {
		// Draw d+1 distinct indices.
		seen := make(map[int]bool, d+1)
		for i := range idx {
			for {
				c := rng.Intn(n)
				if !seen[c] {
					seen[c] = true
					idx[i] = c
					break
				}
			}
		}
		subset = subset[:0]
		for _, i := range idx {
			subset = append(subset, points[i*d:(i+1)*d]...)
		}
		muJ := linalg.Mean(subset, d)
		covJ := linalg.Covariance(subset, d, muJ)
		linalg.RegularizeSPD(covJ, 1e-9)
		chol, cerr := linalg.CholeskyDecompose(covJ)
		if cerr != nil {
			continue
		}
		// Median squared Mahalanobis distance inflates the trial ellipsoid
		// to cover half the points.
		for i := 0; i < n; i++ {
			dists[i] = linalg.MahalanobisSq(points[i*d:(i+1)*d], muJ, chol, diff, solve)
		}
		sort.Float64s(dists)
		m2 := dists[n/2]
		if m2 <= 0 {
			continue
		}
		// Ellipsoid volume ∝ (m²)^(d/2) · sqrt(det C): compare in logs.
		logVol := 0.5*float64(d)*math.Log(m2) + 0.5*chol.LogDet()
		if logVol < bestVol {
			bestVol = logVol
			bestMu = append(bestMu[:0], muJ...)
			bestCov = covJ.Clone()
			bestM2 = m2
		}
	}
	if bestCov == nil {
		return nil, nil, fmt.Errorf("outlier: MVE found no non-degenerate subset")
	}
	// Consistency scaling: m²/χ²_{d,0.5} makes the estimator unbiased for
	// Gaussian data (Rousseeuw & van Zomeren).
	scale := bestM2 / stats.ChiSquareCritical(0.5, d)
	linalg.Scale(bestCov, scale, bestCov)
	return bestMu, bestCov, nil
}

// mveModel runs the MVE pipeline: one job collects a bounded per-cluster
// reservoir sample, the driver fits the resampling MVE per cluster, and two
// jobs re-estimate mean/covariance from the points inside each cluster's
// ellipsoid core (mirroring the MVB jobs of §5.5).
func mveModel(engine *mr.Engine, splits []*mr.Split, model *em.Model, trace obs.SpanID) (*em.Model, error) {
	if err := model.Prepare(); err != nil {
		return nil, err
	}
	k := model.K()
	d := len(model.Attrs)

	// Job: per-cluster reservoir samples. Each mapper samples its split;
	// the driver merges (a merged reservoir of reservoirs is not a uniform
	// sample, but the MVE only needs a representative spread).
	job := &mr.Job{
		Name:        "mve-sample",
		Splits:      splits,
		TraceParent: trace,
		NewMapper: func() mr.Mapper {
			return &sampleMapper{model: model, cap: mveSampleCap}
		},
	}
	out, err := engine.Run(job)
	if err != nil {
		return nil, err
	}
	samples := make([][]float64, k)
	for _, p := range out.Pairs {
		var c int
		fmt.Sscanf(p.Key, "c%d", &c)
		if len(samples[c]) < mveSampleCap*d {
			samples[c] = append(samples[c], p.Value.([]float64)...)
		}
	}

	robust := model.Clone()
	rng := rand.New(rand.NewSource(7))
	balls := make([]*ballStat, k)
	for c := 0; c < k; c++ {
		if len(samples[c])/d < d+2 {
			continue // keep EM statistics for starved clusters
		}
		mu, cov, err := mveEstimate(samples[c], d, rng)
		if err != nil {
			continue
		}
		robust.Components[c].Mean = mu
		robust.Components[c].Cov = cov
		// Reuse the in-ball re-estimation jobs with an ellipsoid core: the
		// "ball" is expressed in the Mahalanobis metric of the MVE.
		balls[c] = &ballStat{Center: mu, Radius: -1} // marker; see inEllipsoid
	}

	// Re-estimate mean/cov from the points inside each MVE core with the
	// same two jobs the MVB detector uses, but with ellipsoid membership.
	if err := robust.Prepare(); err != nil {
		return nil, err
	}
	core := stats.ChiSquareCritical(0.5, d)
	means, counts, err := ellipsoidMeans(engine, splits, robust, core, trace)
	if err != nil {
		return nil, err
	}
	covs, err := ellipsoidCovariances(engine, splits, robust, core, means, trace)
	if err != nil {
		return nil, err
	}
	// Truncation consistency: the covariance of the central 50% of a
	// Gaussian underestimates Σ by the factor P(χ²_{d+2} ≤ q)/P(χ²_d ≤ q)
	// with q the coverage quantile; undo it so the subsequent χ² outlier
	// test is calibrated (Croux & Haesbroeck correction for reweighted
	// robust estimators).
	consistency := 0.5 / stats.ChiSquareCDF(core, d+2)
	for c := 0; c < k; c++ {
		if counts[c] >= int64(d)+2 {
			robust.Components[c].Mean = means[c]
			robust.Components[c].Cov = linalg.Scale(covs[c], consistency, covs[c])
		}
	}
	return robust, nil
}

// sampleMapper reservoir-samples projected points per most-likely cluster.
type sampleMapper struct {
	model *em.Model
	cap   int

	rng     *rand.Rand
	buffers [][]float64
	seen    []int
	keys    []string
	proj    []float64
	sc1     []float64
	sc2     []float64
}

func (m *sampleMapper) Setup(ctx *mr.TaskContext) error {
	d := len(m.model.Attrs)
	m.rng = rand.New(rand.NewSource(int64(ctx.TaskID) + 13))
	m.buffers = make([][]float64, m.model.K())
	m.seen = make([]int, m.model.K())
	m.keys = mr.IntKeys("c", m.model.K())
	m.proj = make([]float64, d)
	m.sc1 = make([]float64, d)
	m.sc2 = make([]float64, d)
	return nil
}

func (m *sampleMapper) Map(ctx *mr.TaskContext, global int, row []float64) error {
	d := len(m.model.Attrs)
	x := m.model.Project(m.proj, row)
	c := m.model.MostLikely(x, m.sc1, m.sc2)
	m.seen[c]++
	if len(m.buffers[c]) < m.cap*d {
		m.buffers[c] = append(m.buffers[c], x...)
		return nil
	}
	// Reservoir replacement.
	if j := m.rng.Intn(m.seen[c]); j < m.cap {
		copy(m.buffers[c][j*d:(j+1)*d], x)
	}
	return nil
}

func (m *sampleMapper) Cleanup(ctx *mr.TaskContext) error {
	for c, buf := range m.buffers {
		if len(buf) > 0 {
			ctx.Emit(m.keys[c], buf)
		}
	}
	return nil
}

// ellipsoidMeans/ellipsoidCovariances mirror ballMeans/ballCovariances with
// Mahalanobis-ellipsoid membership: x belongs to its cluster's core when
// (x−µ)ᵀΣ⁻¹(x−µ) ≤ radius2 under the robust model.
func ellipsoidMeans(engine *mr.Engine, splits []*mr.Split, robust *em.Model, radius2 float64, trace obs.SpanID) ([][]float64, []int64, error) {
	d := len(robust.Attrs)
	k := robust.K()
	job := &mr.Job{
		Name:        "mve-mean",
		Splits:      splits,
		TraceParent: trace,
		NewMapper: func() mr.Mapper {
			return &inEllipsoidMapper{model: robust, radius2: radius2, emitCov: false}
		},
		TypedReducer: mr.TypedReducerFunc(func(ctx *mr.TaskContext, key string, values mr.Values) error {
			agg := meanStat{Sum: make([]float64, d)}
			for i := 0; i < values.Len(); i++ {
				st := values.Value(i).(meanStat)
				agg.Count += st.Count
				for j := range agg.Sum {
					agg.Sum[j] += st.Sum[j]
				}
			}
			ctx.Emit(key, agg)
			return nil
		}),
	}
	out, err := engine.Run(job)
	if err != nil {
		return nil, nil, err
	}
	means := make([][]float64, k)
	counts := make([]int64, k)
	for i := range means {
		means[i] = append([]float64(nil), robust.Components[i].Mean...)
	}
	for _, p := range out.Pairs {
		var c int
		fmt.Sscanf(p.Key, "c%d", &c)
		st := p.Value.(meanStat)
		counts[c] = st.Count
		if st.Count > 0 {
			mu := make([]float64, d)
			for j := range mu {
				mu[j] = st.Sum[j] / float64(st.Count)
			}
			means[c] = mu
		}
	}
	return means, counts, nil
}

func ellipsoidCovariances(engine *mr.Engine, splits []*mr.Split, robust *em.Model, radius2 float64, means [][]float64, trace obs.SpanID) ([]*linalg.Matrix, error) {
	d := len(robust.Attrs)
	k := robust.K()
	job := &mr.Job{
		Name:        "mve-cov",
		Splits:      splits,
		TraceParent: trace,
		NewMapper: func() mr.Mapper {
			return &inEllipsoidMapper{model: robust, radius2: radius2, emitCov: true, means: means}
		},
		TypedReducer: mr.TypedReducerFunc(func(ctx *mr.TaskContext, key string, values mr.Values) error {
			agg := scatterStat{S: make([]float64, d*d)}
			for i := 0; i < values.Len(); i++ {
				st := values.Value(i).(scatterStat)
				agg.Count += st.Count
				for j := range agg.S {
					agg.S[j] += st.S[j]
				}
			}
			ctx.Emit(key, agg)
			return nil
		}),
	}
	out, err := engine.Run(job)
	if err != nil {
		return nil, err
	}
	covs := make([]*linalg.Matrix, k)
	for i := range covs {
		covs[i] = robust.Components[i].Cov.Clone()
	}
	for _, p := range out.Pairs {
		var c int
		fmt.Sscanf(p.Key, "c%d", &c)
		st := p.Value.(scatterStat)
		if st.Count >= 2 {
			cov := linalg.NewMatrix(d, d)
			f := 1 / float64(st.Count-1)
			for j := range cov.Data {
				cov.Data[j] = st.S[j] * f
			}
			covs[c] = cov
		}
	}
	return covs, nil
}

type inEllipsoidMapper struct {
	model   *em.Model
	radius2 float64
	emitCov bool
	means   [][]float64

	sums     []meanStat
	scatters []scatterStat
	keys     []string
	proj     []float64
	sc1      []float64
	sc2      []float64
}

func (m *inEllipsoidMapper) Setup(*mr.TaskContext) error {
	d := len(m.model.Attrs)
	k := m.model.K()
	m.keys = mr.IntKeys("c", k)
	if m.emitCov {
		m.scatters = make([]scatterStat, k)
		for i := range m.scatters {
			m.scatters[i].S = make([]float64, d*d)
		}
	} else {
		m.sums = make([]meanStat, k)
		for i := range m.sums {
			m.sums[i].Sum = make([]float64, d)
		}
	}
	m.proj = make([]float64, d)
	m.sc1 = make([]float64, d)
	m.sc2 = make([]float64, d)
	return nil
}

func (m *inEllipsoidMapper) Map(ctx *mr.TaskContext, global int, row []float64) error {
	d := len(m.model.Attrs)
	x := m.model.Project(m.proj, row)
	c := m.model.MostLikely(x, m.sc1, m.sc2)
	md := m.model.Mahalanobis(c, x, m.sc1, m.sc2)
	if md*md > m.radius2 {
		return nil
	}
	if m.emitCov {
		mu := m.means[c]
		s := m.scatters[c].S
		for a := 0; a < d; a++ {
			da := x[a] - mu[a]
			if da == 0 {
				continue
			}
			base := a * d
			for b := 0; b < d; b++ {
				s[base+b] += da * (x[b] - mu[b])
			}
		}
		m.scatters[c].Count++
	} else {
		st := &m.sums[c]
		for j := 0; j < d; j++ {
			st.Sum[j] += x[j]
		}
		st.Count++
	}
	return nil
}

func (m *inEllipsoidMapper) Cleanup(ctx *mr.TaskContext) error {
	if m.emitCov {
		for c, st := range m.scatters {
			if st.Count > 0 {
				ctx.Emit(m.keys[c], st)
			}
		}
		return nil
	}
	for c, st := range m.sums {
		if st.Count > 0 {
			ctx.Emit(m.keys[c], st)
		}
	}
	return nil
}
