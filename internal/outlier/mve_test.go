package outlier

import (
	"math"
	"math/rand"
	"testing"

	"p3cmr/internal/em"
	"p3cmr/internal/linalg"
	"p3cmr/internal/mr"
)

func TestMVEMethodName(t *testing.T) {
	if MVE.String() != "mve" {
		t.Fatal("MVE name wrong")
	}
}

func TestMVEEstimateRecoversLocationUnderContamination(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const d = 3
	const nGood, nBad = 300, 120 // 28% contamination
	points := make([]float64, 0, (nGood+nBad)*d)
	for i := 0; i < nGood; i++ {
		for j := 0; j < d; j++ {
			points = append(points, 0.5+rng.NormFloat64()*0.02)
		}
	}
	for i := 0; i < nBad; i++ {
		for j := 0; j < d; j++ {
			points = append(points, 0.95+rng.Float64()*0.05)
		}
	}
	mu, cov, err := mveEstimate(points, d, rng)
	if err != nil {
		t.Fatal(err)
	}
	// The classical mean is dragged to ~0.64; the MVE must stay near 0.5.
	for j := 0; j < d; j++ {
		if math.Abs(mu[j]-0.5) > 0.02 {
			t.Errorf("MVE mean[%d] = %g, want ≈0.5", j, mu[j])
		}
	}
	// The scatter must reflect the clean core, not the contaminated spread.
	for j := 0; j < d; j++ {
		v := cov.At(j, j)
		if v > 0.005 {
			t.Errorf("MVE var[%d] = %g, inflated by outliers", j, v)
		}
		if v <= 0 {
			t.Errorf("MVE var[%d] = %g not positive", j, v)
		}
	}
}

func TestMVEEstimateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Too few points.
	if _, _, err := mveEstimate(make([]float64, 3*2), 2, rng); err == nil {
		t.Error("too-few-points accepted")
	}
	// Fully degenerate data (all identical): no non-degenerate subset.
	pts := make([]float64, 50*2)
	if _, _, err := mveEstimate(pts, 2, rng); err == nil {
		t.Error("degenerate data accepted")
	}
}

// TestMVEDetectBeatsNaiveUnderMasking mirrors the MVB masking test with the
// MVE estimator: under heavy contamination that corrupts the naive
// statistics, MVE must flag (nearly) all planted outliers.
func TestMVEDetectBeatsNaiveUnderMasking(t *testing.T) {
	splits, outStart := clusterWithOutliers(300, 90, 3, 2)
	n := 390
	all := make([]float64, 0, n*3)
	for _, s := range splits {
		all = append(all, s.Rows...)
	}
	mu := linalg.Mean(all, 3)
	cov := linalg.Covariance(all, 3, mu)
	model := &em.Model{Attrs: []int{0, 1, 2}, Components: []*em.Component{{Weight: 1, Mean: mu, Cov: cov}}}

	countFlagged := func(method Method) int {
		labels, err := Detect(mr.Default(), splits, model.Clone(), n, method, 0.001, 0)
		if err != nil {
			t.Fatal(err)
		}
		flagged := 0
		for i := outStart; i < n; i++ {
			if labels[i] == OutlierLabel {
				flagged++
			}
		}
		return flagged
	}
	naive := countFlagged(Naive)
	mve := countFlagged(MVE)
	t.Logf("naive flagged %d/90, MVE flagged %d/90", naive, mve)
	if mve <= naive {
		t.Errorf("MVE (%d) must beat the masked naive detector (%d)", mve, naive)
	}
	if mve < 85 {
		t.Errorf("MVE flagged only %d/90", mve)
	}
}

// TestMVEKeepsCleanClusterMembers: on clean Gaussian data the MVE-based
// test at alpha=0.001 must not flag a large share of the cluster.
func TestMVEKeepsCleanClusterMembers(t *testing.T) {
	splits, _ := clusterWithOutliers(600, 0, 3, 11)
	model := singleComponentModel(3, []float64{0.5, 0.5, 0.5}, 4e-4)
	labels, err := Detect(mr.Default(), splits, model, 600, MVE, 0.001, 0)
	if err != nil {
		t.Fatal(err)
	}
	flagged := 0
	for _, l := range labels {
		if l == OutlierLabel {
			flagged++
		}
	}
	if flagged > 30 {
		t.Errorf("MVE flagged %d/600 clean points", flagged)
	}
}
